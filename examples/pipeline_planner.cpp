// Interactive use of the paper's analytic pipeline planner (§5): given a
// machine description and a renderer configuration, print how many input
// processors (1DIP) or groups x width (2DIP) are needed to make interframe
// delay equal the rendering time — and verify the prediction against the
// discrete-event simulator.
//
//   ./pipeline_planner [render_procs] [image_width]
#include <cstdio>
#include <cstdlib>

#include "pipesim/calibration.hpp"
#include "pipesim/pipeline_model.hpp"

int main(int argc, char** argv) {
  using namespace qv::pipesim;
  int render_procs = argc > 1 ? std::atoi(argv[1]) : 64;
  int width = argc > 2 ? std::atoi(argv[2]) : 512;

  Machine mc;
  RenderModel rm;
  double tr = rm.seconds(render_procs, width * width, false);

  std::printf("machine: %.0f MB/step, %.1f MB/s per disk stream, %.0f MB/s "
              "links, Tc=%.2fs\n",
              mc.step_bytes / 1e6, mc.disk_stream_bw / 1e6, mc.link_bw / 1e6,
              mc.composite_seconds);
  std::printf("renderer: %d processors at %dx%d -> Tr = %.2f s\n\n",
              render_procs, width, width, tr);

  Plan pl = plan(mc, tr);
  std::printf("plan (paper formulas):\n");
  std::printf("  Tf = %.2f s, Tp = %.2f s, Ts = %.2f s\n", pl.tf, pl.tp, pl.ts);
  std::printf("  1DIP: m = (Tf+Tp)/max(Ts,Tr) + 1 = %d input processors\n",
              pl.m_1dip);
  std::printf("  2DIP: m = ceil(Ts/Tr) = %d wide, n = %d groups\n", pl.m_2dip,
              pl.n_2dip);

  // Validate against the simulator.
  PipelineParams p;
  p.num_steps = 40;
  p.render_seconds = tr;
  p.input_procs = pl.m_1dip;
  auto r1 = simulate_1dip(p);
  p.input_procs = pl.m_2dip;
  p.groups = pl.n_2dip;
  auto r2 = simulate_2dip(p);
  std::printf("\nsimulated interframe with the planned configuration:\n");
  std::printf("  1DIP(m=%d):       %.2f s (floor Tr+Tc = %.2f s)\n", pl.m_1dip,
              r1.avg_interframe, tr + mc.composite_seconds);
  std::printf("  2DIP(%dx%d):      %.2f s\n", pl.n_2dip, pl.m_2dip,
              r2.avg_interframe);

  // Host-kernel calibration (documents how the model maps onto real code).
  auto rates = measure_kernel_rates();
  std::printf("\nthis host's measured kernels: %.2e render samples/s, "
              "%.0f MB/s quantization, %.2e LIC pixels/s\n",
              rates.render_samples_per_sec, rates.quantize_bytes_per_sec / 1e6,
              rates.lic_pixels_per_sec);
  std::printf("e.g. %dx%d at depth ~300 samples/ray on THIS host, %d procs: "
              "Tr ~ %.2f s\n",
              width, width, render_procs,
              render_seconds_from_rate(rates, render_procs, width * width,
                                       300.0));
  return 0;
}
