// Quickstart: generate a small earthquake dataset with the real FEM wave
// solver, then render one time step to a PPM image — the minimal end-to-end
// use of the library's public API.
//
//   ./quickstart [output_dir]
#include <cstdio>
#include <filesystem>
#include <string>

#include "core/serial.hpp"
#include "io/dataset.hpp"
#include "quake/solver.hpp"

int main(int argc, char** argv) {
  using namespace qv;
  std::string out = argc > 1 ? argv[1] : "quickstart_out";
  std::filesystem::create_directories(out);
  std::string dataset_dir = out + "/dataset";
  std::filesystem::create_directories(dataset_dir);

  // 1. A small basin: 2 km cube, soft sediments in an ellipsoidal bowl.
  const Box3 domain{{0, 0, 0}, {2000, 2000, 2000}};
  quake::LayeredBasin basin;
  basin.basin_center = {1000, 1000, 2000};
  basin.basin_radius = 800;
  basin.basin_depth = 500;
  basin.surface_z = 2000;

  // 2. Wavelength-adaptive octree hexahedral mesh (finer in soft soil).
  auto tree = mesh::LinearOctree::build(domain, basin.size_field(0.5f, 4.0f),
                                        2, 4);
  mesh::HexMesh mesh(std::move(tree));
  std::printf("mesh: %zu hexahedral cells, %zu nodes, levels %d..%d\n",
              mesh.cell_count(), mesh.node_count(),
              mesh.octree().min_leaf_level(), mesh.octree().max_leaf_level());

  // 3. Simulate a small earthquake (Ricker point source at depth).
  quake::WaveSolver solver(mesh, basin.field());
  quake::RickerSource source;
  source.position = {1000, 1000, 1400};
  source.peak_freq_hz = 0.5f;
  source.delay_s = 2.4f;
  source.amplitude = 5e12f;
  solver.add_source(source);

  // 4. Store velocity snapshots in the multiresolution dataset layout.
  io::DatasetWriter writer(dataset_dir, mesh, 2, 3, 0.5f);
  const int snapshots = 8;
  int written = 0;
  double next_snapshot = 2.0;
  while (written < snapshots && solver.time() < 30.0) {
    solver.step();
    if (solver.time() >= next_snapshot) {
      writer.write_step(solver.velocity_interleaved());
      ++written;
      next_snapshot += 0.5;
      std::printf("  t=%5.2f s  kinetic energy %.3e\n", solver.time(),
                  solver.kinetic_energy());
    }
  }
  writer.finish();

  // 5. Render a snapshot.
  io::DatasetReader reader(dataset_dir);
  auto camera = render::Camera::overview(domain, 512, 512);
  auto tf = render::TransferFunction::seismic();
  core::SerialRenderConfig cfg;
  cfg.render.value_hi = 0.05f;  // velocity magnitude window (m/s)
  int step = reader.meta().num_steps / 2;
  img::Image image = core::render_step(reader, step, camera, tf, cfg);
  std::string path = out + "/quickstart.ppm";
  img::write_ppm(path, img::to_8bit(image, {0.02f, 0.02f, 0.05f}));
  std::printf("wrote %s (step %d of %d)\n", path.c_str(), step,
              reader.meta().num_steps);
  return 0;
}
