// Simulation-time visualization (§7's "ultimate goal"): the FEM earthquake
// solver and the parallel renderer run simultaneously — frames appear as
// the simulated ground motion evolves, with no dataset on disk at all.
//
//   ./insitu_monitor [output_dir] [snapshots]
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "core/insitu.hpp"

int main(int argc, char** argv) {
  using namespace qv;
  std::string out = argc > 1 ? argv[1] : "insitu_out";
  int snapshots = argc > 2 ? std::atoi(argv[2]) : 8;
  std::filesystem::create_directories(out);

  core::InsituConfig cfg;
  cfg.domain = {{0, 0, 0}, {2000, 2000, 2000}};
  cfg.basin.basin_center = {1000, 1000, 2000};
  cfg.basin.basin_radius = 800;
  cfg.basin.basin_depth = 500;
  cfg.basin.surface_z = 2000;
  cfg.mesh_max_freq_hz = 0.5f;
  cfg.mesh_min_level = 2;
  cfg.mesh_max_level = 4;
  cfg.source.position = {1000, 1000, 1400};
  cfg.source.peak_freq_hz = 0.5f;
  cfg.source.delay_s = 2.4f;
  cfg.source.amplitude = 5e12f;
  cfg.steps_per_snapshot = 10;
  cfg.snapshots = snapshots;
  cfg.render_procs = 3;
  cfg.width = 384;
  cfg.height = 288;
  cfg.render.value_hi = 0.05f;
  cfg.orbit_deg_per_step = 6.0f;  // slowly orbit while monitoring
  cfg.output_dir = out;

  std::printf("monitoring a live basin simulation (%d snapshots)...\n",
              snapshots);
  auto report = core::run_insitu(cfg);
  std::printf("simulated %.1f s of shaking in %.2f s of solver time; "
              "%d frames -> %s/insitu_****.ppm\n",
              report.sim_time_reached, report.sim_seconds, report.snapshots,
              out.c_str());
  if (report.frame_seconds.size() >= 2) {
    double span = report.frame_seconds.back() - report.frame_seconds.front();
    std::printf("mean interframe while simulating: %.3f s\n",
                span / double(report.frame_seconds.size() - 1));
  }
  return 0;
}
