// Figure 11: rendering with and without gradient (Phong) lighting — the
// lit image shows the wavefront surfaces with greater clarity at the cost
// of per-sample gradient estimation (which Figure 10 quantifies).
//
//   ./lighting_demo [output_dir]
#include <cstdio>
#include <filesystem>
#include <string>

#include "core/serial.hpp"
#include "io/dataset.hpp"
#include "quake/synthetic.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace qv;
  std::string out = argc > 1 ? argv[1] : "lighting_out";
  std::filesystem::create_directories(out);
  std::string dataset_dir = out + "/dataset";
  std::filesystem::create_directories(dataset_dir);

  const Box3 unit{{0, 0, 0}, {1, 1, 1}};
  mesh::HexMesh fine(mesh::LinearOctree::uniform(unit, 4));
  io::DatasetWriter writer(dataset_dir, fine, 3, 3, 0.25f);
  quake::SyntheticQuake q;
  writer.write_step(q.sample_nodes(fine, 1.4f));
  writer.finish();

  io::DatasetReader reader(dataset_dir);
  auto camera = render::Camera::overview(unit, 512, 512);
  auto tf = render::TransferFunction::seismic();

  for (bool lighting : {false, true}) {
    core::SerialRenderConfig cfg;
    cfg.render.value_hi = 3.0f;
    cfg.render.lighting = lighting;
    render::RenderStats stats;
    WallTimer timer;
    img::Image im = core::render_step(reader, 0, camera, tf, cfg, &stats);
    double secs = timer.seconds();
    std::string path =
        out + (lighting ? "/with_lighting.ppm" : "/without_lighting.ppm");
    img::write_ppm(path, img::to_8bit(im, {0.02f, 0.02f, 0.05f}));
    std::printf("%-24s %8.2f s  (%llu samples)  -> %s\n",
                lighting ? "with lighting" : "without lighting", secs,
                static_cast<unsigned long long>(stats.samples), path.c_str());
  }
  std::printf("\nlighting multiplies the per-sample cost (gradient probes + "
              "shading); Figure 10 shows the pipeline consequence\n");
  return 0;
}
