// Figures 13 & 14: simultaneous volume rendering and surface LIC through
// the parallel pipeline (the input processors synthesize the LIC texture,
// the output processor composites it under the volume image), plus
// standalone LIC close-ups of the ground-surface field at one step.
//
//   ./surface_lic [output_dir] [--closeup]
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

#include "core/pipeline.hpp"
#include "core/serial.hpp"
#include "io/dataset.hpp"
#include "lic/lic.hpp"
#include "quake/synthetic.hpp"

namespace {

// Write a LIC rendering of a window of the surface field (Figure 14's
// increasingly close views).
void write_closeup(const qv::lic::SurfaceField& field, const std::string& path,
                   float x0, float y0, float x1, float y1, int res) {
  using namespace qv;
  // Restrict the scattered points to the window.
  lic::SurfaceField sub;
  for (std::size_t i = 0; i < field.positions.size(); ++i) {
    Vec2 p = field.positions[i];
    if (p.x >= x0 && p.x <= x1 && p.y >= y0 && p.y <= y1) {
      sub.positions.push_back(p);
      sub.vectors.push_back(field.vectors[i]);
    }
  }
  if (sub.positions.size() < 4) return;
  lic::Quadtree qt(sub.positions);
  auto grid = lic::resample(sub, qt, res, res);
  auto noise = lic::make_noise(res, res, 77);
  lic::LicOptions opt;
  auto gray = lic::compute_lic(grid, noise, res, res, opt);
  img::write_pgm(path, gray, res, res);
  std::printf("wrote %s (%zu surface nodes in window)\n", path.c_str(),
              sub.positions.size());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace qv;
  std::string out = argc > 1 ? argv[1] : "surface_lic_out";
  bool closeup = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--closeup") == 0) closeup = true;
  }
  std::filesystem::create_directories(out);
  std::string dataset_dir = out + "/dataset";
  std::filesystem::create_directories(dataset_dir);

  const Box3 unit{{0, 0, 0}, {1, 1, 1}};
  auto size = [](Vec3 p) { return p.z > 0.7f ? 0.07f : 0.25f; };
  mesh::HexMesh fine(mesh::LinearOctree::build(unit, size, 2, 4));

  io::DatasetWriter writer(dataset_dir, fine, 2, 3, 0.25f);
  quake::SyntheticQuake q;
  const int steps = 4;
  for (int s = 0; s < steps; ++s) {
    writer.write_step(q.sample_nodes(fine, 0.6f + 0.5f * float(s)));
  }
  writer.finish();

  // Volume + LIC through the parallel pipeline (Figure 13).
  core::PipelineConfig cfg;
  cfg.dataset_dir = dataset_dir;
  cfg.input_procs = 3;  // LIC costs input-side time: use a few processors
  cfg.render_procs = 3;
  cfg.width = 512;
  cfg.height = 384;
  cfg.render.value_hi = 3.0f;
  cfg.lic_overlay = true;
  cfg.lic_resolution = 256;
  cfg.output_dir = out;
  auto report = core::run_pipeline(cfg);
  std::printf("volume + surface LIC frames: %d written to %s\n", report.steps,
              out.c_str());

  if (closeup) {
    // Figure 14: LIC of the surface field and two close-ups.
    io::DatasetReader reader(dataset_dir);
    const auto& mesh = reader.level_mesh(reader.meta().finest_level);
    auto data = core::load_step_level(reader, steps - 1, -1);
    auto field = lic::extract_surface_field(mesh, data);
    write_closeup(field, out + "/lic_full.pgm", 0, 0, 1, 1, 512);
    write_closeup(field, out + "/lic_zoom1.pgm", 0.3f, 0.3f, 0.8f, 0.8f, 512);
    write_closeup(field, out + "/lic_zoom2.pgm", 0.45f, 0.45f, 0.65f, 0.65f,
                  512);
  }
  return 0;
}
