// Figure 1 workload: run the FULL parallel pipeline (input + rendering +
// output processors over the in-process message-passing runtime) on a
// synthetic Northridge-style dataset and write an animation of velocity
// magnitude — with temporal-domain enhancement on, as the paper's late
// time steps need (Figure 4).
//
//   ./northridge_movie [output_dir] [steps]
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "core/pipeline.hpp"
#include "io/dataset.hpp"
#include "quake/synthetic.hpp"

int main(int argc, char** argv) {
  using namespace qv;
  std::string out = argc > 1 ? argv[1] : "northridge_out";
  int steps = argc > 2 ? std::atoi(argv[2]) : 10;
  std::filesystem::create_directories(out);
  std::string dataset_dir = out + "/dataset";
  std::filesystem::create_directories(dataset_dir);
  std::string frames_dir = out + "/frames";
  std::filesystem::create_directories(frames_dir);

  // Synthetic basin-response wavefield on an adaptive mesh, dense enough to
  // exercise the distributed path but laptop-sized.
  const Box3 unit{{0, 0, 0}, {1, 1, 1}};
  auto size = [](Vec3 p) { return p.z > 0.6f ? 0.08f : 0.2f; };
  mesh::HexMesh fine(mesh::LinearOctree::build(unit, size, 2, 4));
  std::printf("dataset mesh: %zu cells, %zu nodes\n", fine.cell_count(),
              fine.node_count());

  io::DatasetWriter writer(dataset_dir, fine, 2, 3, 0.25f);
  quake::SyntheticQuake q;
  for (int s = 0; s < steps; ++s) {
    writer.write_step(q.sample_nodes(fine, 0.4f + 0.35f * float(s)));
  }
  writer.finish();

  // The parallel pipeline: 3 input processors (1DIP), 4 renderers, SLIC
  // compositing, enhancement preprocessing on the input processors.
  core::PipelineConfig cfg;
  cfg.dataset_dir = dataset_dir;
  cfg.strategy = core::IoStrategy::kOneDip;
  cfg.input_procs = 3;
  cfg.render_procs = 4;
  cfg.width = 512;
  cfg.height = 384;
  cfg.render.value_hi = 3.0f;
  cfg.enhancement = true;
  cfg.enhancement_gain = 1.5f;
  cfg.output_dir = frames_dir;

  auto report = core::run_pipeline(cfg);

  std::printf("\nrendered %d frames -> %s/frame_****.ppm\n", report.steps,
              frames_dir.c_str());
  std::printf("avg interframe delay %.3f s | fetch %.3f s, preprocess %.3f s, "
              "send %.3f s, render %.3f s, composite %.3f s\n",
              report.avg_interframe, report.avg_fetch, report.avg_preprocess,
              report.avg_send, report.avg_render, report.avg_composite);
  return 0;
}
