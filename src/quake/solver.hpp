// Explicit FEM elastic wave propagation on octree hexahedral meshes — the
// simulation substrate that produces the time-varying data the paper
// visualizes. Mirrors the quake team's formulation (§3): unstructured hex
// finite elements for spatial approximation, explicit central differences
// in time, mesh tailored to the local wavelength.
//
// Implementation notes:
//  * Trilinear hexahedra on axis-aligned cubes: the element stiffness is
//    K_e = h * (lambda * K_A + mu * K_B), with K_A and K_B universal 24x24
//    matrices precomputed once by 2x2x2 Gauss quadrature on the unit cube.
//    The solver is assembly-free: a gather/multiply/scatter per element.
//  * Lumped mass matrix (row-sum), so the update is a diagonal solve.
//  * Hanging nodes (2:1 interfaces) are slaved to their parents via the
//    mesh's constraint list: forces fold back to parents each step and the
//    displacement at hanging nodes is re-interpolated.
//  * Mass-proportional Rayleigh damping; homogeneous Dirichlet sides/bottom.
//  * Source: Ricker-wavelet point body force (a simplified double couple).
#pragma once

#include <array>
#include <span>
#include <vector>

#include "mesh/hex_mesh.hpp"
#include "quake/material.hpp"

namespace qv::quake {

// Ricker wavelet body force applied near a hypocenter.
struct RickerSource {
  Vec3 position;
  Vec3 direction{0.0f, 0.0f, 1.0f};  // force direction (normalized at use)
  float peak_freq_hz = 1.0f;
  float delay_s = 1.2f;  // typically ~1.2/peak_freq so the wavelet starts ~0
  float amplitude = 1.0e9f;

  // Ricker wavelet value at time t.
  float wavelet(float t) const;
};

class WaveSolver {
 public:
  struct Options {
    float cfl = 0.45f;        // fraction of the stable time step
    float damping = 0.02f;    // mass-proportional damping coefficient (1/s)
    bool fix_boundary = true; // clamp displacement on all faces except +z
  };

  WaveSolver(const mesh::HexMesh& mesh, const MaterialField& material,
             Options options);
  WaveSolver(const mesh::HexMesh& mesh, const MaterialField& material)
      : WaveSolver(mesh, material, Options{}) {}

  void add_source(const RickerSource& src);

  // Advance one explicit step of size dt() (chosen from the CFL bound).
  void step();

  double time() const { return time_; }
  float dt() const { return dt_; }
  std::size_t node_count() const { return mesh_->node_count(); }

  std::span<const Vec3> displacement() const { return u_; }
  std::span<const Vec3> velocity() const { return v_; }

  // Velocity as interleaved (vx, vy, vz) floats — the dataset record format.
  std::vector<float> velocity_interleaved() const;

  // Total kinetic energy (stability diagnostics; explodes when unstable).
  double kinetic_energy() const;

  // The universal unit-cube stiffness blocks (exposed for tests).
  static const std::array<std::array<double, 24>, 24>& unit_stiffness_lambda();
  static const std::array<std::array<double, 24>, 24>& unit_stiffness_mu();

 private:
  void apply_element_forces(std::vector<Vec3>& force) const;

  const mesh::HexMesh* mesh_;
  Options opt_;
  float dt_ = 0.0f;
  double time_ = 0.0;

  // Per element: lambda*h and mu*h.
  std::vector<float> lam_h_, mu_h_;
  std::vector<float> inv_mass_;       // lumped, per node
  std::vector<std::uint8_t> fixed_;   // Dirichlet flags per node
  std::vector<Vec3> u_, u_prev_, v_;
  struct ActiveSource {
    RickerSource src;
    std::vector<std::pair<mesh::NodeId, float>> weights;  // nodal distribution
  };
  std::vector<ActiveSource> sources_;
};

}  // namespace qv::quake
