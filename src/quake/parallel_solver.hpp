// Parallel elastic wave solver: the distributed version of WaveSolver,
// mirroring how the quake team's code spreads the FEM work over thousands
// of processors (§3, "close to 90% parallel efficiency ... on 2048
// processors").
//
// Parallelization scheme: replicated state, partitioned work. The element
// stiffness matvec — the dominant cost — is split by Morton-contiguous
// cell ranges; each rank computes the internal forces of its own cells and
// an allreduce assembles the global force vector, after which every rank
// performs the identical (redundant, cheap) nodal update, so the
// displacement state stays replicated and deterministic on every rank.
// This trades memory scalability for simplicity — appropriate at the
// scale this in-process runtime hosts, and the communication pattern (one
// force reduction per step) is the same one a memory-distributed variant
// would optimize.
#pragma once

#include "quake/solver.hpp"
#include "vmpi/comm.hpp"

namespace qv::quake {

class ParallelWaveSolver {
 public:
  // Collective: every rank of `comm` constructs with identical arguments.
  ParallelWaveSolver(const mesh::HexMesh& mesh, const MaterialField& material,
                     WaveSolver::Options options, vmpi::Comm& comm);

  void add_source(const RickerSource& src);

  // Advance one explicit step (collective: one force allreduce).
  void step();

  double time() const { return time_; }
  float dt() const { return dt_; }
  std::span<const Vec3> displacement() const { return u_; }
  std::span<const Vec3> velocity() const { return v_; }
  std::vector<float> velocity_interleaved() const;
  double kinetic_energy() const;

  // My Morton-contiguous cell range [begin, end).
  std::pair<std::size_t, std::size_t> owned_cells() const {
    return {cell_begin_, cell_end_};
  }

 private:
  const mesh::HexMesh* mesh_;
  WaveSolver::Options opt_;
  vmpi::Comm* comm_;
  float dt_ = 0.0f;
  double time_ = 0.0;
  std::size_t cell_begin_ = 0, cell_end_ = 0;

  std::vector<float> lam_h_, mu_h_;  // owned cells only (indexed - begin)
  std::vector<float> inv_mass_;
  std::vector<std::uint8_t> fixed_;
  std::vector<Vec3> u_, u_prev_, v_;
  struct ActiveSource {
    RickerSource src;
    std::vector<std::pair<mesh::NodeId, float>> weights;
  };
  std::vector<ActiveSource> sources_;
};

}  // namespace qv::quake
