#include "quake/parallel_solver.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace qv::quake {

ParallelWaveSolver::ParallelWaveSolver(const mesh::HexMesh& mesh,
                                       const MaterialField& material,
                                       WaveSolver::Options options,
                                       vmpi::Comm& comm)
    : mesh_(&mesh), opt_(options), comm_(&comm) {
  const std::size_t ncells = mesh.cell_count();
  const std::size_t nnodes = mesh.node_count();

  // Morton-contiguous equal-count cell partition (the Morton order keeps
  // each rank's cells spatially compact — cache- and, in a memory-
  // distributed variant, communication-friendly).
  const int P = comm.size();
  const int me = comm.rank();
  cell_begin_ = ncells * std::size_t(me) / std::size_t(P);
  cell_end_ = ncells * std::size_t(me + 1) / std::size_t(P);

  lam_h_.resize(cell_end_ - cell_begin_);
  mu_h_.resize(cell_end_ - cell_begin_);
  std::vector<float> mass(nnodes, 0.0f);

  // Mass, dt and boundary flags are global quantities: every rank computes
  // them over the whole mesh (cheap, and keeps the replicated update
  // bitwise identical across ranks).
  float min_dt = 1e30f;
  for (std::size_t c = 0; c < ncells; ++c) {
    Box3 b = mesh.cell_box(c);
    float h = b.extent().x;
    Material m = material(b.center());
    if (c >= cell_begin_ && c < cell_end_) {
      lam_h_[c - cell_begin_] = m.lambda() * h;
      mu_h_[c - cell_begin_] = m.mu() * h;
    }
    float corner_mass = m.rho * h * h * h / 8.0f;
    for (mesh::NodeId n : mesh.cell_nodes(c)) mass[n] += corner_mass;
    min_dt = std::min(min_dt, h / m.vp);
  }
  dt_ = opt_.cfl * min_dt;

  for (auto it = mesh.constraints().rbegin(); it != mesh.constraints().rend();
       ++it) {
    float share = mass[it->node] / float(it->parent_count);
    for (int i = 0; i < it->parent_count; ++i)
      mass[it->parents[std::size_t(i)]] += share;
    mass[it->node] = 0.0f;
  }
  inv_mass_.resize(nnodes);
  for (std::size_t n = 0; n < nnodes; ++n) {
    inv_mass_[n] = mass[n] > 0.0f ? 1.0f / mass[n] : 0.0f;
  }

  fixed_.assign(nnodes, 0);
  if (opt_.fix_boundary) {
    const std::uint32_t top = 1u << mesh::kMaxLevel;
    auto coords = mesh.node_grid_coords();
    for (std::size_t n = 0; n < nnodes; ++n) {
      const auto& gc = coords[n];
      if (gc.x == 0 || gc.x == top || gc.y == 0 || gc.y == top || gc.z == 0) {
        fixed_[n] = 1;
      }
    }
  }

  u_.assign(nnodes, Vec3{});
  u_prev_.assign(nnodes, Vec3{});
  v_.assign(nnodes, Vec3{});
}

void ParallelWaveSolver::add_source(const RickerSource& src) {
  ActiveSource as;
  as.src = src;
  mesh::HexMesh::CellSample cs;
  if (!mesh_->locate(src.position, cs))
    throw std::runtime_error("quake: source outside the mesh");
  const auto& conn = mesh_->cell_nodes(cs.cell);
  float wx[2] = {1.0f - cs.u, cs.u};
  float wy[2] = {1.0f - cs.v, cs.v};
  float wz[2] = {1.0f - cs.w, cs.w};
  for (int i = 0; i < 8; ++i) {
    float w = wx[i & 1] * wy[(i >> 1) & 1] * wz[(i >> 2) & 1];
    if (w > 0.0f) as.weights.emplace_back(conn[std::size_t(i)], w);
  }
  sources_.push_back(std::move(as));
}

void ParallelWaveSolver::step() {
  const std::size_t nnodes = mesh_->node_count();
  const auto& KA = WaveSolver::unit_stiffness_lambda();
  const auto& KB = WaveSolver::unit_stiffness_mu();

  // 1. Partial internal forces from MY cells.
  std::vector<float> force(nnodes * 3, 0.0f);
  for (std::size_t c = cell_begin_; c < cell_end_; ++c) {
    const auto& conn = mesh_->cell_nodes(c);
    float ue[24];
    for (int i = 0; i < 8; ++i) {
      const Vec3& u = u_[conn[std::size_t(i)]];
      ue[3 * i + 0] = u.x;
      ue[3 * i + 1] = u.y;
      ue[3 * i + 2] = u.z;
    }
    const double lam = lam_h_[c - cell_begin_];
    const double mu = mu_h_[c - cell_begin_];
    for (int r = 0; r < 24; ++r) {
      double acc = 0.0;
      const auto& ka_row = KA[std::size_t(r)];
      const auto& kb_row = KB[std::size_t(r)];
      for (int s = 0; s < 24; ++s) {
        acc += (lam * ka_row[std::size_t(s)] + mu * kb_row[std::size_t(s)]) *
               double(ue[s]);
      }
      force[std::size_t(conn[std::size_t(r / 3)]) * 3 + std::size_t(r % 3)] -=
          float(acc);
    }
  }

  // 2. Assemble globally: the one communication step per time step.
  comm_->allreduce_sum_f(force);

  // 3. Redundant, replicated nodal update (identical on every rank).
  std::vector<Vec3> f(nnodes);
  for (std::size_t n = 0; n < nnodes; ++n) {
    f[n] = {force[3 * n], force[3 * n + 1], force[3 * n + 2]};
  }
  for (const auto& as : sources_) {
    float s = as.src.wavelet(float(time_));
    Vec3 dir = as.src.direction.normalized();
    for (const auto& [node, w] : as.weights) f[node] += dir * (s * w);
  }
  mesh_->distribute_hanging_forces(f);

  const float dt = dt_;
  const float damp = opt_.damping * dt;
  std::vector<Vec3> u_next(nnodes);
  for (std::size_t n = 0; n < nnodes; ++n) {
    if (fixed_[n] || mesh_->is_hanging(mesh::NodeId(n))) {
      u_next[n] = Vec3{};
      continue;
    }
    Vec3 accel = f[n] * inv_mass_[n];
    Vec3 du = u_[n] - u_prev_[n];
    u_next[n] = u_[n] + du * (1.0f - damp) + accel * (dt * dt);
  }
  for (const auto& hc : mesh_->constraints()) {
    Vec3 sum{};
    for (int i = 0; i < hc.parent_count; ++i)
      sum += u_next[hc.parents[std::size_t(i)]];
    u_next[hc.node] = sum / float(hc.parent_count);
  }
  for (std::size_t n = 0; n < nnodes; ++n) {
    v_[n] = (u_next[n] - u_[n]) / dt;
  }
  u_prev_ = std::move(u_);
  u_ = std::move(u_next);
  time_ += dt;
}

std::vector<float> ParallelWaveSolver::velocity_interleaved() const {
  std::vector<float> out(v_.size() * 3);
  for (std::size_t n = 0; n < v_.size(); ++n) {
    out[3 * n + 0] = v_[n].x;
    out[3 * n + 1] = v_[n].y;
    out[3 * n + 2] = v_[n].z;
  }
  return out;
}

double ParallelWaveSolver::kinetic_energy() const {
  double e = 0.0;
  for (std::size_t n = 0; n < v_.size(); ++n) {
    float im = inv_mass_[n];
    if (im > 0.0f) e += 0.5 / double(im) * double(v_[n].norm2());
  }
  return e;
}

}  // namespace qv::quake
