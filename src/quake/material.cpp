#include "quake/material.hpp"

#include <algorithm>
#include <cmath>

namespace qv::quake {

Material LayeredBasin::operator()(Vec3 p) const {
  // Normalized ellipsoidal coordinate of p w.r.t. the basin bowl.
  float dx = (p.x - basin_center.x) / basin_radius;
  float dy = (p.y - basin_center.y) / basin_radius;
  float depth = surface_z - p.z;  // meters below the ground surface
  float dz = depth / basin_depth;
  float q = dx * dx + dy * dy + dz * dz;

  Material m;
  if (depth >= 0.0f && q < 1.0f) {
    // Inside the sediments: vs rises from sediment_vs at the surface toward
    // rock_vs at the basin boundary (smooth gradient with depth).
    float t = std::sqrt(q);  // 0 at basin center/surface, 1 at boundary
    m.vs = sediment_vs + (rock_vs - sediment_vs) * t * t;
    m.rho = sediment_rho + (rock_rho - sediment_rho) * t;
  } else {
    m.vs = rock_vs;
    m.rho = rock_rho;
  }
  m.vp = vp_over_vs * m.vs;
  return m;
}

std::function<float(Vec3)> LayeredBasin::size_field(
    float max_freq_hz, float points_per_wavelength) const {
  return [basin = *this, max_freq_hz, points_per_wavelength](Vec3 p) {
    Material m = basin(p);
    return m.vs / (max_freq_hz * points_per_wavelength);
  };
}

}  // namespace qv::quake
