// Procedural (analytic) earthquake wavefield.
//
// The paper's input is terabytes of Northridge simulation output we do not
// have. The FEM solver (solver.hpp) generates genuinely simulated data at
// small scale; this module generates *arbitrarily large* wave-like data at
// negligible cost, so the I/O-path experiments can run on files with the
// paper's size characteristics (e.g. 400 MB per time step). The model is an
// expanding P/S double wavefront from a hypocenter with geometric
// attenuation, a free-surface reflection (image source), and a decaying
// basin resonance — enough structure that renderings and LIC images look
// like ground motion, while each sample costs O(1).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "mesh/hex_mesh.hpp"
#include "util/vec.hpp"

namespace qv::quake {

struct SyntheticQuake {
  Vec3 hypocenter{0.5f, 0.5f, 0.2f};  // in domain units
  float vp = 0.35f;                   // wavefront speeds, domain units / s
  float vs = 0.20f;
  float peak_freq = 1.0f;             // Hz of the source wavelet
  float surface_z = 1.0f;             // free surface height (reflections)
  float resonance_freq = 0.4f;        // basin ringing
  float resonance_decay = 0.35f;      // 1/s
  float amplitude = 1.0f;

  // Velocity vector at point p and time t.
  Vec3 velocity_at(Vec3 p, float t) const;

  // Interleaved (vx, vy, vz) samples at every node of `mesh`.
  std::vector<float> sample_nodes(const mesh::HexMesh& mesh, float t) const;
};

// Stream a raw linear node array of `node_count` records x `components`
// float32 to `path` — the on-disk shape of one time step — without any mesh
// in memory. `gen(record, component)` supplies each value. Used to create
// multi-hundred-MB step files for I/O benchmarks.
void write_linear_array(const std::string& path, std::uint64_t node_count,
                        int components,
                        const std::function<float(std::uint64_t, int)>& gen);

}  // namespace qv::quake
