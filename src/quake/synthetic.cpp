#include "quake/synthetic.hpp"

#include <cmath>
#include <fstream>
#include <stdexcept>
#include <vector>

namespace qv::quake {

namespace {

// Ricker-like pulse centered at 0.
float pulse(float t, float freq) {
  float tau = float(M_PI) * freq * t;
  float tau2 = tau * tau;
  return (1.0f - 2.0f * tau2) * std::exp(-tau2);
}

}  // namespace

Vec3 SyntheticQuake::velocity_at(Vec3 p, float t) const {
  Vec3 d = p - hypocenter;
  float r = d.norm();
  const float r0 = 0.02f;  // softening radius near the source
  float att = 1.0f / (r + r0);
  Vec3 radial = r > 1e-6f ? d / r : Vec3{0, 0, 1};

  // P wave: radial particle motion.
  float p_arr = r / vp;
  Vec3 v = radial * (amplitude * att * pulse(t - p_arr, peak_freq));

  // S wave: transverse particle motion (horizontal component orthogonal to
  // the radial direction), stronger than P as in real ground motion.
  Vec3 up{0, 0, 1};
  Vec3 trans = radial.cross(up);
  if (trans.norm2() < 1e-8f) trans = Vec3{1, 0, 0};
  trans = trans.normalized();
  float s_arr = r / vs;
  v += trans * (1.8f * amplitude * att * pulse(t - s_arr, peak_freq * 0.8f));

  // Free-surface reflection: image source mirrored above the surface.
  Vec3 image = hypocenter;
  image.z = 2.0f * surface_z - hypocenter.z;
  Vec3 di = p - image;
  float ri = di.norm();
  float refl_arr = ri / vp;
  Vec3 radial_i = ri > 1e-6f ? di / ri : Vec3{0, 0, -1};
  v += radial_i * (0.6f * amplitude / (ri + r0) * pulse(t - refl_arr, peak_freq));

  // Basin resonance: standing oscillation that rings after the S arrival,
  // strongest near the surface (depth factor).
  float depth = surface_z - p.z;
  if (depth >= 0.0f && t > s_arr) {
    float ring = std::exp(-resonance_decay * (t - s_arr)) *
                 std::sin(2.0f * float(M_PI) * resonance_freq * (t - s_arr));
    float depth_factor = std::exp(-4.0f * depth);
    v.z += 0.5f * amplitude * att * ring * depth_factor;
  }
  return v;
}

std::vector<float> SyntheticQuake::sample_nodes(const mesh::HexMesh& mesh,
                                                float t) const {
  auto positions = mesh.node_positions();
  std::vector<float> out(positions.size() * 3);
  for (std::size_t n = 0; n < positions.size(); ++n) {
    Vec3 v = velocity_at(positions[n], t);
    out[3 * n + 0] = v.x;
    out[3 * n + 1] = v.y;
    out[3 * n + 2] = v.z;
  }
  return out;
}

void write_linear_array(const std::string& path, std::uint64_t node_count,
                        int components,
                        const std::function<float(std::uint64_t, int)>& gen) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("synthetic: cannot write " + path);
  constexpr std::uint64_t kChunkRecords = 1u << 16;
  std::vector<float> buf;
  for (std::uint64_t base = 0; base < node_count; base += kChunkRecords) {
    std::uint64_t n = std::min(kChunkRecords, node_count - base);
    buf.resize(n * std::uint64_t(components));
    for (std::uint64_t i = 0; i < n; ++i) {
      for (int c = 0; c < components; ++c) {
        buf[i * std::uint64_t(components) + std::uint64_t(c)] = gen(base + i, c);
      }
    }
    os.write(reinterpret_cast<const char*>(buf.data()),
             std::streamsize(buf.size() * sizeof(float)));
  }
  if (!os) throw std::runtime_error("synthetic: write failed " + path);
}

}  // namespace qv::quake
