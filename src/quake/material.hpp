// Material models for basin ground-motion simulation (§3 of the paper):
// heterogeneous soil with soft, slow sediments near the surface of a basin
// and stiff rock below. The local shear-wave velocity drives both the
// octree mesh refinement ("mesh size is tailored to the local wavelength")
// and the element stiffness.
#pragma once

#include <functional>

#include "util/vec.hpp"

namespace qv::quake {

struct Material {
  float rho = 2700.0f;  // density, kg/m^3
  float vs = 2500.0f;   // shear-wave velocity, m/s
  float vp = 4330.0f;   // compressional-wave velocity, m/s

  float mu() const { return rho * vs * vs; }
  float lambda() const { return rho * (vp * vp - 2.0f * vs * vs); }
};

using MaterialField = std::function<Material(Vec3)>;

// An idealized sedimentary basin: an ellipsoidal bowl of slow sediments
// embedded in the top of a rock halfspace (z up; the ground surface is the
// domain's +z face). Velocity grows with depth inside the sediments.
struct LayeredBasin {
  Vec3 basin_center;     // center of the basin at the surface
  float basin_radius;    // horizontal semi-axis
  float basin_depth;     // vertical semi-axis (how deep sediments reach)
  float sediment_vs = 600.0f;
  float sediment_rho = 2000.0f;
  float rock_vs = 3200.0f;
  float rock_rho = 2700.0f;
  float vp_over_vs = 1.8f;
  float surface_z;       // z of the ground surface

  Material operator()(Vec3 p) const;

  MaterialField field() const {
    return [basin = *this](Vec3 p) { return basin(p); };
  }

  // Mesh refinement oracle: desired cell edge = vs / (freq * ppw)
  // ("points per wavelength", typically 8-10 for FEM wave propagation).
  std::function<float(Vec3)> size_field(float max_freq_hz,
                                        float points_per_wavelength) const;
};

}  // namespace qv::quake
