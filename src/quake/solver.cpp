#include "quake/solver.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace qv::quake {

namespace {

using Mat24 = std::array<std::array<double, 24>, 24>;

// Trilinear shape function derivative tables on the unit cube; corner i is
// bit-coded (bit0 -> x, bit1 -> y, bit2 -> z).
void shape_gradients(double xi, double eta, double zeta, double dN[8][3]) {
  for (int i = 0; i < 8; ++i) {
    double sx = (i & 1) ? 1.0 : -1.0;
    double sy = (i & 2) ? 1.0 : -1.0;
    double sz = (i & 4) ? 1.0 : -1.0;
    double fx = (i & 1) ? xi : 1.0 - xi;
    double fy = (i & 2) ? eta : 1.0 - eta;
    double fz = (i & 4) ? zeta : 1.0 - zeta;
    dN[i][0] = sx * fy * fz;
    dN[i][1] = fx * sy * fz;
    dN[i][2] = fx * fy * sz;
  }
}

struct UnitStiffness {
  Mat24 ka{};  // lambda part
  Mat24 kb{};  // mu part
};

UnitStiffness compute_unit_stiffness() {
  UnitStiffness K;
  // 2-point Gauss on [0,1]: 0.5 +- 1/(2*sqrt(3)), weight 0.5 each axis.
  const double g = 0.5 / std::sqrt(3.0);
  const double pts[2] = {0.5 - g, 0.5 + g};
  for (int a = 0; a < 2; ++a)
    for (int b = 0; b < 2; ++b)
      for (int c = 0; c < 2; ++c) {
        double dN[8][3];
        shape_gradients(pts[a], pts[b], pts[c], dN);
        // Strain-displacement rows: exx eyy ezz gxy gyz gzx.
        double B[6][24] = {};
        for (int i = 0; i < 8; ++i) {
          B[0][3 * i + 0] = dN[i][0];
          B[1][3 * i + 1] = dN[i][1];
          B[2][3 * i + 2] = dN[i][2];
          B[3][3 * i + 0] = dN[i][1];
          B[3][3 * i + 1] = dN[i][0];
          B[4][3 * i + 1] = dN[i][2];
          B[4][3 * i + 2] = dN[i][1];
          B[5][3 * i + 0] = dN[i][2];
          B[5][3 * i + 2] = dN[i][0];
        }
        const double w = 1.0 / 8.0;
        // D_A: ones in the top-left 3x3 (lambda tr(e) I);
        // D_B: diag(2,2,2,1,1,1) (2 mu e).
        for (int r = 0; r < 24; ++r) {
          for (int s = 0; s < 24; ++s) {
            double ka = 0.0, kb = 0.0;
            // lambda part: (sum_k B[k][r]) * (sum_k B[k][s]) over k in 0..2
            double tr_r = B[0][r] + B[1][r] + B[2][r];
            double tr_s = B[0][s] + B[1][s] + B[2][s];
            ka = tr_r * tr_s;
            for (int k = 0; k < 3; ++k) kb += 2.0 * B[k][r] * B[k][s];
            for (int k = 3; k < 6; ++k) kb += B[k][r] * B[k][s];
            K.ka[std::size_t(r)][std::size_t(s)] += w * ka;
            K.kb[std::size_t(r)][std::size_t(s)] += w * kb;
          }
        }
      }
  return K;
}

const UnitStiffness& unit_stiffness() {
  static const UnitStiffness K = compute_unit_stiffness();
  return K;
}

}  // namespace

float RickerSource::wavelet(float t) const {
  float tau = float(M_PI) * peak_freq_hz * (t - delay_s);
  float tau2 = tau * tau;
  return amplitude * (1.0f - 2.0f * tau2) * std::exp(-tau2);
}

const Mat24& WaveSolver::unit_stiffness_lambda() { return unit_stiffness().ka; }
const Mat24& WaveSolver::unit_stiffness_mu() { return unit_stiffness().kb; }

WaveSolver::WaveSolver(const mesh::HexMesh& mesh, const MaterialField& material,
                       Options options)
    : mesh_(&mesh), opt_(options) {
  const std::size_t ncells = mesh.cell_count();
  const std::size_t nnodes = mesh.node_count();
  lam_h_.resize(ncells);
  mu_h_.resize(ncells);
  std::vector<float> mass(nnodes, 0.0f);

  float min_dt = 1e30f;
  for (std::size_t c = 0; c < ncells; ++c) {
    Box3 b = mesh.cell_box(c);
    float h = b.extent().x;
    Material m = material(b.center());
    lam_h_[c] = m.lambda() * h;
    mu_h_[c] = m.mu() * h;
    float corner_mass = m.rho * h * h * h / 8.0f;
    for (mesh::NodeId n : mesh.cell_nodes(c)) mass[n] += corner_mass;
    min_dt = std::min(min_dt, h / m.vp);
  }
  dt_ = opt_.cfl * min_dt;

  // Fold hanging-node mass into parents (slaved DOFs carry no mass).
  for (auto it = mesh.constraints().rbegin(); it != mesh.constraints().rend();
       ++it) {
    float share = mass[it->node] / float(it->parent_count);
    for (int i = 0; i < it->parent_count; ++i)
      mass[it->parents[std::size_t(i)]] += share;
    mass[it->node] = 0.0f;
  }

  inv_mass_.resize(nnodes);
  for (std::size_t n = 0; n < nnodes; ++n) {
    inv_mass_[n] = mass[n] > 0.0f ? 1.0f / mass[n] : 0.0f;
  }

  // Dirichlet sides and bottom; +z (ground surface) stays free.
  fixed_.assign(nnodes, 0);
  if (opt_.fix_boundary) {
    const std::uint32_t top = 1u << mesh::kMaxLevel;
    auto coords = mesh.node_grid_coords();
    for (std::size_t n = 0; n < nnodes; ++n) {
      const auto& gc = coords[n];
      if (gc.x == 0 || gc.x == top || gc.y == 0 || gc.y == top || gc.z == 0) {
        fixed_[n] = 1;
      }
    }
  }

  u_.assign(nnodes, Vec3{});
  u_prev_.assign(nnodes, Vec3{});
  v_.assign(nnodes, Vec3{});
}

void WaveSolver::add_source(const RickerSource& src) {
  ActiveSource as;
  as.src = src;
  mesh::HexMesh::CellSample cs;
  if (!mesh_->locate(src.position, cs))
    throw std::runtime_error("quake: source outside the mesh");
  const auto& conn = mesh_->cell_nodes(cs.cell);
  float wx[2] = {1.0f - cs.u, cs.u};
  float wy[2] = {1.0f - cs.v, cs.v};
  float wz[2] = {1.0f - cs.w, cs.w};
  for (int i = 0; i < 8; ++i) {
    float w = wx[i & 1] * wy[(i >> 1) & 1] * wz[(i >> 2) & 1];
    if (w > 0.0f) as.weights.emplace_back(conn[std::size_t(i)], w);
  }
  sources_.push_back(std::move(as));
}

void WaveSolver::apply_element_forces(std::vector<Vec3>& force) const {
  const auto& KA = unit_stiffness().ka;
  const auto& KB = unit_stiffness().kb;
  const std::size_t ncells = mesh_->cell_count();
  for (std::size_t c = 0; c < ncells; ++c) {
    const auto& conn = mesh_->cell_nodes(c);
    float ue[24];
    for (int i = 0; i < 8; ++i) {
      const Vec3& u = u_[conn[std::size_t(i)]];
      ue[3 * i + 0] = u.x;
      ue[3 * i + 1] = u.y;
      ue[3 * i + 2] = u.z;
    }
    const double lam = lam_h_[c];
    const double mu = mu_h_[c];
    float fe[24];
    for (int r = 0; r < 24; ++r) {
      double acc = 0.0;
      const auto& ka_row = KA[std::size_t(r)];
      const auto& kb_row = KB[std::size_t(r)];
      for (int s = 0; s < 24; ++s) {
        acc += (lam * ka_row[std::size_t(s)] + mu * kb_row[std::size_t(s)]) *
               double(ue[s]);
      }
      fe[r] = float(-acc);  // internal restoring force
    }
    for (int i = 0; i < 8; ++i) {
      Vec3& f = force[conn[std::size_t(i)]];
      f.x += fe[3 * i + 0];
      f.y += fe[3 * i + 1];
      f.z += fe[3 * i + 2];
    }
  }
}

void WaveSolver::step() {
  const std::size_t nnodes = mesh_->node_count();
  std::vector<Vec3> force(nnodes, Vec3{});

  for (const auto& as : sources_) {
    float f = as.src.wavelet(float(time_));
    Vec3 dir = as.src.direction.normalized();
    for (const auto& [node, w] : as.weights) {
      force[node] += dir * (f * w);
    }
  }
  apply_element_forces(force);
  mesh_->distribute_hanging_forces(force);

  const float dt = dt_;
  const float damp = opt_.damping * dt;
  std::vector<Vec3> u_next(nnodes);
  for (std::size_t n = 0; n < nnodes; ++n) {
    if (fixed_[n] || mesh_->is_hanging(mesh::NodeId(n))) {
      u_next[n] = Vec3{};
      continue;
    }
    Vec3 accel = force[n] * inv_mass_[n];
    Vec3 du = u_[n] - u_prev_[n];
    u_next[n] = u_[n] + du * (1.0f - damp) + accel * (dt * dt);
  }
  // Slave hanging nodes to their parents.
  for (const auto& hc : mesh_->constraints()) {
    Vec3 sum{};
    for (int i = 0; i < hc.parent_count; ++i)
      sum += u_next[hc.parents[std::size_t(i)]];
    u_next[hc.node] = sum / float(hc.parent_count);
  }

  for (std::size_t n = 0; n < nnodes; ++n) {
    v_[n] = (u_next[n] - u_[n]) / dt;
  }
  u_prev_ = std::move(u_);
  u_ = std::move(u_next);
  time_ += dt;
}

std::vector<float> WaveSolver::velocity_interleaved() const {
  std::vector<float> out(v_.size() * 3);
  for (std::size_t n = 0; n < v_.size(); ++n) {
    out[3 * n + 0] = v_[n].x;
    out[3 * n + 1] = v_[n].y;
    out[3 * n + 2] = v_[n].z;
  }
  return out;
}

double WaveSolver::kinetic_energy() const {
  double e = 0.0;
  for (std::size_t n = 0; n < v_.size(); ++n) {
    float im = inv_mass_[n];
    if (im > 0.0f) e += 0.5 / double(im) * double(v_[n].norm2());
  }
  return e;
}

}  // namespace qv::quake
