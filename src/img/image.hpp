// Framebuffer types for the sort-last renderer and the compositing module.
//
// The renderer produces premultiplied-alpha RGBA float images; compositing
// combines them front-to-back with the "over" operator; the output
// processors convert to 8-bit and write PPM files (the display path of the
// paper's output processors).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/vec.hpp"

namespace qv::img {

// One premultiplied-alpha RGBA sample.
struct Rgba {
  float r = 0.0f;
  float g = 0.0f;
  float b = 0.0f;
  float a = 0.0f;

  // Porter-Duff "over": *this is in front of `back`.
  constexpr Rgba over(Rgba back) const {
    float t = 1.0f - a;
    return {r + t * back.r, g + t * back.g, b + t * back.b, a + t * back.a};
  }
  // Accumulate `back` behind *this in place (front-to-back ray marching).
  constexpr void blend_under(Rgba back) {
    float t = 1.0f - a;
    r += t * back.r;
    g += t * back.g;
    b += t * back.b;
    a += t * back.a;
  }
  constexpr bool transparent(float eps = 1e-6f) const { return a <= eps; }
};

// Premultiplied RGBA float image, row-major, origin at top-left.
class Image {
 public:
  Image() = default;
  Image(int width, int height) : w_(width), h_(height), px_(size_t(width) * height) {}

  int width() const { return w_; }
  int height() const { return h_; }
  std::size_t pixel_count() const { return px_.size(); }
  bool empty() const { return px_.empty(); }

  Rgba& at(int x, int y) { return px_[std::size_t(y) * w_ + x]; }
  const Rgba& at(int x, int y) const { return px_[std::size_t(y) * w_ + x]; }
  std::span<Rgba> row(int y) { return {px_.data() + std::size_t(y) * w_, std::size_t(w_)}; }
  std::span<const Rgba> row(int y) const {
    return {px_.data() + std::size_t(y) * w_, std::size_t(w_)};
  }
  std::span<Rgba> pixels() { return px_; }
  std::span<const Rgba> pixels() const { return px_; }

  void clear(Rgba value = {}) { std::fill(px_.begin(), px_.end(), value); }

  // Composite `front` over *this for every pixel (sizes must match).
  void composite_over(const Image& front);

  // Blend against an opaque background color and return a displayable image.
  Image flattened(Vec3 background) const;

 private:
  int w_ = 0;
  int h_ = 0;
  std::vector<Rgba> px_;
};

// 8-bit RGB image for file output.
class Image8 {
 public:
  Image8() = default;
  Image8(int width, int height) : w_(width), h_(height), px_(std::size_t(width) * height * 3) {}

  int width() const { return w_; }
  int height() const { return h_; }
  std::uint8_t* data() { return px_.data(); }
  const std::uint8_t* data() const { return px_.data(); }
  std::size_t byte_count() const { return px_.size(); }

  void set(int x, int y, std::uint8_t r, std::uint8_t g, std::uint8_t b) {
    auto i = (std::size_t(y) * w_ + x) * 3;
    px_[i] = r;
    px_[i + 1] = g;
    px_[i + 2] = b;
  }

 private:
  int w_ = 0;
  int h_ = 0;
  std::vector<std::uint8_t> px_;
};

// Tone-map a premultiplied float image (already flattened or not) to 8-bit.
Image8 to_8bit(const Image& src, Vec3 background = {0, 0, 0});

// Binary PPM (P6) writer / reader. Returns false on I/O failure.
bool write_ppm(const std::string& path, const Image8& image);
bool read_ppm(const std::string& path, Image8& image);

// Grayscale PGM writer used by the LIC module.
bool write_pgm(const std::string& path, std::span<const float> gray, int width,
               int height);

// Root-mean-square error between two float images (all four channels).
double rmse(const Image& a, const Image& b);
// Peak signal-to-noise ratio in dB (infinite when identical).
double psnr(const Image& a, const Image& b);

}  // namespace qv::img
