// Per-channel byte-delta primitives for the frame-delivery path.
//
// The output processor streams 8-bit RGB frames to a remote viewer; between
// consecutive frames most pixels are unchanged (quiet ground, static
// background), so subtracting the previously delivered frame channel-wise
// turns the image into long zero runs that the byte RLE codec collapses.
// Deinterleaving R/G/B into contiguous planes first keeps each channel's
// runs unbroken by the other two.
//
// Quantization tiers give the delivery controller a lossy fallback: tier t
// truncates the 2t low bits of every byte and refills them by bit
// replication (so the representable range stays 0..255). The map is
// idempotent — quantizing an already-quantized byte is a no-op — which is
// what lets the encoder keep its reconstruction reference exactly equal to
// what the viewer holds, regardless of how tiers changed mid-stream.
#pragma once

#include <cstdint>
#include <span>

namespace qv::img {

// Tiers 0 (lossless) through kMaxQuantizeTier (coarsest).
inline constexpr int kMaxQuantizeTier = 3;

// Split interleaved RGB bytes (r g b r g b ...) into three contiguous
// channel planes (all R, then all G, then all B). planes.size() must equal
// rgb.size(), which must be a multiple of 3.
void deinterleave_rgb(std::span<const std::uint8_t> rgb,
                      std::span<std::uint8_t> planes);
// Inverse of deinterleave_rgb.
void interleave_rgb(std::span<const std::uint8_t> planes,
                    std::span<std::uint8_t> rgb);

// In-place tier quantization (see header comment). Tier is clamped to
// [0, kMaxQuantizeTier]; tier 0 is the identity.
void quantize_tier(std::span<std::uint8_t> bytes, int tier);

// out[i] = cur[i] - prev[i] (mod 256). Sizes must match.
void delta_encode(std::span<const std::uint8_t> prev,
                  std::span<const std::uint8_t> cur,
                  std::span<std::uint8_t> out);

// out[i] = prev[i] + delta[i] (mod 256) — the inverse of delta_encode.
void delta_apply(std::span<const std::uint8_t> prev,
                 std::span<const std::uint8_t> delta,
                 std::span<std::uint8_t> out);

}  // namespace qv::img
