#include "img/rle.hpp"

#include <cstring>

namespace qv::img {

namespace {

constexpr std::uint32_t kZeroRunFlag = 0x80000000u;
constexpr std::uint32_t kMaxCount = 0x7fffffffu;

void append_u32(RleBuffer& out, std::uint32_t v) {
  std::uint8_t b[4] = {static_cast<std::uint8_t>(v), static_cast<std::uint8_t>(v >> 8),
                       static_cast<std::uint8_t>(v >> 16),
                       static_cast<std::uint8_t>(v >> 24)};
  out.insert(out.end(), b, b + 4);
}

bool read_u32(std::span<const std::uint8_t> in, std::size_t& offset,
              std::uint32_t& v) {
  if (offset + 4 > in.size()) return false;
  v = std::uint32_t(in[offset]) | (std::uint32_t(in[offset + 1]) << 8) |
      (std::uint32_t(in[offset + 2]) << 16) | (std::uint32_t(in[offset + 3]) << 24);
  offset += 4;
  return true;
}

}  // namespace

std::size_t rle_encode(std::span<const Rgba> pixels, RleBuffer& out) {
  const std::size_t start = out.size();
  std::size_t i = 0;
  while (i < pixels.size()) {
    if (pixels[i].transparent()) {
      std::size_t j = i;
      while (j < pixels.size() && pixels[j].transparent() && j - i < kMaxCount) ++j;
      append_u32(out, static_cast<std::uint32_t>(j - i) | kZeroRunFlag);
      i = j;
    } else {
      std::size_t j = i;
      while (j < pixels.size() && !pixels[j].transparent() && j - i < kMaxCount) ++j;
      append_u32(out, static_cast<std::uint32_t>(j - i));
      std::size_t bytes = (j - i) * sizeof(Rgba);
      std::size_t off = out.size();
      out.resize(off + bytes);
      std::memcpy(out.data() + off, pixels.data() + i, bytes);
      i = j;
    }
  }
  return out.size() - start;
}

std::optional<std::size_t> rle_decode(std::span<const std::uint8_t> in,
                                      std::size_t offset,
                                      std::span<Rgba> out_pixels) {
  const std::size_t start = offset;
  std::size_t produced = 0;
  while (produced < out_pixels.size()) {
    std::uint32_t header = 0;
    if (!read_u32(in, offset, header)) return std::nullopt;  // truncated
    std::uint32_t count = header & kMaxCount;
    // The encoder never emits zero-length packets; one here means a corrupt
    // stream (and would otherwise let a hostile stream stall progress).
    if (count == 0) return std::nullopt;
    if (produced + count > out_pixels.size()) return std::nullopt;
    if (header & kZeroRunFlag) {
      std::fill_n(out_pixels.begin() + static_cast<std::ptrdiff_t>(produced),
                  count, Rgba{});
    } else {
      std::size_t bytes = std::size_t(count) * sizeof(Rgba);
      if (offset + bytes > in.size()) return std::nullopt;  // truncated payload
      std::memcpy(out_pixels.data() + produced, in.data() + offset, bytes);
      offset += bytes;
    }
    produced += count;
  }
  return offset - start;
}

double rle_ratio(std::span<const Rgba> pixels) {
  if (pixels.empty()) return 1.0;
  RleBuffer buf;
  std::size_t enc = rle_encode(pixels, buf);
  return static_cast<double>(enc) /
         static_cast<double>(pixels.size() * sizeof(Rgba));
}

}  // namespace qv::img
