// Run-length codec for RGBA image spans, used by the compositing module to
// shrink exchanged pixel traffic (the paper's conclusion reports ~50% lower
// compositing time with compression; Wylie et al. and Ahrens & Painter use
// the same idea).
//
// Volume-rendered partial images are mostly empty (fully transparent), so the
// codec distinguishes two packet kinds:
//   [count | kZeroRun]      -- `count` transparent pixels, no payload
//   [count | kLiteralRun]   -- `count` raw Rgba values follow
// Counts are 31-bit; the high bit selects the kind.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "img/image.hpp"

namespace qv::img {

// Encoded byte stream. The format is self-delimiting given the original
// pixel count is known by the receiver (it always is: spans are scheduled).
using RleBuffer = std::vector<std::uint8_t>;

// Encode `pixels` into `out` (appended). Returns encoded byte count.
std::size_t rle_encode(std::span<const Rgba> pixels, RleBuffer& out);

// Decode exactly `out_pixels.size()` pixels from `in` starting at `offset`.
// Returns the number of bytes consumed; nullopt on truncated or malformed
// input (bad header, overlong run, zero-length packet). An empty pixel span
// legitimately consumes 0 bytes — distinct from the error case, which the
// old 0-means-error convention conflated.
std::optional<std::size_t> rle_decode(std::span<const std::uint8_t> in,
                                      std::size_t offset,
                                      std::span<Rgba> out_pixels);

// Convenience: compression ratio achieved for a span (encoded/raw, <1 is a win).
double rle_ratio(std::span<const Rgba> pixels);

}  // namespace qv::img
