#include "img/image.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>

namespace qv::img {

void Image::composite_over(const Image& front) {
  for (std::size_t i = 0; i < px_.size(); ++i) {
    px_[i] = front.px_[i].over(px_[i]);
  }
}

Image Image::flattened(Vec3 background) const {
  Image out(w_, h_);
  for (std::size_t i = 0; i < px_.size(); ++i) {
    const Rgba& p = px_[i];
    float t = 1.0f - p.a;
    out.px_[i] = {p.r + t * background.x, p.g + t * background.y,
                  p.b + t * background.z, 1.0f};
  }
  return out;
}

namespace {
std::uint8_t quantize_channel(float v) {
  float c = std::clamp(v, 0.0f, 1.0f);
  return static_cast<std::uint8_t>(std::lround(c * 255.0f));
}
}  // namespace

Image8 to_8bit(const Image& src, Vec3 background) {
  Image8 out(src.width(), src.height());
  for (int y = 0; y < src.height(); ++y) {
    for (int x = 0; x < src.width(); ++x) {
      const Rgba& p = src.at(x, y);
      float t = 1.0f - p.a;
      out.set(x, y, quantize_channel(p.r + t * background.x),
              quantize_channel(p.g + t * background.y),
              quantize_channel(p.b + t * background.z));
    }
  }
  return out;
}

bool write_ppm(const std::string& path, const Image8& image) {
  std::ofstream os(path, std::ios::binary);
  if (!os) return false;
  os << "P6\n" << image.width() << ' ' << image.height() << "\n255\n";
  os.write(reinterpret_cast<const char*>(image.data()),
           static_cast<std::streamsize>(image.byte_count()));
  return static_cast<bool>(os);
}

bool read_ppm(const std::string& path, Image8& image) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return false;
  std::string magic;
  int w = 0, h = 0, maxval = 0;
  is >> magic >> w >> h >> maxval;
  if (magic != "P6" || w <= 0 || h <= 0 || maxval != 255) return false;
  is.get();  // single whitespace after header
  image = Image8(w, h);
  is.read(reinterpret_cast<char*>(image.data()),
          static_cast<std::streamsize>(image.byte_count()));
  return static_cast<bool>(is);
}

bool write_pgm(const std::string& path, std::span<const float> gray, int width,
               int height) {
  if (gray.size() != std::size_t(width) * height) return false;
  std::ofstream os(path, std::ios::binary);
  if (!os) return false;
  os << "P5\n" << width << ' ' << height << "\n255\n";
  std::vector<std::uint8_t> row(static_cast<std::size_t>(width));
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      row[std::size_t(x)] = quantize_channel(gray[std::size_t(y) * width + x]);
    }
    os.write(reinterpret_cast<const char*>(row.data()), width);
  }
  return static_cast<bool>(os);
}

double rmse(const Image& a, const Image& b) {
  if (a.width() != b.width() || a.height() != b.height() || a.pixel_count() == 0) {
    return std::numeric_limits<double>::infinity();
  }
  double sum = 0.0;
  auto pa = a.pixels();
  auto pb = b.pixels();
  for (std::size_t i = 0; i < pa.size(); ++i) {
    double dr = pa[i].r - pb[i].r;
    double dg = pa[i].g - pb[i].g;
    double db = pa[i].b - pb[i].b;
    double da = pa[i].a - pb[i].a;
    sum += dr * dr + dg * dg + db * db + da * da;
  }
  return std::sqrt(sum / (4.0 * static_cast<double>(pa.size())));
}

double psnr(const Image& a, const Image& b) {
  double e = rmse(a, b);
  if (e <= 0.0) return std::numeric_limits<double>::infinity();
  return 20.0 * std::log10(1.0 / e);
}

}  // namespace qv::img
