#include "img/delta.hpp"

#include <algorithm>
#include <cassert>

namespace qv::img {

void deinterleave_rgb(std::span<const std::uint8_t> rgb,
                      std::span<std::uint8_t> planes) {
  assert(rgb.size() == planes.size() && rgb.size() % 3 == 0);
  const std::size_t n = rgb.size() / 3;
  for (std::size_t i = 0; i < n; ++i) {
    planes[i] = rgb[3 * i];
    planes[n + i] = rgb[3 * i + 1];
    planes[2 * n + i] = rgb[3 * i + 2];
  }
}

void interleave_rgb(std::span<const std::uint8_t> planes,
                    std::span<std::uint8_t> rgb) {
  assert(rgb.size() == planes.size() && rgb.size() % 3 == 0);
  const std::size_t n = rgb.size() / 3;
  for (std::size_t i = 0; i < n; ++i) {
    rgb[3 * i] = planes[i];
    rgb[3 * i + 1] = planes[n + i];
    rgb[3 * i + 2] = planes[2 * n + i];
  }
}

void quantize_tier(std::span<std::uint8_t> bytes, int tier) {
  tier = std::clamp(tier, 0, kMaxQuantizeTier);
  if (tier == 0) return;
  const int drop = 2 * tier;  // low bits truncated per byte
  const int keep = 8 - drop;
  for (auto& b : bytes) {
    std::uint8_t q = std::uint8_t((b >> drop) << drop);
    // Refill the dropped bits by replicating the kept ones, so 0 stays 0
    // and 255 stays 255. Only the kept high bits feed the next round's
    // truncation, which is what makes the map idempotent.
    for (int s = keep; s < 8; s += keep) q = std::uint8_t(q | (q >> s));
    b = q;
  }
}

void delta_encode(std::span<const std::uint8_t> prev,
                  std::span<const std::uint8_t> cur,
                  std::span<std::uint8_t> out) {
  assert(prev.size() == cur.size() && cur.size() == out.size());
  for (std::size_t i = 0; i < cur.size(); ++i) {
    out[i] = std::uint8_t(cur[i] - prev[i]);
  }
}

void delta_apply(std::span<const std::uint8_t> prev,
                 std::span<const std::uint8_t> delta,
                 std::span<std::uint8_t> out) {
  assert(prev.size() == delta.size() && delta.size() == out.size());
  for (std::size_t i = 0; i < delta.size(); ++i) {
    out[i] = std::uint8_t(prev[i] + delta[i]);
  }
}

}  // namespace qv::img
