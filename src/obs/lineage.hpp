// Frame lineage: an always-on flight recorder for the delivery chain.
//
// Every frame carries a stable identity — (step, view epoch) — from the
// render ranks through compositing, encoding, the per-client server queues,
// the simulated WAN, and finally a viewer's decode. Each stage appends one
// timestamped lineage event to a bounded per-channel ring buffer (a channel
// is a vmpi rank on the render side or a client id on the delivery side).
// The rings overwrite oldest-first, so the recorder always holds the most
// recent history and its steady-state cost is bounded.
//
// Two clock domains, never mixed:
//   * kWall    — seconds on the process steady clock, rebased to the trace
//                epoch (trace::now_since_epoch_ns), so lineage events line
//                up with trace spans in a merged Chrome timeline.
//   * kVirtual — the discrete-event WAN clock (WanLink / replay time).
// A wall timestamp and a virtual timestamp are different units that happen
// to both be called "seconds"; delta_s() refuses to subtract across domains
// (returns nullopt), and the Chrome export puts the domains under separate
// pids so they can never be visually conflated either.
//
// Cost contract: when disabled (the default) every record_*() call is one
// relaxed atomic load — no clock reads, no locks, no allocation (measured
// on bench_pipeline_small; see DESIGN.md "Frame lineage & SLOs"). When
// enabled, a record is a clock read plus a mutex-guarded ring write; frame
// delivery runs at frame rates, not message rates, so one global mutex is
// plenty and keeps the recorder trivially TSan-clean.
//
// Post-mortems: set_dump_path() names a JSON file ("qv-flight-recorder"
// schema); dump_now() writes the recorder state there. install_fault_observer()
// hooks vmpi::Runtime so a fault-plan rank kill or a world abort dumps
// automatically — a fault-injected run leaves a post-mortem, not just an
// exit code. The DeliveryServer dumps on client eviction the same way.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace qv::obs::lineage {

enum class Domain : std::uint8_t { kWall = 0, kVirtual = 1 };

enum class Stage : std::uint8_t {
  kRender = 0,      // render ranks: raycasting the step's blocks
  kComposite,       // render ranks: parallel compositing
  kFrame,           // output rank: frame assembled (LIC overlay, tone map)
  kEncode,          // output/serve/replay: wire encode (bank or encoder)
  kCacheLookup,     // content-addressed cache get
  kEnqueue,         // wire handed to a client's WAN link
  kQueueWait,       // virtual: time queued behind earlier frames / outages
  kWire,            // virtual: send issued -> transfer complete
  kDecode,          // viewer-side decode of a delivered frame
  kDrop,            // frame dropped for a client (budget / controller)
  kEvict,           // client evicted (stalled queue)
  kSteerApply,      // steering edit applied: epoch = the request id, so the
                    // event records request_id -> first-serving-epoch
};

enum class ChannelKind : std::uint8_t { kRank = 0, kClient = 1 };

struct Event {
  std::int64_t step = 0;      // simulation step (the frame id's first half)
  std::uint32_t epoch = 0;    // view epoch (the frame id's second half)
  Stage stage = Stage::kRender;
  Domain domain = Domain::kWall;
  ChannelKind channel_kind = ChannelKind::kRank;
  std::int32_t channel = 0;   // rank or client id
  double t_s = 0.0;           // stage start, in the event's own domain
  double dur_s = 0.0;         // stage duration; 0 for point events
};

const char* stage_name(Stage s) noexcept;
const char* domain_name(Domain d) noexcept;

// --- global switch ---------------------------------------------------------
namespace detail {
extern std::atomic<bool> g_on;
void record_slow(const Event& ev) noexcept;
}  // namespace detail

inline bool enabled() noexcept {
  return detail::g_on.load(std::memory_order_relaxed);
}

// Clears the recorder, (re)arms it. Same concurrency contract as
// trace::enable(): not concurrent with recording threads.
void enable();
void disable() noexcept;
void reset();
// Per-channel ring capacity for rings created after this call (default 256).
void set_capacity(std::size_t events_per_channel);
// Where dump_now() writes; empty disables dumping.
void set_dump_path(std::string path);
const std::string& dump_path();

// --- recording -------------------------------------------------------------
inline void record(const Event& ev) noexcept {
  if (!enabled()) return;
  detail::record_slow(ev);
}

// Wall-domain convenience: stamps t_s from the trace clock, backdated by
// dur_s so the event covers [now - dur, now] — callers time a stage with a
// WallTimer and record on completion.
void record_wall(Stage stage, std::int64_t step, std::uint32_t epoch,
                 ChannelKind kind, int channel, double dur_s = 0.0) noexcept;

// Virtual-domain convenience: the caller owns the clock, so t_s (the stage
// START on that clock) is explicit.
void record_virtual(Stage stage, std::int64_t step, std::uint32_t epoch,
                    ChannelKind kind, int channel, double t_s,
                    double dur_s = 0.0) noexcept;

// --- cross-domain safety ---------------------------------------------------
// b.t_s - a.t_s, or nullopt when the events live in different clock
// domains — a wall/virtual difference is meaningless and the recorder
// refuses to compute one (test-pinned).
std::optional<double> delta_s(const Event& a, const Event& b) noexcept;

// --- inspection / export ---------------------------------------------------
struct ChannelDump {
  ChannelKind kind = ChannelKind::kRank;
  std::int32_t id = 0;
  std::uint64_t overwritten = 0;  // events the ring displaced (oldest-first)
  std::vector<Event> events;      // oldest -> newest
};

// Snapshot of every channel ring, ordered by (kind, id). Safe to call while
// recorders run (the recorder mutex serializes).
std::vector<ChannelDump> collect();

// The "qv-flight-recorder" JSON document for the current recorder state.
std::string dump_json(const std::string& reason);

// Write dump_json(reason) to the configured dump path. No-op (returns
// false) when no path is set or the recorder is disabled; never throws —
// this runs on fault paths.
bool dump_now(const char* reason) noexcept;

// Chrome trace-event fragment (comma-joined event objects, no enclosing
// brackets) rendering every frame id as an async waterfall: ph "b"/"e"
// bracket the frame per domain, ph "n" marks each stage. Wall events emit
// under pid 0 (alongside trace spans), virtual events under pid 1 with its
// own process_name — the two domains never share a timeline. Empty string
// when the recorder holds no events. Feed to trace::write_chrome_json's
// extra_events parameter.
std::string chrome_fragment();

// Register the vmpi fault observer: a fault-plan rank kill dumps with
// reason "rank_killed", a world abort with "world_abort". Idempotent.
void install_fault_observer() noexcept;

}  // namespace qv::obs::lineage
