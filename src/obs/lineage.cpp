#include "obs/lineage.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <utility>

#include "trace/trace.hpp"
#include "vmpi/comm.hpp"

namespace qv::obs::lineage {

const char* stage_name(Stage s) noexcept {
  switch (s) {
    case Stage::kRender: return "render";
    case Stage::kComposite: return "composite";
    case Stage::kFrame: return "frame";
    case Stage::kEncode: return "encode";
    case Stage::kCacheLookup: return "cache_lookup";
    case Stage::kEnqueue: return "enqueue";
    case Stage::kQueueWait: return "queue_wait";
    case Stage::kWire: return "wire";
    case Stage::kDecode: return "decode";
    case Stage::kDrop: return "drop";
    case Stage::kEvict: return "evict";
    case Stage::kSteerApply: return "steer_apply";
  }
  return "unknown";
}

const char* domain_name(Domain d) noexcept {
  return d == Domain::kWall ? "wall" : "virtual";
}

namespace detail {
std::atomic<bool> g_on{false};
}  // namespace detail

namespace {

// Fixed-capacity overwrite-oldest ring: the flight-recorder property. The
// ring always holds the `cap` NEWEST events; `overwritten` counts what the
// wraparound displaced.
struct Ring {
  std::vector<Event> buf;
  std::size_t cap = 0;
  std::size_t head = 0;   // next write position
  std::size_t count = 0;  // live events, <= cap
  std::uint64_t overwritten = 0;

  void push(const Event& ev) {
    if (count < cap) {
      buf[head] = ev;
      head = (head + 1) % cap;
      ++count;
    } else {
      buf[head] = ev;  // displaces the oldest
      head = (head + 1) % cap;
      ++overwritten;
    }
  }

  std::vector<Event> snapshot() const {  // oldest -> newest
    std::vector<Event> out;
    out.reserve(count);
    const std::size_t start = (head + cap - count) % cap;
    for (std::size_t i = 0; i < count; ++i)
      out.push_back(buf[(start + i) % cap]);
    return out;
  }
};

struct Recorder {
  std::mutex mu;
  // Ordered map: collect()/dump order is deterministic by construction.
  std::map<std::pair<std::uint8_t, std::int32_t>, Ring> rings;
  std::size_t capacity = 256;
  std::string dump_path;
};

Recorder& recorder() {
  static Recorder* r = new Recorder;  // leaked: usable during teardown/abort
  return *r;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string fmt_s(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

void observer_hook(const char* reason, int /*rank*/) noexcept {
  dump_now(reason);
}

}  // namespace

namespace detail {

void record_slow(const Event& ev) noexcept {
  try {
    Recorder& r = recorder();
    std::lock_guard<std::mutex> lock(r.mu);
    auto key = std::make_pair(std::uint8_t(ev.channel_kind), ev.channel);
    Ring& ring = r.rings[key];
    if (ring.cap == 0) {
      ring.cap = r.capacity == 0 ? 1 : r.capacity;
      ring.buf.resize(ring.cap);
    }
    ring.push(ev);
  } catch (...) {
    // Allocation failure on an observability path must never take down the
    // run it observes.
  }
}

}  // namespace detail

void enable() {
  reset();
  detail::g_on.store(true, std::memory_order_relaxed);
}

void disable() noexcept {
  detail::g_on.store(false, std::memory_order_relaxed);
}

void reset() {
  Recorder& r = recorder();
  std::lock_guard<std::mutex> lock(r.mu);
  r.rings.clear();
}

void set_capacity(std::size_t events_per_channel) {
  Recorder& r = recorder();
  std::lock_guard<std::mutex> lock(r.mu);
  r.capacity = events_per_channel == 0 ? 1 : events_per_channel;
}

void set_dump_path(std::string path) {
  Recorder& r = recorder();
  std::lock_guard<std::mutex> lock(r.mu);
  r.dump_path = std::move(path);
}

const std::string& dump_path() {
  Recorder& r = recorder();
  std::lock_guard<std::mutex> lock(r.mu);
  return r.dump_path;
}

void record_wall(Stage stage, std::int64_t step, std::uint32_t epoch,
                 ChannelKind kind, int channel, double dur_s) noexcept {
  if (!enabled()) return;
  Event ev;
  ev.step = step;
  ev.epoch = epoch;
  ev.stage = stage;
  ev.domain = Domain::kWall;
  ev.channel_kind = kind;
  ev.channel = channel;
  ev.t_s = double(trace::now_since_epoch_ns()) * 1e-9 - dur_s;
  ev.dur_s = dur_s;
  detail::record_slow(ev);
}

void record_virtual(Stage stage, std::int64_t step, std::uint32_t epoch,
                    ChannelKind kind, int channel, double t_s,
                    double dur_s) noexcept {
  if (!enabled()) return;
  Event ev;
  ev.step = step;
  ev.epoch = epoch;
  ev.stage = stage;
  ev.domain = Domain::kVirtual;
  ev.channel_kind = kind;
  ev.channel = channel;
  ev.t_s = t_s;
  ev.dur_s = dur_s;
  detail::record_slow(ev);
}

std::optional<double> delta_s(const Event& a, const Event& b) noexcept {
  if (a.domain != b.domain) return std::nullopt;
  return b.t_s - a.t_s;
}

std::vector<ChannelDump> collect() {
  Recorder& r = recorder();
  std::lock_guard<std::mutex> lock(r.mu);
  std::vector<ChannelDump> out;
  out.reserve(r.rings.size());
  for (const auto& [key, ring] : r.rings) {
    ChannelDump d;
    d.kind = ChannelKind(key.first);
    d.id = key.second;
    d.overwritten = ring.overwritten;
    d.events = ring.snapshot();
    out.push_back(std::move(d));
  }
  return out;
}

std::string dump_json(const std::string& reason) {
  const auto channels = collect();
  std::ostringstream os;
  os << "{\n  \"schema\": \"qv-flight-recorder\",\n  \"version\": 1,\n"
     << "  \"reason\": \"" << json_escape(reason) << "\",\n"
     << "  \"channels\": [";
  for (std::size_t ci = 0; ci < channels.size(); ++ci) {
    const ChannelDump& c = channels[ci];
    os << (ci ? ",\n    " : "\n    ") << "{\"kind\": \""
       << (c.kind == ChannelKind::kRank ? "rank" : "client")
       << "\", \"id\": " << c.id << ", \"overwritten\": " << c.overwritten
       << ", \"events\": [";
    for (std::size_t i = 0; i < c.events.size(); ++i) {
      const Event& ev = c.events[i];
      os << (i ? ",\n      " : "\n      ") << "{\"step\": " << ev.step
         << ", \"epoch\": " << ev.epoch << ", \"stage\": \""
         << stage_name(ev.stage) << "\", \"domain\": \""
         << domain_name(ev.domain) << "\", \"t_s\": " << fmt_s(ev.t_s)
         << ", \"dur_s\": " << fmt_s(ev.dur_s) << "}";
    }
    os << (c.events.empty() ? "" : "\n    ") << "]}";
  }
  os << (channels.empty() ? "" : "\n  ") << "]\n}\n";
  return os.str();
}

bool dump_now(const char* reason) noexcept {
  try {
    if (!enabled()) return false;
    std::string path;
    {
      Recorder& r = recorder();
      std::lock_guard<std::mutex> lock(r.mu);
      path = r.dump_path;
    }
    if (path.empty()) return false;
    std::ofstream f(path, std::ios::trunc);
    if (!f) return false;
    f << dump_json(reason ? reason : "unknown");
    f.flush();
    return bool(f);
  } catch (...) {
    return false;
  }
}

std::string chrome_fragment() {
  const auto channels = collect();

  // Regroup by frame id + domain: one async track per (step, epoch, domain).
  struct Key {
    std::int64_t step;
    std::uint32_t epoch;
    Domain domain;
    bool operator<(const Key& o) const {
      if (step != o.step) return step < o.step;
      if (epoch != o.epoch) return epoch < o.epoch;
      return domain < o.domain;
    }
  };
  std::map<Key, std::vector<Event>> frames;
  for (const auto& c : channels)
    for (const auto& ev : c.events)
      frames[{ev.step, ev.epoch, ev.domain}].push_back(ev);
  if (frames.empty()) return {};

  std::ostringstream os;
  bool first = true;
  auto sep = [&]() {
    if (!first) os << ",\n";
    first = false;
  };
  auto ts_us = [](double t_s) {
    char buf[48];
    std::snprintf(buf, sizeof buf, "%.3f", t_s * 1e6);
    return std::string(buf);
  };
  bool virtual_meta = false;
  for (auto& [key, evs] : frames) {
    const int pid = key.domain == Domain::kWall ? 0 : 1;
    if (pid == 1 && !virtual_meta) {
      // Label the virtual-time domain as its own process so merged traces
      // can never read a WAN timestamp against the wall clock.
      sep();
      os << "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\","
            "\"args\":{\"name\":\"wan virtual time\"}}";
      virtual_meta = true;
    }
    std::sort(evs.begin(), evs.end(),
              [](const Event& a, const Event& b) { return a.t_s < b.t_s; });
    double lo = evs.front().t_s;
    double hi = evs.front().t_s + evs.front().dur_s;
    for (const auto& ev : evs) {
      lo = std::min(lo, ev.t_s);
      hi = std::max(hi, ev.t_s + ev.dur_s);
    }
    char id[64], name[64];
    std::snprintf(id, sizeof id, "%lld@%u:%s",
                  static_cast<long long>(key.step), key.epoch,
                  domain_name(key.domain));
    std::snprintf(name, sizeof name, "frame %lld@%u",
                  static_cast<long long>(key.step), key.epoch);
    sep();
    os << "{\"ph\":\"b\",\"cat\":\"lineage\",\"id\":\"" << id
       << "\",\"name\":\"" << name << "\",\"pid\":" << pid
       << ",\"tid\":" << evs.front().channel << ",\"ts\":" << ts_us(lo) << "}";
    for (const auto& ev : evs) {
      sep();
      os << "{\"ph\":\"n\",\"cat\":\"lineage\",\"id\":\"" << id
         << "\",\"name\":\"" << stage_name(ev.stage) << "\",\"pid\":" << pid
         << ",\"tid\":" << ev.channel << ",\"ts\":" << ts_us(ev.t_s)
         << ",\"args\":{\"channel\":\""
         << (ev.channel_kind == ChannelKind::kRank ? "rank " : "client ")
         << ev.channel << "\",\"dur_ms\":" << fmt_s(ev.dur_s * 1e3) << "}}";
    }
    sep();
    os << "{\"ph\":\"e\",\"cat\":\"lineage\",\"id\":\"" << id
       << "\",\"name\":\"" << name << "\",\"pid\":" << pid
       << ",\"tid\":" << evs.back().channel << ",\"ts\":" << ts_us(hi) << "}";
  }
  return os.str();
}

void install_fault_observer() noexcept {
  vmpi::set_fault_observer(&observer_hook);
}

}  // namespace qv::obs::lineage
