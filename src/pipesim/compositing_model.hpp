// Analytic compositing-time model over the Machine link parameters,
// recalibrated for the radix-k exchange structure (ROADMAP item 5). The
// old model (and Machine::composite_seconds) treated compositing as a
// constant; this one derives time from the actual exchange pattern:
//
//   direct-send: each rank sends P-1 piece messages plus a gather tile —
//                per-message latency grows linearly in P and dominates at
//                the paper's 512-3072 processor scales;
//   SLIC:        message-lean scheduled spans (constants measured from the
//                real algorithm in bench_compositing);
//   radix-k:     the rounds of plan_radix_rounds() — per round a rank
//                sends f-1 messages carrying (f-1)/f of its piece volume,
//                so latency grows only with sum(f_i - 1) ~ k*log_k(P);
//   compression: bytes scaled by the active-pixel RLE ratio measured on
//                sparse wavefront partials.
//
// Shared by bench_compositing_scaling and the pipesim regression tests so
// the paper's §7 scaling shape is asserted, not just plotted once.
#pragma once

#include "compositing/radix_k.hpp"
#include "pipesim/machine.hpp"

namespace qv::pipesim {

enum class CompositeAlgorithm { kDirectSend, kSlic, kRadixK };

// Traffic/shape constants measured from the real algorithms on this host
// (bench_compositing, 8 ranks, 512^2 wavefront partials; see
// BENCH_compositing.json).
struct CompositingModel {
  double bytes_per_pixel = 16.0;  // RGBA float
  // Depth complexity of sort-last partials: every pixel is covered by a
  // handful of blocks regardless of P (the wavefront is a surface).
  double depth = 3.0;
  double slic_exchange = 0.7;          // SLIC ships only multi-owner spans
  double slic_messages_per_rank = 2.6; // measured ~21 messages at P=8
  double rle_ratio = 0.27;             // active-pixel RLE ratio, sparse frames
  double pixel_cost = 6e-9;            // local blend cost per pixel
};

struct CompositePoint {
  double seconds = 0;   // busiest-rank compositing time per frame
  double mb_moved = 0;  // total bytes exchanged, all ranks
  double messages = 0;  // total messages, all ranks
  int rounds = 0;       // exchange rounds (radix-k only)
};

CompositePoint model_composite(CompositeAlgorithm algo, int ranks, int width,
                               int k, bool compress, const Machine& machine,
                               const CompositingModel& model = {});

}  // namespace qv::pipesim
