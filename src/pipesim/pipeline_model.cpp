#include "pipesim/pipeline_model.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <optional>

#include "sim/engine.hpp"
#include "sim/fault.hpp"

namespace qv::pipesim {

namespace {

// Shared state of one simulation run.
struct Ctx {
  sim::Engine engine;
  sim::SharedBandwidth disk;
  // The delivery channel into the renderer group: one time step's blocks
  // stream in at a time (Figure 5's staggered sends — a later step's send
  // waits until the renderers have ingested the previous one). This is what
  // bounds 1DIP at Ts and makes 2DIP's Ts/m division worthwhile.
  sim::Resource ingest;
  sim::Queue<int> arrivals;  // step ids whose data reached the renderers
  PipelineParams params;
  std::vector<double> frame_times;
  double render_busy = 0.0;
  std::optional<sim::FaultyBandwidth> disk_fault;

  explicit Ctx(const PipelineParams& p)
      : disk(engine, p.machine.disk_total_bw, p.machine.disk_stream_bw),
        ingest(engine, 1),
        arrivals(engine),
        params(p) {
    if (p.disk_fault.active()) {
      auto cfg = p.disk_fault;
      if (cfg.horizon_seconds <= 0.0) {
        // Serial-execution upper bound: even with zero overlap the run ends
        // before this, so every outage that can matter is pre-scheduled.
        const auto& mc = p.machine;
        double per_step = mc.fetch_seconds(mc.step_bytes) +
                          mc.preprocess_seconds(mc.step_bytes) +
                          mc.send_seconds(mc.step_bytes) + p.render_seconds +
                          mc.composite_seconds + p.extra_input_seconds;
        double down_frac = cfg.mean_down_seconds /
                           (cfg.mean_up_seconds + cfg.mean_down_seconds);
        double avail =
            1.0 - down_frac * (1.0 - std::max(0.0, cfg.degraded_factor));
        cfg.horizon_seconds =
            per_step * p.num_steps / std::max(avail, 0.1) + 60.0;
      }
      disk_fault.emplace(engine, disk, cfg);
    }
  }

  double fetch_bytes() const {
    return params.machine.step_bytes * params.fetch_fraction;
  }
};

// --- 1DIP -------------------------------------------------------------------

sim::Process input_proc_1dip(Ctx& ctx, int id) {
  const auto& mc = ctx.params.machine;
  for (int s = id; s < ctx.params.num_steps; s += ctx.params.input_procs) {
    co_await ctx.disk.transfer(ctx.fetch_bytes());
    co_await sim::delay(ctx.engine,
                        mc.preprocess_seconds(ctx.fetch_bytes()) +
                            ctx.params.extra_input_seconds);
    // One processor ships the whole step; deliveries into the renderers are
    // serialized step by step.
    co_await ctx.ingest.acquire();
    co_await sim::delay(ctx.engine,
                        mc.send_seconds(ctx.fetch_bytes()) + mc.latency);
    ctx.ingest.release();
    ctx.arrivals.push(s);
  }
}

// --- 2DIP -------------------------------------------------------------------

// One member of a 2DIP group: fetches and preprocesses its 1/m share; the
// driver joins the members, then streams the step's blocks to the
// renderers over m concurrent links (so the ingest channel is held for
// only Ts' = Ts/m).
sim::Process group_member_2dip(Ctx& ctx, double share_bytes,
                               sim::JoinCounter& join) {
  const auto& mc = ctx.params.machine;
  co_await ctx.disk.transfer(share_bytes);
  co_await sim::delay(
      ctx.engine, mc.preprocess_seconds(share_bytes) +
                      ctx.params.extra_input_seconds / ctx.params.input_procs);
  (void)mc;
  join.arrive();
}

sim::Process group_driver_2dip(Ctx& ctx, int group) {
  const auto& mc = ctx.params.machine;
  const int m = ctx.params.input_procs;
  for (int s = group; s < ctx.params.num_steps; s += ctx.params.groups) {
    sim::JoinCounter join(ctx.engine, m);
    double share = ctx.fetch_bytes() / m;
    for (int i = 0; i < m; ++i) group_member_2dip(ctx, share, join);
    co_await join.wait();
    co_await ctx.ingest.acquire();
    co_await sim::delay(ctx.engine, mc.send_seconds(share) + mc.latency);
    ctx.ingest.release();
    ctx.arrivals.push(s);
  }
}

// --- renderer group ----------------------------------------------------------

sim::Process render_group(Ctx& ctx) {
  const auto& mc = ctx.params.machine;
  std::map<int, bool> buffered;
  int expected = 0;
  while (expected < ctx.params.num_steps) {
    int s = co_await ctx.arrivals.pop();
    buffered[s] = true;
    while (buffered.count(expected)) {
      buffered.erase(expected);
      co_await sim::delay(ctx.engine, ctx.params.render_seconds);
      co_await sim::delay(ctx.engine, mc.composite_seconds);
      ctx.render_busy += ctx.params.render_seconds + mc.composite_seconds;
      ctx.frame_times.push_back(ctx.engine.now());
      ++expected;
    }
  }
}

// --- naive baseline ----------------------------------------------------------

sim::Process naive_loop(Ctx& ctx) {
  const auto& mc = ctx.params.machine;
  for (int s = 0; s < ctx.params.num_steps; ++s) {
    co_await ctx.disk.transfer(ctx.fetch_bytes());
    co_await sim::delay(ctx.engine,
                        mc.preprocess_seconds(ctx.fetch_bytes()) +
                            ctx.params.extra_input_seconds);
    co_await sim::delay(ctx.engine, ctx.params.render_seconds);
    co_await sim::delay(ctx.engine, mc.composite_seconds);
    ctx.render_busy += ctx.params.render_seconds + mc.composite_seconds;
    ctx.frame_times.push_back(ctx.engine.now());
  }
}

PipelineResult finish(Ctx& ctx) {
  PipelineResult r;
  r.frame_times = std::move(ctx.frame_times);
  // The last frame, not engine.now(): pre-scheduled fault events past the
  // end of the animation still drain from the queue and advance the clock.
  r.total_seconds =
      r.frame_times.empty() ? ctx.engine.now() : r.frame_times.back();
  if (ctx.disk_fault) {
    for (const auto& [begin, end] : ctx.disk_fault->outages()) {
      if (begin >= r.total_seconds) break;
      r.disk_degraded_seconds += std::min(end, r.total_seconds) - begin;
      ++r.disk_outages;
    }
  }
  if (r.frame_times.size() >= 2) {
    // Steady state: second half of the animation.
    std::size_t first = r.frame_times.size() / 2;
    if (first == 0) first = 1;
    double sum = 0.0;
    std::size_t n = 0;
    for (std::size_t i = std::max<std::size_t>(first, 1);
         i < r.frame_times.size(); ++i) {
      sum += r.frame_times[i] - r.frame_times[i - 1];
      ++n;
    }
    r.avg_interframe = n ? sum / double(n) : 0.0;
  }
  r.render_busy_fraction =
      r.total_seconds > 0.0 ? ctx.render_busy / r.total_seconds : 0.0;
  return r;
}

}  // namespace

PipelineResult simulate_1dip(const PipelineParams& params) {
  Ctx ctx(params);
  for (int i = 0; i < params.input_procs; ++i) input_proc_1dip(ctx, i);
  render_group(ctx);
  ctx.engine.run();
  return finish(ctx);
}

PipelineResult simulate_2dip(const PipelineParams& params) {
  Ctx ctx(params);
  for (int g = 0; g < params.groups; ++g) group_driver_2dip(ctx, g);
  render_group(ctx);
  ctx.engine.run();
  return finish(ctx);
}

PipelineResult simulate_naive(const PipelineParams& params) {
  Ctx ctx(params);
  naive_loop(ctx);
  ctx.engine.run();
  return finish(ctx);
}

Plan plan(const Machine& machine, double render_seconds,
          double extra_input_seconds, double fetch_fraction) {
  Plan p;
  double bytes = machine.step_bytes * fetch_fraction;
  p.tf = machine.fetch_seconds(bytes);
  p.tp = machine.preprocess_seconds(bytes) + extra_input_seconds;
  p.ts = machine.send_seconds(bytes);
  // 1DIP: hide Tf + Tp behind sends when Ts >= Tr; behind renders otherwise
  // ("when Ts is smaller than the rendering time ... we can let
  //  m = (Tf+Tp)/Tr + 1 instead" — §5.1).
  double denom = std::max(p.ts, render_seconds);
  p.m_1dip = int(std::ceil((p.tf + p.tp) / denom)) + 1;
  // 2DIP: group width so the per-group send fits under the render time.
  p.m_2dip = std::max(1, int(std::ceil(p.ts / render_seconds)));
  double tsp = p.ts / p.m_2dip;
  double tfp = p.tf / p.m_2dip;
  double tpp = p.tp / p.m_2dip;
  p.n_2dip = int(std::ceil((tfp + tpp) / tsp)) + 1;
  return p;
}

}  // namespace qv::pipesim
