// Measures the real kernels of this library (raycasting, quantization, LIC)
// on the host and scales a Machine description from them. The DES figures
// use the paper-calibrated Machine by default; the calibration path
// documents how those constants map onto measured kernel rates, so the
// model is anchored to running code rather than hand-picked numbers alone.
#pragma once

#include "pipesim/machine.hpp"

namespace qv::pipesim {

struct KernelRates {
  double render_samples_per_sec = 0.0;  // raycaster volume samples / s
  double quantize_bytes_per_sec = 0.0;  // 32->8 bit quantization throughput
  double lic_pixels_per_sec = 0.0;      // LIC output pixels / s
};

// Quick micro-measurements on synthetic inputs (a few hundred ms total).
KernelRates measure_kernel_rates();

// Derived figure: what Tr would be for `pixels` at `procs` renderers given
// `samples_per_ray` average depth complexity and a per-processor rate.
double render_seconds_from_rate(const KernelRates& rates, int procs, int pixels,
                                double samples_per_ray);

}  // namespace qv::pipesim
