#include "pipesim/calibration.hpp"

#include <vector>

#include "io/block_index.hpp"
#include "io/preprocess.hpp"
#include "lic/lic.hpp"
#include "mesh/linear_octree.hpp"
#include "octree/blocks.hpp"
#include "quake/synthetic.hpp"
#include "render/raycast.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace qv::pipesim {

KernelRates measure_kernel_rates() {
  KernelRates rates;

  // Raycasting rate: render a small synthetic volume and count samples.
  {
    Box3 domain{{0, 0, 0}, {1, 1, 1}};
    mesh::HexMesh mesh(mesh::LinearOctree::uniform(domain, 4));
    quake::SyntheticQuake quake;
    auto vel = quake.sample_nodes(mesh, 2.0f);
    auto mag = io::magnitude(vel, 3);

    auto blocks = octree::decompose(mesh.octree(), 1);
    octree::estimate_workloads(mesh.octree(), blocks,
                               octree::WorkloadModel::kCellCount);
    io::BlockNodeIndex index(mesh, blocks);
    std::vector<render::RenderBlock> rblocks;
    for (std::size_t b = 0; b < blocks.size(); ++b) {
      rblocks.emplace_back(mesh, blocks[b], index.block_nodes(b));
      std::vector<float> vals;
      for (auto n : index.block_nodes(b)) vals.push_back(mag[n]);
      rblocks.back().set_values(std::move(vals));
    }
    auto tf = render::TransferFunction::seismic();
    render::RenderOptions opt;
    opt.value_hi = 2.0f;
    render::Camera cam = render::Camera::overview(domain, 128, 128);
    render::RenderStats stats;
    WallTimer timer;
    (void)render::render_frame(cam, tf, opt, rblocks, blocks, domain, &stats);
    double secs = timer.seconds();
    rates.render_samples_per_sec =
        secs > 0.0 ? double(stats.samples) / secs : 1e8;
  }

  // Quantization throughput.
  {
    Rng rng(7);
    std::vector<float> data(4 << 20);
    for (auto& v : data) v = rng.next_float();
    WallTimer timer;
    auto q = io::quantize(data);
    double secs = timer.seconds();
    rates.quantize_bytes_per_sec =
        secs > 0.0 ? double(data.size() * sizeof(float)) / secs : 1e9;
    (void)q;
  }

  // LIC throughput.
  {
    const int n = 128;
    lic::VectorGrid grid(n, n, {0, 0, 1, 1});
    for (int y = 0; y < n; ++y)
      for (int x = 0; x < n; ++x)
        grid.at(x, y) = {float(y - n / 2), float(n / 2 - x)};
    auto noise = lic::make_noise(n, n, 11);
    lic::LicOptions opt;
    WallTimer timer;
    auto out = lic::compute_lic(grid, noise, n, n, opt);
    double secs = timer.seconds();
    rates.lic_pixels_per_sec = secs > 0.0 ? double(n) * n / secs : 1e6;
    (void)out;
  }

  return rates;
}

double render_seconds_from_rate(const KernelRates& rates, int procs, int pixels,
                                double samples_per_ray) {
  double total_samples = double(pixels) * samples_per_ray;
  return total_samples / (rates.render_samples_per_sec * double(procs));
}

}  // namespace qv::pipesim
