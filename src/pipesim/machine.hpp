// Machine model calibrated to the paper's testbed (LeMieux at PSC) and
// dataset (100M hexahedral cells, ~400 MB per time step).
//
// Calibration anchors, all from §6:
//  * one input processor needs ~22 s of I/O + preprocessing per step
//    -> per-stream effective disk rate ~22.5 MB/s (Tf ~ 17.8 s) plus a
//       preprocessing rate of 100 MB/s (Tp ~ 4 s);
//  * 12 input processors hide I/O behind a 2 s render (Fig 8), consistent
//    with the paper's own m = (Tf+Tp)/Ts + 1 at Ts ~ 2 s
//    -> effective per-processor send bandwidth ~200 MB/s;
//  * rendering 512x512 on 64 PEs costs ~2 s and scales ~1/R (Fig 8, Fig 9);
//  * compositing cost is "about constant" (§7) -> fixed Tc.
// The same constants can be re-derived from this library's real kernels via
// pipesim::calibrate_* helpers (see calibration.hpp).
#pragma once

namespace qv::pipesim {

struct Machine {
  double step_bytes = 400e6;        // one full-resolution time step
  double disk_total_bw = 1.6e9;     // aggregate parallel-FS bandwidth, B/s
  double disk_stream_bw = 22.5e6;   // effective per-reader bandwidth, B/s
  double preprocess_bw = 100e6;     // preprocessing throughput per proc, B/s
  double link_bw = 200e6;           // per-processor send bandwidth, B/s
  double composite_seconds = 0.25;  // constant compositing cost
  double latency = 1e-4;            // per-message latency, s

  double fetch_seconds(double bytes) const { return bytes / disk_stream_bw; }
  double preprocess_seconds(double bytes) const { return bytes / preprocess_bw; }
  double send_seconds(double bytes) const { return bytes / link_bw; }
};

// Render-time model: the paper's renderer scales close to linearly in the
// processor count and in the pixel count; adaptive rendering at a coarser
// level divides the sample work by ~the cell-count ratio (3-4x from level
// 13 to level 8 in Fig 3).
struct RenderModel {
  double base_seconds = 2.0;   // 512x512, 64 PEs, full resolution, no lighting
  int base_procs = 64;
  int base_pixels = 512 * 512;
  double lighting_factor = 4.5;  // gradient probes + shading per-sample multiplier

  double seconds(int procs, int pixels, bool lighting,
                 double adaptive_work_fraction = 1.0) const {
    double t = base_seconds * (double(base_procs) / procs) *
               (double(pixels) / base_pixels) * adaptive_work_fraction;
    return lighting ? t * lighting_factor : t;
  }
};

}  // namespace qv::pipesim
