// Discrete-event models of the paper's pipeline configurations (§5):
//
//   1DIP  — m input processors, each fetching + preprocessing + sending one
//           COMPLETE time step (m steps in flight);
//   2DIP  — n groups of m input processors, each group fetching one step,
//           every member handling 1/m of it (so Ts' = Ts/m, Tp' = Tp/m);
//   naive — the pre-pipeline baseline of the earlier system [16]: one
//           reader, no overlap between I/O, preprocessing and rendering
//           (the 15-20 s interframe delay the introduction reports).
//
// The renderers are modeled as a synchronized group that consumes steps in
// order, renders for Tr, composites for Tc, and emits one frame; data for
// later steps continues to arrive in the background exactly as in §4
// ("new data blocks ... are continuously transferred ... in the background").
#pragma once

#include <vector>

#include "pipesim/machine.hpp"
#include "sim/fault.hpp"

namespace qv::pipesim {

struct PipelineParams {
  Machine machine;
  int input_procs = 12;     // m: total (1DIP) or per-group (2DIP)
  int groups = 4;           // n: 2DIP group count
  int num_steps = 40;       // simulated animation length
  double render_seconds = 2.0;           // Tr of the renderer configuration
  double extra_input_seconds = 0.0;      // added per-step input-side work
                                         // (e.g. LIC synthesis), before the
                                         // 1/m split in 2DIP
  double fetch_fraction = 1.0;           // adaptive fetching reduction
  // Optional parallel-file-system degradation: the disk bandwidth collapses
  // during seeded stochastic outage windows (sim/fault.hpp). Off unless
  // disk_fault.enabled; horizon_seconds == 0 is sized automatically from a
  // serial-execution bound.
  sim::BandwidthFaultConfig disk_fault;
};

struct PipelineResult {
  std::vector<double> frame_times;  // completion time of every frame
  double avg_interframe = 0.0;      // steady-state (2nd half) mean delay
  double total_seconds = 0.0;
  double render_busy_fraction = 0.0;  // renderer utilization
  double disk_degraded_seconds = 0.0; // outage time overlapping the run
  int disk_outages = 0;               // outage windows that began before the end

  // Interframe delay between frames i-1 and i.
  double interframe(std::size_t i) const {
    return frame_times[i] - frame_times[i - 1];
  }
};

PipelineResult simulate_1dip(const PipelineParams& params);
PipelineResult simulate_2dip(const PipelineParams& params);
PipelineResult simulate_naive(const PipelineParams& params);

// The paper's analytic processor-count formulas (§5.1, §5.2).
//   m_1dip = (Tf + Tp) / Ts + 1        (input processors to hide I/O, 1DIP)
//   m_2dip = Ts / Tr                   (group width so Ts' <= Tr)
//   n_2dip = (Tf' + Tp') / Ts' + 1     (groups to keep the pipe full)
struct Plan {
  int m_1dip = 0;
  int m_2dip = 0;
  int n_2dip = 0;
  double tf = 0.0, tp = 0.0, ts = 0.0;
};
Plan plan(const Machine& machine, double render_seconds,
          double extra_input_seconds = 0.0, double fetch_fraction = 1.0);

}  // namespace qv::pipesim
