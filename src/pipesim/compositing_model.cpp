#include "pipesim/compositing_model.hpp"

#include <algorithm>
#include <stdexcept>

namespace qv::pipesim {

CompositePoint model_composite(CompositeAlgorithm algo, int ranks, int width,
                               int k, bool compress, const Machine& machine,
                               const CompositingModel& model) {
  if (ranks < 1) throw std::runtime_error("model_composite: ranks must be >= 1");
  const double P = double(ranks);
  const double pixels = double(width) * double(width);
  // Total partial-pixel volume across all ranks (depth complexity times the
  // screen), and the final gathered frame.
  const double volume = pixels * model.depth * model.bytes_per_pixel;
  const double frame = pixels * model.bytes_per_pixel;
  const double ratio = compress ? model.rle_ratio : 1.0;
  const double bw = machine.link_bw;
  const double alpha = machine.latency;

  CompositePoint pt;
  // Local blending of this rank's share of the depth volume.
  const double blend_s = (pixels * model.depth / P) * model.pixel_cost;
  // Final gather: every non-root owner ships its finished strip to the root.
  const double gather_bytes = frame * (P - 1.0) / std::max(P, 1.0) * ratio;
  const double gather_s = (P > 1) ? alpha + (frame / P) * ratio / bw : 0.0;

  switch (algo) {
    case CompositeAlgorithm::kDirectSend: {
      // Every rank sends a clipped piece to each of the other P-1 strip
      // owners; per-message latency grows linearly in P.
      const double send_bytes = volume * (P - 1.0) / std::max(P, 1.0) * ratio;
      pt.seconds = (P - 1.0) * alpha + (send_bytes / P) / bw + blend_s + gather_s;
      pt.mb_moved = (send_bytes + gather_bytes) / 1e6;
      pt.messages = P * (P - 1.0) + (P - 1.0);
      pt.rounds = 1;
      break;
    }
    case CompositeAlgorithm::kSlic: {
      // SLIC ships only spans with multiple owners and schedules them into
      // a handful of messages per rank.
      const double send_bytes = volume * model.slic_exchange * ratio;
      const double msgs = model.slic_messages_per_rank;
      pt.seconds = msgs * alpha + (send_bytes / P) / bw + blend_s + gather_s;
      pt.mb_moved = (send_bytes + gather_bytes) / 1e6;
      pt.messages = msgs * P + (P - 1.0);
      pt.rounds = 1;
      break;
    }
    case CompositeAlgorithm::kRadixK: {
      const compositing::RadixPlan plan =
          compositing::plan_radix_rounds(ranks, k);
      const double active = double(plan.active);
      double seconds = 0.0;
      double bytes = 0.0;
      double messages = 0.0;
      // Remainder fold: each folded rank ships its whole holding to an
      // active partner before round 1.
      if (plan.folded() > 0) {
        const double fold_bytes = volume * double(plan.folded()) / P * ratio;
        seconds += alpha + (fold_bytes / double(plan.folded())) / bw;
        bytes += fold_bytes;
        messages += double(plan.folded());
      }
      // Round with factor f: a rank sends f-1 messages carrying (f-1)/f of
      // its current region volume. The per-rank region volume at round i is
      // volume/active regardless of i (the region shrinks by f each round
      // but holds the pieces of f ranks' worth of prior exchanges), so each
      // round moves ~((f-1)/f) * volume/active per rank.
      for (int f : plan.factors) {
        const double frac = double(f - 1) / double(f);
        const double round_bytes = volume / active * frac * ratio;
        seconds += double(f - 1) * alpha + round_bytes / bw;
        bytes += round_bytes * active;
        messages += double(f - 1) * active;
      }
      const double g_s = (active > 1) ? alpha + (frame / active) * ratio / bw : 0.0;
      pt.seconds = seconds + blend_s + g_s;
      pt.mb_moved =
          (bytes + frame * (active - 1.0) / std::max(active, 1.0) * ratio) / 1e6;
      pt.messages = messages + (active - 1.0);
      pt.rounds = plan.rounds();
      break;
    }
  }
  return pt;
}

}  // namespace qv::pipesim
