#pragma once
// Offline analysis of collected traces: per-rank occupancy and the paper's
// input/render overlap claim (Fig 5) checked against measured spans.
//
// The analysis keys on the span names emitted by core/pipeline.cpp, all in
// category "pipeline" with arg = step index:
//   input ranks:   fetch, preprocess, send_blocks
//   render ranks:  wait_blocks (blocked in recv), render, composite
//   output rank:   wait_frame (blocked in recv), frame
// Any "pipeline" span whose name starts with "wait" counts as idleness, not
// busy time.
// A rank's role is inferred from which of these spans it emitted, so the
// analysis needs no pipeline configuration.

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace qv::trace {

struct PhaseStats {
  double seconds = 0.0;
  std::int64_t count = 0;
};

struct RankActivity {
  int tid = -1;
  std::string name;
  double busy_seconds = 0.0;  // sum of "pipeline" stage spans
  double occupancy = 0.0;     // busy / global trace wall time
  std::map<std::string, PhaseStats> phases;  // "cat/name" -> stats
};

struct ActivityOptions {
  // Restrict the analysis to the steady-state window: pipeline spans of the
  // second half of the step range, the same [num_steps/2, num_steps) pinning
  // that avg_interframe and analyze_overlap use. Whole-run wall time
  // includes startup (mesh/index construction, first-step fill), which
  // deflates occupancy; steady numbers are the ones comparable with the
  // overlap summary's stall fraction. In steady mode the denominator is
  // PER RANK — each rank's own envelope of steady-step pipeline spans — so
  // an input rank that prefetched the steady steps early is judged over its
  // own activity burst, not over the renderers' timeline. Non-"pipeline"
  // spans (vmpi, io, ...) carry byte counts in arg, not steps, so they are
  // filtered by time instead: only spans starting inside the rank's steady
  // envelope count.
  bool steady_only = false;
};

// Whole-run occupancy per rank; wall time is the global [first event start,
// last event end] window so numbers are comparable across ranks. With
// opt.steady_only, occupancy becomes each rank's duty cycle within its own
// steady-step window (see ActivityOptions).
std::vector<RankActivity> rank_activity(std::span<const ThreadTrace> traces);
std::vector<RankActivity> rank_activity(std::span<const ThreadTrace> traces,
                                        const ActivityOptions& opt);

struct OverlapSummary {
  int num_steps = 0;
  int steady_first_step = 0;  // steady window = [steady_first_step, num_steps)
  int input_ranks = 0;
  int render_ranks = 0;

  // Steady-state window, summed over render ranks.
  double wait_seconds = 0.0;      // blocked waiting for input blocks
  double render_seconds = 0.0;    // ray casting
  double composite_seconds = 0.0;
  double stall_fraction = 0.0;    // wait / render (0 if no render time)

  // Whole-run per-step means, for the planner formula m = (Tf+Tp)/Ts + 1.
  double tf_tp_seconds = 0.0;  // mean fetch+preprocess+send per input step
  double ts_seconds = 0.0;     // mean render+composite per step per renderer
  int suggested_input_procs = 0;
};

OverlapSummary analyze_overlap(std::span<const ThreadTrace> traces);

// One-paragraph human-readable rendering of the summary.
std::string format_overlap(const OverlapSummary& s);

}  // namespace qv::trace
