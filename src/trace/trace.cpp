#include "trace/trace.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <ostream>

#include "metrics/metrics.hpp"

namespace qv::trace {
namespace {

std::atomic<bool> g_enabled{false};
std::atomic<std::int64_t> g_epoch_ns{0};
std::atomic<std::size_t> g_capacity{1u << 16};

struct Registry {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadTrace>> bufs;
  int next_fallback_tid = 100000;  // clearly outside the rank range
};

Registry& registry() {
  static Registry* r = new Registry;  // leaked: outlives thread_local dtors
  return *r;
}

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct TlsSlot {
  std::shared_ptr<ThreadTrace> buf;
  std::size_t capacity = 0;
};

TlsSlot& tls_slot() {
  thread_local TlsSlot slot;
  return slot;
}

ThreadTrace& local_buf() {
  TlsSlot& slot = tls_slot();
  if (!slot.buf) {
    slot.buf = std::make_shared<ThreadTrace>();
    slot.capacity = g_capacity.load(std::memory_order_relaxed);
    slot.buf->events.reserve(slot.capacity);
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    slot.buf->tid = r.next_fallback_tid++;
    r.bufs.push_back(slot.buf);
  }
  return *slot.buf;
}

void push_event(const Event& ev) {
  TlsSlot& slot = tls_slot();
  ThreadTrace& buf = local_buf();
  if (buf.events.size() >= slot.capacity) {
    ++buf.dropped;
    return;
  }
  buf.events.push_back(ev);
}

}  // namespace

bool enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }

void enable() {
  reset();
  g_epoch_ns.store(now_ns(), std::memory_order_relaxed);
  g_enabled.store(true, std::memory_order_relaxed);
}

void disable() noexcept { g_enabled.store(false, std::memory_order_relaxed); }

void reset() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  // Buffers whose owning thread has exited (registry holds the only
  // reference) are dropped; live threads keep theirs, emptied.
  std::vector<std::shared_ptr<ThreadTrace>> live;
  for (auto& b : r.bufs) {
    if (b.use_count() == 1) continue;
    b->events.clear();
    b->dropped = 0;
    // The role label belongs to the recording that assigned it; a new run
    // re-labels its threads (or leaves an anonymous buffer that collect()
    // skips while it stays empty).
    b->name.clear();
    live.push_back(b);
  }
  r.bufs.swap(live);
}

void set_capacity(std::size_t events_per_thread) {
  g_capacity.store(events_per_thread == 0 ? 1 : events_per_thread,
                   std::memory_order_relaxed);
}

std::int64_t now_since_epoch_ns() noexcept {
  return now_ns() - g_epoch_ns.load(std::memory_order_relaxed);
}

void set_thread(int tid, std::string name) {
  ThreadTrace& buf = local_buf();
  buf.tid = tid;
  buf.name = std::move(name);
}

std::vector<ThreadTrace> collect() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::vector<ThreadTrace> out;
  out.reserve(r.bufs.size());
  for (const auto& b : r.bufs) {
    if (b->events.empty() && b->name.empty()) continue;
    out.push_back(*b);
  }
  return out;
}

Span::Span(const char* cat, const char* name, std::int64_t arg) noexcept {
  // A span is live when either observability pillar wants it: the trace
  // buffer (timeline) and/or the metrics registry (duration histogram).
  if (!enabled() && !metrics::enabled()) return;
  live_ = true;
  cat_ = cat;
  name_ = name;
  arg_ = arg;
  t0_ns_ = now_ns();
}

Span::~Span() {
  if (!live_) return;
  const std::int64_t t1 = now_ns();
  if (metrics::enabled()) {
    metrics::span_histogram(cat_, name_).observe(double(t1 - t0_ns_) * 1e-9);
  }
  if (!enabled()) return;
  Event ev;
  ev.ts_ns = t0_ns_ - g_epoch_ns.load(std::memory_order_relaxed);
  ev.dur_ns = t1 - t0_ns_;
  ev.cat = cat_;
  ev.name = name_;
  ev.arg = arg_;
  ev.kind = EventKind::kSpan;
  push_event(ev);
}

void counter(const char* cat, const char* name, std::int64_t value) noexcept {
  if (!enabled()) return;
  Event ev;
  ev.ts_ns = now_ns() - g_epoch_ns.load(std::memory_order_relaxed);
  ev.dur_ns = value;
  ev.cat = cat;
  ev.name = name;
  ev.kind = EventKind::kCounter;
  push_event(ev);
}

void instant(const char* cat, const char* name, std::int64_t arg) noexcept {
  if (!enabled()) return;
  Event ev;
  ev.ts_ns = now_ns() - g_epoch_ns.load(std::memory_order_relaxed);
  ev.cat = cat;
  ev.name = name;
  ev.arg = arg;
  ev.kind = EventKind::kInstant;
  push_event(ev);
}

namespace {

void json_escape(std::ostream& os, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof(hex), "\\u%04x", c);
          os << hex;
        } else {
          os << c;
        }
    }
  }
}

void write_us(std::ostream& os, std::int64_t ns) {
  // microseconds with three decimals, avoiding float rounding
  std::int64_t us = ns / 1000;
  std::int64_t frac = ns % 1000;
  if (frac < 0) {  // ns can be slightly negative if a span straddled enable()
    frac += 1000;
    us -= 1;
  }
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%lld.%03lld", static_cast<long long>(us),
                static_cast<long long>(frac));
  os << buf;
}

}  // namespace

void write_chrome_json(std::ostream& os, std::span<const ThreadTrace> traces,
                       std::string_view extra_events) {
  os << "[\n";
  bool first = true;
  auto sep = [&]() {
    if (!first) os << ",\n";
    first = false;
  };
  for (const ThreadTrace& t : traces) {
    if (!t.name.empty()) {
      sep();
      os << "{\"ph\":\"M\",\"pid\":0,\"tid\":" << t.tid
         << ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
      json_escape(os, t.name);
      os << "\"}}";
    }
    for (const Event& ev : t.events) {
      sep();
      switch (ev.kind) {
        case EventKind::kSpan:
          os << "{\"ph\":\"X\",\"pid\":0,\"tid\":" << t.tid << ",\"ts\":";
          write_us(os, ev.ts_ns);
          os << ",\"dur\":";
          write_us(os, ev.dur_ns);
          os << ",\"cat\":\"" << ev.cat << "\",\"name\":\"" << ev.name
             << "\"";
          if (ev.arg >= 0) os << ",\"args\":{\"arg\":" << ev.arg << "}";
          os << "}";
          break;
        case EventKind::kCounter:
          os << "{\"ph\":\"C\",\"pid\":0,\"tid\":" << t.tid << ",\"ts\":";
          write_us(os, ev.ts_ns);
          os << ",\"cat\":\"" << ev.cat << "\",\"name\":\"" << ev.name
             << "\",\"args\":{\"value\":" << ev.dur_ns << "}}";
          break;
        case EventKind::kInstant:
          os << "{\"ph\":\"i\",\"pid\":0,\"tid\":" << t.tid
             << ",\"s\":\"t\",\"ts\":";
          write_us(os, ev.ts_ns);
          os << ",\"cat\":\"" << ev.cat << "\",\"name\":\"" << ev.name
             << "\"";
          if (ev.arg >= 0) os << ",\"args\":{\"arg\":" << ev.arg << "}";
          os << "}";
          break;
      }
    }
    if (t.dropped > 0) {
      sep();
      os << "{\"ph\":\"i\",\"pid\":0,\"tid\":" << t.tid
         << ",\"s\":\"t\",\"ts\":0,\"cat\":\"trace\",\"name\":"
            "\"events_dropped\",\"args\":{\"count\":"
         << t.dropped << "}}";
    }
  }
  if (!extra_events.empty()) {
    sep();
    os << extra_events;
  }
  os << "\n]\n";
}

bool write_chrome_json(const std::string& path,
                       std::span<const ThreadTrace> traces,
                       std::string_view extra_events) {
  std::ofstream os(path, std::ios::binary);
  if (!os) return false;
  write_chrome_json(os, traces, extra_events);
  return os.good();
}

}  // namespace qv::trace
