#include "trace/analysis.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>

namespace qv::trace {
namespace {

constexpr double kNsToSec = 1e-9;

bool is_pipeline_span(const Event& ev) {
  return ev.kind == EventKind::kSpan && std::strcmp(ev.cat, "pipeline") == 0;
}

bool name_is(const Event& ev, const char* name) {
  return std::strcmp(ev.name, name) == 0;
}

// wait_blocks / wait_frame: blocked in a receive, i.e. idleness.
bool is_wait(const Event& ev) {
  return std::strncmp(ev.name, "wait", 4) == 0;
}

}  // namespace

std::vector<RankActivity> rank_activity(std::span<const ThreadTrace> traces) {
  return rank_activity(traces, ActivityOptions{});
}

std::vector<RankActivity> rank_activity(std::span<const ThreadTrace> traces,
                                        const ActivityOptions& opt) {
  // Steady window: same second-half step pinning as analyze_overlap (and
  // the report's avg_interframe), so the numbers are comparable.
  std::int64_t steady_first_step = 0;
  if (opt.steady_only) {
    std::int64_t max_step = -1;
    for (const ThreadTrace& t : traces) {
      for (const Event& ev : t.events) {
        if (!is_pipeline_span(ev)) continue;
        if (ev.arg > max_step &&
            (name_is(ev, "render") || name_is(ev, "fetch") ||
             name_is(ev, "frame"))) {
          max_step = ev.arg;
        }
      }
    }
    steady_first_step = (max_step + 1) / 2;
  }

  // Whole-run denominator: the global [first event start, last event end]
  // window, shared by every rank.
  std::int64_t t_min = std::numeric_limits<std::int64_t>::max();
  std::int64_t t_max = std::numeric_limits<std::int64_t>::min();
  for (const ThreadTrace& t : traces) {
    for (const Event& ev : t.events) {
      if (ev.kind == EventKind::kCounter) continue;
      t_min = std::min(t_min, ev.ts_ns);
      t_max = std::max(t_max, ev.ts_ns + (ev.kind == EventKind::kSpan
                                              ? ev.dur_ns
                                              : 0));
    }
  }
  const double global_wall =
      t_max > t_min ? static_cast<double>(t_max - t_min) * kNsToSec : 0.0;

  std::vector<RankActivity> out;
  for (const ThreadTrace& t : traces) {
    RankActivity ra;
    ra.tid = t.tid;
    ra.name = t.name;

    // Steady denominator: this rank's own envelope of steady-step pipeline
    // spans. A global window would be skewed by input ranks prefetching
    // steady steps while the renderers are still on the first half.
    std::int64_t r_min = std::numeric_limits<std::int64_t>::max();
    std::int64_t r_max = std::numeric_limits<std::int64_t>::min();
    if (opt.steady_only) {
      for (const Event& ev : t.events) {
        if (!is_pipeline_span(ev) || ev.arg < steady_first_step) continue;
        r_min = std::min(r_min, ev.ts_ns);
        r_max = std::max(r_max, ev.ts_ns + ev.dur_ns);
      }
    }
    const double wall =
        opt.steady_only
            ? (r_max > r_min ? static_cast<double>(r_max - r_min) * kNsToSec
                             : 0.0)
            : global_wall;

    for (const Event& ev : t.events) {
      if (ev.kind != EventKind::kSpan) continue;
      if (opt.steady_only) {
        if (is_pipeline_span(ev)) {
          if (ev.arg < steady_first_step) continue;
        } else if (ev.ts_ns < r_min || ev.ts_ns > r_max) {
          continue;  // outside this rank's steady envelope
        }
      }
      std::string key = std::string(ev.cat) + "/" + ev.name;
      PhaseStats& ps = ra.phases[key];
      ps.seconds += static_cast<double>(ev.dur_ns) * kNsToSec;
      ps.count += 1;
      // Stage spans in "pipeline" are emitted back-to-back at the top level
      // of each rank loop, so summing them measures busy time without
      // double-counting the nested vmpi/io/render spans.
      if (is_pipeline_span(ev) && !is_wait(ev)) {
        ra.busy_seconds += static_cast<double>(ev.dur_ns) * kNsToSec;
      }
    }
    ra.occupancy = wall > 0.0 ? ra.busy_seconds / wall : 0.0;
    out.push_back(std::move(ra));
  }
  std::sort(out.begin(), out.end(),
            [](const RankActivity& a, const RankActivity& b) {
              return a.tid < b.tid;
            });
  return out;
}

OverlapSummary analyze_overlap(std::span<const ThreadTrace> traces) {
  OverlapSummary s;

  // Pass 1: find the step range and classify ranks.
  std::int64_t max_step = -1;
  for (const ThreadTrace& t : traces) {
    bool is_input = false, is_render = false;
    for (const Event& ev : t.events) {
      if (!is_pipeline_span(ev)) continue;
      if (ev.arg > max_step &&
          (name_is(ev, "render") || name_is(ev, "fetch") ||
           name_is(ev, "frame"))) {
        max_step = ev.arg;
      }
      if (name_is(ev, "fetch")) is_input = true;
      if (name_is(ev, "render")) is_render = true;
    }
    if (is_input) ++s.input_ranks;
    if (is_render) ++s.render_ranks;
  }
  if (max_step < 0) return s;
  s.num_steps = static_cast<int>(max_step) + 1;
  // Same second-half window the pipeline report uses for avg_interframe.
  s.steady_first_step = s.num_steps / 2;

  double tf_tp_total = 0.0;
  std::int64_t input_steps = 0;
  double ts_total = 0.0;
  std::int64_t render_steps = 0;

  for (const ThreadTrace& t : traces) {
    for (const Event& ev : t.events) {
      if (!is_pipeline_span(ev)) continue;
      const double sec = static_cast<double>(ev.dur_ns) * kNsToSec;
      const bool steady = ev.arg >= s.steady_first_step;
      if (name_is(ev, "fetch") || name_is(ev, "preprocess") ||
          name_is(ev, "send_blocks")) {
        tf_tp_total += sec;
        if (name_is(ev, "fetch")) ++input_steps;
      } else if (name_is(ev, "render")) {
        ts_total += sec;
        ++render_steps;
        if (steady) s.render_seconds += sec;
      } else if (name_is(ev, "composite")) {
        ts_total += sec;
        if (steady) s.composite_seconds += sec;
      } else if (name_is(ev, "wait_blocks")) {
        if (steady) s.wait_seconds += sec;
      }
    }
  }

  if (input_steps > 0) {
    s.tf_tp_seconds = tf_tp_total / static_cast<double>(input_steps);
  }
  if (render_steps > 0) {
    s.ts_seconds = ts_total / static_cast<double>(render_steps);
  }
  if (s.render_seconds > 0.0) {
    s.stall_fraction = s.wait_seconds / s.render_seconds;
  }
  if (s.ts_seconds > 0.0) {
    // Epsilon guard: an exact ratio (e.g. 40ms / 10ms) must not round up to
    // the next integer through floating-point noise and inflate m by one.
    s.suggested_input_procs = static_cast<int>(
        std::ceil(s.tf_tp_seconds / s.ts_seconds - 1e-9)) + 1;
  }
  s.suggested_input_procs = std::max(s.suggested_input_procs, 1);
  return s;
}

std::string format_overlap(const OverlapSummary& s) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "trace: %d steps, %d input / %d render ranks | steady steps [%d,%d): "
      "wait %.1f ms, render %.1f ms, composite %.1f ms -> stall %.1f%% | "
      "Tf+Tp %.1f ms, Ts %.1f ms -> analytic m = %d",
      s.num_steps, s.input_ranks, s.render_ranks, s.steady_first_step,
      s.num_steps, s.wait_seconds * 1e3, s.render_seconds * 1e3,
      s.composite_seconds * 1e3, s.stall_fraction * 100.0,
      s.tf_tp_seconds * 1e3, s.ts_seconds * 1e3, s.suggested_input_procs);
  return std::string(buf);
}

}  // namespace qv::trace
