#pragma once
// Per-rank event tracing.
//
// Every vmpi rank is a thread of one process, so "per-rank" buffers are
// thread-local.  Each thread appends fixed-size events to its own buffer
// without any locking; a process-wide registry of shared_ptr<ThreadTrace>
// keeps the buffers alive after the owning thread joins, so the collector can
// read them afterwards (thread join provides the happens-before edge).
//
// Overhead contract: when both tracing and metrics are disabled (the
// default) a Span costs two relaxed atomic loads in the constructor and one
// in the destructor — no clock reads, no allocation.  When enabled, a span
// is two steady_clock reads plus one vector push_back into a pre-reserved
// buffer; events past the per-thread capacity are counted as dropped rather
// than grown, so steady-state cost is bounded.
//
// Spans also feed src/metrics: while metrics::enabled(), every span records
// its duration into the "span.<cat>.<name>" histogram, with or without
// tracing on.  That is what makes per-stage histogram percentiles agree
// with trace-derived span durations — they measure the same interval.
//
// Concurrency contract: enable()/disable()/reset()/collect() must not run
// concurrently with traced work.  In this codebase that is natural: they are
// called before vmpi::Runtime::run spawns the rank threads and after it joins
// them.
//
// Span category/name pointers must be string literals (or otherwise outlive
// the trace); they are stored as const char* and serialized at export time.

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace qv::trace {

enum class EventKind : std::uint8_t {
  kSpan,     // duration event ("X" in chrome trace format)
  kCounter,  // sampled value ("C")
  kInstant,  // point event ("i")
};

struct Event {
  std::int64_t ts_ns = 0;   // start time, relative to the trace epoch
  std::int64_t dur_ns = 0;  // span duration; counters store the value here
  const char* cat = "";
  const char* name = "";
  std::int64_t arg = -1;  // step / byte count / user payload; -1 = unset
  EventKind kind = EventKind::kSpan;
};

struct ThreadTrace {
  int tid = -1;                 // vmpi world rank, or a fallback ordinal
  std::string name;             // role label, e.g. "input 0", "render 2"
  std::vector<Event> events;
  std::uint64_t dropped = 0;    // events discarded after capacity was reached
};

// --- global switch -------------------------------------------------------
bool enabled() noexcept;
// Clears all buffers, restarts the epoch, and turns recording on.
void enable();
void disable() noexcept;
// Clears every registered buffer (and forgets buffers whose thread exited).
void reset();
// Per-thread event capacity for buffers created after this call.
void set_capacity(std::size_t events_per_thread);

// Steady-clock nanoseconds since the epoch enable() set (the zero point of
// every exported timestamp).  Other recorders (obs/lineage) stamp their
// wall-domain events with this so a merged timeline lines up with spans.
// Monotonic regardless of enabled(); before the first enable() the epoch is
// the steady clock's own zero.
std::int64_t now_since_epoch_ns() noexcept;

// Labels the calling thread in the exported trace.  tid should be the vmpi
// world rank so merged timelines line up; name is the pipeline role.
void set_thread(int tid, std::string name);

// Snapshots every registered buffer.  Call only when traced threads have
// been joined (see concurrency contract above).
std::vector<ThreadTrace> collect();

// --- recording ------------------------------------------------------------
class Span {
 public:
  Span(const char* cat, const char* name, std::int64_t arg = -1) noexcept;
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  std::int64_t t0_ns_ = 0;
  const char* cat_ = nullptr;
  const char* name_ = nullptr;
  std::int64_t arg_ = -1;
  bool live_ = false;
};

void counter(const char* cat, const char* name, std::int64_t value) noexcept;
void instant(const char* cat, const char* name, std::int64_t arg = -1) noexcept;

// --- export ---------------------------------------------------------------
// Chrome trace-event JSON ("JSON array format"), loadable by perfetto and
// chrome://tracing.  Timestamps are emitted in microseconds as the format
// requires; sub-microsecond precision is kept as a fractional part.
// `extra_events`, when non-empty, is a fragment of comma-joined trace-event
// objects (no enclosing brackets) appended to the same array — how the
// lineage recorder merges its per-frame async waterfalls into the timeline.
void write_chrome_json(std::ostream& os, std::span<const ThreadTrace> traces,
                       std::string_view extra_events = {});
bool write_chrome_json(const std::string& path,
                       std::span<const ThreadTrace> traces,
                       std::string_view extra_events = {});

}  // namespace qv::trace
