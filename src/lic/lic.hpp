// Line Integral Convolution (Cabral & Leedom '93), the texture-based vector
// field visualization the paper overlays on the ground surface (§4.3).
// Streamlines are traced forward and backward with RK2 through the regular
// vector grid and a noise texture is convolved along them. A periodic
// filter phase animates flow direction across frames.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "lic/field2d.hpp"
#include "util/rng.hpp"

namespace qv::lic {

struct LicOptions {
  int kernel_half_length = 16;  // convolution samples each direction
  float step = 0.6f;            // integration step, in grid cells
  float phase = 0.0f;           // periodic kernel phase in [0,1) (animation)
  bool periodic_kernel = false; // ripple kernel for animation frames
  // Modulate output intensity by normalized vector magnitude so strong
  // motion reads brighter (common practice for flow over scalar context).
  bool magnitude_modulation = true;
};

// White-noise input texture, values in [0,1].
std::vector<float> make_noise(int width, int height, std::uint64_t seed);

// Compute the LIC gray image (width*height floats in [0,1]).
std::vector<float> compute_lic(const VectorGrid& field,
                               std::span<const float> noise, int width,
                               int height, const LicOptions& options);

// One frame of a time-coherent LIC animation (the IBFV / Lagrangian-
// Eulerian advection family the paper cites for time-dependent fields,
// §2.5): semi-Lagrangian back-advection of the previous frame along the
// flow blended with `injection` of fresh noise. Successive frames move
// WITH the flow instead of re-randomizing, so animations read as motion.
//   prev       previous frame (or the initial noise for frame 0)
//   step_cells how far the pattern travels per frame, in grid cells
//   injection  fresh-noise blend weight in [0, 1]
std::vector<float> advect_lic_frame(const VectorGrid& field,
                                    std::span<const float> prev,
                                    std::span<const float> noise, int width,
                                    int height, float step_cells,
                                    float injection);

}  // namespace qv::lic
