// Surface vector-field extraction and resampling (§4.3): the 2D velocity
// field at the irregular ground-surface nodes is extracted from the raw 3D
// vectors and resampled onto a regular grid (via the quadtree) whose
// resolution follows the image size / adaptive level.
#pragma once

#include <span>
#include <vector>

#include "lic/quadtree.hpp"
#include "mesh/hex_mesh.hpp"

namespace qv::lic {

// Regular-grid 2D vector field.
class VectorGrid {
 public:
  VectorGrid() = default;
  VectorGrid(int w, int h, Rect bounds)
      : w_(w), h_(h), bounds_(bounds), v_(std::size_t(w) * std::size_t(h)) {}

  int width() const { return w_; }
  int height() const { return h_; }
  const Rect& bounds() const { return bounds_; }

  Vec2& at(int x, int y) { return v_[std::size_t(y) * w_ + x]; }
  Vec2 at(int x, int y) const { return v_[std::size_t(y) * w_ + x]; }

  // Bilinear sample at grid coordinates (gx, gy) in [0, w) x [0, h).
  Vec2 sample_grid(float gx, float gy) const;

  std::span<const Vec2> data() const { return v_; }
  std::span<Vec2> data() { return v_; }

 private:
  int w_ = 0, h_ = 0;
  Rect bounds_;
  std::vector<Vec2> v_;
};

// The scattered surface field of one time step.
struct SurfaceField {
  std::vector<Vec2> positions;  // (x, y) of surface nodes
  std::vector<Vec2> vectors;    // (vx, vy) at those nodes
};

// Extract (x, y, vx, vy) at the mesh's top-surface nodes from interleaved
// 3-component node data.
SurfaceField extract_surface_field(const mesh::HexMesh& mesh,
                                   std::span<const float> interleaved3);

// Resample a scattered field to a regular grid by inverse-distance weighting
// of the points within an adaptive radius (grown until samples are found).
VectorGrid resample(const SurfaceField& field, const Quadtree& tree, int width,
                    int height);

}  // namespace qv::lic
