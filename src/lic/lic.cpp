#include "lic/lic.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace qv::lic {

std::vector<float> make_noise(int width, int height, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> noise(std::size_t(width) * std::size_t(height));
  for (auto& v : noise) v = rng.next_float();
  return noise;
}

namespace {

float noise_at(std::span<const float> noise, int w, int h, float gx, float gy) {
  int x = std::clamp(int(gx + 0.5f), 0, w - 1);
  int y = std::clamp(int(gy + 0.5f), 0, h - 1);
  return noise[std::size_t(y) * std::size_t(w) + std::size_t(x)];
}

// RK2 (midpoint) streamline step through the grid; dir = +1 / -1.
bool advance(const VectorGrid& field, float& gx, float& gy, float step,
             float dir) {
  Vec2 v1 = field.sample_grid(gx, gy);
  float n1 = v1.norm();
  if (n1 < 1e-12f) return false;
  Vec2 d1 = v1 / n1;
  float mx = gx + dir * 0.5f * step * d1.x;
  float my = gy + dir * 0.5f * step * d1.y;
  Vec2 v2 = field.sample_grid(mx, my);
  float n2 = v2.norm();
  if (n2 < 1e-12f) return false;
  Vec2 d2 = v2 / n2;
  gx += dir * step * d2.x;
  gy += dir * step * d2.y;
  return true;
}

}  // namespace

std::vector<float> compute_lic(const VectorGrid& field,
                               std::span<const float> noise, int width,
                               int height, const LicOptions& options) {
  if (noise.size() != std::size_t(width) * std::size_t(height))
    throw std::runtime_error("lic: noise size mismatch");
  if (field.width() != width || field.height() != height)
    throw std::runtime_error("lic: field size mismatch");

  std::vector<float> out(noise.size(), 0.0f);
  const int L = options.kernel_half_length;

  // Precompute magnitude normalization if requested.
  float max_mag = 0.0f;
  if (options.magnitude_modulation) {
    for (Vec2 v : field.data()) max_mag = std::max(max_mag, v.norm());
    if (max_mag <= 0.0f) max_mag = 1.0f;
  }

  auto kernel = [&](int k) {
    if (!options.periodic_kernel) return 1.0f;
    // Ripple kernel: a raised cosine whose phase advances per frame,
    // giving the impression of flow direction when animated.
    float t = (float(k + L) / float(2 * L)) + options.phase;
    return 0.5f + 0.5f * std::cos(2.0f * float(M_PI) * (t - std::floor(t)));
  };

  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      float acc = noise_at(noise, width, height, float(x), float(y)) * kernel(0);
      float wsum = kernel(0);
      // Forward.
      float gx = float(x), gy = float(y);
      for (int k = 1; k <= L; ++k) {
        if (!advance(field, gx, gy, options.step, +1.0f)) break;
        float w = kernel(k);
        acc += noise_at(noise, width, height, gx, gy) * w;
        wsum += w;
      }
      // Backward.
      gx = float(x);
      gy = float(y);
      for (int k = 1; k <= L; ++k) {
        if (!advance(field, gx, gy, options.step, -1.0f)) break;
        float w = kernel(-k);
        acc += noise_at(noise, width, height, gx, gy) * w;
        wsum += w;
      }
      float v = wsum > 0.0f ? acc / wsum : 0.0f;
      if (options.magnitude_modulation) {
        float mag = field.at(x, y).norm() / max_mag;
        v *= 0.35f + 0.65f * std::sqrt(mag);
      }
      out[std::size_t(y) * std::size_t(width) + std::size_t(x)] = v;
    }
  }
  return out;
}

std::vector<float> advect_lic_frame(const VectorGrid& field,
                                    std::span<const float> prev,
                                    std::span<const float> noise, int width,
                                    int height, float step_cells,
                                    float injection) {
  if (prev.size() != std::size_t(width) * std::size_t(height) ||
      noise.size() != prev.size())
    throw std::runtime_error("lic: advect frame size mismatch");
  if (field.width() != width || field.height() != height)
    throw std::runtime_error("lic: field size mismatch");

  auto bilinear = [&](std::span<const float> im, float gx, float gy) {
    gx = std::clamp(gx, 0.0f, float(width - 1));
    gy = std::clamp(gy, 0.0f, float(height - 1));
    int x0 = std::min(int(gx), width - 2);
    int y0 = std::min(int(gy), height - 2);
    if (width == 1) x0 = 0;
    if (height == 1) y0 = 0;
    float fx = gx - float(x0);
    float fy = gy - float(y0);
    auto at = [&](int x, int y) {
      return im[std::size_t(y) * std::size_t(width) + std::size_t(x)];
    };
    return at(x0, y0) * (1 - fx) * (1 - fy) +
           at(std::min(x0 + 1, width - 1), y0) * fx * (1 - fy) +
           at(x0, std::min(y0 + 1, height - 1)) * (1 - fx) * fy +
           at(std::min(x0 + 1, width - 1), std::min(y0 + 1, height - 1)) * fx *
               fy;
  };

  std::vector<float> out(prev.size());
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      // Semi-Lagrangian: the pattern at (x, y) came from upstream.
      Vec2 v = field.at(x, y);
      float n = v.norm();
      Vec2 d = n > 1e-12f ? v / n : Vec2{};
      float sx = float(x) - step_cells * d.x;
      float sy = float(y) - step_cells * d.y;
      float warped = bilinear(prev, sx, sy);
      float fresh = noise[std::size_t(y) * std::size_t(width) + std::size_t(x)];
      out[std::size_t(y) * std::size_t(width) + std::size_t(x)] =
          (1.0f - injection) * warped + injection * fresh;
    }
  }
  return out;
}

}  // namespace qv::lic
