// Point quadtree over the ground-surface mesh nodes (§4.3): "a quadtree is
// first constructed to organize all nodes on the top surface". Supports the
// scattered-to-regular resampling that precedes LIC.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/vec.hpp"

namespace qv::lic {

struct Rect {
  float x0 = 0, y0 = 0, x1 = 0, y1 = 0;
  float width() const { return x1 - x0; }
  float height() const { return y1 - y0; }
  bool contains(Vec2 p) const {
    return p.x >= x0 && p.x <= x1 && p.y >= y0 && p.y <= y1;
  }
  // Squared distance from p to this rectangle (0 when inside).
  float dist2(Vec2 p) const;
};

class Quadtree {
 public:
  // Build over `points`; leaves hold at most `leaf_capacity` points.
  Quadtree(std::span<const Vec2> points, int leaf_capacity = 16,
           int max_depth = 16);

  std::size_t size() const { return points_.size(); }
  const Rect& bounds() const { return bounds_; }

  // Indices (into the original span) of all points within `radius` of `p`.
  void query_radius(Vec2 p, float radius, std::vector<std::uint32_t>& out) const;

  // Index of the nearest point to `p` (the tree must be non-empty).
  std::uint32_t nearest(Vec2 p) const;

  // Depth statistics (tests).
  int depth() const;

 private:
  struct Node {
    Rect rect;
    std::int32_t first_child = -1;  // children at [first_child, first_child+4)
    std::uint32_t begin = 0;        // leaf point range in order_
    std::uint32_t end = 0;
  };

  void build(std::uint32_t node, std::uint32_t begin, std::uint32_t end,
             int depth, int leaf_capacity, int max_depth);

  std::vector<Vec2> points_;           // copy of input (original indexing)
  std::vector<std::uint32_t> order_;   // permutation grouping leaf points
  std::vector<Node> nodes_;
  Rect bounds_;
};

}  // namespace qv::lic
