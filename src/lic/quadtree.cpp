#include "lic/quadtree.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace qv::lic {

float Rect::dist2(Vec2 p) const {
  float dx = p.x < x0 ? x0 - p.x : (p.x > x1 ? p.x - x1 : 0.0f);
  float dy = p.y < y0 ? y0 - p.y : (p.y > y1 ? p.y - y1 : 0.0f);
  return dx * dx + dy * dy;
}

Quadtree::Quadtree(std::span<const Vec2> points, int leaf_capacity,
                   int max_depth)
    : points_(points.begin(), points.end()) {
  if (points_.empty()) throw std::runtime_error("quadtree: empty point set");
  bounds_ = {points_[0].x, points_[0].y, points_[0].x, points_[0].y};
  for (const Vec2& p : points_) {
    bounds_.x0 = std::min(bounds_.x0, p.x);
    bounds_.y0 = std::min(bounds_.y0, p.y);
    bounds_.x1 = std::max(bounds_.x1, p.x);
    bounds_.y1 = std::max(bounds_.y1, p.y);
  }
  order_.resize(points_.size());
  for (std::uint32_t i = 0; i < order_.size(); ++i) order_[i] = i;
  nodes_.push_back({bounds_, -1, 0, std::uint32_t(points_.size())});
  build(0, 0, std::uint32_t(points_.size()), 0, leaf_capacity, max_depth);
}

void Quadtree::build(std::uint32_t node, std::uint32_t begin, std::uint32_t end,
                     int depth, int leaf_capacity, int max_depth) {
  if (end - begin <= std::uint32_t(leaf_capacity) || depth >= max_depth) {
    nodes_[node].begin = begin;
    nodes_[node].end = end;
    return;
  }
  Rect r = nodes_[node].rect;
  float cx = (r.x0 + r.x1) * 0.5f;
  float cy = (r.y0 + r.y1) * 0.5f;

  // Partition order_[begin, end) into the four quadrants (x-major).
  auto mid_x = std::partition(order_.begin() + begin, order_.begin() + end,
                              [&](std::uint32_t i) { return points_[i].x < cx; });
  auto lo_mid_y = std::partition(order_.begin() + begin, mid_x,
                                 [&](std::uint32_t i) { return points_[i].y < cy; });
  auto hi_mid_y = std::partition(mid_x, order_.begin() + end,
                                 [&](std::uint32_t i) { return points_[i].y < cy; });

  std::uint32_t b0 = begin;
  std::uint32_t b1 = std::uint32_t(lo_mid_y - order_.begin());
  std::uint32_t b2 = std::uint32_t(mid_x - order_.begin());
  std::uint32_t b3 = std::uint32_t(hi_mid_y - order_.begin());
  std::uint32_t b4 = end;

  std::int32_t first = std::int32_t(nodes_.size());
  nodes_[node].first_child = first;
  nodes_[node].begin = begin;
  nodes_[node].end = end;
  Rect quads[4] = {{r.x0, r.y0, cx, cy},
                   {r.x0, cy, cx, r.y1},
                   {cx, r.y0, r.x1, cy},
                   {cx, cy, r.x1, r.y1}};
  std::uint32_t ranges[5] = {b0, b1, b2, b3, b4};
  for (int q = 0; q < 4; ++q) {
    nodes_.push_back({quads[q], -1, ranges[q], ranges[q + 1]});
  }
  for (int q = 0; q < 4; ++q) {
    build(std::uint32_t(first + q), ranges[q], ranges[q + 1], depth + 1,
          leaf_capacity, max_depth);
  }
}

void Quadtree::query_radius(Vec2 p, float radius,
                            std::vector<std::uint32_t>& out) const {
  out.clear();
  float r2 = radius * radius;
  std::vector<std::uint32_t> stack{0};
  while (!stack.empty()) {
    std::uint32_t ni = stack.back();
    stack.pop_back();
    const Node& node = nodes_[ni];
    if (node.rect.dist2(p) > r2) continue;
    if (node.first_child < 0) {
      for (std::uint32_t i = node.begin; i < node.end; ++i) {
        std::uint32_t idx = order_[i];
        Vec2 d = points_[idx] - p;
        if (d.dot(d) <= r2) out.push_back(idx);
      }
    } else {
      for (int q = 0; q < 4; ++q)
        stack.push_back(std::uint32_t(node.first_child + q));
    }
  }
}

std::uint32_t Quadtree::nearest(Vec2 p) const {
  float best2 = std::numeric_limits<float>::max();
  std::uint32_t best = 0;
  // Best-first descent with pruning.
  std::vector<std::uint32_t> stack{0};
  while (!stack.empty()) {
    std::uint32_t ni = stack.back();
    stack.pop_back();
    const Node& node = nodes_[ni];
    if (node.rect.dist2(p) >= best2) continue;
    if (node.first_child < 0) {
      for (std::uint32_t i = node.begin; i < node.end; ++i) {
        std::uint32_t idx = order_[i];
        Vec2 d = points_[idx] - p;
        float d2 = d.dot(d);
        if (d2 < best2) {
          best2 = d2;
          best = idx;
        }
      }
    } else {
      // Push children farthest-first so the nearest is processed first.
      std::pair<float, std::uint32_t> kids[4];
      for (int q = 0; q < 4; ++q) {
        std::uint32_t c = std::uint32_t(node.first_child + q);
        kids[q] = {nodes_[c].rect.dist2(p), c};
      }
      std::sort(kids, kids + 4,
                [](const auto& a, const auto& b) { return a.first > b.first; });
      for (const auto& [d2, c] : kids) {
        if (d2 < best2) stack.push_back(c);
      }
    }
  }
  return best;
}

int Quadtree::depth() const {
  int max_d = 0;
  // Recompute by walking: depth of node i is implicit; track via DFS.
  struct Item {
    std::uint32_t node;
    int depth;
  };
  std::vector<Item> stack{{0, 0}};
  while (!stack.empty()) {
    auto [ni, d] = stack.back();
    stack.pop_back();
    max_d = std::max(max_d, d);
    const Node& node = nodes_[ni];
    if (node.first_child >= 0) {
      for (int q = 0; q < 4; ++q)
        stack.push_back({std::uint32_t(node.first_child + q), d + 1});
    }
  }
  return max_d;
}

}  // namespace qv::lic
