#include "lic/field2d.hpp"

#include <algorithm>
#include <cmath>

namespace qv::lic {

Vec2 VectorGrid::sample_grid(float gx, float gy) const {
  gx = std::clamp(gx, 0.0f, float(w_ - 1));
  gy = std::clamp(gy, 0.0f, float(h_ - 1));
  int x0 = std::min(int(gx), w_ - 2);
  int y0 = std::min(int(gy), h_ - 2);
  if (w_ == 1) x0 = 0;
  if (h_ == 1) y0 = 0;
  float fx = gx - float(x0);
  float fy = gy - float(y0);
  Vec2 a = at(x0, y0);
  Vec2 b = at(std::min(x0 + 1, w_ - 1), y0);
  Vec2 c = at(x0, std::min(y0 + 1, h_ - 1));
  Vec2 d = at(std::min(x0 + 1, w_ - 1), std::min(y0 + 1, h_ - 1));
  Vec2 top = a * (1.0f - fx) + b * fx;
  Vec2 bot = c * (1.0f - fx) + d * fx;
  return top * (1.0f - fy) + bot * fy;
}

SurfaceField extract_surface_field(const mesh::HexMesh& mesh,
                                   std::span<const float> interleaved3) {
  SurfaceField f;
  auto surface = mesh.surface_nodes();
  auto positions = mesh.node_positions();
  f.positions.reserve(surface.size());
  f.vectors.reserve(surface.size());
  for (mesh::NodeId n : surface) {
    f.positions.push_back({positions[n].x, positions[n].y});
    f.vectors.push_back(
        {interleaved3[3 * std::size_t(n)], interleaved3[3 * std::size_t(n) + 1]});
  }
  return f;
}

VectorGrid resample(const SurfaceField& field, const Quadtree& tree, int width,
                    int height) {
  Rect b = tree.bounds();
  VectorGrid grid(width, height, b);
  const float dx = b.width() / float(std::max(width - 1, 1));
  const float dy = b.height() / float(std::max(height - 1, 1));
  const float base_radius = 1.5f * std::max(dx, dy);

  std::vector<std::uint32_t> hits;
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      Vec2 p{b.x0 + dx * float(x), b.y0 + dy * float(y)};
      float radius = base_radius;
      tree.query_radius(p, radius, hits);
      for (int grow = 0; hits.empty() && grow < 8; ++grow) {
        radius *= 2.0f;
        tree.query_radius(p, radius, hits);
      }
      Vec2 acc{};
      if (hits.empty()) {
        std::uint32_t n = tree.nearest(p);
        acc = field.vectors[n];
      } else {
        float wsum = 0.0f;
        for (std::uint32_t i : hits) {
          Vec2 d = field.positions[i] - p;
          float w = 1.0f / (d.dot(d) + 1e-12f);
          acc += field.vectors[i] * w;
          wsum += w;
        }
        acc = acc / wsum;
      }
      grid.at(x, y) = acc;
    }
  }
  return grid;
}

}  // namespace qv::lic
