#include "io/block_index.hpp"

#include <algorithm>

namespace qv::io {

BlockNodeIndex::BlockNodeIndex(const mesh::HexMesh& mesh,
                               std::span<const octree::Block> blocks) {
  nodes_.resize(blocks.size());
  auto cells = mesh.cells();
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    auto& list = nodes_[b];
    list.reserve((blocks[b].cell_count() * 8) / 2);
    for (std::size_t c = blocks[b].cell_begin; c < blocks[b].cell_end; ++c) {
      for (mesh::NodeId n : cells[c]) list.push_back(n);
    }
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
    total_ += list.size();
  }
}

std::vector<mesh::NodeId> merged_nodes(const BlockNodeIndex& index,
                                       std::span<const std::size_t> block_ids) {
  std::vector<mesh::NodeId> out;
  for (std::size_t b : block_ids) {
    auto nodes = index.block_nodes(b);
    out.insert(out.end(), nodes.begin(), nodes.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<ForwardEntry> build_forward_map(const BlockNodeIndex& index,
                                            mesh::NodeId first, mesh::NodeId last) {
  std::vector<ForwardEntry> out;
  for (std::size_t b = 0; b < index.block_count(); ++b) {
    auto nodes = index.block_nodes(b);
    // Sorted: binary search the window [first, last).
    auto lo = std::lower_bound(nodes.begin(), nodes.end(), first);
    auto hi = std::lower_bound(lo, nodes.end(), last);
    for (auto it = lo; it != hi; ++it) {
      out.push_back({std::uint32_t(b), std::uint32_t(it - nodes.begin()),
                     std::uint32_t(*it - first)});
    }
  }
  return out;
}

std::pair<mesh::NodeId, mesh::NodeId> slice_bounds(std::uint64_t node_count,
                                                   int reader, int readers) {
  auto lo = node_count * std::uint64_t(reader) / std::uint64_t(readers);
  auto hi = node_count * std::uint64_t(reader + 1) / std::uint64_t(readers);
  return {mesh::NodeId(lo), mesh::NodeId(hi)};
}

}  // namespace qv::io
