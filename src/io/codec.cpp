#include "io/codec.hpp"

#include <cstring>

#include "trace/trace.hpp"

namespace qv::io {

std::size_t rle8_encode(std::span<const std::uint8_t> data,
                        std::vector<std::uint8_t>& out) {
  trace::Span tsp("io", "rle8_encode", std::int64_t(data.size()));
  const std::size_t start = out.size();
  std::size_t i = 0;
  while (i < data.size()) {
    if (data[i] == 0) {
      std::size_t j = i;
      while (j < data.size() && data[j] == 0 && j - i < 0x80) ++j;
      out.push_back(std::uint8_t(j - i - 1));
      i = j;
    } else {
      std::size_t j = i;
      // A literal run ends at a stretch of zeros long enough to be worth a
      // packet (>= 2), or at the max literal length.
      while (j < data.size() && j - i < 0x80) {
        if (data[j] == 0 && j + 1 < data.size() && data[j + 1] == 0) break;
        if (data[j] == 0 && j + 1 == data.size()) break;
        ++j;
      }
      out.push_back(std::uint8_t(0x7f + (j - i)));
      out.insert(out.end(), data.begin() + std::ptrdiff_t(i),
                 data.begin() + std::ptrdiff_t(j));
      i = j;
    }
  }
  return out.size() - start;
}

std::optional<std::size_t> rle8_decode(std::span<const std::uint8_t> in,
                                       std::size_t offset,
                                       std::span<std::uint8_t> out) {
  const std::size_t start = offset;
  std::size_t produced = 0;
  while (produced < out.size()) {
    if (offset >= in.size()) return std::nullopt;  // truncated
    std::uint8_t h = in[offset++];
    if (h < 0x80) {
      std::size_t n = std::size_t(h) + 1;
      if (produced + n > out.size()) return std::nullopt;  // overlong run
      std::memset(out.data() + produced, 0, n);
      produced += n;
    } else {
      std::size_t n = std::size_t(h) - 0x7f;
      if (produced + n > out.size() || offset + n > in.size())
        return std::nullopt;  // overlong literal / truncated payload
      std::memcpy(out.data() + produced, in.data() + offset, n);
      offset += n;
      produced += n;
    }
  }
  return offset - start;
}

double rle8_ratio(std::span<const std::uint8_t> data) {
  if (data.empty()) return 1.0;
  std::vector<std::uint8_t> buf;
  return double(rle8_encode(data, buf)) / double(data.size());
}

}  // namespace qv::io
