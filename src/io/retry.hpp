// Retry-with-exponential-backoff for transient I/O failures.
//
// The policy is deliberately tiny and header-only: vmpi::File applies it at
// the pread level (so retries stay *inside* collective reads and never
// desynchronize a group), and application code can wrap whole operations
// with with_retries(). A transient failure is anything that throws
// vmpi::TransientIoError; other exceptions propagate immediately.
#pragma once

#include <chrono>
#include <cmath>
#include <thread>

#include "vmpi/fault.hpp"

namespace qv::io {

struct RetryPolicy {
  int max_attempts = 4;  // total tries, including the first
  std::chrono::microseconds base_delay{200};
  double multiplier = 2.0;

  // Backoff before retry number `retry` (0-based): base * multiplier^retry.
  std::chrono::microseconds delay_for(int retry) const {
    double us = double(base_delay.count()) * std::pow(multiplier, double(retry));
    return std::chrono::microseconds(static_cast<long long>(us));
  }
};

// Invoke fn(), retrying on vmpi::TransientIoError per the policy. Each retry
// performed increments *retries (when non-null). When attempts are
// exhausted, the last TransientIoError is rethrown.
template <typename Fn>
auto with_retries(const RetryPolicy& policy, Fn&& fn,
                  std::uint64_t* retries = nullptr) {
  for (int attempt = 0;; ++attempt) {
    try {
      return fn();
    } catch (const vmpi::TransientIoError&) {
      if (attempt + 1 >= policy.max_attempts) throw;
      if (retries) ++*retries;
      std::this_thread::sleep_for(policy.delay_for(attempt));
    }
  }
}

}  // namespace qv::io
