// Preprocessing calculations the paper runs on the *input* processors (§4):
// quantization from 32-bit floats to 8-bit, derivation of scalar magnitude
// from vector data, temporal-domain enhancement (§4.2), and per-node
// gradient vectors for lighting.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "mesh/hex_mesh.hpp"

namespace qv::io {

// 8-bit quantized field with its dequantization range.
struct QuantizedField {
  std::vector<std::uint8_t> values;
  float lo = 0.0f;
  float hi = 1.0f;

  float dequantize(std::size_t i) const {
    return lo + (hi - lo) * (float(values[i]) / 255.0f);
  }
};

// Quantize into [lo, hi]; values outside the range clamp. When lo >= hi the
// range is computed from the data (per-step auto range).
QuantizedField quantize(std::span<const float> values, float lo = 0.0f,
                        float hi = -1.0f);

// Euclidean magnitude of interleaved `components`-vector node data.
std::vector<float> magnitude(std::span<const float> interleaved, int components);

// The scalar an exploration session maps onto the transfer function —
// "explore their data in the ... variable domain" (§1). Derived per node
// from the stored vector records.
enum class Variable {
  kMagnitude,   // |v|
  kComponentX,  // |v_x|  (east-west shaking)
  kComponentY,  // |v_y|  (north-south shaking)
  kComponentZ,  // |v_z|  (vertical shaking)
  kHorizontal,  // sqrt(v_x^2 + v_y^2)  (horizontal shaking intensity)
};

// Derive the chosen scalar from interleaved records. Components beyond the
// record width read as zero (a 1-component dataset only supports
// kMagnitude/kComponentX).
std::vector<float> derive_scalar(std::span<const float> interleaved,
                                 int components, Variable variable);

// Temporal-domain enhancement (§4.2, after [16]): boost each node by the
// local rate of change so that small late-time waves remain visible.
//   enhanced[i] = value[i] + gain * max(|value[i]-prev[i]|, |next[i]-value[i]|)
// Either neighbour may be empty (first/last step) — the other is used alone.
std::vector<float> temporal_enhance(std::span<const float> value,
                                    std::span<const float> prev,
                                    std::span<const float> next, float gain);

// Per-node gradient of a scalar field by central differences at the node's
// local cell size (used for Phong lighting). Boundary nodes fall back to
// one-sided differences.
std::vector<Vec3> node_gradients(const mesh::HexMesh& mesh,
                                 std::span<const float> values);

}  // namespace qv::io
