// Byte-level run-length codec for quantized node data.
//
// Quantized wavefields are mostly zero away from the wavefront (quiet
// ground), so the block payloads the input processors ship to the
// renderers compress extremely well — the same "compress before
// delivering" idea the paper's related work applies to images (Ma & Camp
// [18]), applied to the data-distribution traffic.
//
// Format: repeated packets, header = one byte
//   0x00 .. 0x7f : run of (header + 1) zero bytes
//   0x80 .. 0xff : (header - 0x7f) literal bytes follow
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace qv::io {

// Append the encoding of `data` to `out`; returns encoded byte count.
std::size_t rle8_encode(std::span<const std::uint8_t> data,
                        std::vector<std::uint8_t>& out);

// Decode exactly `out.size()` bytes from `in` starting at `offset`.
// Returns bytes consumed; nullopt on truncated or malformed input. An empty
// `out` legitimately consumes 0 bytes — distinct from the error case, which
// the old 0-means-error convention conflated.
std::optional<std::size_t> rle8_decode(std::span<const std::uint8_t> in,
                                       std::size_t offset,
                                       std::span<std::uint8_t> out);

// encoded/raw size for `data` (< 1 is a win).
double rle8_ratio(std::span<const std::uint8_t> data);

}  // namespace qv::io
