#include "io/dataset.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>

namespace qv::io {

namespace {

constexpr char kMetaMagic[8] = {'Q', 'V', 'D', 'A', 'T', 'A', '1', '\0'};

template <typename T>
void put(std::ofstream& os, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T get(std::ifstream& is) {
  static_assert(std::is_trivially_copyable_v<T>);
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  return v;
}

}  // namespace

void write_meta(const std::string& path, const DatasetMeta& meta) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("dataset: cannot write " + path);
  os.write(kMetaMagic, sizeof(kMetaMagic));
  put(os, meta.domain.lo);
  put(os, meta.domain.hi);
  put(os, std::int32_t(meta.coarsest_level));
  put(os, std::int32_t(meta.finest_level));
  put(os, std::int32_t(meta.components));
  put(os, std::int32_t(meta.num_steps));
  put(os, meta.step_dt);
  for (auto n : meta.level_node_count) put(os, n);
  if (!os) throw std::runtime_error("dataset: write failed " + path);
}

DatasetMeta read_meta(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("dataset: cannot read " + path);
  char magic[8];
  is.read(magic, sizeof(magic));
  if (std::memcmp(magic, kMetaMagic, sizeof(magic)) != 0)
    throw std::runtime_error("dataset: bad magic in " + path);
  DatasetMeta m;
  m.domain.lo = get<Vec3>(is);
  m.domain.hi = get<Vec3>(is);
  m.coarsest_level = get<std::int32_t>(is);
  m.finest_level = get<std::int32_t>(is);
  m.components = get<std::int32_t>(is);
  m.num_steps = get<std::int32_t>(is);
  m.step_dt = get<float>(is);
  int levels = m.finest_level - m.coarsest_level + 1;
  m.level_node_count.resize(std::size_t(levels));
  for (auto& n : m.level_node_count) n = get<std::uint64_t>(is);
  if (!is) throw std::runtime_error("dataset: truncated meta " + path);
  return m;
}

void write_octree(const std::string& path, const mesh::LinearOctree& tree) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("dataset: cannot write " + path);
  put(os, tree.domain().lo);
  put(os, tree.domain().hi);
  put(os, std::uint64_t(tree.leaf_count()));
  for (const auto& k : tree.leaves()) {
    put(os, k.x);
    put(os, k.y);
    put(os, k.z);
    put(os, std::uint32_t(k.level));
  }
  if (!os) throw std::runtime_error("dataset: write failed " + path);
}

mesh::LinearOctree read_octree(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("dataset: cannot read " + path);
  Box3 dom;
  dom.lo = get<Vec3>(is);
  dom.hi = get<Vec3>(is);
  auto count = get<std::uint64_t>(is);
  // Rebuild through the uniform constructor path: collect keys, then clip
  // to themselves via a clipped() no-op. LinearOctree lacks a raw-key
  // constructor by design, so we reconstruct via its public builder.
  std::vector<mesh::OctKey> keys(count);
  for (auto& k : keys) {
    k.x = get<std::uint32_t>(is);
    k.y = get<std::uint32_t>(is);
    k.z = get<std::uint32_t>(is);
    k.level = std::uint8_t(get<std::uint32_t>(is));
  }
  if (!is) throw std::runtime_error("dataset: truncated octree " + path);
  return mesh::LinearOctree::from_leaves(dom, std::move(keys));
}

DatasetWriter::DatasetWriter(std::string dir, const mesh::HexMesh& fine,
                             int coarsest_level, int components, float step_dt)
    : dir_(std::move(dir)), fine_(fine) {
  meta_.domain = fine.domain();
  meta_.coarsest_level = coarsest_level;
  meta_.finest_level = fine.octree().max_leaf_level();
  meta_.components = components;
  meta_.step_dt = step_dt;

  for (int level = coarsest_level; level < meta_.finest_level; ++level) {
    auto m = std::make_unique<mesh::HexMesh>(fine.octree().clipped(level));
    // Restriction map: every coarse node's grid coords exist in the fine
    // mesh (octant corners are corners of descendant leaves).
    std::vector<mesh::NodeId> restrict_ids(m->node_count());
    auto coords = m->node_grid_coords();
    for (std::size_t i = 0; i < coords.size(); ++i) {
      auto id = fine.find_node(coords[i]);
      if (id < 0)
        throw std::runtime_error("dataset: coarse node missing from fine mesh");
      restrict_ids[i] = mesh::NodeId(id);
    }
    restriction_[level] = std::move(restrict_ids);
    meta_.level_node_count.push_back(m->node_count());
    coarse_meshes_[level] = std::move(m);
  }
  meta_.level_node_count.push_back(fine.node_count());

  write_octree(dir_ + "/octree.bin", fine.octree());
}

const mesh::HexMesh& DatasetWriter::level_mesh(int level) const {
  if (level >= meta_.finest_level) return fine_;
  return *coarse_meshes_.at(level);
}

void DatasetWriter::write_step(std::span<const float> fine_node_data) {
  const std::size_t comps = std::size_t(meta_.components);
  if (fine_node_data.size() != fine_.node_count() * comps)
    throw std::runtime_error("dataset: step data size mismatch");

  char name[32];
  std::snprintf(name, sizeof(name), "/step_%04d.bin", steps_written_);
  std::ofstream os(dir_ + name, std::ios::binary);
  if (!os) throw std::runtime_error("dataset: cannot write step file");

  std::vector<float> coarse;
  for (int level = meta_.coarsest_level; level < meta_.finest_level; ++level) {
    const auto& ids = restriction_.at(level);
    coarse.resize(ids.size() * comps);
    for (std::size_t i = 0; i < ids.size(); ++i) {
      for (std::size_t c = 0; c < comps; ++c) {
        coarse[i * comps + c] = fine_node_data[std::size_t(ids[i]) * comps + c];
      }
    }
    os.write(reinterpret_cast<const char*>(coarse.data()),
             std::streamsize(coarse.size() * sizeof(float)));
  }
  os.write(reinterpret_cast<const char*>(fine_node_data.data()),
           std::streamsize(fine_node_data.size_bytes()));
  if (!os) throw std::runtime_error("dataset: step write failed");
  ++steps_written_;
}

void DatasetWriter::finish() {
  meta_.num_steps = steps_written_;
  write_meta(dir_ + "/meta.bin", meta_);
}

DatasetReader::DatasetReader(std::string dir) : dir_(std::move(dir)) {
  meta_ = read_meta(dir_ + "/meta.bin");
  fine_tree_ = read_octree(dir_ + "/octree.bin");
}

const mesh::HexMesh& DatasetReader::level_mesh(int level) {
  auto it = meshes_.find(level);
  if (it == meshes_.end()) {
    auto m = std::make_unique<mesh::HexMesh>(
        level >= meta_.finest_level ? fine_tree_ : fine_tree_.clipped(level));
    it = meshes_.emplace(level, std::move(m)).first;
  }
  return *it->second;
}

std::uint64_t DatasetReader::level_offset_bytes(int level) const {
  std::uint64_t off = 0;
  for (int l = meta_.coarsest_level; l < level; ++l) {
    off += meta_.level_node_count[std::size_t(l - meta_.coarsest_level)] *
           node_record_bytes();
  }
  return off;
}

std::uint64_t DatasetReader::level_bytes(int level) const {
  return meta_.level_node_count[std::size_t(level - meta_.coarsest_level)] *
         node_record_bytes();
}

std::string DatasetReader::step_path(int step) const {
  char name[32];
  std::snprintf(name, sizeof(name), "/step_%04d.bin", step);
  return dir_ + name;
}

}  // namespace qv::io
