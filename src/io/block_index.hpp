// Index structures connecting octree blocks to node-array file layout —
// the machinery behind both §5.3 reading strategies.
//
// Strategy 1 (single collective noncontiguous read): each input processor
// owns a set of blocks; its reading pattern is the merged, deduplicated node
// list of those blocks, expressed as an IndexedBlockView
// (MPI_TYPE_CREATE_INDEXED_BLOCK in the paper).
//
// Strategy 2 (independent contiguous read): each input processor reads a
// contiguous 1/m slice of the node array, scans the octree data, and builds
// a map from its local slice to (block, position-within-block) pieces, which
// are forwarded to renderers and merged there (Figure 7).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "mesh/hex_mesh.hpp"
#include "octree/blocks.hpp"

namespace qv::io {

// Per-block sorted unique node lists for one level mesh.
class BlockNodeIndex {
 public:
  BlockNodeIndex() = default;
  BlockNodeIndex(const mesh::HexMesh& mesh,
                 std::span<const octree::Block> blocks);

  std::size_t block_count() const { return nodes_.size(); }
  // Sorted unique node ids used by block `b`'s cells.
  std::span<const mesh::NodeId> block_nodes(std::size_t b) const {
    return nodes_[b];
  }
  // Total node entries across blocks (with inter-block duplication).
  std::uint64_t total_entries() const { return total_; }

 private:
  std::vector<std::vector<mesh::NodeId>> nodes_;
  std::uint64_t total_ = 0;
};

// Merged, deduplicated node list for a set of blocks ("octree data are
// merged for each rendering processor" — §5.3.1). Returned sorted.
std::vector<mesh::NodeId> merged_nodes(const BlockNodeIndex& index,
                                       std::span<const std::size_t> block_ids);

// One forwarded piece under strategy 2: node `slice_pos` within the reader's
// contiguous slice goes to position `block_pos` of block `block`.
struct ForwardEntry {
  std::uint32_t block = 0;      // global block id
  std::uint32_t block_pos = 0;  // index into the block's sorted node list
  std::uint32_t slice_pos = 0;  // index into the reader's slice
};

// Build the forwarding map of a contiguous node slice [first, last) against
// all blocks. Entries are grouped by block (ascending), then block_pos.
std::vector<ForwardEntry> build_forward_map(const BlockNodeIndex& index,
                                            mesh::NodeId first, mesh::NodeId last);

// Contiguous slice boundaries for reader `i` of `m` over `n` nodes:
// [n*i/m, n*(i+1)/m).
std::pair<mesh::NodeId, mesh::NodeId> slice_bounds(std::uint64_t node_count,
                                                   int reader, int readers);

}  // namespace qv::io
