// On-disk time-varying dataset layout.
//
// The earthquake files the paper reads are "node data stored as a linear
// array on the disk" per time step, with a separate one-time octree (spatial)
// encoding (§4, §5.3). We reproduce that layout and extend it with the
// multiresolution arrays that make §6's *adaptive fetching* possible — only
// the node array of the selected octree level is fetched:
//
//   <dir>/meta.bin        header: domain, level range, components, steps
//   <dir>/octree.bin      leaf keys of the finest-resolution octree
//   <dir>/step_%04d.bin   per step: node arrays for every level,
//                         coarsest level first, finest (raw) level last;
//                         each array is node_count(L) * components float32,
//                         in the deterministic node order of the level mesh
//
// Level meshes are derived data: both writer and reader rebuild them from
// octree.bin via LinearOctree::clipped + HexMesh extraction, which is
// deterministic, so node ordering always agrees.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "mesh/hex_mesh.hpp"

namespace qv::io {

struct DatasetMeta {
  Box3 domain;
  int coarsest_level = 0;
  int finest_level = 0;
  int components = 1;  // floats per node (3 for velocity vectors)
  int num_steps = 0;
  float step_dt = 1.0f;  // simulated seconds between stored steps
  std::vector<std::uint64_t> level_node_count;  // indexed by level - coarsest
};

// Writes the dataset. The fine mesh (and hence all level meshes) is fixed at
// construction; steps are appended one at a time.
class DatasetWriter {
 public:
  // `fine` must outlive the writer. Level meshes for
  // [coarsest_level, fine level] are built on construction.
  DatasetWriter(std::string dir, const mesh::HexMesh& fine, int coarsest_level,
                int components, float step_dt);

  // Append one step of fine-mesh node data (interleaved components,
  // size = fine.node_count() * components). Coarser levels are derived by
  // direct nodal restriction (coarse nodes are a subset of fine nodes).
  void write_step(std::span<const float> fine_node_data);

  // Finalize meta.bin (call once after the last step).
  void finish();

  const mesh::HexMesh& level_mesh(int level) const;
  const DatasetMeta& meta() const { return meta_; }

 private:
  std::string dir_;
  const mesh::HexMesh& fine_;
  DatasetMeta meta_;
  // Meshes for coarser levels; the finest level aliases `fine_`.
  std::map<int, std::unique_ptr<mesh::HexMesh>> coarse_meshes_;
  // Per coarse level: node id in the fine mesh for each coarse node.
  std::map<int, std::vector<mesh::NodeId>> restriction_;
  int steps_written_ = 0;
};

// Reads the dataset: metadata, octree, derived level meshes (cached), and
// the byte layout needed to build file views.
class DatasetReader {
 public:
  explicit DatasetReader(std::string dir);

  const DatasetMeta& meta() const { return meta_; }
  const mesh::LinearOctree& fine_octree() const { return fine_tree_; }

  // Lazily built, cached. Thread-compatible only (build before sharing).
  const mesh::HexMesh& level_mesh(int level);

  // Byte offset of level `level`'s node array within a step file.
  std::uint64_t level_offset_bytes(int level) const;
  // Size of level `level`'s node array in bytes.
  std::uint64_t level_bytes(int level) const;
  std::uint64_t node_record_bytes() const {
    return std::uint64_t(meta_.components) * sizeof(float);
  }
  std::string step_path(int step) const;

 private:
  std::string dir_;
  DatasetMeta meta_;
  mesh::LinearOctree fine_tree_;
  std::map<int, std::unique_ptr<mesh::HexMesh>> meshes_;
};

// Serialization helpers shared by writer/reader (exposed for tests).
void write_meta(const std::string& path, const DatasetMeta& meta);
DatasetMeta read_meta(const std::string& path);
void write_octree(const std::string& path, const mesh::LinearOctree& tree);
mesh::LinearOctree read_octree(const std::string& path);

}  // namespace qv::io
