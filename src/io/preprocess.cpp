#include "io/preprocess.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "trace/trace.hpp"

namespace qv::io {

QuantizedField quantize(std::span<const float> values, float lo, float hi) {
  trace::Span tsp("io", "quantize", std::int64_t(values.size()));
  QuantizedField q;
  if (lo >= hi) {
    lo = values.empty() ? 0.0f : *std::min_element(values.begin(), values.end());
    hi = values.empty() ? 1.0f : *std::max_element(values.begin(), values.end());
    if (hi <= lo) hi = lo + 1.0f;
  }
  q.lo = lo;
  q.hi = hi;
  q.values.resize(values.size());
  const float scale = 255.0f / (hi - lo);
  for (std::size_t i = 0; i < values.size(); ++i) {
    float t = (values[i] - lo) * scale;
    q.values[i] = std::uint8_t(std::clamp(t, 0.0f, 255.0f));
  }
  return q;
}

std::vector<float> magnitude(std::span<const float> interleaved, int components) {
  if (components <= 0 || interleaved.size() % std::size_t(components) != 0)
    throw std::runtime_error("magnitude: bad component count");
  std::size_t n = interleaved.size() / std::size_t(components);
  std::vector<float> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    float s = 0.0f;
    for (int c = 0; c < components; ++c) {
      float v = interleaved[i * std::size_t(components) + std::size_t(c)];
      s += v * v;
    }
    out[i] = std::sqrt(s);
  }
  return out;
}

std::vector<float> derive_scalar(std::span<const float> interleaved,
                                 int components, Variable variable) {
  if (variable == Variable::kMagnitude) return magnitude(interleaved, components);
  if (components <= 0 || interleaved.size() % std::size_t(components) != 0)
    throw std::runtime_error("derive_scalar: bad component count");
  std::size_t n = interleaved.size() / std::size_t(components);
  std::vector<float> out(n);
  auto comp = [&](std::size_t i, int c) {
    return c < components ? interleaved[i * std::size_t(components) + std::size_t(c)]
                          : 0.0f;
  };
  for (std::size_t i = 0; i < n; ++i) {
    switch (variable) {
      case Variable::kComponentX:
        out[i] = std::fabs(comp(i, 0));
        break;
      case Variable::kComponentY:
        out[i] = std::fabs(comp(i, 1));
        break;
      case Variable::kComponentZ:
        out[i] = std::fabs(comp(i, 2));
        break;
      case Variable::kHorizontal: {
        float x = comp(i, 0), y = comp(i, 1);
        out[i] = std::sqrt(x * x + y * y);
        break;
      }
      case Variable::kMagnitude:
        break;  // handled above
    }
  }
  return out;
}

std::vector<float> temporal_enhance(std::span<const float> value,
                                    std::span<const float> prev,
                                    std::span<const float> next, float gain) {
  std::vector<float> out(value.size());
  const bool has_prev = prev.size() == value.size();
  const bool has_next = next.size() == value.size();
  for (std::size_t i = 0; i < value.size(); ++i) {
    float back = has_prev ? std::fabs(value[i] - prev[i]) : 0.0f;
    float fwd = has_next ? std::fabs(next[i] - value[i]) : 0.0f;
    out[i] = value[i] + gain * std::max(back, fwd);
  }
  return out;
}

std::vector<Vec3> node_gradients(const mesh::HexMesh& mesh,
                                 std::span<const float> values) {
  std::vector<Vec3> out(mesh.node_count());
  auto positions = mesh.node_positions();
  auto coords = mesh.node_grid_coords();
  const Box3& dom = mesh.domain();
  Vec3 ext = dom.extent();
  // Step: half the finest cell edge around each node. Estimate the local
  // cell size from the containing leaf; fall back to 1/2^maxlevel.
  for (std::size_t n = 0; n < out.size(); ++n) {
    Vec3 p = positions[n];
    (void)coords;
    mesh::HexMesh::CellSample cs;
    float h;
    if (mesh.locate(p, cs)) {
      h = mesh.cell_box(cs.cell).extent().x * 0.5f;
    } else {
      h = ext.x / float(1u << mesh::kMaxLevel);
    }
    Vec3 g{};
    for (int a = 0; a < 3; ++a) {
      Vec3 d{};
      if (a == 0) d.x = h;
      if (a == 1) d.y = h;
      if (a == 2) d.z = h;
      float fp, fm;
      bool okp = mesh.sample(values, p + d, fp);
      bool okm = mesh.sample(values, p - d, fm);
      float grad = 0.0f;
      if (okp && okm) {
        grad = (fp - fm) / (2.0f * h);
      } else if (okp) {
        float f0;
        mesh.sample(values, p, f0);
        grad = (fp - f0) / h;
      } else if (okm) {
        float f0;
        mesh.sample(values, p, f0);
        grad = (f0 - fm) / h;
      }
      if (a == 0) g.x = grad;
      if (a == 1) g.y = grad;
      if (a == 2) g.z = grad;
    }
    out[n] = g;
  }
  return out;
}

}  // namespace qv::io
