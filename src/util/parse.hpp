// Strict full-string numeric parsing for command-line values.
//
// std::atoi("abc") is 0 and std::atof("1.5x") is 1.5 — both silently, which
// is exactly how a typo in --render-threads=abc becomes a zero-thread run
// that "works". These helpers consume the ENTIRE input or fail: no leading
// whitespace, no trailing junk, no empty strings, no overflow, and (for
// reals) no inf/nan. Callers turn nullopt into a hard error that names the
// flag, matching the CLI's strict unknown-flag policy.
#pragma once

#include <optional>
#include <string_view>

namespace qv::util {

// Base-10 signed integer. Rejects partial parses ("12x"), empty input,
// whitespace, a lone '-', and values outside long long.
std::optional<long long> parse_int(std::string_view s);

// Floating-point in decimal or scientific notation. Rejects partial parses,
// empty input, whitespace, and anything non-finite ("inf", "nan", "1e999").
std::optional<double> parse_real(std::string_view s);

}  // namespace qv::util
