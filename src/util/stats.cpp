#include "util/stats.hpp"

#include <cstdio>
#include <numeric>

namespace qv {

double Samples::percentile(double p) {
  if (xs_.empty()) return 0.0;
  std::sort(xs_.begin(), xs_.end());
  double rank = (p / 100.0) * static_cast<double>(xs_.size() - 1);
  auto lo = static_cast<std::size_t>(rank);
  auto hi = std::min(lo + 1, xs_.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return xs_[lo] * (1.0 - frac) + xs_[hi] * frac;
}

double Samples::mean() const {
  if (xs_.empty()) return 0.0;
  return std::accumulate(xs_.begin(), xs_.end(), 0.0) /
         static_cast<double>(xs_.size());
}

double load_imbalance(const std::vector<double>& per_proc_work) {
  if (per_proc_work.empty()) return 0.0;
  double total = std::accumulate(per_proc_work.begin(), per_proc_work.end(), 0.0);
  double mean = total / static_cast<double>(per_proc_work.size());
  if (mean <= 0.0) return 0.0;
  double mx = *std::max_element(per_proc_work.begin(), per_proc_work.end());
  return mx / mean - 1.0;
}

double steady_interframe(const std::vector<double>& frame_seconds) {
  if (frame_seconds.size() < 2) return 0.0;
  std::size_t first = std::max<std::size_t>(frame_seconds.size() / 2, 1);
  double sum = 0.0;
  std::size_t n = 0;
  for (std::size_t i = first; i < frame_seconds.size(); ++i) {
    sum += frame_seconds[i] - frame_seconds[i - 1];
    ++n;
  }
  return n ? sum / static_cast<double>(n) : 0.0;
}

std::string format_seconds(double s) {
  char buf[64];
  if (s >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.3f s", s);
  } else if (s >= 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.3f ms", s * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3f us", s * 1e6);
  }
  return buf;
}

}  // namespace qv
