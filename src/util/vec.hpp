// Small fixed-size vector math used across the renderer, the wave solver,
// and the LIC module. Deliberately minimal: only the operations the
// pipeline needs, all constexpr-friendly and value-semantic.
#pragma once

#include <cmath>
#include <cstdint>
#include <iosfwd>

namespace qv {

struct Vec2 {
  float x = 0.0f;
  float y = 0.0f;

  constexpr Vec2() = default;
  constexpr Vec2(float x_, float y_) : x(x_), y(y_) {}

  constexpr Vec2 operator+(Vec2 o) const { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(Vec2 o) const { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(float s) const { return {x * s, y * s}; }
  constexpr Vec2 operator/(float s) const { return {x / s, y / s}; }
  constexpr Vec2& operator+=(Vec2 o) {
    x += o.x;
    y += o.y;
    return *this;
  }
  constexpr float dot(Vec2 o) const { return x * o.x + y * o.y; }
  float norm() const { return std::sqrt(dot(*this)); }
  Vec2 normalized() const {
    float n = norm();
    return n > 0.0f ? Vec2{x / n, y / n} : Vec2{};
  }
};

struct Vec3 {
  float x = 0.0f;
  float y = 0.0f;
  float z = 0.0f;

  constexpr Vec3() = default;
  constexpr Vec3(float x_, float y_, float z_) : x(x_), y(y_), z(z_) {}

  constexpr Vec3 operator+(Vec3 o) const { return {x + o.x, y + o.y, z + o.z}; }
  constexpr Vec3 operator-(Vec3 o) const { return {x - o.x, y - o.y, z - o.z}; }
  constexpr Vec3 operator*(float s) const { return {x * s, y * s, z * s}; }
  constexpr Vec3 operator/(float s) const { return {x / s, y / s, z / s}; }
  constexpr Vec3 operator-() const { return {-x, -y, -z}; }
  constexpr Vec3& operator+=(Vec3 o) {
    x += o.x;
    y += o.y;
    z += o.z;
    return *this;
  }
  constexpr Vec3& operator-=(Vec3 o) {
    x -= o.x;
    y -= o.y;
    z -= o.z;
    return *this;
  }
  constexpr Vec3& operator*=(float s) {
    x *= s;
    y *= s;
    z *= s;
    return *this;
  }
  constexpr float operator[](int i) const { return i == 0 ? x : (i == 1 ? y : z); }

  constexpr float dot(Vec3 o) const { return x * o.x + y * o.y + z * o.z; }
  constexpr Vec3 cross(Vec3 o) const {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }
  float norm() const { return std::sqrt(dot(*this)); }
  constexpr float norm2() const { return dot(*this); }
  Vec3 normalized() const {
    float n = norm();
    return n > 0.0f ? Vec3{x / n, y / n, z / n} : Vec3{};
  }
  // Component-wise product (used for material scaling in the solver).
  constexpr Vec3 cwise(Vec3 o) const { return {x * o.x, y * o.y, z * o.z}; }
};

constexpr Vec3 operator*(float s, Vec3 v) { return v * s; }
constexpr Vec2 operator*(float s, Vec2 v) { return v * s; }

constexpr Vec3 min(Vec3 a, Vec3 b) {
  return {a.x < b.x ? a.x : b.x, a.y < b.y ? a.y : b.y, a.z < b.z ? a.z : b.z};
}
constexpr Vec3 max(Vec3 a, Vec3 b) {
  return {a.x > b.x ? a.x : b.x, a.y > b.y ? a.y : b.y, a.z > b.z ? a.z : b.z};
}

// Axis-aligned box; the octree mesh makes every cell one of these.
struct Box3 {
  Vec3 lo;
  Vec3 hi;

  constexpr Vec3 extent() const { return hi - lo; }
  constexpr Vec3 center() const { return (lo + hi) * 0.5f; }
  constexpr bool contains(Vec3 p) const {
    return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y &&
           p.z >= lo.z && p.z <= hi.z;
  }
  constexpr Box3 united(const Box3& o) const {
    return {min(lo, o.lo), max(hi, o.hi)};
  }
  // Ray/box slab intersection. Returns false when the ray misses;
  // otherwise [t_in, t_out] is the parametric overlap (may start negative).
  bool intersect(Vec3 origin, Vec3 inv_dir, float& t_in, float& t_out) const;
};

std::ostream& operator<<(std::ostream& os, Vec3 v);

}  // namespace qv
