#include "util/thread_pool.hpp"

namespace qv::util {

ThreadPool::ThreadPool(int threads, std::function<void(int)> worker_init)
    : threads_(threads < 1 ? 1 : threads),
      worker_init_(std::move(worker_init)) {
  queues_.reserve(std::size_t(threads_));
  for (int i = 0; i < threads_; ++i)
    queues_.push_back(std::make_unique<Queue>());
  workers_.reserve(std::size_t(threads_ - 1));
  for (int w = 1; w < threads_; ++w)
    workers_.emplace_back([this, w] { worker_main(w); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::complete_one() {
  if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Last task of the job: publish completion under the pool mutex so a
    // caller blocked in done_cv_ cannot miss the wakeup.
    std::lock_guard<std::mutex> lk(mu_);
    job_fn_ = nullptr;
    done_cv_.notify_all();
  }
}

bool ThreadPool::run_one(int worker, std::uint64_t job,
                         const std::function<void(std::size_t, int)>* fn,
                         const CancelToken* cancel) {
  std::size_t task = 0;
  bool got = false;
  // Own queue first (front: the contiguous chunk dealt to this worker)...
  {
    Queue& q = *queues_[std::size_t(worker)];
    std::lock_guard<std::mutex> lk(q.mu);
    if (q.job == job && !q.tasks.empty()) {
      task = q.tasks.front();
      q.tasks.pop_front();
      got = true;
    }
  }
  // ...then steal from the back of the others.
  for (int i = 1; !got && i < threads_; ++i) {
    Queue& q = *queues_[std::size_t((worker + i) % threads_)];
    std::lock_guard<std::mutex> lk(q.mu);
    if (q.job == job && !q.tasks.empty()) {
      task = q.tasks.back();
      q.tasks.pop_back();
      got = true;
    }
  }
  if (!got) return false;
  exec_task(task, worker, fn, cancel);
  return true;
}

void ThreadPool::exec_task(std::size_t task, int worker,
                           const std::function<void(std::size_t, int)>* fn,
                           const CancelToken* cancel) {
  bool poisoned;
  {
    std::lock_guard<std::mutex> lk(error_mu_);
    poisoned = error_ != nullptr;
  }
  // A cancelled job drains exactly like a poisoned one: remaining tasks
  // count toward completion without running, so the join below stays the
  // single exit path and abort latency is bounded by one in-flight task.
  if (cancel && cancel->requested()) poisoned = true;
  if (!poisoned) {
    try {
      (*fn)(task, worker);
    } catch (...) {
      std::lock_guard<std::mutex> lk(error_mu_);
      if (!error_) error_ = std::current_exception();
    }
  }
  complete_one();
}

void ThreadPool::worker_main(int worker) {
  if (worker_init_) worker_init_(worker);
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(std::size_t, int)>* fn = nullptr;
    const CancelToken* cancel = nullptr;
    std::uint64_t job = 0;
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_cv_.wait(lk, [&] {
        return stop_ || (job_fn_ != nullptr && job_id_ != seen);
      });
      if (stop_) return;
      fn = job_fn_;
      cancel = job_cancel_;
      job = seen = job_id_;
    }
    while (run_one(worker, job, fn, cancel)) {
    }
  }
}

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t, int)>& fn,
    const CancelToken* cancel) {
  if (n == 0) return;
  if (threads_ == 1) {
    for (std::size_t i = 0; i < n; ++i) {
      if (cancel && cancel->requested()) return;
      fn(i, 0);
    }
    return;
  }

  std::uint64_t job;
  std::size_t first = 0;
  bool have_first = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    job = ++job_id_;
    // Deal contiguous chunks: worker w owns [w*n/T, (w+1)*n/T).
    for (int w = 0; w < threads_; ++w) {
      std::size_t lo = n * std::size_t(w) / std::size_t(threads_);
      std::size_t hi = n * std::size_t(w + 1) / std::size_t(threads_);
      Queue& q = *queues_[std::size_t(w)];
      std::lock_guard<std::mutex> qlk(q.mu);
      q.tasks.clear();
      for (std::size_t i = lo; i < hi; ++i) q.tasks.push_back(i);
      q.job = job;
    }
    {
      std::lock_guard<std::mutex> elk(error_mu_);
      error_ = nullptr;
    }
    remaining_.store(n, std::memory_order_relaxed);
    job_fn_ = &fn;
    job_cancel_ = cancel;
    // Reserve the caller's first owned task while the helpers are still
    // parked (observing the new job requires mu_, which we hold): the
    // documented contract is that the caller participates as worker 0, and
    // on a loaded single-CPU host the helpers could otherwise drain every
    // queue before the caller's first pop. With n >= threads the caller's
    // chunk is non-empty, so participation is guaranteed, not just likely.
    Queue& q0 = *queues_[0];
    std::lock_guard<std::mutex> qlk(q0.mu);
    if (!q0.tasks.empty()) {
      first = q0.tasks.front();
      q0.tasks.pop_front();
      have_first = true;
    }
  }
  work_cv_.notify_all();

  // The caller is worker 0.
  if (have_first) exec_task(first, 0, &fn, cancel);
  while (run_one(0, job, &fn, cancel)) {
  }
  {
    std::unique_lock<std::mutex> lk(mu_);
    done_cv_.wait(lk, [&] {
      return remaining_.load(std::memory_order_acquire) == 0;
    });
  }
  std::exception_ptr err;
  {
    std::lock_guard<std::mutex> lk(error_mu_);
    err = error_;
  }
  if (err) std::rethrow_exception(err);
}

}  // namespace qv::util
