#include "util/vec.hpp"

#include <algorithm>
#include <ostream>

namespace qv {

bool Box3::intersect(Vec3 origin, Vec3 inv_dir, float& t_in, float& t_out) const {
  float t0 = -1e30f;
  float t1 = 1e30f;
  for (int a = 0; a < 3; ++a) {
    float o = origin[a];
    float inv = inv_dir[a];
    float lo_a = lo[a];
    float hi_a = hi[a];
    if (std::isinf(inv)) {
      // Ray parallel to this slab: reject if origin is outside it.
      if (o < lo_a || o > hi_a) return false;
      continue;
    }
    float ta = (lo_a - o) * inv;
    float tb = (hi_a - o) * inv;
    if (ta > tb) std::swap(ta, tb);
    t0 = std::max(t0, ta);
    t1 = std::min(t1, tb);
    if (t0 > t1) return false;
  }
  t_in = t0;
  t_out = t1;
  return true;
}

std::ostream& operator<<(std::ostream& os, Vec3 v) {
  return os << '(' << v.x << ", " << v.y << ", " << v.z << ')';
}

}  // namespace qv
