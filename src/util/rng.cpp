#include "util/rng.hpp"

#include <cmath>

namespace qv {

double Rng::normal() {
  // Box-Muller; guard against log(0).
  double u1 = next_double();
  double u2 = next_double();
  if (u1 < 1e-300) u1 = 1e-300;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

}  // namespace qv
