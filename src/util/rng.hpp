// Deterministic, fast pseudo-random generation (splitmix64 / xoshiro256**).
// Every stochastic component in the library (noise textures, synthetic
// workloads, property tests) takes an explicit seed so runs reproduce.
#pragma once

#include <cstdint>

namespace qv {

// splitmix64: used to expand a single seed into generator state.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// xoshiro256** — the workhorse generator.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B9u) {
    std::uint64_t sm = seed;
    for (auto& w : s_) w = splitmix64(sm);
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Uniform in [0, 1).
  double next_double() { return (next_u64() >> 11) * 0x1.0p-53; }
  float next_float() { return static_cast<float>(next_double()); }

  // Uniform integer in [0, n).
  std::uint64_t next_below(std::uint64_t n) {
    return n == 0 ? 0 : next_u64() % n;
  }

  // Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * next_double(); }

  // Standard normal via Box-Muller (cached second value discarded for
  // simplicity; callers here never need bulk normals).
  double normal();

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace qv
