#include "util/crc32.hpp"

#include <array>

namespace qv::util {

namespace {

constexpr std::uint32_t kPoly = 0xEDB88320u;

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1u) ? (kPoly ^ (c >> 1)) : (c >> 1);
    t[i] = c;
  }
  return t;
}

constexpr auto kTable = make_table();

}  // namespace

std::uint32_t crc32_init() { return 0xFFFFFFFFu; }

std::uint32_t crc32_update(std::uint32_t running,
                           std::span<const std::uint8_t> data) {
  for (std::uint8_t b : data) {
    running = kTable[(running ^ b) & 0xFFu] ^ (running >> 8);
  }
  return running;
}

std::uint32_t crc32_final(std::uint32_t running) { return running ^ 0xFFFFFFFFu; }

std::uint32_t crc32(std::span<const std::uint8_t> data) {
  return crc32_final(crc32_update(crc32_init(), data));
}

}  // namespace qv::util
