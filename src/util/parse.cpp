#include "util/parse.hpp"

#include <charconv>
#include <cmath>

namespace qv::util {

std::optional<long long> parse_int(std::string_view s) {
  if (s.empty()) return std::nullopt;
  long long v = 0;
  const auto* first = s.data();
  const auto* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, v, 10);
  if (ec != std::errc() || ptr != last) return std::nullopt;
  return v;
}

std::optional<double> parse_real(std::string_view s) {
  if (s.empty()) return std::nullopt;
  double v = 0.0;
  const auto* first = s.data();
  const auto* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, v);
  if (ec != std::errc() || ptr != last) return std::nullopt;
  // from_chars happily parses "inf" and "nan"; neither is ever a sane flag
  // value, and ERANGE overflow ("1e999") must fail rather than saturate.
  if (!std::isfinite(v)) return std::nullopt;
  return v;
}

}  // namespace qv::util
