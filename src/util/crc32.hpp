// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) — the checksum the
// pipeline frames onto every block payload the input processors ship, so a
// renderer can detect corruption and NACK a resend instead of rendering
// garbage. Table-driven, byte at a time; supports incremental updates via
// the running-crc overload.
#pragma once

#include <cstdint>
#include <span>

namespace qv::util {

// One-shot CRC of a byte span.
std::uint32_t crc32(std::span<const std::uint8_t> data);

// Incremental form: feed the previous return value back in as `running` to
// extend a checksum over concatenated spans. Start from crc32_init().
std::uint32_t crc32_init();
std::uint32_t crc32_update(std::uint32_t running, std::span<const std::uint8_t> data);
std::uint32_t crc32_final(std::uint32_t running);

}  // namespace qv::util
