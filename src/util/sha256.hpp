// SHA-256 (FIPS 180-4). Used by the golden-image regression tests to pin
// rendered output byte-for-byte; self-contained so the test suite needs no
// external crypto dependency. Not written for speed — hash small things.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

namespace qv::util {

class Sha256 {
 public:
  Sha256();

  void update(const void* data, std::size_t len);
  void update(std::span<const std::uint8_t> data) {
    update(data.data(), data.size());
  }

  // Finalize and return the 32-byte digest. The object must not be updated
  // afterwards (construct a fresh one for a new message).
  std::array<std::uint8_t, 32> digest();

  // Convenience: lowercase hex digest of a buffer.
  static std::string hex(const void* data, std::size_t len);
  static std::string hex(std::span<const std::uint8_t> data) {
    return hex(data.data(), data.size());
  }

 private:
  void compress(const std::uint8_t* block);

  std::array<std::uint32_t, 8> h_;
  std::array<std::uint8_t, 64> buf_;
  std::size_t buf_len_ = 0;
  std::uint64_t total_ = 0;  // message length in bytes
};

}  // namespace qv::util
