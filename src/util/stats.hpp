// Streaming statistics and timing helpers shared by benches and the
// pipeline's instrumentation.
#pragma once

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <limits>
#include <string>
#include <vector>

namespace qv {

// Welford's online mean/variance plus min/max.
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Exact percentile over a retained sample set (fine for bench-sized data).
class Samples {
 public:
  void add(double x) { xs_.push_back(x); }
  std::size_t count() const { return xs_.size(); }
  double percentile(double p);  // p in [0, 100]
  double mean() const;

 private:
  std::vector<double> xs_;
};

// Wall-clock timer.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}
  void reset() { start_ = Clock::now(); }
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// Load-imbalance metric for a per-processor work vector:
// max/mean - 1 (0 means perfectly balanced).
double load_imbalance(const std::vector<double>& per_proc_work);

// Steady-state mean interframe delay over cumulative frame-completion times
// (seconds since a common start). The warm-up is excluded by averaging only
// the second-half window: deltas frame[i] - frame[i-1] for
// i in [size/2, size). Fewer than two frames have no interframe delay at
// all, so the result is exactly 0.0 (not NaN, not the single frame's time).
double steady_interframe(const std::vector<double>& frame_seconds);

// Format seconds with adaptive units for table output.
std::string format_seconds(double s);

}  // namespace qv
