// A small work-stealing thread pool for intra-rank parallelism.
//
// Each vmpi rank is already a thread; this pool adds worker threads *inside*
// a rank so one rendering processor can fan its (block x image-tile) task
// list across cores. Design constraints, in order:
//   1. Determinism of callers must be preservable: the pool runs a fixed,
//      pre-enumerated task list (`parallel_for(n, fn)`), so any computation
//      whose tasks write disjoint outputs is bit-exact for every thread
//      count, including 1.
//   2. No busy-waiting: ranks are threads on a shared machine, so idle
//      workers must block on a condition variable, not spin.
//   3. A pool with thread_count() == 1 spawns no threads at all and runs
//      tasks inline, in index order — the serial reference path.
//
// Work distribution: task indices are dealt to per-worker deques in
// contiguous chunks; a worker drains its own deque from the front and, when
// empty, steals from the back of the others. Contiguous chunks keep
// neighboring tiles on one worker (cache locality); stealing from the far
// end minimizes contention on the victim's hot end.
//
// parallel_for is not reentrant: calling it from inside a task deadlocks by
// design (no nested parallelism is needed here and supporting it would
// complicate the completion protocol).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace qv::util {

// Cooperative cancellation for a pool job (and for serial loops that want
// the same protocol). Any thread may request(); tasks poll requested() at
// their natural granularity — e.g. the raycaster per image tile — so an
// in-flight computation aborts within one task's worth of work, never
// mid-write. reset() re-arms the token for the next job; the owner must not
// reset while a job that observes the token is still running.
class CancelToken {
 public:
  void request() noexcept { flag_.store(true, std::memory_order_release); }
  bool requested() const noexcept {
    return flag_.load(std::memory_order_acquire);
  }
  void reset() noexcept { flag_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> flag_{false};
};

class ThreadPool {
 public:
  // `threads` is the total worker count including the calling thread; the
  // pool spawns threads-1 helpers (so 1 means fully inline execution).
  // `worker_init(worker)` runs once on each spawned helper thread before it
  // accepts work — used e.g. to register trace thread names.
  explicit ThreadPool(int threads,
                      std::function<void(int)> worker_init = {});
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int thread_count() const { return threads_; }

  // Run fn(task, worker) for every task in [0, n). Blocks until all tasks
  // completed; the calling thread participates as worker 0 (and is
  // guaranteed to execute at least one task whenever n >= thread_count(),
  // because its first task is reserved before the helpers wake). The first
  // exception thrown by a task is rethrown here after all tasks finish
  // (remaining tasks are drained without running).
  //
  // When `cancel` is non-null and fires, every not-yet-started task of this
  // job drains as a no-op — the same mechanism that drains a poisoned job —
  // so the call returns within one in-flight task's worth of work. Tasks
  // that already ran are NOT undone; the caller decides what a partially
  // executed job means (the raycaster discards the whole frame).
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, int)>& fn,
                    const CancelToken* cancel = nullptr);

 private:
  struct Queue {
    std::mutex mu;
    std::deque<std::size_t> tasks;
    // Generation stamp of the parallel_for that filled this queue. A worker
    // only pops tasks stamped with the generation it observed under mu_,
    // so a straggler from job N can never execute (or dangle a reference
    // into) job N+1.
    std::uint64_t job = 0;
  };

  void worker_main(int worker);
  // Pop one task (own queue first, then steal) and run it. Returns false
  // when no task of generation `job` is available anywhere.
  bool run_one(int worker, std::uint64_t job,
               const std::function<void(std::size_t, int)>* fn,
               const CancelToken* cancel);
  // Execute one already-popped task: skip if the job is poisoned or
  // cancelled, capture the first exception, count completion.
  void exec_task(std::size_t task, int worker,
                 const std::function<void(std::size_t, int)>* fn,
                 const CancelToken* cancel);
  void complete_one();

  int threads_ = 1;
  std::function<void(int)> worker_init_;
  std::vector<std::unique_ptr<Queue>> queues_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::size_t, int)>* job_fn_ = nullptr;
  const CancelToken* job_cancel_ = nullptr;  // published with job_fn_ under mu_
  std::uint64_t job_id_ = 0;
  std::atomic<std::size_t> remaining_{0};
  bool stop_ = false;

  std::mutex error_mu_;
  std::exception_ptr error_;
};

}  // namespace qv::util
