// Stochastic bandwidth degradation for the discrete-event engine.
//
// FaultyBandwidth wraps a SharedBandwidth and drives its aggregate rate
// through alternating healthy / degraded windows (exponentially distributed
// durations, seeded RNG — every run of the same config reproduces the same
// outage trace). degraded_factor scales the rate during an outage; 0 models
// a full blackout, during which in-flight transfers freeze.
//
// This is the pipesim-side analogue of the vmpi FaultPlan: it lets the
// analytic 1DIP/2DIP sizing of §5 be stress-tested against a parallel file
// system that collapses under load instead of the paper's ideal one.
#pragma once

#include <cmath>
#include <utility>
#include <vector>

#include "sim/engine.hpp"
#include "util/rng.hpp"

namespace qv::sim {

struct BandwidthFaultConfig {
  bool enabled = false;
  std::uint64_t seed = 1;
  double mean_up_seconds = 10.0;    // mean healthy-window duration
  double mean_down_seconds = 1.0;   // mean degraded-window duration
  double degraded_factor = 0.0;     // rate multiplier while degraded (0 = blackout)
  // Windows are pre-scheduled up to this horizon; past it the bandwidth
  // stays healthy. Pick it comfortably past the expected makespan
  // (pipesim sizes it automatically when left at 0).
  double horizon_seconds = 0.0;

  bool active() const {
    return enabled && degraded_factor < 1.0 && mean_down_seconds > 0.0;
  }
};

class FaultyBandwidth {
 public:
  FaultyBandwidth(Engine& engine, SharedBandwidth& inner,
                  BandwidthFaultConfig cfg)
      : inner_(inner), cfg_(cfg) {
    if (!cfg_.active() || cfg_.horizon_seconds <= 0.0) return;
    const double healthy = inner_.total_rate();
    const double degraded = healthy * cfg_.degraded_factor;
    Rng rng(cfg_.seed);
    auto exp_draw = [&rng](double mean) {
      // Inverse-CDF; next_double() < 1 so the log argument stays positive.
      return -mean * std::log(1.0 - rng.next_double());
    };
    double t = 0.0;
    while (true) {
      t += exp_draw(cfg_.mean_up_seconds);
      if (t >= cfg_.horizon_seconds) break;
      double down = exp_draw(cfg_.mean_down_seconds);
      outages_.push_back({t, t + down});
      degraded_seconds_ += down;
      engine.schedule(t, [this, degraded] { inner_.set_total_rate(degraded); });
      engine.schedule(t + down,
                      [this, healthy] { inner_.set_total_rate(healthy); });
      t += down;
    }
  }

  // Pass-through: transfers contend on the (modulated) inner bandwidth.
  SharedBandwidth::Awaiter transfer(double bytes) {
    return inner_.transfer(bytes);
  }

  // The precomputed outage trace [begin, end), in virtual seconds.
  const std::vector<std::pair<Time, Time>>& outages() const { return outages_; }
  double degraded_seconds() const { return degraded_seconds_; }

 private:
  SharedBandwidth& inner_;
  BandwidthFaultConfig cfg_;
  std::vector<std::pair<Time, Time>> outages_;
  double degraded_seconds_ = 0.0;
};

}  // namespace qv::sim
