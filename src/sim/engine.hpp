// Discrete-event simulation engine (C++20 coroutines).
//
// This is the substitute for the paper's 3000-processor testbed: pipeline
// configurations are modeled as coroutine processes contending for shared
// resources (parallel-filesystem bandwidth, network links, CPU time), and
// the engine advances virtual time event by event. Cost constants are
// calibrated from the real kernels (see pipesim/machine.hpp).
//
// Primitives:
//   Process        — fire-and-forget coroutine task
//   Engine         — event queue + virtual clock
//   delay(e, dt)   — co_await a virtual-time delay
//   Resource       — FIFO server with integer capacity
//   SharedBandwidth— processor-sharing pipe with optional per-stream cap
//                    (models a parallel file system / shared link)
//   Queue<T>       — awaitable FIFO channel between processes
//   JoinCounter    — await N completions (fork/join)
#pragma once

#include <algorithm>
#include <coroutine>
#include <cstdint>
#include <deque>
#include <functional>
#include <queue>
#include <stdexcept>
#include <vector>

namespace qv::sim {

using Time = double;

class Engine {
 public:
  Time now() const { return now_; }

  // Schedule a callback at absolute time t (>= now).
  void schedule(Time t, std::function<void()> fn) {
    events_.push({t, seq_++, std::move(fn)});
  }
  void schedule_resume(Time t, std::coroutine_handle<> h) {
    schedule(t, [h] { h.resume(); });
  }

  // Run until the event queue drains. Returns the final virtual time.
  Time run() {
    while (!events_.empty()) {
      Event e = std::move(const_cast<Event&>(events_.top()));
      events_.pop();
      if (e.t < now_ - 1e-12)
        throw std::logic_error("sim: event scheduled in the past");
      now_ = e.t;
      e.fn();
    }
    return now_;
  }

  // Incremental form: process every event due at or before `t`, then park
  // the clock at `t` (events may be scheduled later and picked up by the
  // next call). This is what lets a live producer feed the engine in
  // lockstep with an external clock — the WAN link model advances its
  // virtual transfers exactly as far as the caller's wall clock has come.
  Time run_until(Time t) {
    while (!events_.empty() && events_.top().t <= t + 1e-12) {
      Event e = std::move(const_cast<Event&>(events_.top()));
      events_.pop();
      if (e.t < now_ - 1e-12)
        throw std::logic_error("sim: event scheduled in the past");
      now_ = std::max(now_, e.t);
      e.fn();
    }
    now_ = std::max(now_, t);
    return now_;
  }

 private:
  struct Event {
    Time t;
    std::uint64_t seq;  // FIFO tie-break
    std::function<void()> fn;
    bool operator>(const Event& o) const {
      if (t != o.t) return t > o.t;
      return seq > o.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;
  Time now_ = 0.0;
  std::uint64_t seq_ = 0;
};

// Fire-and-forget coroutine task. Runs eagerly until its first suspension;
// destroys itself on completion.
struct Process {
  struct promise_type {
    Process get_return_object() { return {}; }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() { throw; }
  };
};

// co_await delay(engine, seconds)
struct DelayAwaiter {
  Engine& engine;
  Time dt;
  bool await_ready() const noexcept { return dt <= 0.0; }
  void await_suspend(std::coroutine_handle<> h) const {
    engine.schedule_resume(engine.now() + dt, h);
  }
  void await_resume() const noexcept {}
};
inline DelayAwaiter delay(Engine& e, Time dt) { return {e, dt}; }

// FIFO server with integer capacity. co_await acquire(); call release()
// when done (no RAII guard: releases happen at precise virtual times).
class Resource {
 public:
  Resource(Engine& engine, int capacity)
      : engine_(engine), capacity_(capacity) {}

  struct Awaiter {
    Resource& r;
    bool await_ready() {
      if (r.in_use_ < r.capacity_) {
        ++r.in_use_;
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) { r.waiters_.push_back(h); }
    void await_resume() const noexcept {}
  };
  Awaiter acquire() { return {*this}; }

  void release() {
    if (!waiters_.empty()) {
      auto h = waiters_.front();
      waiters_.pop_front();
      // The slot transfers to the waiter; in_use_ stays constant.
      engine_.schedule(engine_.now(), [h] { h.resume(); });
    } else {
      --in_use_;
    }
  }

  int in_use() const { return in_use_; }

 private:
  Engine& engine_;
  int capacity_;
  int in_use_ = 0;
  std::deque<std::coroutine_handle<>> waiters_;
};

// Processor-sharing bandwidth: N concurrent transfers each progress at
// min(per_stream_cap, total/N). Models a parallel file system (aggregate
// bandwidth shared by the input processors, each lane also bounded) or a
// shared network.
class SharedBandwidth {
 public:
  SharedBandwidth(Engine& engine, double total_rate,
                  double per_stream_cap = 0.0)
      : engine_(engine), total_(total_rate), cap_(per_stream_cap) {}

  struct Awaiter {
    SharedBandwidth& bw;
    double bytes;
    bool await_ready() const noexcept { return bytes <= 0.0; }
    void await_suspend(std::coroutine_handle<> h) { bw.start(bytes, h); }
    void await_resume() const noexcept {}
  };
  // co_await transfer(bytes): resumes when the transfer completes.
  Awaiter transfer(double bytes) { return {*this, bytes}; }

  std::size_t active_count() const { return active_.size(); }
  double total_rate() const { return total_; }

  // Change the aggregate rate mid-simulation (a degrading parallel file
  // system, a throttled link). In-flight transfers are settled at the old
  // rate up to now, then progress at the new rate. A rate of 0 freezes
  // every active transfer until the rate is raised again.
  void set_total_rate(double rate) {
    settle();
    total_ = rate;
    reschedule();
  }

 private:
  struct Xfer {
    double remaining;
    std::coroutine_handle<> h;
  };

  double rate_per_stream() const {
    double share = total_ / double(active_.size());
    return cap_ > 0.0 ? std::min(cap_, share) : share;
  }

  void start(double bytes, std::coroutine_handle<> h) {
    settle();
    active_.push_back({bytes, h});
    reschedule();
  }

  // Advance every active transfer to the current time.
  void settle() {
    double dt = engine_.now() - last_update_;
    if (dt > 0.0 && !active_.empty()) {
      double rate = rate_per_stream();
      for (auto& x : active_) x.remaining -= rate * dt;
    }
    last_update_ = engine_.now();
  }

  void reschedule() {
    ++generation_;
    if (active_.empty()) return;
    double rate = rate_per_stream();
    // Blackout: no progress, so no completion timer. Transfers stay parked
    // until set_total_rate restores a positive rate and reschedules.
    if (rate <= 0.0) return;
    double min_t = 1e300;
    for (const auto& x : active_)
      min_t = std::min(min_t, std::max(x.remaining, 0.0) / rate);
    std::uint64_t gen = generation_;
    engine_.schedule(engine_.now() + min_t, [this, gen] { on_timer(gen); });
  }

  void on_timer(std::uint64_t gen) {
    if (gen != generation_) return;  // superseded by a newer arrival
    // Completion threshold: anything needing less than a nanosecond more of
    // service is done. An absolute byte threshold would spin here: float
    // residue after settle() can exceed it while the wake-up time rounds to
    // the current clock value.
    double eps = rate_per_stream() * 1e-9 + 1e-12;
    settle();
    // Resume every transfer that has finished.
    std::vector<std::coroutine_handle<>> done;
    std::deque<Xfer> still;
    for (auto& x : active_) {
      if (x.remaining <= eps) {
        done.push_back(x.h);
      } else {
        still.push_back(x);
      }
    }
    active_ = std::move(still);
    for (auto h : done) engine_.schedule(engine_.now(), [h] { h.resume(); });
    reschedule();
  }

  Engine& engine_;
  double total_;
  double cap_;
  std::deque<Xfer> active_;
  Time last_update_ = 0.0;
  std::uint64_t generation_ = 0;
};

// Awaitable FIFO channel.
template <typename T>
class Queue {
 public:
  explicit Queue(Engine& engine) : engine_(engine) {}

  void push(T value) {
    items_.push_back(std::move(value));
    if (!waiters_.empty()) {
      auto h = waiters_.front();
      waiters_.pop_front();
      engine_.schedule(engine_.now(), [h] { h.resume(); });
    }
  }

  struct Awaiter {
    Queue& q;
    bool await_ready() const noexcept { return !q.items_.empty(); }
    void await_suspend(std::coroutine_handle<> h) { q.waiters_.push_back(h); }
    T await_resume() {
      if (q.items_.empty())
        throw std::logic_error("sim::Queue: resumed with no item");
      T v = std::move(q.items_.front());
      q.items_.pop_front();
      return v;
    }
  };
  Awaiter pop() { return {*this}; }

  std::size_t size() const { return items_.size(); }

 private:
  Engine& engine_;
  std::deque<T> items_;
  std::deque<std::coroutine_handle<>> waiters_;
};

// Fork/join: co_await a JoinCounter that `expect`s N arrive() calls.
class JoinCounter {
 public:
  JoinCounter(Engine& engine, int expect)
      : engine_(engine), remaining_(expect) {}

  void arrive() {
    if (--remaining_ == 0 && waiter_) {
      auto h = waiter_;
      waiter_ = nullptr;
      engine_.schedule(engine_.now(), [h] { h.resume(); });
    }
  }

  struct Awaiter {
    JoinCounter& jc;
    bool await_ready() const noexcept { return jc.remaining_ <= 0; }
    void await_suspend(std::coroutine_handle<> h) { jc.waiter_ = h; }
    void await_resume() const noexcept {}
  };
  Awaiter wait() { return {*this}; }

 private:
  Engine& engine_;
  int remaining_;
  std::coroutine_handle<> waiter_ = nullptr;
};

}  // namespace qv::sim
