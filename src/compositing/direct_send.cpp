#include "compositing/direct_send.hpp"

#include "trace/trace.hpp"
#include "util/stats.hpp"

namespace qv::compositing {

namespace {
constexpr int kTagPieces = 910;
constexpr int kTagStrip = 911;
}  // namespace

ScreenRect strip_rows(int rank, int size, int width, int height) {
  int y0 = int(std::int64_t(height) * rank / size);
  int y1 = int(std::int64_t(height) * (rank + 1) / size);
  return {0, y0, width, y1};
}

CompositeResult direct_send(vmpi::Comm& comm,
                            std::span<const PartialImage> partials, int width,
                            int height, bool compress, int root) {
  const int P = comm.size();
  const int me = comm.rank();
  CompositeResult result;

  // Build one message per strip owner containing all overlapping pieces.
  std::vector<std::vector<std::uint8_t>> outbox(static_cast<std::size_t>(P));
  {
  trace::Span extract_span("compositing", "ds_extract");
  for (const PartialImage& part : partials) {
    if (part.rect.empty()) continue;
    for (int owner = 0; owner < P; ++owner) {
      ScreenRect strip = strip_rows(owner, P, width, height);
      ScreenRect overlap{std::max(part.rect.x0, strip.x0),
                         std::max(part.rect.y0, strip.y0),
                         std::min(part.rect.x1, strip.x1),
                         std::min(part.rect.y1, strip.y1)};
      if (overlap.empty()) continue;
      Piece piece = extract_piece(part, overlap);
      result.stats.pixels_sent += piece.pixels.size();
      pack_piece(piece, compress, outbox[std::size_t(owner)]);
    }
  }
  for (int r = 0; r < P; ++r) {
    if (r != me) {
      result.stats.messages += 1;
      result.stats.bytes_sent += outbox[std::size_t(r)].size();
    }
    comm.send(r, kTagPieces, outbox[std::size_t(r)]);
  }
  }  // ds_extract

  // Composite my strip.
  WallTimer timer;
  ScreenRect my_strip = strip_rows(me, P, width, height);
  img::Image strip_img(my_strip.width(), my_strip.height());
  std::vector<Piece> pieces;
  {
    trace::Span exchange_span("compositing", "ds_exchange");
    for (int r = 0; r < P; ++r) {
      std::vector<std::uint8_t> msg;
      comm.recv(r, kTagPieces, msg);
      auto got = unpack_pieces(msg);
      for (auto& p : got) pieces.push_back(std::move(p));
    }
  }
  {
    trace::Span composite_span("compositing", "ds_composite");
    composite_pieces(pieces, strip_img, my_strip.x0, my_strip.y0);
  }
  result.stats.composite_seconds = timer.seconds();

  // Deliver strips to the root (compressed when requested — image delivery
  // is part of the compositing traffic the paper compresses).
  trace::Span deliver_span("compositing", "ds_deliver");
  if (me == root) {
    result.image = img::Image(width, height);
    auto paste = [&](const Piece& piece) {
      for (int y = piece.rect.y0; y < piece.rect.y1; ++y) {
        for (int x = piece.rect.x0; x < piece.rect.x1; ++x) {
          result.image.at(x, y) =
              piece.pixels[std::size_t(y - piece.rect.y0) *
                               std::size_t(piece.rect.width()) +
                           std::size_t(x - piece.rect.x0)];
        }
      }
    };
    if (!my_strip.empty()) {
      Piece mine_piece;
      mine_piece.rect = my_strip;
      mine_piece.pixels.assign(strip_img.pixels().begin(),
                               strip_img.pixels().end());
      paste(mine_piece);
    }
    for (int r = 0; r < P; ++r) {
      if (r == root) continue;
      std::vector<std::uint8_t> msg;
      comm.recv(r, kTagStrip, msg);
      for (const Piece& piece : unpack_pieces(msg)) paste(piece);
    }
  } else {
    std::vector<std::uint8_t> msg;
    if (!my_strip.empty()) {
      Piece piece;
      piece.order = 0;
      piece.rect = my_strip;
      piece.pixels.assign(strip_img.pixels().begin(), strip_img.pixels().end());
      result.stats.pixels_sent += piece.pixels.size();
      pack_piece(piece, compress, msg);
    }
    result.stats.messages += 1;
    result.stats.bytes_sent += msg.size();
    comm.send(root, kTagStrip, msg);
  }
  record_stats(result.stats);
  return result;
}

}  // namespace qv::compositing
