#include "compositing/common.hpp"

#include <algorithm>
#include <cstring>

#include "img/rle.hpp"
#include "metrics/metrics.hpp"
#include "util/crc32.hpp"

namespace qv::compositing {

namespace {

struct PieceHeader {
  std::uint32_t order;
  std::int32_t x0, y0, x1, y1;
  std::uint8_t compressed;
  std::uint8_t pad[3];
  std::uint64_t payload_bytes;
};
static_assert(sizeof(PieceHeader) == 32);

// Active-pixel framing (see common.hpp for the layout contract).
constexpr std::uint32_t kStreamMagic = 0x53505651u;  // "QVPS" little-endian
constexpr std::uint32_t kPieceMagic = 0x32505651u;   // "QVP2" little-endian

struct StreamHeader {
  std::uint32_t magic;
  std::uint32_t piece_count;
  std::uint32_t total_bytes;  // whole message, header included
  std::uint32_t header_crc;   // crc32 over the 12 bytes above
};
static_assert(sizeof(StreamHeader) == 16);

struct FramedPieceHeader {
  std::uint32_t magic;
  std::uint32_t order;
  std::int32_t x0, y0, x1, y1;
  std::uint32_t payload_bytes;
  std::uint8_t encoding;  // PieceEncoding
  std::uint8_t pad[3];    // must be zero
  std::uint32_t header_crc;  // crc32 over the 32 bytes above
};
static_assert(sizeof(FramedPieceHeader) == 36);

void write_with_crc(std::vector<std::uint8_t>& buf, std::size_t pos,
                    const void* header, std::size_t size) {
  std::memcpy(buf.data() + pos, header, size);
  std::uint32_t crc = util::crc32(
      std::span<const std::uint8_t>(buf.data() + pos, size - sizeof(crc)));
  std::memcpy(buf.data() + pos + size - sizeof(crc), &crc, sizeof(crc));
}

}  // namespace

void record_stats(const CompositeStats& s) {
  static auto& messages = metrics::counter("compositing.messages");
  static auto& bytes_sent = metrics::counter("compositing.bytes_sent");
  static auto& pixels_sent = metrics::counter("compositing.pixels_sent");
  messages.add(s.messages);
  bytes_sent.add(s.bytes_sent);
  pixels_sent.add(s.pixels_sent);
}

Piece extract_piece(const PartialImage& partial, ScreenRect rect) {
  Piece p;
  p.order = partial.order;
  p.rect = rect;
  p.pixels.resize(std::size_t(rect.width()) * std::size_t(rect.height()));
  for (int y = rect.y0; y < rect.y1; ++y) {
    for (int x = rect.x0; x < rect.x1; ++x) {
      p.pixels[std::size_t(y - rect.y0) * std::size_t(rect.width()) +
               std::size_t(x - rect.x0)] = partial.at_screen(x, y);
    }
  }
  return p;
}

void pack_piece(const Piece& piece, bool compress,
                std::vector<std::uint8_t>& buf) {
  PieceHeader h{};
  h.order = piece.order;
  h.x0 = piece.rect.x0;
  h.y0 = piece.rect.y0;
  h.x1 = piece.rect.x1;
  h.y1 = piece.rect.y1;
  h.compressed = compress ? 1 : 0;

  std::size_t header_pos = buf.size();
  buf.resize(buf.size() + sizeof(PieceHeader));
  std::size_t payload_pos = buf.size();
  if (compress) {
    img::rle_encode(piece.pixels, buf);
  } else {
    std::size_t bytes = piece.pixels.size() * sizeof(img::Rgba);
    buf.resize(buf.size() + bytes);
    std::memcpy(buf.data() + payload_pos, piece.pixels.data(), bytes);
  }
  h.payload_bytes = buf.size() - payload_pos;
  std::memcpy(buf.data() + header_pos, &h, sizeof(h));
}

std::vector<Piece> unpack_pieces(std::span<const std::uint8_t> buf) {
  std::vector<Piece> out;
  std::size_t pos = 0;
  while (pos + sizeof(PieceHeader) <= buf.size()) {
    PieceHeader h;
    std::memcpy(&h, buf.data() + pos, sizeof(h));
    pos += sizeof(h);
    Piece p;
    p.order = h.order;
    p.rect = {h.x0, h.y0, h.x1, h.y1};
    std::size_t count = std::size_t(p.rect.width()) * std::size_t(p.rect.height());
    if (pos + h.payload_bytes > buf.size())
      throw std::runtime_error("compositing: truncated piece payload");
    p.pixels.resize(count);
    if (h.compressed) {
      auto used = img::rle_decode(buf.first(pos + h.payload_bytes), pos,
                                  p.pixels);
      if (!used)
        throw std::runtime_error("compositing: corrupt RLE piece");
      pos += h.payload_bytes;
    } else {
      if (count * sizeof(img::Rgba) != h.payload_bytes)
        throw std::runtime_error("compositing: piece payload size mismatch");
      std::memcpy(p.pixels.data(), buf.data() + pos, count * sizeof(img::Rgba));
      pos += h.payload_bytes;
    }
    out.push_back(std::move(p));
  }
  return out;
}

ScreenRect active_bbox(const Piece& piece) {
  int x0 = piece.rect.x1, y0 = piece.rect.y1;
  int x1 = piece.rect.x0, y1 = piece.rect.y0;
  bool any = false;
  const int w = piece.rect.width();
  for (int y = piece.rect.y0; y < piece.rect.y1; ++y) {
    for (int x = piece.rect.x0; x < piece.rect.x1; ++x) {
      const img::Rgba& px =
          piece.pixels[std::size_t(y - piece.rect.y0) * std::size_t(w) +
                       std::size_t(x - piece.rect.x0)];
      if (px.transparent()) continue;
      any = true;
      x0 = std::min(x0, x);
      y0 = std::min(y0, y);
      x1 = std::max(x1, x + 1);
      y1 = std::max(y1, y + 1);
    }
  }
  if (!any) return {0, 0, 0, 0};
  return {x0, y0, x1, y1};
}

PieceStreamWriter::PieceStreamWriter(bool compress) : compress_(compress) {
  buf_.resize(sizeof(StreamHeader));  // placeholder, filled by finish()
}

void PieceStreamWriter::add(const Piece& piece) {
  pixels_ += piece.pixels.size();
  count_ += 1;

  FramedPieceHeader h{};
  h.magic = kPieceMagic;
  h.order = piece.order;
  ScreenRect rect = piece.rect;
  if (compress_) {
    rect = active_bbox(piece);
    h.encoding = std::uint8_t(PieceEncoding::kActiveRle);
  } else {
    h.encoding = std::uint8_t(PieceEncoding::kRaw);
  }
  h.x0 = rect.x0;
  h.y0 = rect.y0;
  h.x1 = rect.x1;
  h.y1 = rect.y1;

  std::size_t header_pos = buf_.size();
  buf_.resize(buf_.size() + sizeof(h));
  std::size_t payload_pos = buf_.size();
  if (compress_) {
    if (!rect.empty()) {
      std::vector<img::Rgba> sub(std::size_t(rect.width()) *
                                 std::size_t(rect.height()));
      for (int y = rect.y0; y < rect.y1; ++y) {
        std::memcpy(
            sub.data() + std::size_t(y - rect.y0) * std::size_t(rect.width()),
            piece.pixels.data() +
                std::size_t(y - piece.rect.y0) *
                    std::size_t(piece.rect.width()) +
                std::size_t(rect.x0 - piece.rect.x0),
            std::size_t(rect.width()) * sizeof(img::Rgba));
      }
      img::rle_encode(sub, buf_);
    }
  } else {
    std::size_t bytes = piece.pixels.size() * sizeof(img::Rgba);
    buf_.resize(buf_.size() + bytes);
    std::memcpy(buf_.data() + payload_pos, piece.pixels.data(), bytes);
  }
  if (buf_.size() - payload_pos > UINT32_MAX)
    throw std::runtime_error("piece stream: payload too large");
  h.payload_bytes = std::uint32_t(buf_.size() - payload_pos);
  write_with_crc(buf_, header_pos, &h, sizeof(h));
}

std::vector<std::uint8_t> PieceStreamWriter::finish() {
  StreamHeader sh{};
  sh.magic = kStreamMagic;
  sh.piece_count = count_;
  if (buf_.size() > UINT32_MAX)
    throw std::runtime_error("piece stream: message too large");
  sh.total_bytes = std::uint32_t(buf_.size());
  write_with_crc(buf_, 0, &sh, sizeof(sh));
  return std::move(buf_);
}

std::optional<std::vector<Piece>> unpack_piece_stream(
    std::span<const std::uint8_t> buf, int max_width, int max_height) {
  StreamHeader sh;
  if (buf.size() < sizeof(sh)) return std::nullopt;
  std::memcpy(&sh, buf.data(), sizeof(sh));
  if (sh.magic != kStreamMagic) return std::nullopt;
  if (sh.header_crc != util::crc32(buf.first(sizeof(sh) - 4)))
    return std::nullopt;
  if (sh.total_bytes != buf.size()) return std::nullopt;
  if (std::uint64_t(sh.piece_count) * sizeof(FramedPieceHeader) >
      buf.size() - sizeof(sh))
    return std::nullopt;

  std::vector<Piece> out;
  out.reserve(sh.piece_count);
  std::size_t pos = sizeof(sh);
  for (std::uint32_t i = 0; i < sh.piece_count; ++i) {
    FramedPieceHeader h;
    if (buf.size() - pos < sizeof(h)) return std::nullopt;
    std::memcpy(&h, buf.data() + pos, sizeof(h));
    if (h.magic != kPieceMagic) return std::nullopt;
    if (h.header_crc != util::crc32(buf.subspan(pos, sizeof(h) - 4)))
      return std::nullopt;
    if (h.pad[0] || h.pad[1] || h.pad[2]) return std::nullopt;
    if (h.encoding > std::uint8_t(PieceEncoding::kActiveRle))
      return std::nullopt;
    if (h.x0 < 0 || h.y0 < 0 || h.x1 < h.x0 || h.y1 < h.y0 ||
        h.x1 > max_width || h.y1 > max_height)
      return std::nullopt;
    pos += sizeof(h);
    if (h.payload_bytes > buf.size() - pos) return std::nullopt;

    Piece p;
    p.order = h.order;
    p.rect = {h.x0, h.y0, h.x1, h.y1};
    std::uint64_t count =
        std::uint64_t(p.rect.width()) * std::uint64_t(p.rect.height());
    p.pixels.resize(count);
    if (h.encoding == std::uint8_t(PieceEncoding::kRaw)) {
      if (count * sizeof(img::Rgba) != h.payload_bytes) return std::nullopt;
      std::memcpy(p.pixels.data(), buf.data() + pos, h.payload_bytes);
    } else {
      auto used = img::rle_decode(buf.first(pos + h.payload_bytes), pos,
                                  p.pixels);
      if (!used || *used != h.payload_bytes) return std::nullopt;
    }
    pos += h.payload_bytes;
    out.push_back(std::move(p));
  }
  if (pos != buf.size()) return std::nullopt;
  return out;
}

void composite_pieces(std::vector<Piece>& pieces, img::Image& out, int ox,
                      int oy) {
  std::sort(pieces.begin(), pieces.end(),
            [](const Piece& a, const Piece& b) { return a.order < b.order; });
  for (const Piece& p : pieces) {
    for (int y = p.rect.y0; y < p.rect.y1; ++y) {
      for (int x = p.rect.x0; x < p.rect.x1; ++x) {
        const img::Rgba& src =
            p.pixels[std::size_t(y - p.rect.y0) * std::size_t(p.rect.width()) +
                     std::size_t(x - p.rect.x0)];
        if (src.transparent()) continue;
        out.at(x - ox, y - oy).blend_under(src);
      }
    }
  }
}

}  // namespace qv::compositing
