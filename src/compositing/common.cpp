#include "compositing/common.hpp"

#include <algorithm>
#include <cstring>

#include "img/rle.hpp"
#include "metrics/metrics.hpp"

namespace qv::compositing {

namespace {

struct PieceHeader {
  std::uint32_t order;
  std::int32_t x0, y0, x1, y1;
  std::uint8_t compressed;
  std::uint8_t pad[3];
  std::uint64_t payload_bytes;
};
static_assert(sizeof(PieceHeader) == 32);

}  // namespace

void record_stats(const CompositeStats& s) {
  static auto& messages = metrics::counter("compositing.messages");
  static auto& bytes_sent = metrics::counter("compositing.bytes_sent");
  static auto& pixels_sent = metrics::counter("compositing.pixels_sent");
  messages.add(s.messages);
  bytes_sent.add(s.bytes_sent);
  pixels_sent.add(s.pixels_sent);
}

Piece extract_piece(const PartialImage& partial, ScreenRect rect) {
  Piece p;
  p.order = partial.order;
  p.rect = rect;
  p.pixels.resize(std::size_t(rect.width()) * std::size_t(rect.height()));
  for (int y = rect.y0; y < rect.y1; ++y) {
    for (int x = rect.x0; x < rect.x1; ++x) {
      p.pixels[std::size_t(y - rect.y0) * std::size_t(rect.width()) +
               std::size_t(x - rect.x0)] = partial.at_screen(x, y);
    }
  }
  return p;
}

void pack_piece(const Piece& piece, bool compress,
                std::vector<std::uint8_t>& buf) {
  PieceHeader h{};
  h.order = piece.order;
  h.x0 = piece.rect.x0;
  h.y0 = piece.rect.y0;
  h.x1 = piece.rect.x1;
  h.y1 = piece.rect.y1;
  h.compressed = compress ? 1 : 0;

  std::size_t header_pos = buf.size();
  buf.resize(buf.size() + sizeof(PieceHeader));
  std::size_t payload_pos = buf.size();
  if (compress) {
    img::rle_encode(piece.pixels, buf);
  } else {
    std::size_t bytes = piece.pixels.size() * sizeof(img::Rgba);
    buf.resize(buf.size() + bytes);
    std::memcpy(buf.data() + payload_pos, piece.pixels.data(), bytes);
  }
  h.payload_bytes = buf.size() - payload_pos;
  std::memcpy(buf.data() + header_pos, &h, sizeof(h));
}

std::vector<Piece> unpack_pieces(std::span<const std::uint8_t> buf) {
  std::vector<Piece> out;
  std::size_t pos = 0;
  while (pos + sizeof(PieceHeader) <= buf.size()) {
    PieceHeader h;
    std::memcpy(&h, buf.data() + pos, sizeof(h));
    pos += sizeof(h);
    Piece p;
    p.order = h.order;
    p.rect = {h.x0, h.y0, h.x1, h.y1};
    std::size_t count = std::size_t(p.rect.width()) * std::size_t(p.rect.height());
    if (pos + h.payload_bytes > buf.size())
      throw std::runtime_error("compositing: truncated piece payload");
    p.pixels.resize(count);
    if (h.compressed) {
      auto used = img::rle_decode(buf.first(pos + h.payload_bytes), pos,
                                  p.pixels);
      if (!used)
        throw std::runtime_error("compositing: corrupt RLE piece");
      pos += h.payload_bytes;
    } else {
      if (count * sizeof(img::Rgba) != h.payload_bytes)
        throw std::runtime_error("compositing: piece payload size mismatch");
      std::memcpy(p.pixels.data(), buf.data() + pos, count * sizeof(img::Rgba));
      pos += h.payload_bytes;
    }
    out.push_back(std::move(p));
  }
  return out;
}

void composite_pieces(std::vector<Piece>& pieces, img::Image& out, int ox,
                      int oy) {
  std::sort(pieces.begin(), pieces.end(),
            [](const Piece& a, const Piece& b) { return a.order < b.order; });
  for (const Piece& p : pieces) {
    for (int y = p.rect.y0; y < p.rect.y1; ++y) {
      for (int x = p.rect.x0; x < p.rect.x1; ++x) {
        const img::Rgba& src =
            p.pixels[std::size_t(y - p.rect.y0) * std::size_t(p.rect.width()) +
                     std::size_t(x - p.rect.x0)];
        if (src.transparent()) continue;
        out.at(x - ox, y - oy).blend_under(src);
      }
    }
  }
}

}  // namespace qv::compositing
