#include "compositing/slic.hpp"

#include <algorithm>
#include <cstring>

#include "trace/trace.hpp"
#include "util/stats.hpp"

namespace qv::compositing {

namespace {
constexpr int kTagMeta = 930;
constexpr int kTagSpanData = 931;
constexpr int kTagFinal = 932;

struct WireFootprint {
  std::int32_t x0, y0, x1, y1;
  std::uint32_t order;
};
}  // namespace

SlicSchedule build_slic_schedule(std::span<const FootprintInfo> footprints,
                                 int num_ranks, int width, int height) {
  SlicSchedule sched;
  std::vector<std::uint64_t> load(static_cast<std::size_t>(num_ranks), 0);

  // Bucket footprints by scanline range to avoid an O(H * F) scan blowup for
  // tall images: per scanline, collect the rects covering it.
  std::vector<std::vector<std::size_t>> by_line(static_cast<std::size_t>(height));
  for (std::size_t f = 0; f < footprints.size(); ++f) {
    const ScreenRect& r = footprints[f].rect;
    for (int y = std::max(r.y0, 0); y < std::min(r.y1, height); ++y) {
      by_line[std::size_t(y)].push_back(f);
    }
  }

  for (int y = 0; y < height; ++y) {
    const auto& active = by_line[std::size_t(y)];
    if (active.empty()) continue;
    // Span breakpoints at every footprint x-edge.
    std::vector<int> cuts;
    for (std::size_t f : active) {
      cuts.push_back(std::clamp(footprints[f].rect.x0, 0, width));
      cuts.push_back(std::clamp(footprints[f].rect.x1, 0, width));
    }
    std::sort(cuts.begin(), cuts.end());
    cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
    for (std::size_t c = 0; c + 1 < cuts.size(); ++c) {
      int x0 = cuts[c], x1 = cuts[c + 1];
      if (x0 >= x1) continue;
      SlicSpan span;
      span.y = y;
      span.x0 = x0;
      span.x1 = x1;
      for (std::size_t f : active) {
        const ScreenRect& r = footprints[f].rect;
        if (r.x0 <= x0 && r.x1 >= x1) span.contributors.push_back(footprints[f].owner);
      }
      if (span.contributors.empty()) continue;
      std::sort(span.contributors.begin(), span.contributors.end());
      span.contributors.erase(
          std::unique(span.contributors.begin(), span.contributors.end()),
          span.contributors.end());
      std::uint64_t pixels = std::uint64_t(x1 - x0);
      if (span.contributors.size() == 1) {
        span.compositor = span.contributors[0];
        sched.single_owner_pixels += pixels;
      } else {
        // Least-loaded contributor composites (deterministic tie-break by
        // rank): data for (c-1) contributors moves.
        int best = span.contributors[0];
        for (int r : span.contributors) {
          if (load[std::size_t(r)] < load[std::size_t(best)]) best = r;
        }
        span.compositor = best;
        sched.exchanged_pixels += pixels * (span.contributors.size() - 1);
      }
      load[std::size_t(span.compositor)] += pixels;
      sched.spans.push_back(std::move(span));
    }
  }
  return sched;
}

CompositeResult slic(vmpi::Comm& comm, std::span<const PartialImage> partials,
                     int width, int height, bool compress, int root) {
  const int P = comm.size();
  const int me = comm.rank();
  CompositeResult result;

  // 1. Exchange footprint metadata so all ranks compute the same schedule.
  std::vector<WireFootprint> my_meta;
  for (const auto& p : partials) {
    if (p.rect.empty()) continue;
    my_meta.push_back({p.rect.x0, p.rect.y0, p.rect.x1, p.rect.y1, p.order});
  }
  auto blobs = comm.allgather(
      {reinterpret_cast<const std::uint8_t*>(my_meta.data()),
       my_meta.size() * sizeof(WireFootprint)});
  (void)kTagMeta;

  std::vector<FootprintInfo> footprints;
  for (int r = 0; r < P; ++r) {
    const auto& b = blobs[std::size_t(r)];
    std::size_t n = b.size() / sizeof(WireFootprint);
    for (std::size_t i = 0; i < n; ++i) {
      WireFootprint w;
      std::memcpy(&w, b.data() + i * sizeof(WireFootprint), sizeof(w));
      footprints.push_back({{w.x0, w.y0, w.x1, w.y1}, r});
    }
  }

  // 2. Precompute the view-dependent schedule (identical everywhere).
  WallTimer sched_timer;
  SlicSchedule sched;
  {
    trace::Span tsp("compositing", "slic_schedule");
    sched = build_slic_schedule(footprints, P, width, height);
  }
  result.stats.schedule_seconds = sched_timer.seconds();

  // 3. Send my pixels of every span whose compositor is another rank;
  //    aggregate per destination.
  std::vector<Piece> incoming;
  std::vector<const SlicSpan*> my_spans;
  {
  trace::Span exchange_span("compositing", "slic_exchange");
  std::vector<std::vector<std::uint8_t>> outbox(static_cast<std::size_t>(P));
  for (const SlicSpan& span : sched.spans) {
    if (span.compositor == me) my_spans.push_back(&span);
    bool i_contribute =
        std::find(span.contributors.begin(), span.contributors.end(), me) !=
        span.contributors.end();
    if (!i_contribute || span.compositor == me) continue;
    // Extract my pixels covering this span from each of my overlapping
    // partials (there may be several stacked blocks).
    for (const auto& p : partials) {
      if (p.rect.empty()) continue;
      if (span.y < p.rect.y0 || span.y >= p.rect.y1) continue;
      if (p.rect.x0 > span.x0 || p.rect.x1 < span.x1) continue;
      Piece piece = extract_piece(p, {span.x0, span.y, span.x1, span.y + 1});
      result.stats.pixels_sent += piece.pixels.size();
      pack_piece(piece, compress, outbox[std::size_t(span.compositor)]);
    }
  }
  for (int r = 0; r < P; ++r) {
    if (r == me) continue;
    result.stats.messages += outbox[std::size_t(r)].empty() ? 0 : 1;
    result.stats.bytes_sent += outbox[std::size_t(r)].size();
    comm.send(r, kTagSpanData, outbox[std::size_t(r)]);
  }

  // 4. Receive contributions and composite my scheduled spans.
  for (int r = 0; r < P; ++r) {
    if (r == me) continue;
    std::vector<std::uint8_t> msg;
    comm.recv(r, kTagSpanData, msg);
    auto got = unpack_pieces(msg);
    for (auto& p : got) incoming.push_back(std::move(p));
  }
  }  // slic_exchange

  // Final pixels of my spans, to be shipped to the root.
  std::vector<std::uint8_t> final_msg;
  {
  trace::Span composite_span("compositing", "slic_composite");
  WallTimer comp_timer;
  // Group incoming pieces by (y, x0): they match spans exactly.
  std::sort(incoming.begin(), incoming.end(), [](const Piece& a, const Piece& b) {
    if (a.rect.y0 != b.rect.y0) return a.rect.y0 < b.rect.y0;
    if (a.rect.x0 != b.rect.x0) return a.rect.x0 < b.rect.x0;
    return a.order < b.order;
  });

  for (const SlicSpan* span : my_spans) {
    std::vector<Piece> contributions;
    // My own partials' pixels.
    for (const auto& p : partials) {
      if (p.rect.empty()) continue;
      if (span->y < p.rect.y0 || span->y >= p.rect.y1) continue;
      if (p.rect.x0 > span->x0 || p.rect.x1 < span->x1) continue;
      contributions.push_back(
          extract_piece(p, {span->x0, span->y, span->x1, span->y + 1}));
    }
    // Remote pieces matching this span (binary search window).
    Piece key;
    key.rect = {span->x0, span->y, span->x1, span->y + 1};
    auto lo = std::lower_bound(
        incoming.begin(), incoming.end(), key, [](const Piece& a, const Piece& b) {
          if (a.rect.y0 != b.rect.y0) return a.rect.y0 < b.rect.y0;
          return a.rect.x0 < b.rect.x0;
        });
    for (auto it = lo; it != incoming.end() && it->rect.y0 == span->y &&
                       it->rect.x0 == span->x0;
         ++it) {
      contributions.push_back(*it);
    }
    img::Image span_img(span->x1 - span->x0, 1);
    composite_pieces(contributions, span_img, span->x0, span->y);
    Piece done;
    done.order = 0;
    done.rect = key.rect;
    done.pixels.assign(span_img.pixels().begin(), span_img.pixels().end());
    pack_piece(done, compress, final_msg);
  }
  result.stats.composite_seconds = comp_timer.seconds();
  }  // slic_composite

  // 5. Deliver composited spans to the root (the output processor's role).
  trace::Span deliver_span("compositing", "slic_deliver");
  if (me != root) {
    result.stats.messages += final_msg.empty() ? 0 : 1;
    result.stats.bytes_sent += final_msg.size();
    comm.send(root, kTagFinal, final_msg);
    record_stats(result.stats);
    return result;
  }
  result.image = img::Image(width, height);
  auto paste = [&](std::span<const std::uint8_t> msg) {
    auto pieces = unpack_pieces(msg);
    for (const Piece& p : pieces) {
      for (int x = p.rect.x0; x < p.rect.x1; ++x) {
        result.image.at(x, p.rect.y0) = p.pixels[std::size_t(x - p.rect.x0)];
      }
    }
  };
  paste(final_msg);
  for (int r = 0; r < P; ++r) {
    if (r == root) continue;
    std::vector<std::uint8_t> msg;
    comm.recv(r, kTagFinal, msg);
    paste(msg);
  }
  record_stats(result.stats);
  return result;
}

}  // namespace qv::compositing
