#include "compositing/radix_k.hpp"

#include <cstring>
#include <stdexcept>

#include "metrics/metrics.hpp"
#include "trace/trace.hpp"
#include "util/stats.hpp"

namespace qv::compositing {

namespace {

constexpr int kTagFold = 930;
constexpr int kTagRoundBase = 931;  // + round index
constexpr int kTagGather = 959;

// Copy `rect` (must be inside p.rect) out of an existing piece.
Piece clip_piece(const Piece& p, ScreenRect rect) {
  Piece out;
  out.order = p.order;
  out.rect = rect;
  out.pixels.resize(std::size_t(rect.width()) * std::size_t(rect.height()));
  for (int y = rect.y0; y < rect.y1; ++y) {
    std::memcpy(
        out.pixels.data() +
            std::size_t(y - rect.y0) * std::size_t(rect.width()),
        p.pixels.data() +
            std::size_t(y - p.rect.y0) * std::size_t(p.rect.width()) +
            std::size_t(rect.x0 - p.rect.x0),
        std::size_t(rect.width()) * sizeof(img::Rgba));
  }
  return out;
}

ScreenRect intersect(ScreenRect a, ScreenRect b) {
  return {std::max(a.x0, b.x0), std::max(a.y0, b.y0), std::min(a.x1, b.x1),
          std::min(a.y1, b.y1)};
}

}  // namespace

RadixPlan plan_radix_rounds(int ranks, int k) {
  if (ranks < 1) throw std::runtime_error("radix_k: ranks must be >= 1");
  if (k < 2) throw std::runtime_error("radix_k: k must be >= 2");
  auto k_smooth = [k](int n) {
    for (int f = 2; f <= k && n > 1; ++f)
      while (n % f == 0) n /= f;
    return n == 1;
  };
  RadixPlan plan;
  plan.ranks = ranks;
  plan.active = ranks;
  while (!k_smooth(plan.active)) --plan.active;
  // Greedy largest factor first: k-smoothness guarantees some f in [2, k]
  // divides every intermediate quotient.
  int rem = plan.active;
  while (rem > 1) {
    int f = std::min(k, rem);
    while (rem % f != 0) --f;
    plan.factors.push_back(f);
    rem /= f;
  }
  return plan;
}

CompositeResult radix_k(vmpi::Comm& comm,
                        std::span<const PartialImage> partials, int width,
                        int height, int k, bool compress, int root) {
  const int P = comm.size();
  const int me = comm.rank();
  const RadixPlan plan = plan_radix_rounds(P, k);
  if (root < 0 || root >= plan.active)
    throw std::runtime_error("radix_k: root must be an active rank");
  if (plan.rounds() > kTagGather - kTagRoundBase)
    throw std::runtime_error("radix_k: too many rounds");

  static auto& round_bytes_hist = metrics::histogram(
      "compositing.radixk.round_bytes", metrics::HistogramSpec::bytes());
  static auto& folded_counter = metrics::counter("compositing.radixk.folded");

  CompositeResult result;

  // My initial pieces: one per non-empty partial, clipped to the screen.
  std::vector<Piece> pieces;
  for (const PartialImage& part : partials) {
    ScreenRect r = part.rect.clipped(width, height);
    if (r.empty()) continue;
    pieces.push_back(extract_piece(part, r));
  }

  // Pre-round: remainder ranks fold everything onto an active partner
  // (me - active, always valid because active > P/2).
  if (me >= plan.active) {
    trace::Span fold_span("compositing", "radixk_fold");
    folded_counter.add(1);
    PieceStreamWriter writer(compress);
    for (const Piece& p : pieces) writer.add(p);
    auto msg = writer.finish();
    result.stats.messages += 1;
    result.stats.bytes_sent += msg.size();
    result.stats.pixels_sent += writer.pixels_added();
    comm.send(me - plan.active, kTagFold, msg);
    record_stats(result.stats);
    return result;  // folded ranks own no region and skip the rounds
  }
  if (me + plan.active < P) {
    trace::Span fold_span("compositing", "radixk_fold");
    std::vector<std::uint8_t> msg;
    comm.recv(me + plan.active, kTagFold, msg);
    auto got = unpack_piece_stream(msg, width, height);
    if (!got) throw std::runtime_error("radix_k: corrupt fold message");
    for (auto& p : *got) pieces.push_back(std::move(p));
  }

  // k-way exchange rounds over the active ranks. Group members in round r
  // share every mixed-radix digit of their rank except digit r, so they all
  // hold the identical region; the region's rows are split into f bands and
  // each member keeps exactly one.
  ScreenRect region{0, 0, width, height};
  int stride = 1;
  for (int round = 0; round < plan.rounds(); ++round) {
    const int f = plan.factors[std::size_t(round)];
    trace::Span round_span("compositing", "radixk_round", round);
    const int tag = kTagRoundBase + round;
    const int pos = (me / stride) % f;
    const int base = me - pos * stride;  // group member j sits at base+j*stride

    std::vector<ScreenRect> bands(static_cast<std::size_t>(f));
    for (int j = 0; j < f; ++j) {
      const int h = region.height();
      bands[std::size_t(j)] = {
          region.x0, region.y0 + int(std::int64_t(h) * j / f), region.x1,
          region.y0 + int(std::int64_t(h) * (j + 1) / f)};
    }

    std::vector<PieceStreamWriter> writers;
    writers.reserve(std::size_t(f));
    for (int j = 0; j < f; ++j) writers.emplace_back(compress);

    std::vector<Piece> kept;
    for (const Piece& p : pieces) {
      for (int j = 0; j < f; ++j) {
        ScreenRect overlap = intersect(p.rect, bands[std::size_t(j)]);
        if (overlap.empty()) continue;
        Piece sub = clip_piece(p, overlap);
        if (j == pos) {
          kept.push_back(std::move(sub));
        } else {
          writers[std::size_t(j)].add(sub);
        }
      }
    }
    std::uint64_t round_sent = 0;
    for (int j = 0; j < f; ++j) {
      if (j == pos) continue;
      auto msg = writers[std::size_t(j)].finish();
      result.stats.messages += 1;
      result.stats.bytes_sent += msg.size();
      result.stats.pixels_sent += writers[std::size_t(j)].pixels_added();
      round_sent += msg.size();
      comm.send(base + j * stride, tag, msg);
    }
    round_bytes_hist.observe(double(round_sent));

    pieces = std::move(kept);
    for (int j = 0; j < f; ++j) {
      if (j == pos) continue;
      std::vector<std::uint8_t> in;
      comm.recv(base + j * stride, tag, in);
      auto got = unpack_piece_stream(in, width, height);
      if (!got) throw std::runtime_error("radix_k: corrupt round message");
      for (auto& p : *got) pieces.push_back(std::move(p));
    }
    region = bands[std::size_t(pos)];
    stride *= f;
  }

  // Single deferred blend over my final region — the identical order-sorted
  // fold direct_send() runs, hence bit-exact output.
  WallTimer timer;
  img::Image tile(region.width(), region.height());
  {
    trace::Span composite_span("compositing", "radixk_composite");
    composite_pieces(pieces, tile, region.x0, region.y0);
  }
  result.stats.composite_seconds = timer.seconds();

  // Gather the region tiles at the root.
  trace::Span gather_span("compositing", "radixk_gather");
  if (me == root) {
    result.image = img::Image(width, height);
    auto paste = [&](const Piece& piece) {
      for (int y = piece.rect.y0; y < piece.rect.y1; ++y) {
        std::memcpy(&result.image.at(piece.rect.x0, y),
                    piece.pixels.data() +
                        std::size_t(y - piece.rect.y0) *
                            std::size_t(piece.rect.width()),
                    std::size_t(piece.rect.width()) * sizeof(img::Rgba));
      }
    };
    if (!region.empty()) {
      Piece mine;
      mine.rect = region;
      mine.pixels.assign(tile.pixels().begin(), tile.pixels().end());
      paste(mine);
    }
    for (int r = 0; r < plan.active; ++r) {
      if (r == root) continue;
      std::vector<std::uint8_t> msg;
      comm.recv(r, kTagGather, msg);
      auto got = unpack_piece_stream(msg, width, height);
      if (!got) throw std::runtime_error("radix_k: corrupt gather message");
      for (const Piece& piece : *got) paste(piece);
    }
  } else {
    PieceStreamWriter writer(compress);
    if (!region.empty()) {
      Piece tile_piece;
      tile_piece.order = 0;
      tile_piece.rect = region;
      tile_piece.pixels.assign(tile.pixels().begin(), tile.pixels().end());
      writer.add(tile_piece);
    }
    auto msg = writer.finish();
    result.stats.messages += 1;
    result.stats.bytes_sent += msg.size();
    result.stats.pixels_sent += writer.pixels_added();
    comm.send(root, kTagGather, msg);
  }
  record_stats(result.stats);
  return result;
}

}  // namespace qv::compositing
