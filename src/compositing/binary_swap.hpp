// Binary-swap compositing (Ma et al. '94) — the classic O(log P) scheme the
// paper cites as prior work [21]. Each round, partners exchange halves of
// their current image region and composite; after log2(P) rounds every rank
// owns a fully composited 1/P tile, gathered at the root.
//
// Correct "over" combination between partners requires a global front/back
// relation between the two sides' data. That holds when ranks own convex,
// plane-separable regions (e.g. one octree subtree per rank in Morton
// order, the layout our pipeline produces for power-of-two renderer
// counts); each rank passes its data bounds so the rounds can orient.
#pragma once

#include "compositing/common.hpp"

namespace qv::compositing {

// Collective over `comm`; comm.size() must be a power of two.
// `data_bounds` is the union box of this rank's blocks; `eye` the camera
// position (to decide near/far per round).
CompositeResult binary_swap(vmpi::Comm& comm,
                            std::span<const PartialImage> partials, int width,
                            int height, const Box3& data_bounds, Vec3 eye,
                            bool compress, int root = 0);

}  // namespace qv::compositing
