// Binary-swap compositing (Ma et al. '94) — the classic O(log P) scheme the
// paper cites as prior work [21]. Implemented as the k=2 specialization of
// the radix-k compositor: a power-of-two rank count factors into all-2
// rounds, which IS binary swap's pairing structure. The deferred-blend
// exchange makes the result bit-identical to direct_send(), so the old
// data-bounds/eye parameters (needed to orient eager pairwise "over"
// merges) are gone.
#pragma once

#include "compositing/common.hpp"

namespace qv::compositing {

// Collective over `comm`; comm.size() must be a power of two (use radix_k()
// directly for arbitrary counts).
CompositeResult binary_swap(vmpi::Comm& comm,
                            std::span<const PartialImage> partials, int width,
                            int height, bool compress, int root = 0);

}  // namespace qv::compositing
