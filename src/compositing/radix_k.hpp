// Radix-k sort-last compositing (Peterka et al.'s configurable image
// compositing, generalized here to ANY rank count) — the §4.4 exchange
// structure ROADMAP item 5 calls for. The rank count P is factored into
// rounds of at-most-k-way exchange over the largest k-smooth P' <= P
// (every prime factor <= k; P' > P/2 always, since a power of two lies in
// (P/2, P]); the P - P' remainder ranks fold their pieces onto an active
// partner in a pre-round. k=2 over a power of two degenerates to classic
// binary-swap; k >= P degenerates to a single direct-send-like round.
//
// Unlike the classic eager formulation, rounds here exchange *clipped piece
// lists* without blending; every rank blends exactly once at the end, with
// the same order-sorted front-to-back fold direct_send() uses. Because
// floating-point "over" is not associative, this deferral is what makes the
// result bit-identical to direct-send — for any rank count, any k, and with
// active-pixel compression on or off (the wire format only drops pixels the
// blend would skip as transparent). The guarantee requires partial orders
// to be unique per source partial, which the render pipeline provides.
#pragma once

#include "compositing/common.hpp"

namespace qv::compositing {

// Round structure for `ranks` total ranks and group size at most `k`.
struct RadixPlan {
  int ranks = 1;
  int active = 1;            // largest k-smooth count <= ranks
  std::vector<int> factors;  // per-round group sizes, each in [2, k];
                             // product == active
  int folded() const { return ranks - active; }
  int rounds() const { return int(factors.size()); }
};

// Factor `ranks` into a RadixPlan. Throws on ranks < 1 or k < 2.
RadixPlan plan_radix_rounds(int ranks, int k);

// Collective over `comm`; valid for any comm.size() >= 1. `k` bounds the
// per-round group size; `root` receives the final image and must be an
// active rank (root == 0 always is). `compress` selects the active-pixel
// wire encoding (bbox shrink + RLE) for every exchanged message.
CompositeResult radix_k(vmpi::Comm& comm,
                        std::span<const PartialImage> partials, int width,
                        int height, int k, bool compress, int root = 0);

}  // namespace qv::compositing
