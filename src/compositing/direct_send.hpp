// Direct-send compositing: every processor owns a horizontal strip of the
// final image; every renderer sends each of its partial-image pieces
// directly to the strip owners, who composite and forward to the root
// (output processor). The n(n-1) worst-case message pattern the paper
// describes (§4.4) — the baseline SLIC improves upon.
#pragma once

#include "compositing/common.hpp"

namespace qv::compositing {

// Collective over `comm`: every rank passes its local partials.
// Returns the composited image on `root` (empty elsewhere).
CompositeResult direct_send(vmpi::Comm& comm,
                            std::span<const PartialImage> partials, int width,
                            int height, bool compress, int root = 0);

// Strip of rows owned by `rank` in an `height`-row image over `size` ranks.
ScreenRect strip_rows(int rank, int size, int width, int height);

}  // namespace qv::compositing
