#include "compositing/binary_swap.hpp"

#include <stdexcept>

#include "compositing/radix_k.hpp"

namespace qv::compositing {

CompositeResult binary_swap(vmpi::Comm& comm,
                            std::span<const PartialImage> partials, int width,
                            int height, bool compress, int root) {
  const int P = comm.size();
  if ((P & (P - 1)) != 0)
    throw std::runtime_error("binary_swap: size must be a power of two");
  return radix_k(comm, partials, width, height, 2, compress, root);
}

}  // namespace qv::compositing
