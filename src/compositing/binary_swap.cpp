#include "compositing/binary_swap.hpp"

#include <cmath>
#include <cstring>

#include "trace/trace.hpp"
#include "util/stats.hpp"

namespace qv::compositing {

namespace {
constexpr int kTagSwap = 920;
constexpr int kTagGather = 921;

struct SwapHeader {
  float box[6];  // sender's group bounds
};

// True when box `a` is in front of box `b` as seen from `eye`.
bool a_in_front(const Box3& a, const Box3& b, Vec3 eye) {
  // Look for a separating axis.
  for (int axis = 0; axis < 3; ++axis) {
    float alo = axis == 0 ? a.lo.x : axis == 1 ? a.lo.y : a.lo.z;
    float ahi = axis == 0 ? a.hi.x : axis == 1 ? a.hi.y : a.hi.z;
    float blo = axis == 0 ? b.lo.x : axis == 1 ? b.lo.y : b.lo.z;
    float bhi = axis == 0 ? b.hi.x : axis == 1 ? b.hi.y : b.hi.z;
    float e = axis == 0 ? eye.x : axis == 1 ? eye.y : eye.z;
    const float tol = 1e-6f;
    if (ahi <= blo + tol) {
      // a below b on this axis: a is in front iff the eye is on a's side.
      return e < blo;
    }
    if (bhi <= alo + tol) {
      return e > bhi;
    }
  }
  // Overlapping boxes (shouldn't happen with subtree partitions): center
  // distance fallback.
  return (a.center() - eye).norm2() < (b.center() - eye).norm2();
}

}  // namespace

CompositeResult binary_swap(vmpi::Comm& comm,
                            std::span<const PartialImage> partials, int width,
                            int height, const Box3& data_bounds, Vec3 eye,
                            bool compress, int root) {
  const int P = comm.size();
  const int me = comm.rank();
  if ((P & (P - 1)) != 0)
    throw std::runtime_error("binary_swap: size must be a power of two");

  CompositeResult result;

  // Flatten my partials into a full-frame local image.
  std::vector<const PartialImage*> ptrs;
  for (const auto& p : partials) ptrs.push_back(&p);
  img::Image local = render::compose_reference(std::move(ptrs), width, height);

  ScreenRect region{0, 0, width, height};
  Box3 my_box = data_bounds;

  WallTimer timer;
  int rounds = 0;
  while ((1 << rounds) < P) ++rounds;
  for (int k = 0; k < rounds; ++k) {
    trace::Span round_span("compositing", "bswap_round", k);
    int partner = me ^ (1 << k);
    // Split `region` by rows; the lower-rank side keeps the top half.
    int mid = (region.y0 + region.y1) / 2;
    ScreenRect top{region.x0, region.y0, region.x1, mid};
    ScreenRect bottom{region.x0, mid, region.x1, region.y1};
    bool keep_top = (me & (1 << k)) == 0;
    ScreenRect keep = keep_top ? top : bottom;
    ScreenRect give = keep_top ? bottom : top;

    // Send my pixels of the half the partner keeps, plus my group box.
    Piece out_piece;
    out_piece.order = 0;
    out_piece.rect = give;
    out_piece.pixels.resize(std::size_t(give.width()) *
                            std::size_t(give.height()));
    for (int y = give.y0; y < give.y1; ++y)
      for (int x = give.x0; x < give.x1; ++x)
        out_piece.pixels[std::size_t(y - give.y0) * std::size_t(give.width()) +
                         std::size_t(x - give.x0)] = local.at(x, y);

    std::vector<std::uint8_t> msg(sizeof(SwapHeader));
    SwapHeader hdr{{my_box.lo.x, my_box.lo.y, my_box.lo.z, my_box.hi.x,
                    my_box.hi.y, my_box.hi.z}};
    std::memcpy(msg.data(), &hdr, sizeof(hdr));
    result.stats.pixels_sent += out_piece.pixels.size();
    pack_piece(out_piece, compress, msg);
    result.stats.messages += 1;
    result.stats.bytes_sent += msg.size();
    comm.send(partner, kTagSwap, msg);

    std::vector<std::uint8_t> in;
    comm.recv(partner, kTagSwap, in);
    SwapHeader phdr;
    std::memcpy(&phdr, in.data(), sizeof(phdr));
    Box3 partner_box{{phdr.box[0], phdr.box[1], phdr.box[2]},
                     {phdr.box[3], phdr.box[4], phdr.box[5]}};
    auto pieces = unpack_pieces(
        std::span<const std::uint8_t>(in).subspan(sizeof(SwapHeader)));
    if (pieces.size() != 1 || !(pieces[0].rect.x0 == keep.x0 &&
                                pieces[0].rect.y0 == keep.y0 &&
                                pieces[0].rect.x1 == keep.x1 &&
                                pieces[0].rect.y1 == keep.y1))
      throw std::runtime_error("binary_swap: unexpected piece geometry");
    const Piece& pp = pieces[0];

    bool partner_front = a_in_front(partner_box, my_box, eye);
    for (int y = keep.y0; y < keep.y1; ++y) {
      for (int x = keep.x0; x < keep.x1; ++x) {
        const img::Rgba& theirs =
            pp.pixels[std::size_t(y - keep.y0) * std::size_t(keep.width()) +
                      std::size_t(x - keep.x0)];
        img::Rgba& ours = local.at(x, y);
        ours = partner_front ? theirs.over(ours) : ours.over(theirs);
      }
    }
    region = keep;
    my_box = my_box.united(partner_box);
  }
  result.stats.composite_seconds = timer.seconds();

  // Gather the 1/P tiles at the root.
  trace::Span gather_span("compositing", "bswap_gather");
  if (me == root) {
    result.image = img::Image(width, height);
    for (int y = region.y0; y < region.y1; ++y)
      for (int x = region.x0; x < region.x1; ++x)
        result.image.at(x, y) = local.at(x, y);
    for (int r = 0; r < P; ++r) {
      if (r == root) continue;
      std::vector<std::uint8_t> msg;
      comm.recv(r, kTagGather, msg);
      auto pieces = unpack_pieces(msg);
      for (const Piece& p : pieces) {
        for (int y = p.rect.y0; y < p.rect.y1; ++y)
          for (int x = p.rect.x0; x < p.rect.x1; ++x)
            result.image.at(x, y) =
                p.pixels[std::size_t(y - p.rect.y0) *
                             std::size_t(p.rect.width()) +
                         std::size_t(x - p.rect.x0)];
      }
    }
  } else {
    Piece tile;
    tile.order = 0;
    tile.rect = region;
    tile.pixels.resize(std::size_t(region.width()) *
                       std::size_t(region.height()));
    for (int y = region.y0; y < region.y1; ++y)
      for (int x = region.x0; x < region.x1; ++x)
        tile.pixels[std::size_t(y - region.y0) * std::size_t(region.width()) +
                    std::size_t(x - region.x0)] = local.at(x, y);
    std::vector<std::uint8_t> msg;
    pack_piece(tile, compress, msg);
    result.stats.messages += 1;
    result.stats.bytes_sent += msg.size();
    comm.send(root, kTagGather, msg);
  }
  record_stats(result.stats);
  return result;
}

}  // namespace qv::compositing
