// Shared machinery for the sort-last parallel compositing algorithms
// (§4.4): the wire format for exchanged image pieces (optionally
// RLE-compressed — the paper's conclusion measures ~50% savings), piece
// extraction from partial images, and statistics counters.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "img/image.hpp"
#include "render/partial_image.hpp"
#include "vmpi/comm.hpp"

namespace qv::compositing {

using render::PartialImage;
using render::ScreenRect;

// A rectangle of pixels with its global compositing order.
struct Piece {
  std::uint32_t order = 0;
  ScreenRect rect;
  std::vector<img::Rgba> pixels;  // row-major, rect.width() * rect.height()
};

struct CompositeStats {
  std::uint64_t messages = 0;        // point-to-point messages sent
  std::uint64_t bytes_sent = 0;      // total payload sent by this rank
  std::uint64_t pixels_sent = 0;     // pre-compression pixel count
  double schedule_seconds = 0.0;     // SLIC schedule computation time
  double composite_seconds = 0.0;    // local compositing work

  void merge(const CompositeStats& o) {
    messages += o.messages;
    bytes_sent += o.bytes_sent;
    pixels_sent += o.pixels_sent;
    schedule_seconds += o.schedule_seconds;
    composite_seconds += o.composite_seconds;
  }
};

// Feed one rank's completed-call statistics into the metrics registry
// (compositing.messages / compositing.bytes_sent / compositing.pixels_sent).
// Every algorithm calls this once per invocation just before returning.
void record_stats(const CompositeStats& s);

// Extract `rect` (screen coordinates, must be inside partial.rect) from a
// partial image as a Piece.
Piece extract_piece(const PartialImage& partial, ScreenRect rect);

// Append a serialized piece to `buf`; `compress` selects RLE pixel payload.
void pack_piece(const Piece& piece, bool compress, std::vector<std::uint8_t>& buf);

// Unpack all pieces in a message.
std::vector<Piece> unpack_pieces(std::span<const std::uint8_t> buf);

// Composite `pieces` (sorted by order internally, front-to-back) into `out`
// over the region each piece covers. `out` is in screen coordinates
// starting at (ox, oy).
void composite_pieces(std::vector<Piece>& pieces, img::Image& out, int ox, int oy);

// The result of a collective compositing call: rank `root` holds the final
// image; other ranks hold an empty image.
struct CompositeResult {
  img::Image image;
  CompositeStats stats;
};

}  // namespace qv::compositing
