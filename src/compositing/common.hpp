// Shared machinery for the sort-last parallel compositing algorithms
// (§4.4): the wire format for exchanged image pieces (optionally
// RLE-compressed — the paper's conclusion measures ~50% savings), piece
// extraction from partial images, and statistics counters.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "img/image.hpp"
#include "render/partial_image.hpp"
#include "vmpi/comm.hpp"

namespace qv::compositing {

using render::PartialImage;
using render::ScreenRect;

// A rectangle of pixels with its global compositing order.
struct Piece {
  std::uint32_t order = 0;
  ScreenRect rect;
  std::vector<img::Rgba> pixels;  // row-major, rect.width() * rect.height()
};

struct CompositeStats {
  std::uint64_t messages = 0;        // point-to-point messages sent
  std::uint64_t bytes_sent = 0;      // total payload sent by this rank
  std::uint64_t pixels_sent = 0;     // pre-compression pixel count
  double schedule_seconds = 0.0;     // SLIC schedule computation time
  double composite_seconds = 0.0;    // local compositing work

  void merge(const CompositeStats& o) {
    messages += o.messages;
    bytes_sent += o.bytes_sent;
    pixels_sent += o.pixels_sent;
    schedule_seconds += o.schedule_seconds;
    composite_seconds += o.composite_seconds;
  }
};

// Feed one rank's completed-call statistics into the metrics registry
// (compositing.messages / compositing.bytes_sent / compositing.pixels_sent).
// Every algorithm calls this once per invocation just before returning.
void record_stats(const CompositeStats& s);

// Extract `rect` (screen coordinates, must be inside partial.rect) from a
// partial image as a Piece.
Piece extract_piece(const PartialImage& partial, ScreenRect rect);

// Append a serialized piece to `buf`; `compress` selects RLE pixel payload.
void pack_piece(const Piece& piece, bool compress, std::vector<std::uint8_t>& buf);

// Unpack all pieces in a message.
std::vector<Piece> unpack_pieces(std::span<const std::uint8_t> buf);

// --- active-pixel wire format (radix-k / binary-swap exchange) --------------
//
// A hardened, self-validating framing for piece exchange. Layout:
//
//   [StreamHeader  16 B]  magic "QVPS" | piece_count | total_bytes | crc32
//   [PieceFrame       ]*  repeated piece_count times, back to back
//
//   PieceFrame:
//   [FramedPieceHeader 36 B]  magic "QVP2" | order | x0 y0 x1 y1 |
//                             payload_bytes | encoding | pad[3] | crc32
//   [payload payload_bytes B] kRaw: rect.w*rect.h raw Rgba values
//                             kActiveRle: RLE of the active-pixel bbox
//
// Both headers carry a CRC over their own bytes, the stream header pins the
// exact message length, and the decoder re-derives every payload length —
// so truncation at ANY byte (including a frame boundary), any header bit
// flip, and random garbage are all rejected with nullopt rather than
// repaired or partially decoded (mirrors the stream/control codec fuzz
// contracts from PR 2).
enum class PieceEncoding : std::uint8_t { kRaw = 0, kActiveRle = 1 };

// Bounding box of the non-transparent pixels of `piece`, in screen
// coordinates; {0,0,0,0} when the piece is fully transparent. Dropping the
// pixels outside this box is lossless for compositing: composite_pieces()
// skips transparent sources, and an untouched output pixel is exactly zero.
ScreenRect active_bbox(const Piece& piece);

// Incrementally builds one wire message from pieces. `compress` selects
// kActiveRle (bbox shrink + RLE) for every added piece, else kRaw.
class PieceStreamWriter {
 public:
  explicit PieceStreamWriter(bool compress);
  void add(const Piece& piece);
  // Pre-compression pixel count over all added pieces (for stats).
  std::uint64_t pixels_added() const { return pixels_; }
  // Finalize the stream header and hand back the message; the writer is
  // spent afterwards (pixels_added() stays valid).
  std::vector<std::uint8_t> finish();

 private:
  bool compress_;
  std::uint32_t count_ = 0;
  std::uint64_t pixels_ = 0;
  std::vector<std::uint8_t> buf_;
};

// Decode a full message produced by PieceStreamWriter. `max_width` /
// `max_height` bound the acceptable piece rects (the screen size). Returns
// nullopt on any malformation; never throws, never returns a partial list.
std::optional<std::vector<Piece>> unpack_piece_stream(
    std::span<const std::uint8_t> buf, int max_width, int max_height);

// Composite `pieces` (sorted by order internally, front-to-back) into `out`
// over the region each piece covers. `out` is in screen coordinates
// starting at (ox, oy).
void composite_pieces(std::vector<Piece>& pieces, img::Image& out, int ox, int oy);

// The result of a collective compositing call: rank `root` holds the final
// image; other ranks hold an empty image.
struct CompositeResult {
  img::Image image;
  CompositeStats stats;
};

}  // namespace qv::compositing
