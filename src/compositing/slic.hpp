// SLIC — Scheduled Linear Image Compositing (Stompel, Ma, Lum, Ahrens,
// Patchett, PVG 2003): the optimized direct-send variant the paper adopts
// (§4.4).
//
// A view-dependent schedule is precomputed identically on every rank from
// the global set of partial-image footprints:
//   * each scanline is cut into spans at footprint boundaries, so the set
//     of contributing processors is constant within a span;
//   * spans with one contributor need no communication at all — they are
//     "scheduled" onto their only owner;
//   * multi-contributor spans are assigned to one of their contributors
//     (the least-loaded, for pixel balance), so at most (c-1) messages move
//     per span instead of c messages to a fixed strip owner.
// Messages between a (sender, compositor) pair are aggregated, giving the
// minimal message count the paper highlights; the schedule itself costs
// well under 10 ms (stats.schedule_seconds).
#pragma once

#include "compositing/common.hpp"

namespace qv::compositing {

// Collective over `comm`; every rank passes its local partials (their
// `order` fields must be globally consistent front-to-back ranks).
CompositeResult slic(vmpi::Comm& comm, std::span<const PartialImage> partials,
                     int width, int height, bool compress, int root = 0);

// Schedule introspection (exposed for tests and the compositing bench).
struct SlicSpan {
  int y = 0;
  int x0 = 0, x1 = 0;
  int compositor = 0;               // rank that composites this span
  std::vector<int> contributors;    // ranks whose footprints cover it
};

struct SlicSchedule {
  std::vector<SlicSpan> spans;
  std::uint64_t single_owner_pixels = 0;  // no-communication pixels
  std::uint64_t exchanged_pixels = 0;     // pixels that must move
};

// Footprint metadata of one partial: screen rect + owning rank.
struct FootprintInfo {
  ScreenRect rect;
  int owner = 0;
};

SlicSchedule build_slic_schedule(std::span<const FootprintInfo> footprints,
                                 int num_ranks, int width, int height);

}  // namespace qv::compositing
