// Process-wide metrics registry: counters, gauges, and histograms.
//
// This is the second observability pillar next to src/trace. Tracing answers
// "when did it happen" (per-rank timelines); metrics answer "how much, how
// often, how long on aggregate" (counts, bytes, latency distributions with
// p50/p95/p99) and are what run reports and the benchmark regression gate
// consume.
//
// Cost contract:
//  * Counters and gauges are ALWAYS on. An add is one relaxed atomic
//    fetch_add on a cache-line-padded per-shard slot (no locks, no
//    allocation); instrumented hot paths batch locally and add once per
//    call. This is what lets PipelineReport read its counters from the
//    registry without a separate "metrics mode".
//  * Histograms record only while enabled() (the observations worth having
//    are latencies, and the clock reads to produce them live at the call
//    sites, which gate on enabled()). Disabled cost is one relaxed load.
//  * Registration (`counter("name")` etc.) takes a registry mutex; call it
//    once per site via a static local, not per operation.
//
// Sharding: every metric keeps kShards slots; a thread writes the slot
// indexed by its registration ordinal (vmpi ranks are threads, so these are
// the "per-rank shards"). collect() merges shards into a Snapshot; merging
// is associative, so a merged snapshot equals what a single shard would
// have recorded for the same observations (tested).
//
// Concurrency contract: enable()/disable()/reset() must not run concurrently
// with recording (same contract as src/trace — they bracket
// vmpi::Runtime::run). collect() may run any time; it reads relaxed atomics
// and yields a consistent-enough snapshot (exact once recorders quiesce).
//
// Metric names are dot-separated lowercase paths ("vmpi.send.bytes",
// "span.pipeline.fetch"). Names passed to counter()/gauge()/histogram()
// may be temporaries (they are copied); span_histogram() requires string
// literals, matching trace::Span.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace qv::metrics {

inline constexpr int kShards = 8;

// --- global switch (gates histogram recording only) ------------------------
bool enabled() noexcept;
void enable();            // reset() + on
void disable() noexcept;  // off (recorded data is kept until reset())
void reset();             // zero every registered metric

// --- histogram shape --------------------------------------------------------
struct HistogramSpec {
  enum class Kind { kFixed, kLog2 };
  Kind kind = Kind::kLog2;

  // kFixed: ascending upper bucket edges. Bucket i counts v <= bounds[i]
  // (bucket 0 doubles as the underflow bucket); one extra overflow bucket
  // counts v > bounds.back().
  std::vector<double> bounds;

  // kLog2: bucket 0 is underflow (v < 2^min_exp, including <= 0 and NaN);
  // each octave [2^e, 2^{e+1}) for e in [min_exp, max_exp) is split into
  // `sub_buckets` equal-width linear buckets; the last bucket is overflow
  // (v >= 2^max_exp). sub_buckets bounds the relative bucket width at
  // 1/sub_buckets, which bounds the percentile interpolation error.
  int min_exp = -30;
  int max_exp = 14;
  int sub_buckets = 8;

  static HistogramSpec fixed(std::vector<double> upper_edges);
  static HistogramSpec log2(int min_exp, int max_exp, int sub_buckets = 8);
  // Durations in seconds: ~1 ns .. ~4096 s, 32 sub-buckets (<= 3.1% bucket
  // width, so bucketed medians track true medians well within 5%).
  static HistogramSpec duration_seconds();
  // Sizes in bytes: 1 B .. 1 TiB, octave resolution.
  static HistogramSpec bytes();

  int bucket_count() const;          // including underflow + overflow
  int bucket_index(double v) const;  // always a valid bucket
  double bucket_lo(int i) const;     // -inf for the underflow bucket
  double bucket_hi(int i) const;     // +inf for the overflow bucket
  bool operator==(const HistogramSpec&) const = default;
};

// A merged (or parsed-back) histogram state.
struct HistogramSnapshot {
  HistogramSpec spec;
  std::vector<std::uint64_t> counts;  // dense, spec.bucket_count() entries
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  // meaningful only when count > 0
  double max = 0.0;

  double mean() const { return count ? sum / double(count) : 0.0; }
  // Rank-interpolated percentile (p in [0,100]) from the buckets, with the
  // containing bucket's range clamped to the observed [min, max] — a
  // single-valued distribution reports that value exactly.
  double percentile(double p) const;
};

// --- metric handles ---------------------------------------------------------
// Handles are registry-owned and live for the process lifetime; hold them by
// reference from a static local at each instrumentation site.

class Counter {
 public:
  void add(std::uint64_t v = 1) noexcept;
  std::uint64_t value() const noexcept;  // merged over shards
  const std::string& name() const { return name_; }

 private:
  friend Counter& counter(const std::string&);
  friend void reset();
  explicit Counter(std::string name) : name_(std::move(name)) {}
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Slot, kShards> shards_{};
  std::string name_;
};

class Gauge {
 public:
  void set(double v) noexcept;
  void add(double v) noexcept;
  double value() const noexcept;
  const std::string& name() const { return name_; }

 private:
  friend Gauge& gauge(const std::string&);
  friend void reset();
  explicit Gauge(std::string name) : name_(std::move(name)) {}
  std::atomic<std::uint64_t> bits_;
  std::string name_;
};

class Histogram {
 public:
  // No-op unless enabled(). NaN and negative values land in the underflow
  // bucket rather than being dropped, so count stays an observation count.
  void observe(double v) noexcept;
  HistogramSnapshot snapshot() const;
  const std::string& name() const { return name_; }
  const HistogramSpec& spec() const { return spec_; }

 private:
  friend Histogram& histogram(const std::string&, const HistogramSpec&);
  friend void reset();
  Histogram(std::string name, const HistogramSpec& spec);
  struct Shard {
    std::unique_ptr<std::atomic<std::uint64_t>[]> counts;
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum_bits{0};  // double bits, CAS-accumulated
    std::atomic<std::uint64_t> min_bits;     // double bits
    std::atomic<std::uint64_t> max_bits;
  };
  std::array<Shard, kShards> shards_;
  HistogramSpec spec_;
  std::string name_;
};

// --- registration -----------------------------------------------------------
// Idempotent by name: the first call creates, later calls return the same
// handle. Re-registering a histogram name with a different spec keeps the
// original spec (first writer wins).
Counter& counter(const std::string& name);
Gauge& gauge(const std::string& name);
Histogram& histogram(const std::string& name,
                     const HistogramSpec& spec = HistogramSpec::duration_seconds());

// Duration histogram "span.<cat>.<name>" for a trace span; cat/name must be
// string literals (their addresses key a per-thread cache, so the steady
// state is lock-free). This is how trace spans auto-feed stage histograms.
Histogram& span_histogram(const char* cat, const char* name);

// --- collection -------------------------------------------------------------
struct Snapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  std::uint64_t counter_or(const std::string& name, std::uint64_t fb = 0) const {
    auto it = counters.find(name);
    return it == counters.end() ? fb : it->second;
  }
  double gauge_or(const std::string& name, double fb = 0.0) const {
    auto it = gauges.find(name);
    return it == gauges.end() ? fb : it->second;
  }
};

// Merge every metric's shards. Zero-valued counters/gauges and empty
// histograms are included (a registered metric is part of the schema).
Snapshot collect();

}  // namespace qv::metrics
