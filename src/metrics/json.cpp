#include "metrics/json.hpp"

#include <cctype>
#include <cstdlib>
#include <cstring>

namespace qv::metrics {
namespace {

class JsonParser {
 public:
  JsonParser(const std::string& text, std::string* err) : s_(text), err_(err) {}

  std::optional<Json> parse() {
    auto v = value();
    if (!v) return std::nullopt;
    skip_ws();
    if (pos_ != s_.size()) return fail("trailing garbage");
    return v;
  }

 private:
  std::optional<Json> fail(const char* why) {
    if (err_ && err_->empty()) {
      *err_ = std::string(why) + " at offset " + std::to_string(pos_);
    }
    return std::nullopt;
  }

  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::optional<Json> value() {
    skip_ws();
    if (pos_ >= s_.size()) return fail("unexpected end");
    const char c = s_[pos_];
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') {
      auto str = string();
      if (!str) return std::nullopt;
      return Json{*str};
    }
    if (c == 't' || c == 'f' || c == 'n') return keyword();
    return number();
  }

  std::optional<Json> keyword() {
    auto lit = [&](const char* kw, Json j) -> std::optional<Json> {
      const size_t n = std::strlen(kw);
      if (s_.compare(pos_, n, kw) != 0) return fail("bad literal");
      pos_ += n;
      return j;
    };
    if (s_[pos_] == 't') return lit("true", Json{true});
    if (s_[pos_] == 'f') return lit("false", Json{false});
    return lit("null", Json{nullptr});
  }

  std::optional<Json> number() {
    const char* start = s_.c_str() + pos_;
    char* end = nullptr;
    const double d = std::strtod(start, &end);
    if (end == start) return fail("bad number");
    pos_ += size_t(end - start);
    return Json{d};
  }

  std::optional<std::string> string() {
    if (!consume('"')) {
      fail("expected string");
      return std::nullopt;
    }
    std::string out;
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= s_.size()) break;
        const char e = s_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > s_.size()) {
              fail("bad \\u escape");
              return std::nullopt;
            }
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = s_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= unsigned(h - '0');
              else if (h >= 'a' && h <= 'f') code |= unsigned(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= unsigned(h - 'A' + 10);
              else {
                fail("bad \\u escape");
                return std::nullopt;
              }
            }
            // Emitters here only escape control chars; keep it simple (latin-1).
            if (code < 0x80) {
              out += char(code);
            } else {
              out += char(0xC0 | (code >> 6));
              out += char(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            fail("bad escape");
            return std::nullopt;
        }
      } else {
        out += c;
      }
    }
    fail("unterminated string");
    return std::nullopt;
  }

  std::optional<Json> array() {
    consume('[');
    auto arr = std::make_shared<JsonArray>();
    skip_ws();
    if (consume(']')) return Json{arr};
    for (;;) {
      auto v = value();
      if (!v) return std::nullopt;
      arr->push_back(std::move(*v));
      if (consume(']')) return Json{arr};
      if (!consume(',')) return fail("expected ',' in array");
    }
  }

  std::optional<Json> object() {
    consume('{');
    auto obj = std::make_shared<JsonObject>();
    skip_ws();
    if (consume('}')) return Json{obj};
    for (;;) {
      skip_ws();
      auto key = string();
      if (!key) return std::nullopt;
      if (!consume(':')) return fail("expected ':' in object");
      auto v = value();
      if (!v) return std::nullopt;
      (*obj)[*key] = std::move(*v);
      if (consume('}')) return Json{obj};
      if (!consume(',')) return fail("expected ',' in object");
    }
  }

  const std::string& s_;
  std::string* err_;
  size_t pos_ = 0;
};

}  // namespace

std::optional<Json> parse_json(const std::string& text, std::string* err) {
  return JsonParser(text, err).parse();
}

}  // namespace qv::metrics
