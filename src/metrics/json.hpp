// Minimal JSON value + parser, shared by the qv-run-report reader and the
// flight-recorder dump validator in tools/bench_report.
//
// Deliberately small: objects/arrays/strings/numbers/bools/null, all numbers
// as double — enough to round-trip the schemas this repo emits without
// adding a dependency. Not a general-purpose JSON library (no surrogate
// pairs, no duplicate-key detection).
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

namespace qv::metrics {

struct Json;
using JsonArray = std::vector<Json>;
using JsonObject = std::map<std::string, Json>;

struct Json {
  std::variant<std::nullptr_t, bool, double, std::string, std::shared_ptr<JsonArray>,
               std::shared_ptr<JsonObject>>
      v = nullptr;

  bool is_object() const { return std::holds_alternative<std::shared_ptr<JsonObject>>(v); }
  bool is_array() const { return std::holds_alternative<std::shared_ptr<JsonArray>>(v); }
  bool is_number() const { return std::holds_alternative<double>(v); }
  bool is_string() const { return std::holds_alternative<std::string>(v); }
  bool is_bool() const { return std::holds_alternative<bool>(v); }
  double num() const { return std::get<double>(v); }
  const std::string& str() const { return std::get<std::string>(v); }
  bool boolean() const { return std::get<bool>(v); }
  const JsonArray& arr() const { return *std::get<std::shared_ptr<JsonArray>>(v); }
  const JsonObject& obj() const { return *std::get<std::shared_ptr<JsonObject>>(v); }
  const Json* find(const std::string& key) const {
    if (!is_object()) return nullptr;
    auto it = obj().find(key);
    return it == obj().end() ? nullptr : &it->second;
  }
};

// Parse a complete JSON document. On failure returns nullopt and, if err is
// non-null and still empty, stores a one-line reason with the byte offset.
std::optional<Json> parse_json(const std::string& text, std::string* err = nullptr);

}  // namespace qv::metrics
