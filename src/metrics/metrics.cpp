#include "metrics/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <deque>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <unordered_map>

namespace qv::metrics {
namespace {

std::atomic<bool> g_enabled{false};

// Thread -> shard assignment: each thread gets the next ordinal on first
// touch; vmpi ranks (threads) therefore spread round-robin over the shards.
std::atomic<int> g_next_ordinal{0};

int this_shard() noexcept {
  thread_local int shard = g_next_ordinal.fetch_add(1, std::memory_order_relaxed) % kShards;
  return shard;
}

constexpr std::uint64_t bits_of(double v) noexcept { return std::bit_cast<std::uint64_t>(v); }
constexpr double double_of(std::uint64_t b) noexcept { return std::bit_cast<double>(b); }

// The registry itself. Deques keep handle addresses stable across
// registration; the whole structure is leaked (like trace::Registry) so
// metrics recorded from detached threads during teardown stay valid.
struct Registry {
  std::mutex mu;
  // unique_ptr storage: the metric types hold atomics and are immovable.
  std::deque<std::unique_ptr<Counter>> counters;
  std::deque<std::unique_ptr<Gauge>> gauges;
  std::deque<std::unique_ptr<Histogram>> histograms;
  std::unordered_map<std::string, Counter*> counter_by_name;
  std::unordered_map<std::string, Gauge*> gauge_by_name;
  std::unordered_map<std::string, Histogram*> histogram_by_name;
};

Registry& registry() {
  static Registry* r = new Registry;  // leaked deliberately
  return *r;
}

}  // namespace

bool enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }

void enable() {
  reset();
  g_enabled.store(true, std::memory_order_relaxed);
}

void disable() noexcept { g_enabled.store(false, std::memory_order_relaxed); }

void reset() {
  auto& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (auto& c : r.counters) {
    for (auto& s : c->shards_) s.v.store(0, std::memory_order_relaxed);
  }
  for (auto& g : r.gauges) g->bits_.store(bits_of(0.0), std::memory_order_relaxed);
  for (auto& h : r.histograms) {
    const int n = h->spec_.bucket_count();
    for (auto& s : h->shards_) {
      for (int i = 0; i < n; ++i) s.counts[i].store(0, std::memory_order_relaxed);
      s.count.store(0, std::memory_order_relaxed);
      s.sum_bits.store(bits_of(0.0), std::memory_order_relaxed);
      s.min_bits.store(bits_of(std::numeric_limits<double>::infinity()),
                       std::memory_order_relaxed);
      s.max_bits.store(bits_of(-std::numeric_limits<double>::infinity()),
                       std::memory_order_relaxed);
    }
  }
}

// --- HistogramSpec ----------------------------------------------------------

HistogramSpec HistogramSpec::fixed(std::vector<double> upper_edges) {
  if (upper_edges.empty()) throw std::invalid_argument("fixed histogram needs bounds");
  if (!std::is_sorted(upper_edges.begin(), upper_edges.end()))
    throw std::invalid_argument("fixed histogram bounds must be ascending");
  HistogramSpec s;
  s.kind = Kind::kFixed;
  s.bounds = std::move(upper_edges);
  return s;
}

HistogramSpec HistogramSpec::log2(int min_exp, int max_exp, int sub_buckets) {
  if (max_exp <= min_exp || sub_buckets < 1)
    throw std::invalid_argument("bad log2 histogram shape");
  HistogramSpec s;
  s.kind = Kind::kLog2;
  s.min_exp = min_exp;
  s.max_exp = max_exp;
  s.sub_buckets = sub_buckets;
  return s;
}

HistogramSpec HistogramSpec::duration_seconds() { return log2(-30, 12, 32); }
HistogramSpec HistogramSpec::bytes() { return log2(0, 40, 1); }

int HistogramSpec::bucket_count() const {
  if (kind == Kind::kFixed) return int(bounds.size()) + 1;
  return (max_exp - min_exp) * sub_buckets + 2;
}

int HistogramSpec::bucket_index(double v) const {
  if (kind == Kind::kFixed) {
    // First bound >= v; bucket i holds v <= bounds[i]. NaN compares false
    // everywhere and lands in the overflow bucket via lower_bound semantics;
    // route it to underflow instead so edge buckets stay meaningful.
    if (std::isnan(v)) return 0;
    auto it = std::lower_bound(bounds.begin(), bounds.end(), v);
    return int(it - bounds.begin());  // == bounds.size() -> overflow
  }
  const double lo = std::ldexp(1.0, min_exp);
  if (!(v >= lo)) return 0;  // underflow; also catches NaN and negatives
  if (v >= std::ldexp(1.0, max_exp)) return bucket_count() - 1;
  const int e = std::ilogb(v);  // floor(log2 v); v in [2^e, 2^{e+1})
  const double frac = std::ldexp(v, -e) - 1.0;  // [0, 1)
  int sub = int(frac * sub_buckets);
  if (sub >= sub_buckets) sub = sub_buckets - 1;  // guard fp round-up
  return 1 + (e - min_exp) * sub_buckets + sub;
}

double HistogramSpec::bucket_lo(int i) const {
  if (i <= 0) return -std::numeric_limits<double>::infinity();
  if (kind == Kind::kFixed) return bounds[size_t(i - 1)];
  if (i >= bucket_count() - 1) return std::ldexp(1.0, max_exp);
  const int e = min_exp + (i - 1) / sub_buckets;
  const int sub = (i - 1) % sub_buckets;
  return std::ldexp(1.0 + double(sub) / sub_buckets, e);
}

double HistogramSpec::bucket_hi(int i) const {
  if (i >= bucket_count() - 1) return std::numeric_limits<double>::infinity();
  if (kind == Kind::kFixed) return bounds[size_t(i)];
  if (i <= 0) return std::ldexp(1.0, min_exp);
  const int e = min_exp + (i - 1) / sub_buckets;
  const int sub = (i - 1) % sub_buckets;
  if (sub == sub_buckets - 1) return std::ldexp(1.0, e + 1);
  return std::ldexp(1.0 + double(sub + 1) / sub_buckets, e);
}

// --- HistogramSnapshot ------------------------------------------------------

double HistogramSnapshot::percentile(double p) const {
  if (count == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  // Continuous 0-based target rank over `count` observations.
  const double target = p / 100.0 * double(count - 1);
  std::uint64_t before = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    const std::uint64_t c = counts[i];
    if (c == 0) continue;
    if (target < double(before + c)) {
      // Interpolate inside this bucket, with its range clamped to the
      // observed extremes so under/overflow buckets (and single-value
      // distributions) report real values.
      double lo = std::max(spec.bucket_lo(int(i)), min);
      double hi = std::min(spec.bucket_hi(int(i)), max);
      if (!(hi > lo)) return lo;
      const double frac = (target - double(before)) / double(c);
      return lo + (hi - lo) * frac;
    }
    before += c;
  }
  return max;  // unreachable when counts are consistent with count
}

// --- Counter ----------------------------------------------------------------

void Counter::add(std::uint64_t v) noexcept {
  shards_[size_t(this_shard())].v.fetch_add(v, std::memory_order_relaxed);
}

std::uint64_t Counter::value() const noexcept {
  std::uint64_t total = 0;
  for (const auto& s : shards_) total += s.v.load(std::memory_order_relaxed);
  return total;
}

// --- Gauge ------------------------------------------------------------------

void Gauge::set(double v) noexcept { bits_.store(bits_of(v), std::memory_order_relaxed); }

void Gauge::add(double v) noexcept {
  std::uint64_t cur = bits_.load(std::memory_order_relaxed);
  while (!bits_.compare_exchange_weak(cur, bits_of(double_of(cur) + v),
                                      std::memory_order_relaxed)) {
  }
}

double Gauge::value() const noexcept {
  return double_of(bits_.load(std::memory_order_relaxed));
}

// --- Histogram --------------------------------------------------------------

Histogram::Histogram(std::string name, const HistogramSpec& spec)
    : spec_(spec), name_(std::move(name)) {
  const int n = spec_.bucket_count();
  for (auto& s : shards_) {
    s.counts = std::make_unique<std::atomic<std::uint64_t>[]>(size_t(n));
    for (int i = 0; i < n; ++i) s.counts[i].store(0, std::memory_order_relaxed);
    s.min_bits.store(bits_of(std::numeric_limits<double>::infinity()),
                     std::memory_order_relaxed);
    s.max_bits.store(bits_of(-std::numeric_limits<double>::infinity()),
                     std::memory_order_relaxed);
  }
}

namespace {
// CAS-update a double cell with op (min/max/plus) under relaxed ordering.
template <class Op>
void update_double(std::atomic<std::uint64_t>& cell, double v, Op op) noexcept {
  std::uint64_t cur = cell.load(std::memory_order_relaxed);
  for (;;) {
    const double next = op(double_of(cur), v);
    if (next == double_of(cur)) return;
    if (cell.compare_exchange_weak(cur, bits_of(next), std::memory_order_relaxed)) return;
  }
}
}  // namespace

void Histogram::observe(double v) noexcept {
  if (!enabled()) return;
  auto& s = shards_[size_t(this_shard())];
  s.counts[size_t(spec_.bucket_index(v))].fetch_add(1, std::memory_order_relaxed);
  s.count.fetch_add(1, std::memory_order_relaxed);
  update_double(s.sum_bits, v, [](double a, double b) { return a + b; });
  update_double(s.min_bits, v, [](double a, double b) { return b < a ? b : a; });
  update_double(s.max_bits, v, [](double a, double b) { return b > a ? b : a; });
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot out;
  out.spec = spec_;
  const int n = spec_.bucket_count();
  out.counts.assign(size_t(n), 0);
  double mn = std::numeric_limits<double>::infinity();
  double mx = -std::numeric_limits<double>::infinity();
  for (const auto& s : shards_) {
    for (int i = 0; i < n; ++i)
      out.counts[size_t(i)] += s.counts[i].load(std::memory_order_relaxed);
    out.count += s.count.load(std::memory_order_relaxed);
    out.sum += double_of(s.sum_bits.load(std::memory_order_relaxed));
    mn = std::min(mn, double_of(s.min_bits.load(std::memory_order_relaxed)));
    mx = std::max(mx, double_of(s.max_bits.load(std::memory_order_relaxed)));
  }
  out.min = out.count ? mn : 0.0;
  out.max = out.count ? mx : 0.0;
  return out;
}

// --- registration -----------------------------------------------------------

Counter& counter(const std::string& name) {
  auto& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.counter_by_name.find(name);
  if (it != r.counter_by_name.end()) return *it->second;
  r.counters.push_back(std::unique_ptr<Counter>(new Counter(name)));
  Counter* c = r.counters.back().get();
  r.counter_by_name.emplace(name, c);
  return *c;
}

Gauge& gauge(const std::string& name) {
  auto& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.gauge_by_name.find(name);
  if (it != r.gauge_by_name.end()) return *it->second;
  r.gauges.push_back(std::unique_ptr<Gauge>(new Gauge(name)));
  Gauge* g = r.gauges.back().get();
  g->bits_.store(bits_of(0.0), std::memory_order_relaxed);
  r.gauge_by_name.emplace(name, g);
  return *g;
}

Histogram& histogram(const std::string& name, const HistogramSpec& spec) {
  auto& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.histogram_by_name.find(name);
  if (it != r.histogram_by_name.end()) return *it->second;
  r.histograms.push_back(std::unique_ptr<Histogram>(new Histogram(name, spec)));
  Histogram* h = r.histograms.back().get();
  r.histogram_by_name.emplace(name, h);
  return *h;
}

Histogram& span_histogram(const char* cat, const char* name) {
  // Hot path: spans are created per stage per step on every rank. Key the
  // cache on the literal addresses so the steady state is two pointer
  // compares and no registry lock.
  struct CacheEntry {
    const char* cat;
    const char* name;
    Histogram* hist;
  };
  thread_local std::vector<CacheEntry> cache;
  for (const auto& e : cache) {
    if (e.cat == cat && e.name == name) return *e.hist;
  }
  std::string full = std::string("span.") + cat + "." + name;
  Histogram& h = histogram(full, HistogramSpec::duration_seconds());
  cache.push_back({cat, name, &h});
  return h;
}

// --- collection -------------------------------------------------------------

Snapshot collect() {
  auto& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  Snapshot out;
  for (const auto& c : r.counters) out.counters[c->name()] = c->value();
  for (const auto& g : r.gauges) out.gauges[g->name()] = g->value();
  for (const auto& h : r.histograms) out.histograms[h->name()] = h->snapshot();
  return out;
}

}  // namespace qv::metrics
