// Machine-readable run reports over the metrics registry, and the benchmark
// regression gate built on them.
//
// Schema "qv-run-report" version 2 (JSON):
//   {
//     "schema": "qv-run-report", "version": 2, "kind": "pipeline",
//     "tracked":  [ {"name": "interframe_s", "value": 0.041, "unit": "s"} ],
//     "counters": { "vmpi.send.bytes": 123456, ... },
//     "gauges":   { ... },
//     "histograms": {
//       "span.pipeline.render": {
//         "spec": {"kind": "log2", "min_exp": -30, "max_exp": 12, "sub": 32},
//         "count": 12, "sum": 0.5, "min": 0.03, "max": 0.06,
//         "p50": 0.041, "p95": 0.058, "p99": 0.06,
//         "buckets": [[312, 3], [313, 9]]        // [index, count], nonzero only
//       }
//     },
//     // v2 additions, both optional (streaming runs only):
//     "e2e": { "clients": [ {"id": 0, "frames": 40, "drops": 2,
//                            "p50_s": 0.11, "p95_s": 0.32} ] },
//     "slo": { "target_p95_s": 0.5, "max_drop_rate": 0.1,
//              "observed_p95_s": 0.32, "observed_drop_rate": 0.02,
//              "pass": true }
//   }
// "tracked" is the contract with the gate: the headline metrics a producer
// commits to keeping stable, all lower-is-better. Everything else is context.
// "e2e" carries per-client end-to-end frame latency (per-stage breakdowns
// live in the stream.e2e.* histograms); "slo" is the pass/fail verdict the
// slo-gate checks. Version 2 readers reject version 1 documents: a v1
// baseline silently lacking the new blocks would make the gate vacuous.
//
// The JSON parser (metrics/json.hpp) is deliberately minimal — enough to
// round-trip this schema and run the gate without adding a dependency.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "metrics/metrics.hpp"

namespace qv::metrics {

inline constexpr int kReportVersion = 2;

struct TrackedMetric {
  std::string name;
  double value = 0.0;
  std::string unit;  // "s", "bytes", "count", ...
};

// Per-client end-to-end frame delivery stats (send -> delivered, virtual
// time on the WAN side). Stage-level latency lives in stream.e2e.* histograms.
struct E2eClientStats {
  int id = 0;
  std::uint64_t frames = 0;  // frames delivered to this client
  std::uint64_t drops = 0;   // frames dropped before its queue
  double p50_s = 0.0;
  double p95_s = 0.0;
};

struct E2eBlock {
  std::vector<E2eClientStats> clients;
};

// Service-level objective verdict: target vs observed, judged by the
// producer at report time and re-checked by `bench_report slo`.
struct SloBlock {
  double target_p95_s = 0.0;       // max acceptable p95 e2e frame latency
  double max_drop_rate = 0.0;      // max acceptable dropped/(sent+dropped)
  double observed_p95_s = 0.0;
  double observed_drop_rate = 0.0;
  bool pass = false;
};

struct RunReport {
  std::string kind;  // "pipeline", "insitu", "bench_io_readers", ...
  int version = kReportVersion;
  std::vector<TrackedMetric> tracked;
  Snapshot snapshot;
  std::optional<E2eBlock> e2e;  // streaming runs only
  std::optional<SloBlock> slo;  // only when an SLO was requested

  void track(std::string name, double value, std::string unit) {
    tracked.push_back({std::move(name), value, std::move(unit)});
  }
};

// --- emit -------------------------------------------------------------------
void write_json(std::ostream& os, const RunReport& r);
std::string to_json(const RunReport& r);
// Returns false (and prints to stderr) if the file cannot be written.
bool write_json_file(const std::string& path, const RunReport& r);

// Prometheus-style text exposition of a snapshot ('.' -> '_', cumulative
// "_bucket{le=...}" series, "_sum"/"_count", min/max as gauges).
void write_prometheus(std::ostream& os, const Snapshot& snap);
bool write_prometheus_file(const std::string& path, const Snapshot& snap);

// --- parse ------------------------------------------------------------------
// Parse a qv-run-report JSON document. On failure returns nullopt and, if
// err is non-null, stores a one-line reason.
std::optional<RunReport> parse_report(const std::string& json, std::string* err = nullptr);
std::optional<RunReport> read_report_file(const std::string& path, std::string* err = nullptr);

// --- regression gate --------------------------------------------------------
struct MetricDelta {
  std::string name;
  std::string unit;
  double base = 0.0;
  double current = 0.0;
  double rel_change = 0.0;  // (current - base) / base; 0 when base == 0
  bool regressed = false;   // current worse than base by more than threshold
  bool missing = false;     // tracked in baseline, absent from current
};

struct GateResult {
  std::vector<MetricDelta> rows;
  double threshold = 0.15;
  bool ok = true;
};

// Compare every baseline-tracked metric against the current report. All
// tracked metrics are lower-is-better; a regression is
// current > base * (1 + threshold), with an absolute floor so metrics near
// zero (e.g. a 2 ms stage) don't flap on scheduler noise. A tracked metric
// missing from the current report fails the gate (renames must update the
// baseline deliberately).
GateResult compare_reports(const RunReport& baseline, const RunReport& current,
                           double threshold = 0.15);
std::string format_gate_table(const GateResult& g);

// --- bench harness ----------------------------------------------------------
// Shared envelope for bench_* binaries: parses --json=PATH / --prom=PATH
// from argv, enables the registry, and on finish() writes the report.
// With no flags the bench still runs and prints its usual text.
class BenchReporter {
 public:
  BenchReporter(std::string kind, int argc, char** argv);
  bool json_requested() const { return !json_path_.empty(); }
  void track(std::string name, double value, std::string unit);
  // Collects the registry and writes the requested files; returns the
  // process exit code (1 on write failure).
  int finish();

 private:
  std::string kind_;
  std::string json_path_;
  std::string prom_path_;
  std::vector<TrackedMetric> tracked_;
};

}  // namespace qv::metrics
