#include "metrics/report.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "metrics/json.hpp"

namespace qv::metrics {
namespace {

// %.17g round-trips doubles exactly; trim to a clean integer form when
// possible so counters don't render as 1.2300000000000000e+05.
std::string fmt_double(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", v);
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_histogram_json(std::ostream& os, const HistogramSnapshot& h) {
  os << "{\"spec\": ";
  if (h.spec.kind == HistogramSpec::Kind::kFixed) {
    os << "{\"kind\": \"fixed\", \"bounds\": [";
    for (size_t i = 0; i < h.spec.bounds.size(); ++i) {
      if (i) os << ", ";
      os << fmt_double(h.spec.bounds[i]);
    }
    os << "]}";
  } else {
    os << "{\"kind\": \"log2\", \"min_exp\": " << h.spec.min_exp
       << ", \"max_exp\": " << h.spec.max_exp << ", \"sub\": " << h.spec.sub_buckets
       << "}";
  }
  os << ", \"count\": " << h.count << ", \"sum\": " << fmt_double(h.sum)
     << ", \"min\": " << fmt_double(h.min) << ", \"max\": " << fmt_double(h.max)
     << ", \"p50\": " << fmt_double(h.percentile(50))
     << ", \"p95\": " << fmt_double(h.percentile(95))
     << ", \"p99\": " << fmt_double(h.percentile(99)) << ", \"buckets\": [";
  bool first = true;
  for (size_t i = 0; i < h.counts.size(); ++i) {
    if (h.counts[i] == 0) continue;
    if (!first) os << ", ";
    first = false;
    os << "[" << i << ", " << h.counts[i] << "]";
  }
  os << "]}";
}

}  // namespace

void write_json(std::ostream& os, const RunReport& r) {
  os << "{\n  \"schema\": \"qv-run-report\",\n  \"version\": " << r.version
     << ",\n  \"kind\": \"" << json_escape(r.kind) << "\",\n  \"tracked\": [";
  for (size_t i = 0; i < r.tracked.size(); ++i) {
    const auto& t = r.tracked[i];
    os << (i ? ",\n    " : "\n    ") << "{\"name\": \"" << json_escape(t.name)
       << "\", \"value\": " << fmt_double(t.value) << ", \"unit\": \""
       << json_escape(t.unit) << "\"}";
  }
  os << (r.tracked.empty() ? "" : "\n  ") << "],\n  \"counters\": {";
  {
    bool first = true;
    for (const auto& [name, v] : r.snapshot.counters) {
      os << (first ? "\n    " : ",\n    ") << "\"" << json_escape(name) << "\": " << v;
      first = false;
    }
    if (!first) os << "\n  ";
  }
  os << "},\n  \"gauges\": {";
  {
    bool first = true;
    for (const auto& [name, v] : r.snapshot.gauges) {
      os << (first ? "\n    " : ",\n    ") << "\"" << json_escape(name)
         << "\": " << fmt_double(v);
      first = false;
    }
    if (!first) os << "\n  ";
  }
  os << "},\n  \"histograms\": {";
  {
    bool first = true;
    for (const auto& [name, h] : r.snapshot.histograms) {
      os << (first ? "\n    " : ",\n    ") << "\"" << json_escape(name) << "\": ";
      write_histogram_json(os, h);
      first = false;
    }
    if (!first) os << "\n  ";
  }
  os << "}";
  if (r.e2e) {
    os << ",\n  \"e2e\": {\n    \"clients\": [";
    const auto& clients = r.e2e->clients;
    for (size_t i = 0; i < clients.size(); ++i) {
      const auto& c = clients[i];
      os << (i ? ",\n      " : "\n      ") << "{\"id\": " << c.id
         << ", \"frames\": " << c.frames << ", \"drops\": " << c.drops
         << ", \"p50_s\": " << fmt_double(c.p50_s)
         << ", \"p95_s\": " << fmt_double(c.p95_s) << "}";
    }
    os << (clients.empty() ? "" : "\n    ") << "]\n  }";
  }
  if (r.slo) {
    os << ",\n  \"slo\": {\"target_p95_s\": " << fmt_double(r.slo->target_p95_s)
       << ", \"max_drop_rate\": " << fmt_double(r.slo->max_drop_rate)
       << ", \"observed_p95_s\": " << fmt_double(r.slo->observed_p95_s)
       << ", \"observed_drop_rate\": " << fmt_double(r.slo->observed_drop_rate)
       << ", \"pass\": " << (r.slo->pass ? "true" : "false") << "}";
  }
  os << "\n}\n";
}

std::string to_json(const RunReport& r) {
  std::ostringstream os;
  write_json(os, r);
  return os.str();
}

bool write_json_file(const std::string& path, const RunReport& r) {
  std::ofstream f(path, std::ios::trunc);
  if (!f) {
    std::fprintf(stderr, "metrics: cannot open %s for writing\n", path.c_str());
    return false;
  }
  write_json(f, r);
  f.flush();
  return bool(f);
}

// --- Prometheus -------------------------------------------------------------

namespace {
std::string prom_name(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') c = '_';
  }
  return out;
}
}  // namespace

void write_prometheus(std::ostream& os, const Snapshot& snap) {
  for (const auto& [name, v] : snap.counters) {
    const std::string n = prom_name(name);
    os << "# TYPE " << n << " counter\n" << n << " " << v << "\n";
  }
  for (const auto& [name, v] : snap.gauges) {
    const std::string n = prom_name(name);
    os << "# TYPE " << n << " gauge\n" << n << " " << fmt_double(v) << "\n";
  }
  for (const auto& [name, h] : snap.histograms) {
    const std::string n = prom_name(name);
    os << "# TYPE " << n << " histogram\n";
    std::uint64_t cum = 0;
    for (size_t i = 0; i < h.counts.size(); ++i) {
      if (h.counts[i] == 0) continue;  // keep the dump scannable
      cum += h.counts[i];
      const double hi = h.spec.bucket_hi(int(i));
      if (std::isinf(hi)) continue;  // overflow folds into the +Inf series
      os << n << "_bucket{le=\"" << fmt_double(hi) << "\"} " << cum << "\n";
    }
    os << n << "_bucket{le=\"+Inf\"} " << h.count << "\n";
    os << n << "_sum " << fmt_double(h.sum) << "\n";
    os << n << "_count " << h.count << "\n";
    if (h.count) {
      os << n << "_min " << fmt_double(h.min) << "\n";
      os << n << "_max " << fmt_double(h.max) << "\n";
      os << n << "_p50 " << fmt_double(h.percentile(50)) << "\n";
      os << n << "_p95 " << fmt_double(h.percentile(95)) << "\n";
      os << n << "_p99 " << fmt_double(h.percentile(99)) << "\n";
    }
  }
}

bool write_prometheus_file(const std::string& path, const Snapshot& snap) {
  std::ofstream f(path, std::ios::trunc);
  if (!f) {
    std::fprintf(stderr, "metrics: cannot open %s for writing\n", path.c_str());
    return false;
  }
  write_prometheus(f, snap);
  f.flush();
  return bool(f);
}

// --- parse (shared minimal JSON parser lives in metrics/json.hpp) ----------

namespace {

bool parse_histogram(const Json& j, HistogramSnapshot* out, std::string* err) {
  const Json* spec = j.find("spec");
  if (!spec || !spec->is_object()) {
    if (err) *err = "histogram missing spec";
    return false;
  }
  const Json* kind = spec->find("kind");
  if (!kind || !kind->is_string()) {
    if (err) *err = "histogram spec missing kind";
    return false;
  }
  try {
    if (kind->str() == "fixed") {
      const Json* bounds = spec->find("bounds");
      if (!bounds || !bounds->is_array()) {
        if (err) *err = "fixed histogram missing bounds";
        return false;
      }
      std::vector<double> edges;
      for (const auto& b : bounds->arr()) edges.push_back(b.num());
      out->spec = HistogramSpec::fixed(std::move(edges));
    } else if (kind->str() == "log2") {
      const Json* mn = spec->find("min_exp");
      const Json* mx = spec->find("max_exp");
      const Json* sb = spec->find("sub");
      if (!mn || !mx || !sb) {
        if (err) *err = "log2 histogram spec incomplete";
        return false;
      }
      out->spec = HistogramSpec::log2(int(mn->num()), int(mx->num()), int(sb->num()));
    } else {
      if (err) *err = "unknown histogram kind " + kind->str();
      return false;
    }
  } catch (const std::exception& e) {
    if (err) *err = e.what();
    return false;
  }
  out->counts.assign(size_t(out->spec.bucket_count()), 0);
  const Json* buckets = j.find("buckets");
  if (buckets && buckets->is_array()) {
    for (const auto& b : buckets->arr()) {
      if (!b.is_array() || b.arr().size() != 2) {
        if (err) *err = "bad bucket entry";
        return false;
      }
      const size_t idx = size_t(b.arr()[0].num());
      if (idx >= out->counts.size()) {
        if (err) *err = "bucket index out of range";
        return false;
      }
      out->counts[idx] = std::uint64_t(b.arr()[1].num());
    }
  }
  auto num_or = [&](const char* key, double fb) {
    const Json* v = j.find(key);
    return v && v->is_number() ? v->num() : fb;
  };
  out->count = std::uint64_t(num_or("count", 0));
  out->sum = num_or("sum", 0.0);
  out->min = num_or("min", 0.0);
  out->max = num_or("max", 0.0);
  return true;
}

}  // namespace

std::optional<RunReport> parse_report(const std::string& json, std::string* err) {
  std::string perr;
  auto root = parse_json(json, &perr);
  if (!root) {
    if (err) *err = perr.empty() ? "parse error" : perr;
    return std::nullopt;
  }
  const Json* schema = root->find("schema");
  if (!schema || !schema->is_string() || schema->str() != "qv-run-report") {
    if (err) *err = "not a qv-run-report document";
    return std::nullopt;
  }
  RunReport r;
  const Json* version = root->find("version");
  r.version = version && version->is_number() ? int(version->num()) : 0;
  if (r.version != kReportVersion) {
    if (err) *err = "unsupported report version " + std::to_string(r.version);
    return std::nullopt;
  }
  if (const Json* kind = root->find("kind"); kind && kind->is_string()) {
    r.kind = kind->str();
  }
  if (const Json* tracked = root->find("tracked"); tracked && tracked->is_array()) {
    for (const auto& t : tracked->arr()) {
      const Json* name = t.find("name");
      const Json* value = t.find("value");
      if (!name || !name->is_string() || !value || !value->is_number()) {
        if (err) *err = "bad tracked entry";
        return std::nullopt;
      }
      const Json* unit = t.find("unit");
      r.tracked.push_back(
          {name->str(), value->num(), unit && unit->is_string() ? unit->str() : ""});
    }
  }
  if (const Json* counters = root->find("counters"); counters && counters->is_object()) {
    for (const auto& [name, v] : counters->obj()) {
      if (v.is_number()) r.snapshot.counters[name] = std::uint64_t(v.num());
    }
  }
  if (const Json* gauges = root->find("gauges"); gauges && gauges->is_object()) {
    for (const auto& [name, v] : gauges->obj()) {
      if (v.is_number()) r.snapshot.gauges[name] = v.num();
    }
  }
  if (const Json* hists = root->find("histograms"); hists && hists->is_object()) {
    for (const auto& [name, v] : hists->obj()) {
      HistogramSnapshot h;
      std::string herr;
      if (!parse_histogram(v, &h, &herr)) {
        if (err) *err = "histogram " + name + ": " + herr;
        return std::nullopt;
      }
      r.snapshot.histograms[name] = std::move(h);
    }
  }
  auto num_of = [](const Json& j, const char* key) {
    const Json* v = j.find(key);
    return v && v->is_number() ? v->num() : 0.0;
  };
  if (const Json* e2e = root->find("e2e"); e2e && e2e->is_object()) {
    E2eBlock block;
    if (const Json* clients = e2e->find("clients"); clients && clients->is_array()) {
      for (const auto& c : clients->arr()) {
        if (!c.is_object()) {
          if (err) *err = "bad e2e client entry";
          return std::nullopt;
        }
        E2eClientStats s;
        s.id = int(num_of(c, "id"));
        s.frames = std::uint64_t(num_of(c, "frames"));
        s.drops = std::uint64_t(num_of(c, "drops"));
        s.p50_s = num_of(c, "p50_s");
        s.p95_s = num_of(c, "p95_s");
        block.clients.push_back(s);
      }
    }
    r.e2e = std::move(block);
  }
  if (const Json* slo = root->find("slo"); slo && slo->is_object()) {
    SloBlock b;
    b.target_p95_s = num_of(*slo, "target_p95_s");
    b.max_drop_rate = num_of(*slo, "max_drop_rate");
    b.observed_p95_s = num_of(*slo, "observed_p95_s");
    b.observed_drop_rate = num_of(*slo, "observed_drop_rate");
    const Json* pass = slo->find("pass");
    b.pass = pass && pass->is_bool() && pass->boolean();
    r.slo = b;
  }
  return r;
}

std::optional<RunReport> read_report_file(const std::string& path, std::string* err) {
  std::ifstream f(path);
  if (!f) {
    if (err) *err = "cannot open " + path;
    return std::nullopt;
  }
  std::ostringstream ss;
  ss << f.rdbuf();
  return parse_report(ss.str(), err);
}

// --- gate -------------------------------------------------------------------

GateResult compare_reports(const RunReport& baseline, const RunReport& current,
                           double threshold) {
  GateResult g;
  g.threshold = threshold;
  for (const auto& base : baseline.tracked) {
    MetricDelta d;
    d.name = base.name;
    d.unit = base.unit;
    d.base = base.value;
    const TrackedMetric* cur = nullptr;
    for (const auto& c : current.tracked) {
      if (c.name == base.name) {
        cur = &c;
        break;
      }
    }
    if (!cur) {
      d.missing = true;
      d.regressed = true;
    } else {
      d.current = cur->value;
      d.rel_change = d.base != 0.0 ? (d.current - d.base) / d.base : 0.0;
      // Absolute floor: sub-millisecond timings (and zero-valued counts)
      // regress only on meaningful absolute movement, not scheduler jitter
      // amplified by a tiny denominator.
      const double abs_floor = base.unit == "s" ? 2e-3 : 0.0;
      d.regressed = d.current > d.base * (1.0 + threshold) &&
                    d.current - d.base > abs_floor;
    }
    if (d.regressed) g.ok = false;
    g.rows.push_back(std::move(d));
  }
  return g;
}

std::string format_gate_table(const GateResult& g) {
  std::ostringstream os;
  char line[256];
  // Display-only rounding; the JSON keeps full precision via fmt_double.
  auto disp = [](double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    return std::string(buf);
  };
  std::snprintf(line, sizeof line, "%-36s %14s %14s %9s  %s\n", "tracked metric",
                "baseline", "current", "delta", "status");
  os << line;
  for (const auto& d : g.rows) {
    if (d.missing) {
      std::snprintf(line, sizeof line, "%-36s %14s %14s %9s  %s\n", d.name.c_str(),
                    disp(d.base).c_str(), "-", "-", "MISSING");
    } else {
      std::snprintf(line, sizeof line, "%-36s %14s %14s %+8.1f%%  %s\n", d.name.c_str(),
                    disp(d.base).c_str(), disp(d.current).c_str(),
                    d.rel_change * 100.0, d.regressed ? "REGRESSED" : "ok");
    }
    os << line;
  }
  std::snprintf(line, sizeof line, "gate: %s (threshold %+.0f%%)\n",
                g.ok ? "PASS" : "FAIL", g.threshold * 100.0);
  os << line;
  return os.str();
}

// --- BenchReporter ----------------------------------------------------------

BenchReporter::BenchReporter(std::string kind, int argc, char** argv)
    : kind_(std::move(kind)) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--json=", 0) == 0) json_path_ = a.substr(7);
    else if (a.rfind("--prom=", 0) == 0) prom_path_ = a.substr(7);
  }
  // Collect histograms too when a report was asked for; benches measure the
  // same code either way, baseline and current runs both pay the (small)
  // instrumented cost, so the comparison stays apples-to-apples.
  if (!json_path_.empty() || !prom_path_.empty()) enable();
}

void BenchReporter::track(std::string name, double value, std::string unit) {
  tracked_.push_back({std::move(name), value, std::move(unit)});
}

int BenchReporter::finish() {
  if (json_path_.empty() && prom_path_.empty()) return 0;
  RunReport r;
  r.kind = kind_;
  r.tracked = tracked_;
  r.snapshot = collect();
  disable();
  bool ok = true;
  if (!json_path_.empty()) ok = write_json_file(json_path_, r) && ok;
  if (!prom_path_.empty()) ok = write_prometheus_file(prom_path_, r.snapshot) && ok;
  if (ok && !json_path_.empty()) {
    std::printf("\nrun report (%s): %s\n", kind_.c_str(), json_path_.c_str());
  }
  return ok ? 0 : 1;
}

}  // namespace qv::metrics
