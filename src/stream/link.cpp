#include "stream/link.hpp"

#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>

namespace qv::stream {

WanLinkConfig WanLink::validated(WanLinkConfig cfg) {
  if (!(cfg.bandwidth_bytes_per_s > 0.0) ||
      !std::isfinite(cfg.bandwidth_bytes_per_s)) {
    throw std::invalid_argument(
        "WanLink: bandwidth_bytes_per_s must be finite and > 0, got " +
        std::to_string(cfg.bandwidth_bytes_per_s));
  }
  return cfg;
}

sim::Process WanLink::transmit(int step, double sent_at,
                               std::vector<std::uint8_t> wire) {
  const std::size_t bytes = wire.size();
  co_await conn_.acquire();
  co_await faults_.transfer(double(bytes));
  conn_.release();
  // Propagation happens after the connection frees: the next frame's bytes
  // can be in flight while this one crosses the last hop.
  if (cfg_.latency_s > 0.0) co_await sim::delay(engine_, cfg_.latency_s);
  ready_.push_back({step, sent_at, engine_.now(), bytes, std::move(wire)});
  ++delivered_;
  delivered_bytes_ += bytes;
}

void WanLink::send(double now, int step, std::vector<std::uint8_t> wire) {
  engine_.run_until(now);
  ++sent_;
  sent_bytes_ += wire.size();
  transmit(step, engine_.now(), std::move(wire));
}

std::vector<DeliveredFrame> WanLink::poll(double now) {
  engine_.run_until(now);
  return std::exchange(ready_, {});
}

std::vector<DeliveredFrame> WanLink::drain() {
  engine_.run();
  return std::exchange(ready_, {});
}

}  // namespace qv::stream
