#include "stream/frame_codec.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>

#include "img/delta.hpp"
#include "io/codec.hpp"
#include "util/crc32.hpp"

namespace qv::stream {

FrameEncoder::FrameEncoder(int width, int height)
    : w_(width), h_(height) {}

std::vector<std::uint8_t> FrameEncoder::encode(int step,
                                               const img::Image8& frame,
                                               int tier, bool keyframe) {
  tier = std::clamp(tier, 0, img::kMaxQuantizeTier);
  const std::size_t n = std::size_t(w_) * h_ * 3;
  planes_.resize(n);
  img::deinterleave_rgb({frame.data(), n}, planes_);
  img::quantize_tier(planes_, tier);

  const bool key = keyframe || ref_step_ < 0;
  std::vector<std::uint8_t> wire(sizeof(FrameHeader));
  if (key) {
    io::rle8_encode(planes_, wire);
  } else {
    deltas_.resize(n);
    img::delta_encode(ref_, planes_, deltas_);
    io::rle8_encode(deltas_, wire);
  }

  FrameHeader h{};
  h.magic = kFrameMagic;
  h.version = kFrameVersion;
  h.kind = std::uint8_t(key ? FrameKind::kKey : FrameKind::kDelta);
  h.tier = std::uint8_t(tier);
  h.step = step;
  h.base_step = key ? -1 : ref_step_;
  h.width = std::uint16_t(w_);
  h.height = std::uint16_t(h_);
  h.payload = std::uint32_t(wire.size() - sizeof(FrameHeader));
  h.crc = util::crc32(
      {wire.data() + sizeof(FrameHeader), wire.size() - sizeof(FrameHeader)});
  std::memcpy(wire.data(), &h, sizeof(h));

  // The quantized planes ARE what the viewer will reconstruct (delta is
  // exact byte arithmetic), so they become the next frame's reference.
  ref_.swap(planes_);
  ref_step_ = step;
  return wire;
}

std::optional<DecodedFrame> FrameDecoder::decode(
    std::span<const std::uint8_t> wire) {
  if (wire.size() < sizeof(FrameHeader)) return std::nullopt;
  FrameHeader h;
  std::memcpy(&h, wire.data(), sizeof(h));
  if (h.magic != kFrameMagic || h.version != kFrameVersion) return std::nullopt;
  if (h.kind > std::uint8_t(FrameKind::kDelta)) return std::nullopt;
  if (h.tier > img::kMaxQuantizeTier) return std::nullopt;
  if (h.width == 0 || h.height == 0) return std::nullopt;
  // The pad must be zero: a strict boundary leaves corruption nowhere to
  // hide (and keeps the bytes reserved for a future version).
  if (h.pad[0] || h.pad[1] || h.pad[2] || h.pad[3]) return std::nullopt;
  if (std::size_t(h.payload) != wire.size() - sizeof(FrameHeader))
    return std::nullopt;

  auto payload = wire.subspan(sizeof(FrameHeader));
  if (util::crc32(payload) != h.crc) return std::nullopt;

  const bool key = h.kind == std::uint8_t(FrameKind::kKey);
  if (key) {
    // A keyframe (re)establishes the stream dimensions.
    if (ref_step_ >= 0 && (h.width != w_ || h.height != h_))
      return std::nullopt;
  } else {
    // A delta is only decodable against the exact frame it was coded from.
    if (ref_step_ < 0 || h.base_step != ref_step_) return std::nullopt;
    if (h.width != w_ || h.height != h_) return std::nullopt;
  }

  const std::size_t n = std::size_t(h.width) * h.height * 3;
  scratch_.resize(n);
  auto consumed = io::rle8_decode(payload, 0, scratch_);
  // Exact-consumption check: trailing garbage after a valid prefix is
  // corruption, not slack.
  if (!consumed || *consumed != payload.size()) return std::nullopt;

  if (!key) {
    // scratch_ holds deltas; apply in place against the reference.
    img::delta_apply(ref_, scratch_, scratch_);
  }

  DecodedFrame out;
  out.step = h.step;
  out.tier = h.tier;
  out.kind = FrameKind(h.kind);
  out.image = img::Image8(h.width, h.height);
  img::interleave_rgb(scratch_, {out.image.data(), n});

  // Commit decoder state only now that everything validated.
  w_ = h.width;
  h_ = h.height;
  ref_.swap(scratch_);
  ref_step_ = h.step;
  return out;
}

bool write_record_file(const std::string& path,
                       std::span<const std::vector<std::uint8_t>> frames) {
  std::ofstream f(path, std::ios::binary);
  if (!f) return false;
  f.write(kRecordMagic, sizeof(kRecordMagic));
  for (const auto& w : frames) {
    std::uint32_t len = std::uint32_t(w.size());
    f.write(reinterpret_cast<const char*>(&len), sizeof(len));
    f.write(reinterpret_cast<const char*>(w.data()),
            std::streamsize(w.size()));
  }
  return bool(f);
}

std::optional<std::vector<std::vector<std::uint8_t>>> read_record_file(
    const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return std::nullopt;
  char magic[sizeof(kRecordMagic)];
  if (!f.read(magic, sizeof(magic))) return std::nullopt;
  if (std::memcmp(magic, kRecordMagic, sizeof(magic)) != 0)
    return std::nullopt;
  std::vector<std::vector<std::uint8_t>> frames;
  for (;;) {
    std::uint32_t len;
    if (!f.read(reinterpret_cast<char*>(&len), sizeof(len))) {
      if (f.eof() && f.gcount() == 0) break;  // clean end between frames
      return std::nullopt;
    }
    if (len > (1u << 30)) return std::nullopt;  // implausible entry
    std::vector<std::uint8_t> w(len);
    if (!f.read(reinterpret_cast<char*>(w.data()), std::streamsize(len)))
      return std::nullopt;
    frames.push_back(std::move(w));
  }
  return frames;
}

}  // namespace qv::stream
