#include "stream/frame_codec.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "img/delta.hpp"
#include "io/codec.hpp"
#include "util/crc32.hpp"

namespace qv::stream {

std::vector<std::uint8_t> pack_frame(FrameKind kind, int tier, int step,
                                     int base_step, int width, int height,
                                     std::span<const std::uint8_t> raw,
                                     std::uint32_t epoch) {
  std::vector<std::uint8_t> wire(sizeof(FrameHeader));
  io::rle8_encode(raw, wire);

  FrameHeader h{};
  h.magic = kFrameMagic;
  h.version = kFrameVersion;
  h.kind = std::uint8_t(kind);
  h.tier = std::uint8_t(tier);
  h.step = step;
  h.base_step = kind == FrameKind::kKey ? -1 : base_step;
  h.width = std::uint16_t(width);
  h.height = std::uint16_t(height);
  h.payload = std::uint32_t(wire.size() - sizeof(FrameHeader));
  h.crc = util::crc32(
      {wire.data() + sizeof(FrameHeader), wire.size() - sizeof(FrameHeader)});
  h.epoch = epoch;
  std::memcpy(wire.data(), &h, sizeof(h));
  return wire;
}

FrameEncoder::FrameEncoder(int width, int height)
    : w_(width), h_(height) {}

std::vector<std::uint8_t> FrameEncoder::encode(int step,
                                               const img::Image8& frame,
                                               int tier, bool keyframe) {
  tier = std::clamp(tier, 0, img::kMaxQuantizeTier);
  const std::size_t n = std::size_t(w_) * h_ * 3;
  planes_.resize(n);
  img::deinterleave_rgb({frame.data(), n}, planes_);
  img::quantize_tier(planes_, tier);

  const bool key = keyframe || ref_step_ < 0;
  std::vector<std::uint8_t> wire;
  if (key) {
    wire = pack_frame(FrameKind::kKey, tier, step, -1, w_, h_, planes_,
                      epoch_);
  } else {
    deltas_.resize(n);
    img::delta_encode(ref_, planes_, deltas_);
    wire = pack_frame(FrameKind::kDelta, tier, step, ref_step_, w_, h_,
                      deltas_, epoch_);
  }

  // The quantized planes ARE what the viewer will reconstruct (delta is
  // exact byte arithmetic), so they become the next frame's reference.
  ref_.swap(planes_);
  ref_step_ = step;
  return wire;
}

// --- FrameEncoderBank -------------------------------------------------------

FrameEncoderBank::FrameEncoderBank(int width, int height)
    : w_(width), h_(height) {}

void FrameEncoderBank::begin_step(int step, const img::Image8& frame) {
  if (step <= step_)
    throw std::logic_error("FrameEncoderBank: steps must increase");
  for (auto& t : tiers_) {
    if (t.emitted) {
      // Whatever was handed out this step — key or delta — leaves every
      // consumer holding these planes; they are the next delta reference.
      t.ref.swap(t.planes);
      t.ref_step = step_;
    }
    t.staged = false;
    t.emitted = false;
    t.key_wire.reset();
    t.delta_wire.reset();
  }
  step_ = step;
  const std::size_t n = std::size_t(w_) * h_ * 3;
  planes0_.resize(n);
  img::deinterleave_rgb({frame.data(), n}, planes0_);
}

int FrameEncoderBank::ref_step(int tier) const {
  return tiers_[std::size_t(std::clamp(tier, 0, img::kMaxQuantizeTier))]
      .ref_step;
}

FrameEncoderBank::Tier& FrameEncoderBank::stage(int tier) {
  if (step_ < 0)
    throw std::logic_error("FrameEncoderBank: no staged frame");
  Tier& t = tiers_[std::size_t(tier)];
  if (!t.staged) {
    t.planes = planes0_;
    img::quantize_tier(t.planes, tier);
    t.staged = true;
  }
  return t;
}

std::shared_ptr<const std::vector<std::uint8_t>> FrameEncoderBank::key(
    int tier) {
  tier = std::clamp(tier, 0, img::kMaxQuantizeTier);
  Tier& t = stage(tier);
  if (!t.key_wire) {
    t.key_wire = std::make_shared<const std::vector<std::uint8_t>>(pack_frame(
        FrameKind::kKey, tier, step_, -1, w_, h_, t.planes, epoch_));
    ++encodes_;
  } else {
    ++reuses_;
  }
  t.emitted = true;
  return t.key_wire;
}

std::shared_ptr<const std::vector<std::uint8_t>> FrameEncoderBank::delta(
    int tier) {
  tier = std::clamp(tier, 0, img::kMaxQuantizeTier);
  Tier& t = stage(tier);
  if (t.ref_step < 0)
    throw std::logic_error("FrameEncoderBank: delta with no tier reference");
  if (!t.delta_wire) {
    scratch_.resize(t.planes.size());
    img::delta_encode(t.ref, t.planes, scratch_);
    t.delta_wire = std::make_shared<const std::vector<std::uint8_t>>(
        pack_frame(FrameKind::kDelta, tier, step_, t.ref_step, w_, h_,
                   scratch_, epoch_));
    ++encodes_;
  } else {
    ++reuses_;
  }
  t.emitted = true;
  return t.delta_wire;
}

void FrameEncoderBank::note_emitted(int tier) {
  tier = std::clamp(tier, 0, img::kMaxQuantizeTier);
  stage(tier).emitted = true;
}

void FrameEncoderBank::invalidate_chains() {
  for (auto& t : tiers_) {
    t.ref.clear();
    t.ref_step = -1;
    // Anything staged or cached for the current step codes the pre-edit
    // view; the emitted flag must die with it or begin_step would commit
    // stale planes as the post-edit reference.
    t.staged = false;
    t.emitted = false;
    t.key_wire.reset();
    t.delta_wire.reset();
  }
}

std::optional<DecodedFrame> FrameDecoder::decode(
    std::span<const std::uint8_t> wire) {
  if (wire.size() < sizeof(FrameHeader)) return std::nullopt;
  FrameHeader h;
  std::memcpy(&h, wire.data(), sizeof(h));
  if (h.magic != kFrameMagic || h.version != kFrameVersion) return std::nullopt;
  if (h.kind > std::uint8_t(FrameKind::kDelta)) return std::nullopt;
  if (h.tier > img::kMaxQuantizeTier) return std::nullopt;
  if (h.width == 0 || h.height == 0) return std::nullopt;
  if (std::size_t(h.payload) != wire.size() - sizeof(FrameHeader))
    return std::nullopt;

  auto payload = wire.subspan(sizeof(FrameHeader));
  if (util::crc32(payload) != h.crc) return std::nullopt;

  const bool key = h.kind == std::uint8_t(FrameKind::kKey);
  if (key) {
    // A keyframe (re)establishes the stream dimensions.
    if (ref_step_ >= 0 && (h.width != w_ || h.height != h_))
      return std::nullopt;
  } else {
    // A delta is only decodable against the exact frame it was coded from.
    if (ref_step_ < 0 || h.base_step != ref_step_) return std::nullopt;
    if (h.width != w_ || h.height != h_) return std::nullopt;
  }

  const std::size_t n = std::size_t(h.width) * h.height * 3;
  scratch_.resize(n);
  auto consumed = io::rle8_decode(payload, 0, scratch_);
  // Exact-consumption check: trailing garbage after a valid prefix is
  // corruption, not slack.
  if (!consumed || *consumed != payload.size()) return std::nullopt;

  if (!key) {
    // scratch_ holds deltas; apply in place against the reference.
    img::delta_apply(ref_, scratch_, scratch_);
  }

  DecodedFrame out;
  out.step = h.step;
  out.epoch = h.epoch;
  out.tier = h.tier;
  out.base_step = key ? -1 : h.base_step;
  out.kind = FrameKind(h.kind);
  out.image = img::Image8(h.width, h.height);
  img::interleave_rgb(scratch_, {out.image.data(), n});

  // Commit decoder state only now that everything validated.
  w_ = h.width;
  h_ = h.height;
  ref_.swap(scratch_);
  ref_step_ = h.step;
  return out;
}

bool write_record_file(const std::string& path,
                       std::span<const std::vector<std::uint8_t>> frames) {
  std::ofstream f(path, std::ios::binary);
  if (!f) return false;
  f.write(kRecordMagic, sizeof(kRecordMagic));
  for (const auto& w : frames) {
    std::uint32_t len = std::uint32_t(w.size());
    f.write(reinterpret_cast<const char*>(&len), sizeof(len));
    f.write(reinterpret_cast<const char*>(w.data()),
            std::streamsize(w.size()));
  }
  // End-of-stream trailer: without it, a capture truncated at a frame
  // boundary would be indistinguishable from a clean end.
  std::uint32_t sentinel = kRecordEndSentinel;
  std::uint32_t count = std::uint32_t(frames.size());
  f.write(reinterpret_cast<const char*>(&sentinel), sizeof(sentinel));
  f.write(reinterpret_cast<const char*>(&count), sizeof(count));
  return bool(f);
}

std::optional<std::vector<std::vector<std::uint8_t>>> read_record_file(
    const std::string& path, std::string* err) {
  auto fail = [&](const std::string& why)
      -> std::optional<std::vector<std::vector<std::uint8_t>>> {
    if (err) *err = why;
    return std::nullopt;
  };
  std::ifstream f(path, std::ios::binary);
  if (!f) return fail("cannot open " + path);
  char magic[sizeof(kRecordMagic)];
  if (!f.read(magic, sizeof(magic)))
    return fail("not a stream record: file shorter than the magic");
  if (std::memcmp(magic, kRecordMagic, sizeof(magic)) != 0)
    return fail("bad magic: not a " +
                std::string(kRecordMagic, sizeof(kRecordMagic)) +
                " stream record");
  std::vector<std::vector<std::uint8_t>> frames;
  for (;;) {
    std::uint32_t len;
    if (!f.read(reinterpret_cast<char*>(&len), sizeof(len))) {
      // The 01 format treated EOF here as a clean end; with the trailer, any
      // EOF before the sentinel means the capture was cut off mid-stream.
      return fail("truncated record: capture ended after " +
                  std::to_string(frames.size()) +
                  " whole frames with no end-of-stream trailer");
    }
    if (len == kRecordEndSentinel) {
      std::uint32_t count;
      if (!f.read(reinterpret_cast<char*>(&count), sizeof(count)))
        return fail("truncated record: end-of-stream trailer cut short");
      if (count != frames.size())
        return fail("corrupt record: trailer counts " + std::to_string(count) +
                    " frames, file holds " + std::to_string(frames.size()));
      char extra;
      if (f.read(&extra, 1))
        return fail("corrupt record: bytes after the end-of-stream trailer");
      break;
    }
    if (len > (1u << 30))
      return fail("corrupt record: implausible frame length");
    std::vector<std::uint8_t> w(len);
    if (!f.read(reinterpret_cast<char*>(w.data()), std::streamsize(len)))
      return fail("truncated record: frame " + std::to_string(frames.size()) +
                  " cut mid-frame (" + std::to_string(f.gcount()) + " of " +
                  std::to_string(len) + " bytes)");
    frames.push_back(std::move(w));
  }
  return frames;
}

}  // namespace qv::stream
