// Simulated WAN link between the output processor and a remote viewer.
//
// The pipeline's own clock is wall time, but the link is modeled in the
// discrete-event engine's virtual time: every send spawns a transfer
// coroutine that first acquires the connection (frames on one viewer
// connection serialize FIFO, like a single TCP stream — a delta must never
// overtake the keyframe it references), then pushes its bytes through the
// bandwidth model, optionally modulated by the seeded outage generator
// (FaultyBandwidth), followed by a fixed propagation latency. The caller
// drives the model in lockstep with its clock via Engine::run_until — so a
// frame "delivers" exactly when the virtual transfer completes, and
// in_flight() is the honest queue depth the backpressure controller needs.
//
// send() never blocks: the send queue is the set of in-flight transfers,
// and bounding it is the controller's job, not the link's.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/engine.hpp"
#include "sim/fault.hpp"

namespace qv::stream {

struct WanLinkConfig {
  double bandwidth_bytes_per_s = 8e6;  // ~64 Mbit/s; must be finite and > 0
  double latency_s = 0.02;             // one-way propagation delay
  sim::BandwidthFaultConfig fault;     // seeded outage windows (optional)
};

// A frame that has finished crossing the link.
struct DeliveredFrame {
  int step = 0;
  double sent_at = 0.0;       // link-clock time the send was issued
  double delivered_at = 0.0;  // link-clock time the transfer completed
  std::size_t bytes = 0;
  std::vector<std::uint8_t> wire;
};

class WanLink {
 public:
  // Throws std::invalid_argument when bandwidth is non-positive or
  // non-finite. A zero/negative rate used to be accepted as "infinite",
  // which let misconfigured benches report zero-virtual-time transfers;
  // every link now pays for its bytes. For a practically-infinite link,
  // pass a huge finite rate (e.g. 1e12 B/s).
  explicit WanLink(WanLinkConfig cfg)
      : cfg_(validated(cfg)),
        bw_(engine_, cfg_.bandwidth_bytes_per_s),
        faults_(engine_, bw_, cfg_.fault),
        conn_(engine_, 1) {}

  // Advance the link model to `now` and enqueue `wire` for transmission.
  void send(double now, int step, std::vector<std::uint8_t> wire);

  // Advance the model to `now` and take every frame delivered by then.
  std::vector<DeliveredFrame> poll(double now);

  // Let every in-flight transfer finish (virtual time runs ahead of the
  // caller's clock) and return the stragglers.
  std::vector<DeliveredFrame> drain();

  // Frames sent but not yet delivered, as of the last advance.
  int in_flight() const { return sent_ - delivered_; }
  // Queued wire bytes those frames pin (the honest per-client queue memory
  // the delivery server's byte budget bounds).
  std::size_t in_flight_bytes() const { return sent_bytes_ - delivered_bytes_; }
  double now() const { return engine_.now(); }
  const sim::FaultyBandwidth& faults() const { return faults_; }
  // The validated configuration; lets latency accounting separate a frame's
  // ideal crossing time (bytes/bandwidth + latency) from queue wait.
  const WanLinkConfig& config() const { return cfg_; }

 private:
  static WanLinkConfig validated(WanLinkConfig cfg);

  sim::Process transmit(int step, double sent_at,
                        std::vector<std::uint8_t> wire);

  WanLinkConfig cfg_;
  sim::Engine engine_;
  sim::SharedBandwidth bw_;
  sim::FaultyBandwidth faults_;
  sim::Resource conn_;  // the single viewer connection: FIFO, one at a time
  std::vector<DeliveredFrame> ready_;
  int sent_ = 0;
  int delivered_ = 0;
  std::size_t sent_bytes_ = 0;
  std::size_t delivered_bytes_ = 0;
};

}  // namespace qv::stream
