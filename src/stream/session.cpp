#include "stream/session.hpp"

#include <algorithm>
#include <cstring>

#include "metrics/metrics.hpp"
#include "obs/lineage.hpp"
#include "trace/trace.hpp"

namespace qv::stream {

namespace {

// Static-local handles: registration locks once, the hot path is atomics.
struct StreamMetrics {
  metrics::Counter& bytes_out = metrics::counter("stream.bytes_out");
  metrics::Counter& dropped = metrics::counter("stream.dropped_frames");
  metrics::Counter& delivered = metrics::counter("stream.frames_delivered");
  metrics::Counter& keyframes = metrics::counter("stream.keyframes");
  metrics::Counter& decode_failures =
      metrics::counter("stream.decode_failures");
  metrics::Histogram& queue_depth = metrics::histogram(
      "stream.queue_depth",
      metrics::HistogramSpec::fixed({0, 1, 2, 3, 4, 6, 8, 12, 16, 24, 32}));
  // Instantaneous queued wire bytes (frames counted by queue_depth): depth
  // alone hides how much memory a slow link pins, and the server's byte
  // budget is stated in these units. Shared with the DeliveryServer path.
  metrics::Gauge& queue_bytes = metrics::gauge("stream.queue_bytes");
  metrics::Histogram& display_latency = metrics::histogram(
      "stream.display_latency", metrics::HistogramSpec::duration_seconds());
  // Per-stage e2e latency, same names as the DeliveryServer path (the
  // registry is idempotent by name, so both feed one histogram set).
  metrics::Histogram& e2e_encode = metrics::histogram(
      "stream.e2e.encode", metrics::HistogramSpec::duration_seconds());
  metrics::Histogram& e2e_queue_wait = metrics::histogram(
      "stream.e2e.queue_wait", metrics::HistogramSpec::duration_seconds());
  metrics::Histogram& e2e_wire = metrics::histogram(
      "stream.e2e.wire", metrics::HistogramSpec::duration_seconds());
  metrics::Histogram& e2e_decode = metrics::histogram(
      "stream.e2e.decode", metrics::HistogramSpec::duration_seconds());
  static StreamMetrics& get() {
    static StreamMetrics m;
    return m;
  }
};

WanLinkConfig link_config(const StreamConfig& cfg) {
  WanLinkConfig lc;
  lc.bandwidth_bytes_per_s = cfg.bandwidth_bytes_per_s;
  lc.latency_s = cfg.latency_s;
  lc.fault = cfg.fault;
  // The link clock follows the pipeline's wall clock; give pre-scheduled
  // outage windows a horizon no real run outlives.
  if (lc.fault.active() && lc.fault.horizon_seconds <= 0.0)
    lc.fault.horizon_seconds = 3600.0;
  return lc;
}

}  // namespace

StreamSession::StreamSession(const StreamConfig& cfg, int width, int height)
    : cfg_(cfg),
      encoder_(width, height),
      link_(link_config(cfg)),
      controller_(cfg.controller) {}

void StreamSession::set_epoch(std::uint32_t epoch) {
  epoch_ = epoch;
  encoder_.set_epoch(epoch);
}

void StreamSession::apply_view_change(std::uint32_t epoch) {
  epoch_ = epoch;
  encoder_.set_epoch(epoch);
  // A forgotten reference forces the next encode to a keyframe; the
  // controller's earned level and recovery credit are deliberately kept.
  encoder_.invalidate_chain();
}

void StreamSession::handle_deliveries(std::vector<DeliveredFrame> delivered) {
  auto& m = StreamMetrics::get();
  for (auto& d : delivered) {
    const double lat = d.delivered_at - d.sent_at;
    std::uint32_t frame_epoch = 0;
    if (d.wire.size() >= sizeof(FrameHeader)) {
      FrameHeader h;
      std::memcpy(&h, d.wire.data(), sizeof(h));
      frame_epoch = h.epoch;
    }
    if (obs::lineage::enabled()) {
      obs::lineage::record_virtual(obs::lineage::Stage::kWire, d.step,
                                   frame_epoch,
                                   obs::lineage::ChannelKind::kClient,
                                   /*channel=*/0, d.sent_at, lat);
    }
    if (metrics::enabled()) {
      m.e2e_wire.observe(lat);
      const double ideal =
          double(d.bytes) / cfg_.bandwidth_bytes_per_s + cfg_.latency_s;
      m.e2e_queue_wait.observe(std::max(0.0, lat - ideal));
    }
    const bool timed = metrics::enabled() || obs::lineage::enabled();
    const std::int64_t t0 = timed ? trace::now_since_epoch_ns() : 0;
    auto frame = viewer_.decode(d.wire);
    if (timed) {
      const double decode_s = double(trace::now_since_epoch_ns() - t0) * 1e-9;
      if (metrics::enabled()) m.e2e_decode.observe(decode_s);
      if (obs::lineage::enabled()) {
        obs::lineage::record_wall(obs::lineage::Stage::kDecode, d.step,
                                  frame_epoch,
                                  obs::lineage::ChannelKind::kClient,
                                  /*channel=*/0, decode_s);
      }
    }
    if (!frame) {
      ++rep_.decode_failures;
      m.decode_failures.add();
      continue;
    }
    ++rep_.frames_delivered;
    m.delivered.add();
    rep_.delivery_latencies_s.push_back(lat);
    latency_sum_ += lat;
    rep_.max_display_latency_s = std::max(rep_.max_display_latency_s, lat);
    if (metrics::enabled()) m.display_latency.observe(lat);
    if (cfg_.capture) {
      cfg_.capture->frames.push_back({frame->step, frame->tier,
                                      frame->kind == FrameKind::kKey, lat,
                                      std::move(frame->image), frame->epoch});
    }
    if (!cfg_.record_path.empty()) record_.push_back(std::move(d.wire));
  }
}

void StreamSession::submit(double now, int step, const img::Image8& frame) {
  auto& m = StreamMetrics::get();
  ++rep_.frames_submitted;
  handle_deliveries(link_.poll(now));

  const int depth = link_.in_flight();
  const std::size_t queued = link_.in_flight_bytes();
  rep_.peak_queue_bytes = std::max(rep_.peak_queue_bytes, queued);
  m.queue_bytes.set(double(queued));
  if (metrics::enabled()) m.queue_depth.observe(double(depth));
  Decision d = controller_.on_frame(depth);
  rep_.peak_level = std::max(rep_.peak_level, d.level);
  if (d.drop) {
    ++rep_.frames_dropped;
    m.dropped.add();
    if (obs::lineage::enabled()) {
      obs::lineage::record_virtual(obs::lineage::Stage::kDrop, step, epoch_,
                                   obs::lineage::ChannelKind::kClient,
                                   /*channel=*/0, now);
    }
    if (cfg_.capture) cfg_.capture->dropped_steps.push_back(step);
    return;
  }

  std::vector<std::uint8_t> wire;
  {
    trace::Span span("stream", "encode", step);
    const bool timed = metrics::enabled() || obs::lineage::enabled();
    const std::int64_t t0 = timed ? trace::now_since_epoch_ns() : 0;
    wire = encoder_.encode(step, frame, d.tier, d.keyframe);
    if (timed) {
      const double enc_s = double(trace::now_since_epoch_ns() - t0) * 1e-9;
      if (metrics::enabled()) m.e2e_encode.observe(enc_s);
      if (obs::lineage::enabled()) {
        obs::lineage::record_wall(obs::lineage::Stage::kEncode, step, epoch_,
                                  obs::lineage::ChannelKind::kClient,
                                  /*channel=*/0, enc_s);
      }
    }
  }
  // Count keyframes off the wire header: the first frame is one regardless
  // of what the controller asked for.
  FrameHeader h;
  std::memcpy(&h, wire.data(), sizeof(h));
  if (h.kind == std::uint8_t(FrameKind::kKey)) {
    ++rep_.keyframes;
    m.keyframes.add();
  }
  rep_.bytes_out += wire.size();
  m.bytes_out.add(wire.size());
  link_.send(now, step, std::move(wire));
  if (obs::lineage::enabled()) {
    obs::lineage::record_virtual(obs::lineage::Stage::kEnqueue, step, epoch_,
                                 obs::lineage::ChannelKind::kClient,
                                 /*channel=*/0, now);
  }
  // The send itself grows the queue; the peak must see it.
  rep_.peak_queue_bytes =
      std::max(rep_.peak_queue_bytes, link_.in_flight_bytes());
  m.queue_bytes.set(double(link_.in_flight_bytes()));
}

StreamReport StreamSession::finish() {
  handle_deliveries(link_.drain());
  StreamMetrics::get().queue_bytes.set(0.0);  // drained
  if (!cfg_.record_path.empty()) write_record_file(cfg_.record_path, record_);
  rep_.final_level = controller_.level();
  rep_.avg_display_latency_s =
      rep_.frames_delivered > 0
          ? latency_sum_ / double(rep_.frames_delivered)
          : 0.0;
  return rep_;
}

}  // namespace qv::stream
