#include "stream/session.hpp"

#include <algorithm>
#include <cstring>

#include "metrics/metrics.hpp"
#include "trace/trace.hpp"

namespace qv::stream {

namespace {

// Static-local handles: registration locks once, the hot path is atomics.
struct StreamMetrics {
  metrics::Counter& bytes_out = metrics::counter("stream.bytes_out");
  metrics::Counter& dropped = metrics::counter("stream.dropped_frames");
  metrics::Counter& delivered = metrics::counter("stream.frames_delivered");
  metrics::Counter& keyframes = metrics::counter("stream.keyframes");
  metrics::Counter& decode_failures =
      metrics::counter("stream.decode_failures");
  metrics::Histogram& queue_depth = metrics::histogram(
      "stream.queue_depth",
      metrics::HistogramSpec::fixed({0, 1, 2, 3, 4, 6, 8, 12, 16, 24, 32}));
  // Instantaneous queued wire bytes (frames counted by queue_depth): depth
  // alone hides how much memory a slow link pins, and the server's byte
  // budget is stated in these units. Shared with the DeliveryServer path.
  metrics::Gauge& queue_bytes = metrics::gauge("stream.queue_bytes");
  metrics::Histogram& display_latency = metrics::histogram(
      "stream.display_latency", metrics::HistogramSpec::duration_seconds());
  static StreamMetrics& get() {
    static StreamMetrics m;
    return m;
  }
};

WanLinkConfig link_config(const StreamConfig& cfg) {
  WanLinkConfig lc;
  lc.bandwidth_bytes_per_s = cfg.bandwidth_bytes_per_s;
  lc.latency_s = cfg.latency_s;
  lc.fault = cfg.fault;
  // The link clock follows the pipeline's wall clock; give pre-scheduled
  // outage windows a horizon no real run outlives.
  if (lc.fault.active() && lc.fault.horizon_seconds <= 0.0)
    lc.fault.horizon_seconds = 3600.0;
  return lc;
}

}  // namespace

StreamSession::StreamSession(const StreamConfig& cfg, int width, int height)
    : cfg_(cfg),
      encoder_(width, height),
      link_(link_config(cfg)),
      controller_(cfg.controller) {}

void StreamSession::handle_deliveries(std::vector<DeliveredFrame> delivered) {
  auto& m = StreamMetrics::get();
  for (auto& d : delivered) {
    auto frame = viewer_.decode(d.wire);
    if (!frame) {
      ++rep_.decode_failures;
      m.decode_failures.add();
      continue;
    }
    ++rep_.frames_delivered;
    m.delivered.add();
    const double lat = d.delivered_at - d.sent_at;
    latency_sum_ += lat;
    rep_.max_display_latency_s = std::max(rep_.max_display_latency_s, lat);
    if (metrics::enabled()) m.display_latency.observe(lat);
    if (cfg_.capture) {
      cfg_.capture->frames.push_back({frame->step, frame->tier,
                                      frame->kind == FrameKind::kKey, lat,
                                      std::move(frame->image)});
    }
    if (!cfg_.record_path.empty()) record_.push_back(std::move(d.wire));
  }
}

void StreamSession::submit(double now, int step, const img::Image8& frame) {
  auto& m = StreamMetrics::get();
  ++rep_.frames_submitted;
  handle_deliveries(link_.poll(now));

  const int depth = link_.in_flight();
  const std::size_t queued = link_.in_flight_bytes();
  rep_.peak_queue_bytes = std::max(rep_.peak_queue_bytes, queued);
  m.queue_bytes.set(double(queued));
  if (metrics::enabled()) m.queue_depth.observe(double(depth));
  Decision d = controller_.on_frame(depth);
  rep_.peak_level = std::max(rep_.peak_level, d.level);
  if (d.drop) {
    ++rep_.frames_dropped;
    m.dropped.add();
    if (cfg_.capture) cfg_.capture->dropped_steps.push_back(step);
    return;
  }

  std::vector<std::uint8_t> wire;
  {
    trace::Span span("stream", "encode", step);
    wire = encoder_.encode(step, frame, d.tier, d.keyframe);
  }
  // Count keyframes off the wire header: the first frame is one regardless
  // of what the controller asked for.
  FrameHeader h;
  std::memcpy(&h, wire.data(), sizeof(h));
  if (h.kind == std::uint8_t(FrameKind::kKey)) {
    ++rep_.keyframes;
    m.keyframes.add();
  }
  rep_.bytes_out += wire.size();
  m.bytes_out.add(wire.size());
  link_.send(now, step, std::move(wire));
  // The send itself grows the queue; the peak must see it.
  rep_.peak_queue_bytes =
      std::max(rep_.peak_queue_bytes, link_.in_flight_bytes());
  m.queue_bytes.set(double(link_.in_flight_bytes()));
}

StreamReport StreamSession::finish() {
  handle_deliveries(link_.drain());
  StreamMetrics::get().queue_bytes.set(0.0);  // drained
  if (!cfg_.record_path.empty()) write_record_file(cfg_.record_path, record_);
  rep_.final_level = controller_.level();
  rep_.avg_display_latency_s =
      rep_.frames_delivered > 0
          ? latency_sum_ / double(rep_.frames_delivered)
          : 0.0;
  return rep_;
}

}  // namespace qv::stream
