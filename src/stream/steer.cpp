#include "stream/steer.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <map>
#include <thread>

#include "img/delta.hpp"
#include "io/block_index.hpp"
#include "mesh/hex_mesh.hpp"
#include "mesh/linear_octree.hpp"
#include "obs/lineage.hpp"
#include "octree/blocks.hpp"
#include "render/block_data.hpp"
#include "render/camera.hpp"
#include "render/order.hpp"
#include "render/partial_image.hpp"
#include "render/raycast.hpp"
#include "render/transfer.hpp"
#include "util/sha256.hpp"
#include "util/stats.hpp"

namespace qv::stream {

namespace {

const Box3 kSteerDomain{{0, 0, 0}, {1, 1, 1}};
const Vec3 kSteerBackground{0.02f, 0.02f, 0.05f};

// The analytic field the loop renders: smooth, time-varying, in [0, 2] so
// the default [0, 1] window shows structure and a TF edit visibly changes
// the image (the property wall's SHA comparisons depend on edits actually
// changing pixels).
float steer_field(const Vec3& p, int step, std::uint64_t seed) {
  const float t = float(step);
  const float ph = float(seed % 977u) * 0.01f;
  return (1.0f + std::sin(4.1f * p.x + 0.7f * t + ph) *
                     std::cos(3.3f * p.y - 0.41f * t)) *
             0.7f +
         0.6f * p.z;
}

render::TransferFunction steer_tf() {
  std::vector<render::TransferFunction::ControlPoint> pts;
  pts.push_back({0.0f, {0.1f, 0.1f, 0.4f}, 0.0f});
  pts.push_back({0.25f, {0.2f, 0.5f, 0.6f}, 0.08f});
  pts.push_back({0.6f, {0.9f, 0.7f, 0.2f}, 0.35f});
  pts.push_back({1.0f, {0.9f, 0.2f, 0.1f}, 0.8f});
  return render::TransferFunction(pts);
}

}  // namespace

// --- the scene --------------------------------------------------------------

struct SteerScene::Impl {
  int width, height;
  std::uint64_t seed;
  mesh::HexMesh mesh;
  std::vector<octree::Block> blocks;
  io::BlockNodeIndex index;
  std::vector<render::RenderBlock> rblocks;
  render::TransferFunction tf;
  int filled_step = -1;

  Impl(const SteerLoopConfig& cfg)
      : width(cfg.width),
        height(cfg.height),
        seed(cfg.seed),
        mesh(mesh::LinearOctree::uniform(kSteerDomain, cfg.level)),
        blocks(octree::decompose(mesh.octree(), cfg.block_level)),
        index(mesh, blocks),
        tf(steer_tf()) {
    for (std::size_t b = 0; b < blocks.size(); ++b)
      rblocks.emplace_back(mesh, blocks[b], index.block_nodes(b));
  }

  void fill(int step) {
    if (filled_step == step) return;
    auto positions = mesh.node_positions();
    std::vector<float> values(mesh.node_count());
    for (std::size_t n = 0; n < values.size(); ++n)
      values[n] = steer_field(positions[n], step, seed);
    for (std::size_t b = 0; b < rblocks.size(); ++b) {
      std::vector<float> local;
      for (auto n : index.block_nodes(b)) local.push_back(values[n]);
      rblocks[b].set_values(std::move(local));
    }
    filled_step = step;
  }
};

SteerScene::SteerScene(const SteerLoopConfig& cfg)
    : impl_(std::make_unique<Impl>(cfg)) {}

SteerScene::~SteerScene() = default;

std::optional<img::Image8> SteerScene::render_cancellable(
    const SteeringState& view, int step, util::ThreadPool* pool,
    const util::CancelToken* cancel) {
  Impl& s = *impl_;
  s.fill(step);
  render::Camera camera =
      render::Camera::orbit(kSteerDomain, s.width, s.height, view.azimuth_deg);
  render::RenderOptions opt;
  opt.value_lo = view.value_lo;
  opt.value_hi = view.value_hi;
  render::Raycaster rc(s.tf, opt, kSteerDomain.extent().x);
  auto order = render::visibility_order(s.blocks, kSteerDomain, camera.eye());
  std::vector<std::uint32_t> rank(s.blocks.size());
  for (std::size_t i = 0; i < order.size(); ++i)
    rank[order[i]] = std::uint32_t(i);
  auto partials = render::render_blocks_cancellable(
      camera, rc, s.rblocks, rank, pool, cancel);
  if (!partials) return std::nullopt;
  std::vector<const render::PartialImage*> ptrs;
  ptrs.reserve(partials->size());
  for (const auto& p : *partials) ptrs.push_back(&p);
  img::Image frame =
      render::compose_reference(std::move(ptrs), s.width, s.height);
  return img::to_8bit(frame, kSteerBackground);
}

img::Image8 SteerScene::render(const SteeringState& view, int step) {
  return *render_cancellable(view, step, nullptr, nullptr);
}

// --- invariant checking -----------------------------------------------------

namespace {

std::string image_sha(const img::Image8& im) {
  const std::size_t n = std::size_t(im.width()) * im.height() * 3;
  return util::Sha256::hex(im.data(), n);
}

// SHA of the submitted frame re-quantized at `tier` — exactly what a
// correct decode of any (key or delta) tier-t chain must reconstruct.
std::string quantized_sha(const img::Image8& frame, int tier) {
  const std::size_t n = std::size_t(frame.width()) * frame.height() * 3;
  std::vector<std::uint8_t> planes(n);
  img::deinterleave_rgb({frame.data(), n}, planes);
  img::quantize_tier(planes, tier);
  std::vector<std::uint8_t> inter(n);
  img::interleave_rgb(planes, inter);
  return util::Sha256::hex(inter.data(), inter.size());
}

void check_invariants(SteerLoopReport& rep, const ServerCapture& capture,
                      const std::vector<img::Image8>& submitted) {
  std::map<std::pair<int, int>, std::string> qsha;
  auto expected_sha = [&](int step, int tier) -> const std::string& {
    auto key = std::make_pair(step, tier);
    auto it = qsha.find(key);
    if (it == qsha.end())
      it = qsha.emplace(key, quantized_sha(submitted[std::size_t(step)], tier))
               .first;
    return it->second;
  };
  std::map<int, std::uint32_t> last_epoch;  // per client
  for (const auto& f : capture.frames) {
    const std::string at = "client " + std::to_string(f.client) + " step " +
                           std::to_string(f.step) + " epoch " +
                           std::to_string(f.epoch) + ": ";
    if (f.step < 0 || std::size_t(f.step) >= submitted.size()) {
      rep.violations.push_back(at + "delivered a step that was never submitted");
      continue;
    }
    // (a) the epoch echo names the view the frame was rendered under...
    if (f.epoch != rep.epochs[std::size_t(f.step)]) {
      rep.violations.push_back(
          at + "epoch echo lies: step was rendered under epoch " +
          std::to_string(rep.epochs[std::size_t(f.step)]));
    }
    // ...and the pixels are that view's frame, tier-quantized, bit-exactly.
    if (image_sha(f.image) != expected_sha(f.step, f.tier)) {
      rep.violations.push_back(at + "delivered pixels are not the tier-" +
                               std::to_string(f.tier) +
                               " quantization of the submitted frame");
    }
    // (b) a delta's base lives in the same epoch.
    if (!f.keyframe) {
      if (f.base_step < 0 || std::size_t(f.base_step) >= submitted.size()) {
        rep.violations.push_back(at + "delta against unknown base step " +
                                 std::to_string(f.base_step));
      } else if (rep.epochs[std::size_t(f.base_step)] != f.epoch) {
        rep.violations.push_back(
            at + "delta crosses an epoch boundary (base step " +
            std::to_string(f.base_step) + " was epoch " +
            std::to_string(rep.epochs[std::size_t(f.base_step)]) + ")");
      }
    }
    // (c) the first frame after an epoch change is a keyframe.
    auto it = last_epoch.find(f.client);
    if (it != last_epoch.end() && it->second != f.epoch && !f.keyframe) {
      rep.violations.push_back(at +
                               "first frame after a view change is a delta");
    }
    last_epoch[f.client] = f.epoch;
  }
  for (const auto& c : rep.server.clients) {
    if (!c.rejoin_keyframe_ok) {
      rep.violations.push_back("client " + std::to_string(c.id) +
                               ": (re)join not anchored by a keyframe");
    }
  }
}

}  // namespace

// --- the loop ---------------------------------------------------------------

SteerLoopReport run_steer_loop(const SteerLoopConfig& cfg) {
  SteerLoopReport rep;
  SteerScene scene(cfg);
  util::ThreadPool pool(std::max(1, cfg.render_threads));

  ServerConfig scfg = cfg.fleet.server;
  ServerCapture capture;
  if (cfg.check_invariants) {
    scfg.verify_clients = true;
    scfg.capture = &capture;
  }
  DeliveryServer server(scfg, cfg.width, cfg.height);
  auto links = make_fleet(cfg.fleet);
  double vnow = 0.0;
  std::vector<std::size_t> deferred;
  for (std::size_t i = 0; i < links.size(); ++i) {
    if (cfg.late_join_frame >= 0 && i % 3 == 2)
      deferred.push_back(i);
    else
      server.join(vnow, links[i]);
  }

  SteeringState view;
  rep.views.push_back({0u, view});

  const int frames = std::max(cfg.frames, 1);
  std::vector<std::vector<SteerMsg>> sched;
  sched.resize(std::size_t(frames));
  for (const auto& ev : cfg.trace) {
    if (ev.step >= 0 && ev.step < frames)
      sched[std::size_t(ev.step)].push_back(ev.msg);
  }

  // Live mode: one timed warm-up render calibrates when the monitor thread
  // fires relative to a frame's render time.
  double calib_s = 0.0;
  if (cfg.live) {
    WallTimer t;
    (void)scene.render_cancellable(view, 0, &pool, nullptr);
    calib_s = t.seconds();
  }

  struct PendingFresh {
    std::uint32_t id;
    double posted_at;
  };
  std::vector<PendingFresh> pending;
  WallTimer wall;  // live-mode latency clock
  util::CancelToken cancel;
  std::vector<img::Image8> submitted;

  int frame = 0;
  int field_step = 0;
  while (frame < frames) {
    if (cfg.late_join_frame == frame && !deferred.empty()) {
      for (std::size_t i : deferred) server.join(vnow, links[i]);
      deferred.clear();
    }
    // Scripted mode: this boundary's edits arrive now, through the same
    // hostile wire boundary a remote viewer's bytes would cross.
    if (!cfg.live && !sched[std::size_t(frame)].empty()) {
      for (const auto& m : sched[std::size_t(frame)]) {
        auto id = server.steer_inbox().post_wire(encode_steer(m));
        if (id) pending.push_back({*id, vnow});
      }
      sched[std::size_t(frame)].clear();
    }
    // Drain + fold. One apply_view_change per batch: the chain reset and
    // the epoch stamp land together, before the next render.
    auto edits = server.steer_inbox().drain();
    if (!edits.empty()) {
      for (const auto& m : edits) view.apply(m);
      rep.edits_applied += edits.size();
      rep.views.push_back({view.epoch, view});
      server.apply_view_change(view.epoch);
      if (obs::lineage::enabled()) {
        // epoch here IS the newest request id: the event records
        // request_id -> first-serving-epoch for the flight recorder.
        obs::lineage::record_wall(obs::lineage::Stage::kSteerApply, frame,
                                  view.epoch,
                                  obs::lineage::ChannelKind::kClient, -1);
      }
      const std::int32_t scrub = view.take_scrub();
      if (scrub >= 0) field_step = scrub;
    }

    // Live mode: a monitor thread posts this frame's edits partway through
    // its render and, when cancellation is on, fires the token — the
    // renderer is mid-flight on a view that just went stale.
    cancel.reset();
    std::thread monitor;
    std::vector<PendingFresh> posted_live;
    if (cfg.live && !sched[std::size_t(frame)].empty()) {
      std::vector<SteerMsg> msgs = std::move(sched[std::size_t(frame)]);
      sched[std::size_t(frame)].clear();
      const double delay = std::max(1e-4, calib_s * cfg.fire_fraction);
      monitor = std::thread([&server, &cancel, &wall, &posted_live, msgs,
                             delay, fire = cfg.cancellation] {
        std::this_thread::sleep_for(std::chrono::duration<double>(delay));
        for (const auto& m : msgs) {
          auto id = server.steer_inbox().post_wire(encode_steer(m));
          if (id) posted_live.push_back({*id, wall.seconds()});
        }
        if (fire) cancel.request();
      });
    }

    auto img8 = scene.render_cancellable(
        view, field_step, &pool,
        cfg.live && cfg.cancellation ? &cancel : nullptr);
    ++rep.renders;
    if (monitor.joinable()) monitor.join();
    pending.insert(pending.end(), posted_live.begin(), posted_live.end());

    if (!img8) {
      // Aborted mid-flight: no frame message exists for this render. The
      // next iteration drains the edit that killed it and renders fresh.
      ++rep.cancelled_renders;
      continue;
    }

    server.submit(vnow, frame, *img8);
    rep.epochs.push_back(view.epoch);
    rep.field_steps.push_back(field_step);
    rep.submitted_sha256.push_back(image_sha(*img8));
    if (cfg.check_invariants) submitted.push_back(std::move(*img8));

    const double lat_now = cfg.live ? wall.seconds() : vnow;
    for (auto it = pending.begin(); it != pending.end();) {
      if (it->id <= view.epoch) {
        rep.edit_to_fresh_s.push_back(lat_now - it->posted_at);
        it = pending.erase(it);
      } else {
        ++it;
      }
    }
    vnow += cfg.frame_interval_s;
    ++frame;
    ++field_step;
  }

  rep.final_epoch = view.epoch;
  rep.server = server.finish();
  if (cfg.check_invariants) check_invariants(rep, capture, submitted);
  return rep;
}

}  // namespace qv::stream
