#include "stream/cache.hpp"

#include <cstring>
#include <utility>

#include "metrics/metrics.hpp"
#include "trace/trace.hpp"
#include "util/sha256.hpp"

namespace qv::stream {

namespace {

// Registry-backed mirrors of CacheStats, so cache behavior shows up in the
// qv-run-report without the caller threading the cache object around.
struct CacheMetrics {
  metrics::Counter& hits = metrics::counter("stream.cache.hits");
  metrics::Counter& misses = metrics::counter("stream.cache.misses");
  metrics::Counter& evictions = metrics::counter("stream.cache.evictions");
  metrics::Counter& insertions = metrics::counter("stream.cache.insertions");
  metrics::Counter& oversize =
      metrics::counter("stream.cache.oversize_rejects");
  metrics::Gauge& bytes = metrics::gauge("stream.cache.bytes");
  metrics::Gauge& entries = metrics::gauge("stream.cache.entries");
  static CacheMetrics& get() {
    static CacheMetrics m;
    return m;
  }
};

void put_u64(util::Sha256& h, std::uint64_t v) {
  std::uint8_t b[8];
  for (int i = 0; i < 8; ++i) b[i] = std::uint8_t(v >> (8 * i));
  h.update(b, sizeof(b));
}

}  // namespace

std::uint64_t hash64(const std::string& descriptor) {
  util::Sha256 h;
  h.update(descriptor.data(), descriptor.size());
  const auto d = h.digest();
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t(d[std::size_t(i)]) << (8 * i);
  return v;
}

CacheKey content_address(const CacheIdentity& id, int step, int tier,
                         FrameKind kind) {
  util::Sha256 h;
  // Length-prefix the one variable-width field so "ab"+"c" can never alias
  // "a"+"bc" across field boundaries; everything else is fixed-width.
  put_u64(h, id.dataset_id.size());
  h.update(id.dataset_id.data(), id.dataset_id.size());
  put_u64(h, id.camera_hash);
  put_u64(h, id.tf_hash);
  put_u64(h, std::uint64_t(std::int64_t(step)));
  put_u64(h, std::uint64_t(std::int64_t(tier)));
  put_u64(h, std::uint64_t(kind));
  CacheKey k;
  k.addr = h.digest();
  return k;
}

FrameCache::FrameCache(CacheConfig cfg) : cfg_(cfg) {}

FrameCache::Wire FrameCache::get(const CacheKey& key) {
  trace::Span span("cache", "get");
  // The lookup is also an e2e delivery stage: its wall cost is part of what
  // a client waits for, so it feeds the stream.e2e.* waterfall directly.
  const bool timed = metrics::enabled();
  const std::int64_t t0 = timed ? trace::now_since_epoch_ns() : 0;
  Wire out;
  {
    auto& m = CacheMetrics::get();
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(key);
    if (it == map_.end()) {
      ++stats_.misses;
      m.misses.add();
    } else {
      lru_.splice(lru_.begin(), lru_, it->second);  // promote to MRU
      ++stats_.hits;
      m.hits.add();
      out = it->second->wire;
    }
  }
  if (timed) {
    static auto& h = metrics::histogram("stream.e2e.cache_lookup");
    h.observe(double(trace::now_since_epoch_ns() - t0) * 1e-9);
  }
  return out;
}

void FrameCache::evict_until_fits(std::size_t incoming) {
  auto& m = CacheMetrics::get();
  while (!lru_.empty() && stats_.bytes + incoming > cfg_.capacity_bytes) {
    const Entry& victim = lru_.back();
    stats_.bytes -= victim.wire->size();
    map_.erase(victim.key);
    lru_.pop_back();
    ++stats_.evictions;
    m.evictions.add();
  }
}

void FrameCache::put(const CacheKey& key, Wire wire) {
  if (!wire) return;
  trace::Span span("cache", "put");
  auto& m = CacheMetrics::get();
  std::lock_guard<std::mutex> lock(mu_);
  if (auto it = map_.find(key); it != map_.end()) {
    // Already resident: same address means same bytes by contract, so just
    // refresh recency.
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (wire->size() > cfg_.capacity_bytes) {
    ++stats_.oversize_rejects;
    m.oversize.add();
    return;
  }
  evict_until_fits(wire->size());
  stats_.bytes += wire->size();
  lru_.push_front(Entry{key, std::move(wire)});
  map_.emplace(key, lru_.begin());
  ++stats_.insertions;
  m.insertions.add();
  stats_.entries = lru_.size();
  m.bytes.set(double(stats_.bytes));
  m.entries.set(double(stats_.entries));
}

CacheStats FrameCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  CacheStats s = stats_;
  s.entries = lru_.size();
  return s;
}

std::size_t FrameCache::bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_.bytes;
}

std::size_t FrameCache::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

}  // namespace qv::stream
