// Wire codec for remotely delivered frames.
//
// The output processor encodes each finished 8-bit frame against the frame
// the viewer already holds (per-channel delta, see img/delta.hpp), RLE-packs
// the result, and frames it with a magic/version header and a CRC-32 of the
// payload. Two frame kinds:
//
//   keyframe — RLE of the (tier-quantized) channel planes themselves;
//              decodable with no history.
//   delta    — RLE of planes minus the previously DELIVERED frame's planes;
//              the header's base_step names that reference, so a decoder
//              that missed it rejects instead of reconstructing garbage.
//
// Transmission is lossless with respect to the tier-quantized frame: at
// tier 0 the viewer reconstructs the sender's bytes exactly (the delivery
// determinism tests pin this with SHA-256 against the written PPMs). The
// encoder's reference is its own reconstruction of the last frame it sent,
// so drops on the sender side never desynchronize the chain.
//
// The decoder is a hostile-input boundary: any malformed, truncated, or
// corrupt buffer must come back as std::nullopt with the decoder state
// untouched — never a crash, never wrong pixels (see the codec fuzz suite).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "img/delta.hpp"
#include "img/image.hpp"

namespace qv::stream {

inline constexpr std::uint32_t kFrameMagic = 0x31535651u;  // "QVS1"
inline constexpr std::uint16_t kFrameVersion = 1;

enum class FrameKind : std::uint8_t { kKey = 0, kDelta = 1 };

// Fits the fault layer's 32-byte trusted-header prefix, like every other
// wire header in the pipeline.
struct FrameHeader {
  std::uint32_t magic;
  std::uint16_t version;
  std::uint8_t kind;       // FrameKind
  std::uint8_t tier;       // quantization tier the planes were coded at
  std::int32_t step;       // simulation step of this frame
  std::int32_t base_step;  // delta: reference frame's step; key: -1
  std::uint16_t width, height;
  std::uint32_t payload;   // encoded bytes following the header
  std::uint32_t crc;       // CRC-32 of the payload bytes
  // View epoch of the frame: together (step, epoch) is the stable frame id
  // that lineage events carry end to end, so the on-wire bytes ARE the
  // correlation key — a decoder-side event needs no side channel to name
  // the frame it belongs to. Took over the former zero pad; epoch 0 is
  // byte-identical to version-1 frames, so kFrameVersion stays 1.
  std::uint32_t epoch;
};
static_assert(sizeof(FrameHeader) == 32);

// Assemble a complete wire message (header + RLE payload + CRC) from raw
// pre-RLE bytes: channel planes for a keyframe, plane deltas for a delta.
// This is the one place frame wire bytes are built — FrameEncoder and the
// fan-out FrameEncoderBank both call it, so their output is bit-identical.
std::vector<std::uint8_t> pack_frame(FrameKind kind, int tier, int step,
                                     int base_step, int width, int height,
                                     std::span<const std::uint8_t> raw,
                                     std::uint32_t epoch = 0);

// Stateful encoder: owns the reconstruction of the last frame it emitted.
class FrameEncoder {
 public:
  FrameEncoder(int width, int height);

  // Encode `frame` (dimensions must match the constructor's) at the given
  // tier. The first frame, and any frame with `keyframe` set, is emitted as
  // a keyframe. Returns the complete wire message (header + payload).
  std::vector<std::uint8_t> encode(int step, const img::Image8& frame,
                                   int tier = 0, bool keyframe = false);

  bool has_reference() const { return ref_step_ >= 0; }

  // View epoch stamped into every subsequent frame header (lineage id).
  void set_epoch(std::uint32_t epoch) { epoch_ = epoch; }
  std::uint32_t epoch() const { return epoch_; }

  // View change: forget the delta reference so the next encode is forced to
  // a keyframe — a delta can never be coded across the edit.
  void invalidate_chain() { ref_step_ = -1; }

 private:
  int w_, h_;
  std::vector<std::uint8_t> ref_;  // quantized planes of the last sent frame
  int ref_step_ = -1;
  std::uint32_t epoch_ = 0;
  std::vector<std::uint8_t> planes_, deltas_;  // scratch
};

// Shared encoder bank for the delivery server: one delta chain per
// quantization tier, every (step, tier, kind) encoded at most once and the
// wire bytes handed out as shared buffers, so a thousand clients cost one
// encode plus per-client queue copies — never per-client encode CPU.
//
// Chain discipline: a tier's reference advances to step s only if a tier-t
// wire was emitted at s (committed at the next begin_step), so delta(t)
// always codes against the last tier-t frame any client can actually hold.
// The server sends delta(t) only to clients whose last received step equals
// ref_step(t); everyone else re-anchors on key(t).
class FrameEncoderBank {
 public:
  FrameEncoderBank(int width, int height);

  // Stage the frame for `step` (strictly increasing); commits the previous
  // step's emitted planes as each tier's delta reference and clears the
  // per-step wire cache.
  void begin_step(int step, const img::Image8& frame);

  int step() const { return step_; }
  // The step tier t's delta chain references; -1 until a tier-t frame has
  // been emitted (only keyframes are possible then).
  int ref_step(int tier) const;

  // Wire bytes for the staged step, encoded on first demand and cached for
  // the rest of the step. `delta` requires ref_step(tier) >= 0.
  std::shared_ptr<const std::vector<std::uint8_t>> key(int tier);
  std::shared_ptr<const std::vector<std::uint8_t>> delta(int tier);

  // Record that tier-t wire for the staged step reached clients WITHOUT
  // this bank encoding it — the delivery path served byte-identical bytes
  // from the frame cache. Stages the tier's planes (content-addressing
  // guarantees they match what was served) and marks the tier emitted, so
  // the delta chain advances exactly as if key()/delta() had packed them
  // and a later delta(t) still codes against what clients actually hold.
  void note_emitted(int tier);

  // View epoch stamped into every frame header packed from now on (lineage
  // id). Call before begin_step when the view changes; cached wires for the
  // already-staged step keep the epoch they were packed with.
  void set_epoch(std::uint32_t epoch) { epoch_ = epoch; }
  std::uint32_t epoch() const { return epoch_; }

  // View change: drop every tier's delta reference (and any cached wires of
  // the staged step — they encode the pre-edit view). Until a tier re-emits
  // a keyframe, ref_step(t) is -1 and delta(t) throws, so a delta coded
  // across the edit is structurally impossible, for every client at once.
  // Call between steps, before begin_step of the first post-edit frame.
  void invalidate_chains();

  std::uint64_t encodes() const { return encodes_; }  // actual encode work
  std::uint64_t reuses() const { return reuses_; }    // served from cache

 private:
  struct Tier {
    std::vector<std::uint8_t> ref;     // planes of the last emitted step
    int ref_step = -1;
    std::vector<std::uint8_t> planes;  // staged quantized planes
    bool staged = false;               // planes valid for the current step
    bool emitted = false;              // some wire was produced this step
    std::shared_ptr<const std::vector<std::uint8_t>> key_wire, delta_wire;
  };
  Tier& stage(int tier);

  int w_, h_;
  int step_ = -1;
  std::uint32_t epoch_ = 0;
  std::vector<std::uint8_t> planes0_;  // unquantized planes of staged frame
  std::vector<std::uint8_t> scratch_;  // delta scratch
  std::array<Tier, img::kMaxQuantizeTier + 1> tiers_;
  std::uint64_t encodes_ = 0, reuses_ = 0;
};

struct DecodedFrame {
  int step = 0;
  std::uint32_t epoch = 0;  // view epoch from the header ((step, epoch) = frame id)
  int tier = 0;
  int base_step = -1;  // delta: the reference frame's step; key: -1
  FrameKind kind = FrameKind::kKey;
  img::Image8 image;
};

// Stateful decoder: holds the last successfully decoded frame as the delta
// reference. A failed decode leaves that state untouched.
class FrameDecoder {
 public:
  std::optional<DecodedFrame> decode(std::span<const std::uint8_t> wire);

  bool has_reference() const { return ref_step_ >= 0; }
  int reference_step() const { return ref_step_; }

 private:
  int w_ = 0, h_ = 0;              // established by the first keyframe
  std::vector<std::uint8_t> ref_;  // planes of the last decoded frame
  int ref_step_ = -1;
  std::vector<std::uint8_t> scratch_;
};

// --- stream recording -------------------------------------------------------
// On-disk format consumed by `quakeviz view`: an 8-byte magic followed by
// length-prefixed wire frames in delivery order, closed by an end-of-stream
// trailer (a sentinel length + the frame count). The trailer is what makes
// EVERY truncation detectable: a capture cut mid-frame fails the entry read,
// and one cut exactly at a frame boundary — indistinguishable from a clean
// end in the 01 format — now fails the missing-trailer check.
inline constexpr char kRecordMagic[8] = {'Q', 'V', 'S', 'T', 'R', 'M', '0', '2'};
inline constexpr std::uint32_t kRecordEndSentinel = 0xFFFFFFFFu;

// Write `frames` (wire messages) to `path`. Returns false on I/O failure.
bool write_record_file(const std::string& path,
                       std::span<const std::vector<std::uint8_t>> frames);

// Read a record file back into wire messages; nullopt on a missing file,
// bad magic, a truncated entry, or a missing/inconsistent trailer. When
// `err` is non-null it receives a one-line human-readable cause.
std::optional<std::vector<std::vector<std::uint8_t>>> read_record_file(
    const std::string& path, std::string* err = nullptr);

}  // namespace qv::stream
