// Wire codec for remotely delivered frames.
//
// The output processor encodes each finished 8-bit frame against the frame
// the viewer already holds (per-channel delta, see img/delta.hpp), RLE-packs
// the result, and frames it with a magic/version header and a CRC-32 of the
// payload. Two frame kinds:
//
//   keyframe — RLE of the (tier-quantized) channel planes themselves;
//              decodable with no history.
//   delta    — RLE of planes minus the previously DELIVERED frame's planes;
//              the header's base_step names that reference, so a decoder
//              that missed it rejects instead of reconstructing garbage.
//
// Transmission is lossless with respect to the tier-quantized frame: at
// tier 0 the viewer reconstructs the sender's bytes exactly (the delivery
// determinism tests pin this with SHA-256 against the written PPMs). The
// encoder's reference is its own reconstruction of the last frame it sent,
// so drops on the sender side never desynchronize the chain.
//
// The decoder is a hostile-input boundary: any malformed, truncated, or
// corrupt buffer must come back as std::nullopt with the decoder state
// untouched — never a crash, never wrong pixels (see the codec fuzz suite).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "img/image.hpp"

namespace qv::stream {

inline constexpr std::uint32_t kFrameMagic = 0x31535651u;  // "QVS1"
inline constexpr std::uint16_t kFrameVersion = 1;

enum class FrameKind : std::uint8_t { kKey = 0, kDelta = 1 };

// Fits the fault layer's 32-byte trusted-header prefix, like every other
// wire header in the pipeline.
struct FrameHeader {
  std::uint32_t magic;
  std::uint16_t version;
  std::uint8_t kind;       // FrameKind
  std::uint8_t tier;       // quantization tier the planes were coded at
  std::int32_t step;       // simulation step of this frame
  std::int32_t base_step;  // delta: reference frame's step; key: -1
  std::uint16_t width, height;
  std::uint32_t payload;   // encoded bytes following the header
  std::uint32_t crc;       // CRC-32 of the payload bytes
  std::uint8_t pad[4];
};
static_assert(sizeof(FrameHeader) == 32);

// Stateful encoder: owns the reconstruction of the last frame it emitted.
class FrameEncoder {
 public:
  FrameEncoder(int width, int height);

  // Encode `frame` (dimensions must match the constructor's) at the given
  // tier. The first frame, and any frame with `keyframe` set, is emitted as
  // a keyframe. Returns the complete wire message (header + payload).
  std::vector<std::uint8_t> encode(int step, const img::Image8& frame,
                                   int tier = 0, bool keyframe = false);

  bool has_reference() const { return ref_step_ >= 0; }

 private:
  int w_, h_;
  std::vector<std::uint8_t> ref_;  // quantized planes of the last sent frame
  int ref_step_ = -1;
  std::vector<std::uint8_t> planes_, deltas_;  // scratch
};

struct DecodedFrame {
  int step = 0;
  int tier = 0;
  FrameKind kind = FrameKind::kKey;
  img::Image8 image;
};

// Stateful decoder: holds the last successfully decoded frame as the delta
// reference. A failed decode leaves that state untouched.
class FrameDecoder {
 public:
  std::optional<DecodedFrame> decode(std::span<const std::uint8_t> wire);

  bool has_reference() const { return ref_step_ >= 0; }
  int reference_step() const { return ref_step_; }

 private:
  int w_ = 0, h_ = 0;              // established by the first keyframe
  std::vector<std::uint8_t> ref_;  // planes of the last decoded frame
  int ref_step_ = -1;
  std::vector<std::uint8_t> scratch_;
};

// --- stream recording -------------------------------------------------------
// On-disk format consumed by `quakeviz view`: an 8-byte magic followed by
// length-prefixed wire frames in delivery order.
inline constexpr char kRecordMagic[8] = {'Q', 'V', 'S', 'T', 'R', 'M', '0', '1'};

// Write `frames` (wire messages) to `path`. Returns false on I/O failure.
bool write_record_file(const std::string& path,
                       std::span<const std::vector<std::uint8_t>> frames);

// Read a record file back into wire messages; nullopt on a missing file,
// bad magic, or a truncated entry.
std::optional<std::vector<std::vector<std::uint8_t>>> read_record_file(
    const std::string& path);

}  // namespace qv::stream
