#include "stream/server.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "metrics/metrics.hpp"
#include "obs/lineage.hpp"
#include "trace/trace.hpp"
#include "util/crc32.hpp"
#include "util/rng.hpp"

namespace qv::stream {

// --- control messages -------------------------------------------------------

namespace {

struct ControlWire {
  std::uint32_t magic;
  std::uint16_t version;
  std::uint8_t kind;
  std::uint8_t pad0;
  std::int32_t client_id;
  std::int32_t step;
  double time;
  std::uint32_t crc;  // CRC-32 of the 24 bytes preceding this field
  std::uint8_t pad[4];
};
static_assert(sizeof(ControlWire) == kControlWireSize);
constexpr std::size_t kControlCrcSpan = offsetof(ControlWire, crc);

}  // namespace

std::vector<std::uint8_t> encode_control(const ControlMsg& m) {
  ControlWire w{};
  w.magic = kControlMagic;
  w.version = kControlVersion;
  w.kind = std::uint8_t(m.kind);
  w.client_id = m.client_id;
  w.step = m.step;
  w.time = m.time;
  std::vector<std::uint8_t> out(sizeof(ControlWire));
  std::memcpy(out.data(), &w, sizeof(w));
  w.crc = util::crc32({out.data(), kControlCrcSpan});
  std::memcpy(out.data(), &w, sizeof(w));
  return out;
}

std::optional<ControlMsg> decode_control(std::span<const std::uint8_t> wire) {
  if (wire.size() != kControlWireSize) return std::nullopt;
  ControlWire w;
  std::memcpy(&w, wire.data(), sizeof(w));
  if (w.magic != kControlMagic || w.version != kControlVersion)
    return std::nullopt;
  if (w.kind > std::uint8_t(ControlKind::kEvict)) return std::nullopt;
  // Strict zero pad, same policy as the frame header: corruption has
  // nowhere to hide and the bytes stay reserved for a future version.
  if (w.pad0 || w.pad[0] || w.pad[1] || w.pad[2] || w.pad[3])
    return std::nullopt;
  if (util::crc32({wire.data(), kControlCrcSpan}) != w.crc)
    return std::nullopt;
  ControlMsg m;
  m.kind = ControlKind(w.kind);
  m.client_id = w.client_id;
  m.step = w.step;
  m.time = w.time;
  return m;
}

bool is_control_wire(std::span<const std::uint8_t> wire) {
  if (wire.size() < sizeof(std::uint32_t)) return false;
  std::uint32_t magic;
  std::memcpy(&magic, wire.data(), sizeof(magic));
  return magic == kControlMagic;
}

// --- metrics ----------------------------------------------------------------

namespace {

struct ServerMetrics {
  metrics::Counter& bytes_out = metrics::counter("stream.server.bytes_out");
  metrics::Counter& frames_sent =
      metrics::counter("stream.server.frames_sent");
  metrics::Counter& dropped = metrics::counter("stream.server.dropped_frames");
  metrics::Counter& keyframes = metrics::counter("stream.server.keyframes");
  metrics::Counter& joins = metrics::counter("stream.server.joins");
  metrics::Counter& leaves = metrics::counter("stream.server.leaves");
  metrics::Counter& evictions = metrics::counter("stream.server.evictions");
  metrics::Counter& reconnects = metrics::counter("stream.server.reconnects");
  metrics::Counter& decode_failures =
      metrics::counter("stream.server.decode_failures");
  metrics::Counter& control_out = metrics::counter("stream.server.control_out");
  metrics::Counter& encodes = metrics::counter("stream.server.encodes");
  metrics::Counter& encode_reuses =
      metrics::counter("stream.server.encode_reuses");
  metrics::Gauge& clients = metrics::gauge("stream.server.clients");
  // Shared with the single-session path: instantaneous queued wire bytes
  // (here the sum over every connected client).
  metrics::Gauge& queue_bytes = metrics::gauge("stream.queue_bytes");
  metrics::Histogram& latency = metrics::histogram(
      "stream.server.latency", metrics::HistogramSpec::duration_seconds());
  metrics::Histogram& client_queue_bytes = metrics::histogram(
      "stream.server.queue_bytes", metrics::HistogramSpec::bytes());
  // Per-stage e2e frame latency (the qv-run-report waterfall). encode and
  // decode are wall time; queue_wait and wire are link (virtual) time —
  // same split the lineage domains enforce.
  metrics::Histogram& e2e_encode = metrics::histogram(
      "stream.e2e.encode", metrics::HistogramSpec::duration_seconds());
  metrics::Histogram& e2e_queue_wait = metrics::histogram(
      "stream.e2e.queue_wait", metrics::HistogramSpec::duration_seconds());
  metrics::Histogram& e2e_wire = metrics::histogram(
      "stream.e2e.wire", metrics::HistogramSpec::duration_seconds());
  metrics::Histogram& e2e_decode = metrics::histogram(
      "stream.e2e.decode", metrics::HistogramSpec::duration_seconds());
  static ServerMetrics& get() {
    static ServerMetrics m;
    return m;
  }
};

WanLinkConfig make_link_config(const ClientLinkConfig& cfg) {
  WanLinkConfig lc;
  lc.bandwidth_bytes_per_s = cfg.bandwidth_bytes_per_s;
  lc.latency_s = cfg.latency_s;
  lc.fault = cfg.fault;
  // The link clock follows the caller's clock; give pre-scheduled outage
  // windows a horizon no real run outlives (same policy as StreamSession).
  if (lc.fault.active() && lc.fault.horizon_seconds <= 0.0)
    lc.fault.horizon_seconds = 3600.0;
  return lc;
}

}  // namespace

// --- reports ----------------------------------------------------------------

namespace {

// Exact order statistic: smallest value covering >= p% of the sorted mass.
double delivery_percentile(const std::vector<ClientReport::Delivery>& ds,
                           std::size_t p) {
  if (ds.empty()) return 0.0;
  std::vector<double> lat;
  lat.reserve(ds.size());
  for (const auto& d : ds) lat.push_back(d.latency_s);
  std::sort(lat.begin(), lat.end());
  const std::size_t idx = (lat.size() * p + 99) / 100;  // ceil(p/100 n) >= 1
  return lat[idx - 1];
}

}  // namespace

double ClientReport::p50_latency_s() const {
  return delivery_percentile(deliveries, 50);
}

double ClientReport::p95_latency_s() const {
  return delivery_percentile(deliveries, 95);
}

// --- the server -------------------------------------------------------------

struct DeliveryServer::Client {
  std::unique_ptr<WanLink> link;
  DegradationController controller;
  FrameDecoder viewer;
  ClientReport rep;
  bool connected = false;
  bool needs_keyframe = true;  // (re)join, drop, or tier change pending
  bool expect_key = true;      // next delivered frame must be a keyframe
  int chain_tier = -1;         // tier of the last frame sent
  int chain_step = -1;         // step of the last frame sent
  double last_progress = 0.0;  // server clock of last queue progress
};

DeliveryServer::DeliveryServer(const ServerConfig& cfg, int width, int height)
    : cfg_(cfg), w_(width), h_(height), bank_(width, height) {}

DeliveryServer::~DeliveryServer() = default;

int DeliveryServer::join(double now, const ClientLinkConfig& link) {
  auto& m = ServerMetrics::get();
  const int id = int(clients_.size());
  auto c = std::make_unique<Client>();
  c->rep.id = id;
  c->rep.connected = true;
  c->link = std::make_unique<WanLink>(make_link_config(link));
  c->controller = DegradationController(cfg_.controller);
  c->connected = true;
  c->last_progress = now;
  clients_.push_back(std::move(c));
  ++rep_.joins;
  m.joins.add();
  m.clients.set(double(connected_clients()));
  send_control(*clients_.back(), now, ControlKind::kJoinAck);
  return id;
}

void DeliveryServer::reconnect(double now, int id,
                               const ClientLinkConfig& link) {
  auto& m = ServerMetrics::get();
  Client& c = *clients_.at(std::size_t(id));
  if (c.connected)
    throw std::logic_error("DeliveryServer: reconnect of a connected client");
  c.link = std::make_unique<WanLink>(make_link_config(link));
  c.controller = DegradationController(cfg_.controller);
  // The client lost its state with the connection: fresh decoder, and the
  // first frame it gets MUST be a keyframe.
  c.viewer = FrameDecoder();
  c.connected = true;
  c.needs_keyframe = true;
  c.expect_key = true;
  c.chain_tier = -1;
  c.chain_step = -1;
  c.last_progress = now;
  c.rep.connected = true;
  ++rep_.reconnects;
  m.reconnects.add();
  m.clients.set(double(connected_clients()));
  send_control(c, now, ControlKind::kJoinAck);
}

void DeliveryServer::leave(double now, int id) {
  auto& m = ServerMetrics::get();
  Client& c = *clients_.at(std::size_t(id));
  if (!c.connected || !c.link) return;
  // Graceful: the leave ack is queued last, everything already in flight
  // finishes crossing, and the client sees all of it (FIFO).
  send_control(c, now, ControlKind::kLeaveAck);
  handle_batch(c, c.link->drain());
  c.link.reset();
  c.connected = false;
  c.rep.connected = false;
  ++rep_.leaves;
  m.leaves.add();
  m.clients.set(double(connected_clients()));
}

void DeliveryServer::send_control(Client& c, double now, ControlKind kind) {
  auto& m = ServerMetrics::get();
  ControlMsg msg;
  msg.kind = kind;
  msg.client_id = c.rep.id;
  msg.step = last_step_;
  msg.time = now;
  auto wire = encode_control(msg);
  rep_.bytes_out += wire.size();
  c.rep.bytes_sent += wire.size();
  m.bytes_out.add(wire.size());
  m.control_out.add();
  c.link->send(now, /*step=*/-1, std::move(wire));
}

void DeliveryServer::evict(Client& c, double now) {
  auto& m = ServerMetrics::get();
  trace::instant("server", "evict", c.rep.id);
  // Notify (the notice shares the dead connection's fate) and tear down:
  // queued bytes are discarded — the client lost them, which is exactly why
  // its next frame after a reconnect must be a keyframe.
  send_control(c, now, ControlKind::kEvict);
  c.link->drain();  // let virtual transfers finish; discard the deliveries
  c.link.reset();
  c.connected = false;
  c.rep.connected = false;
  c.rep.evicted = true;
  ++rep_.evictions;
  m.evictions.add();
  m.clients.set(double(connected_clients()));
  trace::instant("server", "evict", c.rep.id);
  if (obs::lineage::enabled()) {
    obs::lineage::record_virtual(obs::lineage::Stage::kEvict, last_step_,
                                 epoch_, obs::lineage::ChannelKind::kClient,
                                 c.rep.id, now);
    // The eviction IS the post-mortem trigger: dump the flight recorder
    // while the evicted client's last frames are still in its ring.
    obs::lineage::dump_now("client_evicted");
  }
}

void DeliveryServer::handle_batch(Client& c,
                                  std::vector<DeliveredFrame> delivered) {
  auto& m = ServerMetrics::get();
  for (auto& d : delivered) {
    if (is_control_wire(d.wire)) {
      if (decode_control(d.wire)) {
        ++c.rep.control_delivered;
      } else {
        ++c.rep.decode_failures;
        ++rep_.decode_failures;
        m.decode_failures.add();
      }
      continue;
    }
    // The header's (step, epoch) is the frame id every lineage event below
    // carries — readable even when the payload fails to decode.
    std::uint32_t frame_epoch = 0;
    if (d.wire.size() >= sizeof(FrameHeader)) {
      FrameHeader h;
      std::memcpy(&h, d.wire.data(), sizeof(h));
      frame_epoch = h.epoch;
    }
    ClientReport::Delivery rec;
    rec.step = d.step;
    rec.epoch = frame_epoch;
    rec.bytes = std::uint32_t(d.bytes);
    rec.latency_s = d.delivered_at - d.sent_at;
    if (obs::lineage::enabled()) {
      using namespace obs::lineage;
      record_virtual(Stage::kWire, d.step, frame_epoch, ChannelKind::kClient,
                     c.rep.id, d.sent_at, rec.latency_s);
    }
    if (metrics::enabled()) {
      m.e2e_wire.observe(rec.latency_s);
      if (c.link) {
        // Queue wait = crossing time in excess of the frame's ideal solo
        // crossing (serialization + propagation): time spent behind earlier
        // frames or outage windows on this client's connection.
        const WanLinkConfig& lc = c.link->config();
        const double ideal =
            double(d.bytes) / lc.bandwidth_bytes_per_s + lc.latency_s;
        m.e2e_queue_wait.observe(std::max(0.0, rec.latency_s - ideal));
      }
    }
    if (cfg_.verify_clients) {
      const bool timed = metrics::enabled() || obs::lineage::enabled();
      const std::int64_t t0 = timed ? trace::now_since_epoch_ns() : 0;
      auto frame = c.viewer.decode(d.wire);
      const double decode_s =
          timed ? double(trace::now_since_epoch_ns() - t0) * 1e-9 : 0.0;
      if (metrics::enabled()) m.e2e_decode.observe(decode_s);
      if (obs::lineage::enabled()) {
        obs::lineage::record_wall(obs::lineage::Stage::kDecode, d.step,
                                  frame_epoch,
                                  obs::lineage::ChannelKind::kClient,
                                  c.rep.id, decode_s);
      }
      if (!frame) {
        ++c.rep.decode_failures;
        ++rep_.decode_failures;
        m.decode_failures.add();
        continue;
      }
      rec.tier = frame->tier;
      rec.keyframe = frame->kind == FrameKind::kKey;
      rec.base_step = frame->base_step;
      if (cfg_.capture) {
        cfg_.capture->frames.push_back({c.rep.id, frame->step, frame->epoch,
                                        frame->tier, frame->base_step,
                                        rec.keyframe,
                                        std::move(frame->image)});
      }
    } else if (d.wire.size() >= sizeof(FrameHeader)) {
      FrameHeader h;
      std::memcpy(&h, d.wire.data(), sizeof(h));
      rec.tier = h.tier;
      rec.keyframe = h.kind == std::uint8_t(FrameKind::kKey);
      rec.base_step = rec.keyframe ? -1 : h.base_step;
    }
    if (c.expect_key) {
      // The first frame after every (re)join must be self-contained.
      if (!rec.keyframe) c.rep.rejoin_keyframe_ok = false;
      c.expect_key = false;
    }
    ++c.rep.frames_delivered;
    c.rep.max_latency_s = std::max(c.rep.max_latency_s, rec.latency_s);
    if (metrics::enabled()) m.latency.observe(rec.latency_s);
    c.rep.deliveries.push_back(rec);
  }
}

// Seconds of [from, to] the link's seeded outage schedule had the line down.
// Outage windows are sorted and disjoint, so a linear scan with early exit
// is fine at the fleet sizes the server handles.
static double outage_overlap(const WanLink& link, double from, double to) {
  double down = 0.0;
  for (const auto& [start, end] : link.faults().outages()) {
    if (start >= to) break;
    if (end <= from) continue;
    down += std::min(end, to) - std::max(start, from);
  }
  return down;
}

void DeliveryServer::service(Client& c, double now) {
  if (!c.connected || !c.link) return;
  auto delivered = c.link->poll(now);
  if (!delivered.empty()) c.last_progress = now;
  handle_batch(c, std::move(delivered));
  if (c.link->in_flight() == 0) {
    c.last_progress = now;
  } else {
    // A client stalled only because its seeded outage window is open is not
    // misbehaving — the WAN is. Exempt outage time from the no-progress
    // clock so eviction measures the client's own (lack of) throughput; a
    // genuinely starved link still runs out the timeout.
    const double stalled = (now - c.last_progress) -
                           outage_overlap(*c.link, c.last_progress, now);
    if (stalled > cfg_.evict_timeout_s) evict(c, now);
  }
}

void DeliveryServer::observe_queues() {
  auto& m = ServerMetrics::get();
  std::size_t total = 0;
  for (const auto& c : clients_) {
    if (!c->connected || !c->link) continue;
    const std::size_t q = c->link->in_flight_bytes();
    total += q;
    c->rep.peak_queue_bytes = std::max(c->rep.peak_queue_bytes, q);
    rep_.peak_client_queue_bytes = std::max(rep_.peak_client_queue_bytes, q);
    if (metrics::enabled()) m.client_queue_bytes.observe(double(q));
  }
  rep_.peak_total_queue_bytes = std::max(rep_.peak_total_queue_bytes, total);
  m.queue_bytes.set(double(total));
}

void DeliveryServer::set_epoch(std::uint32_t epoch) {
  epoch_ = epoch;
  bank_.set_epoch(epoch);
}

std::uint32_t DeliveryServer::epoch() const { return epoch_; }

void DeliveryServer::apply_view_change(std::uint32_t epoch) {
  epoch_ = epoch;
  bank_.set_epoch(epoch);
  // Dropping every tier reference makes ref_step(t) < 0, and the keyframe
  // decision in submit() already re-anchors on that — the keyframe-on-edit
  // invariant rides the same rule that protects joins and drops. Client
  // controllers, decoders, and chain bookkeeping are left alone: their next
  // keyframe re-anchors them at whatever tier they had earned.
  bank_.invalidate_chains();
  trace::instant("server", "view_change", int(epoch));
}

void DeliveryServer::submit(double now, int step, const img::Image8& frame) {
  auto& m = ServerMetrics::get();
  trace::Span span("stream", "serve_frame", step);
  if (obs::lineage::enabled()) {
    obs::lineage::record_virtual(obs::lineage::Stage::kFrame, step, epoch_,
                                 obs::lineage::ChannelKind::kClient, -1, now);
  }
  ++rep_.frames_submitted;
  last_step_ = step;
  bank_.begin_step(step, frame);
  const std::uint64_t encodes_before = bank_.encodes();
  const std::uint64_t reuses_before = bank_.reuses();

  // Cache-aware keyframe fetch, memoized per (step, tier) so the hit/miss
  // counters are per-frame, not per-client. Keyframes ONLY: a delta is
  // meaningful only inside this bank's chain (see stream/cache.hpp), so the
  // delta path below always goes straight to the bank. On a hit the bank
  // still learns the tier was emitted, keeping later deltas decodable.
  std::array<std::shared_ptr<const std::vector<std::uint8_t>>,
             img::kMaxQuantizeTier + 1>
      key_memo{};
  auto fetch_key =
      [&](int tier) -> std::shared_ptr<const std::vector<std::uint8_t>> {
    if (!cfg_.cache) return bank_.key(tier);
    tier = std::clamp(tier, 0, img::kMaxQuantizeTier);  // match bank_.key
    auto& memo = key_memo[std::size_t(tier)];
    if (memo) return memo;
    const CacheKey ck =
        content_address(cfg_.identity, step, tier, FrameKind::kKey);
    if (auto hit = cfg_.cache->get(ck)) {
      bank_.note_emitted(tier);
      ++rep_.cache_hits;
      memo = std::move(hit);
    } else {
      memo = bank_.key(tier);
      cfg_.cache->put(ck, memo);
      ++rep_.cache_misses;
    }
    return memo;
  };

  for (auto& cp : clients_) {
    Client& c = *cp;
    service(c, now);
    if (!c.connected) continue;

    Decision d = c.controller.on_frame(c.link->in_flight());
    const int tier = d.tier;
    // Chain safety: a delta is only valid against the exact frame the bank's
    // tier chain references, and only for a client that received that frame
    // at that tier. Anything else — join, post-drop, tier switch, fresh
    // chain — re-anchors with a keyframe.
    const bool key = d.keyframe || c.needs_keyframe || c.chain_tier != tier ||
                     bank_.ref_step(tier) < 0 ||
                     bank_.ref_step(tier) != c.chain_step;
    bool drop = d.drop;
    std::shared_ptr<const std::vector<std::uint8_t>> wire;
    if (!drop) {
      // Encode stage of the e2e waterfall: the wall cost of materializing
      // this client's wire bytes (an actual encode on first demand, a
      // near-free bank/cache reuse after — the histogram shows both modes).
      const bool timed = metrics::enabled() || obs::lineage::enabled();
      const std::int64_t t0 = timed ? trace::now_since_epoch_ns() : 0;
      wire = key ? fetch_key(tier) : bank_.delta(tier);
      if (timed) {
        const double enc_s = double(trace::now_since_epoch_ns() - t0) * 1e-9;
        if (metrics::enabled()) m.e2e_encode.observe(enc_s);
        if (obs::lineage::enabled()) {
          obs::lineage::record_wall(obs::lineage::Stage::kEncode, step, epoch_,
                                    obs::lineage::ChannelKind::kClient,
                                    c.rep.id, enc_s);
        }
      }
      // The byte budget is the hard isolation boundary: a client that can't
      // take this frame within budget loses THIS frame only.
      if (c.link->in_flight_bytes() + wire->size() > cfg_.queue_budget_bytes)
        drop = true;
    }
    if (drop) {
      trace::instant("server", "drop", step);
      ++c.rep.frames_dropped;
      ++rep_.frames_dropped;
      m.dropped.add();
      if (obs::lineage::enabled()) {
        obs::lineage::record_virtual(obs::lineage::Stage::kDrop, step, epoch_,
                                     obs::lineage::ChannelKind::kClient,
                                     c.rep.id, now);
      }
      // Re-anchor: after a gap the client must never receive a delta
      // against a frame it was never sent.
      c.needs_keyframe = true;
      continue;
    }
    {
      trace::Span enq("server", "enqueue", step);
      c.link->send(now, step, std::vector<std::uint8_t>(*wire));
    }
    if (obs::lineage::enabled()) {
      obs::lineage::record_virtual(obs::lineage::Stage::kEnqueue, step, epoch_,
                                   obs::lineage::ChannelKind::kClient,
                                   c.rep.id, now);
    }
    ++c.rep.frames_sent;
    ++rep_.frames_sent;
    c.rep.bytes_sent += wire->size();
    rep_.bytes_out += wire->size();
    m.frames_sent.add();
    m.bytes_out.add(wire->size());
    if (key) {
      ++c.rep.keyframes_sent;
      m.keyframes.add();
    }
    c.chain_tier = tier;
    c.chain_step = step;
    c.needs_keyframe = false;
  }

  const std::uint64_t ne = bank_.encodes() - encodes_before;
  const std::uint64_t nr = bank_.reuses() - reuses_before;
  rep_.encodes += ne;
  rep_.encode_reuses += nr;
  if (ne) m.encodes.add(ne);
  if (nr) m.encode_reuses.add(nr);
  observe_queues();
}

void DeliveryServer::poll(double now) {
  for (auto& cp : clients_) service(*cp, now);
  observe_queues();
}

int DeliveryServer::connected_clients() const {
  int n = 0;
  for (const auto& c : clients_)
    if (c->connected) ++n;
  return n;
}

std::size_t DeliveryServer::total_queue_bytes() const {
  std::size_t total = 0;
  for (const auto& c : clients_)
    if (c->connected && c->link) total += c->link->in_flight_bytes();
  return total;
}

const ClientReport& DeliveryServer::client(int id) const {
  return clients_.at(std::size_t(id))->rep;
}

ServerReport DeliveryServer::finish() {
  auto& m = ServerMetrics::get();
  for (auto& cp : clients_) {
    Client& c = *cp;
    if (!c.connected || !c.link) continue;
    // Graceful shutdown: stragglers finish crossing and reach the viewer.
    handle_batch(c, c.link->drain());
    c.link.reset();
    c.connected = false;
    c.rep.connected = true;  // connected through the end of the run
  }
  m.queue_bytes.set(0.0);
  m.clients.set(0.0);
  rep_.clients.clear();
  rep_.clients.reserve(clients_.size());
  for (auto& c : clients_) rep_.clients.push_back(c->rep);
  return rep_;
}

// --- fleet helper -----------------------------------------------------------

std::vector<ClientLinkConfig> make_fleet(const ServeFleetConfig& cfg) {
  // Fail the whole fleet up front rather than letting the first WanLink
  // constructor throw mid-join: a non-positive bandwidth here is always a
  // misconfiguration (the old "0 means infinite" reading produced
  // zero-virtual-time transfers that inflated bench numbers).
  if (!(cfg.bandwidth_hi > 0.0) || !std::isfinite(cfg.bandwidth_hi))
    throw std::invalid_argument(
        "make_fleet: bandwidth_hi must be finite and > 0, got " +
        std::to_string(cfg.bandwidth_hi));
  if (cfg.bandwidth_lo < 0.0 || !std::isfinite(cfg.bandwidth_lo))
    throw std::invalid_argument(
        "make_fleet: bandwidth_lo must be finite and >= 0, got " +
        std::to_string(cfg.bandwidth_lo));
  std::vector<ClientLinkConfig> fleet;
  fleet.reserve(std::size_t(std::max(cfg.count, 0)));
  for (int i = 0; i < cfg.count; ++i) {
    ClientLinkConfig c;
    c.latency_s = cfg.latency_s;
    if (cfg.bandwidth_lo > 0.0 && cfg.count > 1) {
      // Log spread: client 0 at hi, the last at lo, geometric in between —
      // the heterogeneity the isolation invariant exists for.
      const double t = double(i) / double(cfg.count - 1);
      c.bandwidth_bytes_per_s =
          cfg.bandwidth_hi * std::pow(cfg.bandwidth_lo / cfg.bandwidth_hi, t);
    } else {
      c.bandwidth_bytes_per_s = cfg.bandwidth_hi;
    }
    if (cfg.outage_seed != 0 && i % 3 == 2) {
      // Every third client flaps; each outage schedule is independently
      // derived so populations never perturb each other's plans.
      std::uint64_t s =
          cfg.outage_seed + std::uint64_t(i) * 0x9e3779b97f4a7c15ULL;
      c.fault.enabled = true;
      c.fault.seed = splitmix64(s);
      c.fault.mean_up_seconds = 4.0;
      c.fault.mean_down_seconds = 1.0;
      c.fault.degraded_factor = 0.0;
    }
    fleet.push_back(c);
  }
  return fleet;
}

}  // namespace qv::stream
