#include "stream/replay.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "metrics/metrics.hpp"
#include "obs/lineage.hpp"
#include "stream/chaos.hpp"
#include "trace/trace.hpp"
#include "util/rng.hpp"
#include "util/sha256.hpp"

namespace qv::stream {

namespace {

struct ReplayMetrics {
  metrics::Counter& requests = metrics::counter("stream.replay.requests");
  metrics::Counter& renders = metrics::counter("stream.replay.renders");
  metrics::Counter& served = metrics::counter("stream.replay.cache_served");
  metrics::Histogram& e2e_encode = metrics::histogram(
      "stream.e2e.encode", metrics::HistogramSpec::duration_seconds());
  metrics::Histogram& e2e_queue_wait = metrics::histogram(
      "stream.e2e.queue_wait", metrics::HistogramSpec::duration_seconds());
  metrics::Histogram& e2e_wire = metrics::histogram(
      "stream.e2e.wire", metrics::HistogramSpec::duration_seconds());
  static ReplayMetrics& get() {
    static ReplayMetrics m;
    return m;
  }
};

// Exact order statistic: smallest value covering >= p% of the sorted mass.
double percentile_sorted(const std::vector<double>& sorted, int p) {
  if (sorted.empty()) return 0.0;
  const std::size_t idx = (sorted.size() * std::size_t(p) + 99) / 100;
  return sorted[std::max<std::size_t>(idx, 1) - 1];
}

// Seed for the synthetic frame source. Fixed — NOT derived from cfg.seed —
// because the cache address does not cover it: the same (step, tier) must
// render the same pixels no matter which request trace asks for it, exactly
// like re-visualizing a dataset already on disk.
constexpr std::uint64_t kFrameSeed = 99;

template <typename T>
void put_pod(util::Sha256& h, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  h.update(&v, sizeof(v));
}

// Zipf(s) CDF over ranks 0..n-1: p_k proportional to 1/(k+1)^s.
std::vector<double> zipf_cdf(int n, double s) {
  std::vector<double> cdf(static_cast<std::size_t>(n));
  double total = 0.0;
  for (int k = 0; k < n; ++k) {
    total += std::pow(double(k + 1), -s);
    cdf[std::size_t(k)] = total;
  }
  for (auto& c : cdf) c /= total;
  cdf.back() = 1.0;  // guard against accumulated rounding
  return cdf;
}

int sample(const std::vector<double>& cdf, double u) {
  auto it = std::upper_bound(cdf.begin(), cdf.end(), u);
  if (it == cdf.end()) --it;
  return int(it - cdf.begin());
}

}  // namespace

ReplayReport run_replay(const ReplayConfig& cfg) {
  if (cfg.steps <= 0 || cfg.tiers <= 0 || cfg.clients <= 0)
    throw std::invalid_argument("run_replay: steps/tiers/clients must be > 0");
  if (cfg.tiers > img::kMaxQuantizeTier + 1)
    throw std::invalid_argument("run_replay: tiers exceeds quantization range");

  auto& m = ReplayMetrics::get();
  ReplayReport rep;
  FrameCache cache(cfg.cache);
  // One address space per dataset: anything that changed the pixels would
  // have to change these fields (the synthetic source is pinned; see
  // kFrameSeed above).
  CacheIdentity identity;
  identity.dataset_id = "replay:chaos_frame";
  identity.camera_hash =
      hash64(std::to_string(cfg.width) + "x" + std::to_string(cfg.height));
  identity.tf_hash = hash64("chaos-default-tf");

  std::vector<std::unique_ptr<WanLink>> links;
  links.reserve(std::size_t(cfg.clients));
  for (int i = 0; i < cfg.clients; ++i) {
    WanLinkConfig lc;
    lc.bandwidth_bytes_per_s = cfg.link.bandwidth_bytes_per_s;
    lc.latency_s = cfg.link.latency_s;
    lc.fault = cfg.link.fault;
    links.push_back(std::make_unique<WanLink>(lc));
  }

  const std::vector<double> cdf = zipf_cdf(cfg.steps, cfg.zipf_s);
  // Digest recorded at miss time, for byte-verifying later hits.
  std::unordered_map<CacheKey, std::array<std::uint8_t, 32>, CacheKeyHash>
      golden;

  Rng rng(cfg.seed);
  util::Sha256 log;
  FrameEncoder encoder(cfg.width, cfg.height);
  // Per-client delivery latencies, for the report's exact e2e percentiles.
  std::vector<std::vector<double>> client_lat(std::size_t(cfg.clients));
  // Every replay delivery crosses the same uniform link; the excess over
  // this ideal solo crossing is queue wait behind earlier frames.
  const double bw = links[0]->config().bandwidth_bytes_per_s;
  const double prop = links[0]->config().latency_s;
  auto observe_delivery = [&](int client, const DeliveredFrame& d) {
    const double lat = d.delivered_at - d.sent_at;
    client_lat[std::size_t(client)].push_back(lat);
    if (metrics::enabled()) {
      m.e2e_wire.observe(lat);
      m.e2e_queue_wait.observe(
          std::max(0.0, lat - (double(d.bytes) / bw + prop)));
    }
    if (obs::lineage::enabled()) {
      obs::lineage::record_virtual(obs::lineage::Stage::kWire, d.step,
                                   /*epoch=*/0,
                                   obs::lineage::ChannelKind::kClient, client,
                                   d.sent_at, lat);
    }
  };
  for (std::uint64_t i = 0; i < cfg.requests; ++i) {
    const double now = double(i) * cfg.interval_s;
    const int client = int(rng.next_below(std::uint64_t(cfg.clients)));
    const int step = sample(cdf, rng.next_double());
    const int tier = int(rng.next_below(std::uint64_t(cfg.tiers)));
    trace::Span span("replay", "request", step);
    const CacheKey key = content_address(identity, step, tier, FrameKind::kKey);

    const bool timed = metrics::enabled() || obs::lineage::enabled();
    const std::int64_t lookup_t0 = timed ? trace::now_since_epoch_ns() : 0;
    FrameCache::Wire wire = cache.get(key);
    if (obs::lineage::enabled()) {
      obs::lineage::record_wall(
          obs::lineage::Stage::kCacheLookup, step, /*epoch=*/0,
          obs::lineage::ChannelKind::kClient, client,
          double(trace::now_since_epoch_ns() - lookup_t0) * 1e-9);
    }
    bool hit = wire != nullptr;
    if (hit) {
      ++rep.cache_served;
      m.served.add();
      if (cfg.verify) {
        util::Sha256 h;
        h.update(wire->data(), wire->size());
        auto it = golden.find(key);
        if (it == golden.end() || it->second != h.digest())
          ++rep.verify_failures;
      }
    } else {
      // Miss: render the frame and encode a self-contained keyframe — the
      // only kind the cache stores (see stream/cache.hpp).
      const std::int64_t enc_t0 = timed ? trace::now_since_epoch_ns() : 0;
      const img::Image8 frame =
          chaos_frame(cfg.width, cfg.height, kFrameSeed, step);
      auto wire_vec = encoder.encode(step, frame, tier, /*keyframe=*/true);
      if (timed) {
        const double enc_s =
            double(trace::now_since_epoch_ns() - enc_t0) * 1e-9;
        if (metrics::enabled()) m.e2e_encode.observe(enc_s);
        if (obs::lineage::enabled()) {
          obs::lineage::record_wall(obs::lineage::Stage::kEncode, step,
                                    /*epoch=*/0,
                                    obs::lineage::ChannelKind::kClient,
                                    client, enc_s);
        }
      }
      ++rep.renders;
      m.renders.add();
      if (cfg.verify) {
        util::Sha256 h;
        h.update(wire_vec.data(), wire_vec.size());
        golden[key] = h.digest();
      }
      wire = std::make_shared<const std::vector<std::uint8_t>>(
          std::move(wire_vec));
      cache.put(key, wire);
    }

    ++rep.requests;
    m.requests.add();
    rep.bytes_served += wire->size();
    put_pod(log, i);
    put_pod(log, client);
    put_pod(log, step);
    put_pod(log, tier);
    put_pod(log, std::uint8_t(hit));
    put_pod(log, std::uint64_t(wire->size()));

    links[std::size_t(client)]->send(now, step,
                                     std::vector<std::uint8_t>(*wire));
    if (obs::lineage::enabled()) {
      obs::lineage::record_virtual(obs::lineage::Stage::kEnqueue, step,
                                   /*epoch=*/0,
                                   obs::lineage::ChannelKind::kClient, client,
                                   now);
    }
    for (auto& d : links[std::size_t(client)]->poll(now)) {
      ++rep.frames_delivered;
      observe_delivery(client, d);
      put_pod(log, d.step);
      put_pod(log, d.delivered_at);
      put_pod(log, std::uint64_t(d.bytes));
    }
  }
  for (std::size_t c = 0; c < links.size(); ++c) {
    for (auto& d : links[c]->drain()) {
      ++rep.frames_delivered;
      observe_delivery(int(c), d);
      put_pod(log, std::uint64_t(c));
      put_pod(log, d.step);
      put_pod(log, d.delivered_at);
      put_pod(log, std::uint64_t(d.bytes));
    }
  }
  std::vector<double> pooled;
  for (int c = 0; c < cfg.clients; ++c) {
    auto& lat = client_lat[std::size_t(c)];
    std::sort(lat.begin(), lat.end());
    ReplayReport::ClientE2e e;
    e.id = c;
    e.frames = lat.size();
    e.p50_s = percentile_sorted(lat, 50);
    e.p95_s = percentile_sorted(lat, 95);
    rep.client_e2e.push_back(e);
    pooled.insert(pooled.end(), lat.begin(), lat.end());
  }
  std::sort(pooled.begin(), pooled.end());
  rep.e2e_p50_s = percentile_sorted(pooled, 50);
  rep.e2e_p95_s = percentile_sorted(pooled, 95);

  rep.cache = cache.stats();
  rep.hit_rate =
      rep.requests ? double(rep.cache_served) / double(rep.requests) : 0.0;
  // Compulsory-miss expectation: exact when nothing was evicted (every miss
  // is a first touch). Catalog items are (step, tier) pairs with
  // p = zipf(step) / tiers.
  const double r = double(cfg.requests);
  double expected_misses = 0.0;
  double prev = 0.0;
  for (int k = 0; k < cfg.steps; ++k) {
    const double pk = cdf[std::size_t(k)] - prev;
    prev = cdf[std::size_t(k)];
    const double p = pk / double(cfg.tiers);
    expected_misses += double(cfg.tiers) * (1.0 - std::pow(1.0 - p, r));
  }
  rep.expected_hit_rate = r > 0.0 ? 1.0 - expected_misses / r : 0.0;

  const auto d = log.digest();
  rep.digest = util::Sha256::hex(d.data(), d.size());
  return rep;
}

}  // namespace qv::stream
