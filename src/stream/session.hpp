// The output processor's end of the remote frame-delivery path.
//
// A StreamSession ties the pieces together: each composited 8-bit frame is
// offered with the pipeline's wall-clock time; the session polls the
// simulated WAN link for frames that finished crossing by then, decodes
// them with an in-process viewer (FrameDecoder) to measure display latency
// and verify integrity, reads the resulting queue depth, asks the
// DegradationController what to do, and either drops the frame or encodes
// and sends it. finish() drains the link, optionally writes the delivered
// wire frames to a record file for `quakeviz view`, and returns the
// per-run StreamReport.
//
// Single-threaded by construction: only the output rank touches a session.
// Every decision is visible as trace spans ("stream"/"encode") and metrics
// (stream.bytes_out, stream.dropped_frames, stream.queue_depth, ...).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "stream/control.hpp"
#include "stream/controller.hpp"
#include "stream/frame_codec.hpp"
#include "stream/link.hpp"

namespace qv::stream {

// Frames as the in-process viewer saw them — tests use this to compare
// delivered pixels against the PPMs the output processor wrote locally.
struct StreamCapture {
  struct Frame {
    int step = 0;
    int tier = 0;
    bool keyframe = false;
    double latency_s = 0.0;  // delivered_at - sent_at on the link clock
    img::Image8 image;
    std::uint32_t epoch = 0;  // view epoch echoed by the frame header
  };
  std::vector<Frame> frames;
  std::vector<int> dropped_steps;
};

struct StreamConfig {
  bool enabled = false;
  double bandwidth_bytes_per_s = 8e6;
  double latency_s = 0.02;
  ControllerConfig controller;
  sim::BandwidthFaultConfig fault;
  std::string record_path;          // when set, finish() writes a record file
  StreamCapture* capture = nullptr; // test hook: in-process viewer output
};

struct StreamReport {
  std::uint64_t frames_submitted = 0;
  std::uint64_t frames_delivered = 0;
  std::uint64_t frames_dropped = 0;
  std::uint64_t keyframes = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t decode_failures = 0;
  std::size_t peak_queue_bytes = 0;  // most wire bytes in flight at once
  double avg_display_latency_s = 0.0;
  double max_display_latency_s = 0.0;
  int final_level = 0;
  int peak_level = 0;
  // One entry per delivered frame (link virtual time): the run report's
  // exact e2e percentiles and the SLO verdict are computed from these.
  std::vector<double> delivery_latencies_s;
};

class StreamSession {
 public:
  StreamSession(const StreamConfig& cfg, int width, int height);

  // Offer the frame for step `step` at wall-clock time `now` (seconds since
  // pipeline start). May drop it; never blocks.
  void submit(double now, int step, const img::Image8& frame);

  // View epoch stamped into frame headers and lineage events from the next
  // encode on ((step, epoch) is the end-to-end frame id).
  void set_epoch(std::uint32_t epoch);

  // A steering edit was applied: stamp the new epoch and drop the encoder's
  // delta reference, forcing the next frame to a keyframe — same contract
  // as DeliveryServer::apply_view_change, for the point-to-point path. The
  // degradation controller's level/credit survive (an edit is not a
  // network event).
  void apply_view_change(std::uint32_t epoch);

  // Where the remote viewer's steering edits land (see stream/control.hpp).
  SteerInbox& steer_inbox() { return steer_inbox_; }

  // Drain the link, write the record file if configured, return the report.
  StreamReport finish();

 private:
  void handle_deliveries(std::vector<DeliveredFrame> delivered);

  std::uint32_t epoch_ = 0;
  StreamConfig cfg_;
  SteerInbox steer_inbox_;
  FrameEncoder encoder_;
  FrameDecoder viewer_;  // in-process viewer: decode + verify + latency
  WanLink link_;
  DegradationController controller_;
  StreamReport rep_;
  double latency_sum_ = 0.0;
  std::vector<std::vector<std::uint8_t>> record_;
};

}  // namespace qv::stream
