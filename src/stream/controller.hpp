// Backpressure policy for the frame-delivery path.
//
// The output processor must never let a slow link stall the pipeline: the
// send queue is bounded, and when it backs up the controller degrades the
// stream instead of blocking — first by stepping the lossy quantization
// tier up one level at a time, then, past the last tier, by switching to
// keyframe-only mode (every frame self-contained, so drops cost nothing
// but the dropped frame). When the link recovers the controller steps back
// down one level per `recover_after` consecutive low-water observations,
// so a recovered link returns to lossless within a bounded number of
// frames: recover_after * (max_tier + 1).
//
// The policy is a pure function of observed queue depth — deterministic,
// unit-testable against scripted depth traces, no wall-clock input.
#pragma once

#include <algorithm>

namespace qv::stream {

struct ControllerConfig {
  int queue_capacity = 8;  // frames in flight at which we drop outright
  int high_water = 4;      // depth at which we escalate one level
  int low_water = 1;       // depth at or below which we accrue recovery credit
  int recover_after = 3;   // consecutive low-water frames per de-escalation
  int max_tier = 2;        // highest quantization tier before keyframe-only
};

struct Decision {
  int tier = 0;          // quantization tier for this frame
  bool keyframe = false; // force a self-contained frame
  bool drop = false;     // skip this frame entirely
  int level = 0;         // controller level after this observation
};

class DegradationController {
 public:
  explicit DegradationController(ControllerConfig cfg = {}) : cfg_(cfg) {
    cfg_.max_tier = std::clamp(cfg_.max_tier, 0, 3);
    cfg_.queue_capacity = std::max(cfg_.queue_capacity, 1);
    cfg_.high_water = std::clamp(cfg_.high_water, 1, cfg_.queue_capacity);
    cfg_.low_water = std::clamp(cfg_.low_water, 0, cfg_.high_water - 1);
    cfg_.recover_after = std::max(cfg_.recover_after, 1);
  }

  // Levels 0..max_tier encode "delta frames at tier = level"; one past that
  // is keyframe-only at max_tier.
  int max_level() const { return cfg_.max_tier + 1; }
  int level() const { return level_; }
  const ControllerConfig& config() const { return cfg_; }

  // One observation per produced frame, BEFORE encoding it: `queue_depth`
  // is the number of frames still in flight on the link.
  Decision on_frame(int queue_depth) {
    if (queue_depth >= cfg_.high_water) {
      level_ = std::min(level_ + 1, max_level());
      credit_ = 0;
    } else if (queue_depth <= cfg_.low_water) {
      if (++credit_ >= cfg_.recover_after) {
        level_ = std::max(level_ - 1, 0);
        credit_ = 0;
      }
    } else {
      credit_ = 0;  // mid-band: hold
    }
    Decision d;
    d.drop = queue_depth >= cfg_.queue_capacity;
    d.keyframe = level_ == max_level();
    d.tier = std::min(level_, cfg_.max_tier);
    d.level = level_;
    return d;
  }

 private:
  ControllerConfig cfg_;
  int level_ = 0;
  int credit_ = 0;
};

}  // namespace qv::stream
