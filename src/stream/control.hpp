// Viewer→renderer steering: the reverse control channel of the delivery
// path (ROADMAP item 3; the MovieMaker paper's interactive mode).
//
// Three edit kinds arrive mid-run — camera moves, transfer-function window
// edits, and timestep scrubs — each framed as a fixed 32-byte QVCT wire
// message, CRC-protected like every other wire header in the pipeline.
// decode_steer is a hostile-input boundary (see the SteerCodecFuzz wall):
// malformed, truncated, or bit-flipped input comes back std::nullopt —
// never a crash, never a repaired message.
//
// Request ids and the view epoch. Every admitted edit gets a monotonically
// assigned request_id (1, 2, 3, ...). The driver folds edits in id order
// and stamps the NEWEST applied id into the frame-header `epoch` field, so
// the on-wire frames themselves echo which edits they reflect: a frame with
// epoch >= R provably renders the view with edit R (and everything before
// it) applied. Because the inbox coalesces latest-wins PER KIND and the
// fold is order-preserving, "the view at epoch E" is well defined: fold all
// admitted edits with id <= E. The stale/fresh property wall
// (tests/stream/test_steer.cpp) holds the whole stack to that contract.
//
// Edits and view epochs are exclusive with rebalance-driven epochs: a run
// steers OR rebalances, never both (run_pipeline rejects the combination),
// so the epoch field has a single owner.
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace qv::stream {

inline constexpr std::uint32_t kSteerMagic = 0x54435651u;  // "QVCT"
inline constexpr std::uint16_t kSteerVersion = 1;

enum class SteerKind : std::uint8_t {
  kCamera = 0,    // f0 = absolute orbit azimuth, degrees
  kTransfer = 1,  // f0 = value_lo, f1 = value_hi (normalization window)
  kScrub = 2,     // f0 = target timestep (serve loop only)
};
inline constexpr int kSteerKinds = 3;

struct SteerMsg {
  SteerKind kind = SteerKind::kCamera;
  std::uint32_t request_id = 0;  // 0 on the client side; assigned on admit
  std::int32_t client_id = -1;   // requesting viewer (-1: local/scripted)
  float f0 = 0.0f, f1 = 0.0f, f2 = 0.0f;  // payload, meaning per kind
};

inline constexpr std::size_t kSteerWireSize = 32;

std::vector<std::uint8_t> encode_steer(const SteerMsg& m);
std::optional<SteerMsg> decode_steer(std::span<const std::uint8_t> wire);
// Cheap dispatch: does this buffer claim to be a steering message?
bool is_steer_wire(std::span<const std::uint8_t> wire);

// --- the inbox --------------------------------------------------------------
// Where viewer edits land on the server/session. Admission decodes at the
// hostile boundary, assigns the monotone request_id, and coalesces bursts
// latest-wins per kind: a viewer dragging the camera through 500 positions
// between two frames costs one pending camera edit, not 500 renders. The
// driver drains at frame boundaries and folds in id order.
//
// Thread-safe: the live serve loop posts from a monitor/ingest thread while
// the render thread drains (the TSan cancellation stress exercises this).
class SteerInbox {
 public:
  // Decode + admit one wire message. Returns the assigned request id;
  // nullopt if the wire is malformed (rejected, inbox untouched).
  std::optional<std::uint32_t> post_wire(std::span<const std::uint8_t> wire);
  // Already-decoded path (scripted traces, tests). Returns the assigned id.
  std::uint32_t post(SteerMsg m);

  bool pending() const;
  // The newest pending message per kind, sorted by request_id ascending
  // (fold order), and clears the slots. Ids keep advancing across drains.
  std::vector<SteerMsg> drain();

  // Newest id ever assigned (0 = none yet).
  std::uint32_t last_assigned() const;
  std::uint64_t posted() const;     // admitted edits
  std::uint64_t coalesced() const;  // admitted edits superseded before drain
  std::uint64_t rejected() const;   // malformed wires refused at the boundary

 private:
  mutable std::mutex mu_;
  std::uint32_t next_id_ = 1;
  std::array<std::optional<SteerMsg>, kSteerKinds> slots_{};
  std::uint64_t posted_ = 0, coalesced_ = 0, rejected_ = 0;
};

// --- driver-side steering state ---------------------------------------------
// The fold: current camera/TF/scrub targets plus the newest applied request
// id (== the view epoch to stamp into frame headers). apply() returns true
// when the VIEW changed (camera or TF), i.e. in-flight renders of older
// epochs are stale and the delta chains must be reset before the next frame.
struct SteeringState {
  float azimuth_deg = 0.0f;
  float value_lo = 0.0f;
  float value_hi = 1.0f;
  std::int32_t scrub_step = -1;  // -1: no pending scrub
  std::uint32_t epoch = 0;       // newest applied request id
  std::uint64_t applied = 0;     // edits folded in so far

  bool apply(const SteerMsg& m);
  // Consume a pending scrub target (returns -1 if none).
  std::int32_t take_scrub();
};

// --- scripted traces --------------------------------------------------------
// Deterministic edit schedules for replay, benches, and CI: event `step`
// names the frame boundary the edit arrives at (scripted mode) or the frame
// whose render it interrupts (live mode).
struct SteerEvent {
  int step = 0;
  SteerMsg msg;
};

// Seeded synthetic trace: `edits` camera/TF edits (plus scrubs when
// `allow_scrub`) spread over (0, steps). Same seed, same trace — the CI
// smoke and the property wall replay these byte-for-byte.
std::vector<SteerEvent> make_steer_trace(std::uint64_t seed, int steps,
                                         int edits, bool allow_scrub = false);

// Text format for `--steer-trace=F`: one event per line,
//   <step> camera <azimuth_deg>
//   <step> transfer <value_lo> <value_hi>
//   <step> scrub <target_step>
// '#' comments and blank lines ignored. Strict: any malformed line fails
// the whole load (err names the line).
std::optional<std::vector<SteerEvent>> load_steer_trace(
    const std::string& path, std::string* err = nullptr);
bool save_steer_trace(const std::string& path,
                      std::span<const SteerEvent> trace);

// Stable-sort by step and assign request ids 1, 2, 3, ... in that order —
// exactly the ids a SteerInbox would hand the same events posted at their
// step boundaries. Config-distributed steering (the pipeline drivers)
// numbers the trace once so EVERY rank derives the same id→view map with no
// runtime broadcast.
std::vector<SteerEvent> number_steer_trace(std::vector<SteerEvent> trace);

// The view at step `s`: fold every numbered event with ev.step <= s into
// `base` in trace order. base carries the run's un-steered camera/TF window.
SteeringState fold_steer_trace(std::span<const SteerEvent> trace, int step,
                               SteeringState base);

}  // namespace qv::stream
