// The steered serve loop: a single-process render→deliver loop with the
// viewer→renderer control channel closed end to end.
//
// This is the harness behind `quakeviz serve --steer-*`, the stale/fresh
// property wall, the TSan cancellation stress, and bench_steering. One
// synthetic scene (deterministic from the seed) is rendered frame after
// frame and fanned out through a DeliveryServer over the virtual-time WAN;
// steering edits arrive through the QVCT hostile boundary into the server's
// inbox, are drained and folded at frame boundaries, and every fold bumps
// the view epoch, invalidates the delta chains, and emits a steer_apply
// lineage event. Two modes:
//
//   scripted (live=false) — trace events post at the frame boundary their
//     `step` names. No threads, no wall clock in the loop: byte-identical
//     runs per seed, which is what the property wall and the CI smoke
//     replay.
//   live (live=true) — a monitor thread posts each event partway through
//     the render of frame `step` and (when cancellation is on) fires the
//     CancelToken, so the renderer aborts the now-stale frame instead of
//     completing it into the trash. This is where edit-to-first-fresh-frame
//     latency is real and bench_steering measures it.
//
// Invariants checked per run (check_invariants): every delivered frame's
// epoch echo matches the epoch its step was rendered under, its pixels are
// exactly the tier-quantized submitted frame (SHA-256), no delta's base
// crosses an epoch boundary, and the first frame a client sees after an
// epoch change is a keyframe — for every client, including mid-run joiners.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "img/image.hpp"
#include "stream/control.hpp"
#include "stream/server.hpp"
#include "util/thread_pool.hpp"

namespace qv::render {
class Raycaster;
}

namespace qv::stream {

struct SteerLoopConfig {
  int width = 160;
  int height = 120;
  int frames = 30;       // frames to submit
  int level = 3;         // synthetic octree refinement
  int block_level = 1;   // block decomposition depth
  int render_threads = 2;
  std::uint64_t seed = 1;
  bool live = false;         // monitor thread + mid-render posting
  bool cancellation = true;  // live mode: honor the CancelToken
  // Live mode: post each event after this fraction of a calibrated render.
  double fire_fraction = 0.25;
  double frame_interval_s = 0.05;  // virtual time between submits
  std::vector<SteerEvent> trace;
  // Clients with index % 3 == 2 join at this frame instead of 0 when >= 0
  // (mid-run joiners for the property wall).
  int late_join_frame = -1;
  ServeFleetConfig fleet;  // fleet.count / bandwidths / fleet.server
  bool check_invariants = true;
};

struct SteerLoopReport {
  ServerReport server;
  std::uint64_t renders = 0;            // render attempts (incl. cancelled)
  std::uint64_t cancelled_renders = 0;  // aborted mid-flight, never submitted
  std::uint64_t edits_applied = 0;
  std::uint32_t final_epoch = 0;
  // Per submitted frame, in order: the epoch it was rendered under, the
  // field timestep it showed, and the SHA-256 of its 8-bit pixels.
  std::vector<std::uint32_t> epochs;
  std::vector<int> field_steps;
  std::vector<std::string> submitted_sha256;
  // The fold history: (epoch, view after applying it), starting at (0,
  // the base view). The view serving epoch E is the last entry <= E.
  std::vector<std::pair<std::uint32_t, SteeringState>> views;
  // Per applied edit: latency from post to the first SUBMITTED frame whose
  // epoch covers it — wall seconds in live mode, virtual in scripted.
  std::vector<double> edit_to_fresh_s;
  std::vector<std::string> violations;  // empty = all invariants held
};

// The deterministic synthetic scene the loop renders: a seeded block
// decomposition with a time-varying analytic field. Public so tests can
// re-render a (view, step) reference independently of the loop.
class SteerScene {
 public:
  SteerScene(const SteerLoopConfig& cfg);
  ~SteerScene();
  SteerScene(const SteerScene&) = delete;
  SteerScene& operator=(const SteerScene&) = delete;

  // Serial reference render of `view` at field timestep `step`.
  img::Image8 render(const SteeringState& view, int step);

  // Cancellable render on `pool` (bit-identical to render() when it
  // completes); nullopt when the token fired mid-frame.
  std::optional<img::Image8> render_cancellable(const SteeringState& view,
                                                int step,
                                                util::ThreadPool* pool,
                                                const util::CancelToken* cancel);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

SteerLoopReport run_steer_loop(const SteerLoopConfig& cfg);

}  // namespace qv::stream
