// Multi-viewer delivery server: one frame stream fanned out to N simulated
// clients with per-client fault isolation.
//
// The generalization of StreamSession (one point-to-point link) to the
// paper's endgame topology: many heterogeneous remote viewers watching the
// same run. Three failure modes dominate at that scale, and the server makes
// each impossible by construction rather than unlikely by tuning:
//
//  * A slow client must never cost encode CPU or stall a fast one. Every
//    (frame, tier, kind) is encoded ONCE by the shared FrameEncoderBank and
//    the wire bytes fanned out; each client has its own WanLink (own virtual
//    clock, bandwidth, outage schedule), so backpressure isolation is a
//    structural property, not a scheduling hope.
//  * A slow client must cost bounded queue memory. Each client has a byte
//    budget over its in-flight wire bytes; a frame that would exceed it is
//    dropped FOR THAT CLIENT ONLY, and the next frame it does receive is a
//    keyframe (drop-then-re-anchor), so a drop can never silently corrupt
//    the delta chain.
//  * A delta must never be applied against state the client lost. Joins and
//    reconnects start with a keyframe; an outage longer than the evict
//    timeout tears the connection down (queued bytes discarded — the client
//    lost them) and a reconnect gets a fresh decoder plus a keyframe. Tier
//    changes re-anchor too: a tier-t delta is sent only to a client whose
//    last received step is exactly the tier-t chain's reference.
//
// Everything is deterministic given the caller's clock and the seeded link
// configs: the chaos harness (src/stream/chaos.hpp) runs 512-client sweeps
// and asserts bit-identical digests per seed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "stream/cache.hpp"
#include "stream/control.hpp"
#include "stream/controller.hpp"
#include "stream/frame_codec.hpp"
#include "stream/link.hpp"

namespace qv::stream {

// --- control messages -------------------------------------------------------
// Session-control framing sent over a client's link alongside frames:
// join/leave acknowledgements and eviction notices. Fixed 32-byte layout,
// CRC-protected like every wire header in the pipeline. decode_control is a
// hostile-input boundary (see the ControlCodecFuzz wall): malformed,
// truncated, or bit-flipped input comes back std::nullopt — never a crash,
// never a misparsed message.

inline constexpr std::uint32_t kControlMagic = 0x43535651u;  // "QVSC"
inline constexpr std::uint16_t kControlVersion = 1;

enum class ControlKind : std::uint8_t { kJoinAck = 0, kLeaveAck = 1, kEvict = 2 };

struct ControlMsg {
  ControlKind kind = ControlKind::kJoinAck;
  std::int32_t client_id = -1;
  std::int32_t step = -1;  // last submitted step when the event happened
  double time = 0.0;       // server clock at emission
};

inline constexpr std::size_t kControlWireSize = 32;

std::vector<std::uint8_t> encode_control(const ControlMsg& m);
std::optional<ControlMsg> decode_control(std::span<const std::uint8_t> wire);
// Cheap dispatch for a delivery loop: does this buffer claim to be a
// control message (as opposed to a frame)?
bool is_control_wire(std::span<const std::uint8_t> wire);

// --- configuration ----------------------------------------------------------

// One simulated viewer's connection characteristics.
struct ClientLinkConfig {
  double bandwidth_bytes_per_s = 8e6;
  double latency_s = 0.02;
  sim::BandwidthFaultConfig fault;  // seeded outage windows (optional)
};

// Test/harness hook: every frame a verified client successfully decodes, in
// delivery order, with the client id attached — the stale/fresh property
// wall compares these pixels and epoch echoes against reference renders.
struct ServerCapture {
  struct Frame {
    int client = -1;
    int step = 0;
    std::uint32_t epoch = 0;
    int tier = 0;
    int base_step = -1;
    bool keyframe = false;
    img::Image8 image;
  };
  std::vector<Frame> frames;
};

struct ServerConfig {
  // Per-client cap on queued (in-flight) wire bytes. A frame that would
  // push a client past it is dropped for that client and the client
  // re-anchors on the next keyframe. Must fit at least one keyframe at the
  // coarsest tier or a backlogged client can never re-anchor.
  std::size_t queue_budget_bytes = 1u << 20;
  // A connected client whose queue has made no progress for this long is
  // evicted: connection torn down, queued bytes discarded.
  double evict_timeout_s = 10.0;
  // Per-client degradation policy (each client gets its own controller).
  ControllerConfig controller;
  // Decode every delivered frame with an in-process per-client viewer and
  // record (step, kind, tier, latency). The chaos invariants need it; the
  // large-fleet bench can turn it off to time the server side alone.
  bool verify_clients = true;
  // Optional content-addressed cache of encoded keyframes, shared across
  // servers/sessions of the same content. When set, the keyframe path
  // consults it before the encoder bank: a hit serves the stored wire with
  // no encode (the bank is told via note_emitted so its delta chains stay
  // correct); a miss populates it. `identity` must cover every run-scoped
  // input that affects pixels — see the trust contract in stream/cache.hpp.
  std::shared_ptr<FrameCache> cache;
  CacheIdentity identity;
  // When set, every decoded client frame is appended here (verify_clients
  // only). Tests/harness only; never in a bench's timed section.
  ServerCapture* capture = nullptr;
};

// --- reports ----------------------------------------------------------------

struct ClientReport {
  int id = -1;
  bool connected = false;  // still connected at finish()
  bool evicted = false;    // ever evicted
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_delivered = 0;
  std::uint64_t frames_dropped = 0;  // budget or controller drops
  std::uint64_t keyframes_sent = 0;
  std::uint64_t decode_failures = 0;
  std::uint64_t control_delivered = 0;
  std::uint64_t bytes_sent = 0;
  std::size_t peak_queue_bytes = 0;
  double max_latency_s = 0.0;
  // Every (re)join's first delivered frame was a keyframe — the re-anchor
  // invariant, observed from the client side.
  bool rejoin_keyframe_ok = true;
  // Per-delivery log (verify_clients only): the chaos digest and the p95
  // computations are built from this.
  struct Delivery {
    int step = 0;
    int tier = 0;
    bool keyframe = false;
    std::uint32_t epoch = 0;  // view epoch echoed by the frame header
    std::int32_t base_step = -1;  // delta reference step; -1 for keyframes
    std::uint32_t bytes = 0;
    double latency_s = 0.0;
  };
  std::vector<Delivery> deliveries;

  // Exact order statistics over deliveries (the run report's e2e block).
  double p50_latency_s() const;
  double p95_latency_s() const;
};

struct ServerReport {
  std::uint64_t frames_submitted = 0;
  std::uint64_t frames_sent = 0;     // summed over clients
  std::uint64_t frames_dropped = 0;  // summed over clients
  std::uint64_t bytes_out = 0;       // aggregate egress, frames + control
  std::uint64_t encodes = 0;         // actual encode work performed
  std::uint64_t encode_reuses = 0;   // wire buffers served from the bank
  std::uint64_t cache_hits = 0;      // keyframes served from the frame cache
  std::uint64_t cache_misses = 0;    // keyframe lookups that had to encode
  std::uint64_t joins = 0;
  std::uint64_t leaves = 0;
  std::uint64_t evictions = 0;
  std::uint64_t reconnects = 0;
  std::uint64_t decode_failures = 0;
  std::size_t peak_client_queue_bytes = 0;  // worst single client
  std::size_t peak_total_queue_bytes = 0;   // worst sum over clients
  std::vector<ClientReport> clients;        // every client ever, by id
};

// --- the server -------------------------------------------------------------

class DeliveryServer {
 public:
  DeliveryServer(const ServerConfig& cfg, int width, int height);
  ~DeliveryServer();
  DeliveryServer(const DeliveryServer&) = delete;
  DeliveryServer& operator=(const DeliveryServer&) = delete;

  // Connect a new viewer; returns its client id. The first frame it is sent
  // is a keyframe; a join ack is queued immediately.
  int join(double now, const ClientLinkConfig& link);

  // Graceful disconnect: a leave ack is queued, in-flight frames finish
  // crossing (the client sees them), then the connection is torn down.
  void leave(double now, int id);

  // A previously evicted (or departed) client comes back: fresh connection,
  // fresh decoder — it gets a join ack and a keyframe, never a delta
  // against state it lost.
  void reconnect(double now, int id, const ClientLinkConfig& link);

  // Offer the frame for `step` to every connected client. Encodes each
  // needed (tier, kind) once; never blocks; drops per client per policy.
  void submit(double now, int step, const img::Image8& frame);

  // View epoch stamped into frame headers and lineage events from the next
  // pack on ((step, epoch) is the end-to-end frame id). Call before submit.
  void set_epoch(std::uint32_t epoch);
  std::uint32_t epoch() const;

  // A steering edit was applied: stamp the new epoch AND invalidate every
  // tier's delta chain, so the first frame every client receives after the
  // edit is forced to a keyframe by the existing ref_step < 0 re-anchor
  // rule — no delta can cross the view change. Unlike reconnect(), this
  // deliberately does NOT touch per-client DegradationController or decoder
  // state: an edit is not a network event, so a client's earned tier level
  // and recovery credit survive (the tier-continuity regression pins this).
  void apply_view_change(std::uint32_t epoch);

  // Where viewer steering edits land (hostile boundary + latest-wins
  // coalescing; see stream/control.hpp). The serve loop drains this at
  // frame boundaries and answers with apply_view_change.
  SteerInbox& steer_inbox() { return steer_inbox_; }

  // Advance every client's link to `now` without a new frame (delivers
  // stragglers, detects stalls/evictions between frames).
  void poll(double now);

  int connected_clients() const;
  std::size_t total_queue_bytes() const;
  // Introspection for tests/harness: the report-so-far for one client.
  const ClientReport& client(int id) const;

  // Drain every connected client's link, tear everything down, and return
  // the final report.
  ServerReport finish();

 private:
  struct Client;
  void service(Client& c, double now);
  void handle_batch(Client& c, std::vector<DeliveredFrame> delivered);
  void evict(Client& c, double now);
  void send_control(Client& c, double now, ControlKind kind);
  void observe_queues();

  ServerConfig cfg_;
  int w_, h_;
  FrameEncoderBank bank_;
  SteerInbox steer_inbox_;
  std::vector<std::unique_ptr<Client>> clients_;
  ServerReport rep_;
  int last_step_ = -1;
  std::uint32_t epoch_ = 0;
};

// --- fleet helper -----------------------------------------------------------
// Population description behind the `--serve*` flags: `count` clients with
// bandwidths log-spread from `bandwidth_hi` down to `bandwidth_lo` (lo == 0
// gives a uniform fleet). A nonzero outage_seed makes every third client
// flap with seeded outage windows derived from it.
struct ServeFleetConfig {
  bool enabled = false;
  int count = 0;
  double bandwidth_hi = 8e6;
  double bandwidth_lo = 0.0;
  double latency_s = 0.02;
  std::uint64_t outage_seed = 0;
  // > 0 installs a content-addressed keyframe cache of this byte budget on
  // the server (the --cache-bytes flag); the pipeline fills in identity.
  std::size_t cache_bytes = 0;
  ServerConfig server;
};

std::vector<ClientLinkConfig> make_fleet(const ServeFleetConfig& cfg);

}  // namespace qv::stream
