#include "stream/control.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>

#include "metrics/metrics.hpp"
#include "util/crc32.hpp"
#include "util/rng.hpp"

namespace qv::stream {

// --- wire codec -------------------------------------------------------------

namespace {

struct SteerWire {
  std::uint32_t magic;
  std::uint16_t version;
  std::uint8_t kind;
  std::uint8_t pad0;
  std::uint32_t request_id;
  std::int32_t client_id;
  float f0, f1, f2;
  std::uint32_t crc;  // CRC-32 of the 28 bytes preceding this field
};
static_assert(sizeof(SteerWire) == kSteerWireSize);
constexpr std::size_t kSteerCrcSpan = offsetof(SteerWire, crc);

struct SteerMetrics {
  metrics::Counter& posted = metrics::counter("steer.posted");
  metrics::Counter& coalesced = metrics::counter("steer.coalesced");
  metrics::Counter& rejected = metrics::counter("steer.rejected");
  metrics::Counter& applied = metrics::counter("steer.applied");
  static SteerMetrics& get() {
    static SteerMetrics m;
    return m;
  }
};

}  // namespace

std::vector<std::uint8_t> encode_steer(const SteerMsg& m) {
  SteerWire w{};
  w.magic = kSteerMagic;
  w.version = kSteerVersion;
  w.kind = std::uint8_t(m.kind);
  w.request_id = m.request_id;
  w.client_id = m.client_id;
  w.f0 = m.f0;
  w.f1 = m.f1;
  w.f2 = m.f2;
  std::vector<std::uint8_t> out(sizeof(SteerWire));
  std::memcpy(out.data(), &w, sizeof(w));
  w.crc = util::crc32({out.data(), kSteerCrcSpan});
  std::memcpy(out.data(), &w, sizeof(w));
  return out;
}

std::optional<SteerMsg> decode_steer(std::span<const std::uint8_t> wire) {
  if (wire.size() != kSteerWireSize) return std::nullopt;
  SteerWire w;
  std::memcpy(&w, wire.data(), sizeof(w));
  if (w.magic != kSteerMagic || w.version != kSteerVersion)
    return std::nullopt;
  if (w.kind > std::uint8_t(SteerKind::kScrub)) return std::nullopt;
  // Strict zero pad, same policy as the frame and QVSC headers: corruption
  // has nowhere to hide and the byte stays reserved for a future version.
  if (w.pad0) return std::nullopt;
  if (util::crc32({wire.data(), kSteerCrcSpan}) != w.crc) return std::nullopt;
  // A steering payload feeds the camera and the transfer function directly;
  // a non-finite value that slipped past the CRC must die here, not inside
  // the raycaster.
  if (!std::isfinite(w.f0) || !std::isfinite(w.f1) || !std::isfinite(w.f2))
    return std::nullopt;
  SteerMsg m;
  m.kind = SteerKind(w.kind);
  m.request_id = w.request_id;
  m.client_id = w.client_id;
  m.f0 = w.f0;
  m.f1 = w.f1;
  m.f2 = w.f2;
  return m;
}

bool is_steer_wire(std::span<const std::uint8_t> wire) {
  if (wire.size() < sizeof(std::uint32_t)) return false;
  std::uint32_t magic;
  std::memcpy(&magic, wire.data(), sizeof(magic));
  return magic == kSteerMagic;
}

// --- the inbox --------------------------------------------------------------

std::optional<std::uint32_t> SteerInbox::post_wire(
    std::span<const std::uint8_t> wire) {
  auto m = decode_steer(wire);
  if (!m) {
    std::lock_guard<std::mutex> lk(mu_);
    ++rejected_;
    SteerMetrics::get().rejected.add();
    return std::nullopt;
  }
  return post(*m);
}

std::uint32_t SteerInbox::post(SteerMsg m) {
  std::lock_guard<std::mutex> lk(mu_);
  m.request_id = next_id_++;
  auto& slot = slots_[std::size_t(m.kind)];
  if (slot) {
    ++coalesced_;
    SteerMetrics::get().coalesced.add();
  }
  slot = m;
  ++posted_;
  SteerMetrics::get().posted.add();
  return m.request_id;
}

bool SteerInbox::pending() const {
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& s : slots_)
    if (s) return true;
  return false;
}

std::vector<SteerMsg> SteerInbox::drain() {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<SteerMsg> out;
  for (auto& s : slots_) {
    if (s) {
      out.push_back(*s);
      s.reset();
    }
  }
  std::sort(out.begin(), out.end(),
            [](const SteerMsg& a, const SteerMsg& b) {
              return a.request_id < b.request_id;
            });
  return out;
}

std::uint32_t SteerInbox::last_assigned() const {
  std::lock_guard<std::mutex> lk(mu_);
  return next_id_ - 1;
}

std::uint64_t SteerInbox::posted() const {
  std::lock_guard<std::mutex> lk(mu_);
  return posted_;
}

std::uint64_t SteerInbox::coalesced() const {
  std::lock_guard<std::mutex> lk(mu_);
  return coalesced_;
}

std::uint64_t SteerInbox::rejected() const {
  std::lock_guard<std::mutex> lk(mu_);
  return rejected_;
}

// --- driver-side steering state ---------------------------------------------

bool SteeringState::apply(const SteerMsg& m) {
  epoch = std::max(epoch, m.request_id);
  ++applied;
  SteerMetrics::get().applied.add();
  switch (m.kind) {
    case SteerKind::kCamera:
      azimuth_deg = m.f0;
      return true;
    case SteerKind::kTransfer: {
      // Degenerate windows would blow up the raycaster's 1/(hi-lo); order
      // and separate defensively rather than trusting the viewer.
      float lo = std::min(m.f0, m.f1);
      float hi = std::max(m.f0, m.f1);
      if (hi - lo < 1e-6f) hi = lo + 1e-6f;
      value_lo = lo;
      value_hi = hi;
      return true;
    }
    case SteerKind::kScrub:
      scrub_step = std::int32_t(std::max(0.0f, m.f0));
      return false;  // which step we show changes; the view does not
  }
  return false;
}

std::int32_t SteeringState::take_scrub() {
  std::int32_t s = scrub_step;
  scrub_step = -1;
  return s;
}

// --- scripted traces --------------------------------------------------------

std::vector<SteerEvent> make_steer_trace(std::uint64_t seed, int steps,
                                         int edits, bool allow_scrub) {
  std::vector<SteerEvent> trace;
  if (steps <= 1 || edits <= 0) return trace;
  std::uint64_t sm = seed ^ 0x53544545524e4743ULL;  // "STEERNGC"
  Rng rng(splitmix64(sm));
  for (int i = 0; i < edits; ++i) {
    SteerEvent ev;
    // Never step 0: the first frame establishes the pre-edit baseline.
    ev.step = 1 + int(rng.next_below(std::uint64_t(steps - 1)));
    const int kinds = allow_scrub ? 3 : 2;
    switch (int(rng.next_below(std::uint64_t(kinds)))) {
      case 0:
        ev.msg.kind = SteerKind::kCamera;
        ev.msg.f0 = rng.next_float() * 360.0f;
        break;
      case 1: {
        ev.msg.kind = SteerKind::kTransfer;
        float lo = rng.next_float() * 0.4f;
        ev.msg.f0 = lo;
        ev.msg.f1 = lo + 0.5f + rng.next_float() * 2.0f;
        break;
      }
      default:
        ev.msg.kind = SteerKind::kScrub;
        ev.msg.f0 = float(rng.next_below(std::uint64_t(steps)));
        break;
    }
    trace.push_back(ev);
  }
  std::stable_sort(trace.begin(), trace.end(),
                   [](const SteerEvent& a, const SteerEvent& b) {
                     return a.step < b.step;
                   });
  return trace;
}

std::optional<std::vector<SteerEvent>> load_steer_trace(
    const std::string& path, std::string* err) {
  auto fail = [&](const std::string& why)
      -> std::optional<std::vector<SteerEvent>> {
    if (err) *err = why;
    return std::nullopt;
  };
  std::ifstream f(path);
  if (!f) return fail("cannot open " + path);
  std::vector<SteerEvent> trace;
  std::string line;
  int lineno = 0;
  while (std::getline(f, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream is(line);
    int step;
    std::string kind;
    if (!(is >> step)) {
      // Blank or comment-only line.
      std::istringstream probe(line);
      std::string tok;
      if (probe >> tok)
        return fail(path + ":" + std::to_string(lineno) + ": bad step");
      continue;
    }
    if (step < 0)
      return fail(path + ":" + std::to_string(lineno) + ": negative step");
    if (!(is >> kind))
      return fail(path + ":" + std::to_string(lineno) + ": missing kind");
    SteerEvent ev;
    ev.step = step;
    float a, b;
    if (kind == "camera") {
      if (!(is >> a))
        return fail(path + ":" + std::to_string(lineno) +
                    ": camera needs <azimuth_deg>");
      ev.msg.kind = SteerKind::kCamera;
      ev.msg.f0 = a;
    } else if (kind == "transfer") {
      if (!(is >> a >> b))
        return fail(path + ":" + std::to_string(lineno) +
                    ": transfer needs <value_lo> <value_hi>");
      ev.msg.kind = SteerKind::kTransfer;
      ev.msg.f0 = a;
      ev.msg.f1 = b;
    } else if (kind == "scrub") {
      if (!(is >> a))
        return fail(path + ":" + std::to_string(lineno) +
                    ": scrub needs <target_step>");
      ev.msg.kind = SteerKind::kScrub;
      ev.msg.f0 = a;
    } else {
      return fail(path + ":" + std::to_string(lineno) + ": unknown kind '" +
                  kind + "'");
    }
    if (!std::isfinite(ev.msg.f0) || !std::isfinite(ev.msg.f1))
      return fail(path + ":" + std::to_string(lineno) + ": non-finite value");
    std::string extra;
    if (is >> extra)
      return fail(path + ":" + std::to_string(lineno) +
                  ": trailing token '" + extra + "'");
    trace.push_back(ev);
  }
  std::stable_sort(trace.begin(), trace.end(),
                   [](const SteerEvent& a, const SteerEvent& b) {
                     return a.step < b.step;
                   });
  return trace;
}

bool save_steer_trace(const std::string& path,
                      std::span<const SteerEvent> trace) {
  std::ofstream f(path);
  if (!f) return false;
  // max_digits10: every finite float survives the text roundtrip exactly,
  // so a saved trace replays the same view fold bit-for-bit.
  f.precision(std::numeric_limits<float>::max_digits10);
  f << "# quakeviz steering trace: <step> camera <azimuth_deg> | "
       "<step> transfer <lo> <hi> | <step> scrub <target>\n";
  for (const auto& ev : trace) {
    switch (ev.msg.kind) {
      case SteerKind::kCamera:
        f << ev.step << " camera " << ev.msg.f0 << "\n";
        break;
      case SteerKind::kTransfer:
        f << ev.step << " transfer " << ev.msg.f0 << " " << ev.msg.f1 << "\n";
        break;
      case SteerKind::kScrub:
        f << ev.step << " scrub " << ev.msg.f0 << "\n";
        break;
    }
  }
  return bool(f);
}

std::vector<SteerEvent> number_steer_trace(std::vector<SteerEvent> trace) {
  std::stable_sort(trace.begin(), trace.end(),
                   [](const SteerEvent& a, const SteerEvent& b) {
                     return a.step < b.step;
                   });
  for (std::size_t i = 0; i < trace.size(); ++i)
    trace[i].msg.request_id = std::uint32_t(i + 1);
  return trace;
}

SteeringState fold_steer_trace(std::span<const SteerEvent> trace, int step,
                               SteeringState base) {
  for (const auto& ev : trace) {
    if (ev.step <= step) base.apply(ev.msg);
  }
  return base;
}

}  // namespace qv::stream
