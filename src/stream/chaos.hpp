// Seeded churn chaos harness for the delivery server.
//
// Builds a mixed client population — fast stable viewers, bandwidth-starved
// stragglers, flappers with seeded outage windows, and churners that leave
// and rejoin mid-stream — runs a synthetic frame sequence through a
// DeliveryServer in virtual time, and checks the server's structural
// invariants from the outside:
//
//   * every delivered frame decodes (no corrupt delta chains, ever);
//   * every client's first frame after a (re)join is a keyframe;
//   * no client's queued bytes ever exceed the configured budget;
//   * fast-client tail latency is independent of how many slow or flapping
//     clients share the server (isolation);
//   * the whole run is bit-deterministic per seed (SHA-256 digest over the
//     per-client delivery logs).
//
// Everything derives from ChaosConfig::seed with per-category independent
// seeds, so adding slow clients cannot perturb the fast clients' plans —
// which is what makes the isolation invariant testable as an equality.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "stream/server.hpp"

namespace qv::stream {

// How many clients of each behavioral class join the run.
struct ChaosPopulation {
  int fast = 4;      // high bandwidth, stable, connected throughout
  int slow = 0;      // starved links: budget drops and degradation expected
  int flappers = 0;  // seeded outage windows; may stall into eviction
  int churners = 0;  // leave mid-stream, rejoin a few frames later
};

struct ChaosConfig {
  std::uint64_t seed = 1;
  ChaosPopulation population;
  int steps = 60;                  // frames submitted
  double frame_interval_s = 0.1;   // server clock advance per frame
  int width = 64;
  int height = 48;
  ServerConfig server;             // per-client budget, evict timeout, ...
};

struct ChaosResult {
  ServerReport report;
  std::string digest;        // SHA-256 hex over the per-client delivery logs
  std::vector<int> fast_ids; // client ids of the fast population
  double fast_p95_s = 0.0;   // p95 latency pooled over the fast clients
  // Invariant checks; `failures` holds one line per violation (empty == pass).
  bool all_decoded = true;
  bool rejoin_keyframes_ok = true;
  bool queue_budget_ok = true;
  std::vector<std::string> failures;

  bool ok() const { return failures.empty(); }
};

// Run one seeded chaos scenario to completion (pure virtual time: the only
// nondeterminism is the seed).
ChaosResult run_chaos(const ChaosConfig& cfg);

// The synthetic frame the harness (and the server bench) submits for `step`:
// a deterministic moving pattern with enough structure that delta frames are
// nontrivial but compressible.
img::Image8 chaos_frame(int width, int height, std::uint64_t seed, int step);

}  // namespace qv::stream
