#include "stream/chaos.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "util/rng.hpp"
#include "util/sha256.hpp"

namespace qv::stream {

namespace {

// Per-category seed derivation: every behavioral class (and every client
// within it) gets an independent stream, so population sizes never shift
// another category's plan — the isolation invariant depends on this.
enum : std::uint64_t {
  kTagFrame = 0x66726d65,    // "frme"
  kTagSlow = 0x736c6f77,     // "slow"
  kTagFlap = 0x666c6170,     // "flap"
  kTagChurn = 0x6368726e,    // "chrn"
  kTagRejoin = 0x72656a6e,   // "rejn"
};

std::uint64_t derive(std::uint64_t seed, std::uint64_t tag, std::uint64_t i) {
  std::uint64_t s = seed ^ (tag * 0x9e3779b97f4a7c15ULL) ^
                    (i * 0xbf58476d1ce4e5b9ULL);
  return splitmix64(s);
}

template <typename T>
void put(util::Sha256& h, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  h.update(&v, sizeof(v));
}

}  // namespace

img::Image8 chaos_frame(int width, int height, std::uint64_t seed, int step) {
  img::Image8 f(width, height);
  // Sliding integer pattern: deltas between consecutive steps are small and
  // structured (RLE-friendly) but never empty.
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      const int r = (x * 5 + y * 3 + step * 11) & 0xFF;
      const int g = ((x ^ y) + step * 7) & 0xFF;
      const int b = (x * x + y + step * 4) & 0xFF;
      f.set(x, y, std::uint8_t(r), std::uint8_t(g), std::uint8_t(b));
    }
  }
  // Seeded sparse blocks so content (and therefore wire sizes) depend on the
  // scenario seed, not just the step counter.
  Rng rng(derive(seed, kTagFrame, std::uint64_t(step)));
  for (int k = 0; k < 8; ++k) {
    const int bx = int(rng.next_below(std::uint64_t(std::max(width - 4, 1))));
    const int by = int(rng.next_below(std::uint64_t(std::max(height - 4, 1))));
    const std::uint8_t v = std::uint8_t(rng.next_below(256));
    for (int dy = 0; dy < 4 && by + dy < height; ++dy)
      for (int dx = 0; dx < 4 && bx + dx < width; ++dx)
        f.set(bx + dx, by + dy, v, std::uint8_t(255 - v), v);
  }
  return f;
}

ChaosResult run_chaos(const ChaosConfig& cfg) {
  ChaosResult out;
  DeliveryServer server(cfg.server, cfg.width, cfg.height);

  struct Tracked {
    int id = -1;
    ClientLinkConfig link;
    bool want_connected = true;  // false between a planned leave and rejoin
    int leave_step = -1;         // churners only
    int rejoin_step = -1;        // churner rejoin or post-evict reconnect
  };
  std::vector<Tracked> tracked;

  // Fast: high bandwidth, stable, connected for the whole run. Joined first
  // so their ids are 0..fast-1 in every scenario that includes them.
  for (int i = 0; i < cfg.population.fast; ++i) {
    Tracked t;
    t.link.bandwidth_bytes_per_s = 8e6;
    t.link.latency_s = 0.02;
    t.id = server.join(0.0, t.link);
    out.fast_ids.push_back(t.id);
    tracked.push_back(t);
  }
  // Slow: starved links, log-spread so some merely degrade and some force
  // budget drops.
  for (int i = 0; i < cfg.population.slow; ++i) {
    Tracked t;
    Rng rng(derive(cfg.seed, kTagSlow, std::uint64_t(i)));
    t.link.bandwidth_bytes_per_s = 3e4 * std::pow(10.0, rng.next_double());
    t.link.latency_s = 0.08;
    t.id = server.join(0.0, t.link);
    tracked.push_back(t);
  }
  // Flappers: seeded blackout windows; long stalls run into the evict
  // timeout and exercise the evict -> reconnect -> keyframe path.
  for (int i = 0; i < cfg.population.flappers; ++i) {
    Tracked t;
    t.link.bandwidth_bytes_per_s = 1e6;
    t.link.latency_s = 0.03;
    t.link.fault.enabled = true;
    t.link.fault.seed = derive(cfg.seed, kTagFlap, std::uint64_t(i));
    t.link.fault.mean_up_seconds = 1.5;
    t.link.fault.mean_down_seconds = 0.8;
    t.link.fault.degraded_factor = 0.0;
    t.id = server.join(0.0, t.link);
    tracked.push_back(t);
  }
  // Churners: leave mid-stream, rejoin a few frames later.
  for (int i = 0; i < cfg.population.churners; ++i) {
    Tracked t;
    Rng rng(derive(cfg.seed, kTagChurn, std::uint64_t(i)));
    t.link.bandwidth_bytes_per_s = 2e6;
    t.link.latency_s = 0.03;
    const int lo = std::max(cfg.steps / 4, 1);
    const int span = std::max(cfg.steps / 4, 1);
    t.leave_step = lo + int(rng.next_below(std::uint64_t(span)));
    t.rejoin_step = t.leave_step + 2 + int(rng.next_below(4));
    t.id = server.join(0.0, t.link);
    tracked.push_back(t);
  }

  for (int step = 0; step < cfg.steps; ++step) {
    const double now = step * cfg.frame_interval_s;
    for (auto& t : tracked) {
      if (t.leave_step == step && t.want_connected) {
        server.leave(now, t.id);
        t.want_connected = false;
      }
      if (!t.want_connected && t.rejoin_step >= 0 && t.rejoin_step <= step &&
          !server.client(t.id).connected) {
        server.reconnect(now, t.id, t.link);
        t.want_connected = true;
        t.rejoin_step = -1;
      }
    }
    server.submit(now, step, chaos_frame(cfg.width, cfg.height, cfg.seed, step));
    // A client the server evicted comes back a few frames later on the same
    // link profile (its outage schedule re-derives from the same seed).
    for (auto& t : tracked) {
      if (t.want_connected && !server.client(t.id).connected) {
        t.want_connected = false;
        t.rejoin_step = step + 2 +
                        int(derive(cfg.seed, kTagRejoin,
                                   std::uint64_t(t.id) * 131 +
                                       std::uint64_t(step)) %
                            4);
      }
    }
  }
  out.report = server.finish();

  // --- digest: the run, as every client experienced it -----------------------
  util::Sha256 h;
  for (const auto& c : out.report.clients) {
    put(h, std::int32_t(c.id));
    put(h, std::uint8_t(c.evicted));
    put(h, c.frames_sent);
    put(h, c.frames_dropped);
    put(h, c.keyframes_sent);
    put(h, std::uint64_t(c.deliveries.size()));
    for (const auto& d : c.deliveries) {
      put(h, std::int32_t(d.step));
      put(h, std::int32_t(d.tier));
      put(h, std::uint8_t(d.keyframe));
      put(h, d.bytes);
      std::uint64_t bits;
      std::memcpy(&bits, &d.latency_s, sizeof(bits));
      put(h, bits);
    }
  }
  const auto digest = h.digest();
  out.digest = util::Sha256::hex(digest.data(), digest.size());

  // --- invariants -------------------------------------------------------------
  if (out.report.decode_failures != 0) {
    out.all_decoded = false;
    out.failures.push_back("decode failures: " +
                           std::to_string(out.report.decode_failures));
  }
  for (const auto& c : out.report.clients) {
    if (!c.rejoin_keyframe_ok) {
      out.rejoin_keyframes_ok = false;
      out.failures.push_back("client " + std::to_string(c.id) +
                             ": first frame after a (re)join was not a keyframe");
    }
    if (c.peak_queue_bytes > cfg.server.queue_budget_bytes) {
      out.queue_budget_ok = false;
      out.failures.push_back(
          "client " + std::to_string(c.id) + ": peak queue " +
          std::to_string(c.peak_queue_bytes) + " bytes exceeds budget " +
          std::to_string(cfg.server.queue_budget_bytes));
    }
  }

  std::vector<double> fast_lat;
  for (int id : out.fast_ids) {
    const auto& c = out.report.clients[std::size_t(id)];
    for (const auto& d : c.deliveries) fast_lat.push_back(d.latency_s);
  }
  if (!fast_lat.empty()) {
    std::sort(fast_lat.begin(), fast_lat.end());
    const std::size_t idx = (fast_lat.size() * 95 + 99) / 100;
    out.fast_p95_s = fast_lat[idx - 1];
  }
  return out;
}

}  // namespace qv::stream
