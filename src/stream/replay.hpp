// Zipfian request-trace replayer for the content-addressed frame cache.
//
// Models the access pattern the cache exists for: N remote viewers scrubbing
// through an already-computed run, with interest concentrated on a few hot
// timesteps (the wavefront arrival, the peak shaking) — a zipf(s)
// distribution over the catalog. Each request asks for a (timestep, tier)
// keyframe; the harness renders + encodes ONLY on a cache miss and serves
// the stored wire bytes on a hit, then ships the frame to the requesting
// client over its seeded virtual-time WAN link.
//
// Everything derives from ReplayConfig::seed (request trace, client choice)
// plus the fixed synthetic frame source (chaos_frame keyed by step), so two
// runs with the same config are bit-identical — pinned by a SHA-256 digest
// over the request log and every client's delivery log.
//
// Verification (on by default): at each miss the wire's SHA-256 is recorded
// under its content address; every hit recomputes the digest of the served
// bytes and compares. A mismatch means the cache returned bytes that are
// not what the encoder produced for that address — the one failure a
// content-addressed cache must never have.
//
// Analytics: with no capacity evictions every miss is compulsory (first
// touch of an address), so the expected hit rate under the trace
// distribution is exact:  E[hits]/R = 1 - sum_i (1 - (1-p_i)^R) / R.
// The report carries that number; tests assert the measured rate matches.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "stream/cache.hpp"
#include "stream/server.hpp"

namespace qv::stream {

struct ReplayConfig {
  int width = 192;
  int height = 144;
  int steps = 64;     // catalog: timesteps 0..steps-1
  int tiers = 1;      // requested tiers 0..tiers-1, uniform
  int clients = 4;    // simulated viewers
  std::uint64_t requests = 512;
  double zipf_s = 1.1;       // zipf exponent over the step catalog
  std::uint64_t seed = 1;    // request trace + client choice
  double interval_s = 0.01;  // virtual time between requests
  bool verify = true;        // byte-verify every cache hit
  CacheConfig cache;
  ClientLinkConfig link;  // every client gets this link (uniform fleet)
};

struct ReplayReport {
  std::uint64_t requests = 0;
  std::uint64_t renders = 0;       // frames rendered + encoded (misses)
  std::uint64_t cache_served = 0;  // frames served from the cache (hits)
  std::uint64_t bytes_served = 0;  // wire bytes shipped to clients
  std::uint64_t frames_delivered = 0;
  std::uint64_t verify_failures = 0;  // hit bytes != encoder bytes
  double hit_rate = 0.0;           // measured: cache_served / requests
  double expected_hit_rate = 0.0;  // analytic, compulsory misses only
  CacheStats cache;                // final cache counters
  // Per-client end-to-end delivery latency (link virtual time), exact order
  // statistics — the qv-run-report "e2e" block for replay runs.
  struct ClientE2e {
    int id = 0;
    std::uint64_t frames = 0;
    double p50_s = 0.0;
    double p95_s = 0.0;
  };
  std::vector<ClientE2e> client_e2e;
  // Pooled over every delivery to every client — the SLO verdict's input.
  double e2e_p50_s = 0.0;
  double e2e_p95_s = 0.0;
  std::string digest;  // SHA-256 hex over request + delivery logs
};

// Run the replay. Deterministic per config; never touches the filesystem.
ReplayReport run_replay(const ReplayConfig& cfg);

}  // namespace qv::stream
