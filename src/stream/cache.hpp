// Content-addressed cache of encoded wire frames.
//
// The delivery server encodes every (step, tier, kind) once per step and
// fans the bytes out — but across repeated visualization sessions of the
// SAME run (a scientist scrubbing back to the wavefront arrival, a class of
// viewers replaying the canonical dataset) the pipeline re-renders and
// re-encodes frames whose bytes are fully determined by inputs it has
// already seen. This cache closes that loop: wire frames are stored under a
// content address — SHA-256 over everything that determines the bytes
// (dataset id, timestep, camera hash, transfer-function hash, tier, kind) —
// so a hit serves the stored shared buffer with no encode, and in a replay
// harness with no render at all.
//
// Policy:
//  * Strict LRU over a byte budget. get() promotes to most-recently-used;
//    put() evicts from the LRU tail until the new entry fits. An entry
//    larger than the whole budget is rejected outright (never evicts the
//    world for an entry that cannot be admitted).
//  * KEYFRAMES ONLY. A cached delta would be decodable only by a client
//    holding the exact reference frame, i.e. only inside the encoder-bank
//    chain that produced it — caching it across sessions would either
//    corrupt decoders or demand the cache track chain state. Keyframes are
//    self-contained, so their bytes depend on nothing but the address
//    fields. The server enforces this by consulting the cache on its
//    keyframe path only (see DeliveryServer::submit).
//  * The trust contract: the address MUST cover every input that affects
//    the rendered pixels. Callers build a CacheIdentity from the dataset
//    and view parameters; two runs that produce the same address are
//    asserted (in the replay harness, verified byte-for-byte) to produce
//    the same wire.
//
// Thread-safe: a single mutex guards the map + LRU list. Entries are
// immutable shared_ptr buffers, so readers hold them with no lock.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "stream/frame_codec.hpp"

namespace qv::stream {

// Everything run-scoped that determines a frame's pixels. The per-frame
// fields (step, tier, kind) are passed to content_address separately.
struct CacheIdentity {
  std::string dataset_id;        // dataset dir / synthetic source name
  std::uint64_t camera_hash = 0; // view: projection, orbit, size, variable
  std::uint64_t tf_hash = 0;     // transfer function + value range
};

// Convenience for building identity hashes: SHA-256 of a descriptor string,
// folded to 64 bits. Collision-safe enough for an address *component*; the
// full 32-byte address keeps the real margin.
std::uint64_t hash64(const std::string& descriptor);

struct CacheKey {
  std::array<std::uint8_t, 32> addr{};
  bool operator==(const CacheKey&) const = default;
};

struct CacheKeyHash {
  std::size_t operator()(const CacheKey& k) const {
    // The address is itself a cryptographic hash: any 8 bytes are uniform.
    std::size_t h;
    static_assert(sizeof(h) <= 32);
    __builtin_memcpy(&h, k.addr.data(), sizeof(h));
    return h;
  }
};

// SHA-256 over the identity fields plus (step, tier, kind), each length- or
// width-delimited so field boundaries can't alias.
CacheKey content_address(const CacheIdentity& id, int step, int tier,
                         FrameKind kind);

struct CacheConfig {
  std::size_t capacity_bytes = 64u << 20;
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::uint64_t oversize_rejects = 0;
  std::size_t bytes = 0;    // resident payload bytes
  std::size_t entries = 0;  // resident entry count
};

class FrameCache {
 public:
  using Wire = std::shared_ptr<const std::vector<std::uint8_t>>;

  explicit FrameCache(CacheConfig cfg);

  // The stored wire for `key`, promoted to most-recently-used — or nullptr.
  // Counts a hit or a miss (here and in the stream.cache.* metrics).
  Wire get(const CacheKey& key);

  // Insert `wire` under `key`, evicting LRU entries until it fits. A wire
  // larger than the whole budget is rejected (counted, nothing evicted);
  // re-inserting a resident key refreshes recency but keeps the original
  // bytes (content-addressing makes them identical by contract).
  void put(const CacheKey& key, Wire wire);

  CacheStats stats() const;
  std::size_t bytes() const;
  std::size_t entries() const;
  std::size_t capacity_bytes() const { return cfg_.capacity_bytes; }

 private:
  struct Entry {
    CacheKey key;
    Wire wire;
  };

  void evict_until_fits(std::size_t incoming);  // mu_ held

  CacheConfig cfg_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = most recent, back = eviction candidate
  std::unordered_map<CacheKey, std::list<Entry>::iterator, CacheKeyHash> map_;
  CacheStats stats_;
};

}  // namespace qv::stream
