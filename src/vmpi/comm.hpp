// vmpi: an in-process message-passing runtime with MPI-like semantics.
//
// This is the reproduction's substitute for MPI on LeMieux (see DESIGN.md).
// Ranks run as threads of one process; the API mirrors the MPI subset the
// paper's pipeline uses: blocking and buffered-nonblocking point-to-point,
// barriers, broadcast/gather/allgather/allreduce, communicator splitting
// (the 2DIP input groups), and — in file.hpp — file views over indexed
// block types with collective two-phase reads.
//
// Semantics notes:
//  * send() is buffered: the payload is copied into the destination mailbox
//    immediately, so isend() completes at call time (like MPI_Ibsend). This
//    is exactly the overlap behaviour the pipeline relies on.
//  * recv() matches on (source, tag) in arrival order; kAnySource/kAnyTag
//    wildcards are supported.
//  * Each communicator has a private context id, so traffic on split
//    communicators never cross-matches.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "vmpi/fault.hpp"

namespace qv::vmpi {

inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

struct Status {
  int source = 0;
  int tag = 0;
  std::size_t bytes = 0;
};

// Thrown out of blocking calls (recv, barrier, collectives) on every
// surviving rank once some rank has died with a real exception. Without
// this a single throwing rank would leave its peers blocked forever —
// there is no one left to send the message they are waiting for.
// (An injected RankKilled does NOT abort the world: surviving that is the
// whole point of the fault plan; dead-peer detection is recv_timeout's job.)
struct WorldAborted : std::runtime_error {
  WorldAborted()
      : std::runtime_error("vmpi: world aborted (a peer rank threw)") {}
};

namespace detail {

struct Message {
  int context = 0;
  int source = 0;  // world rank of sender
  int tag = 0;
  std::vector<std::uint8_t> payload;
};

struct Mailbox {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<Message> queue;
};

// Barrier usable by arbitrary subgroups: keyed by (context, generation).
struct GroupBarrier {
  std::mutex mu;
  std::condition_variable cv;
  int arrived = 0;
  std::uint64_t generation = 0;
};

struct World {
  explicit World(int nranks, std::shared_ptr<const FaultPlan> plan = nullptr);
  int size;
  std::vector<std::unique_ptr<Mailbox>> mailboxes;
  std::mutex barrier_table_mu;
  // One barrier state per context id (allocated lazily).
  std::vector<std::unique_ptr<GroupBarrier>> barriers;
  std::mutex context_mu;
  int next_context = 1;  // 0 is the world communicator

  // Fault injection (null when no plan is installed). fault_state[r] is
  // only ever touched by rank r's thread.
  std::shared_ptr<const FaultPlan> fault_plan;
  std::vector<std::unique_ptr<FaultRankState>> fault_state;

  // Set when a rank dies with a real (non-RankKilled) exception; every
  // blocked or future blocking call then throws WorldAborted.
  std::atomic<bool> aborted{false};

  GroupBarrier& barrier_for(int context);
  int allocate_contexts(int count);
  // Flip `aborted` and wake every rank blocked on a mailbox or barrier.
  void abort_all();
};

}  // namespace detail

class Comm;

// Handle for a nonblocking receive. Sends complete immediately (buffered),
// so only receives need a real handle.
class Request {
 public:
  Request() = default;
  // Blocks until the message arrives; fills `out`.
  Status wait(std::vector<std::uint8_t>& out);
  // Non-blocking completion check; when true, wait() will not block.
  bool test();

 private:
  friend class Comm;
  Comm* comm_ = nullptr;
  int source_ = kAnySource;
  int tag_ = kAnyTag;
};

// A communicator: a subgroup of world ranks with a private message context.
class Comm {
 public:
  int rank() const { return rank_; }
  int size() const { return int(members_.size()); }

  // --- point to point -----------------------------------------------------
  void send(int dest, int tag, std::span<const std::uint8_t> data);
  // Buffered nonblocking send: identical to send() (completes immediately).
  void isend(int dest, int tag, std::span<const std::uint8_t> data) {
    send(dest, tag, data);
  }
  Status recv(int source, int tag, std::vector<std::uint8_t>& out);
  // Bounded-wait receive: waits up to `timeout` for a matching message.
  // Returns true (and fills out/st) on success, false when the deadline
  // expires with nothing matching — the robustness primitive that makes a
  // dead peer detectable (a buffered send cannot fail, so only the absence
  // of traffic reveals a dead input rank).
  bool recv_timeout(int source, int tag, std::vector<std::uint8_t>& out,
                    std::chrono::milliseconds timeout, Status* st = nullptr);
  // Non-blocking receive: true (and out/st filled) when a matching message
  // was already queued.
  bool try_recv(int source, int tag, std::vector<std::uint8_t>& out,
                Status* st = nullptr);
  Request irecv(int source, int tag);
  // True when a matching message is queued (non-blocking probe).
  bool iprobe(int source, int tag, Status* status = nullptr);

  // Fault-plan hook: applications report their progress (e.g. the pipeline
  // step about to be processed); the configured victim rank dies here by
  // throwing RankKilled. A no-op without a plan.
  void fault_checkpoint(int step);

  // Typed convenience wrappers (trivially copyable payloads).
  template <typename T>
  void send_value(int dest, int tag, const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    send(dest, tag, {reinterpret_cast<const std::uint8_t*>(&v), sizeof(T)});
  }
  template <typename T>
  T recv_value(int source, int tag, Status* st = nullptr) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<std::uint8_t> buf;
    Status s = recv(source, tag, buf);
    if (buf.size() != sizeof(T))
      throw std::runtime_error(
          "vmpi::recv_value: size mismatch (source=" + std::to_string(s.source) +
          " tag=" + std::to_string(s.tag) +
          " expected=" + std::to_string(sizeof(T)) +
          " bytes, got=" + std::to_string(buf.size()) + ")");
    if (st) *st = s;
    T v;
    std::memcpy(&v, buf.data(), sizeof(T));
    return v;
  }
  template <typename T>
  void send_vec(int dest, int tag, std::span<const T> v) {
    static_assert(std::is_trivially_copyable_v<T>);
    send(dest, tag,
         {reinterpret_cast<const std::uint8_t*>(v.data()), v.size_bytes()});
  }
  template <typename T>
  std::vector<T> recv_vec(int source, int tag, Status* st = nullptr) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<std::uint8_t> buf;
    Status s = recv(source, tag, buf);
    if (buf.size() % sizeof(T) != 0)
      throw std::runtime_error(
          "vmpi::recv_vec: size mismatch (source=" + std::to_string(s.source) +
          " tag=" + std::to_string(s.tag) + " element=" +
          std::to_string(sizeof(T)) + " bytes, got=" +
          std::to_string(buf.size()) + " bytes, remainder=" +
          std::to_string(buf.size() % sizeof(T)) + ")");
    if (st) *st = s;
    std::vector<T> out(buf.size() / sizeof(T));
    std::memcpy(out.data(), buf.data(), buf.size());
    return out;
  }

  // --- collectives ----------------------------------------------------------
  void barrier();
  // Root's buffer is broadcast to everyone (resized on non-roots).
  void bcast(std::vector<std::uint8_t>& buf, int root);
  template <typename T>
  void bcast_value(T& v, int root) {
    std::vector<std::uint8_t> buf(sizeof(T));
    if (rank_ == root) std::memcpy(buf.data(), &v, sizeof(T));
    bcast(buf, root);
    std::memcpy(&v, buf.data(), sizeof(T));
  }
  // Gather per-rank byte blobs to root (result valid on root only).
  std::vector<std::vector<std::uint8_t>> gather(std::span<const std::uint8_t> mine,
                                                int root);
  // Allgather: everyone receives everyone's blob, indexed by rank.
  std::vector<std::vector<std::uint8_t>> allgather(std::span<const std::uint8_t> mine);
  template <typename T>
  std::vector<T> allgather_value(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    auto blobs = allgather({reinterpret_cast<const std::uint8_t*>(&v), sizeof(T)});
    std::vector<T> out(blobs.size());
    for (std::size_t i = 0; i < blobs.size(); ++i)
      std::memcpy(&out[i], blobs[i].data(), sizeof(T));
    return out;
  }
  // Element-wise allreduce over arrays of doubles / floats.
  void allreduce_sum(std::span<double> inout);
  void allreduce_sum_f(std::span<float> inout);
  double allreduce_max(double v);

  // Split into sub-communicators by color (ranks with the same color form a
  // new communicator ordered by `key`, ties broken by old rank). Mirrors
  // MPI_Comm_split. Every member must call it. Returns a communicator whose
  // rank() is the caller's position in its group.
  Comm split(int color, int key);

  // World rank of a member of this communicator.
  int world_rank_of(int comm_rank) const { return members_[std::size_t(comm_rank)]; }
  int world_rank() const { return members_[std::size_t(rank_)]; }

 private:
  friend class Runtime;
  friend class Request;
  friend class File;
  Comm(std::shared_ptr<detail::World> world, int context, std::vector<int> members,
       int rank)
      : world_(std::move(world)),
        context_(context),
        members_(std::move(members)),
        rank_(rank) {}

  // Blocking receive matching (source, tag) in this context.
  Status recv_match(int source, int tag, std::vector<std::uint8_t>& out, bool block,
                    bool* found);

  // My rank's fault state, or null when no plan is installed.
  detail::FaultRankState* fault_state() const {
    return world_->fault_plan ? world_->fault_state[std::size_t(world_rank())].get()
                              : nullptr;
  }

  std::shared_ptr<detail::World> world_;
  int context_ = 0;
  std::vector<int> members_;  // world ranks, indexed by comm rank
  int rank_ = 0;              // my rank within this communicator
};

// Observer invoked from inside Runtime::run when a rank dies abnormally:
// reason is "rank_killed" for an injected fault-plan kill and "world_abort"
// for the first escaped exception (the one run() later rethrows; cascaded
// WorldAborted exits do not re-fire it).  Called on the dying rank's thread
// while the world is still alive, so a flight recorder can dump state the
// join would otherwise discard.  Must be async-signal-ish: no throwing, no
// vmpi calls.  Pass nullptr to clear.
using FaultObserver = void (*)(const char* reason, int rank);
void set_fault_observer(FaultObserver obs) noexcept;

// Spawns `nranks` threads, each running `fn` with its world communicator.
// Rethrows the first rank exception after all threads join. A RankKilled
// exit (from an installed fault plan) is NOT an error: the thread ends
// silently and the surviving ranks keep running, exactly as a crashed node
// looks to its peers.
class Runtime {
 public:
  static void run(int nranks, const std::function<void(Comm&)>& fn,
                  std::shared_ptr<const FaultPlan> fault_plan = nullptr);
};

}  // namespace qv::vmpi
