// Deterministic fault injection for the vmpi runtime.
//
// A FaultPlan is installed on Runtime::run and shared (read-only) by every
// rank. Each rank owns a private FaultRankState whose RNG chains are seeded
// from (plan.seed, world rank), so a given plan injects the *same* faults at
// the same operations on every run, independent of thread scheduling — the
// property the degraded-mode pipeline tests rely on.
//
// Injection points:
//   * File preads      — transient read errors (throw TransientIoError,
//                        retried by the File's RetryPolicy), short reads
//                        (a strict prefix is returned, exercising the
//                        read loop), and permanently failing paths
//                        (every pread of a matching file fails, modeling a
//                        dead stripe / lost OST).
//   * Comm::send       — payload corruption (one byte flipped at offset
//                        >= corrupt_offset_min, modeling data-segment
//                        corruption under a trusted header) and delivery
//                        delay. Only user tags (>= 0) are eligible; the
//                        runtime's internal collective traffic is exempt.
//   * rank death       — Comm::fault_checkpoint(step) throws RankKilled on
//                        the configured rank at the configured step. The
//                        Runtime treats RankKilled as a clean (silent) exit:
//                        surviving ranks must cope via recv_timeout.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace qv::vmpi {

// Permanent I/O failure (propagates out of File reads once retries are
// exhausted or the path is configured to fail).
struct IoError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

// Retryable I/O failure (injected, or a genuinely failed pread attempt).
struct TransientIoError : IoError {
  using IoError::IoError;
};

// Thrown by Comm::fault_checkpoint on the configured victim rank.
struct RankKilled : std::runtime_error {
  using std::runtime_error::runtime_error;
};

// Targets the `nth` (0-based) operation of a given world rank.
struct RankOp {
  int rank = -1;
  std::uint64_t nth = 0;
};

struct FaultPlan {
  std::uint64_t seed = 0x51D5EEDull;

  // --- I/O faults (File pread attempts) -----------------------------------
  double read_error_rate = 0.0;   // P(transient failure) per pread attempt
  double short_read_rate = 0.0;   // P(strict-prefix read) per pread attempt
  // Explicit transient failures: the nth pread of a rank fails on its first
  // attempt only (so a retry succeeds) — for exact-count tests.
  std::vector<RankOp> read_errors;
  // Every pread of a file whose path contains one of these substrings fails
  // (transiently, on every attempt — so retries exhaust and the failure
  // becomes permanent). Models a permanently lost step file.
  std::vector<std::string> fail_path_substrings;
  // Fixed latency added to every pread attempt. Models a slow disk / remote
  // filesystem; being a sleep rather than CPU work, it overlaps with
  // computation on other ranks even on a single-core host, which is what the
  // overlap-verification tests rely on. Does not consume RNG draws.
  double read_delay_ms = 0.0;

  // --- messaging faults (Comm::send, user tags only) ----------------------
  double corrupt_rate = 0.0;      // P(one payload byte flipped) per send
  std::vector<RankOp> corrupt_sends;  // explicit (sender rank, nth user send)
  // Corruption never touches bytes before this offset: the pipeline's
  // message headers (32 bytes) are treated as a trusted control channel, as
  // checksummed-header transports do; only the data segment degrades.
  std::size_t corrupt_offset_min = 32;
  double delay_rate = 0.0;        // P(delivery delayed) per send
  double delay_ms = 0.0;          // delay duration

  // --- rank death ---------------------------------------------------------
  int kill_rank = -1;             // world rank to kill (-1: nobody)
  int kill_at_step = -1;          // step passed to fault_checkpoint

  bool wants_io_faults() const {
    return read_error_rate > 0.0 || short_read_rate > 0.0 ||
           !read_errors.empty() || !fail_path_substrings.empty() ||
           read_delay_ms > 0.0;
  }
  bool wants_send_faults() const {
    return corrupt_rate > 0.0 || !corrupt_sends.empty() || delay_rate > 0.0;
  }
  bool path_fails(const std::string& path) const {
    for (const auto& s : fail_path_substrings) {
      if (path.find(s) != std::string::npos) return true;
    }
    return false;
  }
  static bool matches(const std::vector<RankOp>& ops, int rank,
                      std::uint64_t nth) {
    for (const auto& op : ops) {
      if (op.rank == rank && op.nth == nth) return true;
    }
    return false;
  }
};

namespace detail {

// Per-rank injection state. Only ever touched by the owning rank's thread.
struct FaultRankState {
  Rng io_rng;
  Rng send_rng;
  std::uint64_t preads = 0;  // logical pread ops (not attempts)
  std::uint64_t sends = 0;   // user-tag sends
  // Diagnostics (what was actually injected).
  std::uint64_t injected_read_errors = 0;
  std::uint64_t injected_short_reads = 0;
  std::uint64_t injected_corruptions = 0;
  std::uint64_t injected_delays = 0;

  FaultRankState(std::uint64_t seed, int rank) {
    std::uint64_t s = seed;
    // Decorrelate the two chains and the ranks.
    std::uint64_t a = splitmix64(s) ^ (std::uint64_t(rank) * 0x9E3779B97F4A7C15ull);
    std::uint64_t b = splitmix64(s) ^ (std::uint64_t(rank) * 0xC2B2AE3D27D4EB4Full);
    io_rng = Rng(a);
    send_rng = Rng(b);
  }
};

}  // namespace detail

}  // namespace qv::vmpi
