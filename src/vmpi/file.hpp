// vmpi file I/O: the MPI-IO subset the paper's pipeline uses (§5.3).
//
//  * IndexedBlockView  — MPI_Type_create_indexed_block: fixed-size element
//    blocks at arbitrary element offsets, describing one reading pattern.
//  * File::set_view    — MPI_File_set_view with such a type.
//  * File::read_all    — MPI_File_read_all: a collective two-phase read.
//    Phase 1 partitions the requested byte span into per-rank chunks; each
//    rank performs *data sieving* (one large contiguous read covering its
//    chunk's requested ranges, holes included, when dense enough). Phase 2
//    redistributes the pieces to the ranks whose views requested them.
//  * File::read_at     — independent contiguous read (strategy §5.3.2).
//
// Statistics counters expose bytes-from-disk vs. bytes-exchanged so the
// benches can compare the two reading strategies quantitatively.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "io/retry.hpp"
#include "vmpi/comm.hpp"

namespace qv::vmpi {

// Analog of MPI_Type_create_indexed_block over a file of fixed-size elements.
struct IndexedBlockView {
  std::size_t elem_bytes = 1;               // bytes per element
  std::size_t block_elems = 1;              // elements per block
  std::vector<std::uint64_t> block_offsets; // block starts, in elements

  std::size_t block_bytes() const { return elem_bytes * block_elems; }
  std::size_t total_bytes() const { return block_bytes() * block_offsets.size(); }
};

class File {
 public:
  struct IoStats {
    std::uint64_t disk_bytes = 0;      // bytes actually read from disk
    std::uint64_t useful_bytes = 0;    // bytes the caller asked for
    std::uint64_t exchanged_bytes = 0; // bytes moved between ranks (phase 2)
    std::uint64_t disk_reads = 0;      // number of pread calls
    std::uint64_t retries = 0;         // transient-failure retries performed
    std::uint64_t short_reads = 0;     // partial preads continued by the loop
  };

  // Open for reading. Every rank of `comm` that will participate in
  // read_all must open the file with the same communicator.
  // Throws std::runtime_error when the file cannot be opened.
  File(Comm& comm, const std::string& path);
  ~File();
  File(const File&) = delete;
  File& operator=(const File&) = delete;

  std::uint64_t size_bytes() const { return size_; }

  void set_view(IndexedBlockView view);
  const IndexedBlockView& view() const { return view_; }

  // Retry policy applied per pread attempt. Retrying at the pread level (not
  // around whole reads) keeps transient failures *inside* collective
  // read_all calls, so a group never desynchronizes while one member
  // retries.
  void set_retry_policy(io::RetryPolicy policy) { retry_ = policy; }
  const io::RetryPolicy& retry_policy() const { return retry_; }

  // Independent contiguous read at an absolute byte offset.
  void read_at(std::uint64_t offset, std::span<std::uint8_t> out);

  // Collective noncontiguous read: all ranks of the communicator must call.
  // Fills `out` with this rank's view blocks concatenated in view order.
  // `out.size()` must equal view().total_bytes().
  // `sieve_threshold`: fraction of useful bytes within a covering extent
  // above which one large sieving read replaces many small reads.
  void read_all(std::span<std::uint8_t> out, double sieve_threshold = 0.35);

  const IoStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

 private:
  struct Range {
    std::uint64_t begin = 0;  // absolute file offset
    std::uint64_t end = 0;
    std::uint64_t out_offset = 0;  // position within the caller's out buffer
  };

  // Coalesced, sorted ranges for the current view.
  std::vector<Range> view_ranges() const;
  // One logical read: retried per retry_ on TransientIoError; throws IoError
  // once attempts are exhausted. Fault-plan injections happen here.
  void pread_exact(std::uint64_t offset, std::span<std::uint8_t> out);
  void pread_attempt(std::uint64_t offset, std::span<std::uint8_t> out,
                     std::uint64_t op, int attempt);

  Comm* comm_;
  int fd_ = -1;
  std::uint64_t size_ = 0;
  std::string path_;
  IndexedBlockView view_;
  IoStats stats_;
  io::RetryPolicy retry_;
};

}  // namespace qv::vmpi
