#include "vmpi/comm.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <exception>
#include <string>
#include <thread>

#include "metrics/metrics.hpp"
#include "trace/trace.hpp"

namespace qv::vmpi {

namespace {
// Registry counters for the transport. Statics resolve the name lookup once;
// the per-call cost is one relaxed fetch_add.
metrics::Counter& send_calls() { static auto& c = metrics::counter("vmpi.send.calls"); return c; }
metrics::Counter& send_bytes() { static auto& c = metrics::counter("vmpi.send.bytes"); return c; }
metrics::Counter& recv_calls() { static auto& c = metrics::counter("vmpi.recv.calls"); return c; }
metrics::Counter& recv_bytes() { static auto& c = metrics::counter("vmpi.recv.bytes"); return c; }
metrics::Counter& recv_timeouts() { static auto& c = metrics::counter("vmpi.recv.timeouts"); return c; }
metrics::Counter& collective_calls() { static auto& c = metrics::counter("vmpi.collective.calls"); return c; }
metrics::Counter& collective_bytes() { static auto& c = metrics::counter("vmpi.collective.bytes"); return c; }

std::atomic<FaultObserver> g_fault_observer{nullptr};

void notify_fault(const char* reason, int rank) noexcept {
  if (FaultObserver obs = g_fault_observer.load(std::memory_order_acquire))
    obs(reason, rank);
}
}  // namespace

void set_fault_observer(FaultObserver obs) noexcept {
  g_fault_observer.store(obs, std::memory_order_release);
}

namespace detail {

World::World(int nranks, std::shared_ptr<const FaultPlan> plan)
    : size(nranks), fault_plan(std::move(plan)) {
  mailboxes.reserve(std::size_t(nranks));
  for (int i = 0; i < nranks; ++i) mailboxes.push_back(std::make_unique<Mailbox>());
  if (fault_plan) {
    fault_state.reserve(std::size_t(nranks));
    for (int i = 0; i < nranks; ++i)
      fault_state.push_back(
          std::make_unique<FaultRankState>(fault_plan->seed, i));
  }
}

GroupBarrier& World::barrier_for(int context) {
  std::lock_guard lk(barrier_table_mu);
  if (std::size_t(context) >= barriers.size()) {
    barriers.resize(std::size_t(context) + 1);
  }
  if (!barriers[std::size_t(context)]) {
    barriers[std::size_t(context)] = std::make_unique<GroupBarrier>();
  }
  return *barriers[std::size_t(context)];
}

int World::allocate_contexts(int count) {
  std::lock_guard lk(context_mu);
  int first = next_context;
  next_context += count;
  return first;
}

void World::abort_all() {
  aborted.store(true);
  // Take each waiter's lock before notifying so the flag is visible to the
  // predicate re-check and no wakeup is missed.
  for (auto& mb : mailboxes) {
    std::lock_guard lk(mb->mu);
    mb->cv.notify_all();
  }
  std::lock_guard tlk(barrier_table_mu);
  for (auto& b : barriers) {
    if (!b) continue;
    std::lock_guard lk(b->mu);
    b->cv.notify_all();
  }
}

}  // namespace detail

namespace {
// Internal tags for collectives; user tags must be >= 0.
constexpr int kTagBcastSize = -100;
constexpr int kTagBcastData = -101;
constexpr int kTagGather = -102;
constexpr int kTagSplitRequest = -103;
constexpr int kTagSplitReply = -104;
}  // namespace

void Comm::send(int dest, int tag, std::span<const std::uint8_t> data) {
  trace::Span tsp("vmpi", "send", std::int64_t(data.size()));
  send_calls().add();
  send_bytes().add(data.size());
  if (dest < 0 || dest >= size()) throw std::runtime_error("vmpi: bad dest rank");
  int wdest = members_[std::size_t(dest)];
  detail::Mailbox& mb = *world_->mailboxes[std::size_t(wdest)];
  detail::Message msg;
  msg.context = context_;
  msg.source = world_rank();
  msg.tag = tag;
  msg.payload.assign(data.begin(), data.end());

  // Fault injection: user-tag payloads only; the runtime's internal
  // collective traffic (negative tags) is exempt so the transport itself
  // stays functional under any plan.
  if (detail::FaultRankState* fs = fault_state();
      fs && tag >= 0 && world_->fault_plan->wants_send_faults()) {
    const FaultPlan& plan = *world_->fault_plan;
    std::uint64_t n = fs->sends++;
    // Draw both decisions unconditionally so the RNG chain advances the
    // same way whatever the rates are (keeps plans comparable across runs).
    double u_corrupt = fs->send_rng.next_double();
    double u_delay = fs->send_rng.next_double();
    bool corrupt = FaultPlan::matches(plan.corrupt_sends, world_rank(), n) ||
                   (plan.corrupt_rate > 0.0 && u_corrupt < plan.corrupt_rate);
    // Corruption is confined to bytes past corrupt_offset_min, the model
    // being that headers (and header-sized control messages — NACKs, DONE
    // markers) ride a checksummed transport while bulk payloads do not.
    if (corrupt && msg.payload.size() > plan.corrupt_offset_min) {
      std::size_t lo = plan.corrupt_offset_min;
      std::uint64_t h = n;
      std::size_t idx = lo + std::size_t(splitmix64(h) % (msg.payload.size() - lo));
      msg.payload[idx] ^= 0xA5;  // nonzero mask: the byte always changes
      ++fs->injected_corruptions;
    }
    if (plan.delay_rate > 0.0 && u_delay < plan.delay_rate) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(plan.delay_ms));
      ++fs->injected_delays;
    }
  }

  {
    std::lock_guard lk(mb.mu);
    mb.queue.push_back(std::move(msg));
  }
  mb.cv.notify_all();
}

void Comm::fault_checkpoint(int step) {
  const FaultPlan* plan = world_->fault_plan.get();
  if (plan && plan->kill_rank == world_rank() && plan->kill_at_step == step) {
    throw RankKilled("vmpi: rank " + std::to_string(world_rank()) +
                     " killed at step " + std::to_string(step));
  }
}

Status Comm::recv_match(int source, int tag, std::vector<std::uint8_t>& out,
                        bool block, bool* found) {
  int wsource = source == kAnySource ? kAnySource : members_[std::size_t(source)];
  detail::Mailbox& mb = *world_->mailboxes[std::size_t(world_rank())];
  std::unique_lock lk(mb.mu);
  auto match = [&]() -> std::deque<detail::Message>::iterator {
    for (auto it = mb.queue.begin(); it != mb.queue.end(); ++it) {
      if (it->context != context_) continue;
      if (wsource != kAnySource && it->source != wsource) continue;
      if (tag != kAnyTag && it->tag != tag) continue;
      return it;
    }
    return mb.queue.end();
  };
  auto it = match();
  if (it == mb.queue.end()) {
    if (!block) {
      if (found) *found = false;
      return {};
    }
    mb.cv.wait(lk, [&] {
      it = match();
      return it != mb.queue.end() || world_->aborted.load();
    });
    // A queued match is still delivered after an abort; only an empty wait
    // turns into an error.
    if (it == mb.queue.end()) throw WorldAborted();
  }
  if (found) *found = true;
  Status st;
  // Translate the world source rank back to this communicator's numbering.
  auto pos = std::find(members_.begin(), members_.end(), it->source);
  st.source = int(pos - members_.begin());
  st.tag = it->tag;
  st.bytes = it->payload.size();
  out = std::move(it->payload);
  mb.queue.erase(it);
  return st;
}

Status Comm::recv(int source, int tag, std::vector<std::uint8_t>& out) {
  trace::Span tsp("vmpi", "recv", tag >= 0 ? tag : -1);
  Status st = recv_match(source, tag, out, /*block=*/true, nullptr);
  recv_calls().add();
  recv_bytes().add(st.bytes);
  return st;
}

bool Comm::recv_timeout(int source, int tag, std::vector<std::uint8_t>& out,
                        std::chrono::milliseconds timeout, Status* st) {
  trace::Span tsp("vmpi", "recv_timeout", tag >= 0 ? tag : -1);
  int wsource = source == kAnySource ? kAnySource : members_[std::size_t(source)];
  detail::Mailbox& mb = *world_->mailboxes[std::size_t(world_rank())];
  std::unique_lock lk(mb.mu);
  auto match = [&]() -> std::deque<detail::Message>::iterator {
    for (auto it = mb.queue.begin(); it != mb.queue.end(); ++it) {
      if (it->context != context_) continue;
      if (wsource != kAnySource && it->source != wsource) continue;
      if (tag != kAnyTag && it->tag != tag) continue;
      return it;
    }
    return mb.queue.end();
  };
  auto it = match();
  if (it == mb.queue.end()) {
    mb.cv.wait_for(lk, timeout, [&] {
      it = match();
      return it != mb.queue.end() || world_->aborted.load();
    });
    if (it == mb.queue.end()) {
      if (world_->aborted.load()) throw WorldAborted();
      recv_timeouts().add();
      return false;  // deadline expired with nothing matching
    }
  }
  recv_calls().add();
  recv_bytes().add(it->payload.size());
  if (st) {
    auto pos = std::find(members_.begin(), members_.end(), it->source);
    st->source = int(pos - members_.begin());
    st->tag = it->tag;
    st->bytes = it->payload.size();
  }
  out = std::move(it->payload);
  mb.queue.erase(it);
  return true;
}

bool Comm::try_recv(int source, int tag, std::vector<std::uint8_t>& out,
                    Status* st) {
  bool found = false;
  Status s = recv_match(source, tag, out, /*block=*/false, &found);
  if (found && st) *st = s;
  return found;
}

Request Comm::irecv(int source, int tag) {
  Request r;
  r.comm_ = this;
  r.source_ = source;
  r.tag_ = tag;
  return r;
}

bool Comm::iprobe(int source, int tag, Status* status) {
  int wsource = source == kAnySource ? kAnySource : members_[std::size_t(source)];
  detail::Mailbox& mb = *world_->mailboxes[std::size_t(world_rank())];
  std::lock_guard lk(mb.mu);
  for (const auto& m : mb.queue) {
    if (m.context != context_) continue;
    if (wsource != kAnySource && m.source != wsource) continue;
    if (tag != kAnyTag && m.tag != tag) continue;
    if (status) {
      auto pos = std::find(members_.begin(), members_.end(), m.source);
      status->source = int(pos - members_.begin());
      status->tag = m.tag;
      status->bytes = m.payload.size();
    }
    return true;
  }
  return false;
}

Status Request::wait(std::vector<std::uint8_t>& out) {
  if (!comm_) throw std::runtime_error("vmpi: wait on null request");
  return comm_->recv_match(source_, tag_, out, /*block=*/true, nullptr);
}

bool Request::test() {
  if (!comm_) throw std::runtime_error("vmpi: test on null request");
  return comm_->iprobe(source_, tag_);
}

void Comm::barrier() {
  trace::Span tsp("vmpi", "barrier");
  collective_calls().add();
  detail::GroupBarrier& b = world_->barrier_for(context_);
  std::unique_lock lk(b.mu);
  std::uint64_t gen = b.generation;
  if (++b.arrived == size()) {
    b.arrived = 0;
    ++b.generation;
    b.cv.notify_all();
  } else {
    b.cv.wait(lk,
              [&] { return b.generation != gen || world_->aborted.load(); });
    if (b.generation == gen) {
      --b.arrived;
      throw WorldAborted();
    }
  }
}

void Comm::bcast(std::vector<std::uint8_t>& buf, int root) {
  trace::Span tsp("vmpi", "bcast", std::int64_t(buf.size()));
  collective_calls().add();
  collective_bytes().add(buf.size());
  if (rank_ == root) {
    std::uint64_t n = buf.size();
    for (int r = 0; r < size(); ++r) {
      if (r == root) continue;
      send_value(r, kTagBcastSize, n);
      send(r, kTagBcastData, buf);
    }
  } else {
    auto n = recv_value<std::uint64_t>(root, kTagBcastSize);
    Status st = recv(root, kTagBcastData, buf);
    if (st.bytes != n) throw std::runtime_error("vmpi: bcast size mismatch");
  }
}

std::vector<std::vector<std::uint8_t>> Comm::gather(
    std::span<const std::uint8_t> mine, int root) {
  trace::Span tsp("vmpi", "gather", std::int64_t(mine.size()));
  collective_calls().add();
  collective_bytes().add(mine.size());
  std::vector<std::vector<std::uint8_t>> out;
  if (rank_ == root) {
    out.resize(static_cast<std::size_t>(size()));
    out[std::size_t(root)].assign(mine.begin(), mine.end());
    for (int r = 0; r < size(); ++r) {
      if (r == root) continue;
      recv(r, kTagGather, out[std::size_t(r)]);
    }
  } else {
    send(root, kTagGather, mine);
  }
  return out;
}

std::vector<std::vector<std::uint8_t>> Comm::allgather(
    std::span<const std::uint8_t> mine) {
  trace::Span tsp("vmpi", "allgather", std::int64_t(mine.size()));
  collective_calls().add();
  collective_bytes().add(mine.size());
  auto blobs = gather(mine, 0);
  // Serialize [count][len,data]... and broadcast.
  std::vector<std::uint8_t> packed;
  if (rank_ == 0) {
    for (const auto& b : blobs) {
      std::uint64_t len = b.size();
      auto* p = reinterpret_cast<const std::uint8_t*>(&len);
      packed.insert(packed.end(), p, p + sizeof(len));
      packed.insert(packed.end(), b.begin(), b.end());
    }
  }
  bcast(packed, 0);
  std::vector<std::vector<std::uint8_t>> out(static_cast<std::size_t>(size()));
  std::size_t off = 0;
  for (int r = 0; r < size(); ++r) {
    std::uint64_t len = 0;
    std::memcpy(&len, packed.data() + off, sizeof(len));
    off += sizeof(len);
    out[std::size_t(r)].assign(packed.begin() + std::ptrdiff_t(off),
                               packed.begin() + std::ptrdiff_t(off + len));
    off += len;
  }
  return out;
}

void Comm::allreduce_sum(std::span<double> inout) {
  auto blobs = allgather(
      {reinterpret_cast<const std::uint8_t*>(inout.data()), inout.size_bytes()});
  std::fill(inout.begin(), inout.end(), 0.0);
  for (const auto& b : blobs) {
    if (b.size() != inout.size_bytes())
      throw std::runtime_error("vmpi: allreduce size mismatch");
    const double* vals = reinterpret_cast<const double*>(b.data());
    for (std::size_t i = 0; i < inout.size(); ++i) inout[i] += vals[i];
  }
}

void Comm::allreduce_sum_f(std::span<float> inout) {
  auto blobs = allgather(
      {reinterpret_cast<const std::uint8_t*>(inout.data()), inout.size_bytes()});
  std::fill(inout.begin(), inout.end(), 0.0f);
  for (const auto& b : blobs) {
    if (b.size() != inout.size_bytes())
      throw std::runtime_error("vmpi: allreduce size mismatch");
    const float* vals = reinterpret_cast<const float*>(b.data());
    for (std::size_t i = 0; i < inout.size(); ++i) inout[i] += vals[i];
  }
}

double Comm::allreduce_max(double v) {
  auto all = allgather_value(v);
  return *std::max_element(all.begin(), all.end());
}

Comm Comm::split(int color, int key) {
  struct SplitMsg {
    int color, key, old_rank;
  };
  // Rank 0 of this communicator coordinates.
  if (rank_ == 0) {
    std::vector<SplitMsg> reqs(static_cast<std::size_t>(size()));
    reqs[0] = {color, key, 0};
    // Collect requests (rank 0 uses a non-const copy of this comm's state
    // via const_cast-free local sends: we re-create a sending facade).
    for (int r = 1; r < size(); ++r) {
      auto m = recv_vec<int>(r, kTagSplitRequest);
      reqs[std::size_t(r)] = {m[0], m[1], r};
    }
    // Group by color, order by (key, old_rank).
    std::vector<int> colors;
    for (const auto& m : reqs) colors.push_back(m.color);
    std::sort(colors.begin(), colors.end());
    colors.erase(std::unique(colors.begin(), colors.end()), colors.end());
    int first_ctx = world_->allocate_contexts(int(colors.size()));
    // Reply per rank: [context, new_rank, nmembers, world_ranks...].
    std::vector<std::vector<int>> replies(static_cast<std::size_t>(size()));
    for (std::size_t ci = 0; ci < colors.size(); ++ci) {
      std::vector<SplitMsg> group;
      for (const auto& m : reqs)
        if (m.color == colors[ci]) group.push_back(m);
      std::sort(group.begin(), group.end(), [](const SplitMsg& a, const SplitMsg& b) {
        if (a.key != b.key) return a.key < b.key;
        return a.old_rank < b.old_rank;
      });
      std::vector<int> wmembers;
      for (const auto& m : group)
        wmembers.push_back(members_[std::size_t(m.old_rank)]);
      for (std::size_t gi = 0; gi < group.size(); ++gi) {
        std::vector<int>& rep = replies[std::size_t(group[gi].old_rank)];
        rep = {first_ctx + int(ci), int(gi), int(group.size())};
        rep.insert(rep.end(), wmembers.begin(), wmembers.end());
      }
    }
    for (int r = 1; r < size(); ++r) {
      send_vec<int>(r, kTagSplitReply, replies[std::size_t(r)]);
    }
    const std::vector<int>& rep = replies[0];
    std::vector<int> wmembers(rep.begin() + 3, rep.end());
    return Comm(world_, rep[0], std::move(wmembers), rep[1]);
  }
  int req[2] = {color, key};
  send_vec<int>(0, kTagSplitRequest, std::span<const int>(req, 2));
  auto rep = recv_vec<int>(0, kTagSplitReply);
  std::vector<int> wmembers(rep.begin() + 3, rep.end());
  return Comm(world_, rep[0], std::move(wmembers), rep[1]);
}

void Runtime::run(int nranks, const std::function<void(Comm&)>& fn,
                  std::shared_ptr<const FaultPlan> fault_plan) {
  auto world = std::make_shared<detail::World>(nranks, std::move(fault_plan));
  std::vector<int> all(static_cast<std::size_t>(nranks));
  for (int i = 0; i < nranks; ++i) all[std::size_t(i)] = i;

  std::vector<std::thread> threads;
  std::mutex err_mu;
  std::exception_ptr first_error;

  threads.reserve(std::size_t(nranks));
  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&, r] {
      Comm comm(world, /*context=*/0, all, r);
      if (trace::enabled()) trace::set_thread(r, "rank " + std::to_string(r));
      try {
        fn(comm);
      } catch (const RankKilled&) {
        // An injected kill is a clean exit: the rank simply vanishes, as a
        // crashed node does. Survivors detect the silence via recv_timeout.
        notify_fault("rank_killed", r);
      } catch (...) {
        bool is_first = false;
        {
          std::lock_guard lk(err_mu);
          if (!first_error) {
            first_error = std::current_exception();
            is_first = true;
          }
        }
        if (is_first) notify_fault("world_abort", r);
        // Wake every peer blocked on a recv or barrier: with this rank gone
        // nobody will ever send what they wait for, and a hung join is far
        // worse than the cascade of WorldAborted exits that follows. The
        // original exception is recorded first, so it is what run() rethrows.
        world->abort_all();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace qv::vmpi
