#include "vmpi/file.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

#include "metrics/metrics.hpp"
#include "trace/trace.hpp"

namespace qv::vmpi {

namespace {
constexpr int kTagFileData = -200;

// Global file-I/O counters; they mirror the per-file IoStats increments so
// run reports see whole-process I/O without plumbing stats structs around.
metrics::Counter& io_disk_bytes() { static auto& c = metrics::counter("io.disk_bytes"); return c; }
metrics::Counter& io_disk_reads() { static auto& c = metrics::counter("io.disk_reads"); return c; }
metrics::Counter& io_useful_bytes() { static auto& c = metrics::counter("io.useful_bytes"); return c; }
metrics::Counter& io_exchanged_bytes() { static auto& c = metrics::counter("io.exchanged_bytes"); return c; }
metrics::Counter& io_retries() { static auto& c = metrics::counter("io.retries"); return c; }
metrics::Counter& io_short_reads() { static auto& c = metrics::counter("io.short_reads"); return c; }

// Serialized range pair.
struct WireRange {
  std::uint64_t begin;
  std::uint64_t end;
};
}  // namespace

File::File(Comm& comm, const std::string& path) : comm_(&comm), path_(path) {
  fd_ = ::open(path.c_str(), O_RDONLY);
  if (fd_ < 0) throw std::runtime_error("vmpi::File: cannot open " + path);
  struct stat st{};
  if (::fstat(fd_, &st) != 0) {
    ::close(fd_);
    throw std::runtime_error("vmpi::File: cannot stat " + path);
  }
  size_ = std::uint64_t(st.st_size);
}

File::~File() {
  if (fd_ >= 0) ::close(fd_);
}

void File::set_view(IndexedBlockView view) { view_ = std::move(view); }

// One pread attempt, with fault-plan injections: a transient error throws
// before any bytes move; a short read delivers a strict prefix (the caller's
// loop continues it, which is exactly the path being exercised).
void File::pread_attempt(std::uint64_t offset, std::span<std::uint8_t> out,
                         std::uint64_t op, int attempt) {
  detail::FaultRankState* fs = comm_->fault_state();
  const FaultPlan* plan = fs ? comm_->world_->fault_plan.get() : nullptr;
  std::size_t want = out.size();
  if (plan && plan->wants_io_faults()) {
    if (plan->read_delay_ms > 0.0) {
      // Slow-disk model: latency first, then the attempt may still fail.
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(plan->read_delay_ms));
    }
    if (plan->path_fails(path_)) {
      throw TransientIoError("vmpi::File: injected failure (failing path) " +
                             path_);
    }
    double u_err = fs->io_rng.next_double();
    double u_short = fs->io_rng.next_double();
    bool explicit_hit =
        attempt == 0 &&
        FaultPlan::matches(plan->read_errors, comm_->world_rank(), op);
    if (explicit_hit ||
        (plan->read_error_rate > 0.0 && u_err < plan->read_error_rate)) {
      ++fs->injected_read_errors;
      throw TransientIoError("vmpi::File: injected transient read error at " +
                             path_ + " offset " + std::to_string(offset));
    }
    if (plan->short_read_rate > 0.0 && u_short < plan->short_read_rate &&
        want > 1) {
      want = (want + 1) / 2;  // deliver a strict prefix this syscall
      ++fs->injected_short_reads;
      ++stats_.short_reads;
      io_short_reads().add();
    }
  }
  std::size_t done = 0;
  while (done < out.size()) {
    ssize_t n = ::pread(fd_, out.data() + done, want - done, off_t(offset + done));
    if (n <= 0)
      throw TransientIoError("vmpi::File: pread failed/short at " + path_);
    done += std::size_t(n);
    if (done < out.size() && want < out.size()) {
      // The injected prefix is delivered; the rest of this attempt reads
      // normally (a real short read looks the same to the caller).
      want = out.size();
      stats_.disk_reads += 1;
      io_disk_reads().add();
    }
  }
  stats_.disk_bytes += out.size();
  stats_.disk_reads += 1;
  io_disk_bytes().add(out.size());
  io_disk_reads().add();
}

void File::pread_exact(std::uint64_t offset, std::span<std::uint8_t> out) {
  trace::Span tsp("vmpi", "pread", std::int64_t(out.size()));
  detail::FaultRankState* fs = comm_->fault_state();
  std::uint64_t op = fs ? fs->preads++ : 0;
  for (int attempt = 0;; ++attempt) {
    try {
      pread_attempt(offset, out, op, attempt);
      return;
    } catch (const TransientIoError&) {
      if (attempt + 1 >= retry_.max_attempts) {
        throw IoError("vmpi::File: read of " + path_ + " failed after " +
                      std::to_string(retry_.max_attempts) + " attempts");
      }
      ++stats_.retries;
      io_retries().add();
      std::this_thread::sleep_for(retry_.delay_for(attempt));
    }
  }
}

void File::read_at(std::uint64_t offset, std::span<std::uint8_t> out) {
  pread_exact(offset, out);
  stats_.useful_bytes += out.size();
  io_useful_bytes().add(out.size());
}

std::vector<File::Range> File::view_ranges() const {
  std::vector<Range> ranges;
  ranges.reserve(view_.block_offsets.size());
  const std::uint64_t bb = view_.block_bytes();
  std::uint64_t out_off = 0;
  for (std::uint64_t off_elems : view_.block_offsets) {
    std::uint64_t b = off_elems * view_.elem_bytes;
    ranges.push_back({b, b + bb, out_off});
    out_off += bb;
  }
  std::sort(ranges.begin(), ranges.end(),
            [](const Range& a, const Range& b) { return a.begin < b.begin; });
  // Coalesce blocks adjacent in both the file and the output buffer.
  std::vector<Range> merged;
  for (const Range& r : ranges) {
    if (!merged.empty() && merged.back().end == r.begin &&
        merged.back().out_offset + (merged.back().end - merged.back().begin) ==
            r.out_offset) {
      merged.back().end = r.end;
    } else {
      merged.push_back(r);
    }
  }
  return merged;
}

void File::read_all(std::span<std::uint8_t> out, double sieve_threshold) {
  trace::Span tsp("vmpi", "read_all", std::int64_t(out.size()));
  if (out.size() != view_.total_bytes())
    throw std::runtime_error("vmpi::File::read_all: buffer size != view size");
  const int P = comm_->size();
  const int me = comm_->rank();

  std::vector<Range> mine = view_ranges();
  stats_.useful_bytes += out.size();
  io_useful_bytes().add(out.size());

  // Exchange (begin, end) lists so every rank knows every request.
  std::vector<WireRange> wire(mine.size());
  for (std::size_t i = 0; i < mine.size(); ++i) wire[i] = {mine[i].begin, mine[i].end};
  auto all_blobs = comm_->allgather(
      {reinterpret_cast<const std::uint8_t*>(wire.data()),
       wire.size() * sizeof(WireRange)});
  std::vector<std::vector<WireRange>> all_ranges(static_cast<std::size_t>(P));
  std::uint64_t lo = UINT64_MAX, hi = 0;
  for (int r = 0; r < P; ++r) {
    const auto& b = all_blobs[std::size_t(r)];
    auto& v = all_ranges[std::size_t(r)];
    v.resize(b.size() / sizeof(WireRange));
    std::memcpy(v.data(), b.data(), b.size());
    for (const auto& w : v) {
      lo = std::min(lo, w.begin);
      hi = std::max(hi, w.end);
    }
  }
  if (hi <= lo) {
    // Nothing requested anywhere; still complete the collective.
    for (int r = 0; r < P; ++r) comm_->send(r, kTagFileData, {});
    for (int r = 0; r < P; ++r) {
      std::vector<std::uint8_t> ignore;
      comm_->recv(r, kTagFileData, ignore);
    }
    return;
  }

  // Phase-one chunk ownership: contiguous, equal byte spans.
  const std::uint64_t span = hi - lo;
  const std::uint64_t chunk = (span + std::uint64_t(P) - 1) / std::uint64_t(P);
  const std::uint64_t my_lo = lo + chunk * std::uint64_t(me);
  const std::uint64_t my_hi = std::min(hi, my_lo + chunk);

  // Union of requested ranges within my chunk, merged.
  std::vector<WireRange> needed;
  for (const auto& v : all_ranges) {
    for (const auto& w : v) {
      std::uint64_t b = std::max(w.begin, my_lo);
      std::uint64_t e = std::min(w.end, my_hi);
      if (b < e) needed.push_back({b, e});
    }
  }
  std::sort(needed.begin(), needed.end(),
            [](const WireRange& a, const WireRange& b) { return a.begin < b.begin; });
  std::vector<WireRange> covered;
  for (const auto& w : needed) {
    if (!covered.empty() && w.begin <= covered.back().end) {
      covered.back().end = std::max(covered.back().end, w.end);
    } else {
      covered.push_back(w);
    }
  }

  // Read my chunk's data: one sieving read when dense enough. A permanent
  // read failure here must not desynchronize the collective: every rank
  // agrees on success/failure below before any phase-two traffic moves.
  std::vector<std::uint8_t> chunk_buf;
  std::uint64_t chunk_base = 0;
  bool have_extent = false;
  std::uint8_t read_ok = 1;
  try {
    if (!covered.empty()) {
      std::uint64_t useful = 0;
      for (const auto& w : covered) useful += w.end - w.begin;
      std::uint64_t ext_lo = covered.front().begin;
      std::uint64_t ext_hi = covered.back().end;
      double density = double(useful) / double(ext_hi - ext_lo);
      if (density >= sieve_threshold) {
        chunk_buf.resize(ext_hi - ext_lo);
        pread_exact(ext_lo, chunk_buf);
        chunk_base = ext_lo;
        have_extent = true;
      } else {
        // Sparse: read ranges individually into a compacted buffer with an
        // index so extraction below can still find them.
        std::uint64_t total = useful;
        chunk_buf.resize(total);
        std::uint64_t off = 0;
        for (auto& w : covered) {
          pread_exact(w.begin, {chunk_buf.data() + off, w.end - w.begin});
          // Reuse out_offset trick: stash the compact offset in-place.
          w.begin |= 0;  // no-op: begin stays the absolute offset
          off += w.end - w.begin;
        }
        chunk_base = 0;  // compact addressing resolved via `covered` walk below
        have_extent = false;
      }
    }
  } catch (const IoError&) {
    read_ok = 0;
  }

  // Collective abort: if any chunk owner failed its reads (after retries),
  // every rank throws together and nobody is left waiting for pieces.
  auto ok_blobs = comm_->allgather({&read_ok, 1});
  for (const auto& b : ok_blobs) {
    if (!b.empty() && b[0] == 0) {
      throw IoError("vmpi::File::read_all: collective read of " + path_ +
                    " aborted (a rank's chunk read failed permanently)");
    }
  }

  // Byte accessor into what we read.
  auto fetch = [&](std::uint64_t abs_b, std::uint64_t abs_e,
                   std::vector<std::uint8_t>& dst) {
    if (have_extent) {
      dst.insert(dst.end(), chunk_buf.begin() + std::ptrdiff_t(abs_b - chunk_base),
                 chunk_buf.begin() + std::ptrdiff_t(abs_e - chunk_base));
      return;
    }
    // Compacted layout: walk `covered` accumulating compact offsets.
    std::uint64_t off = 0;
    for (const auto& w : covered) {
      std::uint64_t len = w.end - w.begin;
      if (abs_b >= w.begin && abs_e <= w.end) {
        std::uint64_t rel = off + (abs_b - w.begin);
        dst.insert(dst.end(), chunk_buf.begin() + std::ptrdiff_t(rel),
                   chunk_buf.begin() + std::ptrdiff_t(rel + (abs_e - abs_b)));
        return;
      }
      off += len;
    }
    throw std::runtime_error("vmpi::File: internal sieve lookup failure");
  };

  // Phase two: ship each rank the pieces of its ranges inside my chunk.
  // Message format: repeated [range_idx:u64][abs_begin:u64][len:u64][bytes].
  // The explicit range index keeps the scatter correct even when a rank's
  // view ranges overlap in the file (legal with indexed-block views).
  for (int r = 0; r < P; ++r) {
    std::vector<std::uint8_t> msg;
    const auto& ranges = all_ranges[std::size_t(r)];
    for (std::size_t ri = 0; ri < ranges.size(); ++ri) {
      const auto& w = ranges[ri];
      std::uint64_t b = std::max(w.begin, my_lo);
      std::uint64_t e = std::min(w.end, my_hi);
      if (b >= e) continue;
      std::uint64_t hdr[3] = {ri, b, e - b};
      const auto* hp = reinterpret_cast<const std::uint8_t*>(hdr);
      msg.insert(msg.end(), hp, hp + sizeof(hdr));
      fetch(b, e, msg);
    }
    if (r != me) {
      stats_.exchanged_bytes += msg.size();
      io_exchanged_bytes().add(msg.size());
    }
    comm_->send(r, kTagFileData, msg);
  }

  // Collect pieces from every chunk owner and scatter into `out`.
  for (int r = 0; r < P; ++r) {
    std::vector<std::uint8_t> msg;
    comm_->recv(r, kTagFileData, msg);
    std::size_t pos = 0;
    while (pos < msg.size()) {
      std::uint64_t hdr[3];
      std::memcpy(hdr, msg.data() + pos, sizeof(hdr));
      pos += sizeof(hdr);
      std::uint64_t range_idx = hdr[0], abs_b = hdr[1], len = hdr[2];
      if (range_idx >= mine.size())
        throw std::runtime_error("vmpi::File: piece range index out of bounds");
      const Range& rr = mine[std::size_t(range_idx)];
      if (abs_b < rr.begin || abs_b + len > rr.end)
        throw std::runtime_error("vmpi::File: piece does not fit its range");
      std::uint64_t dst = rr.out_offset + (abs_b - rr.begin);
      std::memcpy(out.data() + dst, msg.data() + pos, len);
      pos += len;
    }
  }
}

}  // namespace qv::vmpi
