#include "render/partial_image.hpp"

#include <algorithm>

namespace qv::render {

img::Image compose_reference(std::vector<const PartialImage*> partials,
                             int width, int height) {
  // Sort whole partials by order; since blocks are disjoint in the global
  // visibility order, per-pixel front-to-back equals partial-by-partial
  // "under" accumulation in that order.
  std::sort(partials.begin(), partials.end(),
            [](const PartialImage* a, const PartialImage* b) {
              return a->order < b->order;
            });
  img::Image out(width, height);
  for (const PartialImage* p : partials) {
    if (!p || p->rect.empty()) continue;
    ScreenRect r = p->rect.clipped(width, height);
    for (int y = r.y0; y < r.y1; ++y) {
      for (int x = r.x0; x < r.x1; ++x) {
        const img::Rgba& src = p->at_screen(x, y);
        if (src.transparent()) continue;
        out.at(x, y).blend_under(src);
      }
    }
  }
  return out;
}

}  // namespace qv::render
