// Exact front-to-back visibility ordering of octree blocks for a viewpoint.
//
// Disjoint octants of one octree always admit a correct visibility order:
// at every internal node, visit the child octant containing (or nearest to)
// the eye first, then its face/edge neighbors by the number of axes on
// which they differ from the eye's octant. This is the classical octree
// traversal used by volume renderers; we apply it recursively to the block
// set (blocks are octants at mixed levels).
#pragma once

#include <span>
#include <vector>

#include "octree/blocks.hpp"
#include "util/vec.hpp"

namespace qv::render {

// Returns a permutation of block indices, front-to-back as seen from `eye`.
// `domain` is the octree's root box.
std::vector<std::size_t> visibility_order(std::span<const octree::Block> blocks,
                                          const Box3& domain, Vec3 eye);

}  // namespace qv::render
