#include "render/order.hpp"

#include <algorithm>
#include <bit>

namespace qv::render {

namespace {

using mesh::OctKey;

// Octant of `node`'s child grid nearest the eye.
int eye_octant(const Box3& node_box, Vec3 eye) {
  Vec3 c = node_box.center();
  int oct = 0;
  if (eye.x > c.x) oct |= 1;
  if (eye.y > c.y) oct |= 2;
  if (eye.z > c.z) oct |= 4;
  return oct;
}

struct Sorter {
  std::span<const octree::Block> blocks;
  const Box3& domain;
  Vec3 eye;
  std::vector<std::size_t> out;

  // `indices`: blocks whose root is a descendant of (or equal to) `node`.
  void visit(const OctKey& node, std::vector<std::size_t>& indices) {
    if (indices.empty()) return;
    // Blocks exactly at this octant are emitted (they cannot overlap any
    // deeper sibling since blocks are disjoint).
    std::vector<std::size_t> here;
    std::vector<std::size_t> children[8];
    for (std::size_t i : indices) {
      const OctKey& k = blocks[i].root;
      if (k == node) {
        here.push_back(i);
      } else {
        OctKey child_anc = k.ancestor(node.level + 1);
        int oct = int(child_anc.x & 1u) | (int(child_anc.y & 1u) << 1) |
                  (int(child_anc.z & 1u) << 2);
        children[oct].push_back(i);
      }
    }
    for (std::size_t i : here) out.push_back(i);

    int s = eye_octant(node.box(domain), eye);
    // Visit children by Hamming distance to the eye octant: the classical
    // correct front-to-back order for octrees.
    int order_buf[8];
    int n = 0;
    for (int d = 0; d <= 3; ++d) {
      for (int c = 0; c < 8; ++c) {
        if (std::popcount(unsigned(c ^ s)) == d) order_buf[n++] = c;
      }
    }
    for (int idx = 0; idx < 8; ++idx) {
      visit(node.child(order_buf[idx]), children[order_buf[idx]]);
    }
  }
};

}  // namespace

std::vector<std::size_t> visibility_order(std::span<const octree::Block> blocks,
                                          const Box3& domain, Vec3 eye) {
  Sorter s{blocks, domain, eye, {}};
  std::vector<std::size_t> all(blocks.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  s.visit(OctKey{}, all);
  return s.out;
}

}  // namespace qv::render
