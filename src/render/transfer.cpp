#include "render/transfer.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <span>
#include <vector>

namespace qv::render {

TransferFunction::TransferFunction(std::span<const ControlPoint> points) {
  std::vector<ControlPoint> cp(points.begin(), points.end());
  std::sort(cp.begin(), cp.end(),
            [](const ControlPoint& a, const ControlPoint& b) {
              return a.value < b.value;
            });
  for (int i = 0; i < kTableSize; ++i) {
    float v = float(i) / float(kTableSize - 1);
    if (cp.empty()) {
      table_[std::size_t(i)] = {Vec3{v, v, v}, v};
      continue;
    }
    if (v <= cp.front().value) {
      table_[std::size_t(i)] = {cp.front().color, cp.front().opacity};
      continue;
    }
    if (v >= cp.back().value) {
      table_[std::size_t(i)] = {cp.back().color, cp.back().opacity};
      continue;
    }
    for (std::size_t k = 0; k + 1 < cp.size(); ++k) {
      if (v >= cp[k].value && v <= cp[k + 1].value) {
        float span = cp[k + 1].value - cp[k].value;
        float f = span > 0.0f ? (v - cp[k].value) / span : 0.0f;
        table_[std::size_t(i)] = {
            cp[k].color * (1.0f - f) + cp[k + 1].color * f,
            cp[k].opacity * (1.0f - f) + cp[k + 1].opacity * f};
        break;
      }
    }
  }
}

bool TransferFunction::opacity_zero_in(float lo, float hi) const {
  if (!(lo <= hi)) std::swap(lo, hi);
  lo = std::clamp(lo, 0.0f, 1.0f);
  hi = std::clamp(hi, 0.0f, 1.0f);
  // sample(v) with t = v*(N-1) in (i, i+1) reads entries i and i+1; cover
  // every entry any t in [lo, hi]*(N-1) can *contribute from*. An integral
  // upper bound needs no +1: sample() then scales entry i+1 by exactly
  // 0.0f, so its value cannot influence the result (this keeps an all-zero
  // value range skippable even when entry 1 is barely opaque, the quiet-
  // ground case the paper's data is full of).
  float th = hi * float(kTableSize - 1);
  int i0 = int(lo * float(kTableSize - 1));
  int i1 = int(th);
  if (float(i1) != th) ++i1;
  i0 = std::clamp(i0, 0, kTableSize - 1);
  i1 = std::clamp(i1, 0, kTableSize - 1);
  for (int i = i0; i <= i1; ++i)
    if (table_[std::size_t(i)].opacity > 0.0f) return false;
  return true;
}

TransferFunction TransferFunction::seismic() {
  // The zero-opacity toe up to 0.03 is the quiet-ground noise floor:
  // motion below it renders fully transparent (exact table zeros), which
  // both hides numerical rumble and makes quiet regions provably
  // skippable for the macrocell empty-space test.
  const ControlPoint pts[] = {
      {0.00f, {0.05f, 0.05f, 0.30f}, 0.000f},
      {0.03f, {0.07f, 0.10f, 0.40f}, 0.000f},
      {0.08f, {0.10f, 0.20f, 0.60f}, 0.004f},
      {0.25f, {0.05f, 0.55f, 0.75f}, 0.030f},
      {0.45f, {0.20f, 0.80f, 0.35f}, 0.090f},
      {0.65f, {0.95f, 0.90f, 0.20f}, 0.250f},
      {0.85f, {0.95f, 0.45f, 0.10f}, 0.600f},
      {1.00f, {0.90f, 0.05f, 0.05f}, 0.900f},
  };
  return TransferFunction(pts);
}

TransferFunction TransferFunction::from_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("transfer: cannot open " + path);
  std::vector<ControlPoint> pts;
  std::string line;
  int line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    std::istringstream ss(line);
    ControlPoint cp;
    if (!(ss >> cp.value)) continue;  // blank / comment-only line
    if (!(ss >> cp.color.x >> cp.color.y >> cp.color.z >> cp.opacity)) {
      throw std::runtime_error("transfer: malformed line " +
                               std::to_string(line_no) + " in " + path);
    }
    pts.push_back(cp);
  }
  if (pts.empty())
    throw std::runtime_error("transfer: no control points in " + path);
  return TransferFunction(pts);
}

TransferFunction TransferFunction::grayscale() {
  const ControlPoint pts[] = {
      {0.0f, {0.0f, 0.0f, 0.0f}, 0.0f},
      {1.0f, {1.0f, 1.0f, 1.0f}, 0.5f},
  };
  return TransferFunction(pts);
}

}  // namespace qv::render
