#include "render/block_data.hpp"

#include <algorithm>
#include <stdexcept>

namespace qv::render {

RenderBlock::RenderBlock(const mesh::HexMesh& mesh, const octree::Block& block,
                         std::span<const mesh::NodeId> nodes)
    : mesh_(&mesh), block_(block), nodes_(nodes.begin(), nodes.end()) {
  conn_.resize(block.cell_count());
  auto cells = mesh.cells();
  auto leaves = mesh.octree().leaves();
  float min_edge = 1e30f;
  for (std::size_t c = block.cell_begin; c < block.cell_end; ++c) {
    for (int i = 0; i < 8; ++i) {
      mesh::NodeId g = cells[c][std::size_t(i)];
      auto it = std::lower_bound(nodes_.begin(), nodes_.end(), g);
      if (it == nodes_.end() || *it != g)
        throw std::runtime_error("RenderBlock: node missing from block list");
      conn_[c - block.cell_begin][std::size_t(i)] =
          std::uint32_t(it - nodes_.begin());
    }
    min_edge = std::min(min_edge, leaves[c].box(mesh.domain()).extent().x);
  }
  min_edge_ = block.cell_count() ? min_edge : block.bounds.extent().x;
  values_.assign(nodes_.size(), 0.0f);
}

void RenderBlock::set_values(std::vector<float> values) {
  if (values.size() != nodes_.size())
    throw std::runtime_error("RenderBlock: value count mismatch");
  values_ = std::move(values);
}

bool RenderBlock::sample(Vec3 p, float& out, std::size_t* hint) const {
  mesh::HexMesh::CellSample cs;
  if (hint && *hint >= block_.cell_begin && *hint < block_.cell_end) {
    Box3 b = mesh_->cell_box(*hint);
    if (b.contains(p)) {
      cs.cell = *hint;
      Vec3 ext = b.extent();
      cs.u = (p.x - b.lo.x) / ext.x;
      cs.v = (p.y - b.lo.y) / ext.y;
      cs.w = (p.z - b.lo.z) / ext.z;
    } else if (!mesh_->locate(p, cs)) {
      return false;
    }
  } else if (!mesh_->locate(p, cs)) {
    return false;
  }
  if (cs.cell < block_.cell_begin || cs.cell >= block_.cell_end) return false;
  if (hint) *hint = cs.cell;
  const auto& n = conn_[cs.cell - block_.cell_begin];
  float u = cs.u, v = cs.v, w = cs.w;
  float c00 = values_[n[0]] * (1 - u) + values_[n[1]] * u;
  float c10 = values_[n[2]] * (1 - u) + values_[n[3]] * u;
  float c01 = values_[n[4]] * (1 - u) + values_[n[5]] * u;
  float c11 = values_[n[6]] * (1 - u) + values_[n[7]] * u;
  float c0 = c00 * (1 - v) + c10 * v;
  float c1 = c01 * (1 - v) + c11 * v;
  out = c0 * (1 - w) + c1 * w;
  return true;
}

bool RenderBlock::sample_gradient(Vec3 p, float h, Vec3& out) const {
  float center;
  if (!sample(p, center)) return false;
  Vec3 g{};
  for (int a = 0; a < 3; ++a) {
    Vec3 d{};
    if (a == 0) d.x = h;
    if (a == 1) d.y = h;
    if (a == 2) d.z = h;
    float fp = center, fm = center;
    bool okp = sample(p + d, fp);
    bool okm = sample(p - d, fm);
    float denom = (okp && okm) ? 2.0f * h : h;
    float grad = (okp || okm) ? (fp - fm) / denom : 0.0f;
    if (a == 0) g.x = grad;
    if (a == 1) g.y = grad;
    if (a == 2) g.z = grad;
  }
  out = g;
  return true;
}

}  // namespace qv::render
