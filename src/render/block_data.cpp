#include "render/block_data.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace qv::render {

RenderBlock::RenderBlock(const mesh::HexMesh& mesh, const octree::Block& block,
                         std::span<const mesh::NodeId> nodes)
    : mesh_(&mesh), block_(block), nodes_(nodes.begin(), nodes.end()) {
  conn_.resize(block.cell_count());
  auto cells = mesh.cells();
  auto leaves = mesh.octree().leaves();
  float min_edge = 1e30f;
  for (std::size_t c = block.cell_begin; c < block.cell_end; ++c) {
    for (int i = 0; i < 8; ++i) {
      mesh::NodeId g = cells[c][std::size_t(i)];
      auto it = std::lower_bound(nodes_.begin(), nodes_.end(), g);
      if (it == nodes_.end() || *it != g)
        throw std::runtime_error("RenderBlock: node missing from block list");
      conn_[c - block.cell_begin][std::size_t(i)] =
          std::uint32_t(it - nodes_.begin());
    }
    min_edge = std::min(min_edge, leaves[c].box(mesh.domain()).extent().x);
  }
  min_edge_ = block.cell_count() ? min_edge : block.bounds.extent().x;

  // Macrocell structure: group Morton-consecutive leaves by their octree
  // ancestor one level above the finest leaf in the block (leaves that are
  // already coarser than that level form single-cell macros). Ancestors of
  // consecutive leaves are themselves consecutive, so each macro is a
  // contiguous local cell range.
  int max_leaf_level = int(block.root.level);
  for (std::size_t c = block.cell_begin; c < block.cell_end; ++c)
    max_leaf_level = std::max(max_leaf_level, int(leaves[c].level));
  int macro_level = std::max(int(block.root.level), max_leaf_level - 1);
  macro_of_cell_.resize(block.cell_count());
  mesh::OctKey cur{};
  for (std::size_t c = block.cell_begin; c < block.cell_end; ++c) {
    mesh::OctKey key = leaves[c];
    mesh::OctKey anc = key.ancestor(std::min(int(key.level), macro_level));
    if (macros_.empty() || !(anc == cur)) {
      Macrocell m;
      m.bounds = anc.box(mesh.domain());
      m.cell_begin = std::uint32_t(c - block.cell_begin);
      m.cell_end = m.cell_begin + 1;
      macros_.push_back(m);
      cur = anc;
    } else {
      macros_.back().cell_end = std::uint32_t(c - block.cell_begin) + 1;
    }
    macro_of_cell_[c - block.cell_begin] = std::uint32_t(macros_.size() - 1);
  }

  // Position -> macro lookup grid at macro resolution. The grid is a pure
  // accelerator: macro_at() re-verifies containment against the macro's
  // exact octant box, so a misaligned entry can only cost a locate(), never
  // a wrong skip.
  grid_dim_ = 1 << (macro_level - int(block.root.level));
  Vec3 ext = block.bounds.extent();
  grid_scale_ = {float(grid_dim_) / ext.x, float(grid_dim_) / ext.y,
                 float(grid_dim_) / ext.z};
  macro_grid_.assign(std::size_t(grid_dim_) * std::size_t(grid_dim_) *
                         std::size_t(grid_dim_),
                     kNoMacro);
  for (std::size_t m = 0; m < macros_.size(); ++m) {
    Vec3 rel = macros_[m].bounds.lo - block.bounds.lo;
    Vec3 mext = macros_[m].bounds.extent();
    int ix = int(std::lround(rel.x * grid_scale_.x));
    int iy = int(std::lround(rel.y * grid_scale_.y));
    int iz = int(std::lround(rel.z * grid_scale_.z));
    int nx = std::max(1, int(std::lround(mext.x * grid_scale_.x)));
    int ny = std::max(1, int(std::lround(mext.y * grid_scale_.y)));
    int nz = std::max(1, int(std::lround(mext.z * grid_scale_.z)));
    for (int z = iz; z < std::min(iz + nz, grid_dim_); ++z)
      for (int y = iy; y < std::min(iy + ny, grid_dim_); ++y)
        for (int x = ix; x < std::min(ix + nx, grid_dim_); ++x)
          macro_grid_[(std::size_t(z) * std::size_t(grid_dim_) +
                       std::size_t(y)) *
                          std::size_t(grid_dim_) +
                      std::size_t(x)] = std::uint32_t(m);
  }

  values_.assign(nodes_.size(), 0.0f);
  refresh_macro_ranges();
}

std::uint32_t RenderBlock::macro_at(Vec3 p) const {
  const Box3& bb = block_.bounds;
  if (!(p.x > bb.lo.x && p.x < bb.hi.x && p.y > bb.lo.y && p.y < bb.hi.y &&
        p.z > bb.lo.z && p.z < bb.hi.z))
    return kNoMacro;
  int ix = std::min(grid_dim_ - 1,
                    std::max(0, int((p.x - bb.lo.x) * grid_scale_.x)));
  int iy = std::min(grid_dim_ - 1,
                    std::max(0, int((p.y - bb.lo.y) * grid_scale_.y)));
  int iz = std::min(grid_dim_ - 1,
                    std::max(0, int((p.z - bb.lo.z) * grid_scale_.z)));
  std::uint32_t m =
      macro_grid_[(std::size_t(iz) * std::size_t(grid_dim_) +
                   std::size_t(iy)) *
                      std::size_t(grid_dim_) +
                  std::size_t(ix)];
  if (m == kNoMacro) return kNoMacro;
  const Box3& mb = macros_[m].bounds;
  if (p.x > mb.lo.x && p.x < mb.hi.x && p.y > mb.lo.y && p.y < mb.hi.y &&
      p.z > mb.lo.z && p.z < mb.hi.z)
    return m;
  return kNoMacro;
}

void RenderBlock::set_values(std::vector<float> values) {
  if (values.size() != nodes_.size())
    throw std::runtime_error("RenderBlock: value count mismatch");
  values_ = std::move(values);
  refresh_macro_ranges();
}

void RenderBlock::refresh_macro_ranges() {
  for (Macrocell& m : macros_) {
    float lo = 1e30f, hi = -1e30f;
    for (std::uint32_t c = m.cell_begin; c < m.cell_end; ++c) {
      for (std::uint32_t n : conn_[c]) {
        lo = std::min(lo, values_[n]);
        hi = std::max(hi, values_[n]);
      }
    }
    m.vmin = lo;
    m.vmax = hi;
  }
}

bool RenderBlock::locate(Vec3 p, mesh::HexMesh::CellSample& cs,
                         std::size_t* hint) const {
  if (hint && *hint >= block_.cell_begin && *hint < block_.cell_end) {
    Box3 b = mesh_->cell_box(*hint);
    if (b.contains(p)) {
      cs.cell = *hint;
      Vec3 ext = b.extent();
      cs.u = (p.x - b.lo.x) / ext.x;
      cs.v = (p.y - b.lo.y) / ext.y;
      cs.w = (p.z - b.lo.z) / ext.z;
    } else if (!mesh_->locate(p, cs)) {
      return false;
    }
  } else if (!mesh_->locate(p, cs)) {
    return false;
  }
  if (cs.cell < block_.cell_begin || cs.cell >= block_.cell_end) return false;
  if (hint) *hint = cs.cell;
  return true;
}

float RenderBlock::interpolate(const mesh::HexMesh::CellSample& cs) const {
  const auto& n = conn_[cs.cell - block_.cell_begin];
  float u = cs.u, v = cs.v, w = cs.w;
  float c00 = values_[n[0]] * (1 - u) + values_[n[1]] * u;
  float c10 = values_[n[2]] * (1 - u) + values_[n[3]] * u;
  float c01 = values_[n[4]] * (1 - u) + values_[n[5]] * u;
  float c11 = values_[n[6]] * (1 - u) + values_[n[7]] * u;
  float c0 = c00 * (1 - v) + c10 * v;
  float c1 = c01 * (1 - v) + c11 * v;
  return c0 * (1 - w) + c1 * w;
}

bool RenderBlock::sample(Vec3 p, float& out, std::size_t* hint) const {
  mesh::HexMesh::CellSample cs;
  if (!locate(p, cs, hint)) return false;
  out = interpolate(cs);
  return true;
}

bool RenderBlock::sample_gradient(Vec3 p, float h, Vec3& out) const {
  float center;
  if (!sample(p, center)) return false;
  Vec3 g{};
  for (int a = 0; a < 3; ++a) {
    Vec3 d{};
    if (a == 0) d.x = h;
    if (a == 1) d.y = h;
    if (a == 2) d.z = h;
    float fp = center, fm = center;
    bool okp = sample(p + d, fp);
    bool okm = sample(p - d, fm);
    float denom = (okp && okm) ? 2.0f * h : h;
    float grad = (okp || okm) ? (fp - fm) / denom : 0.0f;
    if (a == 0) g.x = grad;
    if (a == 1) g.y = grad;
    if (a == 2) g.z = grad;
  }
  out = g;
  return true;
}

}  // namespace qv::render
