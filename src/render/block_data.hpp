// Renderer-side block storage: a subtree's cells with connectivity remapped
// to a block-local node array. The structure is built once per block when
// the input processors ship the subtree at startup ("the subtree is
// delivered ... only once at the beginning" — §4); per-step node values are
// swapped in as each time step arrives.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "mesh/hex_mesh.hpp"
#include "octree/blocks.hpp"

namespace qv::render {

class RenderBlock {
 public:
  // `nodes` is the block's sorted unique global node list (from
  // io::BlockNodeIndex); connectivity is remapped against it.
  RenderBlock(const mesh::HexMesh& mesh, const octree::Block& block,
              std::span<const mesh::NodeId> nodes);

  const octree::Block& block() const { return block_; }
  const Box3& bounds() const { return block_.bounds; }
  std::size_t local_node_count() const { return nodes_.size(); }
  std::span<const mesh::NodeId> global_nodes() const { return nodes_; }
  float finest_cell_edge() const { return min_edge_; }

  // Install this time step's scalar values (size == local_node_count()).
  void set_values(std::vector<float> values);
  std::span<const float> values() const { return values_; }

  // Trilinear scalar sample at p. False when p is not inside this block.
  // `hint` (optional) caches the containing cell between calls: rays take
  // many samples inside one cell before crossing into the next, so the
  // O(log n) octree descent is skipped whenever the cached cell still
  // contains p. Pass the same variable across consecutive samples of a ray.
  bool sample(Vec3 p, float& out, std::size_t* hint = nullptr) const;

  // Central-difference gradient at p with probe distance h. Probes falling
  // outside the block clamp to the center value (one-sided estimate).
  bool sample_gradient(Vec3 p, float h, Vec3& out) const;

 private:
  const mesh::HexMesh* mesh_;
  octree::Block block_;
  std::vector<mesh::NodeId> nodes_;
  std::vector<std::array<std::uint32_t, 8>> conn_;  // per cell in block
  std::vector<float> values_;
  float min_edge_ = 0.0f;
};

}  // namespace qv::render
