// Renderer-side block storage: a subtree's cells with connectivity remapped
// to a block-local node array. The structure is built once per block when
// the input processors ship the subtree at startup ("the subtree is
// delivered ... only once at the beginning" — §4); per-step node values are
// swapped in as each time step arrives.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "mesh/hex_mesh.hpp"
#include "octree/blocks.hpp"

namespace qv::render {

class RenderBlock {
 public:
  // `nodes` is the block's sorted unique global node list (from
  // io::BlockNodeIndex); connectivity is remapped against it.
  RenderBlock(const mesh::HexMesh& mesh, const octree::Block& block,
              std::span<const mesh::NodeId> nodes);

  const octree::Block& block() const { return block_; }
  const Box3& bounds() const { return block_.bounds; }
  std::size_t local_node_count() const { return nodes_.size(); }
  std::span<const mesh::NodeId> global_nodes() const { return nodes_; }
  float finest_cell_edge() const { return min_edge_; }

  // Install this time step's scalar values (size == local_node_count()).
  // Also refreshes the per-macrocell value ranges used for empty-space
  // skipping (one min/max fold over the block's cells).
  void set_values(std::vector<float> values);
  std::span<const float> values() const { return values_; }

  // Empty-space-skipping macrocells: groups of Morton-consecutive leaf
  // cells sharing an octree ancestor one level above the finest leaves.
  // Each macrocell's bounds are the *exact* octant box of that ancestor
  // key — never a fitted bounding box, which could overlap a neighboring
  // macro and make skip decisions inexact. vmin/vmax cover every node value
  // of every cell in the macro, so any trilinear sample taken inside it is
  // guaranteed to land in [vmin, vmax] (interpolation is a convex
  // combination of node values).
  struct Macrocell {
    Box3 bounds;
    float vmin = 0.0f;
    float vmax = 0.0f;
    std::uint32_t cell_begin = 0;  // local cell range [begin, end)
    std::uint32_t cell_end = 0;
  };
  std::span<const Macrocell> macrocells() const { return macros_; }
  // Macro index for a *global* cell id in [block().cell_begin, cell_end).
  std::uint32_t macro_of_cell(std::size_t cell) const {
    return macro_of_cell_[cell - block_.cell_begin];
  }

  static constexpr std::uint32_t kNoMacro = 0xffffffffu;
  // Macro containing p, found by direct grid arithmetic — no octree
  // descent, so the raycaster can test empty space before paying for
  // locate(). Returns kNoMacro unless p is STRICTLY inside the macro's
  // octant box: boundary samples fall back to the locate() path, which
  // keeps skip decisions exact even if grid float arithmetic rounds a
  // face point to the wrong side.
  std::uint32_t macro_at(Vec3 p) const;

  // Trilinear scalar sample at p. False when p is not inside this block.
  // `hint` (optional) caches the containing cell between calls: rays take
  // many samples inside one cell before crossing into the next, so the
  // O(log n) octree descent is skipped whenever the cached cell still
  // contains p. Pass the same variable across consecutive samples of a ray.
  bool sample(Vec3 p, float& out, std::size_t* hint = nullptr) const;

  // Locate the cell containing p (same hint contract as sample()) without
  // interpolating — lets the raycaster consult the macrocell table before
  // paying for the trilinear fetch. False when p is outside this block.
  bool locate(Vec3 p, mesh::HexMesh::CellSample& cs,
              std::size_t* hint = nullptr) const;
  // Trilinear interpolation for a cell previously located on this block.
  float interpolate(const mesh::HexMesh::CellSample& cs) const;

  // Central-difference gradient at p with probe distance h. Probes falling
  // outside the block clamp to the center value (one-sided estimate).
  bool sample_gradient(Vec3 p, float h, Vec3& out) const;

 private:
  void refresh_macro_ranges();

  const mesh::HexMesh* mesh_;
  octree::Block block_;
  std::vector<mesh::NodeId> nodes_;
  std::vector<std::array<std::uint32_t, 8>> conn_;  // per cell in block
  std::vector<float> values_;
  std::vector<Macrocell> macros_;
  std::vector<std::uint32_t> macro_of_cell_;  // per local cell
  // Regular macro-resolution lookup grid over the block's bounds
  // (grid_dim_^3 entries; coarse single-cell macros cover several entries).
  std::vector<std::uint32_t> macro_grid_;
  int grid_dim_ = 1;
  Vec3 grid_scale_{};  // grid_dim_ / bounds extent, per axis
  float min_edge_ = 0.0f;
};

}  // namespace qv::render
