#include "render/lod.hpp"

#include <cmath>

namespace qv::render {

int adaptive_level_for_view(const Camera& camera, const Box3& domain,
                            int data_level, double max_elems_per_pixel,
                            int coarsest_level) {
  Vec3 c = domain.center();
  float edge_world = domain.extent().x;
  int level = data_level;
  while (level > coarsest_level) {
    float cell_edge = edge_world / float(1u << level);
    float px = camera.projected_pixels(c, cell_edge);
    if (px <= 0.0f) break;  // degenerate view: keep the data level
    // elems/pixel ~ (1/px)^2 when a cell covers px pixels per axis.
    double elems_per_pixel = 1.0 / (double(px) * double(px));
    if (elems_per_pixel <= max_elems_per_pixel) break;
    --level;
  }
  return level;
}

}  // namespace qv::render
