// View-dependent adaptive level selection (§4.1): "the appropriate level to
// use is computed based on the image resolution, data resolution, and a
// user-specified limit to the number of elements that project to the same
// pixel ... unless a close-up view is selected". The image-resolution-only
// heuristic lives in octree::adaptive_level; this variant accounts for the
// actual viewpoint, so close-up views keep full resolution while overviews
// coarsen.
#pragma once

#include "render/camera.hpp"
#include "util/vec.hpp"

namespace qv::render {

// Pick the coarsest octree level whose cells, projected at the domain
// center's depth, still cover at least 1/sqrt(max_elems_per_pixel) pixels.
int adaptive_level_for_view(const Camera& camera, const Box3& domain,
                            int data_level, double max_elems_per_pixel,
                            int coarsest_level = 4);

}  // namespace qv::render
