// Pinhole perspective camera: ray generation for the raycaster and
// projection for screen footprints of octree blocks.
#pragma once

#include <algorithm>

#include "util/vec.hpp"

namespace qv::render {

struct Ray {
  Vec3 origin;
  Vec3 dir;      // normalized
  Vec3 inv_dir;  // component-wise reciprocal (for slab tests)
};

// Integer screen rectangle [x0, x1) x [y0, y1).
struct ScreenRect {
  int x0 = 0, y0 = 0, x1 = 0, y1 = 0;
  bool empty() const { return x0 >= x1 || y0 >= y1; }
  int width() const { return x1 - x0; }
  int height() const { return y1 - y0; }
  ScreenRect clipped(int w, int h) const {
    return {std::max(x0, 0), std::max(y0, 0), std::min(x1, w), std::min(y1, h)};
  }
};

class Camera {
 public:
  Camera(Vec3 eye, Vec3 target, Vec3 up, float fov_y_deg, int width, int height);

  // Standard visualization viewpoint for a ground-motion domain: looking
  // down at the surface from an oblique angle (as in the paper's figures).
  static Camera overview(const Box3& domain, int width, int height);

  // The overview viewpoint orbited by `azimuth_deg` around the domain
  // center's vertical axis — the spatial-exploration path ("browsing in
  // the spatial domain", §7); each new view retriggers the view-dependent
  // preprocessing (visibility order, SLIC schedule).
  static Camera orbit(const Box3& domain, int width, int height,
                      float azimuth_deg);

  int width() const { return width_; }
  int height() const { return height_; }
  Vec3 eye() const { return eye_; }

  // Ray through pixel center (px + 0.5, py + 0.5).
  Ray pixel_ray(int px, int py) const;

  // Project a world point. Returns false when behind the eye.
  bool project(Vec3 p, float& sx, float& sy) const;

  // Conservative screen footprint of an axis-aligned box (clipped to the
  // image). Boxes spanning the eye plane get the full image; boxes fully
  // behind the eye get an empty rect.
  ScreenRect footprint(const Box3& box) const;

  // Approximate on-screen size, in pixels, of a world-space length located
  // at `p` (used by view-dependent level-of-detail selection).
  float projected_pixels(Vec3 p, float world_length) const;

 private:
  Vec3 eye_, forward_, right_, up_;
  float half_w_ = 1.0f, half_h_ = 1.0f;
  int width_, height_;
};

}  // namespace qv::render
