// Transfer functions: scalar value in [0,1] -> color and opacity.
// Opacity is expressed per reference length so the raycaster can correct
// for its actual step size (standard opacity correction).
#pragma once

#include <array>
#include <cstddef>
#include <span>
#include <string>

#include "util/vec.hpp"

namespace qv::render {

struct TfSample {
  Vec3 color;           // non-premultiplied RGB
  float opacity = 0.0f; // opacity accumulated over one reference length
};

class TransferFunction {
 public:
  static constexpr int kTableSize = 256;

  // Piecewise-linear construction from control points (value in [0,1]).
  struct ControlPoint {
    float value;
    Vec3 color;
    float opacity;
  };
  explicit TransferFunction(std::span<const ControlPoint> points);

  TfSample sample(float v) const {
    float t = v * float(kTableSize - 1);
    if (t <= 0.0f) return table_[0];
    if (t >= float(kTableSize - 1)) return table_[kTableSize - 1];
    int i = int(t);
    float f = t - float(i);
    const TfSample& a = table_[std::size_t(i)];
    const TfSample& b = table_[std::size_t(i) + 1];
    return {a.color * (1.0f - f) + b.color * f,
            a.opacity * (1.0f - f) + b.opacity * f};
  }

  // True when every v in [lo, hi] (normalized; clamped to [0,1] exactly as
  // sample() clamps) yields sample(v).opacity <= 0. Decided over the table:
  // sample() linearly interpolates adjacent entries, and a lerp of two
  // non-positive opacities is non-positive, so checking every table entry
  // the range can touch makes this *exact* with respect to sample() — the
  // guarantee empty-space skipping needs to stay bit-identical.
  bool opacity_zero_in(float lo, float hi) const;

  // The colormap used for the velocity-magnitude renderings: transparent
  // blue for quiet ground through cyan/green to opaque yellow/red where the
  // ground moves hardest (Figure 1 look).
  static TransferFunction seismic();
  // Low-opacity grayscale (useful in tests: compositing math is easy to
  // verify by hand).
  static TransferFunction grayscale();

  // Load control points from a text file: one "value r g b opacity" line
  // per point ('#' comments and blank lines ignored); values in [0,1].
  // Throws std::runtime_error on unreadable/malformed input. This is the
  // user-editable colormap hook the CLI exposes.
  static TransferFunction from_file(const std::string& path);

 private:
  std::array<TfSample, kTableSize> table_;
};

}  // namespace qv::render
