// The parallel renderer's per-block raycasting kernel and a serial
// whole-frame driver (used as the single-processor reference and by tests).
//
// Sort-last: every block renders independently into a footprint-bounded
// partial image; compositing (here the reference compositor, in production
// the compositing module) merges partials in global visibility order.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "render/block_data.hpp"
#include "render/camera.hpp"
#include "render/partial_image.hpp"
#include "render/transfer.hpp"

namespace qv::render {

struct RenderOptions {
  float step_scale = 0.5f;   // ray step as a fraction of the finest cell edge
  float ref_length = 0.0f;   // opacity reference length; 0 = domain_x / 256
  bool lighting = false;
  float ambient = 0.35f;
  float diffuse = 0.65f;
  float early_exit_alpha = 0.98f;
  float value_lo = 0.0f;  // scalar normalization window mapped onto the TF
  float value_hi = 1.0f;
};

struct RenderStats {
  std::uint64_t rays = 0;
  std::uint64_t samples = 0;
  std::uint64_t shaded_samples = 0;  // samples that hit non-zero opacity
};

class Raycaster {
 public:
  Raycaster(const TransferFunction& tf, RenderOptions options, float domain_extent_x);

  // Render one block; `order` is the block's global front-to-back rank.
  PartialImage render_block(const Camera& camera, const RenderBlock& block,
                            std::uint32_t order, RenderStats* stats = nullptr) const;

  const RenderOptions& options() const { return opt_; }

 private:
  const TransferFunction* tf_;
  RenderOptions opt_;
  float ref_length_;
};

// Serial reference: order the blocks, render each, compose. This is what a
// 1-processor configuration computes; the distributed pipeline must produce
// the same image (a key integration-test invariant).
img::Image render_frame(const Camera& camera, const TransferFunction& tf,
                        RenderOptions options,
                        std::span<const RenderBlock> blocks,
                        std::span<const octree::Block> block_descs,
                        const Box3& domain, RenderStats* stats = nullptr);

}  // namespace qv::render
