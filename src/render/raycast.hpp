// The parallel renderer's per-block raycasting kernel and a serial
// whole-frame driver (used as the single-processor reference and by tests).
//
// Sort-last: every block renders independently into a footprint-bounded
// partial image; compositing (here the reference compositor, in production
// the compositing module) merges partials in global visibility order.
//
// Intra-rank parallelism: render_blocks() fans a rank's block list out as
// (block x image-tile) tasks over a util::ThreadPool. Tiles of one block
// write disjoint pixels of that block's PartialImage and share no mutable
// state, so the threaded frame is bit-identical to the serial reference for
// any thread count — the contract tests/render/test_render_determinism.cpp
// enforces.
//
// Empty-space skipping: per-block macrocells (RenderBlock::macrocells())
// carry min/max node values; a macro whose value range maps to zero opacity
// under the transfer function contributes nothing to any ray, so the
// marcher jumps the ray to the macro's exit — conservatively one full step
// short of it — and re-enters the global step phase grid. Skipped samples
// would all have hit the `opacity <= 0 -> continue` branch, so the image is
// unchanged; only the sample counters differ between skip on and off.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "render/block_data.hpp"
#include "render/camera.hpp"
#include "render/partial_image.hpp"
#include "render/transfer.hpp"
#include "util/thread_pool.hpp"

namespace qv::render {

struct RenderOptions {
  float step_scale = 0.5f;   // ray step as a fraction of the finest cell edge
  float ref_length = 0.0f;   // opacity reference length; 0 = domain_x / 256
  bool lighting = false;
  float ambient = 0.35f;
  float diffuse = 0.65f;
  float early_exit_alpha = 0.98f;
  float value_lo = 0.0f;  // scalar normalization window mapped onto the TF
  float value_hi = 1.0f;
  // Skip fully-transparent macrocells. Bit-exact for the image; turning it
  // off only changes the samples/skip counters (tests compare both ways).
  bool empty_skipping = true;
};

struct RenderStats {
  std::uint64_t rays = 0;
  std::uint64_t samples = 0;
  std::uint64_t shaded_samples = 0;   // samples that hit non-zero opacity
  std::uint64_t skipped_samples = 0;  // sample positions jumped over as empty
  std::uint64_t macro_skips = 0;      // empty-macro jumps taken
};

// Default edge (pixels) of the square image tiles render_blocks() fans out.
inline constexpr int kRenderTile = 32;

class Raycaster {
 public:
  Raycaster(const TransferFunction& tf, RenderOptions options, float domain_extent_x);

  // Render one block; `order` is the block's global front-to-back rank.
  PartialImage render_block(const Camera& camera, const RenderBlock& block,
                            std::uint32_t order, RenderStats* stats = nullptr) const;

  // The tile kernel render_block and render_blocks share: march every pixel
  // of `tile` (screen coordinates, must lie inside out.rect) against one
  // block. `empty_macros`, when non-null, flags the block's macrocells
  // whose value range is fully transparent (from classify_empty_macros).
  void render_region(const Camera& camera, const RenderBlock& block,
                     const ScreenRect& tile, PartialImage& out,
                     const std::uint8_t* empty_macros,
                     RenderStats* stats = nullptr) const;

  // Per-macrocell emptiness under this caster's transfer function and value
  // window (1 = provably contributes nothing). Exact w.r.t. sampling, so
  // consulting it cannot change the image.
  std::vector<std::uint8_t> classify_empty_macros(const RenderBlock& block) const;

  const RenderOptions& options() const { return opt_; }

 private:
  const TransferFunction* tf_;
  RenderOptions opt_;
  float ref_length_;
};

// Render a rank's blocks as (block x tile) tasks on `pool` (nullptr or a
// 1-thread pool = serial, in index order). orders[i] is blocks[i]'s global
// front-to-back rank. Per-task stats are accumulated per worker and merged
// once at join (integer sums, so merge order cannot matter). When
// `per_block_seconds` is non-null it receives, per block, the summed wall
// time of that block's tasks (+=, caller zeroes) — the load-rebalancer's
// cost signal.
std::vector<PartialImage> render_blocks(
    const Camera& camera, const Raycaster& rc,
    std::span<const RenderBlock> blocks,
    std::span<const std::uint32_t> orders, util::ThreadPool* pool,
    int tile_size = kRenderTile, RenderStats* stats = nullptr,
    double* per_block_seconds = nullptr);

// Cancellable variant for interactive steering: the token is polled once
// per (block x tile) task, so an in-flight render of a stale view aborts
// within one tile's worth of work per worker instead of completing into the
// trash. Returns nullopt when cancelled; the partial frame, the per-worker
// stats, and the per-block timings of the aborted render are all discarded
// — `stats` and `per_block_seconds` are only ever touched by a COMPLETED
// render, so a cancellation can never leak half a frame's counters into
// RenderStats (the TSan cancellation stress pins this). Bumps the
// render.cancelled / render.cancelled_tiles counters on abort.
std::optional<std::vector<PartialImage>> render_blocks_cancellable(
    const Camera& camera, const Raycaster& rc,
    std::span<const RenderBlock> blocks,
    std::span<const std::uint32_t> orders, util::ThreadPool* pool,
    const util::CancelToken* cancel, int tile_size = kRenderTile,
    RenderStats* stats = nullptr, double* per_block_seconds = nullptr);

// Serial reference: order the blocks, render each, compose. This is what a
// 1-processor configuration computes; the distributed pipeline must produce
// the same image (a key integration-test invariant). When `pool` is given,
// rendering fans out over it (bit-identical output).
img::Image render_frame(const Camera& camera, const TransferFunction& tf,
                        RenderOptions options,
                        std::span<const RenderBlock> blocks,
                        std::span<const octree::Block> block_descs,
                        const Box3& domain, RenderStats* stats = nullptr,
                        util::ThreadPool* pool = nullptr,
                        int tile_size = kRenderTile);

}  // namespace qv::render
