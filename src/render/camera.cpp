#include "render/camera.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace qv::render {

Camera::Camera(Vec3 eye, Vec3 target, Vec3 up, float fov_y_deg, int width,
               int height)
    : eye_(eye), width_(width), height_(height) {
  forward_ = (target - eye).normalized();
  right_ = forward_.cross(up).normalized();
  up_ = right_.cross(forward_);
  half_h_ = std::tan(fov_y_deg * float(M_PI) / 360.0f);
  half_w_ = half_h_ * float(width) / float(height);
}

Camera Camera::overview(const Box3& domain, int width, int height) {
  return orbit(domain, width, height, 0.0f);
}

Camera Camera::orbit(const Box3& domain, int width, int height,
                     float azimuth_deg) {
  Vec3 c = domain.center();
  Vec3 e = domain.extent();
  // Oblique view from above and to the side, rotated about the vertical
  // axis through the domain center.
  Vec3 offset{0.9f * e.x, -1.3f * e.y, 1.1f * e.z};
  float a = azimuth_deg * float(M_PI) / 180.0f;
  float ca = std::cos(a), sa = std::sin(a);
  Vec3 rotated{offset.x * ca - offset.y * sa, offset.x * sa + offset.y * ca,
               offset.z};
  return Camera(c + rotated, c, Vec3{0, 0, 1}, 38.0f, width, height);
}

Ray Camera::pixel_ray(int px, int py) const {
  float nx = (2.0f * (float(px) + 0.5f) / float(width_) - 1.0f) * half_w_;
  float ny = (1.0f - 2.0f * (float(py) + 0.5f) / float(height_)) * half_h_;
  Vec3 dir = (forward_ + right_ * nx + up_ * ny).normalized();
  auto safe_inv = [](float v) {
    return v != 0.0f ? 1.0f / v : std::numeric_limits<float>::infinity();
  };
  return {eye_, dir, {safe_inv(dir.x), safe_inv(dir.y), safe_inv(dir.z)}};
}

bool Camera::project(Vec3 p, float& sx, float& sy) const {
  Vec3 v = p - eye_;
  float z = v.dot(forward_);
  if (z <= 1e-6f) return false;
  float x = v.dot(right_) / z / half_w_;   // [-1, 1]
  float y = v.dot(up_) / z / half_h_;      // [-1, 1]
  sx = (x + 1.0f) * 0.5f * float(width_);
  sy = (1.0f - y) * 0.5f * float(height_);
  return true;
}

float Camera::projected_pixels(Vec3 p, float world_length) const {
  float z = (p - eye_).dot(forward_);
  if (z <= 1e-6f) return 0.0f;
  // At depth z, the frame spans 2 * z * half_h_ world units vertically.
  return world_length / (2.0f * z * half_h_) * float(height_);
}

ScreenRect Camera::footprint(const Box3& box) const {
  float min_x = 1e30f, min_y = 1e30f, max_x = -1e30f, max_y = -1e30f;
  int behind = 0;
  for (int i = 0; i < 8; ++i) {
    Vec3 p{(i & 1) ? box.hi.x : box.lo.x, (i & 2) ? box.hi.y : box.lo.y,
           (i & 4) ? box.hi.z : box.lo.z};
    float sx, sy;
    if (!project(p, sx, sy)) {
      ++behind;
      continue;
    }
    min_x = std::min(min_x, sx);
    min_y = std::min(min_y, sy);
    max_x = std::max(max_x, sx);
    max_y = std::max(max_y, sy);
  }
  if (behind == 8) return {};  // entirely behind the eye
  if (behind > 0) {
    // Box straddles the eye plane: be conservative.
    return ScreenRect{0, 0, width_, height_};
  }
  if (min_x > max_x) return {};
  ScreenRect r{int(std::floor(min_x)), int(std::floor(min_y)),
               int(std::ceil(max_x)) + 1, int(std::ceil(max_y)) + 1};
  return r.clipped(width_, height_);
}

}  // namespace qv::render
