// The unit of sort-last compositing: a block's rendered footprint together
// with its position in the global front-to-back visibility order.
#pragma once

#include <cstdint>
#include <vector>

#include "img/image.hpp"
#include "render/camera.hpp"

namespace qv::render {

struct PartialImage {
  ScreenRect rect;         // screen-space footprint
  std::uint32_t order = 0; // global front-to-back rank (0 = frontmost)
  img::Image pixels;       // rect.width() x rect.height(), premultiplied

  // Pixel accessor in screen coordinates (caller guarantees containment).
  img::Rgba& at_screen(int x, int y) {
    return pixels.at(x - rect.x0, y - rect.y0);
  }
  const img::Rgba& at_screen(int x, int y) const {
    return pixels.at(x - rect.x0, y - rect.y0);
  }
  bool contains(int x, int y) const {
    return x >= rect.x0 && x < rect.x1 && y >= rect.y0 && y < rect.y1;
  }
};

// Reference compositor: combine partials (any order) into a full image by
// sorting front-to-back per pixel on `order`. O(P log P + pixels); used for
// correctness baselines and by the serial renderer.
img::Image compose_reference(std::vector<const PartialImage*> partials, int width,
                             int height);

}  // namespace qv::render
