#include "render/raycast.hpp"

#include <algorithm>
#include <cmath>

#include "metrics/metrics.hpp"
#include "render/order.hpp"
#include "trace/trace.hpp"

namespace qv::render {

Raycaster::Raycaster(const TransferFunction& tf, RenderOptions options,
                     float domain_extent_x)
    : tf_(&tf), opt_(options) {
  ref_length_ =
      opt_.ref_length > 0.0f ? opt_.ref_length : domain_extent_x / 256.0f;
}

PartialImage Raycaster::render_block(const Camera& camera,
                                     const RenderBlock& block,
                                     std::uint32_t order,
                                     RenderStats* stats) const {
  trace::Span tsp("render", "render_block", order);
  PartialImage out;
  out.order = order;
  out.rect = camera.footprint(block.bounds());
  if (out.rect.empty()) {
    out.pixels = img::Image(0, 0);
    return out;
  }
  out.pixels = img::Image(out.rect.width(), out.rect.height());

  const float ds = block.finest_cell_edge() * opt_.step_scale;
  const float inv_range =
      1.0f / std::max(opt_.value_hi - opt_.value_lo, 1e-20f);
  const float grad_h = block.finest_cell_edge() * 0.5f;

  // Per-call accumulators; folded into RenderStats and the registry once at
  // the end so the inner loop touches only registers.
  std::uint64_t n_rays = 0, n_samples = 0, n_shaded = 0, n_early = 0;

  for (int py = out.rect.y0; py < out.rect.y1; ++py) {
    for (int px = out.rect.x0; px < out.rect.x1; ++px) {
      Ray ray = camera.pixel_ray(px, py);
      float t_in, t_out;
      if (!block.bounds().intersect(ray.origin, ray.inv_dir, t_in, t_out))
        continue;
      t_in = std::max(t_in, 0.0f);
      if (t_in >= t_out) continue;
      ++n_rays;

      img::Rgba acc{};
      // Global step phase so block boundaries do not introduce seams:
      // sample positions are multiples of ds along the ray from the eye.
      float t = (std::floor(t_in / ds) + 0.5f) * ds;
      if (t < t_in) t += ds;
      std::size_t cell_hint = std::size_t(-1);
      for (; t < t_out && acc.a < opt_.early_exit_alpha; t += ds) {
        Vec3 p = ray.origin + ray.dir * t;
        float v;
        if (!block.sample(p, v, &cell_hint)) continue;
        ++n_samples;
        float nv = std::clamp((v - opt_.value_lo) * inv_range, 0.0f, 1.0f);
        TfSample tf = tf_->sample(nv);
        if (tf.opacity <= 0.0f) continue;
        ++n_shaded;
        float alpha = 1.0f - std::pow(1.0f - tf.opacity, ds / ref_length_);
        Vec3 color = tf.color;
        if (opt_.lighting) {
          Vec3 g;
          if (block.sample_gradient(p, grad_h, g) && g.norm2() > 1e-12f) {
            Vec3 n = g.normalized();
            // Headlight: light direction is the reversed ray direction.
            float lambert = std::fabs(n.dot(ray.dir));
            color = color * (opt_.ambient + opt_.diffuse * lambert);
          } else {
            color = color * (opt_.ambient + opt_.diffuse);
          }
        }
        img::Rgba contrib{color.x * alpha, color.y * alpha, color.z * alpha,
                          alpha};
        acc.blend_under(contrib);
      }
      if (acc.a >= opt_.early_exit_alpha) ++n_early;
      if (acc.a > 0.0f) out.at_screen(px, py) = acc;
    }
  }
  if (stats) {
    stats->rays += n_rays;
    stats->samples += n_samples;
    stats->shaded_samples += n_shaded;
  }
  static auto& rays_ctr = metrics::counter("render.rays");
  static auto& samples_ctr = metrics::counter("render.samples");
  static auto& shaded_ctr = metrics::counter("render.shaded_samples");
  static auto& early_ctr = metrics::counter("render.early_terminations");
  rays_ctr.add(n_rays);
  samples_ctr.add(n_samples);
  shaded_ctr.add(n_shaded);
  early_ctr.add(n_early);
  return out;
}

img::Image render_frame(const Camera& camera, const TransferFunction& tf,
                        RenderOptions options,
                        std::span<const RenderBlock> blocks,
                        std::span<const octree::Block> block_descs,
                        const Box3& domain, RenderStats* stats) {
  Raycaster rc(tf, options, domain.extent().x);
  auto order = visibility_order(block_descs, domain, camera.eye());
  // Map block index -> order rank.
  std::vector<std::uint32_t> rank(block_descs.size());
  for (std::size_t i = 0; i < order.size(); ++i)
    rank[order[i]] = std::uint32_t(i);

  std::vector<PartialImage> partials;
  partials.reserve(blocks.size());
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    partials.push_back(rc.render_block(camera, blocks[b], rank[b], stats));
  }
  std::vector<const PartialImage*> ptrs;
  ptrs.reserve(partials.size());
  for (const auto& p : partials) ptrs.push_back(&p);
  return compose_reference(std::move(ptrs), camera.width(), camera.height());
}

}  // namespace qv::render
