#include "render/raycast.hpp"

#include <algorithm>
#include <cmath>

#include "metrics/metrics.hpp"
#include "render/order.hpp"
#include "trace/trace.hpp"
#include "util/stats.hpp"

namespace qv::render {

Raycaster::Raycaster(const TransferFunction& tf, RenderOptions options,
                     float domain_extent_x)
    : tf_(&tf), opt_(options) {
  ref_length_ =
      opt_.ref_length > 0.0f ? opt_.ref_length : domain_extent_x / 256.0f;
}

std::vector<std::uint8_t> Raycaster::classify_empty_macros(
    const RenderBlock& block) const {
  auto macros = block.macrocells();
  std::vector<std::uint8_t> empty(macros.size(), 0);
  const float inv_range =
      1.0f / std::max(opt_.value_hi - opt_.value_lo, 1e-20f);
  for (std::size_t i = 0; i < macros.size(); ++i) {
    // The normalization below is the monotone map the sampling loop applies
    // to every value, so [vmin, vmax] covers every normalized sample the
    // macro can produce.
    float nlo = std::clamp((macros[i].vmin - opt_.value_lo) * inv_range,
                           0.0f, 1.0f);
    float nhi = std::clamp((macros[i].vmax - opt_.value_lo) * inv_range,
                           0.0f, 1.0f);
    empty[i] = tf_->opacity_zero_in(nlo, nhi) ? 1 : 0;
  }
  return empty;
}

void Raycaster::render_region(const Camera& camera, const RenderBlock& block,
                              const ScreenRect& tile, PartialImage& out,
                              const std::uint8_t* empty_macros,
                              RenderStats* stats) const {
  const float ds = block.finest_cell_edge() * opt_.step_scale;
  const float inv_range =
      1.0f / std::max(opt_.value_hi - opt_.value_lo, 1e-20f);
  const float grad_h = block.finest_cell_edge() * 0.5f;
  auto macros = block.macrocells();

  // Per-call accumulators; folded into RenderStats and the registry once at
  // the end so the inner loop touches only registers.
  std::uint64_t n_rays = 0, n_samples = 0, n_shaded = 0, n_early = 0;
  std::uint64_t n_skipped = 0, n_macro_skips = 0;

  for (int py = tile.y0; py < tile.y1; ++py) {
    for (int px = tile.x0; px < tile.x1; ++px) {
      Ray ray = camera.pixel_ray(px, py);
      float t_in, t_out;
      if (!block.bounds().intersect(ray.origin, ray.inv_dir, t_in, t_out))
        continue;
      t_in = std::max(t_in, 0.0f);
      if (t_in >= t_out) continue;
      ++n_rays;

      img::Rgba acc{};
      // Global step phase so block boundaries do not introduce seams:
      // sample positions are multiples of ds along the ray from the eye.
      float t = (std::floor(t_in / ds) + 0.5f) * ds;
      if (t < t_in) t += ds;
      std::size_t cell_hint = std::size_t(-1);
      for (; t < t_out && acc.a < opt_.early_exit_alpha; t += ds) {
        Vec3 p = ray.origin + ray.dir * t;
        if (empty_macros) {
          // Grid lookup, no octree descent: macro_at only answers for
          // points STRICTLY inside a macro's octant box, where the
          // containing cell is guaranteed to belong to that macro. Every
          // sample in an empty macro maps to zero opacity, so it would
          // fall through the `opacity <= 0` branch below — skip to the
          // macro's exit without locating or interpolating. The
          // fast-forward replays the same `t += ds` additions the
          // unskipped loop performs, so downstream sample positions stay
          // bit-identical, and it stops one full step short of the
          // computed exit so float error in the slab test can never jump
          // a sample that lies outside the macro.
          std::uint32_t m = block.macro_at(p);
          if (m != RenderBlock::kNoMacro && empty_macros[m]) {
            ++n_macro_skips;
            ++n_skipped;  // the tested-but-not-interpolated sample itself
            float m_in, m_out;
            if (macros[m].bounds.intersect(ray.origin, ray.inv_dir, m_in,
                                           m_out)) {
              float stop = m_out - ds;
              while (t + ds < stop) {
                t += ds;
                ++n_skipped;
              }
            }
            continue;
          }
        }
        mesh::HexMesh::CellSample cs;
        if (!block.locate(p, cs, &cell_hint)) continue;
        float v = block.interpolate(cs);
        ++n_samples;
        float nv = std::clamp((v - opt_.value_lo) * inv_range, 0.0f, 1.0f);
        TfSample tf = tf_->sample(nv);
        if (tf.opacity <= 0.0f) continue;
        ++n_shaded;
        float alpha = 1.0f - std::pow(1.0f - tf.opacity, ds / ref_length_);
        Vec3 color = tf.color;
        if (opt_.lighting) {
          Vec3 g;
          if (block.sample_gradient(p, grad_h, g) && g.norm2() > 1e-12f) {
            Vec3 n = g.normalized();
            // Headlight: light direction is the reversed ray direction.
            float lambert = std::fabs(n.dot(ray.dir));
            color = color * (opt_.ambient + opt_.diffuse * lambert);
          } else {
            color = color * (opt_.ambient + opt_.diffuse);
          }
        }
        img::Rgba contrib{color.x * alpha, color.y * alpha, color.z * alpha,
                          alpha};
        acc.blend_under(contrib);
      }
      if (acc.a >= opt_.early_exit_alpha) ++n_early;
      if (acc.a > 0.0f) out.at_screen(px, py) = acc;
    }
  }
  if (stats) {
    stats->rays += n_rays;
    stats->samples += n_samples;
    stats->shaded_samples += n_shaded;
    stats->skipped_samples += n_skipped;
    stats->macro_skips += n_macro_skips;
  }
  static auto& rays_ctr = metrics::counter("render.rays");
  static auto& samples_ctr = metrics::counter("render.samples");
  static auto& shaded_ctr = metrics::counter("render.shaded_samples");
  static auto& early_ctr = metrics::counter("render.early_terminations");
  static auto& skipped_ctr = metrics::counter("render.skipped_samples");
  static auto& mskip_ctr = metrics::counter("render.macro_skips");
  rays_ctr.add(n_rays);
  samples_ctr.add(n_samples);
  shaded_ctr.add(n_shaded);
  early_ctr.add(n_early);
  skipped_ctr.add(n_skipped);
  mskip_ctr.add(n_macro_skips);
}

PartialImage Raycaster::render_block(const Camera& camera,
                                     const RenderBlock& block,
                                     std::uint32_t order,
                                     RenderStats* stats) const {
  trace::Span tsp("render", "render_block", order);
  PartialImage out;
  out.order = order;
  out.rect = camera.footprint(block.bounds());
  if (out.rect.empty()) {
    out.pixels = img::Image(0, 0);
    return out;
  }
  out.pixels = img::Image(out.rect.width(), out.rect.height());
  std::vector<std::uint8_t> empty;
  if (opt_.empty_skipping) empty = classify_empty_macros(block);
  render_region(camera, block, out.rect, out,
                empty.empty() ? nullptr : empty.data(), stats);
  return out;
}

std::vector<PartialImage> render_blocks(
    const Camera& camera, const Raycaster& rc,
    std::span<const RenderBlock> blocks,
    std::span<const std::uint32_t> orders, util::ThreadPool* pool,
    int tile_size, RenderStats* stats, double* per_block_seconds) {
  auto out = render_blocks_cancellable(camera, rc, blocks, orders, pool,
                                       /*cancel=*/nullptr, tile_size, stats,
                                       per_block_seconds);
  // Without a token a render can never be cancelled.
  return std::move(*out);
}

std::optional<std::vector<PartialImage>> render_blocks_cancellable(
    const Camera& camera, const Raycaster& rc,
    std::span<const RenderBlock> blocks,
    std::span<const std::uint32_t> orders, util::ThreadPool* pool,
    const util::CancelToken* cancel, int tile_size, RenderStats* stats,
    double* per_block_seconds) {
  if (tile_size < 1) tile_size = 1;
  std::vector<PartialImage> out(blocks.size());
  std::vector<std::vector<std::uint8_t>> empty(blocks.size());

  struct Task {
    std::uint32_t block;
    ScreenRect tile;
  };
  std::vector<Task> tasks;
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    out[b].order = orders[b];
    out[b].rect = camera.footprint(blocks[b].bounds());
    if (out[b].rect.empty()) {
      out[b].pixels = img::Image(0, 0);
      continue;
    }
    out[b].pixels = img::Image(out[b].rect.width(), out[b].rect.height());
    if (rc.options().empty_skipping)
      empty[b] = rc.classify_empty_macros(blocks[b]);
    const ScreenRect& r = out[b].rect;
    for (int y = r.y0; y < r.y1; y += tile_size) {
      for (int x = r.x0; x < r.x1; x += tile_size) {
        ScreenRect tile{x, y, std::min(x + tile_size, r.x1),
                        std::min(y + tile_size, r.y1)};
        tasks.push_back({std::uint32_t(b), tile});
      }
    }
  }

  // Tiles of one block are disjoint pixel ranges of its PartialImage and
  // tasks share no other mutable state, so execution order (and therefore
  // thread count and stealing schedule) cannot change the output. Stats and
  // timings accumulate per worker and merge at join: integer and
  // per-block-slot sums, order-independent.
  const std::size_t workers = std::size_t(pool ? pool->thread_count() : 1);
  std::vector<RenderStats> wstats(workers);
  std::vector<std::vector<double>> wsecs;
  if (per_block_seconds)
    wsecs.assign(workers, std::vector<double>(blocks.size(), 0.0));

  auto run_task = [&](std::size_t ti, int w) {
    // Per-tile cancellation poll: the pool also skips queued tasks once the
    // token fires, but this check covers the serial path and a task popped
    // in the race window.
    if (cancel && cancel->requested()) return;
    const Task& tk = tasks[ti];
    trace::Span tsp("render", "render_tile", orders[tk.block]);
    WallTimer timer;
    rc.render_region(camera, blocks[tk.block], tk.tile, out[tk.block],
                     empty[tk.block].empty() ? nullptr
                                             : empty[tk.block].data(),
                     &wstats[std::size_t(w)]);
    if (per_block_seconds)
      wsecs[std::size_t(w)][tk.block] += timer.seconds();
  };

  if (pool && pool->thread_count() > 1) {
    pool->parallel_for(tasks.size(), run_task, cancel);
  } else {
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      if (cancel && cancel->requested()) break;
      run_task(i, 0);
    }
  }

  if (cancel && cancel->requested()) {
    // The frame is trash: discard the partials AND the per-worker stats /
    // timings so nothing from the aborted render can reach RenderStats or
    // the rebalancer's cost signal.
    static auto& cancelled_ctr = metrics::counter("render.cancelled");
    static auto& cancelled_tiles_ctr =
        metrics::counter("render.cancelled_tiles");
    cancelled_ctr.add();
    cancelled_tiles_ctr.add(tasks.size());
    trace::instant("render", "render_cancelled",
                   blocks.empty() ? 0 : orders[0]);
    return std::nullopt;
  }

  if (stats) {
    for (const RenderStats& s : wstats) {
      stats->rays += s.rays;
      stats->samples += s.samples;
      stats->shaded_samples += s.shaded_samples;
      stats->skipped_samples += s.skipped_samples;
      stats->macro_skips += s.macro_skips;
    }
  }
  if (per_block_seconds) {
    for (const auto& ws : wsecs)
      for (std::size_t b = 0; b < ws.size(); ++b)
        per_block_seconds[b] += ws[b];
  }
  return out;
}

img::Image render_frame(const Camera& camera, const TransferFunction& tf,
                        RenderOptions options,
                        std::span<const RenderBlock> blocks,
                        std::span<const octree::Block> block_descs,
                        const Box3& domain, RenderStats* stats,
                        util::ThreadPool* pool, int tile_size) {
  Raycaster rc(tf, options, domain.extent().x);
  auto order = visibility_order(block_descs, domain, camera.eye());
  // Map block index -> order rank.
  std::vector<std::uint32_t> rank(block_descs.size());
  for (std::size_t i = 0; i < order.size(); ++i)
    rank[order[i]] = std::uint32_t(i);

  std::vector<PartialImage> partials =
      render_blocks(camera, rc, blocks, rank, pool, tile_size, stats);
  std::vector<const PartialImage*> ptrs;
  ptrs.reserve(partials.size());
  for (const auto& p : partials) ptrs.push_back(&p);
  return compose_reference(std::move(ptrs), camera.width(), camera.height());
}

}  // namespace qv::render
