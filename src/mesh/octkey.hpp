// Octant addressing for linear octrees.
//
// An OctKey names one octant of the unit cube: `level` (0 = root) plus
// integer coordinates (x, y, z) in the 2^level-per-side grid of that level.
// Keys sort in depth-first (Morton) order, which is the storage order for
// linear octrees throughout the library — the same organization the quake
// team's etree mesher uses.
#pragma once

#include <compare>
#include <cstdint>

#include "util/vec.hpp"

namespace qv::mesh {

// Deepest level we can address: 3*20 = 60 Morton bits fit in 64.
inline constexpr int kMaxLevel = 20;

// Interleave the low 20 bits of x, y, z (x in bit 0, y in bit 1, z in bit 2).
std::uint64_t morton_encode(std::uint32_t x, std::uint32_t y, std::uint32_t z);
void morton_decode(std::uint64_t code, std::uint32_t& x, std::uint32_t& y,
                   std::uint32_t& z);

struct OctKey {
  std::uint32_t x = 0;
  std::uint32_t y = 0;
  std::uint32_t z = 0;
  std::uint8_t level = 0;

  bool operator==(const OctKey&) const = default;

  // Morton code of the octant anchor expressed at kMaxLevel resolution.
  std::uint64_t morton_at_max() const {
    int shift = kMaxLevel - level;
    return morton_encode(x << shift, y << shift, z << shift);
  }

  // Depth-first order: ancestors sort before their descendants.
  std::strong_ordering operator<=>(const OctKey& o) const {
    auto ma = morton_at_max();
    auto mb = o.morton_at_max();
    if (ma != mb) return ma <=> mb;
    return level <=> o.level;
  }

  OctKey child(int octant) const {
    return {(x << 1) | std::uint32_t(octant & 1),
            (y << 1) | std::uint32_t((octant >> 1) & 1),
            (z << 1) | std::uint32_t((octant >> 2) & 1),
            std::uint8_t(level + 1)};
  }
  OctKey parent() const { return {x >> 1, y >> 1, z >> 1, std::uint8_t(level - 1)}; }
  // Ancestor at the given (shallower or equal) level.
  OctKey ancestor(int at_level) const {
    int shift = level - at_level;
    return {x >> shift, y >> shift, z >> shift, std::uint8_t(at_level)};
  }
  bool is_ancestor_of(const OctKey& o) const {
    return o.level >= level && o.ancestor(level) == *this;
  }

  // Face neighbor along axis (0=x,1=y,2=z) in direction dir (-1 or +1).
  // Returns false when the neighbor would fall outside the root cube.
  bool face_neighbor(int axis, int dir, OctKey& out) const;

  // Geometric extent within `domain` (the root cube mapped onto `domain`).
  Box3 box(const Box3& domain) const;
};

}  // namespace qv::mesh
