#include "mesh/linear_octree.hpp"

#include <algorithm>
#include <cmath>
#include <set>

namespace qv::mesh {

namespace {

// All 26 neighbor offsets (face + edge + corner). Balancing across all of
// them ("0-balance") guarantees that the parents of any hanging node are
// regular mesh nodes, which keeps the FEM constraint resolution one level
// deep.
struct Offset {
  int dx, dy, dz;
};

std::vector<Offset> all_offsets() {
  std::vector<Offset> out;
  for (int dz = -1; dz <= 1; ++dz)
    for (int dy = -1; dy <= 1; ++dy)
      for (int dx = -1; dx <= 1; ++dx)
        if (dx || dy || dz) out.push_back({dx, dy, dz});
  return out;
}

bool neighbor_key(const OctKey& k, const Offset& o, OctKey& out) {
  std::int64_t limit = 1ll << k.level;
  std::int64_t nx = std::int64_t(k.x) + o.dx;
  std::int64_t ny = std::int64_t(k.y) + o.dy;
  std::int64_t nz = std::int64_t(k.z) + o.dz;
  if (nx < 0 || ny < 0 || nz < 0 || nx >= limit || ny >= limit || nz >= limit)
    return false;
  out = {std::uint32_t(nx), std::uint32_t(ny), std::uint32_t(nz), k.level};
  return true;
}

// Find the leaf in `s` that equals `q` or is an ancestor of `q`.
// Returns s.end() when the region of q is covered by finer leaves instead.
std::set<OctKey>::iterator find_containing(std::set<OctKey>& s, const OctKey& q) {
  auto it = s.upper_bound(q);
  if (it != s.begin()) {
    --it;
    if (*it == q || it->is_ancestor_of(q)) return it;
  }
  return s.end();
}

}  // namespace

LinearOctree LinearOctree::build(const Box3& domain, const SizeField& desired_size,
                                 int min_level, int max_level) {
  LinearOctree t;
  t.domain_ = domain;

  // Recursive refinement. A cell is refined when any size-field sample
  // inside it asks for an edge shorter than the cell's edge.
  struct Builder {
    const Box3& domain;
    const SizeField& size;
    int min_level;
    int max_level;
    std::vector<OctKey>& out;

    void visit(const OctKey& k) {
      if (int(k.level) >= max_level) {
        out.push_back(k);
        return;
      }
      bool refine = int(k.level) < min_level;
      if (!refine) {
        Box3 b = k.box(domain);
        float edge = b.extent().x;  // cubic cells in index space
        Vec3 c = b.center();
        float want = size(c);
        // Also probe the corners: the field may dip near a boundary.
        for (int i = 0; i < 8 && !refine; ++i) {
          Vec3 p{(i & 1) ? b.hi.x : b.lo.x, (i & 2) ? b.hi.y : b.lo.y,
                 (i & 4) ? b.hi.z : b.lo.z};
          want = std::min(want, size(p));
        }
        refine = want < edge;
      }
      if (refine) {
        for (int c = 0; c < 8; ++c) visit(k.child(c));
      } else {
        out.push_back(k);
      }
    }
  };

  Builder{domain, desired_size, min_level, max_level, t.leaves_}.visit(OctKey{});
  t.sort_and_dedup();
  t.balance();
  return t;
}

LinearOctree LinearOctree::uniform(const Box3& domain, int level) {
  LinearOctree t;
  t.domain_ = domain;
  std::uint32_t n = 1u << level;
  t.leaves_.reserve(std::size_t(n) * n * n);
  for (std::uint32_t z = 0; z < n; ++z)
    for (std::uint32_t y = 0; y < n; ++y)
      for (std::uint32_t x = 0; x < n; ++x)
        t.leaves_.push_back({x, y, z, std::uint8_t(level)});
  t.sort_and_dedup();
  return t;
}

LinearOctree LinearOctree::from_leaves(const Box3& domain,
                                       std::vector<OctKey> leaves) {
  LinearOctree t;
  t.domain_ = domain;
  t.leaves_ = std::move(leaves);
  t.sort_and_dedup();
  return t;
}

LinearOctree LinearOctree::clipped(int level) const {
  LinearOctree t;
  t.domain_ = domain_;
  t.leaves_.reserve(leaves_.size());
  for (const OctKey& k : leaves_) {
    t.leaves_.push_back(int(k.level) > level ? k.ancestor(level) : k);
  }
  t.sort_and_dedup();
  return t;
}

int LinearOctree::max_leaf_level() const {
  int m = 0;
  for (const auto& k : leaves_) m = std::max(m, int(k.level));
  return m;
}

int LinearOctree::min_leaf_level() const {
  int m = kMaxLevel;
  for (const auto& k : leaves_) m = std::min(m, int(k.level));
  return leaves_.empty() ? 0 : m;
}

std::ptrdiff_t LinearOctree::find_leaf(Vec3 p) const {
  if (!domain_.contains(p) || leaves_.empty()) return -1;
  Vec3 rel = p - domain_.lo;
  Vec3 ext = domain_.extent();
  auto grid = [&](float v, float e) {
    auto g = std::int64_t(double(v) / double(e) * double(1u << kMaxLevel));
    return std::uint32_t(std::clamp<std::int64_t>(g, 0, (1u << kMaxLevel) - 1));
  };
  OctKey q{grid(rel.x, ext.x), grid(rel.y, ext.y), grid(rel.z, ext.z),
           std::uint8_t(kMaxLevel)};
  return find_leaf(q);
}

std::ptrdiff_t LinearOctree::find_leaf(const OctKey& key) const {
  auto it = std::upper_bound(leaves_.begin(), leaves_.end(), key);
  if (it == leaves_.begin()) return -1;
  --it;
  if (*it == key || it->is_ancestor_of(key)) return it - leaves_.begin();
  return -1;
}

bool LinearOctree::is_balanced() const {
  std::set<OctKey> s(leaves_.begin(), leaves_.end());
  auto offsets = all_offsets();
  for (const OctKey& k : leaves_) {
    for (const auto& o : offsets) {
      OctKey n;
      if (!neighbor_key(k, o, n)) continue;
      auto it = find_containing(s, n);
      if (it != s.end() && int(it->level) + 1 < int(k.level)) return false;
    }
  }
  return true;
}

std::pair<std::size_t, std::size_t> LinearOctree::subtree_range(
    const OctKey& block) const {
  // All descendants of `block` are a contiguous Morton range.
  auto lo = std::lower_bound(leaves_.begin(), leaves_.end(), block);
  auto hi = lo;
  while (hi != leaves_.end() && (block == *hi || block.is_ancestor_of(*hi))) ++hi;
  if (lo == hi) {
    // The block itself may sit inside a shallower leaf.
    auto idx = find_leaf(block);
    if (idx >= 0) return {std::size_t(idx), std::size_t(idx) + 1};
    return {0, 0};
  }
  return {std::size_t(lo - leaves_.begin()), std::size_t(hi - leaves_.begin())};
}

void LinearOctree::sort_and_dedup() {
  std::sort(leaves_.begin(), leaves_.end());
  leaves_.erase(std::unique(leaves_.begin(), leaves_.end()), leaves_.end());
}

void LinearOctree::balance() {
  std::set<OctKey> s(leaves_.begin(), leaves_.end());
  auto offsets = all_offsets();

  // Worklist of leaves whose neighbors may need splitting; process the
  // deepest first so splits ripple outward at most once per level.
  std::vector<OctKey> work(leaves_.begin(), leaves_.end());
  std::sort(work.begin(), work.end(),
            [](const OctKey& a, const OctKey& b) { return a.level < b.level; });

  while (!work.empty()) {
    OctKey k = work.back();
    work.pop_back();
    if (!s.count(k)) continue;  // already split away
    if (k.level < 2) continue;  // neighbors can't be 2 levels coarser
    for (const auto& o : offsets) {
      OctKey n;
      if (!neighbor_key(k, o, n)) continue;
      auto it = find_containing(s, n);
      if (it == s.end()) continue;  // finer cover: nothing to enforce
      while (int(it->level) + 1 < int(k.level)) {
        OctKey coarse = *it;
        s.erase(it);
        for (int c = 0; c < 8; ++c) {
          OctKey ch = coarse.child(c);
          s.insert(ch);
          work.push_back(ch);
        }
        it = find_containing(s, n);
        if (it == s.end()) break;
      }
    }
  }
  leaves_.assign(s.begin(), s.end());
}

}  // namespace qv::mesh
