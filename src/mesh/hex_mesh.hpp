// Hexahedral mesh extracted from a linear octree: shared-corner node
// deduplication, cell connectivity, hanging-node constraints, and the
// ground-surface node set used by the LIC module.
//
// This is the static mesh the whole pipeline shares: "the mesh structure
// never changes throughout the simulation [so] a one-time preprocessing
// step is done to generate a spatial (octree) encoding" (§4).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "mesh/linear_octree.hpp"
#include "util/vec.hpp"

namespace qv::mesh {

using NodeId = std::uint32_t;

// Integer node coordinates on the finest (level kMaxLevel) grid,
// range [0, 2^kMaxLevel] inclusive per axis.
struct GridCoord {
  std::uint32_t x = 0, y = 0, z = 0;
  bool operator==(const GridCoord&) const = default;
  std::uint64_t packed() const {
    return std::uint64_t(x) | (std::uint64_t(y) << 21) | (std::uint64_t(z) << 42);
  }
};

// A hanging node and the regular nodes it interpolates from: 2 parents for
// an edge-hanging node, 4 for a face-hanging node. `cell_level` is the
// level of the coarse cell that induced the constraint; applying
// constraints in ascending cell_level order resolves chained constraints.
struct HangingConstraint {
  NodeId node = 0;
  std::array<NodeId, 4> parents{};
  std::uint8_t parent_count = 0;
  std::uint8_t cell_level = 0;
};

class HexMesh {
 public:
  HexMesh() = default;

  // Extract the hex mesh of `tree`. The octree is retained by value for
  // point location during sampling.
  explicit HexMesh(LinearOctree tree);

  const LinearOctree& octree() const { return tree_; }
  const Box3& domain() const { return tree_.domain(); }

  std::size_t node_count() const { return node_pos_.size(); }
  std::size_t cell_count() const { return cells_.size(); }

  std::span<const Vec3> node_positions() const { return node_pos_; }
  std::span<const GridCoord> node_grid_coords() const { return node_grid_; }
  std::span<const std::array<NodeId, 8>> cells() const { return cells_; }
  const std::array<NodeId, 8>& cell_nodes(std::size_t c) const { return cells_[c]; }
  OctKey cell_key(std::size_t c) const { return tree_.leaves()[c]; }
  Box3 cell_box(std::size_t c) const { return cell_key(c).box(domain()); }

  std::span<const HangingConstraint> constraints() const { return constraints_; }

  // Node ids on the top surface (max z), Morton-sorted in (x, y).
  // The paper notes >20% of mesh points sit near the surface (§4.3).
  std::span<const NodeId> surface_nodes() const { return surface_; }

  // Node id at exact grid coords, or -1 when no node exists there.
  std::ptrdiff_t find_node(GridCoord gc) const;

  // Trilinear interpolation of a per-node scalar field at point `p`.
  // Returns false when `p` lies outside the mesh.
  bool sample(std::span<const float> node_values, Vec3 p, float& out) const;

  // Local (unit-cube) coordinates of `p` within cell `c` plus the cell's
  // node ids; used by the renderer's inner loop.
  struct CellSample {
    std::size_t cell = 0;
    float u = 0, v = 0, w = 0;  // in [0,1]^3
  };
  bool locate(Vec3 p, CellSample& out) const;

  // Interpolate a node field at a located sample.
  float interpolate(std::span<const float> node_values, const CellSample& s) const;

  // Enforce hanging-node constraints on a field in place (values at hanging
  // nodes become interpolations of their parents).
  void apply_constraints(std::span<float> node_values) const;

  // Transpose operation for the solver: fold force contributions that landed
  // on hanging nodes back onto their parents (then zero the hanging entry).
  void distribute_hanging_forces(std::span<Vec3> node_forces) const;

  // True when node `n` is hanging.
  bool is_hanging(NodeId n) const { return hanging_flag_[n] != 0; }

 private:
  void build_nodes_and_cells();
  void build_constraints();
  void build_surface();

  LinearOctree tree_;
  std::vector<Vec3> node_pos_;
  std::vector<GridCoord> node_grid_;
  std::vector<std::array<NodeId, 8>> cells_;
  std::vector<HangingConstraint> constraints_;  // sorted by cell_level
  std::vector<std::uint8_t> hanging_flag_;
  std::vector<NodeId> surface_;
  std::unordered_map<std::uint64_t, NodeId> node_index_;
};

}  // namespace qv::mesh
