#include "mesh/hex_mesh.hpp"

#include <algorithm>
#include <cmath>

namespace qv::mesh {

namespace {

// Grid coordinate of corner `corner` (bit0=x, bit1=y, bit2=z) of octant `k`.
GridCoord corner_grid(const OctKey& k, int corner) {
  std::uint32_t step = 1u << (kMaxLevel - k.level);
  return {(k.x + ((corner >> 0) & 1u)) * step, (k.y + ((corner >> 1) & 1u)) * step,
          (k.z + ((corner >> 2) & 1u)) * step};
}

}  // namespace

HexMesh::HexMesh(LinearOctree tree) : tree_(std::move(tree)) {
  build_nodes_and_cells();
  build_constraints();
  build_surface();
}

void HexMesh::build_nodes_and_cells() {
  auto leaves = tree_.leaves();
  cells_.resize(leaves.size());
  node_index_.reserve(leaves.size() * 2);

  const Box3& dom = tree_.domain();
  Vec3 ext = dom.extent();
  const float inv_grid = 1.0f / static_cast<float>(1u << kMaxLevel);

  for (std::size_t c = 0; c < leaves.size(); ++c) {
    for (int corner = 0; corner < 8; ++corner) {
      GridCoord gc = corner_grid(leaves[c], corner);
      auto [it, inserted] =
          node_index_.try_emplace(gc.packed(), NodeId(node_pos_.size()));
      if (inserted) {
        node_grid_.push_back(gc);
        node_pos_.push_back(dom.lo + Vec3{ext.x * gc.x * inv_grid,
                                          ext.y * gc.y * inv_grid,
                                          ext.z * gc.z * inv_grid});
      }
      cells_[c][std::size_t(corner)] = it->second;
    }
  }
  hanging_flag_.assign(node_pos_.size(), 0);
}

void HexMesh::build_constraints() {
  // Edge (corner-pair) and face (corner-quad) index tables of a hexahedron
  // in our bit-coded corner numbering.
  static constexpr int kEdges[12][2] = {{0, 1}, {2, 3}, {4, 5}, {6, 7},
                                        {0, 2}, {1, 3}, {4, 6}, {5, 7},
                                        {0, 4}, {1, 5}, {2, 6}, {3, 7}};
  static constexpr int kFaces[6][4] = {{0, 2, 4, 6}, {1, 3, 5, 7}, {0, 1, 4, 5},
                                       {2, 3, 6, 7}, {0, 1, 2, 3}, {4, 5, 6, 7}};

  auto leaves = tree_.leaves();
  for (std::size_t c = 0; c < leaves.size(); ++c) {
    const OctKey& k = leaves[c];
    if (int(k.level) >= kMaxLevel) continue;  // no midpoints on the grid
    const auto& conn = cells_[c];

    auto midpoint = [&](GridCoord a, GridCoord b) {
      return GridCoord{(a.x + b.x) / 2, (a.y + b.y) / 2, (a.z + b.z) / 2};
    };

    for (const auto& e : kEdges) {
      GridCoord a = corner_grid(k, e[0]);
      GridCoord b = corner_grid(k, e[1]);
      auto idx = find_node(midpoint(a, b));
      if (idx < 0) continue;
      HangingConstraint hc;
      hc.node = NodeId(idx);
      hc.parents = {conn[std::size_t(e[0])], conn[std::size_t(e[1])], 0, 0};
      hc.parent_count = 2;
      hc.cell_level = k.level;
      constraints_.push_back(hc);
      hanging_flag_[hc.node] = 1;
    }
    for (const auto& f : kFaces) {
      GridCoord a = corner_grid(k, f[0]);
      GridCoord b = corner_grid(k, f[3]);  // diagonal corners of the face
      auto idx = find_node(midpoint(a, b));
      if (idx < 0) continue;
      HangingConstraint hc;
      hc.node = NodeId(idx);
      hc.parents = {conn[std::size_t(f[0])], conn[std::size_t(f[1])],
                    conn[std::size_t(f[2])], conn[std::size_t(f[3])]};
      hc.parent_count = 4;
      hc.cell_level = k.level;
      constraints_.push_back(hc);
      hanging_flag_[hc.node] = 1;
    }
  }

  // A node may be flagged by several coarse cells (shared edges); keep one
  // constraint per node, preferring the coarsest generating cell.
  std::sort(constraints_.begin(), constraints_.end(),
            [](const HangingConstraint& a, const HangingConstraint& b) {
              if (a.node != b.node) return a.node < b.node;
              return a.cell_level < b.cell_level;
            });
  constraints_.erase(
      std::unique(constraints_.begin(), constraints_.end(),
                  [](const HangingConstraint& a, const HangingConstraint& b) {
                    return a.node == b.node;
                  }),
      constraints_.end());
  // Resolution order: coarse generating cells first.
  std::stable_sort(constraints_.begin(), constraints_.end(),
                   [](const HangingConstraint& a, const HangingConstraint& b) {
                     return a.cell_level < b.cell_level;
                   });
}

void HexMesh::build_surface() {
  const std::uint32_t top = 1u << kMaxLevel;
  for (NodeId n = 0; n < node_grid_.size(); ++n) {
    if (node_grid_[n].z == top) surface_.push_back(n);
  }
  std::sort(surface_.begin(), surface_.end(), [&](NodeId a, NodeId b) {
    return morton_encode(node_grid_[a].x, node_grid_[a].y, 0) <
           morton_encode(node_grid_[b].x, node_grid_[b].y, 0);
  });
}

std::ptrdiff_t HexMesh::find_node(GridCoord gc) const {
  auto it = node_index_.find(gc.packed());
  return it == node_index_.end() ? -1 : std::ptrdiff_t(it->second);
}

bool HexMesh::locate(Vec3 p, CellSample& out) const {
  auto idx = tree_.find_leaf(p);
  if (idx < 0) return false;
  out.cell = std::size_t(idx);
  Box3 b = cell_box(out.cell);
  Vec3 ext = b.extent();
  out.u = std::clamp((p.x - b.lo.x) / ext.x, 0.0f, 1.0f);
  out.v = std::clamp((p.y - b.lo.y) / ext.y, 0.0f, 1.0f);
  out.w = std::clamp((p.z - b.lo.z) / ext.z, 0.0f, 1.0f);
  return true;
}

float HexMesh::interpolate(std::span<const float> node_values,
                           const CellSample& s) const {
  const auto& n = cells_[s.cell];
  float u = s.u, v = s.v, w = s.w;
  float c00 = node_values[n[0]] * (1 - u) + node_values[n[1]] * u;
  float c10 = node_values[n[2]] * (1 - u) + node_values[n[3]] * u;
  float c01 = node_values[n[4]] * (1 - u) + node_values[n[5]] * u;
  float c11 = node_values[n[6]] * (1 - u) + node_values[n[7]] * u;
  float c0 = c00 * (1 - v) + c10 * v;
  float c1 = c01 * (1 - v) + c11 * v;
  return c0 * (1 - w) + c1 * w;
}

bool HexMesh::sample(std::span<const float> node_values, Vec3 p, float& out) const {
  CellSample s;
  if (!locate(p, s)) return false;
  out = interpolate(node_values, s);
  return true;
}

void HexMesh::apply_constraints(std::span<float> node_values) const {
  for (const auto& hc : constraints_) {
    float sum = 0.0f;
    for (int i = 0; i < hc.parent_count; ++i) sum += node_values[hc.parents[std::size_t(i)]];
    node_values[hc.node] = sum / float(hc.parent_count);
  }
}

void HexMesh::distribute_hanging_forces(std::span<Vec3> node_forces) const {
  // Reverse order: hanging-on-hanging chains fold inward correctly.
  for (auto it = constraints_.rbegin(); it != constraints_.rend(); ++it) {
    const auto& hc = *it;
    Vec3 share = node_forces[hc.node] / float(hc.parent_count);
    for (int i = 0; i < hc.parent_count; ++i) {
      node_forces[hc.parents[std::size_t(i)]] += share;
    }
    node_forces[hc.node] = {};
  }
}

}  // namespace qv::mesh
