// Linear octree: the sorted-leaf-array representation of an adaptive octree,
// plus the wavelength-driven refinement used to generate earthquake meshes
// (finer cells where the local seismic wavelength is short, i.e. soft soil
// near the surface — §3 of the paper).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "mesh/octkey.hpp"
#include "util/vec.hpp"

namespace qv::mesh {

// Returns the desired edge length (in domain units) at a point. The mesher
// refines until every leaf's edge is <= the minimum desired size inside it.
using SizeField = std::function<float(Vec3)>;

class LinearOctree {
 public:
  LinearOctree() = default;

  // Build by recursive refinement over `domain`. The size field is sampled
  // at the cell center and corners. Levels are clamped to
  // [min_level, max_level]. The result is 2:1 balanced across faces.
  static LinearOctree build(const Box3& domain, const SizeField& desired_size,
                            int min_level, int max_level);

  // Uniform octree at `level` (every leaf the same size).
  static LinearOctree uniform(const Box3& domain, int level);

  // Adopt an explicit leaf set (e.g. deserialized from disk). Keys are
  // sorted and deduplicated; no balancing is applied (the set is assumed to
  // come from a previously built tree).
  static LinearOctree from_leaves(const Box3& domain, std::vector<OctKey> leaves);

  // Restrict to `level`: every leaf deeper than `level` is replaced by its
  // level-`level` ancestor (duplicates removed). Leaves already at or above
  // `level` are kept. This implements the renderer's adaptive
  // level-of-detail and the adaptive fetching of §6.
  LinearOctree clipped(int level) const;

  const Box3& domain() const { return domain_; }
  std::span<const OctKey> leaves() const { return leaves_; }
  std::size_t leaf_count() const { return leaves_.size(); }
  int max_leaf_level() const;
  int min_leaf_level() const;

  // Index of the leaf whose octant contains `p`, or -1 when `p` is outside
  // the domain. Binary search in Morton order: O(log n).
  std::ptrdiff_t find_leaf(Vec3 p) const;

  // Index of the leaf equal to or containing `key`, or -1.
  std::ptrdiff_t find_leaf(const OctKey& key) const;

  // True when no leaf's face neighbor differs by more than one level.
  bool is_balanced() const;

  // Leaves (by index) whose ancestor at `block_level` equals `block`.
  // Leaves shallower than block_level belong to the block they contain.
  // Because storage is Morton-ordered this is a contiguous range.
  std::pair<std::size_t, std::size_t> subtree_range(const OctKey& block) const;

 private:
  void sort_and_dedup();
  void balance();

  Box3 domain_;
  std::vector<OctKey> leaves_;  // Morton-sorted
};

}  // namespace qv::mesh
