#include "mesh/octkey.hpp"

namespace qv::mesh {

namespace {

// Spread the low 21 bits of v so there are two zero bits between each.
std::uint64_t spread3(std::uint64_t v) {
  v &= 0x1fffffULL;
  v = (v | (v << 32)) & 0x1f00000000ffffULL;
  v = (v | (v << 16)) & 0x1f0000ff0000ffULL;
  v = (v | (v << 8)) & 0x100f00f00f00f00fULL;
  v = (v | (v << 4)) & 0x10c30c30c30c30c3ULL;
  v = (v | (v << 2)) & 0x1249249249249249ULL;
  return v;
}

std::uint32_t compact3(std::uint64_t v) {
  v &= 0x1249249249249249ULL;
  v = (v ^ (v >> 2)) & 0x10c30c30c30c30c3ULL;
  v = (v ^ (v >> 4)) & 0x100f00f00f00f00fULL;
  v = (v ^ (v >> 8)) & 0x1f0000ff0000ffULL;
  v = (v ^ (v >> 16)) & 0x1f00000000ffffULL;
  v = (v ^ (v >> 32)) & 0x1fffffULL;
  return static_cast<std::uint32_t>(v);
}

}  // namespace

std::uint64_t morton_encode(std::uint32_t x, std::uint32_t y, std::uint32_t z) {
  return spread3(x) | (spread3(y) << 1) | (spread3(z) << 2);
}

void morton_decode(std::uint64_t code, std::uint32_t& x, std::uint32_t& y,
                   std::uint32_t& z) {
  x = compact3(code);
  y = compact3(code >> 1);
  z = compact3(code >> 2);
}

bool OctKey::face_neighbor(int axis, int dir, OctKey& out) const {
  std::uint32_t c[3] = {x, y, z};
  std::uint32_t limit = 1u << level;
  if (dir < 0) {
    if (c[axis] == 0) return false;
    c[axis] -= 1;
  } else {
    if (c[axis] + 1 >= limit) return false;
    c[axis] += 1;
  }
  out = {c[0], c[1], c[2], level};
  return true;
}

Box3 OctKey::box(const Box3& domain) const {
  float inv = 1.0f / static_cast<float>(1u << level);
  Vec3 ext = domain.extent();
  Vec3 lo = domain.lo + Vec3{ext.x * x * inv, ext.y * y * inv, ext.z * z * inv};
  Vec3 cell{ext.x * inv, ext.y * inv, ext.z * inv};
  return {lo, lo + cell};
}

}  // namespace qv::mesh
