#include "octree/blocks.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <queue>

namespace qv::octree {

std::vector<Block> decompose(const mesh::LinearOctree& tree, int block_level) {
  std::vector<Block> blocks;
  auto leaves = tree.leaves();
  std::size_t i = 0;
  while (i < leaves.size()) {
    Block b;
    if (int(leaves[i].level) <= block_level) {
      // Shallow leaf: it is its own block.
      b.root = leaves[i];
      b.cell_begin = i;
      b.cell_end = i + 1;
    } else {
      b.root = leaves[i].ancestor(block_level);
      b.cell_begin = i;
      std::size_t j = i;
      while (j < leaves.size() && int(leaves[j].level) > block_level &&
             leaves[j].ancestor(block_level) == b.root) {
        ++j;
      }
      b.cell_end = j;
    }
    b.bounds = b.root.box(tree.domain());
    blocks.push_back(b);
    i = b.cell_end;
  }
  return blocks;
}

void estimate_workloads(const mesh::LinearOctree& tree, std::span<Block> blocks,
                        WorkloadModel model) {
  auto leaves = tree.leaves();
  for (Block& b : blocks) {
    switch (model) {
      case WorkloadModel::kCellCount:
        b.workload = double(b.cell_count());
        break;
      case WorkloadModel::kDepthWeighted: {
        // A ray marching at a fixed world-space step takes more samples per
        // cell volume in finer regions; weight by 2^level.
        double w = 0.0;
        for (std::size_t c = b.cell_begin; c < b.cell_end; ++c) {
          w += double(1u << leaves[c].level);
        }
        b.workload = w;
        break;
      }
    }
  }
}

std::vector<int> assign_blocks(std::span<const Block> blocks, int num_procs,
                               AssignStrategy strategy) {
  std::vector<int> owners(blocks.size(), 0);
  if (num_procs <= 1 || blocks.empty()) return owners;

  switch (strategy) {
    case AssignStrategy::kRoundRobin: {
      for (std::size_t i = 0; i < blocks.size(); ++i) {
        owners[i] = int(i % std::size_t(num_procs));
      }
      break;
    }
    case AssignStrategy::kMortonContiguous: {
      double total = 0.0;
      for (const Block& b : blocks) total += b.workload;
      double target = total / num_procs;
      double acc = 0.0;
      int proc = 0;
      for (std::size_t i = 0; i < blocks.size(); ++i) {
        owners[i] = proc;
        acc += blocks[i].workload;
        // Advance when this processor reached its share, keeping enough
        // blocks for the remaining processors.
        if (acc >= target * (proc + 1) && proc + 1 < num_procs &&
            blocks.size() - i - 1 >= std::size_t(num_procs - proc - 1)) {
          ++proc;
        }
      }
      break;
    }
    case AssignStrategy::kLargestFirst: {
      std::vector<std::size_t> order(blocks.size());
      std::iota(order.begin(), order.end(), std::size_t{0});
      std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return blocks[a].workload > blocks[b].workload;
      });
      // Min-heap of (load, proc).
      using Entry = std::pair<double, int>;
      std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
      for (int p = 0; p < num_procs; ++p) heap.push({0.0, p});
      for (std::size_t idx : order) {
        auto [load, p] = heap.top();
        heap.pop();
        owners[idx] = p;
        heap.push({load + blocks[idx].workload, p});
      }
      break;
    }
  }
  return owners;
}

std::vector<double> per_proc_load(std::span<const Block> blocks,
                                  std::span<const int> owners, int num_procs) {
  std::vector<double> load(std::size_t(num_procs), 0.0);
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    load[std::size_t(owners[i])] += blocks[i].workload;
  }
  return load;
}

int adaptive_level(int image_width, int data_level, double max_elems_per_pixel,
                   int coarsest_level) {
  // At level L the data is 2^L cells across; the image is image_width pixels
  // across; a pixel column covers (2^L / image_width) cells per axis, i.e.
  // roughly that squared elements project into one pixel.
  int level = data_level;
  while (level > coarsest_level) {
    double cells_per_pixel_axis = std::ldexp(1.0, level) / double(image_width);
    double elems_per_pixel =
        cells_per_pixel_axis * cells_per_pixel_axis;
    if (elems_per_pixel <= max_elems_per_pixel) break;
    --level;
  }
  return level;
}

}  // namespace qv::octree
