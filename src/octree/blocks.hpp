// Block decomposition and static load balancing (§4 of the paper).
//
// The input processors split the global octree into blocks of hexahedral
// elements — each block is a subtree rooted at a fixed "block level" — and
// assign blocks to rendering processors using a workload estimate. The
// subtree structure is shipped to each renderer once (the mesh is static);
// only node values flow per time step.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "mesh/hex_mesh.hpp"
#include "mesh/linear_octree.hpp"

namespace qv::octree {

struct Block {
  mesh::OctKey root;          // subtree root octant
  std::size_t cell_begin = 0; // contiguous cell range in the Morton-ordered mesh
  std::size_t cell_end = 0;
  Box3 bounds;                // geometric extent
  double workload = 0.0;      // estimated rendering cost

  std::size_t cell_count() const { return cell_end - cell_begin; }
};

// Split `tree` into subtree blocks at `block_level`. Leaves shallower than
// block_level become single-cell blocks. Returns blocks in Morton order.
std::vector<Block> decompose(const mesh::LinearOctree& tree, int block_level);

// Workload estimation strategies for a block.
enum class WorkloadModel {
  kCellCount,       // #cells — the paper's static estimate
  kDepthWeighted,   // finer cells cost more per unit volume (more samples hit)
};

void estimate_workloads(const mesh::LinearOctree& tree, std::span<Block> blocks,
                        WorkloadModel model);

// Assignment of blocks to rendering processors.
enum class AssignStrategy {
  kRoundRobin,       // naive baseline
  kMortonContiguous, // contiguous Morton ranges with ~equal workload
  kLargestFirst,     // LPT greedy: best balance, scattered locality
};

// Returns owner[i] in [0, num_procs) for each block.
std::vector<int> assign_blocks(std::span<const Block> blocks, int num_procs,
                               AssignStrategy strategy);

// Per-processor total workload under an assignment (for imbalance metrics).
std::vector<double> per_proc_load(std::span<const Block> blocks,
                                  std::span<const int> owners, int num_procs);

// Adaptive rendering level (§4.1): pick the coarsest octree level that still
// gives at most `max_elems_per_pixel` elements projecting onto one pixel at
// the given image resolution, clamped to [coarsest_level, finest data level].
// `data_level` is the finest leaf level of the dataset.
int adaptive_level(int image_width, int data_level, double max_elems_per_pixel,
                   int coarsest_level = 4);

}  // namespace qv::octree
