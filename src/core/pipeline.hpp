// The parallel visualization pipeline (the paper's primary contribution).
//
// Processor roles (Figure 2): ranks [0, I) are input processors, ranks
// [I, I+R) rendering processors, and the last rank the output processor.
//
//   input:  fetch each time step from disk (1DIP whole-step reads or 2DIP
//           group reads, collective-noncontiguous or independent-contiguous
//           per §5.3), run the preprocessing calculations (magnitude,
//           quantization to 8 bits, optional temporal enhancement, optional
//           surface LIC), and ship per-block node values to the renderers
//           with buffered (non-blocking) sends.
//   render: receive block values for the next step in the background while
//           rendering the current one, raycast owned blocks, composite
//           (SLIC or direct-send) across the render communicator, and send
//           the finished frame to the output processor.
//   output: composite the optional LIC ground layer under the volume image,
//           record interframe delay, optionally write PPM frames.
//
// The block decomposition, workload estimation, and block->renderer
// assignment are computed identically on every rank from the dataset's
// octree (the "one-time preprocessing" of §4; the mesh never changes).
#pragma once

#include <string>
#include <vector>

#include "core/config.hpp"
#include "img/image.hpp"

namespace qv::core {

struct PipelineReport {
  // The compositing algorithm that actually ran, after validation rerouting
  // (e.g. "radix-k(k=2)" when binary-swap was requested with a
  // non-power-of-two render_procs). Also counted in the metrics registry as
  // compositing.algo.<slic|direct_send|binary_swap|radix_k>.
  std::string compositor;

  // Completion time of each frame, seconds since the pipeline start barrier
  // (recorded by the output processor).
  std::vector<double> frame_seconds;
  double avg_interframe = 0.0;  // steady-state (second half) mean

  // Per-step averages across the whole run.
  double avg_fetch = 0.0;       // input: disk time
  double avg_preprocess = 0.0;  // input: magnitude/quantize/enhance/LIC
  double avg_send = 0.0;        // input: shipping blocks
  double avg_render = 0.0;      // render: raycasting
  double avg_composite = 0.0;   // render: parallel compositing
  std::uint64_t composite_bytes = 0;  // total compositing traffic
  // Input -> renderer data-distribution traffic, before and after the
  // optional RLE compression of quantized block payloads.
  std::uint64_t block_bytes_raw = 0;
  std::uint64_t block_bytes_sent = 0;

  // Dynamic redistribution (rebalance_every > 0): per epoch boundary, the
  // measured render-cost imbalance of the assignment that just ran and of
  // the replanned assignment that replaces it.
  std::vector<double> epoch_imbalance;
  std::vector<double> epoch_imbalance_replanned;

  // Fault handling (all zero when config.fault_plan is null and no faults
  // occur naturally):
  std::uint64_t retries = 0;                 // transient-read retries (inputs)
  std::uint64_t corrupt_blocks_detected = 0; // CRC mismatches (renderers)
  std::uint64_t resend_requests = 0;         // NACKs serviced by inputs
  int dropped_steps = 0;                     // steps abandoned after recovery
  int degraded_frames = 0;                   // frames showing reused data
  std::vector<int> degraded_steps;           // which steps, ascending

  // Input-side step accounting. A step is *attempted* once its fetch starts
  // and *completed* only after preprocess + send finished; a permanently
  // failed fetch leaves attempted > completed. avg_fetch averages over
  // attempts (the disk was really hit); avg_preprocess / avg_send average
  // over completions, so degraded runs no longer dilute those averages with
  // steps that never ran the stage.
  int input_steps_attempted = 0;
  int input_steps_completed = 0;

  int steps = 0;

  // Remote frame delivery (all zero unless config.stream.enabled).
  stream::StreamReport stream;

  // Multi-viewer fan-out (empty unless config.serve.enabled).
  stream::ServerReport server;
};

// Run the full pipeline in-process (spawns config.world_size() vmpi ranks).
// When `frames_out` is non-null the output processor also stores every
// final frame there (in step order) for inspection by tests and examples.
PipelineReport run_pipeline(const PipelineConfig& config,
                            std::vector<img::Image>* frames_out = nullptr);

}  // namespace qv::core
