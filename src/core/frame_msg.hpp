// The render-root -> output-processor frame hop, shared by the steady-state
// pipeline and the in-situ variant.
//
// Historically each caller hand-rolled its own header (or sent raw pixels
// with no header at all), so a version or size mismatch showed up as
// garbage pixels downstream. The helper gives the hop the same
// magic/version discipline as the data-distribution messages: parse
// failures are explicit, and the 16-byte header stays inside the fault
// layer's 32-byte trusted prefix.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "img/image.hpp"

namespace qv::core {

inline constexpr std::uint32_t kFrameMsgMagic = 0x4d465651u;  // "QVFM"
inline constexpr std::uint16_t kFrameMsgVersion = 1;

struct FrameWireHeader {
  std::uint32_t magic;
  std::uint16_t version;
  std::uint8_t degraded;  // some renderer showed stale data this step
  std::uint8_t pad;
  std::int32_t step;
  std::uint32_t pixel_count;
};
static_assert(sizeof(FrameWireHeader) == 16);

// Parsed view into a frame message; `pixels` aliases the message buffer.
struct FrameMsgView {
  int step = 0;
  bool degraded = false;
  std::span<const img::Rgba> pixels;
};

// Build header + raw Rgba pixels.
std::vector<std::uint8_t> make_frame_msg(std::int32_t step, bool degraded,
                                         std::span<const img::Rgba> pixels);

// Validate and parse. Rejects short buffers, bad magic/version, and any
// pixel count that disagrees with either the header or `expected_pixels`.
std::optional<FrameMsgView> parse_frame_msg(std::span<const std::uint8_t> msg,
                                            std::size_t expected_pixels);

}  // namespace qv::core
