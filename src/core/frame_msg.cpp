#include "core/frame_msg.hpp"

#include <cstring>

namespace qv::core {

std::vector<std::uint8_t> make_frame_msg(std::int32_t step, bool degraded,
                                         std::span<const img::Rgba> pixels) {
  FrameWireHeader h{};
  h.magic = kFrameMsgMagic;
  h.version = kFrameMsgVersion;
  h.degraded = degraded ? 1 : 0;
  h.step = step;
  h.pixel_count = std::uint32_t(pixels.size());
  std::vector<std::uint8_t> msg(sizeof(h) + pixels.size_bytes());
  std::memcpy(msg.data(), &h, sizeof(h));
  std::memcpy(msg.data() + sizeof(h), pixels.data(), pixels.size_bytes());
  return msg;
}

std::optional<FrameMsgView> parse_frame_msg(std::span<const std::uint8_t> msg,
                                            std::size_t expected_pixels) {
  if (msg.size() < sizeof(FrameWireHeader)) return std::nullopt;
  FrameWireHeader h;
  std::memcpy(&h, msg.data(), sizeof(h));
  if (h.magic != kFrameMsgMagic || h.version != kFrameMsgVersion)
    return std::nullopt;
  if (h.pixel_count != expected_pixels) return std::nullopt;
  if (msg.size() != sizeof(h) + expected_pixels * sizeof(img::Rgba))
    return std::nullopt;
  FrameMsgView v;
  v.step = h.step;
  v.degraded = h.degraded != 0;
  v.pixels = {reinterpret_cast<const img::Rgba*>(msg.data() + sizeof(h)),
              expected_pixels};
  return v;
}

}  // namespace qv::core
