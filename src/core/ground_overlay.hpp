// Projects a surface LIC texture onto the ground plane under the camera so
// the output processors can composite it beneath the volume rendering —
// the "simultaneous volume rendering and surface LIC" of Figures 13/14.
#pragma once

#include <span>

#include "img/image.hpp"
#include "render/camera.hpp"
#include "util/vec.hpp"

namespace qv::core {

// Ray-cast the camera's pixels against the z = domain.hi.z ground plane,
// bounded by the domain's footprint, sampling the LIC gray texture
// (gw x gh, spanning the domain's x/y extent). Returns an opaque layer
// where the plane is visible and transparent elsewhere.
img::Image render_ground_overlay(const render::Camera& camera,
                                 const Box3& domain,
                                 std::span<const float> lic_gray, int gw,
                                 int gh);

}  // namespace qv::core
