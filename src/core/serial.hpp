// Serial (single-process) rendering of a dataset step: the reference
// implementation the distributed pipeline must agree with, and the simplest
// way to make a picture with this library (see examples/quickstart.cpp).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "img/image.hpp"
#include "io/dataset.hpp"
#include "render/camera.hpp"
#include "render/raycast.hpp"
#include "io/preprocess.hpp"
#include "render/transfer.hpp"

namespace qv::core {

struct SerialRenderConfig {
  int level = -1;            // -1: finest
  int block_level = 2;
  io::Variable variable = io::Variable::kMagnitude;
  bool enhancement = false;
  float enhancement_gain = 2.0f;
  bool quantize = false;     // push values through the 8-bit path the
                             // pipeline uses, for bit-comparable output
  render::RenderOptions render;
};

// Load the interleaved node records of `level` for `step` (plain file read).
std::vector<float> load_step_level(io::DatasetReader& reader, int step,
                                   int level);

// The chosen scalar variable of `step` at `level`, optionally temporally
// enhanced (which loads the neighbor steps too).
std::vector<float> load_scalar_field(io::DatasetReader& reader, int step,
                                     int level, bool enhancement,
                                     float enhancement_gain,
                                     io::Variable variable = io::Variable::kMagnitude);

// Render one step of the dataset.
img::Image render_step(io::DatasetReader& reader, int step,
                       const render::Camera& camera,
                       const render::TransferFunction& tf,
                       const SerialRenderConfig& config,
                       render::RenderStats* stats = nullptr);

}  // namespace qv::core
