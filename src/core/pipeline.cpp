#include "core/pipeline.hpp"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <stdexcept>

#include "compositing/binary_swap.hpp"
#include "compositing/radix_k.hpp"
#include "compositing/direct_send.hpp"
#include "compositing/slic.hpp"
#include "core/frame_msg.hpp"
#include "core/ground_overlay.hpp"
#include "img/image.hpp"
#include "io/block_index.hpp"
#include "io/codec.hpp"
#include "io/dataset.hpp"
#include "io/preprocess.hpp"
#include "lic/lic.hpp"
#include "metrics/metrics.hpp"
#include "obs/lineage.hpp"
#include "render/order.hpp"
#include "render/raycast.hpp"
#include "trace/trace.hpp"
#include "util/crc32.hpp"
#include "util/stats.hpp"
#include "vmpi/comm.hpp"
#include "vmpi/file.hpp"

namespace qv::core {

namespace {

// Per-step message tags: step * 8 + kind keeps the spaces disjoint.
// (Epoch-indexed assignment messages reuse the same scheme with kind 3.)
// Every per-step tag is ≡ 0..3 (mod 8), so the constant control tags 4 and
// 5 can never collide with them.
int tag_block(int step) { return step * 8 + 0; }
int tag_frame(int step) { return step * 8 + 1; }
int tag_lic(int step) { return step * 8 + 2; }
int tag_assign(int epoch) { return epoch * 8 + 3; }
constexpr int kTagNack = 4;  // renderer -> input: resend a corrupt payload
constexpr int kTagDone = 5;  // renderer -> input: no more NACKs will come

constexpr std::uint8_t kFlagStepSkipped = 1;  // fetch failed; reuse old data
// Re-requests per renderer per step before giving up on fresh data. Bounds
// the worst case (every resend corrupted again) instead of looping forever.
constexpr int kMaxNacksPerStep = 4;

struct BlockMsgHeader {
  std::int32_t step;
  std::int32_t block;
  float lo, hi;          // quantization range
  std::uint32_t count;   // quantized value count
  std::uint32_t payload; // bytes that follow (== count when uncompressed)
  std::uint32_t crc;     // CRC-32 of the payload bytes
  std::uint8_t compressed;
  std::uint8_t flags;    // kFlagStepSkipped
  std::uint8_t pad[2];
};

struct SliceMsgHeader {
  std::int32_t step;
  std::int32_t member;
  float lo, hi;
  std::uint32_t count;
  std::uint32_t payload;
  std::uint32_t crc;
  std::uint8_t compressed;
  std::uint8_t flags;
  std::uint8_t pad[2];
};

// The fault layer never corrupts the first FaultPlan::corrupt_offset_min
// (default 32) bytes of a message — the trusted-header model. Both data
// headers must fit in that prefix so step/block routing and the CRC itself
// survive, which is what lets a renderer address its NACK.
static_assert(sizeof(BlockMsgHeader) == 32);
static_assert(sizeof(SliceMsgHeader) == 32);

// (The render root -> output processor frame hop uses the shared
// make_frame_msg/parse_frame_msg helper from core/frame_msg.hpp.)

// Renderer -> input (kTagNack): please resend.
struct NackMsg {
  std::int32_t step;
  std::int32_t block;  // global block id, or -1 for a 2DIP slice message
};

// Append `values` to `msg` after its header, RLE-compressed when that wins
// and `allow` is set. Fills payload/compressed in the header at `hdr_pos`.
template <typename Header>
void pack_values(std::vector<std::uint8_t>& msg, std::size_t hdr_pos,
                 std::span<const std::uint8_t> values, bool allow,
                 std::uint64_t* raw_bytes, std::uint64_t* sent_bytes) {
  std::size_t payload_pos = msg.size();
  bool compressed = false;
  if (allow) {
    io::rle8_encode(values, msg);
    if (msg.size() - payload_pos < values.size()) {
      compressed = true;
    } else {
      msg.resize(payload_pos);  // compression did not pay off
    }
  }
  if (!compressed) {
    msg.insert(msg.end(), values.begin(), values.end());
  }
  Header hdr;
  std::memcpy(&hdr, msg.data() + hdr_pos, sizeof(hdr));
  hdr.payload = std::uint32_t(msg.size() - payload_pos);
  hdr.compressed = compressed ? 1 : 0;
  hdr.crc = util::crc32({msg.data() + payload_pos, msg.size() - payload_pos});
  std::memcpy(msg.data() + hdr_pos, &hdr, sizeof(hdr));
  if (raw_bytes) *raw_bytes += values.size();
  if (sent_bytes) *sent_bytes += msg.size() - payload_pos;
}

// Does the payload match its framing checksum?
template <typename Header>
bool payload_ok(const Header& hdr, std::span<const std::uint8_t> msg) {
  if (msg.size() != sizeof(Header) + hdr.payload) return false;
  return util::crc32(msg.subspan(sizeof(Header))) == hdr.crc;
}

std::vector<std::uint8_t> make_block_msg(int step, std::size_t block, float lo,
                                         float hi,
                                         std::span<const std::uint8_t> values,
                                         bool compress, std::uint64_t* raw,
                                         std::uint64_t* sent) {
  std::vector<std::uint8_t> msg(sizeof(BlockMsgHeader));
  BlockMsgHeader hdr{step, std::int32_t(block),        lo, hi,
                     std::uint32_t(values.size()), 0,  0,  0,
                     0,    {}};
  std::memcpy(msg.data(), &hdr, sizeof(hdr));
  pack_values<BlockMsgHeader>(msg, 0, values, compress, raw, sent);
  return msg;
}

std::vector<std::uint8_t> make_slice_msg(int step, int member, float lo,
                                         float hi,
                                         std::span<const std::uint8_t> values,
                                         bool compress, std::uint64_t* raw,
                                         std::uint64_t* sent) {
  std::vector<std::uint8_t> msg(sizeof(SliceMsgHeader));
  SliceMsgHeader hdr{step, member,                       lo, hi,
                     std::uint32_t(values.size()), 0,   0,  0,
                     0,    {}};
  std::memcpy(msg.data(), &hdr, sizeof(hdr));
  pack_values<SliceMsgHeader>(msg, 0, values, compress, raw, sent);
  return msg;
}

// Header-only "this step's data is not coming" marker.
std::vector<std::uint8_t> make_skip_block_msg(int step, std::int32_t block = -1) {
  BlockMsgHeader hdr{};
  hdr.step = step;
  hdr.block = block;
  hdr.flags = kFlagStepSkipped;
  std::vector<std::uint8_t> msg(sizeof(hdr));
  std::memcpy(msg.data(), &hdr, sizeof(hdr));
  return msg;
}

std::vector<std::uint8_t> make_skip_slice_msg(int step, int member) {
  SliceMsgHeader hdr{};
  hdr.step = step;
  hdr.member = member;
  hdr.flags = kFlagStepSkipped;
  std::vector<std::uint8_t> msg(sizeof(hdr));
  std::memcpy(msg.data(), &hdr, sizeof(hdr));
  return msg;
}

// Dequantize a header's payload into `dst` through `scatter(i, value)`.
template <typename Header, typename Fn>
void unpack_values(const Header& hdr, std::span<const std::uint8_t> msg,
                   std::vector<std::uint8_t>& scratch, Fn&& store) {
  std::span<const std::uint8_t> values;
  if (hdr.compressed) {
    scratch.resize(hdr.count);
    if (!io::rle8_decode(msg, sizeof(Header), scratch))
      throw std::runtime_error("pipeline: corrupt compressed block payload");
    values = scratch;
  } else {
    values = msg.subspan(sizeof(Header), hdr.count);
  }
  const float scale = (hdr.hi - hdr.lo) / 255.0f;
  for (std::size_t i = 0; i < values.size(); ++i) {
    store(i, hdr.lo + scale * float(values[i]));
  }
}

// Stats shared across the rank threads (joined before run_pipeline returns).
// Only the wall-time accumulators live here now; every event COUNT moved to
// the metrics registry (see PipeCounters below) — they used to be plain ints
// mutated from multiple rank threads and are atomic counters today.
struct Shared {
  const PipelineConfig& config;
  std::vector<img::Image>* frames_out = nullptr;
  PipelineReport report{};
  std::mutex mu{};
  double fetch = 0, preprocess = 0, send = 0;
  double render = 0, composite = 0;
};

// Registry counters backing PipelineReport. The handles are process-global
// and monotone; run_pipeline snapshots their values before spawning ranks
// and fills the report from the after-minus-before deltas, so several
// pipeline runs in one process (benches, tests) never cross-contaminate.
// io.retries and compositing.bytes_sent are owned by vmpi::File and the
// compositing algorithms; they are captured here only for the report diff.
struct PipeCounters {
  metrics::Counter& block_bytes_raw = metrics::counter("pipeline.block_bytes_raw");
  metrics::Counter& block_bytes_sent = metrics::counter("pipeline.block_bytes_sent");
  // Attempted counts every step whose fetch started; completed only those
  // that went on through preprocess+send. They differ under fetch faults.
  metrics::Counter& input_attempted = metrics::counter("pipeline.input_steps_attempted");
  metrics::Counter& input_completed = metrics::counter("pipeline.input_steps_completed");
  metrics::Counter& render_steps = metrics::counter("pipeline.render_steps");
  metrics::Counter& crc_failures = metrics::counter("pipeline.crc_failures");
  metrics::Counter& resends = metrics::counter("pipeline.resends");
  metrics::Counter& dropped_steps = metrics::counter("pipeline.dropped_steps");
  metrics::Counter& degraded_frames = metrics::counter("pipeline.degraded_frames");
  metrics::Counter& io_retries = metrics::counter("io.retries");
  metrics::Counter& composite_bytes = metrics::counter("compositing.bytes_sent");
};

PipeCounters& pipe_counters() {
  static PipeCounters pc;
  return pc;
}

// Deterministic per-rank setup computed from the dataset alone — the
// "one-time preprocessing" every processor can reproduce because the mesh
// is static.
struct Setup {
  const PipelineConfig& cfg;
  io::DatasetReader reader;
  int level;
  const mesh::HexMesh* mesh;
  std::vector<octree::Block> blocks;
  std::vector<int> owners;  // initial block -> render proc assignment
  io::BlockNodeIndex index;
  render::TransferFunction tf;
  int num_steps;
  // Numbered steering trace (empty unless cfg.steer.enabled): ids 1..N in
  // step order, identical on every rank (config-distributed).
  std::vector<stream::SteerEvent> steer_trace;

  explicit Setup(const PipelineConfig& config)
      : cfg(config),
        reader(config.dataset_dir),
        level(config.adaptive_level < 0 ? reader.meta().finest_level
                                        : config.adaptive_level),
        mesh(&reader.level_mesh(level)),
        tf(!config.tf_file.empty()
               ? render::TransferFunction::from_file(config.tf_file)
               : (config.colormap == Colormap::kSeismic
                      ? render::TransferFunction::seismic()
                      : render::TransferFunction::grayscale())) {
    blocks = octree::decompose(mesh->octree(), cfg.block_level);
    octree::estimate_workloads(mesh->octree(), blocks,
                               octree::WorkloadModel::kCellCount);
    owners = octree::assign_blocks(blocks, cfg.render_procs, cfg.assign);
    index = io::BlockNodeIndex(*mesh, blocks);
    num_steps = cfg.num_steps < 0
                    ? reader.meta().num_steps
                    : std::min(cfg.num_steps, reader.meta().num_steps);
    if (cfg.steer.enabled) {
      std::vector<stream::SteerEvent> trace;
      if (!cfg.steer.trace_path.empty()) {
        std::string err;
        auto loaded = stream::load_steer_trace(cfg.steer.trace_path, &err);
        if (!loaded)
          throw std::runtime_error("pipeline: steering trace: " + err);
        trace = std::move(*loaded);
      } else {
        trace = stream::make_steer_trace(cfg.steer.seed, num_steps,
                                         cfg.steer.edits);
      }
      for (const auto& ev : trace) {
        if (ev.msg.kind == stream::SteerKind::kScrub)
          throw std::runtime_error(
              "pipeline: scrub edits are serve-loop only — the batch "
              "pipeline reads dataset steps in order");
      }
      steer_trace = stream::number_steer_trace(std::move(trace));
    }
  }

  // The base (un-steered) view the steering fold starts from.
  stream::SteeringState steer_base() const {
    stream::SteeringState v;
    v.value_lo = cfg.render.value_lo;
    v.value_hi = cfg.render.value_hi;
    return v;
  }
  stream::SteeringState steer_view(int step) const {
    return stream::fold_steer_trace(steer_trace, step, steer_base());
  }

  render::Camera camera(int step) const {
    float az = cfg.orbit_deg_per_step * float(step);
    if (cfg.steer.enabled) az += steer_view(step).azimuth_deg;
    return render::Camera::orbit(reader.meta().domain, cfg.width, cfg.height,
                                 az);
  }
  int epoch_of(int step) const {
    if (cfg.steer.enabled) return int(steer_view(step).epoch);
    return cfg.rebalance_every > 0 ? step / cfg.rebalance_every : 0;
  }

  std::uint64_t level_offset() const { return reader.level_offset_bytes(level); }
  std::uint64_t level_floats() const {
    return reader.level_bytes(level) / sizeof(float);
  }
};

std::vector<float> read_level_at(vmpi::Comm& comm, const Setup& st,
                                 const std::string& path, std::uint64_t first,
                                 std::uint64_t count_floats) {
  // Transient-retry accounting happens inside vmpi::File (the io.retries
  // counter increments as each retry fires), so a throw loses nothing.
  vmpi::File f(comm, path);
  f.set_retry_policy(st.cfg.io_retry);
  std::vector<float> data(count_floats);
  f.read_at(st.level_offset() + first * sizeof(float),
            {reinterpret_cast<std::uint8_t*>(data.data()),
             count_floats * sizeof(float)});
  return data;
}

// ---------------------------------------------------------------------------
// Input processors
// ---------------------------------------------------------------------------

// An input rank's private wall-time accumulators, flushed to the shared
// stats on scope exit. The destructor (rather than a plain post-loop flush)
// matters under fault injection: a RankKilled unwind must still deliver the
// completed steps' times into the report, or the averages divide by the
// wrong counts. Event counts need no such care — they go straight to the
// registry's atomic counters as they happen.
struct InputStats {
  Shared& sh;
  double fetch = 0, preprocess = 0, send = 0;

  explicit InputStats(Shared& shared) : sh(shared) {}
  ~InputStats() {
    std::lock_guard lk(sh.mu);
    sh.fetch += fetch;
    sh.preprocess += preprocess;
    sh.send += send;
  }
};

// Ship per-block quantized values to the renderers under the given
// assignment (1DIP and 2DIP-collective use the same message format).
void send_blocks(vmpi::Comm& world, Shared& sh, const Setup& st, int step,
                 const io::QuantizedField& q,
                 std::span<const std::size_t> block_ids,
                 std::span<const int> owners) {
  const PipelineConfig& cfg = sh.config;
  const int I = cfg.total_input_procs();
  std::vector<std::uint8_t> values;
  std::uint64_t raw = 0, sent = 0;
  for (std::size_t b : block_ids) {
    auto nodes = st.index.block_nodes(b);
    values.resize(nodes.size());
    for (std::size_t i = 0; i < nodes.size(); ++i) values[i] = q.values[nodes[i]];
    world.isend(I + owners[b], tag_block(step),
                make_block_msg(step, b, q.lo, q.hi, values, cfg.compress_blocks,
                               &raw, &sent));
  }
  pipe_counters().block_bytes_raw.add(raw);
  pipe_counters().block_bytes_sent.add(sent);
}

// Scalar derivation from interleaved records, with optional temporal
// enhancement from neighbor-step buffers.
std::vector<float> make_scalar(const PipelineConfig& cfg, const Setup& st,
                               std::span<const float> cur,
                               std::span<const float> prev,
                               std::span<const float> next) {
  const int comps = st.reader.meta().components;
  auto scalar = io::derive_scalar(cur, comps, cfg.variable);
  if (!cfg.enhancement) return scalar;
  std::vector<float> pm, nm;
  if (!prev.empty()) pm = io::derive_scalar(prev, comps, cfg.variable);
  if (!next.empty()) nm = io::derive_scalar(next, comps, cfg.variable);
  return io::temporal_enhance(scalar, pm, nm, cfg.enhancement_gain);
}

void input_lic(vmpi::Comm& world, const PipelineConfig& cfg, const Setup& st,
               int step, std::span<const float> interleaved,
               std::optional<lic::Quadtree>& qt) {
  auto field = lic::extract_surface_field(*st.mesh, interleaved);
  if (!qt) qt.emplace(field.positions);
  int res = cfg.lic_resolution;
  auto grid = lic::resample(field, *qt, res, res);
  auto noise = lic::make_noise(res, res, 0xABCD1234u);
  lic::LicOptions lopt;
  lopt.periodic_kernel = true;
  lopt.phase = float(step % 8) / 8.0f;
  auto gray = lic::compute_lic(grid, noise, res, res, lopt);
  int out_rank = cfg.total_input_procs() + cfg.render_procs;
  world.isend(out_rank, tag_lic(step),
              {reinterpret_cast<const std::uint8_t*>(gray.data()),
               gray.size() * sizeof(float)});
}

// Control-plane listener of an input rank. Everything an input ever
// receives funnels through here: epoch assignments, NACK resend requests,
// and the end-of-run DONE markers from the renderers. Centralizing the
// dispatch is what keeps NACK servicing deadlock-free: an input blocked
// waiting for an assignment (or for the renderers to finish) keeps
// servicing resend requests from renderers that may themselves be blocked
// waiting on it.
struct InputControl {
  vmpi::Comm& world;
  // Regenerate and resend the payload a renderer NACKed. block < 0 means
  // "your slice message" (2DIP-independent). Must not throw: a failed
  // regeneration is answered with a skip marker instead.
  std::function<void(int step, int block, int requester)> service_nack;
  std::map<int, std::vector<int>> assignments{};  // epoch -> owners
  int done_count = 0;

  void dispatch_one() {
    std::vector<std::uint8_t> buf;
    vmpi::Status st = world.recv(vmpi::kAnySource, vmpi::kAnyTag, buf);
    if (st.tag == kTagNack) {
      NackMsg nack;
      if (buf.size() != sizeof(nack))
        throw std::runtime_error("pipeline: malformed NACK message");
      std::memcpy(&nack, buf.data(), sizeof(nack));
      service_nack(nack.step, nack.block, st.source);
      // Counted as it happens, so a mid-run kill keeps whatever was
      // already serviced.
      pipe_counters().resends.add();
    } else if (st.tag == kTagDone) {
      ++done_count;
    } else if (st.tag >= 0 && st.tag % 8 == 3) {
      std::vector<int> owners(buf.size() / sizeof(int));
      std::memcpy(owners.data(), buf.data(), owners.size() * sizeof(int));
      assignments[st.tag / 8] = std::move(owners);
    } else {
      throw std::runtime_error("pipeline: unexpected input-rank message, tag=" +
                               std::to_string(st.tag));
    }
  }

  std::vector<int> await_assignment(int epoch) {
    while (!assignments.count(epoch)) dispatch_one();
    std::vector<int> owners = std::move(assignments[epoch]);
    assignments.erase(epoch);
    return owners;
  }

  // Stay on the control plane until every renderer has declared it is done;
  // exiting earlier could strand a renderer waiting for a resend forever.
  void drain_until_done(int render_procs) {
    while (done_count < render_procs) dispatch_one();
  }
};

void run_input_1dip(Shared& sh, const Setup& st, vmpi::Comm& world,
                    int input_index) {
  const PipelineConfig& cfg = sh.config;
  const int m = cfg.input_procs;
  const int I = cfg.total_input_procs();
  std::optional<lic::Quadtree> qt;
  std::vector<std::size_t> all_blocks(st.blocks.size());
  for (std::size_t b = 0; b < all_blocks.size(); ++b) all_blocks[b] = b;

  std::vector<int> owners = st.owners;
  int cur_epoch = 0;

  InputStats acc(sh);
  // Quantization range of every step this rank shipped: NACK regeneration
  // must reuse it to be bit-identical when the range was auto-derived.
  std::map<int, std::pair<float, float>> sent_range;

  auto read_step = [&](int s, std::vector<float>& cur, std::vector<float>& prev,
                       std::vector<float>& next) {
    cur = read_level_at(world, st, st.reader.step_path(s), 0,
                        st.level_floats());
    if (cfg.enhancement) {
      if (s > 0)
        prev = read_level_at(world, st, st.reader.step_path(s - 1), 0,
                             st.level_floats());
      if (s + 1 < st.reader.meta().num_steps)
        next = read_level_at(world, st, st.reader.step_path(s + 1), 0,
                             st.level_floats());
    }
  };

  InputControl ctl{world, [&](int rs, int block, int requester) {
                     auto range = sent_range.find(rs);
                     if (block < 0 || range == sent_range.end()) {
                       world.isend(requester, tag_block(rs),
                                   make_skip_block_msg(rs));
                       return;
                     }
                     try {
                       std::vector<float> cur, prev, next;
                       read_step(rs, cur, prev, next);
                       auto scalar = make_scalar(cfg, st, cur, prev, next);
                       auto q = io::quantize(scalar, range->second.first,
                                             range->second.second);
                       auto nodes = st.index.block_nodes(std::size_t(block));
                       std::vector<std::uint8_t> values(nodes.size());
                       for (std::size_t i = 0; i < nodes.size(); ++i)
                         values[i] = q.values[nodes[i]];
                       world.isend(requester, tag_block(rs),
                                   make_block_msg(rs, std::size_t(block), q.lo,
                                                  q.hi, values,
                                                  cfg.compress_blocks, nullptr,
                                                  nullptr));
                     } catch (const vmpi::IoError&) {
                       // The data is gone for good; the renderer falls back
                       // to its stale copy.
                       world.isend(requester, tag_block(rs),
                                   make_skip_block_msg(rs));
                     }
                   }};

  for (int s = input_index; s < st.num_steps; s += m) {
    world.fault_checkpoint(s);
    // Dynamic redistribution: pick up the assignment of this step's epoch
    // (the render group publishes one per epoch boundary). Rebalance epochs
    // only — steering epochs never reassign blocks.
    while (cfg.rebalance_every > 0 && st.epoch_of(s) > cur_epoch) {
      ++cur_epoch;
      owners = ctl.await_assignment(cur_epoch);
    }

    WallTimer t;
    std::vector<float> cur, prev, next;
    bool fetched = true;
    pipe_counters().input_attempted.add();
    {
      trace::Span fetch_span("pipeline", "fetch", s);
      try {
        read_step(s, cur, prev, next);
      } catch (const vmpi::IoError&) {
        fetched = false;
      }
    }
    acc.fetch += t.seconds();
    t.reset();
    if (!fetched) {
      // Permanent fetch failure after retries: one skip marker to each
      // renderer expecting data from me, so nobody blocks on data that will
      // never come; they will repeat the previous step's frame.
      std::vector<char> serves(std::size_t(cfg.render_procs), 0);
      for (int owner : owners) serves[std::size_t(owner)] = 1;
      for (int r = 0; r < cfg.render_procs; ++r)
        if (serves[std::size_t(r)])
          world.isend(I + r, tag_block(s), make_skip_block_msg(s));
      continue;
    }
    io::QuantizedField q;
    {
      trace::Span prep_span("pipeline", "preprocess", s);
      auto scalar = make_scalar(cfg, st, cur, prev, next);
      q = io::quantize(scalar, cfg.render.value_lo, cfg.render.value_hi);
      sent_range[s] = {q.lo, q.hi};
      if (cfg.lic_overlay) input_lic(world, cfg, st, s, cur, qt);
    }
    acc.preprocess += t.seconds();
    t.reset();
    {
      trace::Span send_span("pipeline", "send_blocks", s);
      send_blocks(world, sh, st, s, q, all_blocks, owners);
    }
    acc.send += t.seconds();
    pipe_counters().input_completed.add();
  }
  ctl.drain_until_done(cfg.render_procs);
}

// 2DIP group member. `group_comm` spans the m members of this group.
void run_input_2dip(Shared& sh, const Setup& st, vmpi::Comm& world,
                    vmpi::Comm& group_comm, int group) {
  const PipelineConfig& cfg = sh.config;
  const int n = cfg.groups;
  const int m = cfg.input_procs;
  const int mi = group_comm.rank();
  const int comps = st.reader.meta().components;
  const bool collective = cfg.strategy == IoStrategy::kTwoDipCollective;

  InputStats acc(sh);

  // --- static request patterns (computed once; the mesh never changes) ----
  // Collective: this member serves render procs {r : r % m == mi}; its view
  // is their merged node list.
  std::vector<std::size_t> my_blocks;
  std::vector<mesh::NodeId> my_nodes;
  vmpi::IndexedBlockView view;
  // node id -> position within my_nodes (for per-block extraction).
  std::map<mesh::NodeId, std::uint32_t> node_pos;
  // Independent: my contiguous slice and its forwarding map.
  mesh::NodeId slice_lo = 0, slice_hi = 0;
  // Per render proc: ordered value positions within my slice.
  std::vector<std::vector<std::uint32_t>> fwd_slice_pos(
      std::size_t(cfg.render_procs));

  if (collective) {
    for (std::size_t b = 0; b < st.blocks.size(); ++b) {
      if (st.owners[b] % m == mi) my_blocks.push_back(b);
    }
    my_nodes = io::merged_nodes(st.index, my_blocks);
    for (std::uint32_t i = 0; i < my_nodes.size(); ++i)
      node_pos[my_nodes[i]] = i;
    view.elem_bytes = std::size_t(comps) * sizeof(float);
    view.block_elems = 1;
    std::uint64_t base_elems = st.level_offset() / view.elem_bytes;
    for (auto nid : my_nodes) view.block_offsets.push_back(base_elems + nid);
  } else {
    auto [lo, hi] = io::slice_bounds(st.level_floats() / std::size_t(comps),
                                     mi, m);
    slice_lo = lo;
    slice_hi = hi;
    auto entries = io::build_forward_map(st.index, lo, hi);
    // entries are grouped by block ascending then block_pos; split by owner.
    for (const auto& e : entries) {
      fwd_slice_pos[std::size_t(st.owners[e.block])].push_back(e.slice_pos);
    }
  }

  const int I = cfg.total_input_procs();
  std::map<int, std::pair<float, float>> sent_range;

  // Renderers this member ships data to (collective: the blocks whose owner
  // maps onto me; independent: everyone).
  std::vector<char> serves(std::size_t(cfg.render_procs), collective ? 0 : 1);
  if (collective)
    for (std::size_t b : my_blocks) serves[std::size_t(st.owners[b])] = 1;

  auto read_slice = [&](int step_id, std::vector<float>& cur,
                        std::vector<float>& prev, std::vector<float>& next) {
    std::uint64_t first = std::uint64_t(slice_lo) * std::uint64_t(comps);
    std::uint64_t count =
        std::uint64_t(slice_hi - slice_lo) * std::uint64_t(comps);
    cur = read_level_at(world, st, st.reader.step_path(step_id), first, count);
    if (cfg.enhancement) {
      if (step_id > 0)
        prev = read_level_at(world, st, st.reader.step_path(step_id - 1),
                             first, count);
      if (step_id + 1 < st.reader.meta().num_steps)
        next = read_level_at(world, st, st.reader.step_path(step_id + 1),
                             first, count);
    }
  };

  // NACK servicing. The resend path must never enter a collective read (the
  // rest of the group is not listening), so the collective strategy
  // regenerates a single block with independent per-node reads instead.
  auto regen_block = [&](int rs, int block, int requester) {
    auto range = sent_range.find(rs);
    if (block < 0 || range == sent_range.end()) {
      world.isend(requester, tag_block(rs), make_skip_block_msg(rs));
      return;
    }
    try {
      auto nodes = st.index.block_nodes(std::size_t(block));
      auto read_nodes = [&](int step_id) {
        vmpi::File f(world, st.reader.step_path(step_id));
        f.set_retry_policy(cfg.io_retry);
        std::vector<float> data(nodes.size() * std::size_t(comps));
        for (std::size_t i = 0; i < nodes.size(); ++i) {
          f.read_at(st.level_offset() + std::uint64_t(nodes[i]) *
                                            std::uint64_t(comps) *
                                            sizeof(float),
                    {reinterpret_cast<std::uint8_t*>(data.data() +
                                                     i * std::size_t(comps)),
                     std::size_t(comps) * sizeof(float)});
        }
        return data;
      };
      auto cur = read_nodes(rs);
      std::vector<float> prev, next;
      if (cfg.enhancement) {
        if (rs > 0) prev = read_nodes(rs - 1);
        if (rs + 1 < st.reader.meta().num_steps) next = read_nodes(rs + 1);
      }
      auto scalar = make_scalar(cfg, st, cur, prev, next);
      auto q =
          io::quantize(scalar, range->second.first, range->second.second);
      world.isend(requester, tag_block(rs),
                  make_block_msg(rs, std::size_t(block), q.lo, q.hi, q.values,
                                 cfg.compress_blocks, nullptr, nullptr));
    } catch (const vmpi::IoError&) {
      world.isend(requester, tag_block(rs), make_skip_block_msg(rs));
    }
  };

  auto regen_slice = [&](int rs, int /*block*/, int requester) {
    auto range = sent_range.find(rs);
    if (range == sent_range.end()) {
      world.isend(requester, tag_block(rs), make_skip_slice_msg(rs, mi));
      return;
    }
    try {
      std::vector<float> cur, prev, next;
      read_slice(rs, cur, prev, next);
      auto scalar = make_scalar(cfg, st, cur, prev, next);
      auto q =
          io::quantize(scalar, range->second.first, range->second.second);
      const auto& positions = fwd_slice_pos[std::size_t(requester - I)];
      std::vector<std::uint8_t> values(positions.size());
      for (std::size_t i = 0; i < positions.size(); ++i)
        values[i] = q.values[positions[i]];
      world.isend(requester, tag_block(rs),
                  make_slice_msg(rs, mi, q.lo, q.hi, values,
                                 cfg.compress_blocks, nullptr, nullptr));
    } catch (const vmpi::IoError&) {
      world.isend(requester, tag_block(rs), make_skip_slice_msg(rs, mi));
    }
  };

  InputControl ctl{world, collective
                              ? std::function<void(int, int, int)>(regen_block)
                              : std::function<void(int, int, int)>(regen_slice)};

  for (int s = group; s < st.num_steps; s += n) {
    world.fault_checkpoint(s);
    WallTimer t;
    std::vector<float> cur, prev, next;
    bool fetched = true;
    pipe_counters().input_attempted.add();
    // std::optional lets the span close exactly at fetch end without
    // re-bracing the whole try/catch below (Span is neither copyable nor
    // movable by design).
    std::optional<trace::Span> fetch_span;
    if (trace::enabled()) fetch_span.emplace("pipeline", "fetch", s);
    try {
      if (collective) {
        auto read_step = [&](int step_id) {
          vmpi::File f(group_comm, st.reader.step_path(step_id));
          f.set_retry_policy(cfg.io_retry);
          f.set_view(view);
          std::vector<float> data(my_nodes.size() * std::size_t(comps));
          f.read_all({reinterpret_cast<std::uint8_t*>(data.data()),
                      data.size() * sizeof(float)});
          return data;
        };
        cur = read_step(s);
        if (cfg.enhancement) {
          if (s > 0) prev = read_step(s - 1);
          if (s + 1 < st.reader.meta().num_steps) next = read_step(s + 1);
        }
      } else {
        read_slice(s, cur, prev, next);
      }
    } catch (const vmpi::IoError&) {
      // Permanent failure. Under the collective strategy read_all aborts on
      // every group member together, so each member reaches this branch and
      // each renderer receives exactly one skip marker.
      fetched = false;
    }
    fetch_span.reset();
    acc.fetch += t.seconds();
    t.reset();
    if (!fetched) {
      for (int r = 0; r < cfg.render_procs; ++r) {
        if (!serves[std::size_t(r)]) continue;
        world.isend(I + r, tag_block(s),
                    collective ? make_skip_block_msg(s)
                               : make_skip_slice_msg(s, mi));
      }
      continue;
    }
    io::QuantizedField q;
    {
      trace::Span prep_span("pipeline", "preprocess", s);
      auto scalar = make_scalar(cfg, st, cur, prev, next);
      q = io::quantize(scalar, cfg.render.value_lo, cfg.render.value_hi);
      sent_range[s] = {q.lo, q.hi};
    }
    acc.preprocess += t.seconds();
    t.reset();

    std::uint64_t raw = 0, sent_bytes = 0;
    trace::Span send_span("pipeline", "send_blocks", s);
    if (collective) {
      // Per-block messages, values indexed through the merged node list.
      std::vector<std::uint8_t> values;
      for (std::size_t b : my_blocks) {
        auto nodes = st.index.block_nodes(b);
        values.resize(nodes.size());
        for (std::size_t i = 0; i < nodes.size(); ++i) {
          values[i] = q.values[node_pos.at(nodes[i])];
        }
        world.isend(I + st.owners[b], tag_block(s),
                    make_block_msg(s, b, q.lo, q.hi, values,
                                   cfg.compress_blocks, &raw, &sent_bytes));
      }
    } else {
      // One slice message per render proc, values in forward-map order.
      std::vector<std::uint8_t> values;
      for (int r = 0; r < cfg.render_procs; ++r) {
        const auto& positions = fwd_slice_pos[std::size_t(r)];
        values.resize(positions.size());
        for (std::size_t i = 0; i < positions.size(); ++i) {
          values[i] = q.values[positions[i]];
        }
        world.isend(I + r, tag_block(s),
                    make_slice_msg(s, mi, q.lo, q.hi, values,
                                   cfg.compress_blocks, &raw, &sent_bytes));
      }
    }
    pipe_counters().block_bytes_raw.add(raw);
    pipe_counters().block_bytes_sent.add(sent_bytes);
    acc.send += t.seconds();
    pipe_counters().input_completed.add();
  }
  ctl.drain_until_done(cfg.render_procs);
}

// ---------------------------------------------------------------------------
// Rendering processors
// ---------------------------------------------------------------------------

// Renderer-side view of the current block assignment.
struct RenderAssignment {
  std::vector<int> owners;
  std::vector<std::size_t> owned;         // my global block ids
  std::map<int, std::size_t> local_of;    // global block id -> owned index
  std::vector<render::RenderBlock> rblocks;
  std::vector<std::vector<float>> block_values;

  void rebuild(const Setup& st, int my_rank, std::vector<int> new_owners) {
    owners = std::move(new_owners);
    owned.clear();
    local_of.clear();
    rblocks.clear();
    for (std::size_t b = 0; b < st.blocks.size(); ++b) {
      if (owners[b] == my_rank) {
        local_of[int(b)] = owned.size();
        owned.push_back(b);
      }
    }
    rblocks.reserve(owned.size());
    block_values.assign(owned.size(), {});
    for (std::size_t i = 0; i < owned.size(); ++i) {
      rblocks.emplace_back(*st.mesh, st.blocks[owned[i]],
                           st.index.block_nodes(owned[i]));
      block_values[i].resize(st.index.block_nodes(owned[i]).size());
    }
  }
};

void run_render(Shared& sh, const Setup& st, vmpi::Comm& world,
                vmpi::Comm& render_comm) {
  const PipelineConfig& cfg = sh.config;
  const int rr = render_comm.rank();
  const int out_rank = cfg.total_input_procs() + cfg.render_procs;
  const bool independent = cfg.strategy == IoStrategy::kTwoDipIndependent;
  const bool orbiting = cfg.orbit_deg_per_step != 0.0f;

  RenderAssignment assign;
  assign.rebuild(st, rr, st.owners);

  // View-dependent preprocessing (§4): global visibility ranks, recomputed
  // whenever the viewpoint moves.
  render::Camera camera = st.camera(0);
  std::vector<std::uint32_t> rank_of(st.blocks.size());
  auto recompute_order = [&]() {
    auto order = render::visibility_order(st.blocks, st.mesh->domain(),
                                          camera.eye());
    for (std::size_t i = 0; i < order.size(); ++i)
      rank_of[order[i]] = std::uint32_t(i);
  };
  recompute_order();

  // Independent-contiguous reads: precompute, per group member, the scatter
  // list of (owned block, position) matching the member's value order.
  const int m = cfg.input_procs;
  struct Scatter {
    std::size_t local_block;
    std::uint32_t pos;
  };
  std::vector<std::vector<Scatter>> member_scatter;
  if (independent) {
    const int comps = st.reader.meta().components;
    member_scatter.resize(std::size_t(m));
    for (int mi = 0; mi < m; ++mi) {
      auto [lo, hi] = io::slice_bounds(st.level_floats() / std::size_t(comps),
                                       mi, m);
      auto entries = io::build_forward_map(st.index, lo, hi);
      for (const auto& e : entries) {
        if (st.owners[e.block] != rr) continue;
        member_scatter[std::size_t(mi)].push_back(
            {assign.local_of.at(int(e.block)), e.block_pos});
      }
    }
  }

  render::Raycaster rc(st.tf, cfg.render, st.mesh->domain().extent().x);
  // Steering: the transfer-function window lives in the Raycaster, so a
  // folded edit rebuilds it (camera/order are refreshed by the same path).
  const bool steering = cfg.steer.enabled;
  std::uint32_t steer_epoch = 0;
  auto apply_steer = [&](int s) {
    const stream::SteeringState v = st.steer_view(s);
    render::RenderOptions opt = cfg.render;
    opt.value_lo = v.value_lo;
    opt.value_hi = v.value_hi;
    rc = render::Raycaster(st.tf, opt, st.mesh->domain().extent().x);
    camera = st.camera(s);
    recompute_order();
    steer_epoch = v.epoch;
  };

  // Intra-rank render pool: cfg.render_threads workers (including this
  // rank's own thread) share each step's (block x tile) task list. With 1
  // thread no workers are spawned and rendering runs inline.
  util::ThreadPool render_pool(
      std::max(1, cfg.render_threads), [rr](int w) {
        if (!trace::enabled()) return;
        char tname[32];
        std::snprintf(tname, sizeof(tname), "render %d.w%d", rr, w);
        trace::set_thread(1000 + rr * 64 + w, tname);
      });

  double render_time = 0, composite_time = 0;
  const auto timeout = std::chrono::milliseconds(
      cfg.recv_timeout_ms > 0 ? cfg.recv_timeout_ms : 0);
  // Measured per-block costs of the current epoch (dynamic redistribution).
  std::map<int, double> epoch_costs;

  for (int s = 0; s < st.num_steps; ++s) {
    // --- receive this step's data (later steps keep arriving in the
    //     background into the mailbox — that's the §4 overlap) -------------
    // A message can be a skip marker ("this step's data is not coming"), a
    // timeout can fire (a dead input), and a payload can fail its CRC (then
    // NACK the sender for a bit-identical regeneration). Whatever cannot be
    // recovered leaves the previous step's values in place — frame repeat —
    // and marks the step degraded.
    bool degraded = false;
    int nacks_left = kMaxNacksPerStep;
    auto recv_step_msg = [&](std::vector<std::uint8_t>& msg,
                             vmpi::Status& rst) {
      // The wait_blocks span brackets only the blocking receive, not the
      // unpack work around it: the trace analysis treats its total as the
      // renderer's input-starvation stall.
      trace::Span wait_span("pipeline", "wait_blocks", s);
      if (cfg.recv_timeout_ms > 0)
        return world.recv_timeout(vmpi::kAnySource, tag_block(s), msg, timeout,
                                  &rst);
      rst = world.recv(vmpi::kAnySource, tag_block(s), msg);
      return true;
    };
    if (independent) {
      std::vector<std::uint8_t> scratch, msg;
      int remaining = m;
      while (remaining > 0) {
        vmpi::Status rst;
        if (!recv_step_msg(msg, rst)) {
          degraded = true;  // a member died; render what we have
          break;
        }
        SliceMsgHeader hdr;
        if (msg.size() < sizeof(hdr))
          throw std::runtime_error("pipeline: truncated slice message");
        std::memcpy(&hdr, msg.data(), sizeof(hdr));
        if (hdr.flags & kFlagStepSkipped) {
          // Only this member's share is stale; the others still count.
          degraded = true;
          --remaining;
          continue;
        }
        if (!payload_ok(hdr, msg)) {
          pipe_counters().crc_failures.add();
          if (nacks_left-- > 0) {
            NackMsg nack{s, -1};
            world.isend(rst.source, kTagNack,
                        {reinterpret_cast<const std::uint8_t*>(&nack),
                         sizeof(nack)});
          } else {
            degraded = true;
            --remaining;
          }
          continue;
        }
        const auto& scatter = member_scatter[std::size_t(hdr.member)];
        if (scatter.size() != hdr.count)
          throw std::runtime_error("pipeline: slice message size mismatch");
        unpack_values(hdr, msg, scratch, [&](std::size_t i, float v) {
          assign.block_values[scatter[i].local_block][scatter[i].pos] = v;
        });
        --remaining;
      }
    } else {
      std::vector<std::uint8_t> scratch, msg;
      std::size_t remaining = assign.owned.size();
      while (remaining > 0) {
        vmpi::Status rst;
        if (!recv_step_msg(msg, rst)) {
          degraded = true;
          break;
        }
        BlockMsgHeader hdr;
        if (msg.size() < sizeof(hdr))
          throw std::runtime_error("pipeline: truncated block message");
        std::memcpy(&hdr, msg.data(), sizeof(hdr));
        if (hdr.flags & kFlagStepSkipped) {
          // All my blocks for this step come from the one sender that just
          // gave up, so nothing further is in flight.
          degraded = true;
          break;
        }
        if (!payload_ok(hdr, msg)) {
          pipe_counters().crc_failures.add();
          if (nacks_left-- > 0) {
            NackMsg nack{s, hdr.block};
            world.isend(rst.source, kTagNack,
                        {reinterpret_cast<const std::uint8_t*>(&nack),
                         sizeof(nack)});
          } else {
            degraded = true;
            --remaining;  // give up on this block; keep its stale values
          }
          continue;
        }
        std::size_t li = assign.local_of.at(hdr.block);
        if (assign.block_values[li].size() != hdr.count)
          throw std::runtime_error("pipeline: block message size mismatch");
        auto& dst = assign.block_values[li];
        unpack_values(hdr, msg, scratch,
                      [&](std::size_t i, float v) { dst[i] = v; });
        --remaining;
      }
    }

    // The whole group must agree on the degraded flag — the output
    // processor needs one consistent answer per frame.
    const bool step_degraded =
        render_comm.allreduce_max(degraded ? 1.0 : 0.0) > 0.0;
    if (rr == 0 && step_degraded) pipe_counters().dropped_steps.add();

    // --- local rendering ----------------------------------------------------
    if (orbiting && s > 0) {
      camera = st.camera(s);
      recompute_order();
    }
    // Steering edits fold in at the step boundary: the first step rendered
    // at a new epoch picks up the edited camera and TF window everywhere.
    if (steering && std::uint32_t(st.epoch_of(s)) != steer_epoch)
      apply_steer(s);
    WallTimer t;
    std::vector<render::PartialImage> partials;
    {
      trace::Span render_span("pipeline", "render", s);
      std::vector<std::uint32_t> orders(assign.owned.size());
      // Per-block cost for the rebalancer: value install (macro ranges
      // included) plus the summed wall time of the block's render tasks.
      std::vector<double> block_secs(assign.owned.size(), 0.0);
      for (std::size_t i = 0; i < assign.owned.size(); ++i) {
        WallTimer bt;
        assign.rblocks[i].set_values(assign.block_values[i]);
        orders[i] = rank_of[assign.owned[i]];
        block_secs[i] = bt.seconds();
      }
      partials = render::render_blocks(camera, rc, assign.rblocks, orders,
                                       &render_pool, render::kRenderTile,
                                       nullptr, block_secs.data());
      for (std::size_t i = 0; i < assign.owned.size(); ++i)
        epoch_costs[int(assign.owned[i])] += block_secs[i];
    }
    const double render_s = t.seconds();
    render_time += render_s;
    if (obs::lineage::enabled()) {
      obs::lineage::record_wall(obs::lineage::Stage::kRender, s,
                                std::uint32_t(st.epoch_of(s)),
                                obs::lineage::ChannelKind::kRank, world.rank(),
                                render_s);
    }
    t.reset();

    // --- parallel compositing ----------------------------------------------
    compositing::CompositeResult comp;
    {
      trace::Span composite_span("pipeline", "composite", s);
      if (cfg.compositor == Compositor::kSlic) {
        comp = compositing::slic(render_comm, partials, cfg.width, cfg.height,
                                 cfg.compress_compositing, 0);
      } else if (cfg.compositor == Compositor::kBinarySwap) {
        comp = compositing::binary_swap(render_comm, partials, cfg.width,
                                        cfg.height, cfg.compress_compositing,
                                        0);
      } else if (cfg.compositor == Compositor::kRadixK) {
        comp = compositing::radix_k(render_comm, partials, cfg.width,
                                    cfg.height, cfg.composite_k,
                                    cfg.compress_compositing, 0);
      } else {
        comp = compositing::direct_send(render_comm, partials, cfg.width,
                                        cfg.height, cfg.compress_compositing,
                                        0);
      }
    }
    const double composite_s = t.seconds();
    composite_time += composite_s;
    if (obs::lineage::enabled()) {
      obs::lineage::record_wall(obs::lineage::Stage::kComposite, s,
                                std::uint32_t(st.epoch_of(s)),
                                obs::lineage::ChannelKind::kRank, world.rank(),
                                composite_s);
    }

    // --- image delivery ----------------------------------------------------
    if (rr == 0) {
      world.isend(out_rank, tag_frame(s),
                  make_frame_msg(s, step_degraded, comp.image.pixels()));
    }

    // --- fine-grain dynamic load redistribution (§7) -----------------------
    if (cfg.rebalance_every > 0 && s + 1 < st.num_steps &&
        st.epoch_of(s + 1) > st.epoch_of(s)) {
      int next_epoch = st.epoch_of(s + 1);
      // Gather (block, cost) pairs at the render root.
      std::vector<std::uint8_t> packed;
      for (const auto& [block, cost] : epoch_costs) {
        double rec[2] = {double(block), cost};
        const auto* p = reinterpret_cast<const std::uint8_t*>(rec);
        packed.insert(packed.end(), p, p + sizeof(rec));
      }
      auto gathered = render_comm.gather(packed, 0);
      std::vector<int> new_owners;
      if (rr == 0) {
        // Reassign blocks largest-first on the MEASURED costs.
        std::vector<octree::Block> costed = st.blocks;
        for (const auto& blob : gathered) {
          for (std::size_t off = 0; off + 16 <= blob.size(); off += 16) {
            double rec[2];
            std::memcpy(rec, blob.data() + off, sizeof(rec));
            costed[std::size_t(rec[0])].workload = rec[1];
          }
        }
        new_owners = octree::assign_blocks(costed, cfg.render_procs,
                                           octree::AssignStrategy::kLargestFirst);
        // Record the imbalance the old assignment showed this epoch.
        std::vector<double> old_load(std::size_t(cfg.render_procs), 0.0);
        std::vector<double> new_load(std::size_t(cfg.render_procs), 0.0);
        for (std::size_t b = 0; b < costed.size(); ++b) {
          old_load[std::size_t(assign.owners[b])] += costed[b].workload;
          new_load[std::size_t(new_owners[b])] += costed[b].workload;
        }
        double old_imb = load_imbalance(old_load);
        double new_imb = load_imbalance(new_load);
        // Measured costs are noisy; adopting a plan that scores worse than
        // the assignment already running would oscillate. Keep the old one.
        if (new_imb > old_imb) {
          new_owners = assign.owners;
          new_imb = old_imb;
        }
        {
          std::lock_guard lk(sh.mu);
          sh.report.epoch_imbalance.push_back(old_imb);
          sh.report.epoch_imbalance_replanned.push_back(new_imb);
        }
        // Publish to the other renderers and to every input processor.
        std::vector<std::uint8_t> wire(new_owners.size() * sizeof(int));
        std::memcpy(wire.data(), new_owners.data(), wire.size());
        render_comm.bcast(wire, 0);
        for (int ip = 0; ip < cfg.total_input_procs(); ++ip) {
          world.isend(ip, tag_assign(next_epoch),
                      {reinterpret_cast<const std::uint8_t*>(new_owners.data()),
                       new_owners.size() * sizeof(int)});
        }
      } else {
        std::vector<std::uint8_t> wire;
        render_comm.bcast(wire, 0);
        new_owners.resize(wire.size() / sizeof(int));
        std::memcpy(new_owners.data(), wire.data(), wire.size());
      }
      assign.rebuild(st, rr, std::move(new_owners));
      epoch_costs.clear();
    }
  }
  // Release the inputs' control loops: this renderer will NACK no more.
  for (int ip = 0; ip < cfg.total_input_procs(); ++ip)
    world.isend(ip, kTagDone, {});
  pipe_counters().render_steps.add(std::uint64_t(st.num_steps));
  std::lock_guard lk(sh.mu);
  sh.render += render_time;
  sh.composite += composite_time;
}

// ---------------------------------------------------------------------------
// Output processor
// ---------------------------------------------------------------------------

void run_output(Shared& sh, const Setup& st, vmpi::Comm& world) {
  const PipelineConfig& cfg = sh.config;
  WallTimer clock;
  std::vector<double> frame_seconds;
  std::vector<int> degraded_steps;
  std::vector<float> last_gray;  // LIC texture frame-repeat buffer
  std::optional<stream::StreamSession> session;
  if (cfg.stream.enabled)
    session.emplace(cfg.stream, cfg.width, cfg.height);
  std::optional<stream::DeliveryServer> server;
  if (cfg.serve.enabled && cfg.serve.count > 0) {
    stream::ServerConfig scfg = cfg.serve.server;
    if (cfg.serve.cache_bytes > 0) {
      scfg.cache = std::make_shared<stream::FrameCache>(
          stream::CacheConfig{cfg.serve.cache_bytes});
      // The cache trust contract (stream/cache.hpp): the identity must
      // cover every run-scoped input that affects the rendered pixels.
      // render_threads is deliberately absent — intra-rank parallelism is
      // bit-exact by construction (test_render_determinism pins it).
      scfg.identity.dataset_id = cfg.dataset_dir;
      scfg.identity.camera_hash = stream::hash64(
          std::to_string(cfg.width) + "x" + std::to_string(cfg.height) +
          ":level=" + std::to_string(cfg.adaptive_level) +
          ":orbit=" + std::to_string(cfg.orbit_deg_per_step) +
          ":var=" + std::to_string(int(cfg.variable)) +
          ":enh=" + std::to_string(cfg.enhancement ? cfg.enhancement_gain
                                                   : 0.0f) +
          ":lic=" + std::to_string(cfg.lic_overlay ? cfg.lic_resolution : 0));
      scfg.identity.tf_hash = stream::hash64(
          cfg.tf_file + ":cm=" + std::to_string(int(cfg.colormap)) +
          ":lo=" + std::to_string(cfg.render.value_lo) +
          ":hi=" + std::to_string(cfg.render.value_hi) +
          ":light=" + std::to_string(cfg.render.lighting ? 1 : 0) +
          ":step=" + std::to_string(cfg.render.step_scale) +
          ":ref=" + std::to_string(cfg.render.ref_length));
    }
    server.emplace(scfg, cfg.width, cfg.height);
    for (const auto& lc : stream::make_fleet(cfg.serve)) server->join(0.0, lc);
  }
  int last_epoch = 0;  // encoders start at epoch 0; bump on rebalance
  for (int s = 0; s < st.num_steps; ++s) {
    std::vector<std::uint8_t> msg;
    {
      trace::Span wait_span("pipeline", "wait_frame", s);
      world.recv(vmpi::kAnySource, tag_frame(s), msg);
    }
    trace::Span frame_span("pipeline", "frame", s);
    const std::int64_t frame_t0 =
        obs::lineage::enabled() ? trace::now_since_epoch_ns() : 0;
    const std::uint32_t epoch = std::uint32_t(st.epoch_of(s));
    if (int(epoch) != last_epoch) {
      // (step, epoch) is the end-to-end frame id; the encoders stamp it
      // into every wire header from here on.
      if (cfg.steer.enabled) {
        // A steering epoch means the view changed: invalidate every delta
        // chain too, so no delta crosses the edit (first post-edit frame
        // each client sees is a keyframe) — and leave per-client controller
        // state alone (an edit is not a network event).
        if (session) session->apply_view_change(epoch);
        if (server) server->apply_view_change(epoch);
        if (obs::lineage::enabled()) {
          // epoch == the newest applied request id: this event records
          // request_id -> first-serving-step for the flight recorder.
          obs::lineage::record_wall(obs::lineage::Stage::kSteerApply, s,
                                    epoch, obs::lineage::ChannelKind::kRank,
                                    world.rank());
        }
      } else {
        if (session) session->set_epoch(epoch);
        if (server) server->set_epoch(epoch);
      }
      last_epoch = int(epoch);
    }
    img::Image frame(cfg.width, cfg.height);
    auto view = parse_frame_msg(msg, frame.pixels().size());
    if (!view) throw std::runtime_error("pipeline: bad frame message");
    std::memcpy(frame.pixels().data(), view->pixels.data(),
                view->pixels.size_bytes());
    const bool degraded = view->degraded;
    if (degraded) degraded_steps.push_back(s);

    if (cfg.lic_overlay) {
      // A degraded step's input may never have produced a LIC texture —
      // repeat the previous one, the same policy as the volume data.
      if (!degraded) {
        std::vector<std::uint8_t> lmsg;
        world.recv(vmpi::kAnySource, tag_lic(s), lmsg);
        last_gray.resize(lmsg.size() / sizeof(float));
        std::memcpy(last_gray.data(), lmsg.data(), lmsg.size());
      }
      if (!last_gray.empty()) {
        img::Image ground = render_ground_overlay(
            st.camera(s), st.mesh->domain(), last_gray, cfg.lic_resolution,
            cfg.lic_resolution);
        ground.composite_over(frame);  // volume image in front of LIC plane
        frame = std::move(ground);
      }
    }
    frame_seconds.push_back(clock.seconds());

    if (!cfg.output_dir.empty() || session || server) {
      // One tone-mapping for every sink: the streamed frame is bit-identical
      // to the PPM the output processor writes (the delivery determinism
      // tests pin this with SHA-256).
      img::Image8 out8 = img::to_8bit(frame, {0.02f, 0.02f, 0.05f});
      if (!cfg.output_dir.empty()) {
        char name[64];
        std::snprintf(name, sizeof(name), "/frame_%04d.ppm", s);
        img::write_ppm(cfg.output_dir + name, out8);
      }
      if (session) session->submit(clock.seconds(), s, out8);
      if (server) server->submit(clock.seconds(), s, out8);
    }
    if (obs::lineage::enabled()) {
      obs::lineage::record_wall(
          obs::lineage::Stage::kFrame, s, epoch,
          obs::lineage::ChannelKind::kRank, world.rank(),
          double(trace::now_since_epoch_ns() - frame_t0) * 1e-9);
    }
    if (sh.frames_out) sh.frames_out->push_back(std::move(frame));
  }
  pipe_counters().degraded_frames.add(degraded_steps.size());
  std::lock_guard lk(sh.mu);
  sh.report.frame_seconds = std::move(frame_seconds);
  sh.report.degraded_steps = std::move(degraded_steps);
  if (session) sh.report.stream = session->finish();
  if (server) sh.report.server = server->finish();
}

}  // namespace

PipelineReport run_pipeline(const PipelineConfig& config_in,
                            std::vector<img::Image>* frames_out) {
  // Local copy: validation below may reroute the compositor choice.
  PipelineConfig config = config_in;
  if (config.compositor == Compositor::kBinarySwap &&
      (config.render_procs & (config.render_procs - 1)) != 0) {
    // binary_swap() itself aborts on a non-power-of-two communicator; route
    // to radix-k with k=2 — the same swap structure generalized to any
    // count, bit-identical output, no degradation to direct-send.
    config.compositor = Compositor::kRadixK;
    config.composite_k = 2;
  }
  if (config.compositor == Compositor::kRadixK && config.composite_k < 2)
    throw std::runtime_error("pipeline: composite_k must be >= 2");
  if (config.lic_overlay && config.strategy != IoStrategy::kOneDip)
    throw std::runtime_error(
        "pipeline: the LIC overlay path requires the 1DIP strategy (as in "
        "the paper's Figure 12 configuration)");
  if (config.rebalance_every > 0 && config.strategy != IoStrategy::kOneDip)
    throw std::runtime_error(
        "pipeline: dynamic load redistribution requires the 1DIP strategy");
  if (config.render_procs < 1 || config.input_procs < 1 || config.groups < 1)
    throw std::runtime_error("pipeline: bad processor counts");
  if (config.steer.enabled) {
    if (config.rebalance_every > 0)
      throw std::runtime_error(
          "pipeline: steering and dynamic load redistribution both own the "
          "view-epoch field; enable one or the other");
    if (config.serve.cache_bytes > 0)
      throw std::runtime_error(
          "pipeline: steering edits change pixels outside the frame-cache "
          "identity (camera/TF move mid-run); disable --cache-bytes");
  }
  if (config.fault_plan && config.fault_plan->kill_rank >= 0) {
    // A rank death is only survivable when the victim's peers never enter a
    // collective with it — exactly the 1DIP input side (mirroring what a
    // real MPI job could tolerate with a fault-aware transport).
    if (config.strategy != IoStrategy::kOneDip)
      throw std::runtime_error(
          "pipeline: rank-kill faults are survivable only under 1DIP (a 2DIP "
          "group would deadlock in its collective read)");
    if (config.fault_plan->kill_rank >= config.total_input_procs())
      throw std::runtime_error(
          "pipeline: only input ranks can be killed; renderers and the "
          "output processor join collectives every step");
    if (config.recv_timeout_ms <= 0)
      throw std::runtime_error(
          "pipeline: a kill fault requires recv_timeout_ms > 0 — a dead "
          "input is only detectable by the absence of its traffic");
  }

  Shared sh{config, frames_out};

  // Surface the post-validation algorithm choice: tests and qv-run-report
  // assert on what actually ran, not on what was requested.
  switch (config.compositor) {
    case Compositor::kSlic:
      sh.report.compositor = "slic";
      metrics::counter("compositing.algo.slic").add(1);
      break;
    case Compositor::kDirectSend:
      sh.report.compositor = "direct-send";
      metrics::counter("compositing.algo.direct_send").add(1);
      break;
    case Compositor::kBinarySwap:
      sh.report.compositor = "binary-swap";
      metrics::counter("compositing.algo.binary_swap").add(1);
      break;
    case Compositor::kRadixK:
      sh.report.compositor =
          "radix-k(k=" + std::to_string(config.composite_k) + ")";
      metrics::counter("compositing.algo.radix_k").add(1);
      break;
  }

  // Baseline values of the registry counters this report is built from;
  // everything below runs single-threaded before/after the rank threads.
  PipeCounters& pc = pipe_counters();
  const std::uint64_t base_raw = pc.block_bytes_raw.value();
  const std::uint64_t base_sent = pc.block_bytes_sent.value();
  const std::uint64_t base_attempted = pc.input_attempted.value();
  const std::uint64_t base_completed = pc.input_completed.value();
  const std::uint64_t base_render_steps = pc.render_steps.value();
  const std::uint64_t base_crc = pc.crc_failures.value();
  const std::uint64_t base_resends = pc.resends.value();
  const std::uint64_t base_dropped = pc.dropped_steps.value();
  const std::uint64_t base_degraded = pc.degraded_frames.value();
  const std::uint64_t base_retries = pc.io_retries.value();
  const std::uint64_t base_composite_bytes = pc.composite_bytes.value();

  vmpi::Runtime::run(config.world_size(), [&sh, &config](vmpi::Comm& world) {
    Setup st(config);
    const int I = config.total_input_procs();
    const int R = config.render_procs;
    const int r = world.rank();
    const int role = r < I ? 0 : (r < I + R ? 1 : 2);

    if (trace::enabled()) {
      // Replace the runtime's generic "rank N" label with the pipeline role
      // so traces read as input/render/output lanes.
      char tname[32];
      if (role == 0)
        std::snprintf(tname, sizeof(tname), "input %d", r);
      else if (role == 1)
        std::snprintf(tname, sizeof(tname), "render %d", r - I);
      else
        std::snprintf(tname, sizeof(tname), "output");
      trace::set_thread(r, tname);
    }

    vmpi::Comm sub = world.split(role, r);
    std::optional<vmpi::Comm> group_comm;
    if (role == 0 && config.strategy != IoStrategy::kOneDip) {
      int group = r / config.input_procs;
      group_comm.emplace(sub.split(group, r % config.input_procs));
    }
    world.barrier();  // synchronized start: frame clocks begin here

    switch (role) {
      case 0:
        if (config.strategy == IoStrategy::kOneDip) {
          run_input_1dip(sh, st, world, r);
        } else {
          run_input_2dip(sh, st, world, *group_comm, r / config.input_procs);
        }
        break;
      case 1:
        run_render(sh, st, world, sub);
        break;
      default:
        run_output(sh, st, world);
        break;
    }
  }, config.fault_plan);

  PipelineReport& rep = sh.report;
  const int render_steps_total = int(pc.render_steps.value() - base_render_steps);
  rep.steps =
      render_steps_total > 0 ? render_steps_total / config.render_procs : 0;
  rep.input_steps_attempted = int(pc.input_attempted.value() - base_attempted);
  rep.input_steps_completed = int(pc.input_completed.value() - base_completed);
  // Fetch runs on every *attempted* step; preprocess and send only on steps
  // that completed. Dividing all three by the same count used to deflate the
  // per-step averages of degraded runs (dropped steps padded the
  // denominator with stages that never executed).
  int fetch_steps = std::max(rep.input_steps_attempted, 1);
  int done_steps = std::max(rep.input_steps_completed, 1);
  int rn_steps = std::max(rep.steps, 1);
  rep.avg_fetch = sh.fetch / fetch_steps;
  rep.avg_preprocess = sh.preprocess / done_steps;
  rep.avg_send = sh.send / done_steps;
  rep.avg_render = sh.render / (rn_steps * config.render_procs);
  rep.avg_composite = sh.composite / (rn_steps * config.render_procs);
  rep.composite_bytes = pc.composite_bytes.value() - base_composite_bytes;
  rep.block_bytes_raw = pc.block_bytes_raw.value() - base_raw;
  rep.block_bytes_sent = pc.block_bytes_sent.value() - base_sent;
  rep.retries = pc.io_retries.value() - base_retries;
  rep.corrupt_blocks_detected = pc.crc_failures.value() - base_crc;
  rep.resend_requests = pc.resends.value() - base_resends;
  rep.dropped_steps = int(pc.dropped_steps.value() - base_dropped);
  rep.degraded_frames = int(pc.degraded_frames.value() - base_degraded);
  rep.avg_interframe = steady_interframe(rep.frame_seconds);
  return rep;
}

}  // namespace qv::core
