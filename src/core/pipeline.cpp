#include "core/pipeline.hpp"

#include <cstring>
#include <map>
#include <mutex>
#include <optional>
#include <stdexcept>

#include "compositing/direct_send.hpp"
#include "compositing/slic.hpp"
#include "core/ground_overlay.hpp"
#include "img/image.hpp"
#include "io/block_index.hpp"
#include "io/codec.hpp"
#include "io/dataset.hpp"
#include "io/preprocess.hpp"
#include "lic/lic.hpp"
#include "render/order.hpp"
#include "render/raycast.hpp"
#include "util/stats.hpp"
#include "vmpi/comm.hpp"
#include "vmpi/file.hpp"

namespace qv::core {

namespace {

// Per-step message tags: step * 8 + kind keeps the spaces disjoint.
// (Epoch-indexed assignment messages reuse the same scheme with kind 3.)
int tag_block(int step) { return step * 8 + 0; }
int tag_frame(int step) { return step * 8 + 1; }
int tag_lic(int step) { return step * 8 + 2; }
int tag_assign(int epoch) { return epoch * 8 + 3; }

struct BlockMsgHeader {
  std::int32_t step;
  std::int32_t block;
  float lo, hi;          // quantization range
  std::uint32_t count;   // quantized value count
  std::uint32_t payload; // bytes that follow (== count when uncompressed)
  std::uint8_t compressed;
  std::uint8_t pad[3];
};

struct SliceMsgHeader {
  std::int32_t step;
  std::int32_t member;
  float lo, hi;
  std::uint32_t count;
  std::uint32_t payload;
  std::uint8_t compressed;
  std::uint8_t pad[3];
};

// Append `values` to `msg` after its header, RLE-compressed when that wins
// and `allow` is set. Fills payload/compressed in the header at `hdr_pos`.
template <typename Header>
void pack_values(std::vector<std::uint8_t>& msg, std::size_t hdr_pos,
                 std::span<const std::uint8_t> values, bool allow,
                 std::uint64_t* raw_bytes, std::uint64_t* sent_bytes) {
  std::size_t payload_pos = msg.size();
  bool compressed = false;
  if (allow) {
    io::rle8_encode(values, msg);
    if (msg.size() - payload_pos < values.size()) {
      compressed = true;
    } else {
      msg.resize(payload_pos);  // compression did not pay off
    }
  }
  if (!compressed) {
    msg.insert(msg.end(), values.begin(), values.end());
  }
  Header hdr;
  std::memcpy(&hdr, msg.data() + hdr_pos, sizeof(hdr));
  hdr.payload = std::uint32_t(msg.size() - payload_pos);
  hdr.compressed = compressed ? 1 : 0;
  std::memcpy(msg.data() + hdr_pos, &hdr, sizeof(hdr));
  if (raw_bytes) *raw_bytes += values.size();
  if (sent_bytes) *sent_bytes += msg.size() - payload_pos;
}

// Dequantize a header's payload into `dst` through `scatter(i, value)`.
template <typename Header, typename Fn>
void unpack_values(const Header& hdr, std::span<const std::uint8_t> msg,
                   std::vector<std::uint8_t>& scratch, Fn&& store) {
  std::span<const std::uint8_t> values;
  if (hdr.compressed) {
    scratch.resize(hdr.count);
    if (io::rle8_decode(msg, sizeof(Header), scratch) == 0 && hdr.count > 0)
      throw std::runtime_error("pipeline: corrupt compressed block payload");
    values = scratch;
  } else {
    values = msg.subspan(sizeof(Header), hdr.count);
  }
  const float scale = (hdr.hi - hdr.lo) / 255.0f;
  for (std::size_t i = 0; i < values.size(); ++i) {
    store(i, hdr.lo + scale * float(values[i]));
  }
}

// Stats shared across the rank threads (joined before run_pipeline returns).
struct Shared {
  const PipelineConfig& config;
  std::vector<img::Image>* frames_out;
  PipelineReport report;
  std::mutex mu;
  double fetch = 0, preprocess = 0, send = 0;
  double render = 0, composite = 0;
  std::uint64_t composite_bytes = 0;
  std::uint64_t block_bytes_raw = 0, block_bytes_sent = 0;
  int input_steps = 0, render_steps = 0;
};

// Deterministic per-rank setup computed from the dataset alone — the
// "one-time preprocessing" every processor can reproduce because the mesh
// is static.
struct Setup {
  const PipelineConfig& cfg;
  io::DatasetReader reader;
  int level;
  const mesh::HexMesh* mesh;
  std::vector<octree::Block> blocks;
  std::vector<int> owners;  // initial block -> render proc assignment
  io::BlockNodeIndex index;
  render::TransferFunction tf;
  int num_steps;

  explicit Setup(const PipelineConfig& config)
      : cfg(config),
        reader(config.dataset_dir),
        level(config.adaptive_level < 0 ? reader.meta().finest_level
                                        : config.adaptive_level),
        mesh(&reader.level_mesh(level)),
        tf(!config.tf_file.empty()
               ? render::TransferFunction::from_file(config.tf_file)
               : (config.colormap == Colormap::kSeismic
                      ? render::TransferFunction::seismic()
                      : render::TransferFunction::grayscale())) {
    blocks = octree::decompose(mesh->octree(), cfg.block_level);
    octree::estimate_workloads(mesh->octree(), blocks,
                               octree::WorkloadModel::kCellCount);
    owners = octree::assign_blocks(blocks, cfg.render_procs, cfg.assign);
    index = io::BlockNodeIndex(*mesh, blocks);
    num_steps = cfg.num_steps < 0
                    ? reader.meta().num_steps
                    : std::min(cfg.num_steps, reader.meta().num_steps);
  }

  render::Camera camera(int step) const {
    return render::Camera::orbit(reader.meta().domain, cfg.width, cfg.height,
                                 cfg.orbit_deg_per_step * float(step));
  }
  int epoch_of(int step) const {
    return cfg.rebalance_every > 0 ? step / cfg.rebalance_every : 0;
  }

  std::uint64_t level_offset() const { return reader.level_offset_bytes(level); }
  std::uint64_t level_floats() const {
    return reader.level_bytes(level) / sizeof(float);
  }
};

std::vector<float> read_level_at(vmpi::Comm& comm, const Setup& st,
                                 const std::string& path, std::uint64_t first,
                                 std::uint64_t count_floats) {
  vmpi::File f(comm, path);
  std::vector<float> data(count_floats);
  f.read_at(st.level_offset() + first * sizeof(float),
            {reinterpret_cast<std::uint8_t*>(data.data()),
             count_floats * sizeof(float)});
  return data;
}

// ---------------------------------------------------------------------------
// Input processors
// ---------------------------------------------------------------------------

// Ship per-block quantized values to the renderers under the given
// assignment (1DIP and 2DIP-collective use the same message format).
void send_blocks(vmpi::Comm& world, Shared& sh, const Setup& st, int step,
                 const io::QuantizedField& q,
                 std::span<const std::size_t> block_ids,
                 std::span<const int> owners) {
  const PipelineConfig& cfg = sh.config;
  const int I = cfg.total_input_procs();
  std::vector<std::uint8_t> msg, values;
  std::uint64_t raw = 0, sent = 0;
  for (std::size_t b : block_ids) {
    auto nodes = st.index.block_nodes(b);
    msg.resize(sizeof(BlockMsgHeader));
    BlockMsgHeader hdr{step,
                       std::int32_t(b),
                       q.lo,
                       q.hi,
                       std::uint32_t(nodes.size()),
                       0,
                       0,
                       {}};
    std::memcpy(msg.data(), &hdr, sizeof(hdr));
    values.resize(nodes.size());
    for (std::size_t i = 0; i < nodes.size(); ++i) values[i] = q.values[nodes[i]];
    pack_values<BlockMsgHeader>(msg, 0, values, cfg.compress_blocks, &raw,
                                &sent);
    world.isend(I + owners[b], tag_block(step), msg);
  }
  std::lock_guard lk(sh.mu);
  sh.block_bytes_raw += raw;
  sh.block_bytes_sent += sent;
}

// Scalar derivation from interleaved records, with optional temporal
// enhancement from neighbor-step buffers.
std::vector<float> make_scalar(const PipelineConfig& cfg, const Setup& st,
                               std::span<const float> cur,
                               std::span<const float> prev,
                               std::span<const float> next) {
  const int comps = st.reader.meta().components;
  auto scalar = io::derive_scalar(cur, comps, cfg.variable);
  if (!cfg.enhancement) return scalar;
  std::vector<float> pm, nm;
  if (!prev.empty()) pm = io::derive_scalar(prev, comps, cfg.variable);
  if (!next.empty()) nm = io::derive_scalar(next, comps, cfg.variable);
  return io::temporal_enhance(scalar, pm, nm, cfg.enhancement_gain);
}

void input_lic(vmpi::Comm& world, const PipelineConfig& cfg, const Setup& st,
               int step, std::span<const float> interleaved,
               std::optional<lic::Quadtree>& qt) {
  auto field = lic::extract_surface_field(*st.mesh, interleaved);
  if (!qt) qt.emplace(field.positions);
  int res = cfg.lic_resolution;
  auto grid = lic::resample(field, *qt, res, res);
  auto noise = lic::make_noise(res, res, 0xABCD1234u);
  lic::LicOptions lopt;
  lopt.periodic_kernel = true;
  lopt.phase = float(step % 8) / 8.0f;
  auto gray = lic::compute_lic(grid, noise, res, res, lopt);
  int out_rank = cfg.total_input_procs() + cfg.render_procs;
  world.isend(out_rank, tag_lic(step),
              {reinterpret_cast<const std::uint8_t*>(gray.data()),
               gray.size() * sizeof(float)});
}

void run_input_1dip(Shared& sh, const Setup& st, vmpi::Comm& world,
                    int input_index) {
  const PipelineConfig& cfg = sh.config;
  const int m = cfg.input_procs;
  const int render_root = cfg.total_input_procs();  // world rank of renderer 0
  std::optional<lic::Quadtree> qt;
  std::vector<std::size_t> all_blocks(st.blocks.size());
  for (std::size_t b = 0; b < all_blocks.size(); ++b) all_blocks[b] = b;

  std::vector<int> owners = st.owners;
  int cur_epoch = 0;

  double fetch = 0, preprocess = 0, send = 0;
  int steps = 0;
  for (int s = input_index; s < st.num_steps; s += m) {
    // Dynamic redistribution: pick up the assignment of this step's epoch
    // (the render group publishes one per epoch boundary).
    while (st.epoch_of(s) > cur_epoch) {
      ++cur_epoch;
      owners = world.recv_vec<int>(render_root, tag_assign(cur_epoch));
    }

    WallTimer t;
    auto cur = read_level_at(world, st, st.reader.step_path(s), 0,
                             st.level_floats());
    std::vector<float> prev, next;
    if (cfg.enhancement) {
      if (s > 0)
        prev = read_level_at(world, st, st.reader.step_path(s - 1), 0,
                             st.level_floats());
      if (s + 1 < st.reader.meta().num_steps)
        next = read_level_at(world, st, st.reader.step_path(s + 1), 0,
                             st.level_floats());
    }
    fetch += t.seconds();
    t.reset();
    auto scalar = make_scalar(cfg, st, cur, prev, next);
    auto q = io::quantize(scalar, cfg.render.value_lo, cfg.render.value_hi);
    if (cfg.lic_overlay) input_lic(world, cfg, st, s, cur, qt);
    preprocess += t.seconds();
    t.reset();
    send_blocks(world, sh, st, s, q, all_blocks, owners);
    send += t.seconds();
    ++steps;
  }
  std::lock_guard lk(sh.mu);
  sh.fetch += fetch;
  sh.preprocess += preprocess;
  sh.send += send;
  sh.input_steps += steps;
}

// 2DIP group member. `group_comm` spans the m members of this group.
void run_input_2dip(Shared& sh, const Setup& st, vmpi::Comm& world,
                    vmpi::Comm& group_comm, int group) {
  const PipelineConfig& cfg = sh.config;
  const int n = cfg.groups;
  const int m = cfg.input_procs;
  const int mi = group_comm.rank();
  const int comps = st.reader.meta().components;
  const bool collective = cfg.strategy == IoStrategy::kTwoDipCollective;

  double fetch = 0, preprocess = 0, send = 0;
  int steps = 0;

  // --- static request patterns (computed once; the mesh never changes) ----
  // Collective: this member serves render procs {r : r % m == mi}; its view
  // is their merged node list.
  std::vector<std::size_t> my_blocks;
  std::vector<mesh::NodeId> my_nodes;
  vmpi::IndexedBlockView view;
  // node id -> position within my_nodes (for per-block extraction).
  std::map<mesh::NodeId, std::uint32_t> node_pos;
  // Independent: my contiguous slice and its forwarding map.
  mesh::NodeId slice_lo = 0, slice_hi = 0;
  // Per render proc: ordered value positions within my slice.
  std::vector<std::vector<std::uint32_t>> fwd_slice_pos(
      std::size_t(cfg.render_procs));

  if (collective) {
    for (std::size_t b = 0; b < st.blocks.size(); ++b) {
      if (st.owners[b] % m == mi) my_blocks.push_back(b);
    }
    my_nodes = io::merged_nodes(st.index, my_blocks);
    for (std::uint32_t i = 0; i < my_nodes.size(); ++i)
      node_pos[my_nodes[i]] = i;
    view.elem_bytes = std::size_t(comps) * sizeof(float);
    view.block_elems = 1;
    std::uint64_t base_elems = st.level_offset() / view.elem_bytes;
    for (auto nid : my_nodes) view.block_offsets.push_back(base_elems + nid);
  } else {
    auto [lo, hi] = io::slice_bounds(st.level_floats() / std::size_t(comps),
                                     mi, m);
    slice_lo = lo;
    slice_hi = hi;
    auto entries = io::build_forward_map(st.index, lo, hi);
    // entries are grouped by block ascending then block_pos; split by owner.
    for (const auto& e : entries) {
      fwd_slice_pos[std::size_t(st.owners[e.block])].push_back(e.slice_pos);
    }
  }

  for (int s = group; s < st.num_steps; s += n) {
    WallTimer t;
    std::vector<float> cur, prev, next;
    if (collective) {
      auto read_step = [&](int step_id) {
        vmpi::File f(group_comm, st.reader.step_path(step_id));
        f.set_view(view);
        std::vector<float> data(my_nodes.size() * std::size_t(comps));
        f.read_all({reinterpret_cast<std::uint8_t*>(data.data()),
                    data.size() * sizeof(float)});
        return data;
      };
      cur = read_step(s);
      if (cfg.enhancement) {
        if (s > 0) prev = read_step(s - 1);
        if (s + 1 < st.reader.meta().num_steps) next = read_step(s + 1);
      }
    } else {
      std::uint64_t first = std::uint64_t(slice_lo) * std::uint64_t(comps);
      std::uint64_t count =
          std::uint64_t(slice_hi - slice_lo) * std::uint64_t(comps);
      cur = read_level_at(world, st, st.reader.step_path(s), first, count);
      if (cfg.enhancement) {
        if (s > 0)
          prev = read_level_at(world, st, st.reader.step_path(s - 1), first,
                               count);
        if (s + 1 < st.reader.meta().num_steps)
          next = read_level_at(world, st, st.reader.step_path(s + 1), first,
                               count);
      }
    }
    fetch += t.seconds();
    t.reset();
    auto scalar = make_scalar(cfg, st, cur, prev, next);
    auto q = io::quantize(scalar, cfg.render.value_lo, cfg.render.value_hi);
    preprocess += t.seconds();
    t.reset();

    std::uint64_t raw = 0, sent_bytes = 0;
    if (collective) {
      // Per-block messages, values indexed through the merged node list.
      std::vector<std::uint8_t> msg, values;
      for (std::size_t b : my_blocks) {
        auto nodes = st.index.block_nodes(b);
        msg.resize(sizeof(BlockMsgHeader));
        BlockMsgHeader hdr{s,  std::int32_t(b), q.lo, q.hi,
                           std::uint32_t(nodes.size()), 0, 0, {}};
        std::memcpy(msg.data(), &hdr, sizeof(hdr));
        values.resize(nodes.size());
        for (std::size_t i = 0; i < nodes.size(); ++i) {
          values[i] = q.values[node_pos.at(nodes[i])];
        }
        pack_values<BlockMsgHeader>(msg, 0, values, cfg.compress_blocks, &raw,
                                    &sent_bytes);
        world.isend(cfg.total_input_procs() + st.owners[b], tag_block(s), msg);
      }
    } else {
      // One slice message per render proc, values in forward-map order.
      std::vector<std::uint8_t> msg, values;
      for (int r = 0; r < cfg.render_procs; ++r) {
        const auto& positions = fwd_slice_pos[std::size_t(r)];
        msg.resize(sizeof(SliceMsgHeader));
        SliceMsgHeader hdr{s,  mi, q.lo, q.hi,
                           std::uint32_t(positions.size()), 0, 0, {}};
        std::memcpy(msg.data(), &hdr, sizeof(hdr));
        values.resize(positions.size());
        for (std::size_t i = 0; i < positions.size(); ++i) {
          values[i] = q.values[positions[i]];
        }
        pack_values<SliceMsgHeader>(msg, 0, values, cfg.compress_blocks, &raw,
                                    &sent_bytes);
        world.isend(cfg.total_input_procs() + r, tag_block(s), msg);
      }
    }
    {
      std::lock_guard lk(sh.mu);
      sh.block_bytes_raw += raw;
      sh.block_bytes_sent += sent_bytes;
    }
    send += t.seconds();
    ++steps;
  }
  std::lock_guard lk(sh.mu);
  sh.fetch += fetch;
  sh.preprocess += preprocess;
  sh.send += send;
  sh.input_steps += steps;
}

// ---------------------------------------------------------------------------
// Rendering processors
// ---------------------------------------------------------------------------

// Renderer-side view of the current block assignment.
struct RenderAssignment {
  std::vector<int> owners;
  std::vector<std::size_t> owned;         // my global block ids
  std::map<int, std::size_t> local_of;    // global block id -> owned index
  std::vector<render::RenderBlock> rblocks;
  std::vector<std::vector<float>> block_values;

  void rebuild(const Setup& st, int my_rank, std::vector<int> new_owners) {
    owners = std::move(new_owners);
    owned.clear();
    local_of.clear();
    rblocks.clear();
    for (std::size_t b = 0; b < st.blocks.size(); ++b) {
      if (owners[b] == my_rank) {
        local_of[int(b)] = owned.size();
        owned.push_back(b);
      }
    }
    rblocks.reserve(owned.size());
    block_values.assign(owned.size(), {});
    for (std::size_t i = 0; i < owned.size(); ++i) {
      rblocks.emplace_back(*st.mesh, st.blocks[owned[i]],
                           st.index.block_nodes(owned[i]));
      block_values[i].resize(st.index.block_nodes(owned[i]).size());
    }
  }
};

void run_render(Shared& sh, const Setup& st, vmpi::Comm& world,
                vmpi::Comm& render_comm) {
  const PipelineConfig& cfg = sh.config;
  const int rr = render_comm.rank();
  const int out_rank = cfg.total_input_procs() + cfg.render_procs;
  const bool independent = cfg.strategy == IoStrategy::kTwoDipIndependent;
  const bool orbiting = cfg.orbit_deg_per_step != 0.0f;

  RenderAssignment assign;
  assign.rebuild(st, rr, st.owners);

  // View-dependent preprocessing (§4): global visibility ranks, recomputed
  // whenever the viewpoint moves.
  render::Camera camera = st.camera(0);
  std::vector<std::uint32_t> rank_of(st.blocks.size());
  auto recompute_order = [&]() {
    auto order = render::visibility_order(st.blocks, st.mesh->domain(),
                                          camera.eye());
    for (std::size_t i = 0; i < order.size(); ++i)
      rank_of[order[i]] = std::uint32_t(i);
  };
  recompute_order();

  // Independent-contiguous reads: precompute, per group member, the scatter
  // list of (owned block, position) matching the member's value order.
  const int m = cfg.input_procs;
  struct Scatter {
    std::size_t local_block;
    std::uint32_t pos;
  };
  std::vector<std::vector<Scatter>> member_scatter;
  if (independent) {
    const int comps = st.reader.meta().components;
    member_scatter.resize(std::size_t(m));
    for (int mi = 0; mi < m; ++mi) {
      auto [lo, hi] = io::slice_bounds(st.level_floats() / std::size_t(comps),
                                       mi, m);
      auto entries = io::build_forward_map(st.index, lo, hi);
      for (const auto& e : entries) {
        if (st.owners[e.block] != rr) continue;
        member_scatter[std::size_t(mi)].push_back(
            {assign.local_of.at(int(e.block)), e.block_pos});
      }
    }
  }

  render::Raycaster rc(st.tf, cfg.render, st.mesh->domain().extent().x);

  double render_time = 0, composite_time = 0;
  std::uint64_t composite_bytes = 0;
  // Measured per-block costs of the current epoch (dynamic redistribution).
  std::map<int, double> epoch_costs;

  for (int s = 0; s < st.num_steps; ++s) {
    // --- receive this step's data (later steps keep arriving in the
    //     background into the mailbox — that's the §4 overlap) -------------
    if (independent) {
      std::vector<std::uint8_t> scratch;
      for (int k = 0; k < m; ++k) {
        std::vector<std::uint8_t> msg;
        world.recv(vmpi::kAnySource, tag_block(s), msg);
        SliceMsgHeader hdr;
        std::memcpy(&hdr, msg.data(), sizeof(hdr));
        const auto& scatter = member_scatter[std::size_t(hdr.member)];
        if (scatter.size() != hdr.count)
          throw std::runtime_error("pipeline: slice message size mismatch");
        unpack_values(hdr, msg, scratch, [&](std::size_t i, float v) {
          assign.block_values[scatter[i].local_block][scatter[i].pos] = v;
        });
      }
    } else {
      std::vector<std::uint8_t> scratch;
      for (std::size_t k = 0; k < assign.owned.size(); ++k) {
        std::vector<std::uint8_t> msg;
        world.recv(vmpi::kAnySource, tag_block(s), msg);
        BlockMsgHeader hdr;
        std::memcpy(&hdr, msg.data(), sizeof(hdr));
        std::size_t li = assign.local_of.at(hdr.block);
        if (assign.block_values[li].size() != hdr.count)
          throw std::runtime_error("pipeline: block message size mismatch");
        auto& dst = assign.block_values[li];
        unpack_values(hdr, msg, scratch,
                      [&](std::size_t i, float v) { dst[i] = v; });
      }
    }

    // --- local rendering ----------------------------------------------------
    if (orbiting && s > 0) {
      camera = st.camera(s);
      recompute_order();
    }
    WallTimer t;
    std::vector<render::PartialImage> partials;
    partials.reserve(assign.owned.size());
    for (std::size_t i = 0; i < assign.owned.size(); ++i) {
      WallTimer bt;
      assign.rblocks[i].set_values(assign.block_values[i]);
      partials.push_back(rc.render_block(camera, assign.rblocks[i],
                                         rank_of[assign.owned[i]]));
      epoch_costs[int(assign.owned[i])] += bt.seconds();
    }
    render_time += t.seconds();
    t.reset();

    // --- parallel compositing ----------------------------------------------
    compositing::CompositeResult comp;
    if (cfg.compositor == Compositor::kSlic) {
      comp = compositing::slic(render_comm, partials, cfg.width, cfg.height,
                               cfg.compress_compositing, 0);
    } else {
      comp = compositing::direct_send(render_comm, partials, cfg.width,
                                      cfg.height, cfg.compress_compositing, 0);
    }
    composite_time += t.seconds();
    composite_bytes += comp.stats.bytes_sent;

    // --- image delivery ----------------------------------------------------
    if (rr == 0) {
      auto px = comp.image.pixels();
      world.isend(out_rank, tag_frame(s),
                  {reinterpret_cast<const std::uint8_t*>(px.data()),
                   px.size_bytes()});
    }

    // --- fine-grain dynamic load redistribution (§7) -----------------------
    if (cfg.rebalance_every > 0 && s + 1 < st.num_steps &&
        st.epoch_of(s + 1) > st.epoch_of(s)) {
      int next_epoch = st.epoch_of(s + 1);
      // Gather (block, cost) pairs at the render root.
      std::vector<std::uint8_t> packed;
      for (const auto& [block, cost] : epoch_costs) {
        double rec[2] = {double(block), cost};
        const auto* p = reinterpret_cast<const std::uint8_t*>(rec);
        packed.insert(packed.end(), p, p + sizeof(rec));
      }
      auto gathered = render_comm.gather(packed, 0);
      std::vector<int> new_owners;
      if (rr == 0) {
        // Reassign blocks largest-first on the MEASURED costs.
        std::vector<octree::Block> costed = st.blocks;
        for (const auto& blob : gathered) {
          for (std::size_t off = 0; off + 16 <= blob.size(); off += 16) {
            double rec[2];
            std::memcpy(rec, blob.data() + off, sizeof(rec));
            costed[std::size_t(rec[0])].workload = rec[1];
          }
        }
        new_owners = octree::assign_blocks(costed, cfg.render_procs,
                                           octree::AssignStrategy::kLargestFirst);
        // Record the imbalance the old assignment showed this epoch.
        std::vector<double> old_load(std::size_t(cfg.render_procs), 0.0);
        std::vector<double> new_load(std::size_t(cfg.render_procs), 0.0);
        for (std::size_t b = 0; b < costed.size(); ++b) {
          old_load[std::size_t(assign.owners[b])] += costed[b].workload;
          new_load[std::size_t(new_owners[b])] += costed[b].workload;
        }
        {
          std::lock_guard lk(sh.mu);
          sh.report.epoch_imbalance.push_back(load_imbalance(old_load));
          sh.report.epoch_imbalance_replanned.push_back(
              load_imbalance(new_load));
        }
        // Publish to the other renderers and to every input processor.
        std::vector<std::uint8_t> wire(new_owners.size() * sizeof(int));
        std::memcpy(wire.data(), new_owners.data(), wire.size());
        render_comm.bcast(wire, 0);
        for (int ip = 0; ip < cfg.total_input_procs(); ++ip) {
          world.isend(ip, tag_assign(next_epoch),
                      {reinterpret_cast<const std::uint8_t*>(new_owners.data()),
                       new_owners.size() * sizeof(int)});
        }
      } else {
        std::vector<std::uint8_t> wire;
        render_comm.bcast(wire, 0);
        new_owners.resize(wire.size() / sizeof(int));
        std::memcpy(new_owners.data(), wire.data(), wire.size());
      }
      assign.rebuild(st, rr, std::move(new_owners));
      epoch_costs.clear();
    }
  }
  std::lock_guard lk(sh.mu);
  sh.render += render_time;
  sh.composite += composite_time;
  sh.composite_bytes += composite_bytes;
  sh.render_steps += st.num_steps;
}

// ---------------------------------------------------------------------------
// Output processor
// ---------------------------------------------------------------------------

void run_output(Shared& sh, const Setup& st, vmpi::Comm& world) {
  const PipelineConfig& cfg = sh.config;
  WallTimer clock;
  std::vector<double> frame_seconds;
  for (int s = 0; s < st.num_steps; ++s) {
    std::vector<std::uint8_t> msg;
    world.recv(vmpi::kAnySource, tag_frame(s), msg);
    img::Image frame(cfg.width, cfg.height);
    if (msg.size() != frame.pixels().size_bytes())
      throw std::runtime_error("pipeline: frame size mismatch");
    std::memcpy(frame.pixels().data(), msg.data(), msg.size());

    if (cfg.lic_overlay) {
      std::vector<std::uint8_t> lmsg;
      world.recv(vmpi::kAnySource, tag_lic(s), lmsg);
      std::vector<float> gray(lmsg.size() / sizeof(float));
      std::memcpy(gray.data(), lmsg.data(), lmsg.size());
      img::Image ground = render_ground_overlay(
          st.camera(s), st.mesh->domain(), gray, cfg.lic_resolution,
          cfg.lic_resolution);
      ground.composite_over(frame);  // volume image in front of LIC plane
      frame = std::move(ground);
    }
    frame_seconds.push_back(clock.seconds());

    if (!cfg.output_dir.empty()) {
      char name[64];
      std::snprintf(name, sizeof(name), "/frame_%04d.ppm", s);
      img::write_ppm(cfg.output_dir + name,
                     img::to_8bit(frame, {0.02f, 0.02f, 0.05f}));
    }
    if (sh.frames_out) sh.frames_out->push_back(std::move(frame));
  }
  std::lock_guard lk(sh.mu);
  sh.report.frame_seconds = std::move(frame_seconds);
}

}  // namespace

PipelineReport run_pipeline(const PipelineConfig& config,
                            std::vector<img::Image>* frames_out) {
  if (config.lic_overlay && config.strategy != IoStrategy::kOneDip)
    throw std::runtime_error(
        "pipeline: the LIC overlay path requires the 1DIP strategy (as in "
        "the paper's Figure 12 configuration)");
  if (config.rebalance_every > 0 && config.strategy != IoStrategy::kOneDip)
    throw std::runtime_error(
        "pipeline: dynamic load redistribution requires the 1DIP strategy");
  if (config.render_procs < 1 || config.input_procs < 1 || config.groups < 1)
    throw std::runtime_error("pipeline: bad processor counts");

  Shared sh{config, frames_out, {}, {}, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0};

  vmpi::Runtime::run(config.world_size(), [&sh, &config](vmpi::Comm& world) {
    Setup st(config);
    const int I = config.total_input_procs();
    const int R = config.render_procs;
    const int r = world.rank();
    const int role = r < I ? 0 : (r < I + R ? 1 : 2);

    vmpi::Comm sub = world.split(role, r);
    std::optional<vmpi::Comm> group_comm;
    if (role == 0 && config.strategy != IoStrategy::kOneDip) {
      int group = r / config.input_procs;
      group_comm.emplace(sub.split(group, r % config.input_procs));
    }
    world.barrier();  // synchronized start: frame clocks begin here

    switch (role) {
      case 0:
        if (config.strategy == IoStrategy::kOneDip) {
          run_input_1dip(sh, st, world, r);
        } else {
          run_input_2dip(sh, st, world, *group_comm, r / config.input_procs);
        }
        break;
      case 1:
        run_render(sh, st, world, sub);
        break;
      default:
        run_output(sh, st, world);
        break;
    }
  });

  PipelineReport& rep = sh.report;
  rep.steps = sh.render_steps > 0 ? sh.render_steps / config.render_procs : 0;
  int in_steps = std::max(sh.input_steps, 1);
  int rn_steps = std::max(rep.steps, 1);
  rep.avg_fetch = sh.fetch / in_steps;
  rep.avg_preprocess = sh.preprocess / in_steps;
  rep.avg_send = sh.send / in_steps;
  rep.avg_render = sh.render / (rn_steps * config.render_procs);
  rep.avg_composite = sh.composite / (rn_steps * config.render_procs);
  rep.composite_bytes = sh.composite_bytes;
  rep.block_bytes_raw = sh.block_bytes_raw;
  rep.block_bytes_sent = sh.block_bytes_sent;
  if (rep.frame_seconds.size() >= 2) {
    std::size_t first = std::max<std::size_t>(rep.frame_seconds.size() / 2, 1);
    double sum = 0;
    std::size_t n = 0;
    for (std::size_t i = first; i < rep.frame_seconds.size(); ++i) {
      sum += rep.frame_seconds[i] - rep.frame_seconds[i - 1];
      ++n;
    }
    rep.avg_interframe = n ? sum / double(n) : 0.0;
  }
  return rep;
}

}  // namespace qv::core
