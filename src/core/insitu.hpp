// Simulation-time visualization — the paper's stated ultimate goal (§7):
// "perform simulation-time visualization allowing scientists to monitor
// the simulation ... the parallel simulation and renderer will run
// simultaneously". Here the FEM wave solver runs on a simulation
// processor and streams velocity snapshots directly to the rendering
// processors over the message-passing runtime — no disk in the loop —
// while the output processor emits frames as the earthquake unfolds.
#pragma once

#include <string>
#include <vector>

#include "core/config.hpp"
#include "img/image.hpp"
#include "quake/material.hpp"
#include "quake/solver.hpp"

namespace qv::core {

struct InsituConfig {
  // --- the simulation ------------------------------------------------------
  Box3 domain{{0, 0, 0}, {2000, 2000, 2000}};
  quake::LayeredBasin basin;
  float mesh_max_freq_hz = 0.5f;       // mesh refinement target
  float mesh_points_per_wavelength = 4.0f;
  int mesh_min_level = 2;
  int mesh_max_level = 4;
  quake::RickerSource source;
  quake::WaveSolver::Options solver;

  int steps_per_snapshot = 8;   // solver steps between rendered frames
  int snapshots = 8;
  int sim_procs = 1;            // ranks running the parallel wave solver

  // --- the visualization -----------------------------------------------------
  int render_procs = 2;
  // Worker threads per rendering rank ((block x tile) tasks; bit-exact for
  // any value, see PipelineConfig::render_threads).
  int render_threads = 1;
  int width = 256;
  int height = 192;
  int block_level = 2;
  octree::AssignStrategy assign = octree::AssignStrategy::kMortonContiguous;
  render::RenderOptions render;
  Colormap colormap = Colormap::kSeismic;
  io::Variable variable = io::Variable::kMagnitude;
  float orbit_deg_per_step = 0.0f;
  std::string output_dir;  // when set, frames are written as PPM

  // Remote frame delivery over the simulated WAN (see src/stream) — the
  // "monitor the simulation from afar" half of the paper's §7 goal.
  stream::StreamConfig stream;

  // Multi-viewer fan-out (see PipelineConfig::serve).
  stream::ServeFleetConfig serve;

  // Interactive steering over the monitored run (same semantics as
  // PipelineConfig::steer; snapshots take the role of steps). Exclusive
  // with the frame cache for the same identity reason.
  SteeringConfig steer;

  int world_size() const { return sim_procs + render_procs + 1; }
};

struct InsituReport {
  std::vector<double> frame_seconds;  // wall-clock completion per snapshot
  double sim_seconds = 0.0;           // time the solver spent stepping
  double sim_time_reached = 0.0;      // simulated seconds at the last frame
  int snapshots = 0;

  // Remote frame delivery (all zero unless config.stream.enabled).
  stream::StreamReport stream;

  // Multi-viewer fan-out (empty unless config.serve.enabled).
  stream::ServerReport server;
};

// Runs solver + renderers + output concurrently in-process. When
// `frames_out` is non-null the output processor stores every frame there.
InsituReport run_insitu(const InsituConfig& config,
                        std::vector<img::Image>* frames_out = nullptr);

// The deterministic mesh every rank (and any offline check) reconstructs
// from the configuration.
mesh::HexMesh build_insitu_mesh(const InsituConfig& config);

}  // namespace qv::core
