#include "core/ground_overlay.hpp"

#include <algorithm>
#include <cmath>

namespace qv::core {

img::Image render_ground_overlay(const render::Camera& camera,
                                 const Box3& domain,
                                 std::span<const float> lic_gray, int gw,
                                 int gh) {
  img::Image out(camera.width(), camera.height());
  const float plane_z = domain.hi.z;
  Vec3 ext = domain.extent();

  for (int py = 0; py < camera.height(); ++py) {
    for (int px = 0; px < camera.width(); ++px) {
      render::Ray ray = camera.pixel_ray(px, py);
      if (std::fabs(ray.dir.z) < 1e-8f) continue;
      float t = (plane_z - ray.origin.z) / ray.dir.z;
      if (t <= 0.0f) continue;
      Vec3 p = ray.origin + ray.dir * t;
      float u = (p.x - domain.lo.x) / ext.x;
      float v = (p.y - domain.lo.y) / ext.y;
      if (u < 0.0f || u > 1.0f || v < 0.0f || v > 1.0f) continue;
      // Bilinear texture lookup.
      float gx = u * float(gw - 1);
      float gy = v * float(gh - 1);
      int x0 = std::min(int(gx), gw - 2);
      int y0 = std::min(int(gy), gh - 2);
      if (gw == 1) x0 = 0;
      if (gh == 1) y0 = 0;
      float fx = gx - float(x0);
      float fy = gy - float(y0);
      auto tex = [&](int x, int y) {
        return lic_gray[std::size_t(y) * std::size_t(gw) + std::size_t(x)];
      };
      float g = tex(x0, y0) * (1 - fx) * (1 - fy) +
                tex(std::min(x0 + 1, gw - 1), y0) * fx * (1 - fy) +
                tex(x0, std::min(y0 + 1, gh - 1)) * (1 - fx) * fy +
                tex(std::min(x0 + 1, gw - 1), std::min(y0 + 1, gh - 1)) * fx * fy;
      out.at(px, py) = {g, g, g, 1.0f};
    }
  }
  return out;
}

}  // namespace qv::core
