// Configuration of the parallel visualization pipeline (§4, Figure 2):
// processor partitioning (input / rendering / output roles), I/O staging
// strategy, rendering options, and optional preprocessing stages.
#pragma once

#include <memory>
#include <string>

#include "io/preprocess.hpp"
#include "io/retry.hpp"
#include "octree/blocks.hpp"
#include "render/raycast.hpp"
#include "stream/server.hpp"
#include "stream/session.hpp"
#include "vmpi/fault.hpp"

namespace qv::core {

enum class IoStrategy {
  kOneDip,            // §5.1: m input procs, each reads a complete step
  kTwoDipCollective,  // §5.2 + §5.3.1: groups; collective noncontiguous read
  kTwoDipIndependent, // §5.2 + §5.3.2: groups; independent contiguous read
};

enum class Compositor {
  kSlic,        // §4.4: scheduled linear image compositing
  kDirectSend,  // baseline
  kBinarySwap,  // classic log-P swap; requires power-of-two render_procs
                // (run_pipeline routes to radix-k with k=2 otherwise).
                // Deferred-blend: output is bit-identical to direct-send.
  kRadixK,      // round-structured k-way exchange, any render_procs count
                // (group size capped by composite_k); bit-identical to
                // direct-send.
};

enum class Colormap {
  kSeismic,    // the velocity-magnitude look of the paper's figures
  kGrayscale,  // simple ramp (hand-checkable compositing in tests)
};

// Interactive steering (viewer→renderer control channel, ROADMAP item 3):
// a scripted edit trace — camera moves and transfer-function window edits —
// folded at step boundaries. Config-distributed: every rank numbers the
// same trace (stream::number_steer_trace) and derives the same view-at-step
// fold, so renderers, the output processor, and any offline check agree on
// the (step, epoch) frame id with no runtime broadcast. The view epoch IS
// the newest applied request id; each fold invalidates the delivery delta
// chains (stream apply_view_change), so the first frame a client sees after
// an edit is a keyframe. Exclusive with rebalance-driven epochs and with
// the content-addressed frame cache (an edit changes pixels the cache
// identity cannot see) — run_pipeline rejects both combinations.
struct SteeringConfig {
  bool enabled = false;
  std::uint64_t seed = 1;  // generated-trace seed (used when path empty)
  int edits = 4;           // events in the generated trace
  std::string trace_path;  // explicit scripted trace; overrides seed/edits
};

struct PipelineConfig {
  std::string dataset_dir;

  IoStrategy strategy = IoStrategy::kOneDip;
  int input_procs = 2;   // m: total input procs (1DIP) or group width (2DIP)
  int groups = 1;        // n: number of 2DIP groups (ignored for 1DIP)
  int render_procs = 4;

  int width = 256;
  int height = 256;
  int adaptive_level = -1;  // octree level to fetch/render; -1 = finest
  int block_level = 2;      // subtree depth of the block decomposition
  octree::AssignStrategy assign = octree::AssignStrategy::kMortonContiguous;

  render::RenderOptions render;   // lighting, step size, value window
  Colormap colormap = Colormap::kSeismic;
  std::string tf_file;            // custom colormap file (overrides colormap)
  io::Variable variable = io::Variable::kMagnitude;  // §1 variable domain
  bool enhancement = false;       // §4.2 temporal-domain enhancement
  float enhancement_gain = 2.0f;
  bool lic_overlay = false;       // §4.3 surface LIC, computed on input procs
  int lic_resolution = 256;       // LIC texture size (square)

  // Spatial exploration: rotate the viewpoint this many degrees per step
  // (0 = fixed camera). Each new view re-runs the view-dependent
  // preprocessing (§4: visibility order; §4.4: the SLIC schedule).
  float orbit_deg_per_step = 0.0f;

  // Fine-grain dynamic load redistribution (§7 future work): when > 0,
  // every `rebalance_every` steps the renderers' measured per-block costs
  // are gathered and blocks are reassigned (largest-first on real costs)
  // for the next epoch. Requires kOneDip.
  int rebalance_every = 0;

  // Intra-rank rendering parallelism: worker threads per rendering
  // processor, fanning each step's blocks out as (block x image-tile)
  // tasks. 1 = fully serial. Output is bit-identical for every value
  // (tiles write disjoint pixels; see test_render_determinism).
  int render_threads = 1;

  Compositor compositor = Compositor::kSlic;
  // Per-round group-size cap for Compositor::kRadixK (>= 2). 4 balances
  // round count against per-round message fan-out at the paper's scales.
  int composite_k = 4;
  bool compress_compositing = false;
  // RLE-compress the quantized block payloads the input processors ship
  // (quiet ground quantizes to zero runs, so this usually wins big).
  bool compress_blocks = false;

  int num_steps = -1;          // -1: every step in the dataset
  std::string output_dir;      // when set, the output proc writes PPM frames

  // Remote frame delivery: when stream.enabled, the output processor also
  // encodes every finished frame and ships it over the simulated WAN link
  // (delta coding + backpressure-driven degradation; see src/stream).
  stream::StreamConfig stream;

  // Multi-viewer fan-out: when serve.enabled, the output processor runs a
  // DeliveryServer and every finished frame is offered to serve.count
  // simulated clients (shared encoding, per-client links and budgets; see
  // src/stream/server.hpp). Independent of — and composable with — the
  // single-session `stream` path above.
  stream::ServeFleetConfig serve;

  // Interactive steering over the run (see SteeringConfig above).
  SteeringConfig steer;

  // --- robustness ---------------------------------------------------------
  // Deterministic fault injection (tests/benches); null = no faults and
  // byte-identical behavior to a build without the fault layer.
  std::shared_ptr<const vmpi::FaultPlan> fault_plan;
  // Per-pread retry policy applied to every dataset File the pipeline opens.
  io::RetryPolicy io_retry;
  // Renderer-side receive timeout (ms) for block/slice data. After retries
  // and resends are exhausted — or an input rank died — the step is dropped
  // and the previous step's data is reused (frame repeat). 0 = block forever
  // (the seed behavior; required if input ranks are assumed immortal).
  int recv_timeout_ms = 0;

  // Total world size the pipeline occupies.
  int total_input_procs() const {
    return strategy == IoStrategy::kOneDip ? input_procs
                                           : input_procs * groups;
  }
  int world_size() const { return total_input_procs() + render_procs + 1; }
};

}  // namespace qv::core
