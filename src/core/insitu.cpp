#include "core/insitu.hpp"

#include <cstdio>
#include <cstring>
#include <map>
#include <mutex>
#include <optional>
#include <stdexcept>

#include "compositing/slic.hpp"
#include "core/frame_msg.hpp"
#include "trace/trace.hpp"
#include "io/block_index.hpp"
#include "io/preprocess.hpp"
#include "obs/lineage.hpp"
#include "quake/parallel_solver.hpp"
#include "render/order.hpp"
#include "render/raycast.hpp"
#include "util/stats.hpp"
#include "vmpi/comm.hpp"

namespace qv::core {

namespace {

int tag_block(int snap) { return snap * 8 + 0; }
int tag_frame(int snap) { return snap * 8 + 1; }

struct SnapHeader {
  std::int32_t snapshot;
  std::int32_t block;
  float lo, hi;
  float sim_time;
  std::uint32_t count;
};

struct Shared {
  const InsituConfig& cfg;
  std::vector<img::Image>* frames_out;
  InsituReport report;
  std::mutex mu;
};

// Deterministic decomposition shared by every role.
struct Setup {
  mesh::HexMesh mesh;
  std::vector<octree::Block> blocks;
  std::vector<int> owners;
  io::BlockNodeIndex index;
  render::TransferFunction tf;

  // Numbered steering trace (empty unless cfg.steer.enabled); identical on
  // every rank, so all roles agree on the view-at-snapshot fold.
  std::vector<stream::SteerEvent> steer_trace;

  explicit Setup(const InsituConfig& cfg)
      : mesh(build_insitu_mesh(cfg)),
        tf(cfg.colormap == Colormap::kSeismic
               ? render::TransferFunction::seismic()
               : render::TransferFunction::grayscale()) {
    blocks = octree::decompose(mesh.octree(), cfg.block_level);
    octree::estimate_workloads(mesh.octree(), blocks,
                               octree::WorkloadModel::kCellCount);
    owners = octree::assign_blocks(blocks, cfg.render_procs, cfg.assign);
    index = io::BlockNodeIndex(mesh, blocks);
    if (cfg.steer.enabled) {
      std::vector<stream::SteerEvent> trace;
      if (!cfg.steer.trace_path.empty()) {
        std::string err;
        auto loaded = stream::load_steer_trace(cfg.steer.trace_path, &err);
        if (!loaded) throw std::runtime_error("insitu: steering trace: " + err);
        trace = std::move(*loaded);
      } else {
        trace = stream::make_steer_trace(cfg.steer.seed, cfg.snapshots,
                                         cfg.steer.edits);
      }
      for (const auto& ev : trace) {
        if (ev.msg.kind == stream::SteerKind::kScrub)
          throw std::runtime_error(
              "insitu: scrub edits are serve-loop only — the solver's "
              "snapshots arrive in simulation order");
      }
      steer_trace = stream::number_steer_trace(std::move(trace));
    }
  }

  stream::SteeringState steer_view(const InsituConfig& cfg, int snap) const {
    stream::SteeringState base;
    base.value_lo = cfg.render.value_lo;
    base.value_hi = cfg.render.value_hi;
    return stream::fold_steer_trace(steer_trace, snap, base);
  }
  std::uint32_t epoch_of(const InsituConfig& cfg, int snap) const {
    return cfg.steer.enabled ? steer_view(cfg, snap).epoch : 0;
  }

  render::Camera camera(const InsituConfig& cfg, int snap) const {
    float az = cfg.orbit_deg_per_step * float(snap);
    if (cfg.steer.enabled) az += steer_view(cfg, snap).azimuth_deg;
    return render::Camera::orbit(mesh.domain(), cfg.width, cfg.height, az);
  }
};

void run_sim(Shared& sh, const Setup& st, vmpi::Comm& world,
             vmpi::Comm& sim_comm) {
  const InsituConfig& cfg = sh.cfg;
  // The simulation itself runs distributed across the sim group (the
  // element work is partitioned; one force reduction per step), mirroring
  // the paper's simulation side running on its own processor set.
  quake::ParallelWaveSolver solver(st.mesh, cfg.basin.field(), cfg.solver,
                                   sim_comm);
  solver.add_source(cfg.source);
  const bool streamer = sim_comm.rank() == 0;

  double sim_seconds = 0.0;
  double sim_time = 0.0;
  for (int snap = 0; snap < cfg.snapshots; ++snap) {
    WallTimer t;
    {
      trace::Span sim_span("pipeline", "sim_step", snap);
      for (int k = 0; k < cfg.steps_per_snapshot; ++k) solver.step();
    }
    sim_seconds += t.seconds();
    sim_time = solver.time();

    if (!streamer) continue;  // only the sim group's root streams
    // Preprocess and stream the snapshot to the renderers (monitoring taps
    // straight off the solver's state — no file system in the path).
    trace::Span stream_span("pipeline", "send_blocks", snap);
    auto vel = solver.velocity_interleaved();
    auto scalar = io::derive_scalar(vel, 3, cfg.variable);
    auto q = io::quantize(scalar, cfg.render.value_lo, cfg.render.value_hi);
    std::vector<std::uint8_t> msg;
    for (std::size_t b = 0; b < st.blocks.size(); ++b) {
      auto nodes = st.index.block_nodes(b);
      msg.resize(sizeof(SnapHeader) + nodes.size());
      SnapHeader hdr{snap,          std::int32_t(b), q.lo, q.hi,
                     float(solver.time()), std::uint32_t(nodes.size())};
      std::memcpy(msg.data(), &hdr, sizeof(hdr));
      for (std::size_t i = 0; i < nodes.size(); ++i) {
        msg[sizeof(hdr) + i] = q.values[nodes[i]];
      }
      world.isend(cfg.sim_procs + st.owners[b], tag_block(snap), msg);
    }
  }
  if (streamer) {
    std::lock_guard lk(sh.mu);
    sh.report.sim_seconds = sim_seconds;
    sh.report.sim_time_reached = sim_time;
  }
}

void run_render(Shared& sh, const Setup& st, vmpi::Comm& world,
                vmpi::Comm& render_comm) {
  const InsituConfig& cfg = sh.cfg;
  const int rr = render_comm.rank();
  const int out_rank = cfg.sim_procs + cfg.render_procs;

  std::vector<std::size_t> owned;
  std::map<int, std::size_t> local_of;
  for (std::size_t b = 0; b < st.blocks.size(); ++b) {
    if (st.owners[b] == rr) {
      local_of[int(b)] = owned.size();
      owned.push_back(b);
    }
  }
  std::vector<render::RenderBlock> rblocks;
  std::vector<std::vector<float>> values(owned.size());
  for (std::size_t i = 0; i < owned.size(); ++i) {
    rblocks.emplace_back(st.mesh, st.blocks[owned[i]],
                         st.index.block_nodes(owned[i]));
    values[i].resize(st.index.block_nodes(owned[i]).size());
  }

  render::Raycaster rc(st.tf, cfg.render, st.mesh.domain().extent().x);
  // Steering: a folded TF edit rebuilds the raycaster (the camera is
  // already refreshed per snapshot below).
  std::uint32_t steer_epoch = 0;
  util::ThreadPool render_pool(
      std::max(1, cfg.render_threads), [rr](int w) {
        if (!trace::enabled()) return;
        char tname[32];
        std::snprintf(tname, sizeof(tname), "render %d.w%d", rr, w);
        trace::set_thread(1000 + rr * 64 + w, tname);
      });
  std::vector<std::uint32_t> rank_of(st.blocks.size());

  for (int snap = 0; snap < cfg.snapshots; ++snap) {
    for (std::size_t k = 0; k < owned.size(); ++k) {
      std::vector<std::uint8_t> msg;
      {
        trace::Span wait_span("pipeline", "wait_blocks", snap);
        world.recv(vmpi::kAnySource, tag_block(snap), msg);
      }
      SnapHeader hdr;
      std::memcpy(&hdr, msg.data(), sizeof(hdr));
      std::size_t li = local_of.at(hdr.block);
      if (values[li].size() != hdr.count)
        throw std::runtime_error("insitu: block message size mismatch");
      const float scale = (hdr.hi - hdr.lo) / 255.0f;
      for (std::size_t i = 0; i < hdr.count; ++i) {
        values[li][i] = hdr.lo + scale * float(msg[sizeof(hdr) + i]);
      }
    }

    if (cfg.steer.enabled &&
        st.epoch_of(cfg, snap) != steer_epoch) {
      const stream::SteeringState v = st.steer_view(cfg, snap);
      render::RenderOptions opt = cfg.render;
      opt.value_lo = v.value_lo;
      opt.value_hi = v.value_hi;
      rc = render::Raycaster(st.tf, opt, st.mesh.domain().extent().x);
      steer_epoch = v.epoch;
    }
    render::Camera camera = st.camera(cfg, snap);
    auto order = render::visibility_order(st.blocks, st.mesh.domain(),
                                          camera.eye());
    for (std::size_t i = 0; i < order.size(); ++i)
      rank_of[order[i]] = std::uint32_t(i);

    std::vector<render::PartialImage> partials;
    // The view epoch: 0 forever unless steering folds edits in.
    const std::int64_t render_t0 =
        obs::lineage::enabled() ? trace::now_since_epoch_ns() : 0;
    {
      trace::Span render_span("pipeline", "render", snap);
      std::vector<std::uint32_t> orders(owned.size());
      for (std::size_t i = 0; i < owned.size(); ++i) {
        rblocks[i].set_values(values[i]);
        orders[i] = rank_of[owned[i]];
      }
      partials = render::render_blocks(camera, rc, rblocks, orders,
                                       &render_pool);
    }
    if (obs::lineage::enabled()) {
      obs::lineage::record_wall(
          obs::lineage::Stage::kRender, snap, st.epoch_of(cfg, snap),
          obs::lineage::ChannelKind::kRank, world.rank(),
          double(trace::now_since_epoch_ns() - render_t0) * 1e-9);
    }
    compositing::CompositeResult comp;
    const std::int64_t comp_t0 =
        obs::lineage::enabled() ? trace::now_since_epoch_ns() : 0;
    {
      trace::Span composite_span("pipeline", "composite", snap);
      comp = compositing::slic(render_comm, partials, cfg.width,
                               cfg.height, false, 0);
    }
    if (obs::lineage::enabled()) {
      obs::lineage::record_wall(
          obs::lineage::Stage::kComposite, snap, st.epoch_of(cfg, snap),
          obs::lineage::ChannelKind::kRank, world.rank(),
          double(trace::now_since_epoch_ns() - comp_t0) * 1e-9);
    }
    if (rr == 0) {
      world.isend(out_rank, tag_frame(snap),
                  make_frame_msg(snap, false, comp.image.pixels()));
    }
  }
}

void run_output(Shared& sh, const Setup& st, vmpi::Comm& world) {
  const InsituConfig& cfg = sh.cfg;
  WallTimer clock;
  std::vector<double> frame_seconds;
  std::optional<stream::StreamSession> session;
  if (cfg.stream.enabled)
    session.emplace(cfg.stream, cfg.width, cfg.height);
  std::optional<stream::DeliveryServer> server;
  if (cfg.serve.enabled && cfg.serve.count > 0) {
    stream::ServerConfig scfg = cfg.serve.server;
    if (cfg.serve.cache_bytes > 0) {
      scfg.cache = std::make_shared<stream::FrameCache>(
          stream::CacheConfig{cfg.serve.cache_bytes});
      // Identity trust contract (stream/cache.hpp): in-situ frames are
      // determined by the synthetic source + solver setup and the view.
      scfg.identity.dataset_id =
          "insitu:" + std::to_string(cfg.source.peak_freq_hz) + ":" +
          std::to_string(cfg.source.amplitude) + ":" +
          std::to_string(cfg.steps_per_snapshot) + ":" +
          std::to_string(cfg.sim_procs);
      scfg.identity.camera_hash = stream::hash64(
          std::to_string(cfg.width) + "x" + std::to_string(cfg.height) +
          ":orbit=" + std::to_string(cfg.orbit_deg_per_step) +
          ":var=" + std::to_string(int(cfg.variable)));
      scfg.identity.tf_hash = stream::hash64(
          "cm=" + std::to_string(int(cfg.colormap)) +
          ":lo=" + std::to_string(cfg.render.value_lo) +
          ":hi=" + std::to_string(cfg.render.value_hi) +
          ":light=" + std::to_string(cfg.render.lighting ? 1 : 0));
    }
    server.emplace(scfg, cfg.width, cfg.height);
    for (const auto& lc : stream::make_fleet(cfg.serve)) server->join(0.0, lc);
  }
  int last_epoch = 0;
  for (int snap = 0; snap < cfg.snapshots; ++snap) {
    std::vector<std::uint8_t> msg;
    {
      trace::Span wait_span("pipeline", "wait_frame", snap);
      world.recv(vmpi::kAnySource, tag_frame(snap), msg);
    }
    trace::Span frame_span("pipeline", "frame", snap);
    const std::int64_t frame_t0 =
        obs::lineage::enabled() ? trace::now_since_epoch_ns() : 0;
    const std::uint32_t epoch = st.epoch_of(cfg, snap);
    if (int(epoch) != last_epoch) {
      // Steering epoch: stamp the new frame id AND reset every delta chain
      // (first post-edit frame per client is a keyframe); per-client
      // controller state survives — an edit is not a network event.
      if (session) session->apply_view_change(epoch);
      if (server) server->apply_view_change(epoch);
      if (obs::lineage::enabled()) {
        obs::lineage::record_wall(obs::lineage::Stage::kSteerApply, snap,
                                  epoch, obs::lineage::ChannelKind::kRank,
                                  world.rank());
      }
      last_epoch = int(epoch);
    }
    img::Image frame(cfg.width, cfg.height);
    auto view = parse_frame_msg(msg, frame.pixels().size());
    if (!view) throw std::runtime_error("insitu: bad frame message");
    std::memcpy(frame.pixels().data(), view->pixels.data(),
                view->pixels.size_bytes());
    frame_seconds.push_back(clock.seconds());
    if (!cfg.output_dir.empty() || session || server) {
      img::Image8 out8 = img::to_8bit(frame, {0.02f, 0.02f, 0.05f});
      if (!cfg.output_dir.empty()) {
        char name[64];
        std::snprintf(name, sizeof(name), "/insitu_%04d.ppm", snap);
        img::write_ppm(cfg.output_dir + name, out8);
      }
      if (session) session->submit(clock.seconds(), snap, out8);
      if (server) server->submit(clock.seconds(), snap, out8);
    }
    if (obs::lineage::enabled()) {
      obs::lineage::record_wall(
          obs::lineage::Stage::kFrame, snap, epoch,
          obs::lineage::ChannelKind::kRank, world.rank(),
          double(trace::now_since_epoch_ns() - frame_t0) * 1e-9);
    }
    if (sh.frames_out) sh.frames_out->push_back(std::move(frame));
  }
  std::lock_guard lk(sh.mu);
  sh.report.frame_seconds = std::move(frame_seconds);
  sh.report.snapshots = cfg.snapshots;
  if (session) sh.report.stream = session->finish();
  if (server) sh.report.server = server->finish();
}

}  // namespace

mesh::HexMesh build_insitu_mesh(const InsituConfig& config) {
  auto tree = mesh::LinearOctree::build(
      config.domain,
      config.basin.size_field(config.mesh_max_freq_hz,
                              config.mesh_points_per_wavelength),
      config.mesh_min_level, config.mesh_max_level);
  return mesh::HexMesh(std::move(tree));
}

InsituReport run_insitu(const InsituConfig& config,
                        std::vector<img::Image>* frames_out) {
  if (config.render_procs < 1 || config.snapshots < 1 ||
      config.sim_procs < 1)
    throw std::runtime_error("insitu: bad configuration");
  if (config.steer.enabled && config.serve.cache_bytes > 0)
    throw std::runtime_error(
        "insitu: steering edits change pixels outside the frame-cache "
        "identity (camera/TF move mid-run); disable --cache-bytes");
  Shared sh{config, frames_out, {}, {}};

  vmpi::Runtime::run(config.world_size(), [&sh, &config](vmpi::Comm& world) {
    Setup st(config);
    const int r = world.rank();
    const int role = r < config.sim_procs
                         ? 0
                         : (r < config.sim_procs + config.render_procs ? 1 : 2);
    if (trace::enabled()) {
      char tname[32];
      if (role == 0)
        std::snprintf(tname, sizeof(tname), "sim %d", r);
      else if (role == 1)
        std::snprintf(tname, sizeof(tname), "render %d", r - config.sim_procs);
      else
        std::snprintf(tname, sizeof(tname), "output");
      trace::set_thread(r, tname);
    }
    vmpi::Comm sub = world.split(role, r);
    world.barrier();
    switch (role) {
      case 0:
        run_sim(sh, st, world, sub);
        break;
      case 1:
        run_render(sh, st, world, sub);
        break;
      default:
        run_output(sh, st, world);
        break;
    }
  });
  return sh.report;
}

}  // namespace qv::core
