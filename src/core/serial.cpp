#include "core/serial.hpp"

#include <fstream>
#include <stdexcept>

#include "io/block_index.hpp"
#include "io/preprocess.hpp"

namespace qv::core {

std::vector<float> load_step_level(io::DatasetReader& reader, int step,
                                   int level) {
  if (level < 0) level = reader.meta().finest_level;
  std::ifstream is(reader.step_path(step), std::ios::binary);
  if (!is) throw std::runtime_error("serial: cannot open step file");
  is.seekg(std::streamoff(reader.level_offset_bytes(level)));
  std::vector<float> data(reader.level_bytes(level) / sizeof(float));
  is.read(reinterpret_cast<char*>(data.data()),
          std::streamsize(data.size() * sizeof(float)));
  if (!is) throw std::runtime_error("serial: truncated step file");
  return data;
}

std::vector<float> load_scalar_field(io::DatasetReader& reader, int step,
                                     int level, bool enhancement,
                                     float enhancement_gain,
                                     io::Variable variable) {
  if (level < 0) level = reader.meta().finest_level;
  const int comps = reader.meta().components;
  auto cur =
      io::derive_scalar(load_step_level(reader, step, level), comps, variable);
  if (!enhancement) return cur;
  std::vector<float> prev, next;
  if (step > 0)
    prev = io::derive_scalar(load_step_level(reader, step - 1, level), comps,
                             variable);
  if (step + 1 < reader.meta().num_steps)
    next = io::derive_scalar(load_step_level(reader, step + 1, level), comps,
                             variable);
  return io::temporal_enhance(cur, prev, next, enhancement_gain);
}

img::Image render_step(io::DatasetReader& reader, int step,
                       const render::Camera& camera,
                       const render::TransferFunction& tf,
                       const SerialRenderConfig& config,
                       render::RenderStats* stats) {
  int level = config.level < 0 ? reader.meta().finest_level : config.level;
  const mesh::HexMesh& mesh = reader.level_mesh(level);

  auto scalar = load_scalar_field(reader, step, level, config.enhancement,
                                  config.enhancement_gain, config.variable);
  if (config.quantize) {
    auto q = io::quantize(scalar, config.render.value_lo, config.render.value_hi);
    for (std::size_t i = 0; i < scalar.size(); ++i) scalar[i] = q.dequantize(i);
  }

  auto blocks = octree::decompose(mesh.octree(), config.block_level);
  octree::estimate_workloads(mesh.octree(), blocks,
                             octree::WorkloadModel::kCellCount);
  io::BlockNodeIndex index(mesh, blocks);

  std::vector<render::RenderBlock> rblocks;
  rblocks.reserve(blocks.size());
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    rblocks.emplace_back(mesh, blocks[b], index.block_nodes(b));
    std::vector<float> vals;
    vals.reserve(index.block_nodes(b).size());
    for (auto n : index.block_nodes(b)) vals.push_back(scalar[n]);
    rblocks.back().set_values(std::move(vals));
  }
  return render::render_frame(camera, tf, config.render, rblocks, blocks,
                              mesh.domain(), stats);
}

}  // namespace qv::core
