# Empty dependencies file for bench_compositing.
# This may be replaced when dependencies are built.
