file(REMOVE_RECURSE
  "CMakeFiles/bench_compositing.dir/bench_compositing.cpp.o"
  "CMakeFiles/bench_compositing.dir/bench_compositing.cpp.o.d"
  "bench_compositing"
  "bench_compositing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_compositing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
