file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_lic.dir/bench_fig12_lic.cpp.o"
  "CMakeFiles/bench_fig12_lic.dir/bench_fig12_lic.cpp.o.d"
  "bench_fig12_lic"
  "bench_fig12_lic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_lic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
