file(REMOVE_RECURSE
  "CMakeFiles/bench_pipeline_small.dir/bench_pipeline_small.cpp.o"
  "CMakeFiles/bench_pipeline_small.dir/bench_pipeline_small.cpp.o.d"
  "bench_pipeline_small"
  "bench_pipeline_small.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pipeline_small.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
