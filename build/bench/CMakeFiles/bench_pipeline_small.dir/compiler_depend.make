# Empty compiler generated dependencies file for bench_pipeline_small.
# This may be replaced when dependencies are built.
