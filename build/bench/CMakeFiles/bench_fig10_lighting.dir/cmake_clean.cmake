file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_lighting.dir/bench_fig10_lighting.cpp.o"
  "CMakeFiles/bench_fig10_lighting.dir/bench_fig10_lighting.cpp.o.d"
  "bench_fig10_lighting"
  "bench_fig10_lighting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_lighting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
