# Empty dependencies file for bench_fig10_lighting.
# This may be replaced when dependencies are built.
