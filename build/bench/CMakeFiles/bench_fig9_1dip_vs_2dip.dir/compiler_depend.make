# Empty compiler generated dependencies file for bench_fig9_1dip_vs_2dip.
# This may be replaced when dependencies are built.
