file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_1dip_vs_2dip.dir/bench_fig9_1dip_vs_2dip.cpp.o"
  "CMakeFiles/bench_fig9_1dip_vs_2dip.dir/bench_fig9_1dip_vs_2dip.cpp.o.d"
  "bench_fig9_1dip_vs_2dip"
  "bench_fig9_1dip_vs_2dip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_1dip_vs_2dip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
