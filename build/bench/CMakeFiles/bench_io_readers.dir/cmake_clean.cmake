file(REMOVE_RECURSE
  "CMakeFiles/bench_io_readers.dir/bench_io_readers.cpp.o"
  "CMakeFiles/bench_io_readers.dir/bench_io_readers.cpp.o.d"
  "bench_io_readers"
  "bench_io_readers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_io_readers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
