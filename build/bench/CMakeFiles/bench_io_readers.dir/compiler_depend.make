# Empty compiler generated dependencies file for bench_io_readers.
# This may be replaced when dependencies are built.
