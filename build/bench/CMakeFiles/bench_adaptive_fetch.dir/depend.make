# Empty dependencies file for bench_adaptive_fetch.
# This may be replaced when dependencies are built.
