file(REMOVE_RECURSE
  "CMakeFiles/bench_adaptive_fetch.dir/bench_adaptive_fetch.cpp.o"
  "CMakeFiles/bench_adaptive_fetch.dir/bench_adaptive_fetch.cpp.o.d"
  "bench_adaptive_fetch"
  "bench_adaptive_fetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_adaptive_fetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
