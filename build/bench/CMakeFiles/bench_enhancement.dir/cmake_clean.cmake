file(REMOVE_RECURSE
  "CMakeFiles/bench_enhancement.dir/bench_enhancement.cpp.o"
  "CMakeFiles/bench_enhancement.dir/bench_enhancement.cpp.o.d"
  "bench_enhancement"
  "bench_enhancement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_enhancement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
