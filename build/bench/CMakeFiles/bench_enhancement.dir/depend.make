# Empty dependencies file for bench_enhancement.
# This may be replaced when dependencies are built.
