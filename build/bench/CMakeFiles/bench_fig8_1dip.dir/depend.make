# Empty dependencies file for bench_fig8_1dip.
# This may be replaced when dependencies are built.
