file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_1dip.dir/bench_fig8_1dip.cpp.o"
  "CMakeFiles/bench_fig8_1dip.dir/bench_fig8_1dip.cpp.o.d"
  "bench_fig8_1dip"
  "bench_fig8_1dip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_1dip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
