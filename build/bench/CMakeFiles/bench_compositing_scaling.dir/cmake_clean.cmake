file(REMOVE_RECURSE
  "CMakeFiles/bench_compositing_scaling.dir/bench_compositing_scaling.cpp.o"
  "CMakeFiles/bench_compositing_scaling.dir/bench_compositing_scaling.cpp.o.d"
  "bench_compositing_scaling"
  "bench_compositing_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_compositing_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
