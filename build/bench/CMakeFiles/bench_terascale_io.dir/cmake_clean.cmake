file(REMOVE_RECURSE
  "CMakeFiles/bench_terascale_io.dir/bench_terascale_io.cpp.o"
  "CMakeFiles/bench_terascale_io.dir/bench_terascale_io.cpp.o.d"
  "bench_terascale_io"
  "bench_terascale_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_terascale_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
