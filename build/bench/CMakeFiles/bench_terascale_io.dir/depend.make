# Empty dependencies file for bench_terascale_io.
# This may be replaced when dependencies are built.
