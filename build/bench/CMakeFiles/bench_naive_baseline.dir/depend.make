# Empty dependencies file for bench_naive_baseline.
# This may be replaced when dependencies are built.
