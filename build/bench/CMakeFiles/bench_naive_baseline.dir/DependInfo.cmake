
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_naive_baseline.cpp" "bench/CMakeFiles/bench_naive_baseline.dir/bench_naive_baseline.cpp.o" "gcc" "bench/CMakeFiles/bench_naive_baseline.dir/bench_naive_baseline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/qv_core.dir/DependInfo.cmake"
  "/root/repo/build/src/pipesim/CMakeFiles/qv_pipesim.dir/DependInfo.cmake"
  "/root/repo/build/src/compositing/CMakeFiles/qv_compositing.dir/DependInfo.cmake"
  "/root/repo/build/src/render/CMakeFiles/qv_render.dir/DependInfo.cmake"
  "/root/repo/build/src/lic/CMakeFiles/qv_lic.dir/DependInfo.cmake"
  "/root/repo/build/src/quake/CMakeFiles/qv_quake.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/qv_io.dir/DependInfo.cmake"
  "/root/repo/build/src/vmpi/CMakeFiles/qv_vmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/octree/CMakeFiles/qv_octree.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/qv_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/img/CMakeFiles/qv_img.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/qv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
