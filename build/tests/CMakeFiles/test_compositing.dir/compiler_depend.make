# Empty compiler generated dependencies file for test_compositing.
# This may be replaced when dependencies are built.
