file(REMOVE_RECURSE
  "CMakeFiles/test_compositing.dir/compositing/test_algorithms.cpp.o"
  "CMakeFiles/test_compositing.dir/compositing/test_algorithms.cpp.o.d"
  "CMakeFiles/test_compositing.dir/compositing/test_common.cpp.o"
  "CMakeFiles/test_compositing.dir/compositing/test_common.cpp.o.d"
  "test_compositing"
  "test_compositing.pdb"
  "test_compositing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_compositing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
