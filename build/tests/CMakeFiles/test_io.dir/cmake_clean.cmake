file(REMOVE_RECURSE
  "CMakeFiles/test_io.dir/io/test_block_index.cpp.o"
  "CMakeFiles/test_io.dir/io/test_block_index.cpp.o.d"
  "CMakeFiles/test_io.dir/io/test_codec.cpp.o"
  "CMakeFiles/test_io.dir/io/test_codec.cpp.o.d"
  "CMakeFiles/test_io.dir/io/test_dataset.cpp.o"
  "CMakeFiles/test_io.dir/io/test_dataset.cpp.o.d"
  "CMakeFiles/test_io.dir/io/test_preprocess.cpp.o"
  "CMakeFiles/test_io.dir/io/test_preprocess.cpp.o.d"
  "test_io"
  "test_io.pdb"
  "test_io[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
