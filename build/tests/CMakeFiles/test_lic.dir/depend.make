# Empty dependencies file for test_lic.
# This may be replaced when dependencies are built.
