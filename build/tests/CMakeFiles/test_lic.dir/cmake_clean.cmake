file(REMOVE_RECURSE
  "CMakeFiles/test_lic.dir/lic/test_advect.cpp.o"
  "CMakeFiles/test_lic.dir/lic/test_advect.cpp.o.d"
  "CMakeFiles/test_lic.dir/lic/test_field2d.cpp.o"
  "CMakeFiles/test_lic.dir/lic/test_field2d.cpp.o.d"
  "CMakeFiles/test_lic.dir/lic/test_lic.cpp.o"
  "CMakeFiles/test_lic.dir/lic/test_lic.cpp.o.d"
  "CMakeFiles/test_lic.dir/lic/test_quadtree.cpp.o"
  "CMakeFiles/test_lic.dir/lic/test_quadtree.cpp.o.d"
  "test_lic"
  "test_lic.pdb"
  "test_lic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
