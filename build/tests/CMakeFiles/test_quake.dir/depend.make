# Empty dependencies file for test_quake.
# This may be replaced when dependencies are built.
