file(REMOVE_RECURSE
  "CMakeFiles/test_quake.dir/quake/test_parallel_solver.cpp.o"
  "CMakeFiles/test_quake.dir/quake/test_parallel_solver.cpp.o.d"
  "CMakeFiles/test_quake.dir/quake/test_solver.cpp.o"
  "CMakeFiles/test_quake.dir/quake/test_solver.cpp.o.d"
  "CMakeFiles/test_quake.dir/quake/test_synthetic.cpp.o"
  "CMakeFiles/test_quake.dir/quake/test_synthetic.cpp.o.d"
  "test_quake"
  "test_quake.pdb"
  "test_quake[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_quake.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
