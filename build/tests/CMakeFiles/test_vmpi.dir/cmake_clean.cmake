file(REMOVE_RECURSE
  "CMakeFiles/test_vmpi.dir/vmpi/test_comm.cpp.o"
  "CMakeFiles/test_vmpi.dir/vmpi/test_comm.cpp.o.d"
  "CMakeFiles/test_vmpi.dir/vmpi/test_file.cpp.o"
  "CMakeFiles/test_vmpi.dir/vmpi/test_file.cpp.o.d"
  "test_vmpi"
  "test_vmpi.pdb"
  "test_vmpi[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vmpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
