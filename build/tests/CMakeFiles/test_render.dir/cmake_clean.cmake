file(REMOVE_RECURSE
  "CMakeFiles/test_render.dir/render/test_camera.cpp.o"
  "CMakeFiles/test_render.dir/render/test_camera.cpp.o.d"
  "CMakeFiles/test_render.dir/render/test_lod.cpp.o"
  "CMakeFiles/test_render.dir/render/test_lod.cpp.o.d"
  "CMakeFiles/test_render.dir/render/test_order.cpp.o"
  "CMakeFiles/test_render.dir/render/test_order.cpp.o.d"
  "CMakeFiles/test_render.dir/render/test_raycast.cpp.o"
  "CMakeFiles/test_render.dir/render/test_raycast.cpp.o.d"
  "CMakeFiles/test_render.dir/render/test_transfer.cpp.o"
  "CMakeFiles/test_render.dir/render/test_transfer.cpp.o.d"
  "test_render"
  "test_render.pdb"
  "test_render[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_render.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
