file(REMOVE_RECURSE
  "CMakeFiles/test_octree.dir/octree/test_blocks.cpp.o"
  "CMakeFiles/test_octree.dir/octree/test_blocks.cpp.o.d"
  "test_octree"
  "test_octree.pdb"
  "test_octree[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_octree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
