# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_img[1]_include.cmake")
include("/root/repo/build/tests/test_mesh[1]_include.cmake")
include("/root/repo/build/tests/test_octree[1]_include.cmake")
include("/root/repo/build/tests/test_vmpi[1]_include.cmake")
include("/root/repo/build/tests/test_io[1]_include.cmake")
include("/root/repo/build/tests/test_quake[1]_include.cmake")
include("/root/repo/build/tests/test_render[1]_include.cmake")
include("/root/repo/build/tests/test_compositing[1]_include.cmake")
include("/root/repo/build/tests/test_lic[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_pipesim[1]_include.cmake")
include("/root/repo/build/tests/test_pipeline[1]_include.cmake")
