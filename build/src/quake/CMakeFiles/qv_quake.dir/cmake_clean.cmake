file(REMOVE_RECURSE
  "CMakeFiles/qv_quake.dir/material.cpp.o"
  "CMakeFiles/qv_quake.dir/material.cpp.o.d"
  "CMakeFiles/qv_quake.dir/parallel_solver.cpp.o"
  "CMakeFiles/qv_quake.dir/parallel_solver.cpp.o.d"
  "CMakeFiles/qv_quake.dir/solver.cpp.o"
  "CMakeFiles/qv_quake.dir/solver.cpp.o.d"
  "CMakeFiles/qv_quake.dir/synthetic.cpp.o"
  "CMakeFiles/qv_quake.dir/synthetic.cpp.o.d"
  "libqv_quake.a"
  "libqv_quake.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qv_quake.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
