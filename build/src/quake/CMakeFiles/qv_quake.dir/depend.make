# Empty dependencies file for qv_quake.
# This may be replaced when dependencies are built.
