file(REMOVE_RECURSE
  "libqv_quake.a"
)
