file(REMOVE_RECURSE
  "libqv_pipesim.a"
)
