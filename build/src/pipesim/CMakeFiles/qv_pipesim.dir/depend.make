# Empty dependencies file for qv_pipesim.
# This may be replaced when dependencies are built.
