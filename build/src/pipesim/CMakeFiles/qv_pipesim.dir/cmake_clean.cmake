file(REMOVE_RECURSE
  "CMakeFiles/qv_pipesim.dir/calibration.cpp.o"
  "CMakeFiles/qv_pipesim.dir/calibration.cpp.o.d"
  "CMakeFiles/qv_pipesim.dir/pipeline_model.cpp.o"
  "CMakeFiles/qv_pipesim.dir/pipeline_model.cpp.o.d"
  "libqv_pipesim.a"
  "libqv_pipesim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qv_pipesim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
