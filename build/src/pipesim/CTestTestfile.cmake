# CMake generated Testfile for 
# Source directory: /root/repo/src/pipesim
# Build directory: /root/repo/build/src/pipesim
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
