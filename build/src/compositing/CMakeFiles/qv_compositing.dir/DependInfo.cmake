
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compositing/binary_swap.cpp" "src/compositing/CMakeFiles/qv_compositing.dir/binary_swap.cpp.o" "gcc" "src/compositing/CMakeFiles/qv_compositing.dir/binary_swap.cpp.o.d"
  "/root/repo/src/compositing/common.cpp" "src/compositing/CMakeFiles/qv_compositing.dir/common.cpp.o" "gcc" "src/compositing/CMakeFiles/qv_compositing.dir/common.cpp.o.d"
  "/root/repo/src/compositing/direct_send.cpp" "src/compositing/CMakeFiles/qv_compositing.dir/direct_send.cpp.o" "gcc" "src/compositing/CMakeFiles/qv_compositing.dir/direct_send.cpp.o.d"
  "/root/repo/src/compositing/slic.cpp" "src/compositing/CMakeFiles/qv_compositing.dir/slic.cpp.o" "gcc" "src/compositing/CMakeFiles/qv_compositing.dir/slic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/render/CMakeFiles/qv_render.dir/DependInfo.cmake"
  "/root/repo/build/src/img/CMakeFiles/qv_img.dir/DependInfo.cmake"
  "/root/repo/build/src/vmpi/CMakeFiles/qv_vmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/qv_util.dir/DependInfo.cmake"
  "/root/repo/build/src/octree/CMakeFiles/qv_octree.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/qv_mesh.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
