file(REMOVE_RECURSE
  "libqv_compositing.a"
)
