# Empty dependencies file for qv_compositing.
# This may be replaced when dependencies are built.
