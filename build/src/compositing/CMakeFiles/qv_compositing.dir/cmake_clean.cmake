file(REMOVE_RECURSE
  "CMakeFiles/qv_compositing.dir/binary_swap.cpp.o"
  "CMakeFiles/qv_compositing.dir/binary_swap.cpp.o.d"
  "CMakeFiles/qv_compositing.dir/common.cpp.o"
  "CMakeFiles/qv_compositing.dir/common.cpp.o.d"
  "CMakeFiles/qv_compositing.dir/direct_send.cpp.o"
  "CMakeFiles/qv_compositing.dir/direct_send.cpp.o.d"
  "CMakeFiles/qv_compositing.dir/slic.cpp.o"
  "CMakeFiles/qv_compositing.dir/slic.cpp.o.d"
  "libqv_compositing.a"
  "libqv_compositing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qv_compositing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
