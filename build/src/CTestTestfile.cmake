# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("img")
subdirs("mesh")
subdirs("octree")
subdirs("quake")
subdirs("vmpi")
subdirs("io")
subdirs("render")
subdirs("compositing")
subdirs("lic")
subdirs("sim")
subdirs("pipesim")
subdirs("core")
