file(REMOVE_RECURSE
  "CMakeFiles/qv_util.dir/rng.cpp.o"
  "CMakeFiles/qv_util.dir/rng.cpp.o.d"
  "CMakeFiles/qv_util.dir/stats.cpp.o"
  "CMakeFiles/qv_util.dir/stats.cpp.o.d"
  "CMakeFiles/qv_util.dir/vec.cpp.o"
  "CMakeFiles/qv_util.dir/vec.cpp.o.d"
  "libqv_util.a"
  "libqv_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qv_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
