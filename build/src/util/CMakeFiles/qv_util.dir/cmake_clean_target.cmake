file(REMOVE_RECURSE
  "libqv_util.a"
)
