# Empty dependencies file for qv_util.
# This may be replaced when dependencies are built.
