
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/render/block_data.cpp" "src/render/CMakeFiles/qv_render.dir/block_data.cpp.o" "gcc" "src/render/CMakeFiles/qv_render.dir/block_data.cpp.o.d"
  "/root/repo/src/render/camera.cpp" "src/render/CMakeFiles/qv_render.dir/camera.cpp.o" "gcc" "src/render/CMakeFiles/qv_render.dir/camera.cpp.o.d"
  "/root/repo/src/render/lod.cpp" "src/render/CMakeFiles/qv_render.dir/lod.cpp.o" "gcc" "src/render/CMakeFiles/qv_render.dir/lod.cpp.o.d"
  "/root/repo/src/render/order.cpp" "src/render/CMakeFiles/qv_render.dir/order.cpp.o" "gcc" "src/render/CMakeFiles/qv_render.dir/order.cpp.o.d"
  "/root/repo/src/render/partial_image.cpp" "src/render/CMakeFiles/qv_render.dir/partial_image.cpp.o" "gcc" "src/render/CMakeFiles/qv_render.dir/partial_image.cpp.o.d"
  "/root/repo/src/render/raycast.cpp" "src/render/CMakeFiles/qv_render.dir/raycast.cpp.o" "gcc" "src/render/CMakeFiles/qv_render.dir/raycast.cpp.o.d"
  "/root/repo/src/render/transfer.cpp" "src/render/CMakeFiles/qv_render.dir/transfer.cpp.o" "gcc" "src/render/CMakeFiles/qv_render.dir/transfer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/img/CMakeFiles/qv_img.dir/DependInfo.cmake"
  "/root/repo/build/src/octree/CMakeFiles/qv_octree.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/qv_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/qv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
