# Empty dependencies file for qv_render.
# This may be replaced when dependencies are built.
