file(REMOVE_RECURSE
  "CMakeFiles/qv_render.dir/block_data.cpp.o"
  "CMakeFiles/qv_render.dir/block_data.cpp.o.d"
  "CMakeFiles/qv_render.dir/camera.cpp.o"
  "CMakeFiles/qv_render.dir/camera.cpp.o.d"
  "CMakeFiles/qv_render.dir/lod.cpp.o"
  "CMakeFiles/qv_render.dir/lod.cpp.o.d"
  "CMakeFiles/qv_render.dir/order.cpp.o"
  "CMakeFiles/qv_render.dir/order.cpp.o.d"
  "CMakeFiles/qv_render.dir/partial_image.cpp.o"
  "CMakeFiles/qv_render.dir/partial_image.cpp.o.d"
  "CMakeFiles/qv_render.dir/raycast.cpp.o"
  "CMakeFiles/qv_render.dir/raycast.cpp.o.d"
  "CMakeFiles/qv_render.dir/transfer.cpp.o"
  "CMakeFiles/qv_render.dir/transfer.cpp.o.d"
  "libqv_render.a"
  "libqv_render.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qv_render.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
