file(REMOVE_RECURSE
  "libqv_render.a"
)
