# Empty compiler generated dependencies file for qv_img.
# This may be replaced when dependencies are built.
