file(REMOVE_RECURSE
  "CMakeFiles/qv_img.dir/image.cpp.o"
  "CMakeFiles/qv_img.dir/image.cpp.o.d"
  "CMakeFiles/qv_img.dir/rle.cpp.o"
  "CMakeFiles/qv_img.dir/rle.cpp.o.d"
  "libqv_img.a"
  "libqv_img.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qv_img.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
