file(REMOVE_RECURSE
  "libqv_img.a"
)
