# Empty dependencies file for qv_vmpi.
# This may be replaced when dependencies are built.
