file(REMOVE_RECURSE
  "libqv_vmpi.a"
)
