file(REMOVE_RECURSE
  "CMakeFiles/qv_vmpi.dir/comm.cpp.o"
  "CMakeFiles/qv_vmpi.dir/comm.cpp.o.d"
  "CMakeFiles/qv_vmpi.dir/file.cpp.o"
  "CMakeFiles/qv_vmpi.dir/file.cpp.o.d"
  "libqv_vmpi.a"
  "libqv_vmpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qv_vmpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
