# Empty dependencies file for qv_octree.
# This may be replaced when dependencies are built.
