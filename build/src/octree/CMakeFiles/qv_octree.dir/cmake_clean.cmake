file(REMOVE_RECURSE
  "CMakeFiles/qv_octree.dir/blocks.cpp.o"
  "CMakeFiles/qv_octree.dir/blocks.cpp.o.d"
  "libqv_octree.a"
  "libqv_octree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qv_octree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
