file(REMOVE_RECURSE
  "libqv_octree.a"
)
