# Empty compiler generated dependencies file for qv_core.
# This may be replaced when dependencies are built.
