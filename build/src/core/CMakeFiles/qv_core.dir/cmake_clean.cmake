file(REMOVE_RECURSE
  "CMakeFiles/qv_core.dir/ground_overlay.cpp.o"
  "CMakeFiles/qv_core.dir/ground_overlay.cpp.o.d"
  "CMakeFiles/qv_core.dir/insitu.cpp.o"
  "CMakeFiles/qv_core.dir/insitu.cpp.o.d"
  "CMakeFiles/qv_core.dir/pipeline.cpp.o"
  "CMakeFiles/qv_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/qv_core.dir/serial.cpp.o"
  "CMakeFiles/qv_core.dir/serial.cpp.o.d"
  "libqv_core.a"
  "libqv_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qv_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
