file(REMOVE_RECURSE
  "libqv_core.a"
)
