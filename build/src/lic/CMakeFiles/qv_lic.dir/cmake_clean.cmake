file(REMOVE_RECURSE
  "CMakeFiles/qv_lic.dir/field2d.cpp.o"
  "CMakeFiles/qv_lic.dir/field2d.cpp.o.d"
  "CMakeFiles/qv_lic.dir/lic.cpp.o"
  "CMakeFiles/qv_lic.dir/lic.cpp.o.d"
  "CMakeFiles/qv_lic.dir/quadtree.cpp.o"
  "CMakeFiles/qv_lic.dir/quadtree.cpp.o.d"
  "libqv_lic.a"
  "libqv_lic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qv_lic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
