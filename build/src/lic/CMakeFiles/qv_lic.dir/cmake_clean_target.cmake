file(REMOVE_RECURSE
  "libqv_lic.a"
)
