# Empty dependencies file for qv_lic.
# This may be replaced when dependencies are built.
