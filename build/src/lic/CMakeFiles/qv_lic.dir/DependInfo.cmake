
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lic/field2d.cpp" "src/lic/CMakeFiles/qv_lic.dir/field2d.cpp.o" "gcc" "src/lic/CMakeFiles/qv_lic.dir/field2d.cpp.o.d"
  "/root/repo/src/lic/lic.cpp" "src/lic/CMakeFiles/qv_lic.dir/lic.cpp.o" "gcc" "src/lic/CMakeFiles/qv_lic.dir/lic.cpp.o.d"
  "/root/repo/src/lic/quadtree.cpp" "src/lic/CMakeFiles/qv_lic.dir/quadtree.cpp.o" "gcc" "src/lic/CMakeFiles/qv_lic.dir/quadtree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mesh/CMakeFiles/qv_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/qv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
