# Empty dependencies file for qv_io.
# This may be replaced when dependencies are built.
