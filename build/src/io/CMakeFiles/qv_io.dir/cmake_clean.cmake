file(REMOVE_RECURSE
  "CMakeFiles/qv_io.dir/block_index.cpp.o"
  "CMakeFiles/qv_io.dir/block_index.cpp.o.d"
  "CMakeFiles/qv_io.dir/codec.cpp.o"
  "CMakeFiles/qv_io.dir/codec.cpp.o.d"
  "CMakeFiles/qv_io.dir/dataset.cpp.o"
  "CMakeFiles/qv_io.dir/dataset.cpp.o.d"
  "CMakeFiles/qv_io.dir/preprocess.cpp.o"
  "CMakeFiles/qv_io.dir/preprocess.cpp.o.d"
  "libqv_io.a"
  "libqv_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qv_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
