
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/block_index.cpp" "src/io/CMakeFiles/qv_io.dir/block_index.cpp.o" "gcc" "src/io/CMakeFiles/qv_io.dir/block_index.cpp.o.d"
  "/root/repo/src/io/codec.cpp" "src/io/CMakeFiles/qv_io.dir/codec.cpp.o" "gcc" "src/io/CMakeFiles/qv_io.dir/codec.cpp.o.d"
  "/root/repo/src/io/dataset.cpp" "src/io/CMakeFiles/qv_io.dir/dataset.cpp.o" "gcc" "src/io/CMakeFiles/qv_io.dir/dataset.cpp.o.d"
  "/root/repo/src/io/preprocess.cpp" "src/io/CMakeFiles/qv_io.dir/preprocess.cpp.o" "gcc" "src/io/CMakeFiles/qv_io.dir/preprocess.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mesh/CMakeFiles/qv_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/octree/CMakeFiles/qv_octree.dir/DependInfo.cmake"
  "/root/repo/build/src/vmpi/CMakeFiles/qv_vmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/qv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
