file(REMOVE_RECURSE
  "libqv_io.a"
)
