
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mesh/hex_mesh.cpp" "src/mesh/CMakeFiles/qv_mesh.dir/hex_mesh.cpp.o" "gcc" "src/mesh/CMakeFiles/qv_mesh.dir/hex_mesh.cpp.o.d"
  "/root/repo/src/mesh/linear_octree.cpp" "src/mesh/CMakeFiles/qv_mesh.dir/linear_octree.cpp.o" "gcc" "src/mesh/CMakeFiles/qv_mesh.dir/linear_octree.cpp.o.d"
  "/root/repo/src/mesh/octkey.cpp" "src/mesh/CMakeFiles/qv_mesh.dir/octkey.cpp.o" "gcc" "src/mesh/CMakeFiles/qv_mesh.dir/octkey.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/qv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
