file(REMOVE_RECURSE
  "libqv_mesh.a"
)
