# Empty dependencies file for qv_mesh.
# This may be replaced when dependencies are built.
