file(REMOVE_RECURSE
  "CMakeFiles/qv_mesh.dir/hex_mesh.cpp.o"
  "CMakeFiles/qv_mesh.dir/hex_mesh.cpp.o.d"
  "CMakeFiles/qv_mesh.dir/linear_octree.cpp.o"
  "CMakeFiles/qv_mesh.dir/linear_octree.cpp.o.d"
  "CMakeFiles/qv_mesh.dir/octkey.cpp.o"
  "CMakeFiles/qv_mesh.dir/octkey.cpp.o.d"
  "libqv_mesh.a"
  "libqv_mesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qv_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
