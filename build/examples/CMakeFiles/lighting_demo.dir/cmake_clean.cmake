file(REMOVE_RECURSE
  "CMakeFiles/lighting_demo.dir/lighting_demo.cpp.o"
  "CMakeFiles/lighting_demo.dir/lighting_demo.cpp.o.d"
  "lighting_demo"
  "lighting_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lighting_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
