# Empty dependencies file for lighting_demo.
# This may be replaced when dependencies are built.
