# Empty compiler generated dependencies file for pipeline_planner.
# This may be replaced when dependencies are built.
