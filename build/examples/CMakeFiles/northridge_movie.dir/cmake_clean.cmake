file(REMOVE_RECURSE
  "CMakeFiles/northridge_movie.dir/northridge_movie.cpp.o"
  "CMakeFiles/northridge_movie.dir/northridge_movie.cpp.o.d"
  "northridge_movie"
  "northridge_movie.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/northridge_movie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
