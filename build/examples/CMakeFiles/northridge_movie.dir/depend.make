# Empty dependencies file for northridge_movie.
# This may be replaced when dependencies are built.
