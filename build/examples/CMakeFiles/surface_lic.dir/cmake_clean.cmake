file(REMOVE_RECURSE
  "CMakeFiles/surface_lic.dir/surface_lic.cpp.o"
  "CMakeFiles/surface_lic.dir/surface_lic.cpp.o.d"
  "surface_lic"
  "surface_lic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/surface_lic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
