# Empty dependencies file for surface_lic.
# This may be replaced when dependencies are built.
