file(REMOVE_RECURSE
  "CMakeFiles/quakeviz.dir/quakeviz.cpp.o"
  "CMakeFiles/quakeviz.dir/quakeviz.cpp.o.d"
  "quakeviz"
  "quakeviz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quakeviz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
