# Empty compiler generated dependencies file for quakeviz.
# This may be replaced when dependencies are built.
