#include "io/block_index.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace qv::io {
namespace {

const Box3 kUnit{{0, 0, 0}, {1, 1, 1}};

struct Fixture {
  mesh::HexMesh mesh;
  std::vector<octree::Block> blocks;
  BlockNodeIndex index;

  Fixture()
      : mesh(mesh::LinearOctree::build(
            kUnit,
            [](Vec3 p) { return p.x + p.y > 1.0f ? 0.08f : 0.3f; }, 1, 4)),
        blocks(octree::decompose(mesh.octree(), 1)),
        index(mesh, blocks) {}
};

TEST(BlockNodeIndex, ListsAreSortedUniqueAndComplete) {
  Fixture f;
  for (std::size_t b = 0; b < f.blocks.size(); ++b) {
    auto nodes = f.index.block_nodes(b);
    ASSERT_FALSE(nodes.empty());
    for (std::size_t i = 1; i < nodes.size(); ++i) {
      EXPECT_LT(nodes[i - 1], nodes[i]);
    }
    // Every node of every cell in the block appears.
    std::set<mesh::NodeId> s(nodes.begin(), nodes.end());
    for (std::size_t c = f.blocks[b].cell_begin; c < f.blocks[b].cell_end; ++c) {
      for (auto n : f.mesh.cell_nodes(c)) EXPECT_TRUE(s.count(n));
    }
  }
}

TEST(BlockNodeIndex, TotalEntriesMatches) {
  Fixture f;
  std::uint64_t total = 0;
  for (std::size_t b = 0; b < f.blocks.size(); ++b)
    total += f.index.block_nodes(b).size();
  EXPECT_EQ(f.index.total_entries(), total);
}

TEST(MergedNodes, DeduplicatesAcrossBlocks) {
  Fixture f;
  std::vector<std::size_t> all(f.blocks.size());
  for (std::size_t b = 0; b < all.size(); ++b) all[b] = b;
  auto merged = merged_nodes(f.index, all);
  // Sorted unique, covering the whole mesh's used nodes (= all nodes).
  for (std::size_t i = 1; i < merged.size(); ++i)
    EXPECT_LT(merged[i - 1], merged[i]);
  EXPECT_EQ(merged.size(), f.mesh.node_count());
  // Merging a subset is smaller.
  std::vector<std::size_t> one = {0};
  EXPECT_LT(merged_nodes(f.index, one).size(), merged.size());
}

TEST(ForwardMap, SlicesPartitionEveryBlockEntry) {
  // Union over m slices of the forward map must hit every (block, pos)
  // exactly once — the §5.3.2 guarantee that renderer merges need no
  // inter-processor coordination.
  Fixture f;
  const auto node_count = mesh::NodeId(f.mesh.node_count());
  for (int m : {1, 2, 3, 5}) {
    std::map<std::pair<std::uint32_t, std::uint32_t>, int> seen;
    for (int mi = 0; mi < m; ++mi) {
      auto [lo, hi] = slice_bounds(node_count, mi, m);
      auto entries = build_forward_map(f.index, lo, hi);
      for (const auto& e : entries) {
        // slice_pos must be within the slice.
        EXPECT_LT(e.slice_pos, hi - lo);
        seen[{e.block, e.block_pos}]++;
      }
    }
    std::uint64_t expect = f.index.total_entries();
    EXPECT_EQ(seen.size(), expect) << "m=" << m;
    for (const auto& [key, count] : seen) EXPECT_EQ(count, 1);
  }
}

TEST(ForwardMap, EntriesPointAtTheRightNodes) {
  Fixture f;
  auto [lo, hi] = slice_bounds(mesh::NodeId(f.mesh.node_count()), 1, 3);
  auto entries = build_forward_map(f.index, lo, hi);
  for (const auto& e : entries) {
    auto nodes = f.index.block_nodes(e.block);
    EXPECT_EQ(nodes[e.block_pos], lo + e.slice_pos);
  }
}

TEST(ForwardMap, GroupedByBlockThenPosition) {
  Fixture f;
  auto entries =
      build_forward_map(f.index, 0, mesh::NodeId(f.mesh.node_count()));
  for (std::size_t i = 1; i < entries.size(); ++i) {
    if (entries[i - 1].block == entries[i].block) {
      EXPECT_LT(entries[i - 1].block_pos, entries[i].block_pos);
    } else {
      EXPECT_LT(entries[i - 1].block, entries[i].block);
    }
  }
}

TEST(SliceBounds, ExactPartition) {
  for (std::uint64_t n : {0ull, 1ull, 7ull, 100ull, 101ull}) {
    for (int m : {1, 2, 3, 7}) {
      mesh::NodeId prev_hi = 0;
      for (int i = 0; i < m; ++i) {
        auto [lo, hi] = slice_bounds(n, i, m);
        EXPECT_EQ(lo, prev_hi);
        EXPECT_LE(lo, hi);
        prev_hi = hi;
      }
      EXPECT_EQ(prev_hi, n);
    }
  }
}

}  // namespace
}  // namespace qv::io
