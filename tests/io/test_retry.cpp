#include "io/retry.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace qv::io {
namespace {

TEST(RetryPolicy, BackoffSequenceIsExponential) {
  RetryPolicy p;
  p.base_delay = std::chrono::microseconds(100);
  p.multiplier = 2.0;
  EXPECT_EQ(p.delay_for(0).count(), 100);
  EXPECT_EQ(p.delay_for(1).count(), 200);
  EXPECT_EQ(p.delay_for(2).count(), 400);
  EXPECT_EQ(p.delay_for(3).count(), 800);

  p.multiplier = 1.0;  // constant backoff
  EXPECT_EQ(p.delay_for(5).count(), 100);
}

TEST(WithRetries, SucceedsAfterTransientFailures) {
  RetryPolicy p;
  p.max_attempts = 4;
  p.base_delay = std::chrono::microseconds(1);
  int calls = 0;
  std::uint64_t retries = 0;
  int result = with_retries(
      p,
      [&] {
        if (++calls < 3) throw vmpi::TransientIoError("flaky");
        return 42;
      },
      &retries);
  EXPECT_EQ(result, 42);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(retries, 2u);
}

TEST(WithRetries, ExhaustsAttemptsThenRethrows) {
  RetryPolicy p;
  p.max_attempts = 3;
  p.base_delay = std::chrono::microseconds(1);
  int calls = 0;
  std::uint64_t retries = 0;
  EXPECT_THROW(with_retries(
                   p,
                   [&]() -> int {
                     ++calls;
                     throw vmpi::TransientIoError("always");
                   },
                   &retries),
               vmpi::TransientIoError);
  EXPECT_EQ(calls, 3);      // total tries == max_attempts
  EXPECT_EQ(retries, 2u);   // retries performed, not counting the first try
}

TEST(WithRetries, NonTransientErrorsPropagateImmediately) {
  RetryPolicy p;
  p.max_attempts = 5;
  int calls = 0;
  EXPECT_THROW(with_retries(p,
                            [&]() -> int {
                              ++calls;
                              throw std::logic_error("bug, not weather");
                            }),
               std::logic_error);
  EXPECT_EQ(calls, 1);
  // A permanent IoError is likewise not retried.
  calls = 0;
  EXPECT_THROW(with_retries(p,
                            [&]() -> int {
                              ++calls;
                              throw vmpi::IoError("gone for good");
                            }),
               vmpi::IoError);
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace qv::io
