#include "io/codec.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>

#include "util/rng.hpp"

namespace qv::io {
namespace {

std::uint64_t fuzz_seed() {
  if (const char* s = std::getenv("QV_FUZZ_SEED")) {
    return std::strtoull(s, nullptr, 10);
  }
  return 1;
}

std::vector<std::uint8_t> random_bytes(std::size_t n, double zero_fraction,
                                       std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> data(n);
  for (auto& b : data) {
    b = rng.next_double() < zero_fraction
            ? 0
            : std::uint8_t(1 + rng.next_below(255));
  }
  return data;
}

TEST(Rle8, AllZeros) {
  std::vector<std::uint8_t> data(1000, 0);
  std::vector<std::uint8_t> buf;
  std::size_t enc = rle8_encode(data, buf);
  EXPECT_LE(enc, 8u);  // ceil(1000/128) headers
  std::vector<std::uint8_t> out(data.size(), 0xFF);
  EXPECT_EQ(rle8_decode(buf, 0, out), enc);
  for (auto b : out) EXPECT_EQ(b, 0);
}

TEST(Rle8, AllLiterals) {
  auto data = random_bytes(500, 0.0, 1);
  std::vector<std::uint8_t> buf;
  std::size_t enc = rle8_encode(data, buf);
  // ~1 header per 128 literals of overhead.
  EXPECT_LE(enc, data.size() + data.size() / 128 + 2);
  std::vector<std::uint8_t> out(data.size());
  ASSERT_EQ(rle8_decode(buf, 0, out), enc);
  EXPECT_EQ(0, std::memcmp(out.data(), data.data(), data.size()));
}

TEST(Rle8, EmptyInput) {
  std::vector<std::uint8_t> buf;
  EXPECT_EQ(rle8_encode({}, buf), 0u);
  std::vector<std::uint8_t> out;
  // Success with zero bytes consumed — distinct from the nullopt error path.
  EXPECT_EQ(rle8_decode(buf, 0, out), 0u);
  EXPECT_DOUBLE_EQ(rle8_ratio({}), 1.0);
}

TEST(Rle8, TruncatedStreamRejected) {
  auto data = random_bytes(300, 0.5, 2);
  std::vector<std::uint8_t> buf;
  rle8_encode(data, buf);
  buf.resize(buf.size() / 2);
  std::vector<std::uint8_t> out(data.size());
  EXPECT_FALSE(rle8_decode(buf, 0, out).has_value());
}

TEST(Rle8, TruncatedLiteralPayloadRejected) {
  // A literal header promising more bytes than the stream holds.
  std::vector<std::uint8_t> buf = {0x84, 1, 2};  // 5 literals, 3 present
  std::vector<std::uint8_t> out(8);
  EXPECT_FALSE(rle8_decode(buf, 0, out).has_value());
}

TEST(Rle8, OverlongStreamRejected) {
  // A valid stream decoded into a too-small output span is corrupt from the
  // receiver's point of view, not silently clipped.
  std::vector<std::uint8_t> data(64, 0);
  std::vector<std::uint8_t> buf;
  rle8_encode(data, buf);
  std::vector<std::uint8_t> out(32);
  EXPECT_FALSE(rle8_decode(buf, 0, out).has_value());
}

TEST(Rle8, NonzeroOffsetDecoding) {
  auto data = random_bytes(200, 0.7, 3);
  std::vector<std::uint8_t> buf = {0xAA, 0xBB};
  std::size_t enc = rle8_encode(data, buf);
  std::vector<std::uint8_t> out(data.size());
  ASSERT_EQ(rle8_decode(buf, 2, out), enc);
  EXPECT_EQ(0, std::memcmp(out.data(), data.data(), data.size()));
}

TEST(Rle8, QuietWavefieldCompressesHard) {
  // A quantized quiet-ground field: long zero runs with a narrow band of
  // activity — the pipeline's actual payload shape.
  std::vector<std::uint8_t> data(10000, 0);
  for (std::size_t i = 4000; i < 4400; ++i) data[i] = std::uint8_t(i % 250 + 1);
  EXPECT_LT(rle8_ratio(data), 0.06);
}

// --- corrupt-input fuzzing --------------------------------------------------
// The decoder sits on the receive path of inter-rank block traffic, so a
// corrupt or truncated stream must come back as nullopt — never a crash, an
// out-of-bounds read, or a silently short decode.

TEST(Rle8Fuzz, EveryTruncationOfAValidStreamIsRejected) {
  const std::uint64_t base = fuzz_seed();
  for (double density : {0.0, 0.5, 0.95}) {
    std::uint64_t state = base ^ std::uint64_t(density * 1000);
    auto data = random_bytes(700, density, splitmix64(state));
    std::vector<std::uint8_t> buf;
    std::size_t enc = rle8_encode(data, buf);
    std::vector<std::uint8_t> out(data.size());
    for (std::size_t cut = 0; cut < enc; ++cut) {
      auto r = rle8_decode(std::span(buf).first(cut), 0, out);
      // A prefix can only ever decode fewer than out.size() bytes, so every
      // truncation is an error, not a silent short decode.
      ASSERT_FALSE(r.has_value()) << "density " << density << " cut " << cut;
    }
    ASSERT_EQ(rle8_decode(buf, 0, out), enc) << "untruncated control";
  }
}

TEST(Rle8Fuzz, SingleBitFlipsNeverCrashAndDecodeDeterministically) {
  const std::uint64_t base = fuzz_seed();
  for (int round = 0; round < 4; ++round) {
    std::uint64_t state = base * 0x9e3779b97f4a7c15ULL + std::uint64_t(round);
    std::uint64_t seed = splitmix64(state);
    SCOPED_TRACE(::testing::Message()
                 << "round " << round << " seed " << seed
                 << " (QV_FUZZ_SEED=" << base << ")");
    Rng rng(seed);
    auto data = random_bytes(400, rng.next_double(), rng.next_u64());
    std::vector<std::uint8_t> clean;
    std::size_t enc = rle8_encode(data, clean);

    for (int flip = 0; flip < 200; ++flip) {
      std::vector<std::uint8_t> buf = clean;
      std::size_t byte = rng.next_below(enc);
      buf[byte] ^= std::uint8_t(1u << rng.next_below(8));

      std::vector<std::uint8_t> out_a(data.size(), 0xAA);
      std::vector<std::uint8_t> out_b(data.size(), 0xBB);
      auto a = rle8_decode(buf, 0, out_a);
      auto b = rle8_decode(buf, 0, out_b);
      // Deterministic: same verdict twice, and on success the same bytes.
      ASSERT_EQ(a.has_value(), b.has_value()) << "flip " << flip;
      if (a) {
        ASSERT_LE(*a, buf.size()) << "consumed past the stream";
        ASSERT_EQ(0, std::memcmp(out_a.data(), out_b.data(), out_a.size()))
            << "flip " << flip;
      }
    }
  }
}

TEST(Rle8Fuzz, RandomGarbageNeverCrashes) {
  const std::uint64_t base = fuzz_seed();
  std::uint64_t state = base * 1000003u;
  Rng rng(splitmix64(state));
  for (int round = 0; round < 300; ++round) {
    std::vector<std::uint8_t> buf(rng.next_below(256));
    for (auto& b : buf) b = std::uint8_t(rng.next_below(256));
    std::vector<std::uint8_t> out(rng.next_below(512));
    std::size_t offset = rng.next_below(buf.size() + 2);  // may exceed size
    auto r = rle8_decode(buf, offset, out);
    if (r) {
      ASSERT_LE(offset + *r, buf.size())
          << "round " << round << ": consumed past the stream";
    }
  }
}

class Rle8RoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(Rle8RoundTrip, LosslessAtEveryDensity) {
  for (std::uint64_t seed = 10; seed < 18; ++seed) {
    auto data = random_bytes(1537, GetParam(), seed);
    std::vector<std::uint8_t> buf;
    std::size_t enc = rle8_encode(data, buf);
    std::vector<std::uint8_t> out(data.size());
    ASSERT_EQ(rle8_decode(buf, 0, out), enc) << "seed " << seed;
    ASSERT_EQ(0, std::memcmp(out.data(), data.data(), data.size()))
        << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(ZeroFractions, Rle8RoundTrip,
                         ::testing::Values(0.0, 0.05, 0.3, 0.6, 0.9, 0.99,
                                           1.0));

}  // namespace
}  // namespace qv::io
