#include "io/dataset.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "quake/synthetic.hpp"
#include "util/rng.hpp"

namespace qv::io {
namespace {

const Box3 kUnit{{0, 0, 0}, {1, 1, 1}};

struct TempDir {
  std::filesystem::path path;
  explicit TempDir(const char* name)
      : path(std::filesystem::temp_directory_path() / name) {
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
  std::string str() const { return path.string(); }
};

mesh::HexMesh small_mesh() {
  auto size = [](Vec3 p) { return p.z > 0.6f ? 0.1f : 0.35f; };
  return mesh::HexMesh(mesh::LinearOctree::build(kUnit, size, 1, 4));
}

TEST(DatasetMeta, RoundTrip) {
  TempDir dir("qv_ds_meta");
  DatasetMeta m;
  m.domain = {{-1, -2, -3}, {4, 5, 6}};
  m.coarsest_level = 2;
  m.finest_level = 5;
  m.components = 3;
  m.num_steps = 17;
  m.step_dt = 0.25f;
  m.level_node_count = {10, 20, 30, 40};
  write_meta(dir.str() + "/meta.bin", m);
  DatasetMeta r = read_meta(dir.str() + "/meta.bin");
  EXPECT_EQ(r.coarsest_level, 2);
  EXPECT_EQ(r.finest_level, 5);
  EXPECT_EQ(r.components, 3);
  EXPECT_EQ(r.num_steps, 17);
  EXPECT_FLOAT_EQ(r.step_dt, 0.25f);
  EXPECT_EQ(r.level_node_count, m.level_node_count);
  EXPECT_FLOAT_EQ(r.domain.hi.z, 6);
}

TEST(DatasetMeta, RejectsBadMagic) {
  TempDir dir("qv_ds_magic");
  {
    std::ofstream os(dir.str() + "/meta.bin", std::ios::binary);
    os << "GARBAGEGARBAGE";
  }
  EXPECT_THROW(read_meta(dir.str() + "/meta.bin"), std::runtime_error);
}

TEST(DatasetOctree, RoundTrip) {
  TempDir dir("qv_ds_oct");
  auto mesh = small_mesh();
  write_octree(dir.str() + "/octree.bin", mesh.octree());
  auto tree = read_octree(dir.str() + "/octree.bin");
  ASSERT_EQ(tree.leaf_count(), mesh.octree().leaf_count());
  for (std::size_t i = 0; i < tree.leaf_count(); ++i) {
    EXPECT_EQ(tree.leaves()[i], mesh.octree().leaves()[i]);
  }
}

TEST(Dataset, WriteReadFullCycle) {
  TempDir dir("qv_ds_cycle");
  auto fine = small_mesh();
  const int coarsest = 2;
  DatasetWriter writer(dir.str(), fine, coarsest, 3, 0.1f);

  quake::SyntheticQuake quake;
  const int steps = 3;
  for (int s = 0; s < steps; ++s) {
    writer.write_step(quake.sample_nodes(fine, float(s) * 0.5f));
  }
  writer.finish();

  DatasetReader reader(dir.str());
  EXPECT_EQ(reader.meta().num_steps, steps);
  EXPECT_EQ(reader.meta().components, 3);
  EXPECT_EQ(reader.meta().finest_level, fine.octree().max_leaf_level());
  EXPECT_EQ(reader.meta().coarsest_level, coarsest);

  // Reader's level meshes agree with the writer's.
  for (int level = coarsest; level <= reader.meta().finest_level; ++level) {
    const auto& rm = reader.level_mesh(level);
    const auto& wm = writer.level_mesh(level);
    EXPECT_EQ(rm.node_count(), wm.node_count()) << "level " << level;
    EXPECT_EQ(rm.cell_count(), wm.cell_count());
    EXPECT_EQ(rm.node_count(),
              reader.meta().level_node_count[std::size_t(level - coarsest)]);
  }

  // Byte layout: offsets are cumulative, total matches the file size.
  std::uint64_t expect_off = 0;
  for (int level = coarsest; level <= reader.meta().finest_level; ++level) {
    EXPECT_EQ(reader.level_offset_bytes(level), expect_off);
    expect_off += reader.level_bytes(level);
  }
  EXPECT_EQ(std::filesystem::file_size(reader.step_path(0)), expect_off);
}

TEST(Dataset, CoarseLevelsAreNodalRestrictions) {
  TempDir dir("qv_ds_restrict");
  auto fine = small_mesh();
  DatasetWriter writer(dir.str(), fine, 2, 3, 0.1f);
  quake::SyntheticQuake quake;
  auto data = quake.sample_nodes(fine, 1.0f);
  writer.write_step(data);
  writer.finish();

  DatasetReader reader(dir.str());
  const int level = 2;
  const auto& cm = reader.level_mesh(level);
  // Load the level array from the step file directly.
  std::ifstream is(reader.step_path(0), std::ios::binary);
  is.seekg(std::streamoff(reader.level_offset_bytes(level)));
  std::vector<float> coarse(reader.level_bytes(level) / 4);
  is.read(reinterpret_cast<char*>(coarse.data()),
          std::streamsize(coarse.size() * 4));
  ASSERT_TRUE(bool(is));

  // Every coarse node's value equals the fine node value at the same grid
  // coordinates (restriction, not interpolation).
  auto coords = cm.node_grid_coords();
  for (std::size_t n = 0; n < cm.node_count(); ++n) {
    auto fid = fine.find_node(coords[n]);
    ASSERT_GE(fid, 0);
    for (int c = 0; c < 3; ++c) {
      ASSERT_FLOAT_EQ(coarse[n * 3 + std::size_t(c)],
                      data[std::size_t(fid) * 3 + std::size_t(c)]);
    }
  }
}

TEST(Dataset, StepSizeMismatchThrows) {
  TempDir dir("qv_ds_bad");
  auto fine = small_mesh();
  DatasetWriter writer(dir.str(), fine, 2, 3, 0.1f);
  std::vector<float> wrong(10);
  EXPECT_THROW(writer.write_step(wrong), std::runtime_error);
}

TEST(Dataset, MissingDirectoryThrows) {
  EXPECT_THROW(DatasetReader("/nonexistent/qv_nowhere"), std::runtime_error);
}

}  // namespace
}  // namespace qv::io
