#include "io/preprocess.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace qv::io {
namespace {

TEST(Quantize, AutoRangeCoversData) {
  std::vector<float> v = {-2.0f, 0.0f, 3.0f, 1.0f};
  auto q = quantize(v);
  EXPECT_FLOAT_EQ(q.lo, -2.0f);
  EXPECT_FLOAT_EQ(q.hi, 3.0f);
  EXPECT_EQ(q.values[0], 0);
  EXPECT_EQ(q.values[2], 255);
}

TEST(Quantize, FixedRangeClamps) {
  std::vector<float> v = {-10.0f, 0.5f, 10.0f};
  auto q = quantize(v, 0.0f, 1.0f);
  EXPECT_EQ(q.values[0], 0);
  EXPECT_EQ(q.values[2], 255);
  EXPECT_NEAR(q.dequantize(1), 0.5f, 1.0f / 255.0f);
}

TEST(Quantize, RoundTripErrorBounded) {
  Rng rng(3);
  std::vector<float> v(10000);
  for (auto& x : v) x = float(rng.uniform(-5, 5));
  auto q = quantize(v, -5.0f, 5.0f);
  float max_err = 0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    max_err = std::max(max_err, std::fabs(q.dequantize(i) - v[i]));
  }
  // 8-bit over a range of 10: worst case one quantum = 10/255.
  EXPECT_LE(max_err, 10.0f / 255.0f + 1e-5f);
}

TEST(Quantize, ConstantDataHandled) {
  std::vector<float> v(100, 4.0f);
  auto q = quantize(v);
  EXPECT_EQ(q.values[50], 0);  // degenerate range expands; values clamp low
  EXPECT_FLOAT_EQ(q.dequantize(50), 4.0f);
}

TEST(Magnitude, ThreeComponents) {
  std::vector<float> v = {3, 4, 0, 1, 2, 2};
  auto m = magnitude(v, 3);
  ASSERT_EQ(m.size(), 2u);
  EXPECT_FLOAT_EQ(m[0], 5.0f);
  EXPECT_FLOAT_EQ(m[1], 3.0f);
}

TEST(Magnitude, SingleComponentIsAbs) {
  std::vector<float> v = {-3, 4};
  auto m = magnitude(v, 1);
  EXPECT_FLOAT_EQ(m[0], 3.0f);
  EXPECT_FLOAT_EQ(m[1], 4.0f);
}

TEST(Magnitude, BadComponentCountThrows) {
  std::vector<float> v = {1, 2, 3, 4};
  EXPECT_THROW(magnitude(v, 3), std::runtime_error);
  EXPECT_THROW(magnitude(v, 0), std::runtime_error);
}

TEST(TemporalEnhance, BoostsChangingRegions) {
  std::vector<float> cur = {1.0f, 1.0f};
  std::vector<float> prev = {1.0f, 0.0f};  // node 1 changed
  std::vector<float> next = {1.0f, 1.0f};
  auto e = temporal_enhance(cur, prev, next, 2.0f);
  EXPECT_FLOAT_EQ(e[0], 1.0f);  // static: unchanged
  EXPECT_FLOAT_EQ(e[1], 3.0f);  // 1 + 2 * |1-0|
}

TEST(TemporalEnhance, MissingNeighborsDegradeGracefully) {
  std::vector<float> cur = {2.0f};
  auto only_next = temporal_enhance(cur, {}, std::vector<float>{5.0f}, 1.0f);
  EXPECT_FLOAT_EQ(only_next[0], 5.0f);  // 2 + |5-2|
  auto neither = temporal_enhance(cur, {}, {}, 1.0f);
  EXPECT_FLOAT_EQ(neither[0], 2.0f);
}

TEST(TemporalEnhance, UsesLargerOfBothDifferences) {
  std::vector<float> cur = {1.0f};
  std::vector<float> prev = {0.5f};   // diff 0.5
  std::vector<float> next = {3.0f};   // diff 2.0
  auto e = temporal_enhance(cur, prev, next, 1.0f);
  EXPECT_FLOAT_EQ(e[0], 3.0f);  // 1 + max(0.5, 2.0)
}

TEST(NodeGradients, LinearFieldGradientIsConstant) {
  Box3 unit{{0, 0, 0}, {1, 1, 1}};
  mesh::HexMesh mesh(mesh::LinearOctree::uniform(unit, 3));
  std::vector<float> values(mesh.node_count());
  auto positions = mesh.node_positions();
  for (std::size_t n = 0; n < values.size(); ++n) {
    Vec3 p = positions[n];
    values[n] = 2.0f * p.x - 1.0f * p.y + 3.0f * p.z;
  }
  auto grads = node_gradients(mesh, values);
  // Check interior nodes (boundary nodes use one-sided stencils with the
  // same exact result for a linear field).
  int checked = 0;
  for (std::size_t n = 0; n < grads.size(); ++n) {
    Vec3 p = positions[n];
    if (p.x < 0.2f || p.x > 0.8f || p.y < 0.2f || p.y > 0.8f || p.z < 0.2f ||
        p.z > 0.8f)
      continue;
    EXPECT_NEAR(grads[n].x, 2.0f, 1e-2f);
    EXPECT_NEAR(grads[n].y, -1.0f, 1e-2f);
    EXPECT_NEAR(grads[n].z, 3.0f, 1e-2f);
    ++checked;
  }
  EXPECT_GT(checked, 20);
}

}  // namespace
}  // namespace qv::io
