// The shared render-root -> output-processor frame message: roundtrip and
// rejection of version/size mismatches (both pipeline and insitu ride on
// this helper, so a malformed hop fails loudly instead of as garbage
// pixels).
#include "core/frame_msg.hpp"

#include <gtest/gtest.h>

#include <cstring>

namespace qv::core {
namespace {

std::vector<img::Rgba> test_pixels(std::size_t n) {
  std::vector<img::Rgba> px(n);
  for (std::size_t i = 0; i < n; ++i) {
    px[i] = {float(i) * 0.25f, float(i) * 0.5f, float(i), 1.0f};
  }
  return px;
}

TEST(FrameMsg, Roundtrip) {
  auto px = test_pixels(12);
  auto msg = make_frame_msg(7, true, px);
  EXPECT_EQ(msg.size(), sizeof(FrameWireHeader) + px.size() * sizeof(img::Rgba));
  auto v = parse_frame_msg(msg, px.size());
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->step, 7);
  EXPECT_TRUE(v->degraded);
  ASSERT_EQ(v->pixels.size(), px.size());
  EXPECT_EQ(0, std::memcmp(v->pixels.data(), px.data(),
                           px.size() * sizeof(img::Rgba)));
}

TEST(FrameMsg, NotDegradedRoundtrip) {
  auto px = test_pixels(4);
  auto v = parse_frame_msg(make_frame_msg(0, false, px), px.size());
  ASSERT_TRUE(v.has_value());
  EXPECT_FALSE(v->degraded);
}

TEST(FrameMsg, ShortBufferRejected) {
  auto msg = make_frame_msg(0, false, test_pixels(4));
  for (std::size_t cut : {std::size_t(0), std::size_t(8),
                          sizeof(FrameWireHeader) - 1}) {
    EXPECT_FALSE(
        parse_frame_msg({msg.data(), cut}, 4).has_value())
        << "cut " << cut;
  }
}

TEST(FrameMsg, BadMagicRejected) {
  auto msg = make_frame_msg(0, false, test_pixels(4));
  msg[0] ^= 0xFF;
  EXPECT_FALSE(parse_frame_msg(msg, 4).has_value());
}

TEST(FrameMsg, VersionMismatchRejected) {
  auto msg = make_frame_msg(0, false, test_pixels(4));
  FrameWireHeader h;
  std::memcpy(&h, msg.data(), sizeof(h));
  h.version = kFrameMsgVersion + 1;
  std::memcpy(msg.data(), &h, sizeof(h));
  EXPECT_FALSE(parse_frame_msg(msg, 4).has_value());
}

TEST(FrameMsg, PixelCountMismatchRejected) {
  auto msg = make_frame_msg(0, false, test_pixels(4));
  // Receiver expects a different frame size than the sender produced.
  EXPECT_FALSE(parse_frame_msg(msg, 5).has_value());
  // Header claims more pixels than the buffer carries.
  FrameWireHeader h;
  std::memcpy(&h, msg.data(), sizeof(h));
  h.pixel_count = 5;
  std::memcpy(msg.data(), &h, sizeof(h));
  EXPECT_FALSE(parse_frame_msg(msg, 5).has_value());
  EXPECT_FALSE(parse_frame_msg(msg, 4).has_value());
}

TEST(FrameMsg, TrailingBytesRejected) {
  auto msg = make_frame_msg(0, false, test_pixels(4));
  msg.push_back(0);
  EXPECT_FALSE(parse_frame_msg(msg, 4).has_value());
}

}  // namespace
}  // namespace qv::core
