// Tests of the §7 extension features: per-step camera orbits (spatial
// exploration), variable-domain selection, fine-grain dynamic load
// redistribution, and simulation-time (in-situ) visualization.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>

#include "core/insitu.hpp"
#include "core/pipeline.hpp"
#include "core/serial.hpp"
#include "io/block_index.hpp"
#include "render/raycast.hpp"
#include "quake/synthetic.hpp"

namespace qv::core {
namespace {

const Box3 kUnit{{0, 0, 0}, {1, 1, 1}};
constexpr int kSteps = 4;
constexpr int kW = 64;
constexpr int kH = 48;

class ExtensionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // PID-unique: ctest runs each case as its own process, concurrently.
    dir_ = (std::filesystem::temp_directory_path() /
            ("qv_ext_ds." + std::to_string(::getpid())))
               .string();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    auto size = [](Vec3 p) { return p.z > 0.5f ? 0.12f : 0.3f; };
    mesh::HexMesh fine(mesh::LinearOctree::build(kUnit, size, 1, 3));
    io::DatasetWriter writer(dir_, fine, 2, 3, 0.25f);
    quake::SyntheticQuake q;
    for (int s = 0; s < kSteps; ++s) {
      writer.write_step(q.sample_nodes(fine, 0.6f + 0.4f * float(s)));
    }
    writer.finish();
  }
  static void TearDownTestSuite() { std::filesystem::remove_all(dir_); }

  static PipelineConfig base_config() {
    PipelineConfig cfg;
    cfg.dataset_dir = dir_;
    cfg.width = kW;
    cfg.height = kH;
    cfg.render.value_hi = 3.0f;
    cfg.input_procs = 2;
    cfg.render_procs = 3;
    return cfg;
  }
  static std::string dir_;
};
std::string ExtensionTest::dir_;

TEST(CameraOrbit, ZeroDegreesIsOverview) {
  Box3 dom{{0, 0, 0}, {10, 10, 10}};
  auto a = render::Camera::overview(dom, 64, 64);
  auto b = render::Camera::orbit(dom, 64, 64, 0.0f);
  EXPECT_FLOAT_EQ(a.eye().x, b.eye().x);
  EXPECT_FLOAT_EQ(a.eye().z, b.eye().z);
}

TEST(CameraOrbit, FullCircleReturnsAndPreservesRadius) {
  Box3 dom{{0, 0, 0}, {10, 10, 10}};
  Vec3 c = dom.center();
  auto a = render::Camera::orbit(dom, 64, 64, 0.0f);
  auto b = render::Camera::orbit(dom, 64, 64, 360.0f);
  EXPECT_NEAR(a.eye().x, b.eye().x, 1e-3f);
  EXPECT_NEAR(a.eye().y, b.eye().y, 1e-3f);
  for (float deg : {30.0f, 90.0f, 200.0f}) {
    auto cam = render::Camera::orbit(dom, 64, 64, deg);
    EXPECT_NEAR((cam.eye() - c).norm(), (a.eye() - c).norm(), 1e-2f);
    EXPECT_FLOAT_EQ(cam.eye().z, a.eye().z);  // rotation about the z axis
  }
}

TEST_F(ExtensionTest, OrbitingPipelineMatchesPerStepSerialCameras) {
  auto cfg = base_config();
  cfg.orbit_deg_per_step = 25.0f;
  std::vector<img::Image> frames;
  run_pipeline(cfg, &frames);
  ASSERT_EQ(frames.size(), std::size_t(kSteps));

  io::DatasetReader reader(dir_);
  SerialRenderConfig scfg;
  scfg.render.value_hi = 3.0f;
  scfg.quantize = true;
  auto tf = render::TransferFunction::seismic();
  for (int s = 0; s < kSteps; ++s) {
    auto cam = render::Camera::orbit(reader.meta().domain, kW, kH,
                                     25.0f * float(s));
    img::Image want = render_step(reader, s, cam, tf, scfg);
    EXPECT_LT(img::rmse(frames[std::size_t(s)], want), 1e-5) << "frame " << s;
  }
  // And the view actually moved between frames.
  EXPECT_GT(img::rmse(frames[0], frames[2]), 1e-3);
}

TEST(DeriveScalar, VariableDefinitions) {
  std::vector<float> rec = {3, -4, 12};
  auto mag = io::derive_scalar(rec, 3, io::Variable::kMagnitude);
  auto vx = io::derive_scalar(rec, 3, io::Variable::kComponentX);
  auto vy = io::derive_scalar(rec, 3, io::Variable::kComponentY);
  auto vz = io::derive_scalar(rec, 3, io::Variable::kComponentZ);
  auto hz = io::derive_scalar(rec, 3, io::Variable::kHorizontal);
  EXPECT_FLOAT_EQ(mag[0], 13.0f);
  EXPECT_FLOAT_EQ(vx[0], 3.0f);
  EXPECT_FLOAT_EQ(vy[0], 4.0f);
  EXPECT_FLOAT_EQ(vz[0], 12.0f);
  EXPECT_FLOAT_EQ(hz[0], 5.0f);
}

TEST(DeriveScalar, MissingComponentsReadZero) {
  std::vector<float> rec = {7.0f};
  EXPECT_FLOAT_EQ(io::derive_scalar(rec, 1, io::Variable::kComponentZ)[0], 0.0f);
  EXPECT_FLOAT_EQ(io::derive_scalar(rec, 1, io::Variable::kHorizontal)[0], 7.0f);
}

TEST_F(ExtensionTest, VariableSelectionFlowsThroughThePipeline) {
  std::vector<img::Image> mag_frames, vz_frames;
  auto cfg = base_config();
  run_pipeline(cfg, &mag_frames);
  cfg.variable = io::Variable::kComponentZ;
  run_pipeline(cfg, &vz_frames);
  // Different variables give different images...
  EXPECT_GT(img::rmse(mag_frames[1], vz_frames[1]), 1e-4);
  // ...and each matches its serial counterpart.
  io::DatasetReader reader(dir_);
  SerialRenderConfig scfg;
  scfg.render.value_hi = 3.0f;
  scfg.quantize = true;
  scfg.variable = io::Variable::kComponentZ;
  auto cam = render::Camera::overview(reader.meta().domain, kW, kH);
  auto tf = render::TransferFunction::seismic();
  img::Image want = render_step(reader, 1, cam, tf, scfg);
  EXPECT_LT(img::rmse(vz_frames[1], want), 1e-5);
}

TEST_F(ExtensionTest, DynamicRebalanceKeepsFramesCorrect) {
  auto cfg = base_config();
  // Deliberately bad initial assignment so redistribution has work to do.
  cfg.assign = octree::AssignStrategy::kRoundRobin;
  cfg.rebalance_every = 2;  // epochs of 2 steps over 4 steps
  std::vector<img::Image> frames;
  auto report = run_pipeline(cfg, &frames);
  ASSERT_EQ(frames.size(), std::size_t(kSteps));
  // Frames identical to the static run (redistribution must not change
  // the image).
  auto cfg2 = base_config();
  std::vector<img::Image> want;
  run_pipeline(cfg2, &want);
  for (int s = 0; s < kSteps; ++s) {
    EXPECT_LT(img::rmse(frames[std::size_t(s)], want[std::size_t(s)]), 1e-6)
        << "frame " << s;
  }
  // One epoch boundary -> one imbalance record, and the replanned
  // assignment is no worse than what was measured.
  ASSERT_EQ(report.epoch_imbalance.size(), 1u);
  ASSERT_EQ(report.epoch_imbalance_replanned.size(), 1u);
  EXPECT_LE(report.epoch_imbalance_replanned[0],
            report.epoch_imbalance[0] + 1e-9);
}

TEST_F(ExtensionTest, CompressedBlockTrafficIsLossless) {
  std::vector<img::Image> raw, packed;
  auto cfg = base_config();
  auto rep_raw = run_pipeline(cfg, &raw);
  cfg.compress_blocks = true;
  auto rep_packed = run_pipeline(cfg, &packed);
  for (std::size_t s = 0; s < raw.size(); ++s) {
    EXPECT_LT(img::rmse(raw[s], packed[s]), 1e-9) << "frame " << s;
  }
  EXPECT_EQ(rep_raw.block_bytes_raw, rep_packed.block_bytes_raw);
  EXPECT_EQ(rep_raw.block_bytes_sent, rep_raw.block_bytes_raw);
  // This dataset's wave fills much of the volume; compression still helps
  // (never hurts — payloads fall back to raw when RLE loses).
  EXPECT_LT(rep_packed.block_bytes_sent, rep_raw.block_bytes_raw);
}

TEST(CompressedBlocks, QuietEarlyStepsCompressHard) {
  // Before the wave arrives almost everything quantizes to zero: the
  // pipeline's block traffic must collapse.
  auto dir =
      (std::filesystem::temp_directory_path() /
       ("qv_quiet_ds." + std::to_string(::getpid())))
          .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  mesh::HexMesh fine(mesh::LinearOctree::uniform(kUnit, 3));
  io::DatasetWriter writer(dir, fine, 2, 3, 0.05f);
  quake::SyntheticQuake q;
  for (int s = 0; s < 3; ++s) {
    writer.write_step(q.sample_nodes(fine, 0.02f + 0.02f * float(s)));
  }
  writer.finish();

  PipelineConfig cfg;
  cfg.dataset_dir = dir;
  cfg.width = 48;
  cfg.height = 36;
  // Wide quantization window: the faint early motion quantizes to zero
  // nearly everywhere, as late-time quiet ground does at production scale.
  cfg.render.value_hi = 30.0f;
  cfg.input_procs = 1;
  cfg.render_procs = 2;
  cfg.compress_blocks = true;
  auto report = run_pipeline(cfg);
  EXPECT_LT(report.block_bytes_sent, report.block_bytes_raw / 5);
  std::filesystem::remove_all(dir);
}

TEST_F(ExtensionTest, CompressedBlocksWorkForEveryStrategy) {
  for (auto strategy :
       {IoStrategy::kTwoDipCollective, IoStrategy::kTwoDipIndependent}) {
    auto cfg = base_config();
    cfg.strategy = strategy;
    cfg.groups = 2;
    std::vector<img::Image> raw, packed;
    run_pipeline(cfg, &raw);
    cfg.compress_blocks = true;
    run_pipeline(cfg, &packed);
    for (std::size_t s = 0; s < raw.size(); ++s) {
      EXPECT_LT(img::rmse(raw[s], packed[s]), 1e-9);
    }
  }
}

TEST_F(ExtensionTest, RebalanceRequiresOneDip) {
  auto cfg = base_config();
  cfg.rebalance_every = 2;
  cfg.strategy = IoStrategy::kTwoDipIndependent;
  EXPECT_THROW(run_pipeline(cfg), std::runtime_error);
}

// --- in-situ ---------------------------------------------------------------

InsituConfig small_insitu() {
  InsituConfig cfg;
  cfg.domain = {{0, 0, 0}, {1000, 1000, 1000}};
  cfg.basin.basin_center = {500, 500, 1000};
  cfg.basin.basin_radius = 400;
  cfg.basin.basin_depth = 300;
  cfg.basin.surface_z = 1000;
  cfg.mesh_max_freq_hz = 0.8f;
  cfg.mesh_min_level = 2;
  cfg.mesh_max_level = 3;
  cfg.source.position = {500, 500, 700};
  cfg.source.peak_freq_hz = 0.8f;
  cfg.source.delay_s = 1.0f;
  cfg.source.amplitude = 1e11f;
  cfg.steps_per_snapshot = 6;
  cfg.snapshots = 3;
  cfg.render_procs = 2;
  cfg.width = 48;
  cfg.height = 36;
  cfg.render.value_hi = 0.05f;
  return cfg;
}

TEST(Insitu, ProducesFramesWhileSimulating) {
  auto cfg = small_insitu();
  std::vector<img::Image> frames;
  auto report = run_insitu(cfg, &frames);
  EXPECT_EQ(report.snapshots, 3);
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_GT(report.sim_seconds, 0.0);
  EXPECT_GT(report.sim_time_reached, 0.0);
  ASSERT_EQ(report.frame_seconds.size(), 3u);
  for (std::size_t i = 1; i < report.frame_seconds.size(); ++i) {
    EXPECT_GE(report.frame_seconds[i], report.frame_seconds[i - 1]);
  }
}

TEST(Insitu, FramesMatchOfflineRenderOfTheSameSolverState) {
  auto cfg = small_insitu();
  std::vector<img::Image> frames;
  run_insitu(cfg, &frames);

  // Re-run the identical (deterministic) simulation offline and render the
  // state at the final snapshot with the serial machinery.
  mesh::HexMesh mesh = build_insitu_mesh(cfg);
  quake::WaveSolver solver(mesh, cfg.basin.field(), cfg.solver);
  solver.add_source(cfg.source);
  for (int k = 0; k < cfg.steps_per_snapshot * cfg.snapshots; ++k) {
    solver.step();
  }
  auto scalar = io::derive_scalar(solver.velocity_interleaved(), 3,
                                  cfg.variable);
  auto q = io::quantize(scalar, cfg.render.value_lo, cfg.render.value_hi);
  for (std::size_t i = 0; i < scalar.size(); ++i) scalar[i] = q.dequantize(i);

  auto blocks = octree::decompose(mesh.octree(), cfg.block_level);
  octree::estimate_workloads(mesh.octree(), blocks,
                             octree::WorkloadModel::kCellCount);
  io::BlockNodeIndex index(mesh, blocks);
  std::vector<render::RenderBlock> rblocks;
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    rblocks.emplace_back(mesh, blocks[b], index.block_nodes(b));
    std::vector<float> vals;
    for (auto n : index.block_nodes(b)) vals.push_back(scalar[n]);
    rblocks.back().set_values(std::move(vals));
  }
  auto tf = render::TransferFunction::seismic();
  auto cam = render::Camera::overview(mesh.domain(), cfg.width, cfg.height);
  img::Image want = render::render_frame(cam, tf, cfg.render, rblocks, blocks,
                                         mesh.domain());
  EXPECT_LT(img::rmse(frames.back(), want), 1e-5);
}

TEST(Insitu, ParallelSimulationGroupMatchesSingleSimRank) {
  auto cfg = small_insitu();
  std::vector<img::Image> one, three;
  cfg.sim_procs = 1;
  run_insitu(cfg, &one);
  cfg.sim_procs = 3;
  auto report = run_insitu(cfg, &three);
  EXPECT_EQ(report.snapshots, cfg.snapshots);
  ASSERT_EQ(one.size(), three.size());
  for (std::size_t s = 0; s < one.size(); ++s) {
    // The distributed solver's force summation order differs, but the
    // rendered frames must agree to visual precision.
    EXPECT_LT(img::rmse(one[s], three[s]), 1e-3) << "snapshot " << s;
  }
}

TEST(Insitu, BadConfigThrows) {
  auto cfg = small_insitu();
  cfg.render_procs = 0;
  EXPECT_THROW(run_insitu(cfg), std::runtime_error);
  cfg = small_insitu();
  cfg.snapshots = 0;
  EXPECT_THROW(run_insitu(cfg), std::runtime_error);
}

}  // namespace
}  // namespace qv::core
