#include "core/serial.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>

#include "core/ground_overlay.hpp"
#include "quake/synthetic.hpp"

namespace qv::core {
namespace {

const Box3 kUnit{{0, 0, 0}, {1, 1, 1}};

// One small dataset on disk, shared by the whole suite.
class SerialTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // PID-unique: ctest runs each case as its own process, concurrently.
    dir_ = (std::filesystem::temp_directory_path() /
            ("qv_serial_ds." + std::to_string(::getpid())))
               .string();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    auto size = [](Vec3 p) { return p.z > 0.5f ? 0.12f : 0.3f; };
    mesh::HexMesh fine(mesh::LinearOctree::build(kUnit, size, 1, 3));
    io::DatasetWriter writer(dir_, fine, 2, 3, 0.25f);
    quake::SyntheticQuake q;
    for (int s = 0; s < 4; ++s) {
      writer.write_step(q.sample_nodes(fine, 0.5f + 0.5f * float(s)));
    }
    writer.finish();
  }
  static void TearDownTestSuite() { std::filesystem::remove_all(dir_); }

  static std::string dir_;
};
std::string SerialTest::dir_;

TEST_F(SerialTest, LoadStepLevelSizes) {
  io::DatasetReader reader(dir_);
  for (int level = 2; level <= reader.meta().finest_level; ++level) {
    auto data = load_step_level(reader, 0, level);
    EXPECT_EQ(data.size(), reader.level_mesh(level).node_count() * 3);
  }
  // -1 means finest.
  auto fine = load_step_level(reader, 0, -1);
  EXPECT_EQ(fine.size(),
            reader.level_mesh(reader.meta().finest_level).node_count() * 3);
}

TEST_F(SerialTest, ScalarFieldMatchesMagnitude) {
  io::DatasetReader reader(dir_);
  auto raw = load_step_level(reader, 1, -1);
  auto scalar = load_scalar_field(reader, 1, -1, false, 0.0f);
  ASSERT_EQ(scalar.size(), raw.size() / 3);
  for (std::size_t n = 0; n < scalar.size(); n += 11) {
    float m = std::sqrt(raw[3 * n] * raw[3 * n] + raw[3 * n + 1] * raw[3 * n + 1] +
                        raw[3 * n + 2] * raw[3 * n + 2]);
    EXPECT_FLOAT_EQ(scalar[n], m);
  }
}

TEST_F(SerialTest, EnhancementRaisesValuesWhereFieldChanges) {
  io::DatasetReader reader(dir_);
  auto plain = load_scalar_field(reader, 1, -1, false, 0.0f);
  auto enhanced = load_scalar_field(reader, 1, -1, true, 2.0f);
  double sum_p = 0, sum_e = 0;
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_GE(enhanced[i], plain[i] - 1e-6f);  // never decreases
    sum_p += plain[i];
    sum_e += enhanced[i];
  }
  EXPECT_GT(sum_e, sum_p);  // the wave is moving, so something is enhanced
}

TEST_F(SerialTest, RenderStepProducesNonEmptyImage) {
  io::DatasetReader reader(dir_);
  auto cam = render::Camera::overview(reader.meta().domain, 80, 60);
  auto tf = render::TransferFunction::seismic();
  SerialRenderConfig cfg;
  cfg.render.value_hi = 3.0f;
  render::RenderStats stats;
  img::Image im = render_step(reader, 1, cam, tf, cfg, &stats);
  EXPECT_EQ(im.width(), 80);
  EXPECT_GT(stats.samples, 0u);
  double alpha = 0;
  for (const auto& px : im.pixels()) alpha += px.a;
  EXPECT_GT(alpha, 1.0);  // the wavefront is visible
}

TEST_F(SerialTest, CoarserLevelRendersFasterButSimilar) {
  io::DatasetReader reader(dir_);
  auto cam = render::Camera::overview(reader.meta().domain, 64, 64);
  auto tf = render::TransferFunction::seismic();
  SerialRenderConfig fine_cfg;
  fine_cfg.render.value_hi = 3.0f;
  SerialRenderConfig coarse_cfg = fine_cfg;
  coarse_cfg.level = 2;

  render::RenderStats fine_stats, coarse_stats;
  img::Image fine = render_step(reader, 1, cam, tf, fine_cfg, &fine_stats);
  img::Image coarse = render_step(reader, 1, cam, tf, coarse_cfg, &coarse_stats);
  EXPECT_LT(coarse_stats.samples, fine_stats.samples);
  // Figure 3's claim at this small scale: the images stay close.
  EXPECT_LT(img::rmse(fine, coarse), 0.08);
}

TEST_F(SerialTest, QuantizedPathStaysCloseToFloatPath) {
  io::DatasetReader reader(dir_);
  auto cam = render::Camera::overview(reader.meta().domain, 64, 64);
  auto tf = render::TransferFunction::seismic();
  SerialRenderConfig cfg;
  cfg.render.value_hi = 3.0f;
  img::Image floats = render_step(reader, 1, cam, tf, cfg);
  cfg.quantize = true;
  img::Image quantized = render_step(reader, 1, cam, tf, cfg);
  EXPECT_LT(img::rmse(floats, quantized), 0.02);
  EXPECT_GT(img::rmse(floats, quantized), 0.0);  // quantization is real
}

TEST(GroundOverlay, ProjectsTextureOntoThePlane) {
  Box3 domain{{0, 0, 0}, {1, 1, 1}};
  auto cam = render::Camera::overview(domain, 64, 64);
  // Constant white texture: covered pixels are opaque white.
  std::vector<float> gray(16 * 16, 1.0f);
  img::Image im = render_ground_overlay(cam, domain, gray, 16, 16);
  int opaque = 0, transparent = 0;
  for (const auto& px : im.pixels()) {
    if (px.a > 0.99f) {
      ++opaque;
      EXPECT_NEAR(px.r, 1.0f, 1e-4f);
    } else {
      ++transparent;
    }
  }
  EXPECT_GT(opaque, 100);       // the plane is visible...
  EXPECT_GT(transparent, 100);  // ...but does not fill the frame
}

TEST(GroundOverlay, SamplesTextureOrientation) {
  Box3 domain{{0, 0, 0}, {1, 1, 1}};
  // Camera straight above the center looking down.
  render::Camera cam({0.5f, 0.5f, 3.0f}, {0.5f, 0.5f, 1.0f}, {0, 1, 0}, 30.0f,
                     64, 64);
  // Texture black for x<0.5, white for x>=0.5.
  const int g = 32;
  std::vector<float> gray(g * g);
  for (int y = 0; y < g; ++y)
    for (int x = 0; x < g; ++x)
      gray[std::size_t(y) * g + x] = x >= g / 2 ? 1.0f : 0.0f;
  img::Image im = render_ground_overlay(cam, domain, gray, g, g);
  // Left half of the image looks at x<0.5 (dark), right half bright.
  float left = im.at(10, 32).r;
  float right = im.at(53, 32).r;
  EXPECT_LT(left, 0.3f);
  EXPECT_GT(right, 0.7f);
}

}  // namespace
}  // namespace qv::core
