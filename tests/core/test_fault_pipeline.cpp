// End-to-end degraded-mode pipeline tests: a seeded FaultPlan injects
// transient read failures, payload corruption, permanently lost step files
// and rank kills; the pipeline must complete without deadlock, report exact
// fault counters, and keep every non-degraded frame bit-identical to the
// fault-free run.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <memory>

#include "core/pipeline.hpp"
#include "io/dataset.hpp"
#include "quake/synthetic.hpp"

namespace qv::core {
namespace {

const Box3 kUnit{{0, 0, 0}, {1, 1, 1}};
constexpr int kSteps = 3;
constexpr int kW = 64;
constexpr int kH = 48;

class FaultPipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // PID-unique: ctest runs each case as its own process, concurrently.
    dir_ = (std::filesystem::temp_directory_path() /
            ("qv_fault_ds." + std::to_string(::getpid())))
               .string();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    auto size = [](Vec3 p) { return p.z > 0.5f ? 0.12f : 0.3f; };
    mesh::HexMesh fine(mesh::LinearOctree::build(kUnit, size, 1, 3));
    io::DatasetWriter writer(dir_, fine, 2, 3, 0.25f);
    quake::SyntheticQuake q;
    for (int s = 0; s < kSteps; ++s) {
      writer.write_step(q.sample_nodes(fine, 0.6f + 0.4f * float(s)));
    }
    writer.finish();
  }
  static void TearDownTestSuite() { std::filesystem::remove_all(dir_); }

  static PipelineConfig base_config() {
    PipelineConfig cfg;
    cfg.dataset_dir = dir_;
    cfg.width = kW;
    cfg.height = kH;
    cfg.render.value_hi = 3.0f;
    cfg.input_procs = 2;
    cfg.render_procs = 3;
    return cfg;
  }

  static bool same_pixels(const img::Image& a, const img::Image& b) {
    auto pa = a.pixels();
    auto pb = b.pixels();
    return pa.size() == pb.size() &&
           std::memcmp(pa.data(), pb.data(), pa.size_bytes()) == 0;
  }

  // The fault-free run every faulty run is compared against.
  static std::vector<img::Image> baseline(const PipelineConfig& cfg) {
    PipelineConfig clean = cfg;
    clean.fault_plan.reset();
    std::vector<img::Image> frames;
    auto rep = run_pipeline(clean, &frames);
    EXPECT_EQ(rep.degraded_frames, 0);
    return frames;
  }

  static std::string dir_;
};
std::string FaultPipelineTest::dir_;

TEST_F(FaultPipelineTest, NullAndEmptyPlansMatchSeedBehavior) {
  auto cfg = base_config();
  auto base = baseline(cfg);

  cfg.fault_plan = std::make_shared<vmpi::FaultPlan>();  // installed, inert
  std::vector<img::Image> frames;
  auto rep = run_pipeline(cfg, &frames);
  ASSERT_EQ(frames.size(), base.size());
  for (std::size_t s = 0; s < frames.size(); ++s)
    EXPECT_TRUE(same_pixels(frames[s], base[s])) << "frame " << s;
  EXPECT_EQ(rep.retries, 0u);
  EXPECT_EQ(rep.corrupt_blocks_detected, 0u);
  EXPECT_EQ(rep.resend_requests, 0u);
  EXPECT_EQ(rep.dropped_steps, 0);
  EXPECT_EQ(rep.degraded_frames, 0);
  EXPECT_TRUE(rep.degraded_steps.empty());
}

TEST_F(FaultPipelineTest, TransientReadErrorIsRetriedInvisibly) {
  auto cfg = base_config();
  auto base = baseline(cfg);

  auto plan = std::make_shared<vmpi::FaultPlan>();
  plan->read_errors = {{0, 0}};  // input rank 0's first pread, first attempt
  cfg.fault_plan = plan;
  cfg.io_retry.base_delay = std::chrono::microseconds(50);

  std::vector<img::Image> frames;
  auto rep = run_pipeline(cfg, &frames);
  EXPECT_EQ(rep.retries, 1u);
  EXPECT_EQ(rep.degraded_frames, 0);
  EXPECT_EQ(rep.corrupt_blocks_detected, 0u);
  ASSERT_EQ(frames.size(), base.size());
  for (std::size_t s = 0; s < frames.size(); ++s)
    EXPECT_TRUE(same_pixels(frames[s], base[s])) << "frame " << s;
}

TEST_F(FaultPipelineTest, CorruptBlockIsDetectedAndResentBitIdentical) {
  for (auto strategy :
       {IoStrategy::kOneDip, IoStrategy::kTwoDipCollective,
        IoStrategy::kTwoDipIndependent}) {
    auto cfg = base_config();
    cfg.strategy = strategy;
    if (strategy != IoStrategy::kOneDip) cfg.groups = 2;
    auto base = baseline(cfg);

    auto plan = std::make_shared<vmpi::FaultPlan>();
    plan->corrupt_sends = {{0, 0}};  // input rank 0's first data message
    cfg.fault_plan = plan;

    std::vector<img::Image> frames;
    auto rep = run_pipeline(cfg, &frames);
    EXPECT_EQ(rep.corrupt_blocks_detected, 1u)
        << "strategy " << int(strategy);
    EXPECT_EQ(rep.resend_requests, 1u) << "strategy " << int(strategy);
    EXPECT_EQ(rep.degraded_frames, 0) << "strategy " << int(strategy);
    ASSERT_EQ(frames.size(), base.size());
    for (std::size_t s = 0; s < frames.size(); ++s)
      EXPECT_TRUE(same_pixels(frames[s], base[s]))
          << "strategy " << int(strategy) << " frame " << s;
  }
}

TEST_F(FaultPipelineTest, LostStepFileDegradesExactlyThatFrame) {
  auto cfg = base_config();
  auto base = baseline(cfg);

  auto plan = std::make_shared<vmpi::FaultPlan>();
  plan->fail_path_substrings = {"step_0001.bin"};  // 1DIP: input rank 1's step
  cfg.fault_plan = plan;
  cfg.io_retry.max_attempts = 2;
  cfg.io_retry.base_delay = std::chrono::microseconds(50);

  std::vector<img::Image> frames;
  auto rep = run_pipeline(cfg, &frames);
  EXPECT_EQ(rep.dropped_steps, 1);
  EXPECT_EQ(rep.degraded_frames, 1);
  ASSERT_EQ(rep.degraded_steps, (std::vector<int>{1}));
  EXPECT_EQ(rep.retries, 1u);  // max_attempts-1 exhausted retries
  ASSERT_EQ(frames.size(), base.size());
  // The degraded frame repeats the previous step's data; every other frame
  // is untouched.
  EXPECT_TRUE(same_pixels(frames[0], base[0]));
  EXPECT_TRUE(same_pixels(frames[1], frames[0]));
  EXPECT_TRUE(same_pixels(frames[2], base[2]));
}

TEST_F(FaultPipelineTest, DroppedStepsDoNotDiluteStageAverages) {
  // Regression: per-step averages used to divide every stage by the number
  // of completed steps, so a run where a fetch permanently failed (its
  // preprocess/send never ran) reported skewed averages. The report now
  // distinguishes attempted from completed input steps and divides each
  // stage by the steps that actually executed it.
  auto cfg = base_config();
  auto plan = std::make_shared<vmpi::FaultPlan>();
  plan->fail_path_substrings = {"step_0001.bin"};
  cfg.fault_plan = plan;
  cfg.io_retry.max_attempts = 2;
  cfg.io_retry.base_delay = std::chrono::microseconds(50);

  auto rep = run_pipeline(cfg);
  EXPECT_EQ(rep.dropped_steps, 1);
  // All three fetches started; the lost step never reached preprocess/send.
  EXPECT_EQ(rep.input_steps_attempted, kSteps);
  EXPECT_EQ(rep.input_steps_completed, kSteps - 1);
  // Stage timings stay meaningful per executed step.
  EXPECT_GT(rep.avg_fetch, 0.0);
  EXPECT_GT(rep.avg_preprocess, 0.0);
  EXPECT_GT(rep.avg_send, 0.0);

  // A clean run reports both counters equal.
  cfg.fault_plan.reset();
  auto clean = run_pipeline(cfg);
  EXPECT_EQ(clean.dropped_steps, 0);
  EXPECT_EQ(clean.input_steps_attempted, kSteps);
  EXPECT_EQ(clean.input_steps_completed, kSteps);
}

TEST_F(FaultPipelineTest, ReadDelayFaultSlowsFetchOnly) {
  // read_delay_ms models a slow disk: every pread sleeps, nothing fails.
  // Frames stay bit-identical to the fault-free run and avg_fetch absorbs
  // the latency; this knob is what the trace overlap tests lean on.
  auto cfg = base_config();
  auto base = baseline(cfg);
  auto plan = std::make_shared<vmpi::FaultPlan>();
  plan->read_delay_ms = 5.0;
  cfg.fault_plan = plan;
  std::vector<img::Image> frames;
  auto rep = run_pipeline(cfg, &frames);
  EXPECT_EQ(rep.dropped_steps, 0);
  EXPECT_EQ(rep.degraded_frames, 0);
  EXPECT_GE(rep.avg_fetch, 0.005);  // at least one delayed pread per step
  ASSERT_EQ(frames.size(), base.size());
  for (std::size_t s = 0; s < frames.size(); ++s)
    EXPECT_TRUE(same_pixels(frames[s], base[s])) << "frame " << s;
}

TEST_F(FaultPipelineTest, CombinedFaultsMeetTheAcceptanceCriteria) {
  // The ISSUE's acceptance plan: >=1 transient read failure, >=1 corrupt
  // block, one permanently failed step -- all in a single run.
  auto cfg = base_config();
  auto base = baseline(cfg);

  auto plan = std::make_shared<vmpi::FaultPlan>();
  plan->read_errors = {{0, 0}};
  plan->corrupt_sends = {{0, 0}};
  plan->fail_path_substrings = {"step_0001.bin"};
  cfg.fault_plan = plan;
  cfg.io_retry.base_delay = std::chrono::microseconds(50);

  std::vector<img::Image> frames;
  auto rep = run_pipeline(cfg, &frames);

  EXPECT_GE(rep.retries, 1u);
  EXPECT_EQ(rep.corrupt_blocks_detected, 1u);
  EXPECT_EQ(rep.resend_requests, 1u);
  EXPECT_EQ(rep.dropped_steps, 1);
  EXPECT_EQ(rep.degraded_frames, 1);
  ASSERT_EQ(rep.degraded_steps, (std::vector<int>{1}));
  ASSERT_EQ(frames.size(), base.size());
  EXPECT_TRUE(same_pixels(frames[0], base[0]));
  EXPECT_TRUE(same_pixels(frames[1], frames[0]));  // frame repeat
  EXPECT_TRUE(same_pixels(frames[2], base[2]));
}

TEST_F(FaultPipelineTest, KilledInputRankDegradesItsStepsOnly) {
  auto cfg = base_config();
  auto base = baseline(cfg);

  auto plan = std::make_shared<vmpi::FaultPlan>();
  plan->kill_rank = 1;     // 1DIP input rank 1 serves step 1 (of 0..2)
  plan->kill_at_step = 1;  // dies before fetching it
  cfg.fault_plan = plan;
  cfg.recv_timeout_ms = 200;

  std::vector<img::Image> frames;
  auto rep = run_pipeline(cfg, &frames);
  EXPECT_EQ(rep.degraded_frames, 1);
  ASSERT_EQ(rep.degraded_steps, (std::vector<int>{1}));
  ASSERT_EQ(frames.size(), base.size());
  EXPECT_TRUE(same_pixels(frames[0], base[0]));
  EXPECT_TRUE(same_pixels(frames[1], frames[0]));
  EXPECT_TRUE(same_pixels(frames[2], base[2]));
}

TEST_F(FaultPipelineTest, KillConfigurationIsValidated) {
  auto plan = std::make_shared<vmpi::FaultPlan>();
  plan->kill_rank = 0;
  plan->kill_at_step = 0;

  // A kill without a receive timeout would deadlock; refuse it.
  auto cfg = base_config();
  cfg.fault_plan = plan;
  EXPECT_THROW(run_pipeline(cfg), std::runtime_error);

  // 2DIP groups cannot survive a dead member.
  cfg.recv_timeout_ms = 100;
  cfg.strategy = IoStrategy::kTwoDipIndependent;
  cfg.groups = 2;
  EXPECT_THROW(run_pipeline(cfg), std::runtime_error);

  // Only input ranks are killable.
  cfg.strategy = IoStrategy::kOneDip;
  plan->kill_rank = cfg.total_input_procs();  // a renderer
  EXPECT_THROW(run_pipeline(cfg), std::runtime_error);
}

TEST_F(FaultPipelineTest, RecvTimeoutAloneChangesNothing) {
  // A timeout budget without faults must not alter frames or counters.
  auto cfg = base_config();
  auto base = baseline(cfg);
  cfg.recv_timeout_ms = 5000;
  std::vector<img::Image> frames;
  auto rep = run_pipeline(cfg, &frames);
  EXPECT_EQ(rep.degraded_frames, 0);
  EXPECT_EQ(rep.dropped_steps, 0);
  ASSERT_EQ(frames.size(), base.size());
  for (std::size_t s = 0; s < frames.size(); ++s)
    EXPECT_TRUE(same_pixels(frames[s], base[s])) << "frame " << s;
}

}  // namespace
}  // namespace qv::core
