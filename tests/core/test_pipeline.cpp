// Integration tests of the full distributed pipeline: every I/O strategy,
// compositor, and preprocessing option must reproduce the serial reference
// renderer's frames on a real on-disk dataset.
#include "core/pipeline.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>

#include "core/serial.hpp"
#include "metrics/metrics.hpp"
#include "quake/synthetic.hpp"
#include "util/stats.hpp"

namespace qv::core {
namespace {

const Box3 kUnit{{0, 0, 0}, {1, 1, 1}};
constexpr int kSteps = 3;
constexpr int kW = 64;
constexpr int kH = 48;
constexpr float kValueHi = 3.0f;

class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // PID-unique: ctest runs each case as its own process, concurrently; a
    // shared path would be re-created by one case mid-read of another.
    dir_ = (std::filesystem::temp_directory_path() /
            ("qv_pipe_ds." + std::to_string(::getpid())))
               .string();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    auto size = [](Vec3 p) { return p.z > 0.5f ? 0.12f : 0.3f; };
    mesh::HexMesh fine(mesh::LinearOctree::build(kUnit, size, 1, 3));
    io::DatasetWriter writer(dir_, fine, 2, 3, 0.25f);
    quake::SyntheticQuake q;
    for (int s = 0; s < kSteps; ++s) {
      writer.write_step(q.sample_nodes(fine, 0.6f + 0.4f * float(s)));
    }
    writer.finish();
  }
  static void TearDownTestSuite() { std::filesystem::remove_all(dir_); }

  static PipelineConfig base_config() {
    PipelineConfig cfg;
    cfg.dataset_dir = dir_;
    cfg.width = kW;
    cfg.height = kH;
    cfg.render.value_hi = kValueHi;
    cfg.input_procs = 2;
    cfg.render_procs = 3;
    return cfg;
  }

  // Serial frames with the identical quantized path.
  static std::vector<img::Image> reference_frames(bool enhancement) {
    io::DatasetReader reader(dir_);
    auto cam = render::Camera::overview(reader.meta().domain, kW, kH);
    auto tf = render::TransferFunction::seismic();
    SerialRenderConfig cfg;
    cfg.render.value_hi = kValueHi;
    cfg.quantize = true;
    cfg.enhancement = enhancement;
    std::vector<img::Image> frames;
    for (int s = 0; s < kSteps; ++s) {
      frames.push_back(render_step(reader, s, cam, tf, cfg));
    }
    return frames;
  }

  static void expect_frames_match(const std::vector<img::Image>& got,
                                  const std::vector<img::Image>& want,
                                  double tol = 1e-5) {
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t s = 0; s < got.size(); ++s) {
      EXPECT_LT(img::rmse(got[s], want[s]), tol) << "frame " << s;
    }
  }

  static std::string dir_;
};
std::string PipelineTest::dir_;

TEST_F(PipelineTest, OneDipMatchesSerialReference) {
  auto cfg = base_config();
  cfg.strategy = IoStrategy::kOneDip;
  std::vector<img::Image> frames;
  auto report = run_pipeline(cfg, &frames);
  EXPECT_EQ(report.steps, kSteps);
  ASSERT_EQ(report.frame_seconds.size(), std::size_t(kSteps));
  expect_frames_match(frames, reference_frames(false));
  EXPECT_GT(report.avg_render, 0.0);
  EXPECT_GT(report.avg_fetch, 0.0);
}

TEST_F(PipelineTest, TwoDipCollectiveMatchesSerialReference) {
  auto cfg = base_config();
  cfg.strategy = IoStrategy::kTwoDipCollective;
  cfg.input_procs = 2;  // group width
  cfg.groups = 2;
  std::vector<img::Image> frames;
  run_pipeline(cfg, &frames);
  expect_frames_match(frames, reference_frames(false));
}

TEST_F(PipelineTest, TwoDipIndependentMatchesSerialReference) {
  auto cfg = base_config();
  cfg.strategy = IoStrategy::kTwoDipIndependent;
  cfg.input_procs = 3;
  cfg.groups = 2;
  std::vector<img::Image> frames;
  run_pipeline(cfg, &frames);
  expect_frames_match(frames, reference_frames(false));
}

TEST_F(PipelineTest, AllStrategiesAgreeWithEachOther) {
  std::vector<std::vector<img::Image>> results;
  for (auto strategy :
       {IoStrategy::kOneDip, IoStrategy::kTwoDipCollective,
        IoStrategy::kTwoDipIndependent}) {
    auto cfg = base_config();
    cfg.strategy = strategy;
    cfg.groups = 2;
    std::vector<img::Image> frames;
    run_pipeline(cfg, &frames);
    results.push_back(std::move(frames));
  }
  for (std::size_t k = 1; k < results.size(); ++k) {
    ASSERT_EQ(results[k].size(), results[0].size());
    for (std::size_t s = 0; s < results[0].size(); ++s) {
      EXPECT_LT(img::rmse(results[k][s], results[0][s]), 1e-6)
          << "strategy " << k << " frame " << s;
    }
  }
}

TEST_F(PipelineTest, RendererCountInvariance) {
  std::vector<img::Image> one, many;
  auto cfg = base_config();
  cfg.render_procs = 1;
  run_pipeline(cfg, &one);
  cfg = base_config();
  cfg.render_procs = 5;
  cfg.assign = octree::AssignStrategy::kLargestFirst;
  run_pipeline(cfg, &many);
  ASSERT_EQ(one.size(), many.size());
  for (std::size_t s = 0; s < one.size(); ++s) {
    EXPECT_LT(img::rmse(one[s], many[s]), 1e-6) << "frame " << s;
  }
}

TEST_F(PipelineTest, DirectSendCompositorAgreesWithSlic) {
  std::vector<img::Image> slic_frames, ds_frames;
  auto cfg = base_config();
  cfg.compositor = Compositor::kSlic;
  run_pipeline(cfg, &slic_frames);
  cfg.compositor = Compositor::kDirectSend;
  run_pipeline(cfg, &ds_frames);
  for (std::size_t s = 0; s < slic_frames.size(); ++s) {
    EXPECT_LT(img::rmse(slic_frames[s], ds_frames[s]), 1e-6);
  }
}

TEST_F(PipelineTest, BinarySwapCompositorMatchesDirectSendExactly) {
  // Binary swap is now the deferred-blend k=2 radix-k: identical per-pixel
  // float sequence as direct-send, so the frames must be bit-equal at
  // pipeline granularity too (the old eager swap was only approximate on
  // the pipeline's depth-interleaved morton assignment).
  std::vector<img::Image> ds_frames, bs_frames;
  auto cfg = base_config();
  cfg.render_procs = 4;  // power of two, as binary swap requires
  cfg.compositor = Compositor::kDirectSend;
  run_pipeline(cfg, &ds_frames);
  cfg.compositor = Compositor::kBinarySwap;
  auto rep = run_pipeline(cfg, &bs_frames);
  EXPECT_EQ(rep.steps, kSteps);
  EXPECT_EQ(rep.compositor, "binary-swap");
  ASSERT_EQ(ds_frames.size(), bs_frames.size());
  for (std::size_t s = 0; s < ds_frames.size(); ++s) {
    EXPECT_EQ(img::rmse(ds_frames[s], bs_frames[s]), 0.0) << "frame " << s;
  }
}

TEST_F(PipelineTest, RadixKCompositorMatchesDirectSendExactly) {
  std::vector<img::Image> ds_frames, rk_frames;
  auto cfg = base_config();
  ASSERT_EQ(cfg.render_procs, 3);  // not a power of two, not 3-smooth-free
  cfg.compositor = Compositor::kDirectSend;
  run_pipeline(cfg, &ds_frames);
  cfg.compositor = Compositor::kRadixK;
  cfg.composite_k = 3;
  auto rep = run_pipeline(cfg, &rk_frames);
  EXPECT_EQ(rep.compositor, "radix-k(k=3)");
  ASSERT_EQ(ds_frames.size(), rk_frames.size());
  for (std::size_t s = 0; s < ds_frames.size(); ++s) {
    EXPECT_EQ(img::rmse(ds_frames[s], rk_frames[s]), 0.0) << "frame " << s;
  }
}

TEST_F(PipelineTest, BinarySwapRoutesToRadixKOnNonPowerOfTwoRenderers) {
  // render_procs = 3 cannot run binary swap; the pipeline must reroute to
  // radix-k with k=2 (not degrade to direct-send) and say so in the report.
  std::vector<img::Image> bs_frames, ds_frames;
  auto cfg = base_config();
  ASSERT_EQ(cfg.render_procs, 3);
  cfg.compositor = Compositor::kBinarySwap;
  auto rep = run_pipeline(cfg, &bs_frames);
  EXPECT_EQ(rep.steps, kSteps);
  EXPECT_EQ(rep.compositor, "radix-k(k=2)");
  cfg.compositor = Compositor::kDirectSend;
  auto ds_rep = run_pipeline(cfg, &ds_frames);
  EXPECT_EQ(ds_rep.compositor, "direct-send");
  ASSERT_EQ(bs_frames.size(), ds_frames.size());
  for (std::size_t s = 0; s < bs_frames.size(); ++s) {
    EXPECT_EQ(img::rmse(bs_frames[s], ds_frames[s]), 0.0) << "frame " << s;
  }
}

TEST_F(PipelineTest, SelectedCompositorLandsInMetricsRegistry) {
  // qv-run-report carries the selected algorithm via the
  // compositing.algo.* counters in the metrics snapshot.
  metrics::enable();
  auto cfg = base_config();
  cfg.compositor = Compositor::kBinarySwap;  // 3 renderers -> radix-k(k=2)
  run_pipeline(cfg);
  auto snap = metrics::collect();
  metrics::disable();
  ASSERT_TRUE(snap.counters.count("compositing.algo.radix_k"));
  EXPECT_GE(snap.counters.at("compositing.algo.radix_k"), 1u);
  EXPECT_GT(snap.counters.at("compositing.bytes_sent"), 0u);
}

TEST_F(PipelineTest, SingleFrameRunHasZeroInterframe) {
  auto cfg = base_config();
  cfg.num_steps = 1;
  auto report = run_pipeline(cfg);
  EXPECT_EQ(report.steps, 1);
  ASSERT_EQ(report.frame_seconds.size(), 1u);
  // One frame has no interframe delay; the report must say exactly 0.0,
  // never NaN and never the lone frame's completion time.
  EXPECT_EQ(report.avg_interframe, 0.0);
}

TEST_F(PipelineTest, InterframeUsesSteadyStateWindow) {
  auto cfg = base_config();
  auto report = run_pipeline(cfg);
  // The reported value is pinned to the second-half window of the recorded
  // completion times — recomputing it from frame_seconds must agree.
  EXPECT_DOUBLE_EQ(report.avg_interframe,
                   steady_interframe(report.frame_seconds));
  EXPECT_EQ(report.input_steps_attempted, kSteps);
  EXPECT_EQ(report.input_steps_completed, kSteps);
}

TEST_F(PipelineTest, CompressedCompositingIsLossless) {
  std::vector<img::Image> raw, packed;
  auto cfg = base_config();
  run_pipeline(cfg, &raw);
  cfg.compress_compositing = true;
  run_pipeline(cfg, &packed);
  for (std::size_t s = 0; s < raw.size(); ++s) {
    EXPECT_LT(img::rmse(raw[s], packed[s]), 1e-9);  // RLE is exact
  }
}

TEST_F(PipelineTest, EnhancementPipelineMatchesEnhancedSerial) {
  auto cfg = base_config();
  cfg.enhancement = true;
  std::vector<img::Image> frames;
  run_pipeline(cfg, &frames);
  expect_frames_match(frames, reference_frames(true));
}

TEST_F(PipelineTest, AdaptiveLevelPipelineRuns) {
  auto cfg = base_config();
  cfg.adaptive_level = 2;
  std::vector<img::Image> frames;
  auto report = run_pipeline(cfg, &frames);
  EXPECT_EQ(report.steps, kSteps);
  // The coarse image is close to the fine one (Figure 3 behaviour).
  auto fine = reference_frames(false);
  EXPECT_LT(img::rmse(frames[1], fine[1]), 0.08);
}

TEST_F(PipelineTest, LicOverlayAddsTheGroundLayer) {
  auto cfg = base_config();
  cfg.lic_overlay = true;
  cfg.lic_resolution = 32;
  std::vector<img::Image> with_lic;
  run_pipeline(cfg, &with_lic);
  cfg.lic_overlay = false;
  std::vector<img::Image> without;
  run_pipeline(cfg, &without);
  ASSERT_EQ(with_lic.size(), without.size());
  // The LIC layer must add opaque coverage where the volume was transparent.
  double a_with = 0, a_without = 0;
  for (const auto& px : with_lic[1].pixels()) a_with += px.a;
  for (const auto& px : without[1].pixels()) a_without += px.a;
  EXPECT_GT(a_with, a_without * 1.2);
}

TEST_F(PipelineTest, LicRequiresOneDip) {
  auto cfg = base_config();
  cfg.lic_overlay = true;
  cfg.strategy = IoStrategy::kTwoDipIndependent;
  EXPECT_THROW(run_pipeline(cfg), std::runtime_error);
}

TEST_F(PipelineTest, WritesFramesToDisk) {
  auto out = (std::filesystem::temp_directory_path() /
              ("qv_pipe_out." + std::to_string(::getpid())))
                 .string();
  std::filesystem::remove_all(out);
  std::filesystem::create_directories(out);
  auto cfg = base_config();
  cfg.output_dir = out;
  run_pipeline(cfg);
  for (int s = 0; s < kSteps; ++s) {
    char name[64];
    std::snprintf(name, sizeof(name), "/frame_%04d.ppm", s);
    EXPECT_TRUE(std::filesystem::exists(out + name));
  }
  std::filesystem::remove_all(out);
}

TEST_F(PipelineTest, ReportTimingsAreConsistent) {
  auto cfg = base_config();
  auto report = run_pipeline(cfg);
  EXPECT_GT(report.avg_fetch, 0.0);
  EXPECT_GE(report.avg_preprocess, 0.0);
  EXPECT_GE(report.avg_send, 0.0);
  EXPECT_GT(report.avg_render, 0.0);
  EXPECT_GT(report.avg_composite, 0.0);
  EXPECT_GT(report.composite_bytes, 0u);
  ASSERT_EQ(report.frame_seconds.size(), std::size_t(kSteps));
  for (std::size_t i = 1; i < report.frame_seconds.size(); ++i) {
    EXPECT_GE(report.frame_seconds[i], report.frame_seconds[i - 1]);
  }
}

TEST_F(PipelineTest, BadConfigurationsThrow) {
  auto cfg = base_config();
  cfg.render_procs = 0;
  EXPECT_THROW(run_pipeline(cfg), std::runtime_error);
  cfg = base_config();
  cfg.dataset_dir = "/nonexistent/qv_nowhere";
  EXPECT_THROW(run_pipeline(cfg), std::runtime_error);
}

}  // namespace
}  // namespace qv::core
