// Property-based fuzz of the vmpi collectives and indexed-block file views.
// Each round draws a random rank count, payload shapes, and values from a
// seeded generator, runs the collective, and checks the result against a
// scalar reference computed outside the communicator. All sums use
// integer-valued doubles so the expected result is exact regardless of
// reduction order. Failing rounds print their seed for replay; QV_FUZZ_SEED
// shifts the whole family (CI runs two seeds).
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <vector>

#include "util/rng.hpp"
#include "vmpi/comm.hpp"
#include "vmpi/file.hpp"

namespace qv::vmpi {
namespace {

std::uint64_t base_seed() {
  if (const char* s = std::getenv("QV_FUZZ_SEED")) {
    return std::strtoull(s, nullptr, 10);
  }
  return 1;
}

// The per-rank payload is a pure function of (seed, rank), so the scalar
// reference can reconstruct any rank's contribution without communicating.
std::vector<std::uint8_t> blob_for(std::uint64_t seed, int rank) {
  Rng rng(seed ^ (0xb10b0000u + std::uint64_t(rank)));
  std::vector<std::uint8_t> out(1 + rng.next_below(97));
  for (auto& b : out) b = std::uint8_t(rng.next_below(256));
  return out;
}

std::vector<double> doubles_for(std::uint64_t seed, int rank, std::size_t n) {
  Rng rng(seed ^ (0xd0b1e000u + std::uint64_t(rank)));
  std::vector<double> out(n);
  for (auto& v : out) v = double(rng.next_below(1000));
  return out;
}

TEST(CollectivesFuzz, BcastGatherAllgatherMatchScalarReference) {
  const std::uint64_t base = base_seed();
  for (int round = 0; round < 8; ++round) {
    std::uint64_t state = base * 6364136223846793005ULL + std::uint64_t(round);
    std::uint64_t seed = splitmix64(state);
    SCOPED_TRACE(::testing::Message()
                 << "round " << round << " seed " << seed
                 << " (QV_FUZZ_SEED=" << base << ")");
    Rng meta(seed);
    const int nranks = 1 + int(meta.next_below(8));
    const int root = int(meta.next_below(std::uint64_t(nranks)));

    Runtime::run(nranks, [&](Comm& comm) {
      // bcast: everyone converges on the root's blob.
      std::vector<std::uint8_t> buf;
      if (comm.rank() == root) buf = blob_for(seed, root);
      comm.bcast(buf, root);
      EXPECT_EQ(buf, blob_for(seed, root));

      // gather: root sees every rank's blob, in rank order.
      auto mine = blob_for(seed, comm.rank());
      auto gathered = comm.gather(mine, root);
      if (comm.rank() == root) {
        ASSERT_EQ(int(gathered.size()), nranks);
        for (int r = 0; r < nranks; ++r)
          EXPECT_EQ(gathered[std::size_t(r)], blob_for(seed, r)) << "rank " << r;
      }

      // allgather: same contract, everywhere.
      auto all = comm.allgather(mine);
      ASSERT_EQ(int(all.size()), nranks);
      for (int r = 0; r < nranks; ++r)
        EXPECT_EQ(all[std::size_t(r)], blob_for(seed, r)) << "rank " << r;
    });
  }
}

TEST(CollectivesFuzz, AllreduceMatchesScalarReference) {
  const std::uint64_t base = base_seed();
  for (int round = 0; round < 8; ++round) {
    std::uint64_t state = base * 2862933555777941757ULL + std::uint64_t(round);
    std::uint64_t seed = splitmix64(state);
    SCOPED_TRACE(::testing::Message()
                 << "round " << round << " seed " << seed
                 << " (QV_FUZZ_SEED=" << base << ")");
    Rng meta(seed);
    const int nranks = 1 + int(meta.next_below(8));
    const std::size_t len = 1 + meta.next_below(50);

    // Scalar reference: element-wise sum and global max over all ranks.
    std::vector<double> want_sum(len, 0.0);
    double want_max = -1.0;
    for (int r = 0; r < nranks; ++r) {
      auto vals = doubles_for(seed, r, len);
      for (std::size_t i = 0; i < len; ++i) want_sum[i] += vals[i];
      want_max = std::max(want_max, vals[0]);
    }

    Runtime::run(nranks, [&](Comm& comm) {
      auto vals = doubles_for(seed, comm.rank(), len);
      std::vector<double> sum = vals;
      comm.allreduce_sum(sum);
      // Integer-valued summands: the result is exact in any order.
      for (std::size_t i = 0; i < len; ++i)
        ASSERT_EQ(sum[i], want_sum[i]) << "elem " << i;

      std::vector<float> fsum(len);
      for (std::size_t i = 0; i < len; ++i) fsum[i] = float(vals[i]);
      comm.allreduce_sum_f(fsum);
      for (std::size_t i = 0; i < len; ++i)
        ASSERT_EQ(fsum[i], float(want_sum[i])) << "elem " << i;

      EXPECT_EQ(comm.allreduce_max(vals[0]), want_max);

      // allgather_value round-trips a trivially-copyable struct.
      struct P { int r; double v; };
      auto ps = comm.allgather_value(P{comm.rank(), vals[0]});
      ASSERT_EQ(int(ps.size()), nranks);
      for (int r = 0; r < nranks; ++r) {
        EXPECT_EQ(ps[std::size_t(r)].r, r);
        EXPECT_EQ(ps[std::size_t(r)].v, doubles_for(seed, r, len)[0]);
      }
    });
  }
}

// Indexed-block collective reads: random sorted unique block offsets per
// rank, random block widths and sieve thresholds, checked against the
// closed-form file contents (element i holds i as a little-endian uint32).
TEST(CollectivesFuzz, IndexedBlockReadAllMatchesDirectRead) {
  const std::uint64_t base = base_seed();
  const std::size_t n_elems = 4096;

  std::string path =
      (std::filesystem::temp_directory_path() /
       ("qv_fuzz_idx.bin." + std::to_string(::getpid())))
          .string();
  {
    std::ofstream os(path, std::ios::binary);
    for (std::uint32_t i = 0; i < n_elems; ++i)
      os.write(reinterpret_cast<const char*>(&i), sizeof(i));
  }

  for (int round = 0; round < 6; ++round) {
    std::uint64_t state = base * 0x9e3779b97f4a7c15ULL + std::uint64_t(round);
    std::uint64_t seed = splitmix64(state);
    SCOPED_TRACE(::testing::Message()
                 << "round " << round << " seed " << seed
                 << " (QV_FUZZ_SEED=" << base << ")");
    Rng meta(seed);
    const int nranks = 1 + int(meta.next_below(6));
    const std::size_t block_elems = 1 + meta.next_below(7);
    const double sieve = meta.next_double();  // exercise both strategies

    Runtime::run(nranks, [&](Comm& comm) {
      // Sorted unique block starts, spaced so blocks never cross EOF.
      Rng rng(seed ^ (0xf11e0000u + std::uint64_t(comm.rank())));
      std::set<std::uint64_t> starts;
      std::size_t nblocks = 1 + rng.next_below(40);
      std::uint64_t limit = (n_elems / block_elems);
      for (std::size_t i = 0; i < nblocks; ++i)
        starts.insert(rng.next_below(limit) * block_elems);

      IndexedBlockView view;
      view.elem_bytes = sizeof(std::uint32_t);
      view.block_elems = block_elems;
      view.block_offsets.assign(starts.begin(), starts.end());

      File f(comm, path);
      f.set_view(view);
      std::vector<std::uint32_t> out(view.block_offsets.size() * block_elems);
      f.read_all({reinterpret_cast<std::uint8_t*>(out.data()),
                  out.size() * sizeof(std::uint32_t)},
                 sieve);

      std::size_t k = 0;
      for (auto start : view.block_offsets)
        for (std::size_t e = 0; e < block_elems; ++e, ++k)
          ASSERT_EQ(out[k], std::uint32_t(start + e))
              << "rank " << comm.rank() << " block@" << start << " elem " << e;
      EXPECT_EQ(f.stats().useful_bytes,
                out.size() * sizeof(std::uint32_t));
    });
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace qv::vmpi
