#include "vmpi/file.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "util/rng.hpp"

namespace qv::vmpi {
namespace {

// A file of `n` float records whose value encodes the index. PID-qualified:
// ctest runs each case as its own process, concurrently, and parameterized
// cases would otherwise write/remove the same path under each other.
std::string make_test_file(std::size_t n, const char* name) {
  std::string path = (std::filesystem::temp_directory_path() /
                      (std::string(name) + "." + std::to_string(::getpid())))
                         .string();
  std::ofstream os(path, std::ios::binary);
  for (std::size_t i = 0; i < n; ++i) {
    float v = float(i) * 0.5f;
    os.write(reinterpret_cast<const char*>(&v), sizeof(v));
  }
  return path;
}

TEST(File, ReadAtContiguous) {
  auto path = make_test_file(1000, "qv_file_a.bin");
  Runtime::run(3, [&](Comm& comm) {
    File f(comm, path);
    EXPECT_EQ(f.size_bytes(), 4000u);
    // Each rank reads its own third.
    std::size_t per = 1000 / 3;
    std::size_t first = per * std::size_t(comm.rank());
    std::vector<float> buf(per);
    f.read_at(first * 4, {reinterpret_cast<std::uint8_t*>(buf.data()), per * 4});
    for (std::size_t i = 0; i < per; ++i) {
      ASSERT_FLOAT_EQ(buf[i], float(first + i) * 0.5f);
    }
    EXPECT_EQ(f.stats().useful_bytes, per * 4);
  });
  std::remove(path.c_str());
}

TEST(File, OpenMissingFileThrows) {
  Runtime::run(1, [](Comm& comm) {
    EXPECT_THROW(File(comm, "/nonexistent/definitely_missing.bin"),
                 std::runtime_error);
  });
}

TEST(File, CollectiveReadInterleavedBlocks) {
  // Rank r requests every 4th record starting at r: a fully noncontiguous,
  // interleaved pattern; all data together covers the file.
  const std::size_t n = 4096;
  auto path = make_test_file(n, "qv_file_b.bin");
  Runtime::run(4, [&](Comm& comm) {
    File f(comm, path);
    IndexedBlockView view;
    view.elem_bytes = 4;
    view.block_elems = 1;
    for (std::size_t i = std::size_t(comm.rank()); i < n; i += 4) {
      view.block_offsets.push_back(i);
    }
    f.set_view(view);
    std::vector<float> out(view.block_offsets.size());
    f.read_all({reinterpret_cast<std::uint8_t*>(out.data()), out.size() * 4});
    for (std::size_t i = 0; i < out.size(); ++i) {
      ASSERT_FLOAT_EQ(out[i], float(comm.rank() + 4 * i) * 0.5f)
          << "rank " << comm.rank() << " i " << i;
    }
  });
  std::remove(path.c_str());
}

TEST(File, CollectiveReadMultiElementBlocks) {
  const std::size_t n = 2000;
  auto path = make_test_file(n, "qv_file_c.bin");
  Runtime::run(3, [&](Comm& comm) {
    File f(comm, path);
    IndexedBlockView view;
    view.elem_bytes = 4;
    view.block_elems = 10;  // blocks of 10 records
    // Rank r takes block starts at 100*r, 100*r+300, ..., deliberately
    // unsorted to exercise the out-of-order mapping.
    std::vector<std::uint64_t> offs = {std::uint64_t(100 * comm.rank() + 600),
                                       std::uint64_t(100 * comm.rank()),
                                       std::uint64_t(100 * comm.rank() + 300)};
    view.block_offsets = offs;
    f.set_view(view);
    std::vector<float> out(30);
    f.read_all({reinterpret_cast<std::uint8_t*>(out.data()), 120});
    for (int b = 0; b < 3; ++b) {
      for (int i = 0; i < 10; ++i) {
        ASSERT_FLOAT_EQ(out[std::size_t(b * 10 + i)],
                        float(offs[std::size_t(b)] + std::uint64_t(i)) * 0.5f);
      }
    }
  });
  std::remove(path.c_str());
}

TEST(File, CollectiveReadWithEmptyParticipant) {
  const std::size_t n = 256;
  auto path = make_test_file(n, "qv_file_d.bin");
  Runtime::run(3, [&](Comm& comm) {
    File f(comm, path);
    IndexedBlockView view;
    view.elem_bytes = 4;
    view.block_elems = 8;
    if (comm.rank() != 1) {  // rank 1 requests nothing
      view.block_offsets = {std::uint64_t(comm.rank() * 64),
                            std::uint64_t(comm.rank() * 64 + 16)};
    }
    f.set_view(view);
    std::vector<std::uint8_t> out(view.total_bytes());
    f.read_all(out);
    if (comm.rank() != 1) {
      const float* vals = reinterpret_cast<const float*>(out.data());
      ASSERT_FLOAT_EQ(vals[0], float(comm.rank() * 64) * 0.5f);
      ASSERT_FLOAT_EQ(vals[8], float(comm.rank() * 64 + 16) * 0.5f);
    }
  });
  std::remove(path.c_str());
}

TEST(File, CollectiveReadNothingAnywhere) {
  auto path = make_test_file(16, "qv_file_e.bin");
  Runtime::run(2, [&](Comm& comm) {
    File f(comm, path);
    f.set_view({4, 1, {}});
    std::vector<std::uint8_t> out;
    f.read_all(out);  // must complete without deadlock
  });
  std::remove(path.c_str());
}

class SieveTest : public ::testing::TestWithParam<double> {};

TEST_P(SieveTest, ResultsIdenticalAcrossSieveThresholds) {
  // The sieving heuristic must never change WHAT is read, only how.
  const std::size_t n = 3000;
  auto path = make_test_file(n, "qv_file_f.bin");
  const double threshold = GetParam();
  Runtime::run(4, [&](Comm& comm) {
    Rng rng(std::uint64_t(comm.rank()) * 13 + 7);
    File f(comm, path);
    IndexedBlockView view;
    view.elem_bytes = 4;
    view.block_elems = 5;
    for (int i = 0; i < 40; ++i) {
      view.block_offsets.push_back(rng.next_below(n - 5));
    }
    f.set_view(view);
    std::vector<float> out(view.block_offsets.size() * 5);
    f.read_all({reinterpret_cast<std::uint8_t*>(out.data()), out.size() * 4},
               threshold);
    for (std::size_t b = 0; b < view.block_offsets.size(); ++b) {
      for (std::size_t i = 0; i < 5; ++i) {
        ASSERT_FLOAT_EQ(out[b * 5 + i],
                        float(view.block_offsets[b] + i) * 0.5f);
      }
    }
  });
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Thresholds, SieveTest,
                         ::testing::Values(0.0, 0.35, 0.9, 1.0));

TEST(File, StatsDistinguishSievingFromSparseReads) {
  const std::size_t n = 100000;
  auto path = make_test_file(n, "qv_file_g.bin");
  Runtime::run(1, [&](Comm& comm) {
    // Sparse pattern: two tiny blocks very far apart.
    IndexedBlockView view{4, 4, {0, n - 4}};
    {
      File f(comm, path);
      f.set_view(view);
      std::vector<std::uint8_t> out(view.total_bytes());
      f.read_all(out, /*sieve_threshold=*/0.9);  // too sparse: 2 small reads
      EXPECT_EQ(f.stats().disk_reads, 2u);
      EXPECT_EQ(f.stats().disk_bytes, 32u);
    }
    {
      File f(comm, path);
      f.set_view(view);
      std::vector<std::uint8_t> out(view.total_bytes());
      f.read_all(out, /*sieve_threshold=*/0.0);  // forced single sieve read
      EXPECT_EQ(f.stats().disk_reads, 1u);
      EXPECT_EQ(f.stats().disk_bytes, std::uint64_t(n) * 4);
    }
  });
  std::remove(path.c_str());
}

}  // namespace
}  // namespace qv::vmpi
