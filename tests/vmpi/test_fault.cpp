// Unit tests of the deterministic fault-injection layer: recv_timeout,
// send corruption/delay, File read faults, rank kill, and the world-abort
// path that keeps a throwing rank from deadlocking its peers.
#include "vmpi/fault.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <memory>
#include <thread>

#include "vmpi/comm.hpp"
#include "vmpi/file.hpp"

namespace qv::vmpi {
namespace {

using namespace std::chrono_literals;

std::shared_ptr<FaultPlan> plan() { return std::make_shared<FaultPlan>(); }

std::string write_temp_file(const char* name, std::size_t n_floats) {
  std::string path = (std::filesystem::temp_directory_path() /
                      (std::string(name) + "." + std::to_string(::getpid())))
                         .string();
  std::ofstream os(path, std::ios::binary);
  for (std::size_t i = 0; i < n_floats; ++i) {
    float v = float(i);
    os.write(reinterpret_cast<const char*>(&v), sizeof(v));
  }
  return path;
}

// --- recv_timeout -----------------------------------------------------------

TEST(FaultRecv, TimeoutExpiresWhenNothingArrives) {
  Runtime::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<std::uint8_t> buf;
      auto t0 = std::chrono::steady_clock::now();
      EXPECT_FALSE(comm.recv_timeout(1, 5, buf, 50ms));
      EXPECT_GE(std::chrono::steady_clock::now() - t0, 50ms);
      // The peer's late message must still be receivable afterwards.
      EXPECT_EQ(comm.recv_value<int>(1, 5), 99);
    } else {
      std::this_thread::sleep_for(120ms);
      comm.send_value(0, 5, 99);
    }
  });
}

TEST(FaultRecv, TimeoutReturnsEarlyOnArrival) {
  Runtime::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<std::uint8_t> buf;
      Status st;
      EXPECT_TRUE(comm.recv_timeout(kAnySource, 7, buf, 10000ms, &st));
      EXPECT_EQ(st.source, 1);
      EXPECT_EQ(buf.size(), sizeof(int));
    } else {
      comm.send_value(0, 7, 1);
    }
  });
}

// --- send faults ------------------------------------------------------------

TEST(FaultSend, ExplicitCorruptionFlipsOneDataByte) {
  auto p = plan();
  p->corrupt_sends = {{0, 0}};  // rank 0's first user send
  p->corrupt_offset_min = 8;
  std::vector<std::uint8_t> first_run;
  for (int run = 0; run < 2; ++run) {
    std::vector<std::uint8_t> got;
    Runtime::run(
        2,
        [&](Comm& comm) {
          std::vector<std::uint8_t> payload(64, 0xFF);
          if (comm.rank() == 0) {
            comm.send(1, 1, payload);
            comm.send(1, 2, payload);  // nth=1: not targeted
          } else {
            comm.recv(0, 1, got);
            std::vector<std::uint8_t> clean;
            comm.recv(0, 2, clean);
            EXPECT_EQ(clean, payload);
          }
        },
        p);
    ASSERT_EQ(got.size(), 64u);
    int diffs = 0;
    std::size_t diff_at = 0;
    for (std::size_t i = 0; i < got.size(); ++i) {
      if (got[i] != 0xFF) {
        ++diffs;
        diff_at = i;
      }
    }
    EXPECT_EQ(diffs, 1);                       // exactly one byte flipped
    EXPECT_GE(diff_at, p->corrupt_offset_min); // never in the trusted header
    if (run == 0)
      first_run = got;
    else
      EXPECT_EQ(got, first_run);  // same seed -> same injected fault
  }
}

TEST(FaultSend, HeaderSizedControlMessagesAreExempt) {
  auto p = plan();
  p->corrupt_rate = 1.0;  // corrupt everything eligible...
  p->corrupt_offset_min = 32;
  Runtime::run(
      2,
      [](Comm& comm) {
        // ...but a payload no larger than the trusted-header size (a NACK,
        // a DONE marker) has no data segment to corrupt.
        std::vector<std::uint8_t> small(32, 0xAB);
        if (comm.rank() == 0) {
          comm.send(1, 1, small);
        } else {
          std::vector<std::uint8_t> got;
          comm.recv(0, 1, got);
          EXPECT_EQ(got, small);
        }
      },
      p);
}

TEST(FaultSend, DelayedDeliveryStaysIntact) {
  auto p = plan();
  p->delay_rate = 1.0;
  p->delay_ms = 20.0;
  Runtime::run(
      2,
      [](Comm& comm) {
        if (comm.rank() == 0) {
          auto t0 = std::chrono::steady_clock::now();
          comm.send_value(1, 3, 1234);
          EXPECT_GE(std::chrono::steady_clock::now() - t0, 15ms);
        } else {
          EXPECT_EQ(comm.recv_value<int>(0, 3), 1234);
        }
      },
      p);
}

// --- File read faults -------------------------------------------------------

TEST(FaultFile, ExplicitTransientErrorIsRetriedOnce) {
  auto path = write_temp_file("qv_fault_a.bin", 256);
  auto p = plan();
  p->read_errors = {{0, 0}};  // rank 0's first pread fails, first attempt only
  Runtime::run(
      1,
      [&](Comm& comm) {
        File f(comm, path);
        std::vector<float> buf(256);
        f.read_at(0, {reinterpret_cast<std::uint8_t*>(buf.data()), 1024});
        EXPECT_EQ(f.stats().retries, 1u);
        for (std::size_t i = 0; i < buf.size(); ++i)
          ASSERT_FLOAT_EQ(buf[i], float(i));
      },
      p);
  std::remove(path.c_str());
}

TEST(FaultFile, NoRetryBudgetTurnsTransientIntoIoError) {
  auto path = write_temp_file("qv_fault_b.bin", 16);
  auto p = plan();
  p->read_errors = {{0, 0}};
  Runtime::run(
      1,
      [&](Comm& comm) {
        File f(comm, path);
        io::RetryPolicy once;
        once.max_attempts = 1;
        f.set_retry_policy(once);
        std::vector<std::uint8_t> buf(64);
        EXPECT_THROW(f.read_at(0, buf), IoError);
      },
      p);
  std::remove(path.c_str());
}

TEST(FaultFile, FailingPathExhaustsRetriesPermanently) {
  auto path = write_temp_file("qv_fault_dead.bin", 16);
  auto p = plan();
  p->fail_path_substrings = {"qv_fault_dead"};
  Runtime::run(
      1,
      [&](Comm& comm) {
        File f(comm, path);
        io::RetryPolicy quick;
        quick.max_attempts = 3;
        quick.base_delay = std::chrono::microseconds(1);
        f.set_retry_policy(quick);
        std::vector<std::uint8_t> buf(64);
        EXPECT_THROW(f.read_at(0, buf), IoError);
        EXPECT_EQ(f.stats().retries, 2u);  // every attempt failed
      },
      p);
  std::remove(path.c_str());
}

TEST(FaultFile, ShortReadsAreContinuedTransparently) {
  auto path = write_temp_file("qv_fault_c.bin", 1024);
  auto p = plan();
  p->short_read_rate = 1.0;
  Runtime::run(
      1,
      [&](Comm& comm) {
        File f(comm, path);
        std::vector<float> buf(1024);
        f.read_at(0, {reinterpret_cast<std::uint8_t*>(buf.data()), 4096});
        EXPECT_GE(f.stats().short_reads, 1u);
        EXPECT_EQ(f.stats().retries, 0u);  // a prefix is progress, not an error
        for (std::size_t i = 0; i < buf.size(); ++i)
          ASSERT_FLOAT_EQ(buf[i], float(i));
      },
      p);
  std::remove(path.c_str());
}

// --- rank death -------------------------------------------------------------

TEST(FaultKill, CheckpointKillsOnlyTheConfiguredRankAndStep) {
  auto p = plan();
  p->kill_rank = 1;
  p->kill_at_step = 2;
  std::atomic<int> last_step_rank1{-1};
  std::atomic<int> completed{0};
  Runtime::run(
      3,
      [&](Comm& comm) {
        for (int s = 0; s < 5; ++s) {
          comm.fault_checkpoint(s);
          if (comm.rank() == 1) last_step_rank1 = s;
        }
        ++completed;
      },
      p);  // RankKilled is a clean exit: run() must not throw
  EXPECT_EQ(last_step_rank1.load(), 1);  // died entering step 2
  EXPECT_EQ(completed.load(), 2);        // the two survivors finished
}

TEST(FaultKill, SurvivorsDetectSilenceViaRecvTimeout) {
  auto p = plan();
  p->kill_rank = 0;
  p->kill_at_step = 0;
  Runtime::run(
      2,
      [](Comm& comm) {
        if (comm.rank() == 0) {
          comm.fault_checkpoint(0);  // dies here; never sends
          comm.send_value(1, 1, 7);
        } else {
          std::vector<std::uint8_t> buf;
          EXPECT_FALSE(comm.recv_timeout(0, 1, buf, 50ms));
        }
      },
      p);
}

// --- world abort ------------------------------------------------------------

TEST(WorldAbort, PeerExceptionUnblocksRecvInsteadOfDeadlocking) {
  // Rank 1 blocks on a message only rank 0 could send; rank 0 throws.
  // Without the abort path this joins never and the test times out.
  bool aborted_seen = false;
  try {
    Runtime::run(2, [&](Comm& comm) {
      if (comm.rank() == 0) {
        throw std::runtime_error("rank 0 exploded");
      }
      try {
        std::vector<std::uint8_t> buf;
        comm.recv(0, 1, buf);
      } catch (const WorldAborted&) {
        aborted_seen = true;
        throw;
      }
    });
    FAIL() << "expected the rank-0 exception to propagate";
  } catch (const std::runtime_error& e) {
    // The original error is rethrown, not the secondary WorldAborted.
    EXPECT_STREQ(e.what(), "rank 0 exploded");
  }
  EXPECT_TRUE(aborted_seen);
}

TEST(WorldAbort, PeerExceptionUnblocksBarrier) {
  try {
    Runtime::run(3, [&](Comm& comm) {
      if (comm.rank() == 0) throw std::runtime_error("boom");
      EXPECT_THROW(comm.barrier(), WorldAborted);
      throw std::runtime_error("secondary");  // any exit is fine now
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom");
  }
}

TEST(WorldAbort, QueuedMessagesStillDeliveredAfterAbort) {
  // A message that was already sent must remain receivable post-abort:
  // only waits that can never be satisfied turn into errors.
  std::atomic<bool> got{false};
  try {
    Runtime::run(2, [&](Comm& comm) {
      if (comm.rank() == 0) {
        comm.send_value(1, 9, 31);
        throw std::runtime_error("after send");
      }
      std::this_thread::sleep_for(30ms);  // let the abort land first
      got = comm.recv_value<int>(0, 9) == 31;
    });
  } catch (const std::runtime_error&) {
  }
  EXPECT_TRUE(got.load());
}

TEST(FaultPlan, PathMatchingAndRankOps) {
  FaultPlan p;
  p.fail_path_substrings = {"step_0001", "lost_ost"};
  EXPECT_TRUE(p.path_fails("/data/step_0001.bin"));
  EXPECT_TRUE(p.path_fails("/mnt/lost_ost/step_0004.bin"));
  EXPECT_FALSE(p.path_fails("/data/step_0002.bin"));
  EXPECT_TRUE(FaultPlan::matches({{2, 5}}, 2, 5));
  EXPECT_FALSE(FaultPlan::matches({{2, 5}}, 2, 6));
  EXPECT_FALSE(FaultPlan::matches({{2, 5}}, 3, 5));
}

}  // namespace
}  // namespace qv::vmpi
