#include "vmpi/comm.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

namespace qv::vmpi {
namespace {

TEST(Comm, RankAndSize) {
  std::atomic<int> sum{0};
  Runtime::run(5, [&](Comm& comm) {
    EXPECT_EQ(comm.size(), 5);
    sum += comm.rank();
  });
  EXPECT_EQ(sum.load(), 0 + 1 + 2 + 3 + 4);
}

TEST(Comm, PingPong) {
  Runtime::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value(1, 7, 42);
      EXPECT_EQ(comm.recv_value<int>(1, 8), 43);
    } else {
      int v = comm.recv_value<int>(0, 7);
      comm.send_value(0, 8, v + 1);
    }
  });
}

TEST(Comm, TagMatchingOutOfOrder) {
  Runtime::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value(1, 100, 1.0);
      comm.send_value(1, 200, 2.0);
      comm.send_value(1, 300, 3.0);
    } else {
      // Receive in reverse tag order: matching must be by tag, not arrival.
      EXPECT_EQ(comm.recv_value<double>(0, 300), 3.0);
      EXPECT_EQ(comm.recv_value<double>(0, 200), 2.0);
      EXPECT_EQ(comm.recv_value<double>(0, 100), 1.0);
    }
  });
}

TEST(Comm, AnySourceReceivesFromAll) {
  Runtime::run(6, [](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<bool> seen(6, false);
      for (int i = 1; i < 6; ++i) {
        Status st;
        int v = comm.recv_value<int>(kAnySource, 1, &st);
        EXPECT_EQ(v, st.source * 10);
        seen[std::size_t(st.source)] = true;
      }
      for (int i = 1; i < 6; ++i) EXPECT_TRUE(seen[std::size_t(i)]);
    } else {
      comm.send_value(0, 1, comm.rank() * 10);
    }
  });
}

TEST(Comm, AnyTagReportsTag) {
  Runtime::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value(1, 55, 1);
    } else {
      std::vector<std::uint8_t> buf;
      Status st = comm.recv(0, kAnyTag, buf);
      EXPECT_EQ(st.tag, 55);
      EXPECT_EQ(st.bytes, sizeof(int));
    }
  });
}

TEST(Comm, VectorPayloads) {
  Runtime::run(2, [](Comm& comm) {
    std::vector<float> data(1000);
    std::iota(data.begin(), data.end(), 0.0f);
    if (comm.rank() == 0) {
      comm.send_vec<float>(1, 3, data);
    } else {
      auto got = comm.recv_vec<float>(0, 3);
      ASSERT_EQ(got.size(), data.size());
      EXPECT_EQ(got[999], 999.0f);
    }
  });
}

TEST(Comm, BarrierSynchronizes) {
  std::atomic<int> phase1{0};
  std::vector<int> observed(8, -1);
  Runtime::run(8, [&](Comm& comm) {
    ++phase1;
    comm.barrier();
    // After the barrier every rank must observe all 8 arrivals.
    observed[std::size_t(comm.rank())] = phase1.load();
  });
  for (int v : observed) EXPECT_EQ(v, 8);
}

TEST(Comm, RepeatedBarriers) {
  Runtime::run(4, [](Comm& comm) {
    for (int i = 0; i < 25; ++i) comm.barrier();
  });
}

TEST(Comm, Broadcast) {
  Runtime::run(7, [](Comm& comm) {
    int v = comm.rank() == 3 ? 12345 : -1;
    comm.bcast_value(v, 3);
    EXPECT_EQ(v, 12345);
  });
}

TEST(Comm, GatherCollectsInRankOrder) {
  Runtime::run(5, [](Comm& comm) {
    std::uint8_t mine[2] = {std::uint8_t(comm.rank()),
                            std::uint8_t(comm.rank() * 2)};
    auto all = comm.gather(mine, 2);
    if (comm.rank() == 2) {
      ASSERT_EQ(all.size(), 5u);
      for (int r = 0; r < 5; ++r) {
        ASSERT_EQ(all[std::size_t(r)].size(), 2u);
        EXPECT_EQ(all[std::size_t(r)][0], r);
        EXPECT_EQ(all[std::size_t(r)][1], r * 2);
      }
    } else {
      EXPECT_TRUE(all.empty());
    }
  });
}

TEST(Comm, AllgatherEveryoneSeesEverything) {
  Runtime::run(6, [](Comm& comm) {
    auto all = comm.allgather_value(comm.rank() * 7);
    ASSERT_EQ(all.size(), 6u);
    for (int r = 0; r < 6; ++r) EXPECT_EQ(all[std::size_t(r)], r * 7);
  });
}

TEST(Comm, AllreduceSum) {
  Runtime::run(4, [](Comm& comm) {
    double vals[3] = {double(comm.rank()), 1.0, double(comm.rank()) * 0.5};
    comm.allreduce_sum(vals);
    EXPECT_DOUBLE_EQ(vals[0], 6.0);   // 0+1+2+3
    EXPECT_DOUBLE_EQ(vals[1], 4.0);
    EXPECT_DOUBLE_EQ(vals[2], 3.0);
  });
}

TEST(Comm, AllreduceMax) {
  Runtime::run(5, [](Comm& comm) {
    double m = comm.allreduce_max(double(comm.rank() == 3 ? 99 : comm.rank()));
    EXPECT_DOUBLE_EQ(m, 99.0);
  });
}

TEST(Comm, SplitByParity) {
  Runtime::run(6, [](Comm& comm) {
    Comm sub = comm.split(comm.rank() % 2, comm.rank());
    EXPECT_EQ(sub.size(), 3);
    EXPECT_EQ(sub.rank(), comm.rank() / 2);
    // Traffic on the sub-communicator stays inside the group.
    int peer = (sub.rank() + 1) % sub.size();
    sub.send_value(peer, 0, comm.rank());
    int got = sub.recv_value<int>(kAnySource, 0);
    EXPECT_EQ(got % 2, comm.rank() % 2);
  });
}

TEST(Comm, SplitSubCommunicatorCollectives) {
  Runtime::run(8, [](Comm& comm) {
    Comm sub = comm.split(comm.rank() / 4, comm.rank());
    sub.barrier();
    int v = sub.rank() == 0 ? comm.rank() : -1;
    sub.bcast_value(v, 0);
    // Group 0's root is world rank 0; group 1's is world rank 4.
    EXPECT_EQ(v, (comm.rank() / 4) * 4);
  });
}

TEST(Comm, SplitKeyControlsOrdering) {
  Runtime::run(4, [](Comm& comm) {
    // Reverse the rank order via the key.
    Comm sub = comm.split(0, -comm.rank());
    EXPECT_EQ(sub.rank(), comm.size() - 1 - comm.rank());
  });
}

TEST(Comm, IprobeSeesPendingMessage) {
  Runtime::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value(1, 9, 5);
      comm.barrier();
    } else {
      comm.barrier();  // message is certainly enqueued now
      Status st;
      EXPECT_TRUE(comm.iprobe(0, 9, &st));
      EXPECT_EQ(st.bytes, sizeof(int));
      EXPECT_FALSE(comm.iprobe(0, 10));
      EXPECT_EQ(comm.recv_value<int>(0, 9), 5);
      EXPECT_FALSE(comm.iprobe(0, 9));
    }
  });
}

TEST(Comm, RequestWaitAndTest) {
  Runtime::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.barrier();
      comm.send_value(1, 4, 77);
    } else {
      Request req = comm.irecv(0, 4);
      EXPECT_FALSE(req.test());  // nothing sent yet
      comm.barrier();
      std::vector<std::uint8_t> buf;
      Status st = req.wait(buf);
      EXPECT_EQ(st.bytes, sizeof(int));
    }
  });
}

TEST(Comm, ExceptionInRankPropagates) {
  EXPECT_THROW(Runtime::run(2,
                            [](Comm& comm) {
                              if (comm.rank() == 1)
                                throw std::runtime_error("rank boom");
                            }),
               std::runtime_error);
}

TEST(Comm, ManyRanksStress) {
  // All-to-all with 16 ranks: every pair exchanges a tagged message.
  Runtime::run(16, [](Comm& comm) {
    for (int r = 0; r < comm.size(); ++r) {
      if (r == comm.rank()) continue;
      comm.send_value(r, comm.rank(), comm.rank() * 1000 + r);
    }
    for (int r = 0; r < comm.size(); ++r) {
      if (r == comm.rank()) continue;
      EXPECT_EQ(comm.recv_value<int>(r, r), r * 1000 + comm.rank());
    }
  });
}

}  // namespace
}  // namespace qv::vmpi
