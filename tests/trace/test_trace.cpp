// Unit tests of the qv::trace subsystem plus pipeline-integration tests:
// tracing must be invisible when disabled (bit-identical frames), must
// capture the per-role pipeline spans when enabled, and the overlap analysis
// must verify the paper's input/render overlap claim (Fig 5) on real traces.
#include "trace/trace.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <memory>
#include <sstream>
#include <thread>

#include "core/pipeline.hpp"
#include "io/dataset.hpp"
#include "quake/synthetic.hpp"
#include "trace/analysis.hpp"

namespace qv::trace {
namespace {

// Every test begins from a clean, disabled trace state. ctest runs each case
// as its own process, but the whole binary may also run in one process (the
// TSan stage does), so no test may rely on residual global state.
struct TraceStateGuard {
  TraceStateGuard() {
    disable();
    reset();
  }
  ~TraceStateGuard() {
    disable();
    reset();
    set_capacity(1u << 16);
  }
};

TEST(TraceTest, DisabledRecordsNothing) {
  TraceStateGuard guard;
  {
    Span s("cat", "name", 1);
    counter("cat", "ctr", 2);
    instant("cat", "evt");
  }
  EXPECT_TRUE(collect().empty());
}

TEST(TraceTest, EnabledRecordsSpansCountersInstants) {
  TraceStateGuard guard;
  enable();
  set_thread(7, "worker");
  { Span s("cat", "work", 42); }
  counter("cat", "bytes", 1234);
  instant("cat", "mark", 5);
  disable();

  auto traces = collect();
  ASSERT_EQ(traces.size(), 1u);
  EXPECT_EQ(traces[0].tid, 7);
  EXPECT_EQ(traces[0].name, "worker");
  ASSERT_EQ(traces[0].events.size(), 3u);

  const Event& span = traces[0].events[0];
  EXPECT_EQ(span.kind, EventKind::kSpan);
  EXPECT_STREQ(span.cat, "cat");
  EXPECT_STREQ(span.name, "work");
  EXPECT_EQ(span.arg, 42);
  EXPECT_GE(span.ts_ns, 0);
  EXPECT_GE(span.dur_ns, 0);

  const Event& ctr = traces[0].events[1];
  EXPECT_EQ(ctr.kind, EventKind::kCounter);
  EXPECT_EQ(ctr.dur_ns, 1234);

  const Event& inst = traces[0].events[2];
  EXPECT_EQ(inst.kind, EventKind::kInstant);
  EXPECT_EQ(inst.arg, 5);
}

TEST(TraceTest, EnableResetsPreviousEvents) {
  TraceStateGuard guard;
  enable();
  set_thread(1, "first");
  { Span s("cat", "old"); }
  enable();  // restart: prior events must be gone
  set_thread(1, "first");
  { Span s("cat", "new"); }
  disable();
  auto traces = collect();
  ASSERT_EQ(traces.size(), 1u);
  ASSERT_EQ(traces[0].events.size(), 1u);
  EXPECT_STREQ(traces[0].events[0].name, "new");
}

TEST(TraceTest, CapacityBoundsBufferAndCountsDrops) {
  TraceStateGuard guard;
  set_capacity(4);
  enable();
  // A fresh thread picks up the small capacity (the calling thread's buffer
  // may predate set_capacity).
  std::thread worker([] {
    set_thread(9, "bounded");
    for (int i = 0; i < 10; ++i) Span s("cat", "spin", i);
  });
  worker.join();
  disable();
  auto traces = collect();
  const ThreadTrace* bounded = nullptr;
  for (const auto& t : traces)
    if (t.tid == 9) bounded = &t;
  ASSERT_NE(bounded, nullptr);
  EXPECT_LE(bounded->events.size(), 4u);
  EXPECT_EQ(bounded->events.size() + bounded->dropped, 10u);
}

TEST(TraceTest, BuffersSurviveThreadJoin) {
  TraceStateGuard guard;
  enable();
  std::thread worker([] {
    set_thread(3, "joined");
    Span s("cat", "work");
  });
  worker.join();
  disable();
  auto traces = collect();
  ASSERT_EQ(traces.size(), 1u);
  EXPECT_EQ(traces[0].name, "joined");
  ASSERT_EQ(traces[0].events.size(), 1u);
}

TEST(TraceTest, ChromeJsonIsStructurallyValid) {
  TraceStateGuard guard;
  enable();
  set_thread(2, "rank \"two\"\n");  // exercises escaping
  { Span s("pipeline", "fetch", 0); }
  counter("io", "bytes", 77);
  instant("vmpi", "mark");
  disable();
  auto traces = collect();
  std::ostringstream os;
  write_chrome_json(os, traces);
  std::string json = os.str();

  // Array-format trace: one object per line between '[' and ']'.
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json[json.size() - 2], ']');
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\\\"two\\\""), std::string::npos);  // escaped quote
  EXPECT_NE(json.find("\\n"), std::string::npos);          // escaped newline
  // Balanced braces — cheap structural sanity without a JSON parser.
  std::ptrdiff_t depth = 0;
  for (char c : json) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

// --- analysis on hand-built traces ---------------------------------------

Event mk_span(std::int64_t ts_ms, std::int64_t dur_ms, const char* cat,
              const char* name, std::int64_t arg) {
  Event e;
  e.ts_ns = ts_ms * 1'000'000;
  e.dur_ns = dur_ms * 1'000'000;
  e.cat = cat;
  e.name = name;
  e.arg = arg;
  e.kind = EventKind::kSpan;
  return e;
}

TEST(TraceAnalysisTest, RankActivityComputesOccupancy) {
  std::vector<ThreadTrace> traces(2);
  traces[0].tid = 0;
  traces[0].name = "input 0";
  traces[0].events = {mk_span(0, 50, "pipeline", "fetch", 0),
                      mk_span(50, 10, "pipeline", "send_blocks", 0),
                      // nested detail span must not double-count busy time
                      mk_span(0, 50, "vmpi", "pread", -1)};
  traces[1].tid = 1;
  traces[1].name = "render 0";
  traces[1].events = {mk_span(0, 60, "pipeline", "wait_blocks", 0),
                      mk_span(60, 40, "pipeline", "render", 0)};

  auto activity = rank_activity(traces);
  ASSERT_EQ(activity.size(), 2u);
  // Global wall clock is [0 ms, 100 ms].
  EXPECT_NEAR(activity[0].busy_seconds, 0.060, 1e-9);
  EXPECT_NEAR(activity[0].occupancy, 0.60, 1e-6);
  // wait_blocks is idleness, not work.
  EXPECT_NEAR(activity[1].busy_seconds, 0.040, 1e-9);
  EXPECT_NEAR(activity[1].occupancy, 0.40, 1e-6);
}

TEST(TraceAnalysisTest, OverlapSummaryFindsStallAndPlannerM) {
  // Two steps; steady window = step 1. The renderer waits 30 ms then
  // renders 10 ms per step; the input's Tf+Tp is 40 ms per step.
  std::vector<ThreadTrace> traces(2);
  traces[0].tid = 0;
  traces[0].name = "input 0";
  traces[0].events = {mk_span(0, 35, "pipeline", "fetch", 0),
                      mk_span(35, 5, "pipeline", "send_blocks", 0),
                      mk_span(40, 35, "pipeline", "fetch", 1),
                      mk_span(75, 5, "pipeline", "send_blocks", 1)};
  traces[1].tid = 1;
  traces[1].name = "render 0";
  traces[1].events = {mk_span(0, 40, "pipeline", "wait_blocks", 0),
                      mk_span(40, 10, "pipeline", "render", 0),
                      mk_span(50, 30, "pipeline", "wait_blocks", 1),
                      mk_span(80, 10, "pipeline", "render", 1)};

  auto s = analyze_overlap(traces);
  EXPECT_EQ(s.num_steps, 2);
  EXPECT_EQ(s.steady_first_step, 1);
  EXPECT_EQ(s.input_ranks, 1);
  EXPECT_EQ(s.render_ranks, 1);
  EXPECT_NEAR(s.wait_seconds, 0.030, 1e-9);
  EXPECT_NEAR(s.render_seconds, 0.010, 1e-9);
  EXPECT_NEAR(s.stall_fraction, 3.0, 1e-6);
  EXPECT_NEAR(s.tf_tp_seconds, 0.040, 1e-9);
  EXPECT_NEAR(s.ts_seconds, 0.010, 1e-9);
  // m = ceil((Tf+Tp)/Ts) + 1 = 5
  EXPECT_EQ(s.suggested_input_procs, 5);
  EXPECT_FALSE(format_overlap(s).empty());
}

// --- pipeline integration --------------------------------------------------

const Box3 kUnit{{0, 0, 0}, {1, 1, 1}};
constexpr int kSteps = 4;
constexpr int kW = 64;
constexpr int kH = 48;

class TracePipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dir_ = (std::filesystem::temp_directory_path() /
            ("qv_trace_ds." + std::to_string(::getpid())))
               .string();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    auto size = [](Vec3 p) { return p.z > 0.5f ? 0.12f : 0.3f; };
    mesh::HexMesh fine(mesh::LinearOctree::build(kUnit, size, 1, 3));
    io::DatasetWriter writer(dir_, fine, 2, 3, 0.25f);
    quake::SyntheticQuake q;
    for (int s = 0; s < kSteps; ++s) {
      writer.write_step(q.sample_nodes(fine, 0.6f + 0.4f * float(s)));
    }
    writer.finish();
  }
  static void TearDownTestSuite() { std::filesystem::remove_all(dir_); }

  static core::PipelineConfig base_config() {
    core::PipelineConfig cfg;
    cfg.dataset_dir = dir_;
    cfg.width = kW;
    cfg.height = kH;
    cfg.render.value_hi = 3.0f;
    cfg.input_procs = 2;
    cfg.render_procs = 2;
    return cfg;
  }

  static std::string dir_;
};
std::string TracePipelineTest::dir_;

TEST_F(TracePipelineTest, TracingDoesNotPerturbFrames) {
  TraceStateGuard guard;
  auto cfg = base_config();
  std::vector<img::Image> plain, traced;
  run_pipeline(cfg, &plain);
  enable();
  run_pipeline(cfg, &traced);
  disable();
  ASSERT_EQ(plain.size(), traced.size());
  for (std::size_t s = 0; s < plain.size(); ++s) {
    auto pa = plain[s].pixels();
    auto pb = traced[s].pixels();
    ASSERT_EQ(pa.size(), pb.size());
    EXPECT_EQ(std::memcmp(pa.data(), pb.data(), pa.size_bytes()), 0)
        << "frame " << s;
  }
}

TEST_F(TracePipelineTest, PipelineEmitsRoleLanesAndStageSpans) {
  TraceStateGuard guard;
  auto cfg = base_config();
  enable();
  run_pipeline(cfg);
  disable();
  auto traces = collect();
  // 2 inputs + 2 renderers + output.
  ASSERT_EQ(traces.size(), 5u);

  bool saw_input = false, saw_render = false, saw_output = false;
  std::size_t fetch = 0, render = 0, composite = 0, wait = 0, frame = 0;
  for (const auto& t : traces) {
    if (t.name.rfind("input", 0) == 0) saw_input = true;
    if (t.name.rfind("render", 0) == 0) saw_render = true;
    if (t.name == "output") saw_output = true;
    for (const auto& e : t.events) {
      if (std::strcmp(e.cat, "pipeline") != 0) continue;
      if (std::strcmp(e.name, "fetch") == 0) ++fetch;
      if (std::strcmp(e.name, "render") == 0) ++render;
      if (std::strcmp(e.name, "composite") == 0) ++composite;
      if (std::strcmp(e.name, "wait_blocks") == 0) ++wait;
      if (std::strcmp(e.name, "frame") == 0) ++frame;
    }
  }
  EXPECT_TRUE(saw_input);
  EXPECT_TRUE(saw_render);
  EXPECT_TRUE(saw_output);
  EXPECT_EQ(fetch, std::size_t(kSteps));  // 2 inputs, interleaved steps
  EXPECT_EQ(render, std::size_t(kSteps) * 2);
  EXPECT_EQ(composite, std::size_t(kSteps) * 2);
  EXPECT_GE(wait, std::size_t(kSteps));
  EXPECT_EQ(frame, std::size_t(kSteps));

  auto summary = analyze_overlap(traces);
  EXPECT_EQ(summary.num_steps, kSteps);
  EXPECT_EQ(summary.input_ranks, 2);
  EXPECT_EQ(summary.render_ranks, 2);
  EXPECT_GT(summary.ts_seconds, 0.0);
  EXPECT_GT(summary.suggested_input_procs, 0);
}

// Overlap verification on real traces with injected disk latency. The sleep
// in FaultPlan::read_delay_ms overlaps across rank threads even on a single
// core, which makes the planner's claim measurable anywhere; still excluded
// from the TSan stage, where scheduling skew would make timing flaky.
class TraceOverlapTest : public TracePipelineTest {};

TEST_F(TraceOverlapTest, AnalyticInputCountEliminatesRendererStall) {
  TraceStateGuard guard;
  auto plan = std::make_shared<vmpi::FaultPlan>();
  plan->read_delay_ms = 60.0;

  // Probe with m = 1: fetch (~delay) serializes against rendering, so the
  // renderers must starve — the "insufficient input processors" half of the
  // paper's Fig 5 claim.
  auto cfg = base_config();
  cfg.input_procs = 1;
  cfg.fault_plan = plan;
  enable();
  run_pipeline(cfg);
  disable();
  auto probe = analyze_overlap(collect());
  ASSERT_GT(probe.ts_seconds, 0.0);
  ASSERT_GT(probe.tf_tp_seconds, 0.0);

  // Gate the stall assertion on what the probe itself predicts: if the
  // machine is so slow that rendering dominates the injected latency, the
  // m=1 run legitimately has nothing to stall on.
  double predicted_stall =
      (probe.tf_tp_seconds - probe.ts_seconds) / probe.ts_seconds;
  if (predicted_stall > 2.0) {
    EXPECT_GT(probe.stall_fraction, 0.5)
        << "m=1 with " << plan->read_delay_ms
        << " ms reads should starve the renderers";
  }

  // Re-run at the analytic m = (Tf+Tp)/Ts + 1 (capped at one input per
  // step, beyond which extra inputs have no step to prefetch): the steady
  // window must show (near-)zero renderer stall.
  int analytic_m = std::min(probe.suggested_input_procs, kSteps);
  cfg.input_procs = std::max(analytic_m, 1);
  enable();
  run_pipeline(cfg);
  disable();
  auto steady = analyze_overlap(collect());
  EXPECT_LT(steady.stall_fraction, 0.05)
      << "m=" << cfg.input_procs << " should fully overlap input with "
      << "rendering (probe suggested m=" << probe.suggested_input_procs
      << ")";
  // And the overlap must actually help: steady-state stall time shrinks by
  // an order of magnitude against the starved probe.
  if (predicted_stall > 2.0) {
    EXPECT_LT(steady.wait_seconds, probe.wait_seconds / 10.0);
  }
}

}  // namespace
}  // namespace qv::trace
