// Tests for the metrics registry (src/metrics): exact histogram bucket
// boundaries, shard-merge equivalence, percentile clamping, the run-report
// JSON round-trip, the regression gate, and the trace-span auto-feed.
#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "metrics/metrics.hpp"
#include "metrics/report.hpp"
#include "trace/analysis.hpp"
#include "trace/trace.hpp"
#include "vmpi/comm.hpp"

namespace {

using namespace qv;
using metrics::HistogramSpec;

// Every test starts from a clean, enabled registry. Metric names are
// per-test-unique (the registry is process-global and append-only).
struct MetricsTest : ::testing::Test {
  void SetUp() override { metrics::enable(); }
  void TearDown() override { metrics::disable(); }
};

using HistogramBucketsTest = MetricsTest;
using ReportRoundTripTest = MetricsTest;
using GateTest = MetricsTest;
using SpanFeedTest = MetricsTest;

// --- fixed-boundary buckets --------------------------------------------------

TEST_F(HistogramBucketsTest, FixedExactEdgesUnderflowOverflow) {
  HistogramSpec spec = HistogramSpec::fixed({1.0, 2.0, 5.0});
  ASSERT_EQ(spec.bucket_count(), 4);  // 3 bounded + overflow

  // Bucket i counts v <= bounds[i]; bucket 0 doubles as underflow.
  EXPECT_EQ(spec.bucket_index(-10.0), 0);
  EXPECT_EQ(spec.bucket_index(0.5), 0);
  EXPECT_EQ(spec.bucket_index(1.0), 0);  // exact edge belongs to its bucket
  EXPECT_EQ(spec.bucket_index(1.0000001), 1);
  EXPECT_EQ(spec.bucket_index(2.0), 1);
  EXPECT_EQ(spec.bucket_index(5.0), 2);
  EXPECT_EQ(spec.bucket_index(5.0000001), 3);  // overflow
  EXPECT_EQ(spec.bucket_index(1e12), 3);
  EXPECT_EQ(spec.bucket_index(std::nan("")), 0);  // NaN -> underflow
}

TEST_F(HistogramBucketsTest, FixedBucketRangesAreConsistent) {
  HistogramSpec spec = HistogramSpec::fixed({1.0, 2.0, 5.0});
  EXPECT_EQ(spec.bucket_lo(0), -std::numeric_limits<double>::infinity());
  EXPECT_EQ(spec.bucket_hi(0), 1.0);
  EXPECT_EQ(spec.bucket_lo(1), 1.0);
  EXPECT_EQ(spec.bucket_hi(2), 5.0);
  EXPECT_EQ(spec.bucket_hi(3), std::numeric_limits<double>::infinity());
}

// --- log2 buckets ------------------------------------------------------------

TEST_F(HistogramBucketsTest, Log2OctaveBoundaries) {
  // Octaves [1,2) and [2,4), each split into 4 linear sub-buckets, plus
  // underflow (v < 1) and overflow (v >= 4).
  HistogramSpec spec = HistogramSpec::log2(0, 2, 4);
  ASSERT_EQ(spec.bucket_count(), 2 * 4 + 2);

  EXPECT_EQ(spec.bucket_index(0.999), 0);   // underflow
  EXPECT_EQ(spec.bucket_index(-1.0), 0);
  EXPECT_EQ(spec.bucket_index(0.0), 0);
  EXPECT_EQ(spec.bucket_index(1.0), 1);     // first sub-bucket of [1,2)
  EXPECT_EQ(spec.bucket_index(1.24), 1);    // [1.00, 1.25)
  EXPECT_EQ(spec.bucket_index(1.25), 2);    // [1.25, 1.50)
  EXPECT_EQ(spec.bucket_index(1.999), 4);   // last sub-bucket of [1,2)
  EXPECT_EQ(spec.bucket_index(2.0), 5);     // first sub-bucket of [2,4)
  EXPECT_EQ(spec.bucket_index(2.49), 5);    // [2.0, 2.5)
  EXPECT_EQ(spec.bucket_index(2.5), 6);
  EXPECT_EQ(spec.bucket_index(3.999), 8);
  EXPECT_EQ(spec.bucket_index(4.0), 9);     // overflow
  EXPECT_EQ(spec.bucket_index(1e30), 9);

  // Bucket ranges partition the octaves.
  EXPECT_DOUBLE_EQ(spec.bucket_lo(1), 1.0);
  EXPECT_DOUBLE_EQ(spec.bucket_hi(1), 1.25);
  EXPECT_DOUBLE_EQ(spec.bucket_lo(5), 2.0);
  EXPECT_DOUBLE_EQ(spec.bucket_hi(5), 2.5);
  for (int i = 1; i + 1 < spec.bucket_count() - 1; ++i) {
    EXPECT_DOUBLE_EQ(spec.bucket_hi(i), spec.bucket_lo(i + 1)) << i;
  }
}

TEST_F(HistogramBucketsTest, ObservationsLandWhereBucketIndexSays) {
  auto& h = metrics::histogram("test.buckets.land",
                               HistogramSpec::log2(0, 2, 4));
  const std::vector<double> vals = {0.5, 1.0, 1.3, 2.7, 100.0};
  for (double v : vals) h.observe(v);
  auto snap = h.snapshot();
  ASSERT_EQ(snap.count, vals.size());
  for (double v : vals) {
    EXPECT_GE(snap.counts[std::size_t(snap.spec.bucket_index(v))], 1u) << v;
  }
  EXPECT_DOUBLE_EQ(snap.min, 0.5);
  EXPECT_DOUBLE_EQ(snap.max, 100.0);
  EXPECT_DOUBLE_EQ(snap.sum, 0.5 + 1.0 + 1.3 + 2.7 + 100.0);
}

// --- shard merge -------------------------------------------------------------

TEST_F(HistogramBucketsTest, MultiThreadMergeEqualsSingleShard) {
  // The same observation multiset recorded (a) from many vmpi rank threads
  // and (b) from this thread alone must produce identical snapshots
  // (merging shards is associative and lossless).
  auto& multi = metrics::histogram("test.merge.multi",
                                   HistogramSpec::log2(-4, 4, 8));
  auto& single = metrics::histogram("test.merge.single",
                                    HistogramSpec::log2(-4, 4, 8));
  const int ranks = 2 * metrics::kShards + 3;  // shard ordinals must wrap
  const int per_rank = 64;
  auto value_of = [](int rank, int i) {
    // Deterministic spread over several octaves, rank-dependent.
    return 0.07 + 0.11 * double(rank) + 0.013 * double(i);
  };
  vmpi::Runtime::run(ranks, [&](vmpi::Comm& comm) {
    for (int i = 0; i < per_rank; ++i) {
      multi.observe(value_of(comm.rank(), i));
    }
  });
  for (int r = 0; r < ranks; ++r) {
    for (int i = 0; i < per_rank; ++i) single.observe(value_of(r, i));
  }

  auto a = multi.snapshot();
  auto b = single.snapshot();
  EXPECT_EQ(a.count, std::uint64_t(ranks) * per_rank);
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.counts, b.counts);
  EXPECT_DOUBLE_EQ(a.min, b.min);
  EXPECT_DOUBLE_EQ(a.max, b.max);
  EXPECT_NEAR(a.sum, b.sum, 1e-9 * b.sum);  // float adds commute inexactly
  EXPECT_NEAR(a.percentile(50), b.percentile(50), 1e-12);
}

TEST_F(HistogramBucketsTest, CountersMergeAcrossRankThreads) {
  auto& c = metrics::counter("test.merge.counter");
  const int ranks = metrics::kShards + 5;
  vmpi::Runtime::run(ranks, [&](vmpi::Comm& comm) {
    for (int i = 0; i <= comm.rank(); ++i) c.add(2);
  });
  // sum over r of 2*(r+1) = ranks*(ranks+1)
  EXPECT_EQ(c.value(), std::uint64_t(ranks) * (ranks + 1));
}

// --- percentiles -------------------------------------------------------------

TEST_F(HistogramBucketsTest, PercentileOfSingleValueIsExact) {
  auto& h = metrics::histogram("test.pctl.single",
                               HistogramSpec::duration_seconds());
  for (int i = 0; i < 10; ++i) h.observe(0.037);
  auto snap = h.snapshot();
  EXPECT_DOUBLE_EQ(snap.percentile(0), 0.037);
  EXPECT_DOUBLE_EQ(snap.percentile(50), 0.037);
  EXPECT_DOUBLE_EQ(snap.percentile(99), 0.037);
}

TEST_F(HistogramBucketsTest, PercentileOrderingAndBounds) {
  auto& h = metrics::histogram("test.pctl.spread",
                               HistogramSpec::duration_seconds());
  for (int i = 1; i <= 1000; ++i) h.observe(1e-3 * double(i));  // 1ms..1s
  auto snap = h.snapshot();
  const double p50 = snap.percentile(50);
  const double p95 = snap.percentile(95);
  const double p99 = snap.percentile(99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_GE(p50, snap.min);
  EXPECT_LE(p99, snap.max);
  // duration_seconds() has <=3.1% bucket width; the median of a uniform
  // 1..1000ms spread must land near 500ms.
  EXPECT_NEAR(p50, 0.5, 0.05 * 0.5);
}

TEST_F(HistogramBucketsTest, DisabledHistogramRecordsNothing) {
  auto& h = metrics::histogram("test.disabled.noop");
  metrics::disable();
  h.observe(1.0);
  EXPECT_EQ(h.snapshot().count, 0u);
  metrics::enable();  // enable() resets
  h.observe(1.0);
  EXPECT_EQ(h.snapshot().count, 1u);
}

// --- JSON report round-trip --------------------------------------------------

TEST_F(ReportRoundTripTest, EmitParseSameValues) {
  metrics::counter("test.rt.calls").add(12345);
  metrics::gauge("test.rt.ratio").set(0.625);
  auto& h = metrics::histogram("test.rt.lat",
                               HistogramSpec::duration_seconds());
  for (double v : {1e-4, 2e-4, 5e-4, 1e-3, 0.5}) h.observe(v);
  auto& f = metrics::histogram("test.rt.fixed",
                               HistogramSpec::fixed({1.0, 10.0, 100.0}));
  for (double v : {0.5, 5.0, 50.0, 500.0}) f.observe(v);

  metrics::RunReport out;
  out.kind = "roundtrip-test";
  out.track("stage_s", 0.0415, "s");
  out.track("bytes_total", 9.87e6, "bytes");
  out.snapshot = metrics::collect();

  std::string err;
  auto in = metrics::parse_report(metrics::to_json(out), &err);
  ASSERT_TRUE(in.has_value()) << err;

  EXPECT_EQ(in->kind, "roundtrip-test");
  EXPECT_EQ(in->version, metrics::kReportVersion);
  ASSERT_EQ(in->tracked.size(), 2u);
  EXPECT_EQ(in->tracked[0].name, "stage_s");
  EXPECT_EQ(in->tracked[0].value, 0.0415);  // %.17g is bit-exact
  EXPECT_EQ(in->tracked[0].unit, "s");
  EXPECT_EQ(in->tracked[1].value, 9.87e6);

  EXPECT_EQ(in->snapshot.counter_or("test.rt.calls"), 12345u);
  EXPECT_DOUBLE_EQ(in->snapshot.gauge_or("test.rt.ratio"), 0.625);

  for (const char* name : {"test.rt.lat", "test.rt.fixed"}) {
    ASSERT_TRUE(in->snapshot.histograms.count(name)) << name;
    ASSERT_TRUE(out.snapshot.histograms.count(name)) << name;
    const auto& a = out.snapshot.histograms.at(name);
    const auto& b = in->snapshot.histograms.at(name);
    EXPECT_TRUE(a.spec == b.spec) << name;
    EXPECT_EQ(a.counts, b.counts) << name;
    EXPECT_EQ(a.count, b.count) << name;
    EXPECT_EQ(a.sum, b.sum) << name;
    EXPECT_EQ(a.min, b.min) << name;
    EXPECT_EQ(a.max, b.max) << name;
    EXPECT_EQ(a.percentile(50), b.percentile(50)) << name;
    EXPECT_EQ(a.percentile(99), b.percentile(99)) << name;
  }
}

TEST_F(ReportRoundTripTest, ParseRejectsWrongSchema) {
  std::string err;
  EXPECT_FALSE(metrics::parse_report("{\"schema\": \"other\"}", &err));
  EXPECT_FALSE(metrics::parse_report("not json at all", &err));
  EXPECT_FALSE(metrics::parse_report(
      "{\"schema\": \"qv-run-report\", \"version\": 999, \"kind\": \"x\"}",
      &err));
}

TEST_F(ReportRoundTripTest, PrometheusDumpMentionsEveryMetric) {
  metrics::counter("test.prom.calls").add(7);
  metrics::histogram("test.prom.lat").observe(0.01);
  std::ostringstream os;
  metrics::write_prometheus(os, metrics::collect());
  const std::string text = os.str();
  EXPECT_NE(text.find("test_prom_calls 7"), std::string::npos) << text;
  EXPECT_NE(text.find("test_prom_lat_count 1"), std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\""), std::string::npos);
}

// --- regression gate ---------------------------------------------------------

TEST_F(GateTest, FlagsRegressionAboveThresholdOnly) {
  metrics::RunReport base, cur;
  base.kind = cur.kind = "gate-test";
  base.track("fast_s", 1.00, "s");
  base.track("slow_s", 1.00, "s");
  base.track("bytes", 1000.0, "bytes");
  cur.track("fast_s", 1.10, "s");    // +10% -> ok at 15%
  cur.track("slow_s", 1.20, "s");    // +20% -> regressed
  cur.track("bytes", 1000.0, "bytes");

  auto g = metrics::compare_reports(base, cur, 0.15);
  ASSERT_EQ(g.rows.size(), 3u);
  EXPECT_FALSE(g.rows[0].regressed);
  EXPECT_TRUE(g.rows[1].regressed);
  EXPECT_FALSE(g.rows[2].regressed);
  EXPECT_FALSE(g.ok);
}

TEST_F(GateTest, AbsoluteFloorIgnoresTinyTimingJitter) {
  // +100% on a 0.5 ms metric is scheduler noise, not a regression.
  metrics::RunReport base, cur;
  base.kind = cur.kind = "gate-test";
  base.track("tiny_s", 0.0005, "s");
  cur.track("tiny_s", 0.0010, "s");
  auto g = metrics::compare_reports(base, cur, 0.15);
  EXPECT_TRUE(g.ok);
}

TEST_F(GateTest, MissingTrackedMetricFailsGate) {
  metrics::RunReport base, cur;
  base.kind = cur.kind = "gate-test";
  base.track("renamed_s", 1.0, "s");
  auto g = metrics::compare_reports(base, cur, 0.15);
  ASSERT_EQ(g.rows.size(), 1u);
  EXPECT_TRUE(g.rows[0].missing);
  EXPECT_FALSE(g.ok);
}

// --- trace-span auto-feed ----------------------------------------------------

TEST_F(SpanFeedTest, SpanFeedsHistogramWithoutTracing) {
  ASSERT_FALSE(trace::enabled());
  for (int i = 0; i < 8; ++i) {
    trace::Span sp("testcat", "feedme");
  }
  auto snap = metrics::collect();
  ASSERT_TRUE(snap.histograms.count("span.testcat.feedme"));
  EXPECT_EQ(snap.histograms.at("span.testcat.feedme").count, 8u);
}

TEST_F(SpanFeedTest, HistogramMedianMatchesTraceDurations) {
  // The same spans recorded into both pillars: the bucketed median must
  // agree with the exact trace-derived median within 5% (the log2 spec's
  // bucket width is <= 3.1%).
  trace::enable();
  metrics::enable();
  constexpr int kSpans = 40;
  std::thread t([] {
    trace::set_thread(0, "feed");
    for (int i = 0; i < kSpans; ++i) {
      trace::Span sp("testcat", "agree");
      // Busy-wait ~200us so the duration is well above clock granularity.
      auto t0 = std::chrono::steady_clock::now();
      while (std::chrono::steady_clock::now() - t0 <
             std::chrono::microseconds(200)) {
      }
    }
  });
  t.join();
  trace::disable();

  std::vector<double> durs;
  for (const auto& tt : trace::collect()) {
    for (const auto& ev : tt.events) {
      if (std::string(ev.name) == "agree") durs.push_back(ev.dur_ns * 1e-9);
    }
  }
  ASSERT_EQ(durs.size(), std::size_t(kSpans));
  std::sort(durs.begin(), durs.end());
  const double trace_median =
      0.5 * (durs[kSpans / 2 - 1] + durs[kSpans / 2]);

  auto snap = metrics::collect();
  ASSERT_TRUE(snap.histograms.count("span.testcat.agree"));
  const auto& h = snap.histograms.at("span.testcat.agree");
  ASSERT_EQ(h.count, std::uint64_t(kSpans));
  EXPECT_NEAR(h.percentile(50), trace_median, 0.05 * trace_median);
  trace::reset();
}

// --- steady-window occupancy -------------------------------------------------

TEST(SteadyOccupancyTest, SteadyWindowExcludesStartup) {
  // Hand-built trace: a long startup gap, then 4 steps of 10ms busy work
  // back to back. Whole-run occupancy is diluted by the gap; the steady
  // window (steps >= 2) must report ~100%.
  trace::ThreadTrace t;
  t.tid = 0;
  t.name = "render 0";
  const std::int64_t ms = 1'000'000;
  auto add = [&](const char* name, std::int64_t ts, std::int64_t dur,
                 std::int64_t step) {
    trace::Event ev;
    ev.ts_ns = ts;
    ev.dur_ns = dur;
    ev.cat = "pipeline";
    ev.name = name;
    ev.arg = step;
    ev.kind = trace::EventKind::kSpan;
    t.events.push_back(ev);
  };
  // 100 ms of startup blocking (a wait span, step 0), then steps at 10 ms
  // each back to back.
  add("wait_blocks", 0, 100 * ms, 0);
  for (int s = 0; s < 4; ++s) {
    add("render", 100 * ms + s * 10 * ms, 10 * ms, s);
  }
  std::vector<trace::ThreadTrace> traces = {t};

  auto whole = trace::rank_activity(traces);
  ASSERT_EQ(whole.size(), 1u);
  EXPECT_NEAR(whole[0].occupancy, 40.0 / 140.0, 1e-6);

  auto steady = trace::rank_activity(traces, {.steady_only = true});
  ASSERT_EQ(steady.size(), 1u);
  EXPECT_NEAR(steady[0].busy_seconds, 0.020, 1e-9);
  EXPECT_NEAR(steady[0].occupancy, 1.0, 1e-6);
}

}  // namespace
