#include "mesh/linear_octree.hpp"

#include <gtest/gtest.h>

#include <map>

#include "util/rng.hpp"

namespace qv::mesh {
namespace {

const Box3 kUnit{{0, 0, 0}, {1, 1, 1}};

// Total volume of the leaves must tile the domain exactly once.
double leaf_volume(const LinearOctree& t) {
  double v = 0;
  for (const auto& k : t.leaves()) {
    Vec3 e = k.box(t.domain()).extent();
    v += double(e.x) * e.y * e.z;
  }
  return v;
}

TEST(LinearOctree, UniformHasExpectedLeafCount) {
  for (int level = 0; level <= 3; ++level) {
    auto t = LinearOctree::uniform(kUnit, level);
    EXPECT_EQ(t.leaf_count(), std::size_t(1) << (3 * level));
    EXPECT_EQ(t.max_leaf_level(), level);
    EXPECT_EQ(t.min_leaf_level(), level);
    EXPECT_NEAR(leaf_volume(t), 1.0, 1e-6);
  }
}

TEST(LinearOctree, AdaptiveBuildRefinesNearTarget) {
  // Ask for fine cells near one corner only.
  auto size = [](Vec3 p) {
    float d = (p - Vec3{0, 0, 0}).norm();
    return d < 0.3f ? 0.04f : 0.5f;
  };
  auto t = LinearOctree::build(kUnit, size, 1, 6);
  EXPECT_GT(t.max_leaf_level(), t.min_leaf_level());
  EXPECT_NEAR(leaf_volume(t), 1.0, 1e-5);
  EXPECT_TRUE(t.is_balanced());
  // The leaf containing the refined corner is deeper than the far corner's.
  auto near_idx = t.find_leaf(Vec3{0.02f, 0.02f, 0.02f});
  auto far_idx = t.find_leaf(Vec3{0.9f, 0.9f, 0.9f});
  ASSERT_GE(near_idx, 0);
  ASSERT_GE(far_idx, 0);
  EXPECT_GT(int(t.leaves()[std::size_t(near_idx)].level),
            int(t.leaves()[std::size_t(far_idx)].level));
}

TEST(LinearOctree, BalanceEnforcedOnPathologicalInput) {
  // Point refinement to depth 7 in one corner: without balancing the corner
  // leaf would neighbor level-1 cells.
  auto size = [](Vec3 p) {
    return (p - Vec3{0.01f, 0.01f, 0.01f}).norm() < 0.02f ? 0.01f : 1.0f;
  };
  auto t = LinearOctree::build(kUnit, size, 0, 7);
  EXPECT_TRUE(t.is_balanced());
  EXPECT_NEAR(leaf_volume(t), 1.0, 1e-5);
}

TEST(LinearOctree, FindLeafLocatesEveryCellCenter) {
  auto size = [](Vec3 p) { return p.x < 0.5f ? 0.1f : 0.3f; };
  auto t = LinearOctree::build(kUnit, size, 1, 5);
  for (std::size_t i = 0; i < t.leaf_count(); ++i) {
    Vec3 c = t.leaves()[i].box(kUnit).center();
    EXPECT_EQ(t.find_leaf(c), std::ptrdiff_t(i));
  }
}

TEST(LinearOctree, FindLeafOutsideDomain) {
  auto t = LinearOctree::uniform(kUnit, 2);
  EXPECT_EQ(t.find_leaf(Vec3{-0.1f, 0.5f, 0.5f}), -1);
  EXPECT_EQ(t.find_leaf(Vec3{0.5f, 0.5f, 1.5f}), -1);
}

TEST(LinearOctree, ClippedCoarsensDeepLeaves) {
  auto size = [](Vec3) { return 0.06f; };  // forces level >= 5 everywhere
  auto t = LinearOctree::build(kUnit, size, 2, 5);
  auto c = t.clipped(3);
  EXPECT_EQ(c.max_leaf_level(), 3);
  EXPECT_EQ(c.leaf_count(), std::size_t(1) << 9);  // uniform level 3
  EXPECT_NEAR(leaf_volume(c), 1.0, 1e-6);
}

TEST(LinearOctree, ClippedKeepsShallowLeaves) {
  auto size = [](Vec3 p) { return p.x < 0.5f ? 0.05f : 0.6f; };
  auto t = LinearOctree::build(kUnit, size, 1, 5);
  int shallow_before = 0;
  for (const auto& k : t.leaves())
    if (int(k.level) <= 2) ++shallow_before;
  auto c = t.clipped(4);
  int shallow_after = 0;
  for (const auto& k : c.leaves())
    if (int(k.level) <= 2) ++shallow_after;
  EXPECT_EQ(shallow_before, shallow_after);
  EXPECT_NEAR(leaf_volume(c), 1.0, 1e-5);
}

TEST(LinearOctree, SubtreeRangeCoversExactlyTheDescendants) {
  auto t = LinearOctree::uniform(kUnit, 3);
  OctKey block{1, 0, 1, 1};  // one octant at level 1
  auto [lo, hi] = t.subtree_range(block);
  EXPECT_EQ(hi - lo, 64u);  // 4^3 level-3 leaves per level-1 octant
  for (std::size_t i = lo; i < hi; ++i) {
    EXPECT_TRUE(block.is_ancestor_of(t.leaves()[i]));
  }
  // Leaves outside the range are not descendants.
  if (lo > 0) EXPECT_FALSE(block.is_ancestor_of(t.leaves()[lo - 1]));
  if (hi < t.leaf_count()) EXPECT_FALSE(block.is_ancestor_of(t.leaves()[hi]));
}

TEST(LinearOctree, SubtreeRangeOfBlockInsideShallowLeaf) {
  auto t = LinearOctree::uniform(kUnit, 1);  // 8 leaves at level 1
  OctKey deep_block{2, 2, 2, 2};             // level-2 octant inside leaf (1,1,1)
  auto [lo, hi] = t.subtree_range(deep_block);
  EXPECT_EQ(hi - lo, 1u);
  EXPECT_TRUE(t.leaves()[lo].is_ancestor_of(deep_block));
}

TEST(LinearOctree, FromLeavesRoundTrip) {
  auto size = [](Vec3 p) { return p.z < 0.4f ? 0.08f : 0.4f; };
  auto t = LinearOctree::build(kUnit, size, 1, 5);
  std::vector<OctKey> keys(t.leaves().begin(), t.leaves().end());
  auto u = LinearOctree::from_leaves(kUnit, std::move(keys));
  ASSERT_EQ(u.leaf_count(), t.leaf_count());
  for (std::size_t i = 0; i < t.leaf_count(); ++i) {
    EXPECT_EQ(u.leaves()[i], t.leaves()[i]);
  }
}

TEST(LinearOctree, LeavesAreSortedAndDisjoint) {
  auto size = [](Vec3 p) { return 0.05f + 0.4f * p.y; };
  auto t = LinearOctree::build(kUnit, size, 1, 6);
  for (std::size_t i = 1; i < t.leaf_count(); ++i) {
    EXPECT_LT(t.leaves()[i - 1], t.leaves()[i]);
    EXPECT_FALSE(t.leaves()[i - 1].is_ancestor_of(t.leaves()[i]));
  }
}

// Property sweep: random size fields produce valid balanced octrees.
class OctreeProperty : public ::testing::TestWithParam<int> {};

TEST_P(OctreeProperty, RandomFieldsYieldValidTrees) {
  Rng rng(std::uint64_t(GetParam()) * 77 + 1);
  Vec3 hot{rng.next_float(), rng.next_float(), rng.next_float()};
  float fine = 0.03f + 0.05f * rng.next_float();
  auto size = [hot, fine](Vec3 p) {
    float d = (p - hot).norm();
    return fine + 0.5f * d;
  };
  auto t = LinearOctree::build(kUnit, size, 1, 6);
  EXPECT_TRUE(t.is_balanced());
  EXPECT_NEAR(leaf_volume(t), 1.0, 1e-5);
  // Every leaf found at its own center.
  Rng probe(99);
  for (int i = 0; i < 200; ++i) {
    Vec3 p{probe.next_float(), probe.next_float(), probe.next_float()};
    auto idx = t.find_leaf(p);
    ASSERT_GE(idx, 0);
    EXPECT_TRUE(t.leaves()[std::size_t(idx)].box(kUnit).contains(p));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OctreeProperty, ::testing::Range(0, 6));

}  // namespace
}  // namespace qv::mesh
