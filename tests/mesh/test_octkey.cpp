#include "mesh/octkey.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace qv::mesh {
namespace {

TEST(Morton, EncodeDecodeRoundTrip) {
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    std::uint32_t x = std::uint32_t(rng.next_below(1u << 20));
    std::uint32_t y = std::uint32_t(rng.next_below(1u << 20));
    std::uint32_t z = std::uint32_t(rng.next_below(1u << 20));
    std::uint32_t dx, dy, dz;
    morton_decode(morton_encode(x, y, z), dx, dy, dz);
    ASSERT_EQ(x, dx);
    ASSERT_EQ(y, dy);
    ASSERT_EQ(z, dz);
  }
}

TEST(Morton, KnownValues) {
  EXPECT_EQ(morton_encode(0, 0, 0), 0u);
  EXPECT_EQ(morton_encode(1, 0, 0), 1u);
  EXPECT_EQ(morton_encode(0, 1, 0), 2u);
  EXPECT_EQ(morton_encode(0, 0, 1), 4u);
  EXPECT_EQ(morton_encode(1, 1, 1), 7u);
  EXPECT_EQ(morton_encode(2, 0, 0), 8u);
}

TEST(OctKey, ChildParentRoundTrip) {
  OctKey root{};
  for (int c = 0; c < 8; ++c) {
    OctKey ch = root.child(c);
    EXPECT_EQ(ch.level, 1);
    EXPECT_EQ(ch.parent(), root);
    EXPECT_EQ(int(ch.x) | (int(ch.y) << 1) | (int(ch.z) << 2), c);
  }
}

TEST(OctKey, AncestorOfDescendant) {
  OctKey k{5, 3, 7, 3};
  OctKey grandchild = k.child(6).child(1);
  EXPECT_TRUE(k.is_ancestor_of(grandchild));
  EXPECT_FALSE(grandchild.is_ancestor_of(k));
  EXPECT_EQ(grandchild.ancestor(3), k);
  // A key is its own ancestor at its own level.
  EXPECT_TRUE(k.is_ancestor_of(k));
}

TEST(OctKey, DepthFirstOrdering) {
  // Ancestors sort before descendants; disjoint octants sort by Morton.
  OctKey a{0, 0, 0, 1};
  OctKey a_child = a.child(3);
  OctKey b{1, 0, 0, 1};
  EXPECT_LT(a, a_child);
  EXPECT_LT(a_child, b);
  EXPECT_LT(a, b);
}

TEST(OctKey, FaceNeighborInterior) {
  OctKey k{2, 2, 2, 3};
  OctKey n;
  ASSERT_TRUE(k.face_neighbor(0, +1, n));
  EXPECT_EQ(n.x, 3u);
  EXPECT_EQ(n.y, 2u);
  ASSERT_TRUE(k.face_neighbor(2, -1, n));
  EXPECT_EQ(n.z, 1u);
}

TEST(OctKey, FaceNeighborAtBoundary) {
  OctKey corner{0, 0, 0, 2};
  OctKey n;
  EXPECT_FALSE(corner.face_neighbor(0, -1, n));
  EXPECT_FALSE(corner.face_neighbor(1, -1, n));
  OctKey far{3, 3, 3, 2};
  EXPECT_FALSE(far.face_neighbor(0, +1, n));
  ASSERT_TRUE(far.face_neighbor(0, -1, n));
  EXPECT_EQ(n.x, 2u);
}

TEST(OctKey, BoxGeometry) {
  Box3 domain{{0, 0, 0}, {8, 8, 8}};
  OctKey k{1, 0, 3, 2};  // level 2: 4 cells per side, each 2 units
  Box3 b = k.box(domain);
  EXPECT_FLOAT_EQ(b.lo.x, 2);
  EXPECT_FLOAT_EQ(b.lo.y, 0);
  EXPECT_FLOAT_EQ(b.lo.z, 6);
  EXPECT_FLOAT_EQ(b.hi.x, 4);
  EXPECT_FLOAT_EQ(b.hi.z, 8);
}

TEST(OctKey, SiblingBoxesTile) {
  Box3 domain{{-1, -1, -1}, {1, 1, 1}};
  OctKey parent{0, 0, 0, 0};
  Box3 pb = parent.box(domain);
  float child_volume = 0;
  for (int c = 0; c < 8; ++c) {
    Vec3 e = parent.child(c).box(domain).extent();
    child_volume += e.x * e.y * e.z;
  }
  Vec3 pe = pb.extent();
  EXPECT_NEAR(child_volume, pe.x * pe.y * pe.z, 1e-5f);
}

}  // namespace
}  // namespace qv::mesh
