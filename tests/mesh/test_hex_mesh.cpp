#include "mesh/hex_mesh.hpp"

#include <gtest/gtest.h>

#include <set>

#include "util/rng.hpp"

namespace qv::mesh {
namespace {

const Box3 kUnit{{0, 0, 0}, {1, 1, 1}};

HexMesh adaptive_mesh(int min_level, int max_level) {
  auto size = [](Vec3 p) {
    return (p - Vec3{0.25f, 0.25f, 0.75f}).norm() < 0.3f ? 0.06f : 0.5f;
  };
  return HexMesh(LinearOctree::build(kUnit, size, min_level, max_level));
}

TEST(HexMesh, UniformNodeAndCellCounts) {
  for (int level = 1; level <= 3; ++level) {
    HexMesh mesh(LinearOctree::uniform(kUnit, level));
    std::size_t n = std::size_t(1) << level;
    EXPECT_EQ(mesh.cell_count(), n * n * n);
    EXPECT_EQ(mesh.node_count(), (n + 1) * (n + 1) * (n + 1));
    EXPECT_TRUE(mesh.constraints().empty());  // no hanging nodes when uniform
    EXPECT_EQ(mesh.surface_nodes().size(), (n + 1) * (n + 1));
  }
}

TEST(HexMesh, NodesAreShared) {
  HexMesh mesh(LinearOctree::uniform(kUnit, 2));
  // Interior node (0.5, 0.5, 0.5) belongs to 8 cells; count its appearances.
  auto idx = mesh.find_node({1u << (kMaxLevel - 1), 1u << (kMaxLevel - 1),
                             1u << (kMaxLevel - 1)});
  ASSERT_GE(idx, 0);
  int appearances = 0;
  for (const auto& cell : mesh.cells()) {
    for (NodeId n : cell)
      if (n == NodeId(idx)) ++appearances;
  }
  EXPECT_EQ(appearances, 8);
}

TEST(HexMesh, CellNodePositionsMatchCorners) {
  HexMesh mesh = adaptive_mesh(1, 4);
  auto positions = mesh.node_positions();
  for (std::size_t c = 0; c < mesh.cell_count(); ++c) {
    Box3 b = mesh.cell_box(c);
    const auto& conn = mesh.cell_nodes(c);
    for (int corner = 0; corner < 8; ++corner) {
      Vec3 expect{(corner & 1) ? b.hi.x : b.lo.x, (corner & 2) ? b.hi.y : b.lo.y,
                  (corner & 4) ? b.hi.z : b.lo.z};
      Vec3 got = positions[conn[std::size_t(corner)]];
      EXPECT_NEAR(got.x, expect.x, 1e-5f);
      EXPECT_NEAR(got.y, expect.y, 1e-5f);
      EXPECT_NEAR(got.z, expect.z, 1e-5f);
    }
  }
}

TEST(HexMesh, TrilinearInterpolationReproducesLinearField) {
  HexMesh mesh = adaptive_mesh(1, 4);
  // f(p) = 2x - 3y + z + 0.5 is reproduced exactly by trilinear interp.
  std::vector<float> values(mesh.node_count());
  auto positions = mesh.node_positions();
  for (std::size_t n = 0; n < values.size(); ++n) {
    Vec3 p = positions[n];
    values[n] = 2 * p.x - 3 * p.y + p.z + 0.5f;
  }
  Rng rng(31);
  for (int i = 0; i < 300; ++i) {
    Vec3 p{rng.next_float(), rng.next_float(), rng.next_float()};
    float out;
    ASSERT_TRUE(mesh.sample(values, p, out));
    EXPECT_NEAR(out, 2 * p.x - 3 * p.y + p.z + 0.5f, 1e-4f);
  }
  float out;
  EXPECT_FALSE(mesh.sample(values, Vec3{2, 0, 0}, out));
}

TEST(HexMesh, HangingConstraintsExistAtLevelJumps) {
  HexMesh mesh = adaptive_mesh(1, 4);
  ASSERT_GT(mesh.constraints().size(), 0u);
  // Hanging node values must equal their parent interpolation after apply.
  std::vector<float> values(mesh.node_count());
  Rng rng(5);
  for (auto& v : values) v = rng.next_float();
  mesh.apply_constraints(values);
  for (const auto& hc : mesh.constraints()) {
    float sum = 0;
    for (int i = 0; i < hc.parent_count; ++i)
      sum += values[hc.parents[std::size_t(i)]];
    EXPECT_NEAR(values[hc.node], sum / float(hc.parent_count), 1e-6f);
  }
}

TEST(HexMesh, ConstraintsPreserveLinearFields) {
  // A linear field already satisfies hanging-node interpolation: applying
  // constraints must be a no-op.
  HexMesh mesh = adaptive_mesh(1, 5);
  std::vector<float> values(mesh.node_count());
  auto positions = mesh.node_positions();
  for (std::size_t n = 0; n < values.size(); ++n) {
    Vec3 p = positions[n];
    values[n] = 1.5f * p.x + 0.25f * p.y - 2.0f * p.z;
  }
  auto before = values;
  mesh.apply_constraints(values);
  for (std::size_t n = 0; n < values.size(); ++n) {
    EXPECT_NEAR(values[n], before[n], 1e-5f);
  }
}

TEST(HexMesh, DistributeHangingForcesConservesTotal) {
  HexMesh mesh = adaptive_mesh(1, 4);
  std::vector<Vec3> forces(mesh.node_count());
  Rng rng(6);
  Vec3 total{};
  for (auto& f : forces) {
    f = {rng.next_float(), rng.next_float(), rng.next_float()};
    total += f;
  }
  mesh.distribute_hanging_forces(forces);
  Vec3 after{};
  for (std::size_t n = 0; n < forces.size(); ++n) {
    after += forces[n];
    if (mesh.is_hanging(NodeId(n))) {
      EXPECT_FLOAT_EQ(forces[n].x, 0.0f);  // slaved DOFs hold no force
    }
  }
  EXPECT_NEAR(after.x, total.x, 1e-3f);
  EXPECT_NEAR(after.y, total.y, 1e-3f);
  EXPECT_NEAR(after.z, total.z, 1e-3f);
}

TEST(HexMesh, SurfaceNodesAreOnTopFace) {
  HexMesh mesh = adaptive_mesh(1, 4);
  EXPECT_GT(mesh.surface_nodes().size(), 0u);
  auto positions = mesh.node_positions();
  for (NodeId n : mesh.surface_nodes()) {
    EXPECT_NEAR(positions[n].z, 1.0f, 1e-5f);
  }
  // Every node with z == top must be in the surface list.
  std::set<NodeId> surf(mesh.surface_nodes().begin(),
                        mesh.surface_nodes().end());
  auto coords = mesh.node_grid_coords();
  for (NodeId n = 0; n < mesh.node_count(); ++n) {
    if (coords[n].z == (1u << kMaxLevel)) EXPECT_TRUE(surf.count(n));
  }
}

TEST(HexMesh, LocateReturnsUnitLocalCoords) {
  HexMesh mesh(LinearOctree::uniform(kUnit, 1));
  HexMesh::CellSample s;
  ASSERT_TRUE(mesh.locate(Vec3{0.25f, 0.25f, 0.25f}, s));
  EXPECT_NEAR(s.u, 0.5f, 1e-5f);
  EXPECT_NEAR(s.v, 0.5f, 1e-5f);
  EXPECT_NEAR(s.w, 0.5f, 1e-5f);
}

TEST(HexMesh, FindNodeMissReturnsNegative) {
  HexMesh mesh(LinearOctree::uniform(kUnit, 1));
  // A grid coordinate not on the level-1 lattice has no node.
  EXPECT_EQ(mesh.find_node({1, 1, 1}), -1);
}

}  // namespace
}  // namespace qv::mesh
