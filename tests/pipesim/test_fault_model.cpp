// Pipeline-model behavior under parallel-file-system degradation.
#include <gtest/gtest.h>

#include "pipesim/pipeline_model.hpp"

namespace qv::pipesim {
namespace {

PipelineParams small_params() {
  PipelineParams p;
  p.machine.step_bytes = 1e9;
  p.input_procs = 4;
  p.groups = 2;
  p.num_steps = 12;
  p.render_seconds = 1.0;
  return p;
}

TEST(DiskFaultModel, DisabledFaultMatchesBaselineExactly) {
  PipelineParams base = small_params();
  PipelineParams off = small_params();
  off.disk_fault.enabled = false;
  off.disk_fault.degraded_factor = 0.0;
  auto a = simulate_1dip(base);
  auto b = simulate_1dip(off);
  EXPECT_EQ(a.frame_times, b.frame_times);
  EXPECT_EQ(b.disk_outages, 0);
  EXPECT_DOUBLE_EQ(b.disk_degraded_seconds, 0.0);
}

TEST(DiskFaultModel, OutagesDelayTheAnimationDeterministically) {
  PipelineParams p = small_params();
  p.disk_fault.enabled = true;
  p.disk_fault.seed = 11;
  p.disk_fault.mean_up_seconds = 6.0;
  p.disk_fault.mean_down_seconds = 3.0;
  p.disk_fault.degraded_factor = 0.0;  // blackouts

  auto clean = simulate_1dip(small_params());
  auto faulty = simulate_1dip(p);
  auto faulty2 = simulate_1dip(p);

  ASSERT_EQ(faulty.frame_times.size(), std::size_t(p.num_steps));
  EXPECT_EQ(faulty.frame_times, faulty2.frame_times);  // seeded => reproducible
  EXPECT_GE(faulty.total_seconds, clean.total_seconds);
  // The accounting only reports outages that overlapped the run.
  if (faulty.disk_outages > 0) {
    EXPECT_GT(faulty.disk_degraded_seconds, 0.0);
    EXPECT_LE(faulty.disk_degraded_seconds, faulty.total_seconds);
  }
  // Frames still arrive in order.
  for (std::size_t i = 1; i < faulty.frame_times.size(); ++i)
    EXPECT_GE(faulty.frame_times[i], faulty.frame_times[i - 1]);
}

TEST(DiskFaultModel, PartialDegradationHurtsLessThanBlackout) {
  PipelineParams black = small_params();
  black.disk_fault.enabled = true;
  black.disk_fault.seed = 5;
  black.disk_fault.mean_up_seconds = 4.0;
  black.disk_fault.mean_down_seconds = 4.0;
  black.disk_fault.degraded_factor = 0.0;

  PipelineParams half = black;
  half.disk_fault.degraded_factor = 0.5;

  // An explicit shared horizon pins both runs to the same outage trace
  // (auto-sizing would give the blackout run a longer horizon).
  black.disk_fault.horizon_seconds = 500.0;
  half.disk_fault.horizon_seconds = 500.0;

  auto b = simulate_2dip(black);
  auto h = simulate_2dip(half);
  EXPECT_LE(h.total_seconds, b.total_seconds);
}

TEST(DiskFaultModel, AutoHorizonCoversTheWholeRun) {
  PipelineParams p = small_params();
  p.disk_fault.enabled = true;
  p.disk_fault.seed = 3;
  p.disk_fault.mean_up_seconds = 2.0;
  p.disk_fault.mean_down_seconds = 2.0;
  p.disk_fault.degraded_factor = 0.0;
  p.disk_fault.horizon_seconds = 0.0;  // sized automatically

  auto r = simulate_naive(p);  // the slowest configuration: worst case
  ASSERT_EQ(r.frame_times.size(), std::size_t(p.num_steps));
  // With mean_up == mean_down == 2 s the disk is down half the time; the
  // naive serial loop must still finish (i.e. the pre-scheduled windows did
  // not run out mid-animation, which would freeze a transfer forever).
  EXPECT_GT(r.total_seconds, 0.0);
}

}  // namespace
}  // namespace qv::pipesim
