#include "pipesim/pipeline_model.hpp"

#include <gtest/gtest.h>

namespace qv::pipesim {
namespace {

// Paper-calibrated machine (see machine.hpp): Tf ~ 17.8 s, Tp ~ 4 s,
// Ts ~ 2 s for a full 400 MB step.
PipelineParams base_params() {
  PipelineParams p;
  p.num_steps = 40;
  p.render_seconds = 2.0;  // 64 renderers at 512x512
  return p;
}

TEST(Plan, MatchesThePaperFormulas) {
  Machine mc;
  Plan p = plan(mc, /*render_seconds=*/2.0);
  EXPECT_NEAR(p.tf, 400e6 / 22.5e6, 0.1);
  EXPECT_NEAR(p.tp, 4.0, 0.1);
  EXPECT_NEAR(p.ts, 2.0, 0.01);
  // m = (Tf + Tp)/Ts + 1 ~ 11.9 -> 12 input processors, the paper's Fig 8.
  EXPECT_EQ(p.m_1dip, 12);
}

TEST(Plan, TwoDipWidthFollowsTsOverTr) {
  Machine mc;
  // 128 renderers: Tr = 1 s < Ts = 2 s -> m = 2 per group.
  Plan p = plan(mc, 1.0);
  EXPECT_EQ(p.m_2dip, 2);
  EXPECT_GE(p.n_2dip, 2);
}

TEST(Naive, InterframeIsTheFullSerialSum) {
  auto p = base_params();
  p.num_steps = 6;
  auto r = simulate_naive(p);
  // Tf + Tp + Tr + Tc ~ 17.8 + 4 + 2 + 0.25 ~ 24 s: the 15-20+ s
  // interframe delay of the pre-pipeline system (§1).
  ASSERT_EQ(r.frame_times.size(), 6u);
  EXPECT_NEAR(r.avg_interframe, 24.0, 1.0);
}

TEST(OneDip, SingleInputProcessorIsIoBound) {
  auto p = base_params();
  p.input_procs = 1;
  auto r = simulate_1dip(p);
  // One reader: interframe ~ Tf + Tp + Ts ~ 23.8 s (send is serialized
  // behind the next fetch on the same processor).
  EXPECT_GT(r.avg_interframe, 15.0);
}

TEST(OneDip, EnoughInputProcessorsHideIo) {
  auto p = base_params();
  p.input_procs = 12;  // the paper's knee for 64 renderers
  auto r = simulate_1dip(p);
  // Interframe collapses to ~ Tr + Tc.
  EXPECT_NEAR(r.avg_interframe, 2.25, 0.4);
}

TEST(OneDip, InterframeMonotonicallyImprovesWithInputProcs) {
  auto p = base_params();
  double prev = 1e30;
  for (int m : {1, 2, 4, 8, 12}) {
    p.input_procs = m;
    auto r = simulate_1dip(p);
    EXPECT_LE(r.avg_interframe, prev + 0.2) << "m " << m;
    prev = r.avg_interframe;
  }
}

TEST(OneDip, CannotBeatTheSendTime) {
  // Fig 9's lesson: with Tr = 1 s < Ts = 2 s, 1DIP plateaus at ~Ts while
  // 2DIP reaches ~Tr.
  auto p = base_params();
  p.render_seconds = 1.0;  // 128 renderers
  p.input_procs = 22;      // far beyond the knee
  auto r1 = simulate_1dip(p);
  EXPECT_GT(r1.avg_interframe, 1.8);  // stuck near Ts + Tc

  PipelineParams p2 = p;
  p2.input_procs = 2;  // group width m = Ts/Tr
  p2.groups = 12;
  auto r2 = simulate_2dip(p2);
  EXPECT_LT(r2.avg_interframe, 1.5);  // ~ Tr + Tc
  EXPECT_LT(r2.avg_interframe, r1.avg_interframe);
}

TEST(TwoDip, MatchesOneDipWhenGroupWidthIsOne) {
  auto p = base_params();
  p.input_procs = 1;  // m = 1: 2DIP degenerates to 1DIP with n readers
  p.groups = 6;
  auto r2 = simulate_2dip(p);
  PipelineParams p1 = base_params();
  p1.input_procs = 6;
  auto r1 = simulate_1dip(p1);
  EXPECT_NEAR(r2.avg_interframe, r1.avg_interframe, 0.5);
}

TEST(TwoDip, PlanIsSufficientToHideIo) {
  Machine mc;
  double tr = 1.0;
  Plan pl = plan(mc, tr);
  PipelineParams p = base_params();
  p.render_seconds = tr;
  p.input_procs = pl.m_2dip;
  p.groups = pl.n_2dip;
  auto r = simulate_2dip(p);
  EXPECT_NEAR(r.avg_interframe, tr + p.machine.composite_seconds, 0.3);
}

TEST(AdaptiveFetching, ReducesRequiredInputProcs) {
  // §6: fetching only level-8 data (a fraction of the bytes) needs ~4 input
  // processors instead of 12 at 64 renderers.
  auto p = base_params();
  p.fetch_fraction = 0.3;
  p.input_procs = 4;
  auto r = simulate_1dip(p);
  EXPECT_NEAR(r.avg_interframe, 2.25, 0.5);

  Machine mc;
  Plan pl = plan(mc, 2.0, 0.0, 0.3);
  EXPECT_LE(pl.m_1dip, 5);
  EXPECT_GE(pl.m_1dip, 3);
}

TEST(ExtraInputWork, LicRaisesTheKnee) {
  // Fig 12: LIC synthesis on the input processors pushes the knee from 12
  // to ~16 input processors.
  Machine mc;
  Plan without = plan(mc, 2.0, 0.0);
  Plan with_lic = plan(mc, 2.0, 8.0);
  EXPECT_EQ(without.m_1dip, 12);
  EXPECT_GE(with_lic.m_1dip, 15);
  EXPECT_LE(with_lic.m_1dip, 17);

  auto p = base_params();
  p.extra_input_seconds = 8.0;
  p.input_procs = with_lic.m_1dip;
  auto r = simulate_1dip(p);
  EXPECT_NEAR(r.avg_interframe, 2.25, 0.5);
}

TEST(Result, FramesAreMonotone) {
  auto p = base_params();
  p.input_procs = 4;
  p.num_steps = 10;
  auto r = simulate_1dip(p);
  ASSERT_EQ(r.frame_times.size(), 10u);
  for (std::size_t i = 1; i < r.frame_times.size(); ++i) {
    EXPECT_GT(r.frame_times[i], r.frame_times[i - 1]);
  }
  EXPECT_GT(r.render_busy_fraction, 0.0);
  EXPECT_LE(r.render_busy_fraction, 1.0 + 1e-9);
}

TEST(DiskContention, AggregateBandwidthCapsConcurrentReaders) {
  // With a deliberately tiny aggregate disk, adding readers stops helping.
  auto p = base_params();
  p.machine.disk_total_bw = 45e6;  // only ~2 streams' worth
  p.input_procs = 12;
  auto capped = simulate_1dip(p);
  p.machine.disk_total_bw = 1.6e9;
  auto roomy = simulate_1dip(p);
  EXPECT_GT(capped.avg_interframe, roomy.avg_interframe * 2.0);
}

}  // namespace
}  // namespace qv::pipesim
