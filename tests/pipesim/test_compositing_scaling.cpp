// Regression tests for the paper's compositing scaling claim (SC'04 §7):
// at 512-3072 processors, a round-structured exchange keeps compositing
// time roughly flat while a direct/serial scheme grows linearly with P.
// The analytic model is shared with bench_compositing_scaling so the curve
// shape is asserted on every CI run, not just plotted once.
#include <gtest/gtest.h>

#include <vector>

#include "pipesim/compositing_model.hpp"

namespace qv::pipesim {
namespace {

constexpr int kWidth = 1024;  // the paper's frame size
const std::vector<int> kSweep{512, 1024, 2048, 3072};

CompositePoint direct(int ranks, bool compress = false) {
  return model_composite(CompositeAlgorithm::kDirectSend, ranks, kWidth, 4,
                         compress, Machine{});
}

CompositePoint radix(int ranks, int k = 4, bool compress = false) {
  return model_composite(CompositeAlgorithm::kRadixK, ranks, kWidth, k,
                         compress, Machine{});
}

TEST(CompositingScaling, RadixKBeatsDirectSendAtEverySweepCount) {
  for (int ranks : kSweep) {
    SCOPED_TRACE(ranks);
    EXPECT_LT(radix(ranks).seconds, direct(ranks).seconds);
    EXPECT_LT(radix(ranks, 4, true).seconds, direct(ranks, true).seconds);
  }
}

TEST(CompositingScaling, DirectSendLatencyGrowsLinearlyWithRanks) {
  double prev = 0.0;
  for (int ranks : kSweep) {
    SCOPED_TRACE(ranks);
    const double t = direct(ranks).seconds;
    EXPECT_GT(t, prev);  // strictly increasing across the sweep
    prev = t;
  }
  // 6x the ranks should cost well over 4x the time (latency-dominated).
  EXPECT_GT(direct(3072).seconds / direct(512).seconds, 4.0);
}

TEST(CompositingScaling, RadixKCurveStaysFlatAcrossTheSweep) {
  double lo = 1e30, hi = 0.0;
  for (int ranks : kSweep) {
    const double t = radix(ranks).seconds;
    lo = std::min(lo, t);
    hi = std::max(hi, t);
    // The paper reports compositing as a small fraction of a frame's time
    // at terascale; the modeled machine keeps it in the millisecond range.
    EXPECT_LT(t, 0.02) << ranks;
  }
  EXPECT_LT(hi / lo, 2.0);  // near-constant, unlike direct-send's 6x
}

TEST(CompositingScaling, CompressionReducesTimeAndTrafficAtEveryCount) {
  for (int ranks : kSweep) {
    SCOPED_TRACE(ranks);
    const CompositePoint raw = radix(ranks);
    const CompositePoint rle = radix(ranks, 4, true);
    EXPECT_LT(rle.seconds, raw.seconds);
    EXPECT_LT(rle.mb_moved, raw.mb_moved);
    EXPECT_GT(rle.mb_moved, 0.0);
  }
}

TEST(CompositingScaling, RadixKUsesFarFewerMessagesThanDirectSend) {
  for (int ranks : kSweep) {
    SCOPED_TRACE(ranks);
    EXPECT_LT(radix(ranks).messages, direct(ranks).messages / 10.0);
  }
}

TEST(CompositingScaling, RoundCountMatchesThePlan) {
  EXPECT_EQ(radix(512).rounds, 5);    // 4*4*4*4*2
  EXPECT_EQ(radix(1024).rounds, 5);   // 4^5
  EXPECT_EQ(radix(3072).rounds, 6);   // 4^5 * 3
  EXPECT_EQ(radix(1024, 2).rounds, 10);
}

TEST(CompositingScaling, RemainderFoldKeepsNonSmoothCountsCompetitive) {
  // 3072 is not 2-smooth: k=2 folds 1024 ranks onto the 2048 active ones.
  const compositing::RadixPlan plan = compositing::plan_radix_rounds(3072, 2);
  EXPECT_EQ(plan.active, 2048);
  EXPECT_EQ(plan.folded(), 1024);
  const CompositePoint pt = radix(3072, 2);
  EXPECT_GT(pt.seconds, 0.0);
  EXPECT_LT(pt.seconds, direct(3072).seconds);
}

TEST(CompositingScaling, DegenerateSingleRankIsFree) {
  const CompositePoint pt = radix(1);
  EXPECT_EQ(pt.rounds, 0);
  EXPECT_EQ(pt.messages, 0.0);
  EXPECT_LT(pt.seconds, 0.05);  // just the local blend, no wire terms
}

}  // namespace
}  // namespace qv::pipesim
