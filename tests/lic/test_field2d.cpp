#include "lic/field2d.hpp"

#include <gtest/gtest.h>

#include "mesh/linear_octree.hpp"

namespace qv::lic {
namespace {

const Box3 kUnit{{0, 0, 0}, {1, 1, 1}};

TEST(VectorGrid, BilinearSampleInterpolates) {
  VectorGrid g(2, 2, {0, 0, 1, 1});
  g.at(0, 0) = {0, 0};
  g.at(1, 0) = {2, 0};
  g.at(0, 1) = {0, 2};
  g.at(1, 1) = {2, 2};
  Vec2 mid = g.sample_grid(0.5f, 0.5f);
  EXPECT_NEAR(mid.x, 1.0f, 1e-5f);
  EXPECT_NEAR(mid.y, 1.0f, 1e-5f);
  // Clamping outside the grid.
  Vec2 out = g.sample_grid(-1.0f, 5.0f);
  EXPECT_NEAR(out.x, 0.0f, 1e-5f);
  EXPECT_NEAR(out.y, 2.0f, 1e-5f);
}

TEST(ExtractSurfaceField, PullsTopNodesWithXYComponents) {
  mesh::HexMesh mesh(mesh::LinearOctree::uniform(kUnit, 2));
  std::vector<float> data(mesh.node_count() * 3);
  auto positions = mesh.node_positions();
  for (std::size_t n = 0; n < mesh.node_count(); ++n) {
    data[3 * n + 0] = positions[n].x;        // vx = x
    data[3 * n + 1] = -positions[n].y;       // vy = -y
    data[3 * n + 2] = 99.0f;                 // vz ignored by the extraction
  }
  auto field = extract_surface_field(mesh, data);
  ASSERT_EQ(field.positions.size(), mesh.surface_nodes().size());
  ASSERT_EQ(field.vectors.size(), field.positions.size());
  for (std::size_t i = 0; i < field.positions.size(); ++i) {
    EXPECT_FLOAT_EQ(field.vectors[i].x, field.positions[i].x);
    EXPECT_FLOAT_EQ(field.vectors[i].y, -field.positions[i].y);
  }
}

TEST(Resample, ReproducesSmoothFieldOnRegularInput) {
  // Scattered points on a regular lattice carrying a linear field: IDW
  // resampling must reproduce it closely.
  SurfaceField field;
  for (int y = 0; y <= 10; ++y) {
    for (int x = 0; x <= 10; ++x) {
      Vec2 p{float(x) / 10.0f, float(y) / 10.0f};
      field.positions.push_back(p);
      field.vectors.push_back({p.x + 0.5f, p.y - 0.25f});
    }
  }
  Quadtree qt(field.positions);
  VectorGrid grid = resample(field, qt, 21, 21);
  for (int y = 0; y < 21; ++y) {
    for (int x = 0; x < 21; ++x) {
      Vec2 p{float(x) / 20.0f, float(y) / 20.0f};
      Vec2 v = grid.at(x, y);
      EXPECT_NEAR(v.x, p.x + 0.5f, 0.05f) << x << "," << y;
      EXPECT_NEAR(v.y, p.y - 0.25f, 0.05f);
    }
  }
}

TEST(Resample, ExactAtSamplePoints) {
  // A grid node coinciding with a data point gets (nearly) its exact value
  // (IDW weight diverges at distance 0).
  SurfaceField field;
  field.positions = {{0, 0}, {1, 0}, {0, 1}, {1, 1}};
  field.vectors = {{5, 0}, {0, 5}, {-5, 0}, {0, -5}};
  Quadtree qt(field.positions);
  VectorGrid grid = resample(field, qt, 2, 2);
  EXPECT_NEAR(grid.at(0, 0).x, 5.0f, 1e-2f);
  EXPECT_NEAR(grid.at(1, 0).y, 5.0f, 1e-2f);
  EXPECT_NEAR(grid.at(0, 1).x, -5.0f, 1e-2f);
}

TEST(Resample, SparseDataFallsBackToNearest) {
  SurfaceField field;
  field.positions = {{0, 0}, {10, 10}};
  field.vectors = {{1, 0}, {0, 1}};
  Quadtree qt(field.positions);
  VectorGrid grid = resample(field, qt, 8, 8);
  // Corner nearest (0,0) gets ~(1,0); corner nearest (10,10) gets ~(0,1).
  EXPECT_GT(grid.at(0, 0).x, 0.5f);
  EXPECT_GT(grid.at(7, 7).y, 0.5f);
}

}  // namespace
}  // namespace qv::lic
