#include "lic/lic.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

namespace qv::lic {
namespace {

VectorGrid horizontal_field(int n) {
  VectorGrid g(n, n, {0, 0, 1, 1});
  for (int y = 0; y < n; ++y)
    for (int x = 0; x < n; ++x) g.at(x, y) = {1.0f, 0.0f};
  return g;
}

// Directional autocorrelation of an image: mean |I(x+1,y)-I(x,y)| vs
// |I(x,y+1)-I(x,y)|. LIC smears noise ALONG streamlines, so variation along
// the flow must be much smaller than across it.
std::pair<double, double> directional_variation(std::span<const float> im,
                                                int n) {
  double along = 0, across = 0;
  std::size_t count = 0;
  for (int y = 1; y < n - 1; ++y) {
    for (int x = 1; x < n - 1; ++x) {
      float c = im[std::size_t(y) * n + x];
      along += std::fabs(im[std::size_t(y) * n + x + 1] - c);
      across += std::fabs(im[std::size_t(y + 1) * n + x] - c);
      ++count;
    }
  }
  return {along / double(count), across / double(count)};
}

TEST(Noise, DeterministicAndInRange) {
  auto a = make_noise(32, 32, 9);
  auto b = make_noise(32, 32, 9);
  auto c = make_noise(32, 32, 10);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  for (float v : a) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LT(v, 1.0f);
  }
}

TEST(Lic, SmearsAlongHorizontalFlow) {
  const int n = 96;
  auto field = horizontal_field(n);
  auto noise = make_noise(n, n, 5);
  LicOptions opt;
  opt.magnitude_modulation = false;
  auto out = compute_lic(field, noise, n, n, opt);
  auto [along, across] = directional_variation(out, n);
  EXPECT_LT(along * 3.0, across)
      << "along " << along << " across " << across;
}

TEST(Lic, VerticalFlowSmearsTheOtherWay) {
  const int n = 96;
  VectorGrid field(n, n, {0, 0, 1, 1});
  for (int y = 0; y < n; ++y)
    for (int x = 0; x < n; ++x) field.at(x, y) = {0.0f, 1.0f};
  auto noise = make_noise(n, n, 6);
  LicOptions opt;
  opt.magnitude_modulation = false;
  auto out = compute_lic(field, noise, n, n, opt);
  auto [along, across] = directional_variation(out, n);
  EXPECT_GT(along, across * 3.0);
}

TEST(Lic, ZeroFieldLeavesNoiseUnfiltered) {
  const int n = 32;
  VectorGrid field(n, n, {0, 0, 1, 1});  // all zero vectors
  auto noise = make_noise(n, n, 7);
  LicOptions opt;
  opt.magnitude_modulation = false;
  auto out = compute_lic(field, noise, n, n, opt);
  // Streamlines cannot advance: output equals the (kernel-0-weighted)
  // noise exactly.
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_NEAR(out[i], noise[i], 1e-5f);
  }
}

TEST(Lic, OutputBoundedByNoiseRange) {
  const int n = 64;
  VectorGrid field(n, n, {0, 0, 1, 1});
  for (int y = 0; y < n; ++y)
    for (int x = 0; x < n; ++x)
      field.at(x, y) = {float(y - n / 2), float(n / 2 - x)};  // vortex
  auto noise = make_noise(n, n, 8);
  LicOptions opt;
  auto out = compute_lic(field, noise, n, n, opt);
  for (float v : out) {
    EXPECT_GE(v, -1e-5f);
    EXPECT_LE(v, 1.0f + 1e-5f);
  }
}

TEST(Lic, MagnitudeModulationDarkensSlowRegions) {
  const int n = 48;
  VectorGrid field(n, n, {0, 0, 1, 1});
  for (int y = 0; y < n; ++y)
    for (int x = 0; x < n; ++x)
      field.at(x, y) = {x < n / 2 ? 0.05f : 1.0f, 0.0f};  // slow | fast
  auto noise = make_noise(n, n, 12);
  LicOptions opt;
  opt.magnitude_modulation = true;
  auto out = compute_lic(field, noise, n, n, opt);
  double slow = 0, fast = 0;
  for (int y = 0; y < n; ++y) {
    for (int x = 0; x < n / 2; ++x) slow += out[std::size_t(y) * n + x];
    for (int x = n / 2; x < n; ++x) fast += out[std::size_t(y) * n + x];
  }
  EXPECT_LT(slow, fast * 0.8);
}

TEST(Lic, PeriodicKernelPhaseChangesImage) {
  const int n = 48;
  auto field = horizontal_field(n);
  auto noise = make_noise(n, n, 13);
  LicOptions a, b;
  a.periodic_kernel = b.periodic_kernel = true;
  a.phase = 0.0f;
  b.phase = 0.5f;
  auto ia = compute_lic(field, noise, n, n, a);
  auto ib = compute_lic(field, noise, n, n, b);
  double diff = 0;
  for (std::size_t i = 0; i < ia.size(); ++i) diff += std::fabs(ia[i] - ib[i]);
  EXPECT_GT(diff / double(ia.size()), 1e-3);
}

TEST(Lic, SizeMismatchThrows) {
  auto field = horizontal_field(16);
  auto noise = make_noise(8, 8, 1);
  EXPECT_THROW(compute_lic(field, noise, 16, 16, {}), std::runtime_error);
  EXPECT_THROW(compute_lic(field, make_noise(16, 16, 1), 8, 8, {}),
               std::runtime_error);
}

}  // namespace
}  // namespace qv::lic
