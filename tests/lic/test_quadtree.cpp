#include "lic/quadtree.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "util/rng.hpp"

namespace qv::lic {
namespace {

std::vector<Vec2> random_points(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Vec2> pts(n);
  for (auto& p : pts) p = {rng.next_float() * 10.0f, rng.next_float() * 5.0f};
  return pts;
}

TEST(Quadtree, EmptyThrows) {
  EXPECT_THROW(Quadtree(std::span<const Vec2>{}), std::runtime_error);
}

TEST(Quadtree, BoundsCoverAllPoints) {
  auto pts = random_points(500, 1);
  Quadtree qt(pts);
  for (const auto& p : pts) EXPECT_TRUE(qt.bounds().contains(p));
}

TEST(Quadtree, RadiusQueryMatchesBruteForce) {
  auto pts = random_points(800, 2);
  Quadtree qt(pts);
  Rng rng(3);
  std::vector<std::uint32_t> hits;
  for (int trial = 0; trial < 50; ++trial) {
    Vec2 q{float(rng.uniform(-1, 11)), float(rng.uniform(-1, 6))};
    float radius = float(rng.uniform(0.1, 2.0));
    qt.query_radius(q, radius, hits);
    std::set<std::uint32_t> got(hits.begin(), hits.end());
    EXPECT_EQ(got.size(), hits.size());  // no duplicates
    for (std::uint32_t i = 0; i < pts.size(); ++i) {
      Vec2 d = pts[i] - q;
      bool inside = d.dot(d) <= radius * radius;
      EXPECT_EQ(got.count(i) > 0, inside) << "trial " << trial << " i " << i;
    }
  }
}

TEST(Quadtree, NearestMatchesBruteForce) {
  auto pts = random_points(600, 4);
  Quadtree qt(pts);
  Rng rng(5);
  for (int trial = 0; trial < 100; ++trial) {
    Vec2 q{float(rng.uniform(-2, 12)), float(rng.uniform(-2, 7))};
    std::uint32_t got = qt.nearest(q);
    float best = 1e30f;
    for (const auto& p : pts) {
      Vec2 d = p - q;
      best = std::min(best, d.dot(d));
    }
    Vec2 d = pts[got] - q;
    EXPECT_NEAR(d.dot(d), best, 1e-5f);
  }
}

TEST(Quadtree, HandlesDuplicatePoints) {
  std::vector<Vec2> pts(100, Vec2{1.0f, 1.0f});
  pts.push_back({2.0f, 2.0f});
  Quadtree qt(pts, /*leaf_capacity=*/4, /*max_depth=*/8);
  // Max depth stops runaway splitting of identical points.
  EXPECT_LE(qt.depth(), 8);
  std::vector<std::uint32_t> hits;
  qt.query_radius({1.0f, 1.0f}, 0.01f, hits);
  EXPECT_EQ(hits.size(), 100u);
  EXPECT_EQ(qt.nearest({2.1f, 2.1f}), 100u);
}

TEST(Quadtree, SinglePoint) {
  std::vector<Vec2> pts = {{3.0f, 4.0f}};
  Quadtree qt(pts);
  EXPECT_EQ(qt.nearest({0, 0}), 0u);
  std::vector<std::uint32_t> hits;
  qt.query_radius({3, 4}, 0.5f, hits);
  EXPECT_EQ(hits.size(), 1u);
  qt.query_radius({0, 0}, 0.5f, hits);
  EXPECT_TRUE(hits.empty());
}

TEST(Quadtree, DepthGrowsWithClusteredData) {
  // Tight cluster forces deeper subdivision than uniform data of same size.
  Rng rng(6);
  std::vector<Vec2> clustered;
  for (int i = 0; i < 1000; ++i) {
    clustered.push_back({0.5f + 1e-3f * rng.next_float(),
                         0.5f + 1e-3f * rng.next_float()});
    clustered.push_back({rng.next_float() * 100.0f, rng.next_float() * 100.0f});
  }
  Quadtree qt(clustered, 8, 16);
  EXPECT_GT(qt.depth(), 4);
}

TEST(Rect, Dist2) {
  Rect r{0, 0, 2, 2};
  EXPECT_FLOAT_EQ(r.dist2({1, 1}), 0.0f);      // inside
  EXPECT_FLOAT_EQ(r.dist2({3, 1}), 1.0f);      // right of
  EXPECT_FLOAT_EQ(r.dist2({3, 3}), 2.0f);      // diagonal corner
  EXPECT_FLOAT_EQ(r.dist2({-2, -2}), 8.0f);
}

}  // namespace
}  // namespace qv::lic
