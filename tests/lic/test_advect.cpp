#include "lic/lic.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace qv::lic {
namespace {

VectorGrid uniform_field(int n, Vec2 v) {
  VectorGrid g(n, n, {0, 0, 1, 1});
  for (int y = 0; y < n; ++y)
    for (int x = 0; x < n; ++x) g.at(x, y) = v;
  return g;
}

TEST(AdvectLic, UniformFlowShiftsThePattern) {
  const int n = 64;
  auto field = uniform_field(n, {1.0f, 0.0f});
  auto noise = make_noise(n, n, 3);
  // No injection: the frame is exactly the previous frame shifted by one
  // cell along +x (up to boundary clamping).
  auto next = advect_lic_frame(field, noise, noise, n, n, 1.0f, 0.0f);
  int checked = 0;
  for (int y = 2; y < n - 2; ++y) {
    for (int x = 2; x < n - 2; ++x) {
      ASSERT_NEAR(next[std::size_t(y) * n + x],
                  noise[std::size_t(y) * n + (x - 1)], 1e-5f);
      ++checked;
    }
  }
  EXPECT_GT(checked, 1000);
}

TEST(AdvectLic, ZeroFieldWithFullInjectionIsNoise) {
  const int n = 32;
  auto field = uniform_field(n, {0, 0});
  auto prev = make_noise(n, n, 4);
  auto noise = make_noise(n, n, 5);
  auto next = advect_lic_frame(field, prev, noise, n, n, 1.0f, 1.0f);
  for (std::size_t i = 0; i < next.size(); ++i) {
    EXPECT_FLOAT_EQ(next[i], noise[i]);
  }
}

TEST(AdvectLic, PatternTravelsWithTheFlow) {
  // Temporal coherence means frame t+1 equals frame t transported along
  // the flow (up to noise injection) — NOT frame t pointwise. With a
  // uniform +x flow, next[x] must correlate with cur[x-1], and much less
  // with cur[x] (white noise decorrelates at one-pixel offsets).
  const int n = 64;
  auto field = uniform_field(n, {1.0f, 0.0f});
  auto cur = make_noise(n, n, 6);
  auto correlation = [&](std::span<const float> a, std::span<const float> b) {
    double ma = 0, mb = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
      ma += a[i];
      mb += b[i];
    }
    ma /= double(a.size());
    mb /= double(b.size());
    double num = 0, da = 0, db = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
      num += (a[i] - ma) * (b[i] - mb);
      da += (a[i] - ma) * (a[i] - ma);
      db += (b[i] - mb) * (b[i] - mb);
    }
    return num / std::sqrt(da * db + 1e-30);
  };
  auto inject = make_noise(n, n, 7);
  auto next = advect_lic_frame(field, cur, inject, n, n, 1.0f, 0.1f);
  // Build shifted/unshifted interior views for correlation.
  std::vector<float> next_in, cur_shifted, cur_same;
  for (int y = 1; y < n - 1; ++y) {
    for (int x = 1; x < n - 1; ++x) {
      next_in.push_back(next[std::size_t(y) * n + x]);
      cur_shifted.push_back(cur[std::size_t(y) * n + (x - 1)]);
      cur_same.push_back(cur[std::size_t(y) * n + x]);
    }
  }
  double along_flow = correlation(next_in, cur_shifted);
  double static_corr = correlation(next_in, cur_same);
  EXPECT_GT(along_flow, 0.9);
  EXPECT_LT(std::fabs(static_corr), 0.25);
}

TEST(AdvectLic, OutputStaysInRange) {
  const int n = 32;
  auto field = uniform_field(n, {0.7f, -0.4f});
  auto frame = make_noise(n, n, 9);
  auto noise = make_noise(n, n, 10);
  for (int k = 0; k < 20; ++k) {
    frame = advect_lic_frame(field, frame, noise, n, n, 0.9f, 0.08f);
  }
  for (float v : frame) {
    EXPECT_GE(v, -1e-5f);
    EXPECT_LE(v, 1.0f + 1e-5f);
  }
}

TEST(AdvectLic, SizeMismatchThrows) {
  auto field = uniform_field(16, {1, 0});
  auto small = make_noise(8, 8, 1);
  auto good = make_noise(16, 16, 1);
  EXPECT_THROW(advect_lic_frame(field, small, good, 16, 16, 1.0f, 0.1f),
               std::runtime_error);
  EXPECT_THROW(advect_lic_frame(field, good, good, 8, 8, 1.0f, 0.1f),
               std::runtime_error);
}

}  // namespace
}  // namespace qv::lic
