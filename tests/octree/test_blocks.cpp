#include "octree/blocks.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "util/stats.hpp"

namespace qv::octree {
namespace {

const Box3 kUnit{{0, 0, 0}, {1, 1, 1}};

mesh::LinearOctree adaptive_tree() {
  auto size = [](Vec3 p) {
    return (p - Vec3{0.2f, 0.8f, 0.8f}).norm() < 0.35f ? 0.05f : 0.4f;
  };
  return mesh::LinearOctree::build(kUnit, size, 1, 5);
}

TEST(Decompose, EveryCellInExactlyOneBlock) {
  auto tree = adaptive_tree();
  for (int block_level = 0; block_level <= 3; ++block_level) {
    auto blocks = decompose(tree, block_level);
    std::size_t covered = 0;
    std::size_t prev_end = 0;
    for (const auto& b : blocks) {
      EXPECT_EQ(b.cell_begin, prev_end);  // contiguous, in order, no gaps
      EXPECT_GT(b.cell_end, b.cell_begin);
      covered += b.cell_count();
      prev_end = b.cell_end;
    }
    EXPECT_EQ(covered, tree.leaf_count()) << "block_level " << block_level;
  }
}

TEST(Decompose, BlockRootsAreAncestorsOfTheirCells) {
  auto tree = adaptive_tree();
  auto blocks = decompose(tree, 2);
  for (const auto& b : blocks) {
    for (std::size_t c = b.cell_begin; c < b.cell_end; ++c) {
      const auto& leaf = tree.leaves()[c];
      EXPECT_TRUE(b.root == leaf || b.root.is_ancestor_of(leaf));
    }
  }
}

TEST(Decompose, UniformTreeBlockCount) {
  auto tree = mesh::LinearOctree::uniform(kUnit, 3);
  auto blocks = decompose(tree, 1);
  EXPECT_EQ(blocks.size(), 8u);
  for (const auto& b : blocks) EXPECT_EQ(b.cell_count(), 64u);
}

TEST(Workloads, CellCountModel) {
  auto tree = adaptive_tree();
  auto blocks = decompose(tree, 1);
  estimate_workloads(tree, blocks, WorkloadModel::kCellCount);
  double total = 0;
  for (const auto& b : blocks) {
    EXPECT_DOUBLE_EQ(b.workload, double(b.cell_count()));
    total += b.workload;
  }
  EXPECT_DOUBLE_EQ(total, double(tree.leaf_count()));
}

TEST(Workloads, DepthWeightedPrefersFineBlocks) {
  auto tree = adaptive_tree();
  auto blocks = decompose(tree, 1);
  estimate_workloads(tree, blocks, WorkloadModel::kDepthWeighted);
  for (const auto& b : blocks) EXPECT_GT(b.workload, 0.0);
}

class AssignTest : public ::testing::TestWithParam<AssignStrategy> {};

TEST_P(AssignTest, AllBlocksAssignedWithinRange) {
  auto tree = adaptive_tree();
  auto blocks = decompose(tree, 2);
  estimate_workloads(tree, blocks, WorkloadModel::kCellCount);
  for (int procs : {1, 2, 3, 7, 16}) {
    auto owners = assign_blocks(blocks, procs, GetParam());
    ASSERT_EQ(owners.size(), blocks.size());
    for (int o : owners) {
      EXPECT_GE(o, 0);
      EXPECT_LT(o, procs);
    }
    // Every processor that can get work gets some when blocks >= procs.
    if (blocks.size() >= std::size_t(procs)) {
      std::set<int> used(owners.begin(), owners.end());
      EXPECT_EQ(used.size(), std::size_t(procs)) << "procs " << procs;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Strategies, AssignTest,
                         ::testing::Values(AssignStrategy::kRoundRobin,
                                           AssignStrategy::kMortonContiguous,
                                           AssignStrategy::kLargestFirst));

TEST(Assign, LargestFirstBeatsRoundRobinOnImbalance) {
  auto tree = adaptive_tree();
  auto blocks = decompose(tree, 2);
  estimate_workloads(tree, blocks, WorkloadModel::kCellCount);
  const int procs = 8;
  auto rr = per_proc_load(blocks, assign_blocks(blocks, procs,
                                                AssignStrategy::kRoundRobin),
                          procs);
  auto lf = per_proc_load(blocks, assign_blocks(blocks, procs,
                                                AssignStrategy::kLargestFirst),
                          procs);
  EXPECT_LE(load_imbalance(lf), load_imbalance(rr) + 1e-9);
}

TEST(Assign, MortonContiguousIsContiguous) {
  auto tree = adaptive_tree();
  auto blocks = decompose(tree, 2);
  estimate_workloads(tree, blocks, WorkloadModel::kCellCount);
  auto owners = assign_blocks(blocks, 4, AssignStrategy::kMortonContiguous);
  for (std::size_t i = 1; i < owners.size(); ++i) {
    EXPECT_GE(owners[i], owners[i - 1]);  // non-decreasing = contiguous runs
  }
}

TEST(AdaptiveLevel, CoarsensWithSmallImages) {
  // 512-pixel image, level 13 data, at most 1 element per pixel:
  // 2^9 = 512 cells across matches exactly 512 pixels.
  EXPECT_EQ(adaptive_level(512, 13, 1.0), 9);
  // Allowing 4 elements per pixel admits one more level.
  EXPECT_EQ(adaptive_level(512, 13, 4.0), 10);
  // A huge image keeps the full resolution.
  EXPECT_EQ(adaptive_level(16384, 13, 1.0), 13);
}

TEST(AdaptiveLevel, RespectsBounds) {
  EXPECT_EQ(adaptive_level(16, 13, 1.0, 6), 6);   // clamped at coarsest
  EXPECT_EQ(adaptive_level(4096, 5, 1.0), 5);     // never exceeds data level
}

TEST(AdaptiveLevel, MonotonicInImageSize) {
  int prev = 0;
  for (int w : {64, 128, 256, 512, 1024, 2048}) {
    int level = adaptive_level(w, 13, 1.0, 0);
    EXPECT_GE(level, prev);
    prev = level;
  }
}

}  // namespace
}  // namespace qv::octree
