#include "img/rle.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "util/rng.hpp"

namespace qv::img {
namespace {

std::vector<Rgba> random_pixels(std::size_t n, double transparent_fraction,
                                std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Rgba> px(n);
  for (auto& p : px) {
    if (rng.next_double() < transparent_fraction) {
      p = {};
    } else {
      p = {rng.next_float(), rng.next_float(), rng.next_float(),
           0.01f + 0.99f * rng.next_float()};
    }
  }
  return px;
}

TEST(Rle, RoundTripAllTransparent) {
  std::vector<Rgba> px(1000);
  RleBuffer buf;
  std::size_t enc = rle_encode(px, buf);
  EXPECT_EQ(enc, 4u);  // a single zero-run header
  std::vector<Rgba> out(px.size(), Rgba{1, 1, 1, 1});
  EXPECT_EQ(rle_decode(buf, 0, out), enc);
  for (const auto& p : out) EXPECT_TRUE(p.transparent());
}

TEST(Rle, RoundTripAllOpaque) {
  auto px = random_pixels(512, 0.0, 21);
  RleBuffer buf;
  std::size_t enc = rle_encode(px, buf);
  // One literal header + raw payload.
  EXPECT_EQ(enc, 4u + px.size() * sizeof(Rgba));
  std::vector<Rgba> out(px.size());
  ASSERT_EQ(rle_decode(buf, 0, out), enc);
  EXPECT_EQ(0, std::memcmp(px.data(), out.data(), px.size() * sizeof(Rgba)));
}

TEST(Rle, EmptyInput) {
  RleBuffer buf;
  EXPECT_EQ(rle_encode({}, buf), 0u);
  std::vector<Rgba> out;
  // An empty span decodes successfully and consumes no bytes — explicitly
  // distinct from the error (nullopt) path.
  EXPECT_EQ(rle_decode(buf, 0, out), 0u);
  EXPECT_DOUBLE_EQ(rle_ratio({}), 1.0);
}

TEST(Rle, DecodeRejectsTruncatedStream) {
  auto px = random_pixels(64, 0.5, 22);
  RleBuffer buf;
  rle_encode(px, buf);
  buf.resize(buf.size() / 2);
  std::vector<Rgba> out(px.size());
  EXPECT_FALSE(rle_decode(buf, 0, out).has_value());
}

TEST(Rle, DecodeRejectsTruncatedHeader) {
  // Fewer than 4 bytes cannot even hold one packet header.
  RleBuffer buf = {0x01, 0x00};
  std::vector<Rgba> out(8);
  EXPECT_FALSE(rle_decode(buf, 0, out).has_value());
}

TEST(Rle, DecodeRejectsZeroCountPacket) {
  // The encoder never emits zero-length packets; a hostile stream of them
  // must be rejected rather than spun on without progress.
  RleBuffer buf(4, 0x00);
  std::vector<Rgba> out(8);
  EXPECT_FALSE(rle_decode(buf, 0, out).has_value());
}

TEST(Rle, DecodeRejectsOverlongStream) {
  // A run longer than the remaining output span is corrupt, not clipped.
  auto px = random_pixels(16, 1.0, 25);
  RleBuffer buf;
  rle_encode(px, buf);
  std::vector<Rgba> out(px.size() - 1);
  EXPECT_FALSE(rle_decode(buf, 0, out).has_value());
}

TEST(Rle, SparseImagesCompressWell) {
  auto px = random_pixels(4096, 0.95, 23);
  EXPECT_LT(rle_ratio(px), 0.2);
}

TEST(Rle, DenseImagesBarelyGrow) {
  auto px = random_pixels(4096, 0.0, 24);
  EXPECT_LT(rle_ratio(px), 1.01);
}

class RleRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(RleRoundTrip, LosslessAtEveryDensity) {
  for (std::uint64_t seed = 100; seed < 110; ++seed) {
    auto px = random_pixels(777, GetParam(), seed);
    RleBuffer buf;
    buf.push_back(0xEE);  // nonzero offset decode
    std::size_t enc = rle_encode(px, buf);
    std::vector<Rgba> out(px.size());
    ASSERT_EQ(rle_decode(buf, 1, out), enc) << "seed " << seed;
    ASSERT_EQ(0, std::memcmp(px.data(), out.data(), px.size() * sizeof(Rgba)))
        << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Densities, RleRoundTrip,
                         ::testing::Values(0.0, 0.1, 0.25, 0.5, 0.75, 0.9,
                                           0.99, 1.0));

}  // namespace
}  // namespace qv::img
