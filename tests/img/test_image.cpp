#include "img/image.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

namespace qv::img {
namespace {

TEST(Rgba, OverWithOpaqueFrontIgnoresBack) {
  Rgba front{0.8f, 0.2f, 0.1f, 1.0f};
  Rgba back{0.0f, 1.0f, 0.0f, 1.0f};
  Rgba r = front.over(back);
  EXPECT_FLOAT_EQ(r.r, 0.8f);
  EXPECT_FLOAT_EQ(r.g, 0.2f);
  EXPECT_FLOAT_EQ(r.a, 1.0f);
}

TEST(Rgba, OverWithTransparentFrontKeepsBack) {
  Rgba front{};
  Rgba back{0.3f, 0.4f, 0.5f, 0.6f};
  Rgba r = front.over(back);
  EXPECT_FLOAT_EQ(r.r, 0.3f);
  EXPECT_FLOAT_EQ(r.a, 0.6f);
}

TEST(Rgba, OverIsAssociative) {
  // Premultiplied "over" must be associative: (a over b) over c ==
  // a over (b over c). This is the property every compositing algorithm
  // in this library leans on.
  Rgba a{0.2f, 0.1f, 0.05f, 0.25f};
  Rgba b{0.3f, 0.3f, 0.1f, 0.5f};
  Rgba c{0.1f, 0.6f, 0.4f, 0.7f};
  Rgba left = a.over(b).over(c);
  Rgba right = a.over(b.over(c));
  EXPECT_NEAR(left.r, right.r, 1e-6f);
  EXPECT_NEAR(left.g, right.g, 1e-6f);
  EXPECT_NEAR(left.b, right.b, 1e-6f);
  EXPECT_NEAR(left.a, right.a, 1e-6f);
}

TEST(Rgba, BlendUnderMatchesOver) {
  Rgba front{0.2f, 0.1f, 0.05f, 0.25f};
  Rgba back{0.3f, 0.3f, 0.1f, 0.5f};
  Rgba via_over = front.over(back);
  Rgba acc = front;
  acc.blend_under(back);
  EXPECT_FLOAT_EQ(acc.r, via_over.r);
  EXPECT_FLOAT_EQ(acc.a, via_over.a);
}

TEST(Image, CompositeOverFullImages) {
  Image back(4, 4), front(4, 4);
  back.clear({0.0f, 0.5f, 0.0f, 1.0f});
  front.at(1, 2) = {1.0f, 0.0f, 0.0f, 1.0f};
  back.composite_over(front);
  EXPECT_FLOAT_EQ(back.at(1, 2).r, 1.0f);
  EXPECT_FLOAT_EQ(back.at(0, 0).g, 0.5f);
}

TEST(Image, FlattenedFillsBackground) {
  Image im(2, 1);
  im.at(0, 0) = {0.5f, 0.0f, 0.0f, 0.5f};
  Image flat = im.flattened({0.0f, 1.0f, 0.0f});
  EXPECT_FLOAT_EQ(flat.at(0, 0).r, 0.5f);
  EXPECT_FLOAT_EQ(flat.at(0, 0).g, 0.5f);  // 0 + 0.5 * 1.0
  EXPECT_FLOAT_EQ(flat.at(0, 0).a, 1.0f);
  EXPECT_FLOAT_EQ(flat.at(1, 0).g, 1.0f);  // pure background
}

TEST(Image, PpmRoundTrip) {
  Image8 im(3, 2);
  im.set(0, 0, 255, 0, 0);
  im.set(2, 1, 1, 2, 3);
  std::string path = (std::filesystem::temp_directory_path() / "qv_test.ppm").string();
  ASSERT_TRUE(write_ppm(path, im));
  Image8 back;
  ASSERT_TRUE(read_ppm(path, back));
  EXPECT_EQ(back.width(), 3);
  EXPECT_EQ(back.height(), 2);
  EXPECT_EQ(0, std::memcmp(im.data(), back.data(), im.byte_count()));
  std::remove(path.c_str());
}

TEST(Image, ReadPpmRejectsGarbage) {
  std::string path = (std::filesystem::temp_directory_path() / "qv_bad.ppm").string();
  {
    std::ofstream os(path);
    os << "NOTAPPM";
  }
  Image8 im;
  EXPECT_FALSE(read_ppm(path, im));
  std::remove(path.c_str());
}

TEST(Image, PgmWrite) {
  std::vector<float> gray = {0.0f, 0.5f, 1.0f, 2.0f};  // 2.0 clamps to 255
  std::string path = (std::filesystem::temp_directory_path() / "qv_test.pgm").string();
  ASSERT_TRUE(write_pgm(path, gray, 2, 2));
  std::ifstream is(path, std::ios::binary);
  std::string magic;
  is >> magic;
  EXPECT_EQ(magic, "P5");
  std::remove(path.c_str());
  // Size mismatch rejected.
  EXPECT_FALSE(write_pgm(path, gray, 3, 2));
}

TEST(Metrics, RmseZeroForIdentical) {
  Image a(8, 8);
  a.at(3, 3) = {0.5f, 0.5f, 0.5f, 1.0f};
  EXPECT_DOUBLE_EQ(rmse(a, a), 0.0);
  EXPECT_TRUE(std::isinf(psnr(a, a)));
}

TEST(Metrics, RmseKnownValue) {
  Image a(1, 1), b(1, 1);
  b.at(0, 0) = {1.0f, 0.0f, 0.0f, 0.0f};
  // Only the r channel differs by 1 over 4 channels: sqrt(1/4) = 0.5.
  EXPECT_NEAR(rmse(a, b), 0.5, 1e-9);
}

TEST(Metrics, MismatchedSizesAreInfinite) {
  Image a(2, 2), b(3, 3);
  EXPECT_TRUE(std::isinf(rmse(a, b)));
}

TEST(To8Bit, QuantizesAndBlendsBackground) {
  Image im(1, 1);
  im.at(0, 0) = {0.5f, 0.25f, 0.0f, 0.5f};
  Image8 out = to_8bit(im, {1.0f, 1.0f, 1.0f});
  // r = 0.5 + 0.5*1 = 1.0 -> 255; g = 0.25 + 0.5 = 0.75 -> 191.
  EXPECT_EQ(out.data()[0], 255);
  EXPECT_EQ(out.data()[1], 191);
}

}  // namespace
}  // namespace qv::img
